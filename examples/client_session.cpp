//===- examples/client_session.cpp - the public client API, end to end ----===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The canonical sl::Session consumer -- and deliberately buildable
// *out-of-tree*: it includes only the installed public header and the
// standard library, so tools/check.sh compiles this exact file against a
// scratch `cmake --install` tree to prove the export works:
//
//   c++ -std=c++20 -I<prefix>/include examples/client_session.cpp \
//       <prefix>/lib/libslingen.a -ldl -lpthread -lm -o session_demo
//
//   ./session_demo local:/tmp/cache input.la          # in-process service
//   ./session_demo /tmp/sld.sock input.la             # running sld daemon
//   ./session_demo auto:/tmp/sld.sock input.la        # daemon, else local
//   ./session_demo <addr> input.la -so k.so           # save the object
//
// The same request served through `local:` and through a live daemon
// prints byte-identical provenance and numerics, and -so writes
// bit-identical shared objects -- check.sh diffs both.
//
// Stdout carries only address-independent content (provenance + numeric
// results); session/origin chatter goes to stderr.
//
//===----------------------------------------------------------------------===//

#include <slingen/client.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Matrix declarations parsed straight from the LA text: `Mat NAME(R, C)`.
/// The client API ships provenance, not shapes -- a real consumer knows
/// its own programs; this demo recovers the shapes the same way a human
/// reading the .la would.
struct Decl {
  std::string Name;
  int Rows = 0, Cols = 0;
};

std::vector<Decl> parseDecls(const std::string &La) {
  std::vector<Decl> Decls;
  std::istringstream In(La);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream LS(Line);
    std::string Kw;
    LS >> Kw;
    if (Kw != "Mat" && Kw != "Vec" && Kw != "Sca")
      continue;
    std::string Rest;
    std::getline(LS, Rest);
    Decl D;
    size_t P = 0;
    while (P < Rest.size() && isspace(static_cast<unsigned char>(Rest[P])))
      ++P;
    while (P < Rest.size() &&
           (isalnum(static_cast<unsigned char>(Rest[P])) || Rest[P] == '_'))
      D.Name.push_back(Rest[P++]);
    if (Kw == "Sca") {
      D.Rows = D.Cols = 1;
    } else {
      if (sscanf(Rest.c_str() + P, "(%d,%d)", &D.Rows, &D.Cols) != 2 &&
          sscanf(Rest.c_str() + P, "(%d, %d)", &D.Rows, &D.Cols) != 2)
        continue;
      if (Kw == "Vec")
        D.Cols = 1;
    }
    if (!D.Name.empty() && D.Rows > 0 && D.Cols > 0)
      Decls.push_back(D);
  }
  return Decls;
}

/// Parameter names in call order, read off the generated C signature:
/// `void <func>(double *__restrict A, ...)`.
std::vector<std::string> paramNames(const std::string &CSource,
                                    const std::string &Func) {
  std::vector<std::string> Names;
  size_t Sig = CSource.find("void " + Func + "(");
  if (Sig == std::string::npos)
    return Names;
  size_t Open = CSource.find('(', Sig);
  size_t Close = CSource.find(')', Open);
  if (Open == std::string::npos || Close == std::string::npos)
    return Names;
  std::string Args = CSource.substr(Open + 1, Close - Open - 1);
  std::istringstream In(Args);
  std::string Piece;
  while (std::getline(In, Piece, ',')) {
    // The identifier is the last [A-Za-z0-9_]+ run of the piece.
    size_t End = Piece.find_last_not_of(" \t");
    if (End == std::string::npos)
      continue;
    size_t Begin = End;
    while (Begin > 0 &&
           (isalnum(static_cast<unsigned char>(Piece[Begin - 1])) ||
            Piece[Begin - 1] == '_'))
      --Begin;
    Names.push_back(Piece.substr(Begin, End - Begin + 1));
  }
  return Names;
}

int fail(const std::string &Msg) {
  fprintf(stderr, "client_session: %s\n", Msg.c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3) {
    fprintf(stderr,
            "usage: %s <address> <input.la> [-so <file>] [-name <func>]\n"
            "  address: local:[cache-dir] | unix:<path> | tcp:<host>:<port>"
            " | auto:<remote>\n",
            argv[0]);
    return 1;
  }
  std::string Address = argv[1], InputPath = argv[2], SoOut, FuncName;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-so" && I + 1 < argc)
      SoOut = argv[++I];
    else if (Arg == "-name" && I + 1 < argc)
      FuncName = argv[++I];
    else
      return fail("unknown argument " + Arg);
  }
  if (FuncName.empty())
    FuncName = "session_kernel";

  // 1. One address string resolves the backend: in-process service,
  //    daemon socket, or daemon-with-local-fallback.
  auto Session = sl::Session::open(Address);
  if (!Session)
    return fail(Session.status().str());

  // 2. A validated request via the fluent builder.
  auto Request = sl::RequestBuilder()
                     .sourceFile(InputPath)
                     .name(FuncName)
                     .isa("avx")
                     .build();
  if (!Request)
    return fail(Request.status().str());

  // 3. The kernel, served from wherever the session points. Identical
  //    handle semantics either way.
  auto Kernel = Session->get(*Request);
  if (!Kernel)
    return fail(Kernel.status().str());

  fprintf(stderr, "served via %s backend (origin: %s)\n",
          Session->backend() == sl::Session::BackendKind::Local ? "local"
          : Session->backend() == sl::Session::BackendKind::Remote
              ? "remote"
              : "fallback",
          Kernel->origin() == sl::Kernel::Origin::Remote ? "daemon"
                                                         : "in-process");

  printf("function:    %s\n", Kernel->functionName().c_str());
  printf("isa:         %s\n", Kernel->isa().c_str());
  printf("cache key:   %s\n", Kernel->key().c_str());
  printf("parameters:  %d\n", Kernel->numParams());
  printf("static cost: %ld cycles\n", Kernel->staticCost());
  printf("c source:    %zu bytes\n", Kernel->cSource().size());
  printf("object:      %zu bytes\n", Kernel->objectBytes().size());

  if (!SoOut.empty()) {
    if (Kernel->objectBytes().empty())
      return fail("kernel is source-only; nothing to write to " + SoOut);
    std::ofstream So(SoOut, std::ios::binary);
    So.write(Kernel->objectBytes().data(),
             static_cast<std::streamsize>(Kernel->objectBytes().size()));
    So.close();
    if (!So)
      return fail("cannot write " + SoOut);
    fprintf(stderr, "wrote %s\n", SoOut.c_str());
  }

  // 4. Run it, when this host can: deterministic diagonally-dominant
  //    inputs (safe for the factorizations/solves the examples use), then
  //    print every parameter's checksum -- the numeric identity surface
  //    the local-vs-daemon smoke diffs.
  if (!Kernel->callable() || !Kernel->hostRunnable()) {
    printf("execution:   skipped (%s)\n",
           !Kernel->callable() ? "source-only kernel"
                               : "kernel ISA wider than host");
    return 0;
  }
  bool Ok = false;
  std::ifstream LaIn(InputPath);
  std::stringstream LaBuf;
  if (LaIn) {
    LaBuf << LaIn.rdbuf();
    Ok = true;
  }
  std::vector<Decl> Decls = Ok ? parseDecls(LaBuf.str()) : std::vector<Decl>();
  std::vector<std::string> Params =
      paramNames(Kernel->cSource(), Kernel->functionName());
  if (static_cast<int>(Params.size()) != Kernel->numParams()) {
    printf("execution:   skipped (cannot recover parameter shapes)\n");
    return 0;
  }
  std::vector<std::vector<double>> Storage;
  std::vector<double *> Buffers;
  for (const std::string &P : Params) {
    const Decl *D = nullptr;
    for (const Decl &Cand : Decls)
      if (Cand.Name == P)
        D = &Cand;
    if (!D) {
      printf("execution:   skipped (no declaration for %s)\n", P.c_str());
      return 0;
    }
    std::vector<double> Buf(static_cast<size_t>(D->Rows) * D->Cols, 0.0);
    // Symmetric, diagonally dominant, deterministic: valid for PD inputs
    // and harmless for general ones.
    for (int I = 0; I < D->Rows; ++I)
      for (int J = 0; J < D->Cols; ++J)
        Buf[static_cast<size_t>(I) * D->Cols + J] =
            I == J ? D->Rows + 1.0 : 0.25 / (1.0 + (I > J ? I - J : J - I));
    Storage.push_back(std::move(Buf));
  }
  for (auto &B : Storage)
    Buffers.push_back(B.data());

  if (sl::Status St = Kernel->call(Buffers.data()); !St)
    return fail(St.str());

  printf("execution:   ok\n");
  for (size_t I = 0; I < Params.size(); ++I) {
    double Sum = 0.0;
    for (double V : Storage[I])
      Sum += V;
    printf("checksum %-8s %.17g\n", Params[I].c_str(), Sum);
  }
  return 0;
}
