//===- examples/l1a_denoise.cpp - generated L1-analysis solver loop -------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The L1-analysis convex solver (paper Fig. 13c) used for sparse signal
// recovery: a sparse spike train is observed through a random measurement
// matrix A with noise; repeated application of the generated per-iteration
// kernel (a first-order primal-dual update) drives the reconstruction.
// Demonstrates an iterative application where the same small fixed-size
// kernel runs thousands of times -- the regime the paper targets.
//
//   $ ./l1a_denoise [n] [iterations]
//
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

using namespace slingen;

int main(int argc, char **argv) {
  const int N = argc > 1 ? atoi(argv[1]) : 16;
  const int Iters = argc > 2 ? atoi(argv[2]) : 200;

  std::string Err;
  auto Program = la::compileLa(la::l1aSource(N), Err);
  if (!Program) {
    fprintf(stderr, "LA error: %s\n", Err.c_str());
    return 1;
  }
  GenOptions Options;
  Options.Isa = &hostIsa();
  Options.FuncName = "l1a_iter";
  Generator Gen(std::move(*Program), Options);
  if (!Gen.isValid()) {
    fprintf(stderr, "generator error: %s\n", Gen.error().c_str());
    return 1;
  }
  auto Result = Gen.best(4);
  if (!Result) {
    fprintf(stderr, "generation failed\n");
    return 1;
  }
  printf("generated l1a iteration kernel (%zu basic statements)\n",
         Result->Basic.stmts().size());

  std::map<std::string, std::vector<double>> Named;
  std::map<const Operand *, double *> Bufs;
  for (const Operand *P : Result->Func.Params) {
    Named[P->Name].assign(static_cast<size_t>(P->Rows) * P->Cols, 0.0);
    Bufs[P] = Named[P->Name].data();
  }

  // Ground truth: sparse spikes. Measurements y = A x* + noise; W = I
  // (identity analysis operator).
  Rng R(7);
  std::vector<double> Truth(N, 0.0);
  Truth[N / 5] = 1.0;
  Truth[(3 * N) / 5] = -0.7;
  auto &A = Named["A"];
  for (int I = 0; I < N * N; ++I)
    A[I] = (R.uniform() - 0.5) / std::sqrt(static_cast<double>(N));
  for (int I = 0; I < N; ++I)
    A[I * N + I] += 1.0; // keep the operator well-conditioned
  auto &W = Named["W"];
  for (int I = 0; I < N; ++I)
    W[I * N + I] = 1.0;
  auto &y = Named["y"];
  for (int I = 0; I < N; ++I) {
    double S = 0.0;
    for (int J = 0; J < N; ++J)
      S += A[I * N + J] * Truth[J];
    y[I] = S + 0.01 * (R.uniform() - 0.5);
  }
  Named["alpha"][0] = 0.5;
  Named["beta"][0] = 0.2;
  Named["tau"][0] = 0.2;

  // Iterate: x0 tracks the current primal estimate (the LA program of
  // Fig. 13c exposes one iteration; the outer loop re-feeds x = x0 +
  // beta*x1 as the next x0).
  auto &x0 = Named["x0"];
  double FirstRes = 0.0;
  for (int It = 0; It < Iters; ++It) {
    cir::interpret(Result->Func, Bufs);
    x0 = Named["x"];
    if (It == 0 || It == Iters - 1) {
      // Residual ||A x - y||.
      double Res = 0.0;
      for (int I = 0; I < N; ++I) {
        double S = -y[I];
        for (int J = 0; J < N; ++J)
          S += A[I * N + J] * x0[J];
        Res += S * S;
      }
      Res = std::sqrt(Res);
      if (It == 0)
        FirstRes = Res;
      else
        printf("residual ||Ax - y||: %.5f -> %.5f after %d iterations\n",
               FirstRes, Res, Iters);
    }
  }

  // The LA program is the *linear core* of one solver iteration -- the
  // paper (Fig. 13 caption) notes the original algorithm adds a few
  // min/max/shrinkage operations that SLinGen leaves outside the kernel.
  // The fixed point of the smoothed iteration therefore underestimates
  // magnitudes, but its support identifies the spikes.
  printf("%6s %10s %12s\n", "index", "truth", "reconstructed");
  for (int I = 0; I < N; ++I)
    printf("%6d %10.3f %12.4f%s\n", I, Truth[I], x0[I],
           std::fabs(Truth[I]) > 0.0 ? "   <- spike" : "");
  return 0;
}
