//===- examples/quickstart.cpp - 60-second tour of the generator ----------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Writes a small LA program (the paper's Fig. 5 Cholesky fragment), runs
// the full generation pipeline, prints the synthesized basic program and
// the generated C function, and executes the kernel in-process through the
// C-IR interpreter.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "la/Lower.h"
#include "slingen/SLinGen.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace slingen;

int main() {
  // An LA program: S = H H^T + R, then the Cholesky factor U of S (stored
  // over S via ow), then the triangular solve U^T B = P. Fixed sizes, as
  // everywhere in the paper.
  const int N = 8;
  std::string Source;
  Source += "Mat H(8, 8) <In>;\n";
  Source += "Mat P(8, 8) <In, UpSym, PD>;\n";
  Source += "Mat R(8, 8) <In, UpSym, PD>;\n";
  Source += "Mat S(8, 8) <Out, UpSym, PD>;\n";
  Source += "Mat U(8, 8) <Out, UpTri, NS, ow(S)>;\n";
  Source += "Mat B(8, 8) <Out>;\n";
  Source += "S = H * H' + R;\n";
  Source += "U' * U = S;\n";
  Source += "U' * B = P;\n";

  printf("=== LA input ===\n%s\n", Source.c_str());

  std::string Err;
  auto Program = la::compileLa(Source, Err);
  if (!Program) {
    fprintf(stderr, "LA error: %s\n", Err.c_str());
    return 1;
  }

  GenOptions Options;
  Options.Isa = &avxIsa(); // generate AVX intrinsics (nu = 4)
  Options.FuncName = "fig5_kernel";
  Generator Gen(std::move(*Program), Options);
  if (!Gen.isValid()) {
    fprintf(stderr, "generator error: %s\n", Gen.error().c_str());
    return 1;
  }

  printf("HLACs found: %d (variants:", Gen.hlacCount());
  for (int C : Gen.variantCounts())
    printf(" %d", C);
  printf(")\n\n");

  auto Result = Gen.best(/*MaxVariants=*/8);
  if (!Result) {
    fprintf(stderr, "generation failed\n");
    return 1;
  }

  printf("=== Stage 1: basic linear algebra program (%zu statements) ===\n",
         Result->Basic.stmts().size());
  std::string Basic = Result->Basic.str();
  printf("%.1200s%s\n\n", Basic.c_str(),
         Basic.size() > 1200 ? "\n... (truncated)" : "");

  printf("=== Stage 3: generated C (%ld static cost units) ===\n",
         Result->Cost);
  std::string C = emitC(*Result);
  printf("%.2000s%s\n\n", C.c_str(),
         C.size() > 2000 ? "\n... (truncated)" : "");

  // Execute via the C-IR interpreter: no compiler needed.
  std::map<const Operand *, double *> Buffers;
  std::vector<std::vector<double>> Storage;
  Storage.reserve(Result->Func.Params.size());
  for (const Operand *Param : Result->Func.Params) {
    Storage.emplace_back(static_cast<size_t>(Param->Rows) * Param->Cols,
                         0.0);
    Buffers[Param] = Storage.back().data();
  }
  // Fill H with a simple pattern and P, R with identity + rank structure.
  for (const Operand *Param : Result->Func.Params) {
    double *Buf = Buffers[Param];
    if (Param->Name == "H")
      for (int I = 0; I < N * N; ++I)
        Buf[I] = 0.01 * I;
    if (Param->Name == "P" || Param->Name == "R")
      for (int I = 0; I < N; ++I)
        Buf[I * N + I] = 1.0 + 0.1 * I;
  }
  cir::interpret(Result->Func, Buffers);

  printf("=== Executed: diag(U) ===\n");
  for (const Operand *Param : Result->Func.Params)
    if (Param->Name == "S") { // U overwrites S
      for (int I = 0; I < N; ++I)
        printf("%.4f ", Buffers[Param][I * N + I]);
      printf("\n");
    }
  return 0;
}
