//===- examples/gpr_regression.cpp - generated GP regression --------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Gaussian process regression (paper Fig. 13b) on a synthetic 1-D
// function: n training points of f(t) = sin(2 pi t) with noise-free
// observations, squared-exponential kernel. The per-query computation
// (predictive mean phi, variance psi, log-marginal term lambda) is
// generated from its LA description and evaluated for a sweep of query
// points, printing the predicted curve against the truth.
//
//   $ ./gpr_regression [n]
//
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/SLinGen.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

using namespace slingen;

namespace {

double kernelSE(double A, double B) {
  double D = A - B;
  return std::exp(-D * D / (2.0 * 0.1));
}

} // namespace

int main(int argc, char **argv) {
  const int N = argc > 1 ? atoi(argv[1]) : 12;

  std::string Err;
  auto Program = la::compileLa(la::gprSource(N), Err);
  if (!Program) {
    fprintf(stderr, "LA error: %s\n", Err.c_str());
    return 1;
  }
  GenOptions Options;
  Options.Isa = &hostIsa();
  Options.FuncName = "gpr_query";
  Generator Gen(std::move(*Program), Options);
  if (!Gen.isValid()) {
    fprintf(stderr, "generator error: %s\n", Gen.error().c_str());
    return 1;
  }
  auto Result = Gen.best(8);
  if (!Result) {
    fprintf(stderr, "generation failed\n");
    return 1;
  }
  printf("generated gpr kernel: %d HLACs, static cost %ld\n",
         Gen.hlacCount(), Result->Cost);

  // Training set: n points on [0, 1).
  std::vector<double> T(N), Y(N);
  for (int I = 0; I < N; ++I) {
    T[I] = static_cast<double>(I) / N;
    Y[I] = std::sin(2.0 * M_PI * T[I]);
  }

  std::map<std::string, std::vector<double>> Named;
  std::map<const Operand *, double *> Bufs;
  for (const Operand *P : Result->Func.Params) {
    Named[P->Name].assign(static_cast<size_t>(P->Rows) * P->Cols, 0.0);
    Bufs[P] = Named[P->Name].data();
  }

  // K = kernel Gram matrix (with a jitter ridge); y = observations. The
  // Fig. 13b program computes phi = k^T K^-1 y with k = X x, so we pass
  // the cross-kernel vector through X's first column and x = e_0. The
  // Cholesky factor L overwrites K (ow), so K is refilled per query.
  auto &KM = Named["K"];
  Named["y"] = Y;
  auto &XM = Named["X"];
  auto &xv = Named["x"];
  xv[0] = 1.0;

  printf("%8s %10s %10s %10s\n", "query", "truth", "mean", "stddev");
  for (int Q = 0; Q <= 16; ++Q) {
    double Tq = static_cast<double>(Q) / 16.0;
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < N; ++J)
        KM[I * N + J] = kernelSE(T[I], T[J]) + (I == J ? 1e-9 : 0.0);
    for (int I = 0; I < N; ++I)
      XM[I * N + 0] = kernelSE(Tq, T[I]);
    cir::interpret(Result->Func, Bufs);
    double Mean = Named["phi"][0];
    // psi = x^T x - v^T v with our encoding equals 1 - k^T K^-1 k; the
    // prior variance at the query is kernelSE(Tq, Tq) = 1.
    double Var = std::max(0.0, Named["psi"][0]);
    printf("%8.3f %10.4f %10.4f %10.4f\n", Tq, std::sin(2.0 * M_PI * Tq),
           Mean, std::sqrt(Var));
  }
  return 0;
}
