//===- examples/kalman_tracking.cpp - generated Kalman filter in a loop ---===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The motivating application of the paper's introduction: a Kalman filter
// tracking a moving object. The per-iteration filter (paper Table 1 /
// Fig. 13a) is generated once from its LA description, JIT-compiled when a
// C compiler is available (interpreted otherwise), and then driven over a
// simulated trajectory: a particle in 2-D with position+velocity state
// (n = 4) observed through noisy position measurements.
//
//   $ ./kalman_tracking [steps]
//
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/Jit.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

using namespace slingen;

int main(int argc, char **argv) {
  const int Steps = argc > 1 ? atoi(argv[1]) : 12;
  const int N = 4; // state: x, y, vx, vy
  const int K = 4; // the LA program of Fig. 13a uses square H

  std::string Err;
  auto Program = la::compileLa(la::kalmanSource(N, K), Err);
  if (!Program) {
    fprintf(stderr, "LA error: %s\n", Err.c_str());
    return 1;
  }

  GenOptions Options;
  Options.Isa = &hostIsa();
  Options.FuncName = "kf_step";
  Generator Gen(std::move(*Program), Options);
  if (!Gen.isValid()) {
    fprintf(stderr, "generator error: %s\n", Gen.error().c_str());
    return 1;
  }
  auto Result = Gen.best(8);
  if (!Result) {
    fprintf(stderr, "generation failed\n");
    return 1;
  }

  // Buffers for the kernel parameters, found by name.
  std::map<std::string, std::vector<double>> Named;
  std::vector<double *> ParamBufs;
  std::map<const Operand *, double *> InterpBufs;
  for (const Operand *P : Result->Func.Params) {
    auto &B = Named[P->Name];
    B.assign(static_cast<size_t>(P->Rows) * P->Cols, 0.0);
    ParamBufs.push_back(B.data());
    InterpBufs[P] = B.data();
  }

  const double Dt = 0.1;
  // Constant-velocity dynamics F, identity-ish B, observation of the full
  // state with position noise dominating.
  auto &F = Named["F"];
  for (int I = 0; I < N; ++I)
    F[I * N + I] = 1.0;
  F[0 * N + 2] = Dt;
  F[1 * N + 3] = Dt;
  auto &H = Named["H"];
  for (int I = 0; I < K; ++I)
    H[I * N + I] = 1.0;
  auto &Q = Named["Q"];
  auto &R = Named["R"];
  for (int I = 0; I < N; ++I)
    Q[I * N + I] = 1e-4;
  for (int I = 0; I < K; ++I)
    R[I * K + I] = I < 2 ? 4e-2 : 1e-1;
  auto &P = Named["P"];
  for (int I = 0; I < N; ++I)
    P[I * N + I] = 1.0;
  auto &x = Named["x"]; // initial estimate: origin, unknown velocity
  x.assign(N, 0.0);

  // JIT when possible; fall back to the interpreter.
  std::optional<runtime::JitKernel> Kernel;
  if (runtime::haveSystemCompiler()) {
    Kernel = runtime::JitKernel::compile(
        emitC(*Result), Result->Func.Name,
        static_cast<int>(Result->Func.Params.size()), Err);
    if (!Kernel)
      fprintf(stderr, "JIT unavailable (%s); interpreting\n", Err.c_str());
  }
  printf("running %s kernel, %d steps\n",
         Kernel ? "JIT-compiled" : "interpreted", Steps);
  printf("%4s %18s %18s %12s\n", "step", "truth (x, y)", "estimate (x, y)",
         "err");

  Rng Noise(42);
  double TrueX = 0.0, TrueY = 0.0, VelX = 1.0, VelY = 0.5;
  for (int S = 0; S < Steps; ++S) {
    TrueX += VelX * Dt;
    TrueY += VelY * Dt;
    auto &z = Named["z"];
    z[0] = TrueX + 0.2 * (Noise.uniform() - 0.5);
    z[1] = TrueY + 0.2 * (Noise.uniform() - 0.5);
    z[2] = VelX + 0.3 * (Noise.uniform() - 0.5);
    z[3] = VelY + 0.3 * (Noise.uniform() - 0.5);

    if (Kernel)
      Kernel->call(ParamBufs.data());
    else
      cir::interpret(Result->Func, InterpBufs);

    double Ex = x[0] - TrueX, Ey = x[1] - TrueY;
    printf("%4d   (%6.3f, %6.3f)   (%6.3f, %6.3f) %10.4f\n", S, TrueX,
           TrueY, x[0], x[1], std::sqrt(Ex * Ex + Ey * Ey));
  }
  printf("\nfinal covariance trace: ");
  double Tr = 0.0;
  for (int I = 0; I < N; ++I)
    Tr += P[I * N + I];
  printf("%.5f (should shrink well below the prior %d.0)\n", Tr, N);
  return 0;
}
