//===- examples/cholesky_variants.cpp - algorithmic autotuning ------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Shows the FLAME synthesis layer: the Cholesky equation U^T U = S has
// three loop invariants, hence three blocked algorithms. This example
// prints the beginning of each synthesized basic program, the static cost
// estimate of the generated kernel, and (with a C compiler present)
// measured cycles -- i.e. the generator's algorithmic autotuning knob made
// visible.
//
//   $ ./cholesky_variants [n]
//
//===----------------------------------------------------------------------===//

#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/Jit.h"
#include "runtime/Timing.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace slingen;

int main(int argc, char **argv) {
  const int N = argc > 1 ? atoi(argv[1]) : 24;

  std::string Err;
  auto Program = la::compileLa(la::potrfSource(N), Err);
  if (!Program) {
    fprintf(stderr, "LA error: %s\n", Err.c_str());
    return 1;
  }
  GenOptions Options;
  Options.Isa = &hostIsa();
  Options.FuncName = "potrf_kernel";
  Generator Gen(std::move(*Program), Options);
  if (!Gen.isValid()) {
    fprintf(stderr, "generator error: %s\n", Gen.error().c_str());
    return 1;
  }
  printf("U^T U = S (n = %d): %d algorithmic variants\n\n", N,
         Gen.variantCounts().empty() ? 0 : Gen.variantCounts()[0]);

  bool HaveCc = runtime::haveSystemCompiler();
  std::vector<GenResult> All = Gen.enumerate(8);
  for (GenResult &R : All) {
    printf("--- variant %d: static cost %ld", R.Choice.empty() ? 0
                                                               : R.Choice[0],
           R.Cost);
    if (HaveCc) {
      auto Kernel = runtime::JitKernel::compile(
          emitC(R), R.Func.Name, static_cast<int>(R.Func.Params.size()),
          Err);
      if (Kernel) {
        // Prepare one SPD input; the kernel factors in place of X.
        Rng Rand(N);
        std::vector<std::vector<double>> Storage;
        std::vector<double *> Bufs;
        for (const Operand *P : R.Func.Params)
          Storage.emplace_back(static_cast<size_t>(P->Rows) * P->Cols, 0.0);
        for (auto &S : Storage)
          Bufs.push_back(S.data());
        for (size_t I = 0; I < R.Func.Params.size(); ++I)
          if (R.Func.Params[I]->Name == "A") {
            double *A = Bufs[I];
            for (int Row = 0; Row < N; ++Row)
              for (int Col = 0; Col < N; ++Col)
                A[Row * N + Col] = Rand.uniform(-1.0, 1.0);
            // A := A^T A + n I, symmetric positive definite.
            std::vector<double> T(A, A + N * N);
            for (int Row = 0; Row < N; ++Row)
              for (int Col = 0; Col < N; ++Col) {
                double S = Row == Col ? N : 0.0;
                for (int P2 = 0; P2 < N; ++P2)
                  S += T[P2 * N + Row] * T[P2 * N + Col];
                A[Row * N + Col] = S;
              }
          }
        auto M = runtime::measureCycles([&] { Kernel->call(Bufs.data()); },
                                        /*Repeats=*/15);
        double Flops = N * static_cast<double>(N) * N / 3.0;
        printf(", measured %.0f cycles (%.2f f/c)", M.Median,
               M.flopsPerCycle(Flops));
      }
    }
    printf(" ---\n");
    // Show the head of the synthesized basic program.
    std::string Basic;
    int Lines = 0;
    for (const EqStmt &S : R.Basic.stmts()) {
      Basic += "  " + S.str() + "\n";
      if (++Lines == 6)
        break;
    }
    printf("%s  ...\n\n", Basic.c_str());
  }

  printf("autotuning picks the cheapest variant; tests use the static\n"
         "cost model, benchmarks re-rank by measurement.\n");
  return 0;
}
