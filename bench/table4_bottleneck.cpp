//===- bench/table4_bottleneck.cpp - paper Table 4 reproduction ------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// ERM-style bottleneck analysis of the SLinGen-generated kernels for the
// four Table 3 HLACs at n in {4, 76, 124}: the limiting hardware resource
// (divisions/square roots for small sizes, the L1 interface for large
// ones), the shuffle+blend issue rate, and the achievable peak once
// shuffles (resp. blends) are accounted for -- the exact columns of the
// paper's Table 4, computed with a Sandy Bridge port model.
//
//===----------------------------------------------------------------------===//

#include "erm/Erm.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/SLinGen.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace slingen;

int main() {
  struct Row {
    const char *Name;
    std::function<std::string(int)> Source;
  };
  std::vector<Row> Rows = {
      {"potrf", la::potrfSource},
      {"trsyl", la::trsylSource},
      {"trlya", la::trlyaSource},
      {"trtri", la::trtriSource},
  };
  const int Sizes[] = {4, 76, 124};

  printf("Table 4: bottleneck analysis of generated code "
         "(Sandy Bridge model: div/sqrt every 44 cycles, 2 loads/cycle,\n"
         "1 store/cycle, 1 shuffle/cycle, peak 8 f/c)\n\n");
  printf("%-8s %5s   %-10s %6s %7s %7s\n", "comp", "n", "bottleneck",
         "sh/bl", "limS", "limB");

  for (const Row &R : Rows) {
    for (int N : Sizes) {
      std::string Err;
      auto P = la::compileLa(R.Source(N), Err);
      if (!P) {
        fprintf(stderr, "%s\n", Err.c_str());
        return 1;
      }
      GenOptions O;
      O.Isa = &avxIsa();
      Generator G(std::move(*P), O);
      if (!G.isValid()) {
        fprintf(stderr, "%s\n", G.error().c_str());
        return 1;
      }
      auto Res = G.best(/*MaxVariants=*/3);
      if (!Res) {
        fprintf(stderr, "generation failed\n");
        return 1;
      }
      erm::Analysis A = erm::analyze(Res->Func);
      printf("%-8s %5d   %-10s %5.0f%% %7.1f %7.1f\n", R.Name, N,
             A.Bottleneck.c_str(), 100.0 * A.ShuffleBlendIssueRate,
             A.PerfLimitShuffles, A.PerfLimitBlends);
    }
    printf("\n");
  }
  printf("expected shape (paper): small sizes div/sqrt-bound; large sizes "
         "L1-bound;\nissue rate decays with n; blends almost never limit "
         "the peak.\n");
  return 0;
}
