//===- bench/fig15_gpr.cpp - paper Fig. 15c reproduction -------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Gaussian process regression (paper Fig. 13b), cost ~ n^3/3 flops
// (dominated by the Cholesky factorization of the kernel matrix).
// Competitors: refblas (MKL), smallet (Eigen), naive C (icc). The
// generated kernel factors K in place (L overwrites K via ow), so its
// measurement loop restores K each run; the library versions copy
// internally, which keeps the compared work identical.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Apps.h"
#include "baselines/Naive.h"
#include "la/Programs.h"

using namespace slingen;
using namespace slingen::bench;

int main() {
  Sweep S;
  S.Title = "Fig. 15c: Gaussian process regression  --  cost n^3/3";
  S.Sizes = appSizes();
  int SGen = S.addSeries("SLinGen");
  int SRef = S.addSeries("refblas(MKL)");
  int SSml = S.addSeries("smallet(Eig)");
  int SNai = S.addSeries("naive-C");

  for (size_t I = 0; I < S.Sizes.size(); ++I) {
    int N = S.Sizes[I];
    double Flops = N * static_cast<double>(N) * N / 3.0;
    Rng R(N * 3);
    std::vector<double> K = randSpd(N, R);
    std::vector<double> X = randGeneral(N, N, R);
    std::vector<double> x = randGeneral(N, 1, R);
    std::vector<double> y = randGeneral(N, 1, R);

    auto Gen = makeTunedKernel(la::gprSource(N), [&](GeneratedKernel &GK) {
      std::memcpy(GK.buffer("K"), K.data(), K.size() * sizeof(double));
      std::memcpy(GK.buffer("X"), X.data(), X.size() * sizeof(double));
      std::memcpy(GK.buffer("x"), x.data(), x.size() * sizeof(double));
      std::memcpy(GK.buffer("y"), y.data(), y.size() * sizeof(double));
    }, /*MaxVariants=*/2);
    if (Gen) {
      double *KBuf = Gen->buffer("K");
      record(S, SGen, I, Flops, [&] {
        std::memcpy(KBuf, K.data(), K.size() * sizeof(double));
        Gen->call();
      });
    }

    double Phi, Psi, Lambda;
    std::vector<double> Scratch(N * N + 8 * N);
    record(S, SRef, I, Flops, [&] {
      apps::gprRefblas(N, K.data(), X.data(), x.data(), y.data(), &Phi,
                       &Psi, &Lambda, Scratch.data());
    });
    if (apps::gprSmallet(N, K.data(), X.data(), x.data(), y.data(), &Phi,
                         &Psi, &Lambda))
      record(S, SSml, I, Flops, [&] {
        apps::gprSmallet(N, K.data(), X.data(), x.data(), y.data(), &Phi,
                         &Psi, &Lambda);
      });
    record(S, SNai, I, Flops, [&] {
      naive::gpr(N, K.data(), X.data(), x.data(), y.data(), &Phi, &Psi,
                 &Lambda, Scratch.data());
    });
  }

  printSweep(S);
  return 0;
}
