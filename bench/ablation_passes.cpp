//===- bench/ablation_passes.cpp - pass/stage ablation study ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the design choices DESIGN.md calls out, on the potrf kernel:
//   - the Stage 3 load/store analysis (shuffles/blends instead of memory
//     round-trips, paper Figs. 11/12),
//   - the Stage 2 scalar-merging rules R0/R1 (paper Table 2),
//   - loop unrolling and CSE.
// Measured with google-benchmark over the C-IR *interpreter* (deterministic
// instruction-level cost, no JIT noise), plus static instruction counts.
//
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "cir/Passes.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

using namespace slingen;

namespace {

struct Config {
  const char *Name;
  bool VectorRules, Unroll, Cse, LoadStoreOpt, Dce;
};

const Config Configs[] = {
    {"full", true, true, true, true, true},
    {"no-loadstore", true, true, true, false, true},
    {"no-vecrules", false, true, true, true, true},
    {"no-unroll", true, false, true, true, true},
    {"no-cse", true, true, false, true, false},
    {"none", false, false, false, false, false},
};

GenResult makeKernel(int N, const Config &C) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(N), Err);
  GenOptions O;
  O.Isa = &avxIsa();
  O.ApplyVectorRules = C.VectorRules;
  O.EnableUnroll = C.Unroll;
  O.EnableCse = C.Cse;
  O.EnableLoadStoreOpt = C.LoadStoreOpt;
  O.EnableDce = C.Dce;
  Generator G(std::move(*P), O);
  auto R = G.best(3);
  return std::move(*R);
}

void BM_PotrfAblation(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  const Config &C = Configs[State.range(1)];
  GenResult R = makeKernel(N, C);

  // SPD input.
  Rng Rand(N);
  std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
  {
    std::vector<double> B(static_cast<size_t>(N) * N);
    for (double &V : B)
      V = Rand.uniform(-1.0, 1.0);
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < N; ++J) {
        double S = I == J ? N : 0.0;
        for (int P2 = 0; P2 < N; ++P2)
          S += B[P2 * N + I] * B[P2 * N + J];
        A[I * N + J] = S;
      }
  }
  std::map<const Operand *, double *> Bufs;
  std::vector<std::vector<double>> Storage;
  for (const Operand *P : R.Func.Params) {
    Storage.emplace_back(static_cast<size_t>(P->Rows) * P->Cols, 0.0);
    if (P->Name == "A")
      Storage.back() = A;
  }
  size_t Idx = 0;
  for (const Operand *P : R.Func.Params)
    Bufs[P] = Storage[Idx++].data();

  for (auto _ : State)
    cir::interpret(R.Func, Bufs);

  State.SetLabel(C.Name);
  State.counters["static_insts"] = cir::countInsts(R.Func);
  State.counters["static_cost"] = static_cast<double>(R.Cost);
}

} // namespace

BENCHMARK(BM_PotrfAblation)
    ->ArgsProduct({{8, 16, 28}, {0, 1, 2, 3, 4, 5}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
