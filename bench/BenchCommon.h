//===- bench/BenchCommon.h - shared benchmark harness ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the figure/table reproduction benchmarks: input
/// generators (same deterministic RNG as the tests), a generated-kernel
/// wrapper with measurement-driven algorithmic autotuning (the paper's
/// "performance evaluation and search"), and a paper-style series printer
/// (performance in flops per cycle vs problem size, median of repeated
/// runs with warm cache -- Sec. 4.1 methodology).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_BENCH_BENCHCOMMON_H
#define SLINGEN_BENCH_BENCHCOMMON_H

#include "cir/CEmitter.h"
#include "la/Lower.h"
#include "runtime/Jit.h"
#include "runtime/Timing.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace slingen {
namespace bench {

//===----------------------------------------------------------------------===//
// Deterministic inputs (mirrors tests/TestData.h).
//===----------------------------------------------------------------------===//

inline std::vector<double> randGeneral(int Rows, int Cols, Rng &R) {
  std::vector<double> M(static_cast<size_t>(Rows) * Cols);
  for (double &V : M)
    V = R.uniform(-1.0, 1.0);
  return M;
}

inline std::vector<double> randSpd(int N, Rng &R) {
  std::vector<double> B = randGeneral(N, N, R);
  std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      double S = I == J ? N : 0.0;
      for (int P = 0; P < N; ++P)
        S += B[P * N + I] * B[P * N + J];
      A[I * N + J] = S;
    }
  return A;
}

inline std::vector<double> randLowerTri(int N, Rng &R) {
  std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I) {
    for (int J = 0; J < I; ++J)
      A[I * N + J] = R.uniform(-1.0, 1.0);
    A[I * N + I] = R.uniform(1.0, 2.0); // well away from singular
  }
  return A;
}

inline std::vector<double> randUpperTri(int N, Rng &R) {
  std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I) {
    A[I * N + I] = R.uniform(1.0, 2.0);
    for (int J = I + 1; J < N; ++J)
      A[I * N + J] = R.uniform(-1.0, 1.0);
  }
  return A;
}

inline std::vector<double> randSymmetric(int N, Rng &R) {
  std::vector<double> A(static_cast<size_t>(N) * N);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J)
      A[I * N + J] = A[J * N + I] = R.uniform(-1.0, 1.0);
  return A;
}

//===----------------------------------------------------------------------===//
// Generated kernels with measured autotuning.
//===----------------------------------------------------------------------===//

/// A JIT-compiled generated kernel plus its parameter buffers.
struct GeneratedKernel {
  GenResult Result;
  std::optional<runtime::JitKernel> Kernel;
  std::vector<std::vector<double>> Storage;
  std::vector<double *> Bufs;

  double *buffer(const std::string &Name) {
    for (size_t I = 0; I < Result.Func.Params.size(); ++I)
      if (Result.Func.Params[I]->Name == Name)
        return Bufs[I];
    return nullptr;
  }

  void call() { Kernel->call(Bufs.data()); }
};

/// Fills the kernel's named input buffers; invoked once per candidate
/// variant before measuring it.
using SetupFn = std::function<void(GeneratedKernel &)>;

/// Generates up to \p MaxVariants variants for \p Source (cheap: no C
/// compiler involved), ranks them by the static cost model, JIT-compiles
/// the \p JitBudget cheapest, measures each on inputs prepared by
/// \p Setup, and returns the fastest -- the paper's measurement-driven
/// algorithmic autotuning, with the compile effort capped for the very
/// large unrolled kernels. Returns nullopt if generation or every
/// compilation fails. JitBudget <= 0 means "all enumerated variants".
inline std::optional<GeneratedKernel>
makeTunedKernel(const std::string &Source, const SetupFn &Setup,
                int MaxVariants = 3, int JitBudget = 0,
                const GenOptions *OptIn = nullptr) {
  std::string Err;
  auto P = la::compileLa(Source, Err);
  if (!P) {
    fprintf(stderr, "LA error: %s\n", Err.c_str());
    return std::nullopt;
  }
  GenOptions O;
  if (OptIn)
    O = *OptIn;
  else
    O.Isa = &hostIsa();
  Generator G(std::move(*P), O);
  if (!G.isValid()) {
    fprintf(stderr, "generator error: %s\n", G.error().c_str());
    return std::nullopt;
  }
  std::vector<GenResult> All = G.enumerate(MaxVariants);
  if (JitBudget > 0 && static_cast<int>(All.size()) > JitBudget)
    All.resize(JitBudget); // enumerate() returns them cheapest-first

  std::optional<GeneratedKernel> Best;
  double BestCycles = 0.0;
  for (GenResult &R : All) {
    std::string C = cir::emitTranslationUnit(R.Func);
    // Small kernels afford -O2; very large unrolled ones compile with -O1
    // to keep the sweep fast (the code is already explicitly optimized).
    const char *Flags = C.size() < 256 * 1024 ? "-O2" : "-O1";
    auto K = runtime::JitKernel::compile(
        C, R.Func.Name, static_cast<int>(R.Func.Params.size()), Err, Flags);
    if (!K) {
      fprintf(stderr, "jit error: %s\n", Err.c_str());
      continue;
    }
    GeneratedKernel GK;
    GK.Result = std::move(R);
    GK.Kernel = std::move(*K);
    for (const Operand *Param : GK.Result.Func.Params) {
      GK.Storage.emplace_back(
          static_cast<size_t>(Param->Rows) * Param->Cols, 0.0);
    }
    for (auto &S : GK.Storage)
      GK.Bufs.push_back(S.data());
    Setup(GK);
    // Re-run Setup per timed call: kernels that factor in place (ow) must
    // not be tuned on already-factored inputs. The memcpy overhead is the
    // same for every candidate, so the ranking is unaffected.
    runtime::Measurement M = runtime::measureCycles(
        [&] {
          Setup(GK);
          GK.call();
        },
        /*Repeats=*/9);
    if (!Best || M.Median < BestCycles) {
      BestCycles = M.Median;
      Best = std::move(GK);
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Series collection and printing.
//===----------------------------------------------------------------------===//

struct Sweep {
  std::string Title;
  std::string XLabel = "n";
  std::vector<int> Sizes;
  std::vector<std::string> Names;
  // [series][size index]; <= 0 marks "not available".
  std::vector<std::vector<double>> FPerC;

  int addSeries(const std::string &Name) {
    Names.push_back(Name);
    FPerC.emplace_back(Sizes.size(), 0.0);
    return static_cast<int>(Names.size()) - 1;
  }
};

inline void printSweep(const Sweep &S) {
  printf("\n%s\n", S.Title.c_str());
  printf("  performance [flops/cycle], median of repeated runs, warm "
         "cache\n");
  printf("  %-6s", S.XLabel.c_str());
  for (const std::string &N : S.Names)
    printf(" %14s", N.c_str());
  printf("\n");
  for (size_t I = 0; I < S.Sizes.size(); ++I) {
    printf("  %-6d", S.Sizes[I]);
    for (size_t J = 0; J < S.Names.size(); ++J) {
      if (S.FPerC[J][I] > 0.0)
        printf(" %14.3f", S.FPerC[J][I]);
      else
        printf(" %14s", "-");
    }
    printf("\n");
  }
  // Paper-style summary: speedup of the first series (SLinGen) over each
  // competitor, geometric mean across sizes.
  if (S.Names.size() > 1) {
    printf("  speedup of %s:", S.Names[0].c_str());
    for (size_t J = 1; J < S.Names.size(); ++J) {
      double LogSum = 0.0;
      int Count = 0;
      for (size_t I = 0; I < S.Sizes.size(); ++I)
        if (S.FPerC[0][I] > 0.0 && S.FPerC[J][I] > 0.0) {
          LogSum += std::log(S.FPerC[0][I] / S.FPerC[J][I]);
          ++Count;
        }
      if (Count > 0)
        printf("  %.2fx vs %s", std::exp(LogSum / Count),
               S.Names[J].c_str());
    }
    printf("\n");
  }
}

/// Measures \p Fn and stores flops/cycle into the sweep cell.
inline void record(Sweep &S, int Series, size_t SizeIdx, double Flops,
                   const std::function<void()> &Fn, int Repeats = 30) {
  runtime::Measurement M = runtime::measureCycles(Fn, Repeats);
  S.FPerC[Series][SizeIdx] = M.flopsPerCycle(Flops);
}

/// Nominal flop count of an LA program (sum of per-statement costs), used
/// to normalize application benchmarks whose closed-form cost expressions
/// in the paper are approximate.
inline double laFlops(const std::string &Source) {
  std::string Err;
  auto P = la::compileLa(Source, Err);
  if (!P)
    return 0.0;
  double Flops = 0.0;
  for (const EqStmt &S : P->stmts())
    Flops += static_cast<double>(stmtFlops(S));
  return Flops;
}

/// Quick-mode switch: SLINGEN_BENCH_FAST=1 trims sweeps so the full bench
/// suite stays in CI budgets. Benches honor it by dropping large sizes.
inline bool fastMode() { return getenv("SLINGEN_BENCH_FAST") != nullptr; }

inline std::vector<int> hlacSizes() {
  if (fastMode())
    return {4, 28, 52};
  return {4, 28, 52, 76, 100, 124};
}

inline std::vector<int> appSizes() {
  if (fastMode())
    return {4, 20, 36};
  return {4, 12, 20, 28, 36, 44, 52};
}

} // namespace bench
} // namespace slingen

#endif // SLINGEN_BENCH_BENCHCOMMON_H
