//===- bench/fig15_kf.cpp - paper Fig. 15a/b reproduction ------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Kalman filter, one iteration (paper Fig. 13a).
//   Fig. 15a: state size = observation size = n in {4..52}, cost ~ 11.3 n^3.
//   Fig. 15b: state fixed at 28, observation size k in {4..28}, cost ~ k^3/3
//             (the k-dependent part on top of the fixed-state work).
// Competitors: refblas (MKL stand-in), smallet (Eigen), naive C (icc).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Apps.h"
#include "baselines/Naive.h"
#include "la/Programs.h"

using namespace slingen;
using namespace slingen::bench;

namespace {

struct KfData {
  int N, K;
  std::vector<double> F, B, Q, H, R, u, x, z, P;
};

KfData makeData(int N, int K) {
  Rng Rand(N * 100 + K);
  KfData D;
  D.N = N;
  D.K = K;
  D.F = randGeneral(N, N, Rand);
  // Scale the dynamics towards stability so repeated filter iterations
  // remain numerically tame during measurement.
  for (double &V : D.F)
    V *= 0.5 / std::sqrt(static_cast<double>(N));
  for (int I = 0; I < N; ++I)
    D.F[I * N + I] += 0.5;
  D.B = randGeneral(N, N, Rand);
  D.Q = randSpd(N, Rand);
  D.H = randGeneral(K, N, Rand);
  D.R = randSpd(K, Rand);
  D.u = randGeneral(N, 1, Rand);
  D.x = randGeneral(N, 1, Rand);
  D.z = randGeneral(K, 1, Rand);
  D.P = randSpd(N, Rand);
  return D;
}

void sweepKf(Sweep &S, const std::vector<int> &Xs, bool FixedState) {
  int SGen = S.addSeries("SLinGen");
  int SRef = S.addSeries("refblas(MKL)");
  int SSml = S.addSeries("smallet(Eig)");
  int SNai = S.addSeries("naive-C");

  for (size_t I = 0; I < Xs.size(); ++I) {
    int N = FixedState ? 28 : Xs[I];
    int K = FixedState ? Xs[I] : Xs[I];
    // Nominal cost of the LA program itself (close to the paper's 11.3 n^3
    // for the square case; for the fixed-state sweep the paper's k^3/3
    // caption ignores the k-independent work, so we normalize honestly --
    // see EXPERIMENTS.md).
    double Flops = laFlops(la::kalmanSource(N, K));
    KfData D = makeData(N, K);
    std::vector<double> Scratch(8 * N * N + 8 * N);

    auto Gen =
        makeTunedKernel(la::kalmanSource(N, K), [&](GeneratedKernel &GK) {
          auto Fill = [&](const char *Name, const std::vector<double> &V) {
            if (double *B = GK.buffer(Name))
              std::memcpy(B, V.data(), V.size() * sizeof(double));
          };
          Fill("F", D.F);
          Fill("Bm", D.B);
          Fill("Q", D.Q);
          Fill("H", D.H);
          Fill("R", D.R);
          Fill("u", D.u);
          Fill("z", D.z);
          Fill("x", D.x);
          Fill("P", D.P);
        }, /*MaxVariants=*/2);
    if (Gen) {
      // Reset the iterated state before the timed runs.
      std::memcpy(Gen->buffer("x"), D.x.data(), D.x.size() * sizeof(double));
      std::memcpy(Gen->buffer("P"), D.P.data(), D.P.size() * sizeof(double));
      record(S, SGen, I, Flops, [&] { Gen->call(); });
    }

    auto XW = D.x;
    auto PW = D.P;
    auto Reset = [&] {
      XW = D.x;
      PW = D.P;
    };
    Reset();
    record(S, SRef, I, Flops, [&] {
      apps::kalmanRefblas(N, K, D.F.data(), D.B.data(), D.Q.data(),
                          D.H.data(), D.R.data(), D.u.data(), D.z.data(),
                          XW.data(), PW.data(), Scratch.data());
    });
    Reset();
    if (apps::kalmanSmallet(N, K, D.F.data(), D.B.data(), D.Q.data(),
                            D.H.data(), D.R.data(), D.u.data(), D.z.data(),
                            XW.data(), PW.data())) {
      Reset();
      record(S, SSml, I, Flops, [&] {
        apps::kalmanSmallet(N, K, D.F.data(), D.B.data(), D.Q.data(),
                            D.H.data(), D.R.data(), D.u.data(), D.z.data(),
                            XW.data(), PW.data());
      });
    }
    Reset();
    record(S, SNai, I, Flops, [&] {
      naive::kalman(N, K, D.F.data(), D.B.data(), D.Q.data(), D.H.data(),
                    D.R.data(), D.u.data(), D.z.data(), XW.data(), PW.data(),
                    Scratch.data());
    });
  }
}

} // namespace

int main() {
  Sweep A;
  A.Title = "Fig. 15a: Kalman filter, state = obs = n  --  cost 11.3 n^3";
  A.Sizes = appSizes();
  sweepKf(A, A.Sizes, /*FixedState=*/false);
  printSweep(A);

  Sweep B;
  B.Title = "Fig. 15b: Kalman filter, state = 28, obs = k  --  "
            "cost = nominal program flops";
  B.XLabel = "k";
  B.Sizes = fastMode() ? std::vector<int>{4, 12, 20}
                       : std::vector<int>{4, 8, 12, 16, 20, 24, 28};
  sweepKf(B, B.Sizes, /*FixedState=*/true);
  printSweep(B);
  return 0;
}
