//===- bench/fig14_trlya.cpp - paper Fig. 14c reproduction -----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Triangular continuous-time Lyapunov equation L X + X L^T = S (X
// symmetric), cost ~ n^3 flops. Left plot: SLinGen vs refblas (MKL),
// recursive (RECSY stand-in), smallet (Eigen), naive C. Right plot:
// SLinGen vs Cl1ck + BLAS.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Apps.h"
#include "baselines/Cl1ckBlas.h"
#include "baselines/Naive.h"
#include "baselines/Recursive.h"
#include "baselines/RefBlas.h"
#include "la/Programs.h"

using namespace slingen;
using namespace slingen::bench;

int main() {
  std::vector<int> Sizes = hlacSizes();

  Sweep Left;
  Left.Title = "Fig. 14c (left): trlya, L X + X L^T = S  --  cost n^3";
  Left.Sizes = Sizes;
  int SGen = Left.addSeries("SLinGen");
  int SRef = Left.addSeries("refblas(MKL)");
  int SRec = Left.addSeries("recursive");
  int SSml = Left.addSeries("smallet(Eig)");
  int SNai = Left.addSeries("naive-C");

  Sweep Right;
  Right.Title = "Fig. 14c (right): trlya vs Cl1ck + BLAS";
  Right.Sizes = Sizes;
  int RGen = Right.addSeries("SLinGen");
  int RNb4 = Right.addSeries("cl1ck nb=4");
  int RNbH = Right.addSeries("cl1ck nb=n/2");
  int RNbN = Right.addSeries("cl1ck nb=n");

  for (size_t I = 0; I < Sizes.size(); ++I) {
    int N = Sizes[I];
    double Flops = N * static_cast<double>(N) * N;
    Rng R(N + 2);
    std::vector<double> L = randLowerTri(N, R);
    std::vector<double> S = randSymmetric(N, R);
    std::vector<double> Work(S.size());

    auto Gen = makeTunedKernel(la::trlyaSource(N), [&](GeneratedKernel &K) {
      std::memcpy(K.buffer("L"), L.data(), L.size() * sizeof(double));
      std::memcpy(K.buffer("S"), S.data(), S.size() * sizeof(double));
    }, /*MaxVariants=*/3, /*JitBudget=*/N >= 76 ? 1 : 0);
    if (Gen)
      record(Left, SGen, I, Flops, [&] { Gen->call(); });
    Right.FPerC[RGen][I] = Left.FPerC[SGen][I];

    record(Left, SRef, I, Flops, [&] {
      std::memcpy(Work.data(), S.data(), S.size() * sizeof(double));
      refblas::trlyaLower(N, L.data(), N, Work.data(), N);
    });
    record(Left, SRec, I, Flops, [&] {
      std::memcpy(Work.data(), S.data(), S.size() * sizeof(double));
      recursive::trlyaLower(N, L.data(), N, Work.data(), N);
    });
    if (apps::trlyaSmallet(N, L.data(), Work.data()))
      record(Left, SSml, I, Flops, [&] {
        std::memcpy(Work.data(), S.data(), S.size() * sizeof(double));
        apps::trlyaSmallet(N, L.data(), Work.data());
      });
    record(Left, SNai, I, Flops, [&] {
      std::memcpy(Work.data(), S.data(), S.size() * sizeof(double));
      naive::trlyaLower(N, L.data(), Work.data());
    });

    for (auto [Series, Nb] : {std::pair{RNb4, 4}, std::pair{RNbH, N / 2},
                              std::pair{RNbN, N}})
      record(Right, Series, I, Flops, [&, Nb = std::max(1, Nb)] {
        std::memcpy(Work.data(), S.data(), S.size() * sizeof(double));
        cl1ck::trlyaLower(N, Nb, L.data(), N, Work.data(), N);
      });
  }

  printSweep(Left);
  printSweep(Right);
  return 0;
}
