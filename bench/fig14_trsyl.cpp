//===- bench/fig14_trsyl.cpp - paper Fig. 14b reproduction -----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Triangular Sylvester equation L X + X U = C, cost ~ 2 n^3 flops.
// Left plot: SLinGen vs refblas (MKL), recursive (RECSY stand-in),
// smallet (Eigen), naive C. Right plot: SLinGen vs Cl1ck + BLAS.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Apps.h"
#include "baselines/Cl1ckBlas.h"
#include "baselines/Naive.h"
#include "baselines/Recursive.h"
#include "baselines/RefBlas.h"
#include "la/Programs.h"

using namespace slingen;
using namespace slingen::bench;

int main() {
  std::vector<int> Sizes = hlacSizes();

  Sweep Left;
  Left.Title = "Fig. 14b (left): trsyl, L X + X U = C  --  cost 2 n^3";
  Left.Sizes = Sizes;
  int SGen = Left.addSeries("SLinGen");
  int SRef = Left.addSeries("refblas(MKL)");
  int SRec = Left.addSeries("recursive");
  int SSml = Left.addSeries("smallet(Eig)");
  int SNai = Left.addSeries("naive-C");

  Sweep Right;
  Right.Title = "Fig. 14b (right): trsyl vs Cl1ck + BLAS";
  Right.Sizes = Sizes;
  int RGen = Right.addSeries("SLinGen");
  int RNb4 = Right.addSeries("cl1ck nb=4");
  int RNbH = Right.addSeries("cl1ck nb=n/2");
  int RNbN = Right.addSeries("cl1ck nb=n");

  for (size_t I = 0; I < Sizes.size(); ++I) {
    int N = Sizes[I];
    double Flops = 2.0 * N * static_cast<double>(N) * N;
    Rng R(N + 1);
    std::vector<double> L = randLowerTri(N, R);
    std::vector<double> U = randUpperTri(N, R);
    std::vector<double> C = randGeneral(N, N, R);
    std::vector<double> Work(C.size());

    // trsyl has up to 16 variants; measure the 4 cheapest by static cost.
    auto Gen = makeTunedKernel(la::trsylSource(N), [&](GeneratedKernel &K) {
      std::memcpy(K.buffer("L"), L.data(), L.size() * sizeof(double));
      std::memcpy(K.buffer("U"), U.data(), U.size() * sizeof(double));
      std::memcpy(K.buffer("C"), C.data(), C.size() * sizeof(double));
    }, /*MaxVariants=*/4, /*JitBudget=*/N >= 76 ? 1 : 0);
    if (Gen)
      record(Left, SGen, I, Flops, [&] { Gen->call(); });
    Right.FPerC[RGen][I] = Left.FPerC[SGen][I];

    record(Left, SRef, I, Flops, [&] {
      std::memcpy(Work.data(), C.data(), C.size() * sizeof(double));
      refblas::trsylLowerUpper(N, N, L.data(), N, U.data(), N, Work.data(),
                               N);
    });
    record(Left, SRec, I, Flops, [&] {
      std::memcpy(Work.data(), C.data(), C.size() * sizeof(double));
      recursive::trsylLowerUpper(N, N, L.data(), N, U.data(), N, Work.data(),
                                 N);
    });
    if (apps::trsylSmallet(N, L.data(), U.data(), Work.data()))
      record(Left, SSml, I, Flops, [&] {
        std::memcpy(Work.data(), C.data(), C.size() * sizeof(double));
        apps::trsylSmallet(N, L.data(), U.data(), Work.data());
      });
    record(Left, SNai, I, Flops, [&] {
      std::memcpy(Work.data(), C.data(), C.size() * sizeof(double));
      naive::trsylLowerUpper(N, L.data(), U.data(), Work.data());
    });

    for (auto [Series, Nb] : {std::pair{RNb4, 4}, std::pair{RNbH, N / 2},
                              std::pair{RNbN, N}})
      record(Right, Series, I, Flops, [&, Nb = std::max(1, Nb)] {
        std::memcpy(Work.data(), C.data(), C.size() * sizeof(double));
        cl1ck::trsylLowerUpper(N, N, Nb, L.data(), N, U.data(), N,
                               Work.data(), N);
      });
  }

  printSweep(Left);
  printSweep(Right);
  return 0;
}
