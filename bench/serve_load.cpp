//===- bench/serve_load.cpp - serving-stack load generator ----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives a live sld daemon with K concurrent clients over a mixed kernel
// set and reports request-latency percentiles straight from the
// observability layer's histogram, plus hit rates diffed from the daemon's
// own STATS counters. Two passes through the same kernel set in one
// process -- cold (the daemon has never seen these kernels: every request
// generates or joins a generation) and warm (every request is a cache
// hit) -- so the output makes the cache's latency cliff visible as data.
//
//   serve_load -connect <addr> [options]
//     -connect <addr>   the daemon (unix:<path> / host:port) -- required
//     -clients <k>      concurrent client threads        (default 4)
//     -requests <n>     requests per client per pass     (default 8)
//     -sizes <n,n,...>  potrf sizes forming the kernel set (default 4,6,8)
//     -out <file>       JSON output path (default BENCH_serve.json)
//
// Unlike the figure benchmarks this is not a google-benchmark binary: the
// subject is the serving stack's latency distribution under concurrency,
// not a kernel's cycle count, and the histogram registry being measured
// is also the measuring instrument (the point of the exercise).
//
//===----------------------------------------------------------------------===//

#include "slingen/client.h"

#include "la/Programs.h"
#include "obs/Metrics.h"
#include "support/Format.h"
#include "support/KeyValue.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace slingen;

namespace {

struct HitCounts {
  long MemHits = 0, DiskHits = 0, Misses = 0, FlightJoins = 0;
};

/// The daemon's cumulative counters, for before/after diffing.
bool readCounts(sl::Session &S, HitCounts &C, std::string &Err) {
  auto Stats = S.stats();
  if (!Stats) {
    Err = Stats.message();
    return false;
  }
  auto KV = parseKeyValueMap(*Stats);
  C.MemHits = atol(KV["mem-hits"].c_str());
  C.DiskHits = atol(KV["disk-hits"].c_str());
  C.Misses = atol(KV["misses"].c_str());
  C.FlightJoins = atol(KV["flight-joins"].c_str());
  return true;
}

struct PassResult {
  obs::Histogram::Snapshot Latency;
  HitCounts Delta;
  long Failures = 0;
};

/// One pass: \p Clients threads, each with its own session, each issuing
/// \p Requests gets round-robin over \p Sources. Latencies land in one
/// shared histogram (concurrent recording is the histogram's contract).
bool runPass(const std::string &Addr, const std::vector<std::string> &Sources,
             int Clients, int Requests, PassResult &Out, std::string &Err) {
  auto StatsSession = sl::Session::open(Addr);
  if (!StatsSession) {
    Err = StatsSession.message();
    return false;
  }
  HitCounts Before;
  if (!readCounts(*StatsSession, Before, Err))
    return false;

  obs::Histogram Latency;
  std::atomic<long> Failures{0};
  std::atomic<bool> Fatal{false};
  std::string FirstErr;
  std::mutex ErrMu;

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(Clients));
  for (int T = 0; T < Clients; ++T) {
    Threads.emplace_back([&, T] {
      auto S = sl::Session::open(Addr);
      if (!S) {
        std::lock_guard<std::mutex> L(ErrMu);
        if (FirstErr.empty())
          FirstErr = S.message();
        Fatal = true;
        return;
      }
      for (int I = 0; I < Requests; ++I) {
        // Staggered start positions spread the clients over the kernel
        // set, so cold-pass generations overlap and the single-flight
        // path gets exercised (several clients wanting the same kernel).
        const std::string &Src =
            Sources[static_cast<size_t>(T + I) % Sources.size()];
        auto R = sl::RequestBuilder()
                     .source(Src)
                     .name(formatf("load_k%zu",
                                   static_cast<size_t>(T + I) %
                                       Sources.size()))
                     .wantObject(false)
                     .build();
        if (!R) {
          Failures.fetch_add(1);
          continue;
        }
        long Start = obs::nowUs();
        auto K = S->get(*R);
        Latency.record(obs::nowUs() - Start);
        if (!K)
          Failures.fetch_add(1);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  if (Fatal) {
    Err = FirstErr;
    return false;
  }

  HitCounts After;
  if (!readCounts(*StatsSession, After, Err))
    return false;
  Out.Latency = Latency.snapshot();
  Out.Delta.MemHits = After.MemHits - Before.MemHits;
  Out.Delta.DiskHits = After.DiskHits - Before.DiskHits;
  Out.Delta.Misses = After.Misses - Before.Misses;
  Out.Delta.FlightJoins = After.FlightJoins - Before.FlightJoins;
  Out.Failures = Failures.load();
  return true;
}

std::string passJson(const char *Name, const PassResult &P) {
  const obs::Histogram::Snapshot &L = P.Latency;
  long Served = P.Delta.MemHits + P.Delta.DiskHits + P.Delta.Misses;
  double HitRate =
      Served > 0
          ? static_cast<double>(P.Delta.MemHits + P.Delta.DiskHits) / Served
          : 0.0;
  std::ostringstream SS;
  SS << "    {\"pass\": \"" << Name << "\", \"count\": " << L.Count
     << ", \"failures\": " << P.Failures
     << ",\n     \"p50_us\": " << static_cast<long>(L.p50())
     << ", \"p90_us\": " << static_cast<long>(L.p90())
     << ", \"p99_us\": " << static_cast<long>(L.p99())
     << ", \"min_us\": " << L.Min << ", \"max_us\": " << L.Max
     << ", \"mean_us\": " << static_cast<long>(L.mean())
     << ",\n     \"mem_hits\": " << P.Delta.MemHits
     << ", \"disk_hits\": " << P.Delta.DiskHits
     << ", \"misses\": " << P.Delta.Misses
     << ", \"flight_joins\": " << P.Delta.FlightJoins
     << ", \"hit_rate\": " << formatf("%.3f", HitRate) << "}";
  return SS.str();
}

int fail(const std::string &Msg) {
  fprintf(stderr, "serve_load: %s\n", Msg.c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string Addr, Out = "BENCH_serve.json", SizesStr = "4,6,8";
  int Clients = 4, Requests = 8;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        fprintf(stderr, "serve_load: %s needs a value\n", Arg.c_str());
        exit(1);
      }
      return argv[++I];
    };
    if (Arg == "-connect")
      Addr = Next();
    else if (Arg == "-clients")
      Clients = atoi(Next());
    else if (Arg == "-requests")
      Requests = atoi(Next());
    else if (Arg == "-sizes")
      SizesStr = Next();
    else if (Arg == "-out")
      Out = Next();
    else
      return fail("unknown option " + Arg);
  }
  if (Addr.empty())
    return fail("-connect <addr> is required (start an sld first)");
  if (Clients < 1 || Clients > 256)
    return fail("-clients takes 1 to 256");
  if (Requests < 1)
    return fail("-requests takes a positive count");

  std::vector<int> Sizes;
  std::stringstream SzS(SizesStr);
  std::string Tok;
  while (std::getline(SzS, Tok, ',')) {
    int N = atoi(Tok.c_str());
    if (N < 2 || N > 64)
      return fail("-sizes entries must be 2..64");
    Sizes.push_back(N);
  }
  if (Sizes.empty())
    return fail("-sizes names no sizes");

  // Distinct function names per size keep the kernels distinct even if
  // two sizes ever collapsed to the same source.
  std::vector<std::string> Sources;
  Sources.reserve(Sizes.size());
  for (int N : Sizes)
    Sources.push_back(la::potrfSource(N));

  PassResult Cold, Warm;
  std::string Err;
  if (!runPass(Addr, Sources, Clients, Requests, Cold, Err))
    return fail("cold pass: " + Err);
  if (!runPass(Addr, Sources, Clients, Requests, Warm, Err))
    return fail("warm pass: " + Err);

  std::ostringstream SS;
  SS << "{\n  \"bench\": \"serve_load\", \"connect\": \"" << Addr
     << "\", \"clients\": " << Clients
     << ", \"requests_per_client\": " << Requests << ",\n  \"sizes\": [";
  for (size_t I = 0; I < Sizes.size(); ++I)
    SS << (I ? ", " : "") << Sizes[I];
  SS << "],\n  \"runs\": [\n"
     << passJson("cold", Cold) << ",\n"
     << passJson("warm", Warm) << "\n  ]\n}\n";

  std::ofstream OutF(Out);
  if (!OutF) {
    return fail("cannot write " + Out);
  }
  OutF << SS.str();
  OutF.close();
  if (!OutF)
    return fail("cannot write " + Out);
  fprintf(stderr,
          "serve_load: cold p50=%ldus p99=%ldus, warm p50=%ldus p99=%ldus "
          "(hit rate %.0f%% -> %.0f%%); wrote %s\n",
          static_cast<long>(Cold.Latency.p50()),
          static_cast<long>(Cold.Latency.p99()),
          static_cast<long>(Warm.Latency.p50()),
          static_cast<long>(Warm.Latency.p99()),
          100.0 * (Cold.Delta.MemHits + Cold.Delta.DiskHits) /
              (Cold.Delta.MemHits + Cold.Delta.DiskHits + Cold.Delta.Misses
                   ? Cold.Delta.MemHits + Cold.Delta.DiskHits +
                         Cold.Delta.Misses
                   : 1),
          100.0 * (Warm.Delta.MemHits + Warm.Delta.DiskHits) /
              (Warm.Delta.MemHits + Warm.Delta.DiskHits + Warm.Delta.Misses
                   ? Warm.Delta.MemHits + Warm.Delta.DiskHits +
                         Warm.Delta.Misses
                   : 1),
          Out.c_str());
  return (Cold.Failures + Warm.Failures) == 0 ? 0 : 1;
}
