//===- bench/batch_strategies.cpp - batched strategy comparison ------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Compares the batched codegen strategies (see slingen::BatchStrategy)
// head to head -- the scalar loop, the packed instance-parallel form
// ("vec"), and the fused-layout form ("fused", no pack/unpack transposes)
// -- on potrf across tiny sizes {4, 8, 16} and on the gemm-flavored trsyl
// {4, 8}, for batch counts {32, 1024} plus the remainder-heavy {33, 1025}
// (count % Nu == 1 for every supported Nu: the worst-case masked-tail
// path): the workload shape the paper's Sec. 5 "batched computations"
// sketch targets. On multicore hosts the loop and fused variants
// additionally get threaded rows ("-mt<k>", workers pinned to cores)
// and unpinned counterparts ("-mt<k>-nopin") dispatched through the
// runtime batch thread pool, so the affinity win is itself measured. A
// google-benchmark binary so `tools/bench_batch.sh` can record
// BENCH_batch.json for the perf trajectory; CPU/NUMA topology is recorded
// in the JSON context so rows from different hosts are comparable.
//
// Skips cleanly (registering no benchmarks, still writing valid JSON when
// --benchmark_out is given) when no system C compiler is available or the
// host has no vector ISA to parallelize across; threaded rows are skipped
// on single-core hosts.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/BatchPool.h"
#include "runtime/Jit.h"
#include "slingen/SLinGen.h"
#include "support/AlignedBuffer.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace slingen;

namespace {

/// One compiled batched kernel plus its instance buffers, shared by every
/// count-variant of the benchmark (registered lambdas copy the shared_ptr).
struct BatchBench {
  runtime::JitKernel Kernel;
  std::vector<AlignedBuffer> Store; ///< per-param, MaxCount instances
  std::vector<double *> Bufs;

  BatchBench(runtime::JitKernel K) : Kernel(std::move(K)) {}
};

constexpr int MaxCount = 1025;

/// Structure-respecting inputs: SPD for positive-definite operands,
/// well-conditioned triangular for triangular ones, general data for other
/// inputs, zeros for outputs. Inputs are read-only for potrf/trsyl (X is
/// the only written operand), so timed runs need no refill.
std::shared_ptr<BatchBench> makeBench(const GenResult &R,
                                      const std::string &CSource,
                                      const std::string &IsaFlags) {
  runtime::CompileOptions CO;
  CO.ExtraFlags = IsaFlags;
  CO.WithBatchEntry = true;
  std::string Err;
  auto K = runtime::JitKernel::compile(
      CSource, R.Func.Name, static_cast<int>(R.Func.Params.size()), CO, Err);
  if (!K) {
    fprintf(stderr, "batch_strategies: jit failed: %s\n", Err.c_str());
    return nullptr;
  }
  auto B = std::make_shared<BatchBench>(std::move(*K));
  for (const Operand *P : R.Func.Params) {
    size_t Sz = static_cast<size_t>(P->Rows) * P->Cols;
    auto &Buf = B->Store.emplace_back(Sz * MaxCount);
    if (P->IO == IOKind::Out)
      continue;
    for (int Inst = 0; Inst < MaxCount; ++Inst) {
      Rng Rand(100 + 131 * Inst + static_cast<int>(B->Store.size()));
      std::vector<double> Mat;
      if (P->PosDef)
        Mat = bench::randSpd(P->Rows, Rand);
      else if (P->Structure == StructureKind::LowerTriangular)
        Mat = bench::randLowerTri(P->Rows, Rand);
      else if (P->Structure == StructureKind::UpperTriangular)
        Mat = bench::randUpperTri(P->Rows, Rand);
      else
        Mat = bench::randGeneral(P->Rows, P->Cols, Rand);
      std::copy(Mat.begin(), Mat.end(),
                Buf.data() + static_cast<size_t>(Inst) * Sz);
    }
  }
  for (auto &S : B->Store)
    B->Bufs.push_back(S.data());
  return B;
}

void registerKernel(const char *Label, const std::string &Source, int N) {
  std::string Err;
  auto P = la::compileLa(Source, Err);
  if (!P) {
    fprintf(stderr, "batch_strategies: %s\n", Err.c_str());
    return;
  }
  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = std::string(Label) + std::to_string(N);
  Generator G(std::move(*P), O);
  auto R = G.best(3);
  if (!R) {
    fprintf(stderr, "batch_strategies: generation failed for %s n=%d\n",
            Label, N);
    return;
  }
  const std::string IsaFlags = runtime::isaCompileFlags(*O.Isa);
  bool VecOk = false, FusedOk = false;
  std::string VecSource = emitBatchedVectorC(*R, &O, &VecOk);
  std::string FusedSource = emitBatchedVectorFusedC(*R, &O, &FusedOk);
  if (!VecOk || !FusedOk) {
    // Timing the fallback would record loop-vs-loop under a vector label
    // and corrupt the cross-PR perf trajectory; skip loudly instead.
    fprintf(stderr,
            "batch_strategies: instance-parallel emission infeasible for "
            "%s n=%d; skipping its variants\n",
            Label, N);
    if (!VecOk)
      VecSource.clear();
    if (!FusedOk)
      FusedSource.clear();
  }
  struct Variant {
    const char *Name;
    std::string Source;
    bool Threaded; ///< also register pool-dispatched rows
  } Variants[] = {
      {"loop", emitBatchedC(*R), true},
      {"vec", std::move(VecSource), false},
      {"fused", std::move(FusedSource), true},
  };
  const int MT = runtime::defaultBatchThreads();
  for (const Variant &V : Variants) {
    if (V.Source.empty())
      continue;
    std::shared_ptr<BatchBench> B = makeBench(*R, V.Source, IsaFlags);
    if (!B)
      continue;
    // 33 and 1025 are == 1 (mod 2, 4, and 8): every supported Nu pays the
    // worst-case one-lane masked tail on top of the full-block loop.
    for (int Count : {32, 33, 1024, 1025}) {
      std::string Base = std::string(Label) + "/n=" + std::to_string(N) +
                         "/count=" + std::to_string(Count) + "/";
      benchmark::RegisterBenchmark(
          (Base + V.Name).c_str(), [B, Count](benchmark::State &State) {
            for (auto _ : State) {
              B->Kernel.callBatch(Count, B->Bufs.data());
              benchmark::ClobberMemory();
            }
            State.SetItemsProcessed(State.iterations() * Count);
          });
      if (V.Threaded && MT > 1 && B->Kernel.hasBatchSpan()) {
        const int Nu = hostIsa().Nu;
        // Pinned (default) and unpinned pool rows: the delta is the
        // affinity win for this kernel/count on this host.
        for (bool Pin : {true, false}) {
          std::string Name = Base + V.Name + "-mt" + std::to_string(MT) +
                             (Pin ? "" : "-nopin");
          benchmark::RegisterBenchmark(
              Name.c_str(), [B, Count, Nu, MT, Pin](benchmark::State &State) {
                runtime::BatchPool::setPinning(Pin);
                for (auto _ : State) {
                  runtime::callBatchParallel(B->Kernel, Count,
                                             B->Bufs.data(), Nu, MT);
                  benchmark::ClobberMemory();
                }
                runtime::BatchPool::setPinning(true);
                State.SetItemsProcessed(State.iterations() * Count);
              });
        }
      }
    }
  }
}

/// NUMA node count from sysfs (no libnuma dependency); 1 when the
/// topology is not exposed.
int numaNodeCount() {
  int Nodes = 0;
  std::error_code Ec;
  for (const auto &E : std::filesystem::directory_iterator(
           "/sys/devices/system/node", Ec)) {
    const std::string Name = E.path().filename().string();
    if (Name.rfind("node", 0) == 0 &&
        Name.find_first_not_of("0123456789", 4) == std::string::npos)
      ++Nodes;
  }
  return Nodes > 0 ? Nodes : 1;
}

} // namespace

int main(int argc, char **argv) {
  bool Skip = false;
  if (!runtime::haveSystemCompiler()) {
    fprintf(stderr, "batch_strategies: no system C compiler; skipping\n");
    Skip = true;
  } else if (hostIsa().Nu < 2) {
    fprintf(stderr,
            "batch_strategies: host has no vector ISA; ScalarLoop is the "
            "only strategy -- skipping\n");
    Skip = true;
  }
  if (runtime::defaultBatchThreads() < 2)
    fprintf(stderr, "batch_strategies: single-core host; threaded rows "
                    "skipped\n");
  if (!Skip) {
    for (int N : {4, 8, 16})
      registerKernel("potrf", la::potrfSource(N), N);
    for (int N : {4, 8})
      registerKernel("trsyl", la::trsylSource(N), N);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  // Topology context so pinned/unpinned rows from different hosts stay
  // interpretable in the recorded JSON.
  benchmark::AddCustomContext(
      "ncpus", std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("numa_nodes", std::to_string(numaNodeCount()));
  benchmark::AddCustomContext(
      "batch_threads", std::to_string(runtime::defaultBatchThreads()));
  benchmark::AddCustomContext("pool_max_workers",
                              std::to_string(runtime::BatchPool::MaxPoolWorkers));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
