//===- bench/batch_strategies.cpp - ScalarLoop vs InstanceParallel ---------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Compares the two batched codegen strategies (see slingen::BatchStrategy)
// head to head on potrf across tiny sizes {4, 8, 16} and batch counts
// {32, 1024}: the workload shape the paper's Sec. 5 "batched computations"
// sketch targets. A google-benchmark binary so `tools/bench_batch.sh` can
// record BENCH_batch.json for the perf trajectory.
//
// Skips cleanly (registering no benchmarks, still writing valid JSON when
// --benchmark_out is given) when no system C compiler is available or the
// host has no vector ISA to parallelize across.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/Jit.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

using namespace slingen;

namespace {

/// One compiled batched kernel plus its instance buffers, shared by every
/// count-variant of the benchmark (registered lambdas copy the shared_ptr).
struct BatchBench {
  runtime::JitKernel Kernel;
  std::vector<std::vector<double>> Store; ///< per-param, MaxCount instances
  std::vector<double *> Bufs;

  BatchBench(runtime::JitKernel K) : Kernel(std::move(K)) {}
};

constexpr int MaxCount = 1024;

/// potrf inputs: count SPD instances for A, zeros for X. potrf reads A and
/// writes X only, so timed runs need no refill.
std::shared_ptr<BatchBench> makeBench(const GenResult &R,
                                      const std::string &CSource,
                                      const std::string &IsaFlags, int N) {
  runtime::CompileOptions CO;
  CO.ExtraFlags = IsaFlags;
  CO.WithBatchEntry = true;
  std::string Err;
  auto K = runtime::JitKernel::compile(
      CSource, R.Func.Name, static_cast<int>(R.Func.Params.size()), CO, Err);
  if (!K) {
    fprintf(stderr, "batch_strategies: jit failed: %s\n", Err.c_str());
    return nullptr;
  }
  auto B = std::make_shared<BatchBench>(std::move(*K));
  for (const Operand *P : R.Func.Params) {
    size_t Sz = static_cast<size_t>(P->Rows) * P->Cols;
    B->Store.emplace_back(Sz * MaxCount, 0.0);
  }
  for (size_t I = 0; I < R.Func.Params.size(); ++I) {
    if (R.Func.Params[I]->Name != "A")
      continue;
    for (int Inst = 0; Inst < MaxCount; ++Inst) {
      Rng Rand(100 + Inst);
      std::vector<double> Mat = bench::randSpd(N, Rand);
      std::copy(Mat.begin(), Mat.end(),
                B->Store[I].begin() + static_cast<size_t>(Inst) * N * N);
    }
  }
  for (auto &S : B->Store)
    B->Bufs.push_back(S.data());
  return B;
}

void registerSize(int N) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(N), Err);
  if (!P) {
    fprintf(stderr, "batch_strategies: %s\n", Err.c_str());
    return;
  }
  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = "potrf" + std::to_string(N);
  Generator G(std::move(*P), O);
  auto R = G.best(3);
  if (!R) {
    fprintf(stderr, "batch_strategies: generation failed for n=%d\n", N);
    return;
  }
  const std::string IsaFlags = runtime::isaCompileFlags(*O.Isa);
  bool UsedVector = false;
  std::string VecSource = emitBatchedVectorC(*R, &O, &UsedVector);
  if (!UsedVector) {
    // Timing the fallback would record loop-vs-loop under the "vec" label
    // and corrupt the cross-PR perf trajectory; skip loudly instead.
    fprintf(stderr,
            "batch_strategies: instance-parallel emission infeasible for "
            "n=%d; skipping its variants\n",
            N);
    VecSource.clear();
  }
  struct Variant {
    const char *Name;
    std::string Source;
  } Variants[] = {
      {"loop", emitBatchedC(*R)},
      {"vec", std::move(VecSource)},
  };
  for (const Variant &V : Variants) {
    if (V.Source.empty())
      continue;
    std::shared_ptr<BatchBench> B = makeBench(*R, V.Source, IsaFlags, N);
    if (!B)
      continue;
    for (int Count : {32, 1024}) {
      std::string Name = "potrf/n=" + std::to_string(N) +
                         "/count=" + std::to_string(Count) + "/" + V.Name;
      benchmark::RegisterBenchmark(
          Name.c_str(), [B, Count](benchmark::State &State) {
            for (auto _ : State) {
              B->Kernel.callBatch(Count, B->Bufs.data());
              benchmark::ClobberMemory();
            }
            State.SetItemsProcessed(State.iterations() * Count);
          });
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  bool Skip = false;
  if (!runtime::haveSystemCompiler()) {
    fprintf(stderr, "batch_strategies: no system C compiler; skipping\n");
    Skip = true;
  } else if (hostIsa().Nu < 2) {
    fprintf(stderr,
            "batch_strategies: host has no vector ISA; ScalarLoop is the "
            "only strategy -- skipping\n");
    Skip = true;
  }
  if (!Skip)
    for (int N : {4, 8, 16})
      registerSize(N);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
