//===- bench/fig15_l1a.cpp - paper Fig. 15d reproduction -------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// One iteration of the L1-analysis convex solver (paper Fig. 13c), cost
// ~ 8 n^2 flops: a memory-bound sequence of matrix-vector products and
// vector updates. Competitors: refblas (MKL), smallet (Eigen), naive C.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Apps.h"
#include "baselines/Naive.h"
#include "la/Programs.h"

using namespace slingen;
using namespace slingen::bench;

int main() {
  Sweep S;
  S.Title = "Fig. 15d: L1-analysis solver iteration  --  cost 8 n^2";
  S.Sizes = appSizes();
  int SGen = S.addSeries("SLinGen");
  int SRef = S.addSeries("refblas(MKL)");
  int SSml = S.addSeries("smallet(Eig)");
  int SNai = S.addSeries("naive-C");

  const double Alpha = 0.5, Beta = 0.2, Tau = 0.2;
  for (size_t I = 0; I < S.Sizes.size(); ++I) {
    int N = S.Sizes[I];
    double Flops = 8.0 * N * static_cast<double>(N);
    Rng R(N * 5);
    std::vector<double> W = randGeneral(N, N, R);
    std::vector<double> A = randGeneral(N, N, R);
    // Condition the operators like the example does so thousands of
    // measured iterations stay bounded.
    for (double &V : W)
      V *= 0.3 / std::sqrt(static_cast<double>(N));
    for (double &V : A)
      V *= 0.3 / std::sqrt(static_cast<double>(N));
    for (int D = 0; D < N; ++D) {
      W[D * N + D] += 1.0;
      A[D * N + D] += 1.0;
    }
    std::vector<double> x0 = randGeneral(N, 1, R);
    std::vector<double> y = randGeneral(N, 1, R);
    std::vector<double> v1 = randGeneral(N, 1, R);
    std::vector<double> z1 = randGeneral(N, 1, R);
    std::vector<double> v2 = randGeneral(N, 1, R);
    std::vector<double> z2 = randGeneral(N, 1, R);

    auto Gen = makeTunedKernel(la::l1aSource(N), [&](GeneratedKernel &GK) {
      auto Fill = [&](const char *Name, const std::vector<double> &V) {
        if (double *B = GK.buffer(Name))
          std::memcpy(B, V.data(), V.size() * sizeof(double));
      };
      Fill("W", W);
      Fill("A", A);
      Fill("x0", x0);
      Fill("y", y);
      Fill("v1", v1);
      Fill("z1", z1);
      Fill("v2", v2);
      Fill("z2", z2);
      GK.buffer("alpha")[0] = Alpha;
      GK.buffer("beta")[0] = Beta;
      GK.buffer("tau")[0] = Tau;
    }, /*MaxVariants=*/1);
    if (Gen)
      record(S, SGen, I, Flops, [&] { Gen->call(); });

    std::vector<double> Scratch(8 * N);
    auto V1 = v1, Z1 = z1, V2 = v2, Z2 = z2;
    record(S, SRef, I, Flops, [&] {
      apps::l1aRefblas(N, W.data(), A.data(), x0.data(), y.data(), Alpha,
                       Beta, Tau, V1.data(), Z1.data(), V2.data(), Z2.data(),
                       Scratch.data());
    });
    V1 = v1;
    Z1 = z1;
    V2 = v2;
    Z2 = z2;
    if (apps::l1aSmallet(N, W.data(), A.data(), x0.data(), y.data(), Alpha,
                         Beta, Tau, V1.data(), Z1.data(), V2.data(),
                         Z2.data()))
      record(S, SSml, I, Flops, [&] {
        apps::l1aSmallet(N, W.data(), A.data(), x0.data(), y.data(), Alpha,
                         Beta, Tau, V1.data(), Z1.data(), V2.data(),
                         Z2.data());
      });
    V1 = v1;
    Z1 = z1;
    V2 = v2;
    Z2 = z2;
    record(S, SNai, I, Flops, [&] {
      naive::l1a(N, W.data(), A.data(), x0.data(), y.data(), Alpha, Beta,
                 Tau, V1.data(), Z1.data(), V2.data(), Z2.data(),
                 Scratch.data());
    });
  }

  printSweep(S);
  return 0;
}
