//===- bench/fig14_potrf.cpp - paper Fig. 14a reproduction -----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Cholesky decomposition U^T U = A (potrf), cost ~ n^3/3 flops.
// Left plot: SLinGen vs refblas (MKL stand-in), recursive (ReLAPACK),
// smallet (Eigen), naive C (icc / clang+Polly stand-in).
// Right plot: SLinGen vs Cl1ck-over-BLAS with nb in {nu, n/2, n}.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Apps.h"
#include "baselines/Cl1ckBlas.h"
#include "baselines/Naive.h"
#include "baselines/Recursive.h"
#include "baselines/RefBlas.h"
#include "la/Programs.h"

using namespace slingen;
using namespace slingen::bench;

int main() {
  std::vector<int> Sizes = hlacSizes();

  Sweep Left;
  Left.Title = "Fig. 14a (left): potrf, U^T U = A  --  cost n^3/3";
  Left.Sizes = Sizes;
  int SGen = Left.addSeries("SLinGen");
  int SRef = Left.addSeries("refblas(MKL)");
  int SRec = Left.addSeries("recursive");
  int SSml = Left.addSeries("smallet(Eig)");
  int SNai = Left.addSeries("naive-C");

  Sweep Right;
  Right.Title = "Fig. 14a (right): potrf vs Cl1ck + BLAS";
  Right.Sizes = Sizes;
  int RGen = Right.addSeries("SLinGen");
  int RNb4 = Right.addSeries("cl1ck nb=4");
  int RNbH = Right.addSeries("cl1ck nb=n/2");
  int RNbN = Right.addSeries("cl1ck nb=n");

  for (size_t I = 0; I < Sizes.size(); ++I) {
    int N = Sizes[I];
    double Flops = N * static_cast<double>(N) * N / 3.0;
    Rng R(N);
    std::vector<double> A = randSpd(N, R);
    std::vector<double> Work(A.size());

    auto Gen = makeTunedKernel(la::potrfSource(N), [&](GeneratedKernel &K) {
      std::memcpy(K.buffer("A"), A.data(), A.size() * sizeof(double));
    }, /*MaxVariants=*/3, /*JitBudget=*/N >= 76 ? 1 : 0);
    if (Gen)
      record(Left, SGen, I, Flops, [&] { Gen->call(); });
    Right.FPerC[RGen][I] = Left.FPerC[SGen][I];

    record(Left, SRef, I, Flops, [&] {
      std::memcpy(Work.data(), A.data(), A.size() * sizeof(double));
      refblas::potrfUpper(N, Work.data(), N);
    });
    record(Left, SRec, I, Flops, [&] {
      std::memcpy(Work.data(), A.data(), A.size() * sizeof(double));
      recursive::potrfUpper(N, Work.data(), N);
    });
    if (apps::potrfSmallet(N, Work.data()))
      record(Left, SSml, I, Flops, [&] {
        std::memcpy(Work.data(), A.data(), A.size() * sizeof(double));
        apps::potrfSmallet(N, Work.data());
      });
    record(Left, SNai, I, Flops, [&] {
      std::memcpy(Work.data(), A.data(), A.size() * sizeof(double));
      naive::potrfUpper(N, Work.data());
    });

    for (auto [Series, Nb] : {std::pair{RNb4, 4}, std::pair{RNbH, N / 2},
                              std::pair{RNbN, N}})
      record(Right, Series, I, Flops, [&, Nb = std::max(1, Nb)] {
        std::memcpy(Work.data(), A.data(), A.size() * sizeof(double));
        cl1ck::potrfUpper(N, Nb, Work.data(), N);
      });
  }

  printSweep(Left);
  printSweep(Right);
  return 0;
}
