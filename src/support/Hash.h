//===- support/Hash.h - stable content hashing ----------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a 64-bit hashing for cache keys. std::hash is implementation-defined
/// and may change across processes/library versions; the KernelService disk
/// tier needs keys that are stable across both, so everything that feeds a
/// cache key goes through this hasher.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_HASH_H
#define SLINGEN_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace slingen {

/// Incremental FNV-1a over bytes, strings, and integers.
class Fnv1a64 {
public:
  void bytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ULL;
    }
  }

  /// Hashes length then content, so ("ab","c") != ("a","bc").
  void str(const std::string &S) {
    num(static_cast<uint64_t>(S.size()));
    bytes(S.data(), S.size());
  }

  void num(uint64_t V) { bytes(&V, sizeof(V)); }
  void num(int V) { num(static_cast<uint64_t>(static_cast<int64_t>(V))); }
  void boolean(bool V) { num(static_cast<uint64_t>(V ? 1 : 0)); }

  uint64_t digest() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ULL;
};

/// Fixed-width lowercase hex of a 64-bit digest (16 chars, no prefix) --
/// the on-disk cache entry naming scheme.
inline std::string hexDigest(uint64_t H) {
  static const char *Hex = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[I] = Hex[H & 0xf];
    H >>= 4;
  }
  return S;
}

} // namespace slingen

#endif // SLINGEN_SUPPORT_HASH_H
