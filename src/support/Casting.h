//===- support/Casting.h - LLVM-style isa/cast/dyn_cast helpers ----------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's isa<>/cast<>/dyn_cast<> templates for
/// class hierarchies that expose a `Kind getKind() const` discriminator and a
/// `static bool classof(const Base *)` predicate on each subclass.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_CASTING_H
#define SLINGEN_SUPPORT_CASTING_H

#include <cassert>
#include <memory>

namespace slingen {

/// Returns true if \p Val is an instance of class \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From> bool isa(const From &Val) {
  return To::classof(&Val);
}

template <typename To, typename From>
bool isa(const std::shared_ptr<From> &Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val.get());
}

/// Checked cast: asserts that \p Val really is a \p To.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From>
const To *cast(const std::shared_ptr<From> &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val.get());
}

/// Checking cast: returns null when \p Val is not a \p To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast(const std::shared_ptr<From> &Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val.get()) : nullptr;
}

} // namespace slingen

#endif // SLINGEN_SUPPORT_CASTING_H
