//===- support/Random.h - deterministic RNG for tests and benches --------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic xorshift RNG so tests and benchmarks are
/// reproducible across runs and machines (std::mt19937 distributions are not
/// guaranteed identical across standard library implementations).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_RANDOM_H
#define SLINGEN_SUPPORT_RANDOM_H

#include <cstdint>

namespace slingen {

/// xorshift64* generator with a uniform-double helper.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL)
      : State(Seed ? Seed : 1) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo = 0.0, double Hi = 1.0) {
    double U = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return Lo + U * (Hi - Lo);
  }

private:
  uint64_t State;
};

} // namespace slingen

#endif // SLINGEN_SUPPORT_RANDOM_H
