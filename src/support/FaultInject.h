//===- support/FaultInject.h - named fault points for chaos testing -------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named fault points compiled into the normal
/// build. A hook site asks `fault::shouldFire("point")`; armed points fire
/// (optionally a bounded number of times), disarmed points cost one relaxed
/// atomic load -- the registry lock is only ever taken while at least one
/// fault is armed, so production binaries pay nothing.
///
/// Points are armed programmatically (tests) or from the environment:
///
///   SLINGEN_FAULTS="drop-connection:1,slow-generate:0:300"
///
/// Comma-separated `name[:count[:ms]]` specs -- `count` 0 (or omitted)
/// means "every time until disarmed", otherwise the point auto-disarms
/// after firing `count` times; `ms` is a point-specific parameter (stall /
/// sleep duration) read with `paramMs()`.
///
/// The points wired through the serving stack:
///
///   drop-connection   Wire writeFrame: shut down the socket mid-exchange
///   stall-read        Wire readFrame: sleep `ms` before reading
///   torn-write        KernelCache storeToDisk: publish a truncated .c
///   eio-on-store      KernelCache storeToDisk: fail as if the disk errored
///   slow-generate     KernelService produce: sleep `ms` before generating
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_FAULTINJECT_H
#define SLINGEN_SUPPORT_FAULTINJECT_H

#include <string>

namespace slingen {
namespace fault {

/// True when any fault point is armed. The disarmed fast path for every
/// hook site; one relaxed atomic load.
bool anyArmed();

/// True when \p Point is armed and should fire now. Decrements a bounded
/// point's remaining count (auto-disarming at zero). Never fires while
/// nothing is armed.
bool shouldFire(const char *Point);

/// The `ms` parameter of \p Point (0 when unset or not armed). Read it
/// *before* shouldFire() when the point is count-bounded.
int paramMs(const char *Point);

/// Arms \p Point: fires \p Count times (0 = until disarmed) with
/// parameter \p Ms.
void arm(const std::string &Point, int Count = 0, int Ms = 0);

/// Disarms \p Point (no-op when not armed).
void disarm(const std::string &Point);

/// Disarms everything (test teardown).
void reset();

/// Arms every spec in `SLINGEN_FAULTS` (called once automatically on
/// first registry use; exposed for tests that set the variable late).
void armFromEnv();

} // namespace fault
} // namespace slingen

#endif // SLINGEN_SUPPORT_FAULTINJECT_H
