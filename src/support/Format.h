//===- support/Format.h - printf-style std::string formatting ------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string, plus a tiny indenting string
/// builder used by the C unparser and the various IR printers.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_FORMAT_H
#define SLINGEN_SUPPORT_FORMAT_H

#include <string>

namespace slingen {

/// Formats like printf and returns the result as a std::string.
std::string formatf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// A minimal string builder with indentation management. All IR printers and
/// the C emitter append through this class so the output stays uniformly
/// indented.
class CodeSink {
public:
  /// Appends one line at the current indentation level.
  void line(const std::string &Text);

  /// Appends raw text without touching indentation.
  void raw(const std::string &Text) { Buffer += Text; }

  void indent() { ++Depth; }
  void dedent() {
    if (Depth > 0)
      --Depth;
  }

  const std::string &str() const { return Buffer; }

private:
  std::string Buffer;
  int Depth = 0;
};

} // namespace slingen

#endif // SLINGEN_SUPPORT_FORMAT_H
