//===- support/Format.cpp -------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace slingen;

std::string slingen::formatf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Needed > 0) {
    std::vector<char> Buf(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Buf.data(), Buf.size(), Fmt, Args);
    Out.assign(Buf.data(), static_cast<size_t>(Needed));
  }
  va_end(Args);
  return Out;
}

void CodeSink::line(const std::string &Text) {
  for (int I = 0; I < Depth; ++I)
    Buffer += "  ";
  Buffer += Text;
  Buffer += '\n';
}
