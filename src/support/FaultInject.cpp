//===- support/FaultInject.cpp --------------------------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace slingen;

namespace {

struct Point {
  int Remaining = 0; // 0 = unbounded
  int Ms = 0;
};

struct Registry {
  std::mutex Mu;
  std::map<std::string, Point> Points;
};

// NumArmed lives outside the registry so the disarmed fast path never
// touches the mutex; it tracks the number of armed points.
std::atomic<int> NumArmed{0};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

bool fault::anyArmed() {
  // First query arms SLINGEN_FAULTS specs, so env-armed faults are live
  // before any hook site decides to fire. arm() never calls back here.
  static bool Init = (armFromEnv(), true);
  (void)Init;
  return NumArmed.load(std::memory_order_relaxed) > 0;
}

bool fault::shouldFire(const char *Point) {
  if (!anyArmed())
    return false;
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.Points.find(Point);
  if (It == R.Points.end())
    return false;
  if (It->second.Remaining > 0 && --It->second.Remaining == 0) {
    R.Points.erase(It);
    NumArmed.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

int fault::paramMs(const char *Point) {
  if (!anyArmed())
    return 0;
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.Points.find(Point);
  return It == R.Points.end() ? 0 : It->second.Ms;
}

void fault::arm(const std::string &Name, int Count, int Ms) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto [It, Inserted] = R.Points.try_emplace(Name);
  It->second.Remaining = Count < 0 ? 0 : Count;
  It->second.Ms = Ms;
  if (Inserted)
    NumArmed.fetch_add(1, std::memory_order_relaxed);
}

void fault::disarm(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  if (R.Points.erase(Name))
    NumArmed.fetch_sub(1, std::memory_order_relaxed);
}

void fault::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  NumArmed.fetch_sub(static_cast<int>(R.Points.size()),
                     std::memory_order_relaxed);
  R.Points.clear();
}

void fault::armFromEnv() {
  const char *Env = getenv("SLINGEN_FAULTS");
  if (!Env || !*Env)
    return;
  std::string Specs(Env);
  size_t Pos = 0;
  while (Pos <= Specs.size()) {
    size_t Comma = Specs.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Specs.size();
    std::string Spec = Specs.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Spec.empty())
      continue;
    // name[:count[:ms]]
    std::string Name = Spec;
    int Count = 0, Ms = 0;
    size_t C1 = Spec.find(':');
    if (C1 != std::string::npos) {
      Name = Spec.substr(0, C1);
      std::string Rest = Spec.substr(C1 + 1);
      size_t C2 = Rest.find(':');
      Count = atoi(Rest.substr(0, C2).c_str());
      if (C2 != std::string::npos)
        Ms = atoi(Rest.substr(C2 + 1).c_str());
    }
    if (!Name.empty())
      arm(Name, Count, Ms);
  }
}
