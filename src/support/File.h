//===- support/File.h - small file helpers --------------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-file reading, shared by the JIT (compiler logs) and the kernel
/// cache disk tier (persisted sources and metadata).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_FILE_H
#define SLINGEN_SUPPORT_FILE_H

#include <fstream>
#include <sstream>
#include <string>

namespace slingen {

/// Reads all of \p Path; \p Ok (when provided) reports whether the file
/// could be opened (an unreadable file yields an empty string).
inline std::string readFile(const std::string &Path, bool *Ok = nullptr) {
  std::ifstream In(Path);
  if (Ok)
    *Ok = static_cast<bool>(In);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace slingen

#endif // SLINGEN_SUPPORT_FILE_H
