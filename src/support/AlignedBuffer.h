//===- support/AlignedBuffer.h - 64-byte-aligned double buffers -----------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal 64-byte-aligned, zero-initialized double array. Batch scratch
/// and instance buffers want cache-line alignment: a std::vector's
/// allocation is only guaranteed 16-byte aligned, which can split the
/// full-width AVX/AVX-512 loads the widened batch kernels issue across
/// cache lines. Debug builds assert the alignment contract on every
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_ALIGNEDBUFFER_H
#define SLINGEN_SUPPORT_ALIGNEDBUFFER_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

namespace slingen {

class AlignedBuffer {
public:
  static constexpr size_t Alignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t N) : N(N) {
    if (N == 0)
      return;
    // aligned_alloc requires the size to be a multiple of the alignment.
    size_t Bytes = (N * sizeof(double) + Alignment - 1) & ~(Alignment - 1);
    P = static_cast<double *>(std::aligned_alloc(Alignment, Bytes));
    if (!P)
      throw std::bad_alloc(); // match the std::vector this replaces
    assert((reinterpret_cast<uintptr_t>(P) & (Alignment - 1)) == 0 &&
           "batch buffer is not cache-line aligned");
    std::memset(P, 0, Bytes);
  }

  AlignedBuffer(const AlignedBuffer &O) : AlignedBuffer(O.N) {
    if (N)
      std::copy(O.P, O.P + N, P);
  }

  AlignedBuffer(AlignedBuffer &&O) noexcept : P(O.P), N(O.N) {
    O.P = nullptr;
    O.N = 0;
  }

  AlignedBuffer &operator=(AlignedBuffer O) noexcept {
    std::swap(P, O.P);
    std::swap(N, O.N);
    return *this;
  }

  ~AlignedBuffer() { std::free(P); }

  double *data() { return P; }
  const double *data() const { return P; }
  size_t size() const { return N; }
  double &operator[](size_t I) { return P[I]; }
  double operator[](size_t I) const { return P[I]; }
  double *begin() { return P; }
  double *end() { return P + N; }
  const double *begin() const { return P; }
  const double *end() const { return P + N; }

private:
  double *P = nullptr;
  size_t N = 0;
};

} // namespace slingen

#endif // SLINGEN_SUPPORT_ALIGNEDBUFFER_H
