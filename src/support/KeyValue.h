//===- support/KeyValue.h - key=value line parsing ------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one `key=value`-per-line text format shared by the cache tier's
/// .meta files, the GenOptions/ServiceConfig serializers, and the wire
/// protocol's stats payload. Lines without '=' and lines starting with '#'
/// are skipped; later duplicates win in the map view.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SUPPORT_KEYVALUE_H
#define SLINGEN_SUPPORT_KEYVALUE_H

#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace slingen {

/// Parses \p Text into (key, value) pairs in line order.
inline std::vector<std::pair<std::string, std::string>>
parseKeyValueLines(const std::string &Text) {
  std::vector<std::pair<std::string, std::string>> KV;
  std::stringstream SS(Text);
  std::string Line;
  while (std::getline(SS, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Eq = Line.find('=');
    if (Eq != std::string::npos)
      KV.emplace_back(Line.substr(0, Eq), Line.substr(Eq + 1));
  }
  return KV;
}

/// Map view of parseKeyValueLines (later duplicates win).
inline std::unordered_map<std::string, std::string>
parseKeyValueMap(const std::string &Text) {
  std::unordered_map<std::string, std::string> M;
  for (auto &KV : parseKeyValueLines(Text))
    M[KV.first] = KV.second;
  return M;
}

} // namespace slingen

#endif // SLINGEN_SUPPORT_KEYVALUE_H
