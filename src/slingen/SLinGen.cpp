//===- slingen/SLinGen.cpp ------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "slingen/SLinGen.h"

#include "cir/CEmitter.h"
#include "cir/Passes.h"
#include "expr/HlacMatch.h"
#include "lgen/Tiler.h"
#include "lgen/VectorRules.h"
#include "slingen/Normalize.h"
#include "support/Hash.h"

#include <algorithm>
#include <cassert>

using namespace slingen;

//===----------------------------------------------------------------------===//
// Stage 1.
//===----------------------------------------------------------------------===//

bool slingen::expandProgramHlacs(Program &P, int BlockSize,
                                 const std::vector<int> &Choice,
                                 flame::Database *DB) {
  std::vector<EqStmt> Out;
  std::set<const Operand *> Defined = P.initiallyDefined();
  int HlacIdx = 0;
  for (EqStmt &S : P.stmts()) {
    StmtInfo Info = classifyStmt(S, Defined);
    if (!Info.IsHlac) {
      Out.push_back(std::move(S));
      continue;
    }
    HlacMatch M = matchHlac(S, Info.Defines);
    if (!M)
      return false;
    flame::HlacInstance Inst = flame::instanceFromMatch(M);
    flame::SynthOptions Opts;
    Opts.BlockSize = BlockSize;
    Opts.Variant =
        HlacIdx < static_cast<int>(Choice.size()) ? Choice[HlacIdx] : 0;
    ++HlacIdx;
    if (!flame::expandHlac(Inst, Opts, Out, DB))
      return false;
  }
  P.stmts() = std::move(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// Stages 2 and 3.
//===----------------------------------------------------------------------===//

cir::Function slingen::compileBasicProgram(Program &P, const GenOptions &O) {
  if (O.ApplyVectorRules && O.nu() > 1)
    lgen::applyVectorRules(P, 2);

  lgen::TileOptions TO;
  TO.Nu = O.nu();
  TO.UnrollTiles = O.UnrollTiles;
  TO.UnrollK = O.UnrollK;

  cir::FuncBuilder B(O.FuncName, O.nu());
  for (const EqStmt &S : P.stmts()) {
    lgen::compileSBlac(B, S, TO);
    // Structured destinations follow the full-storage convention after
    // every write: symmetric views get their stored triangle mirrored,
    // triangular views get the non-stored triangle zeroed. The dense
    // evaluator does the same, so statement semantics agree between both
    // backends.
    const auto *L = cast<ViewExpr>(S.Lhs.get());
    StructureKind LS = L->structure();
    if (L->rows() > 1 && (isSymmetric(LS) || isTriangular(LS)))
      lgen::emitStructureNormalize(B, *L, TO);
  }

  // Signature: root operands of the user-visible declarations, in
  // declaration order; temporaries become function-local arrays.
  std::vector<const Operand *> Params, Locals;
  std::vector<bool> Writable;
  for (const Operand *Op : P.operands()) {
    const Operand *Root = Op->root();
    auto &List = Root->IsTemp ? Locals : Params;
    if (std::find(List.begin(), List.end(), Root) == List.end()) {
      List.push_back(Root);
      if (!Root->IsTemp)
        Writable.push_back(false);
    }
  }
  for (const Operand *Op : P.operands())
    if (Op->isWritable()) {
      auto It = std::find(Params.begin(), Params.end(), Op->root());
      if (It != Params.end())
        Writable[It - Params.begin()] = true;
    }

  cir::Function F = B.take(Params);
  F.ParamWritable = std::move(Writable);
  F.Locals = std::move(Locals);

  if (O.EnableUnroll)
    cir::unrollLoops(F, O.UnrollMaxTrip);
  if (O.EnableCse)
    cir::cse(F);
  if (O.EnableLoadStoreOpt) {
    cir::loadStoreOpt(F);
    if (O.EnableCse)
      cir::cse(F);
  }
  if (O.EnableDce)
    cir::dce(F);
  return F;
}

//===----------------------------------------------------------------------===//
// Static cost model.
//===----------------------------------------------------------------------===//

namespace {

long instCost(const cir::Inst &I) {
  using cir::Op;
  switch (I.K) {
  case Op::SDiv:
  case Op::VDiv:
  case Op::SSqrt:
  case Op::VSqrt:
    // Sandy Bridge issues one division/square root every ~44 cycles and
    // they sit on the critical path of the factorizations.
    return 44;
  case Op::SLoad:
  case Op::SStore:
  case Op::VLoad:
  case Op::VStore:
    return 1;
  case Op::VLoadStrided:
  case Op::VStoreStrided:
  case Op::VLoadStridedMasked:
  case Op::VStoreStridedMasked:
    return 4; // gathers/scatters decompose into scalar accesses
  case Op::VShuffle:
  case Op::VExtract:
  case Op::VReduceAdd:
    return 2;
  case Op::SConst:
  case Op::VConst:
    return 0;
  default:
    return 1;
  }
}

long blockCost(const std::vector<cir::Node> &Body) {
  long Cost = 0;
  for (const cir::Node &N : Body) {
    if (const auto *I = std::get_if<cir::Inst>(&N)) {
      Cost += instCost(*I);
      continue;
    }
    const auto &L = std::get<cir::Loop>(N);
    // Affine lower bounds average to half the range.
    long Trip = (L.Hi - L.Lo + L.Step - 1) / L.Step;
    if (L.LoVar >= 0)
      Trip = std::max<long>(1, Trip / 2);
    Cost += Trip * blockCost(L.Body);
  }
  return Cost;
}

} // namespace

long slingen::staticCost(const cir::Function &F) { return blockCost(F.Body); }

//===----------------------------------------------------------------------===//
// Content fingerprints (cache keys).
//===----------------------------------------------------------------------===//

uint64_t slingen::programFingerprint(const Program &P) {
  // Program::str() prints declarations (name, shape, structure, IO, ow
  // chains) and every statement, which is exactly the content a cache key
  // must cover; temporaries get deterministic names, so the text is stable.
  Fnv1a64 H;
  H.str(P.str());
  return H.digest();
}

uint64_t slingen::optionsFingerprint(const GenOptions &O) {
  // Bumped whenever the emitted C changes for identical (program, options)
  // inputs -- e.g. new instruction lowerings or batch-driver shapes -- so
  // cached shared objects keyed on the fingerprint can never serve stale
  // code. v2: masked fused batch tails, FMA contraction, aligned locals.
  constexpr uint64_t EmissionVersion = 2;
  Fnv1a64 H;
  H.num(EmissionVersion);
  H.str(O.Isa->Name);
  H.num(O.BlockSize);
  H.num(O.UnrollTiles);
  H.num(O.UnrollK);
  H.num(O.UnrollMaxTrip);
  H.boolean(O.ApplyVectorRules);
  H.boolean(O.EnableUnroll);
  H.boolean(O.EnableCse);
  H.boolean(O.EnableLoadStoreOpt);
  H.boolean(O.EnableDce);
  H.str(O.FuncName);
  return H.digest();
}

uint64_t Generator::fingerprint() const {
  assert(Valid && "fingerprint() on an invalid program");
  Fnv1a64 H;
  H.num(programFingerprint(Src));
  H.num(optionsFingerprint(O));
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Generator.
//===----------------------------------------------------------------------===//

Generator::Generator(Program Source, GenOptions Opts)
    : Src(std::move(Source)), O(std::move(Opts)) {
  if (!normalizeProgram(Src, Err))
    return;
  std::set<const Operand *> Defined = Src.initiallyDefined();
  for (const EqStmt &S : Src.stmts()) {
    StmtInfo Info = classifyStmt(S, Defined);
    if (!Info.IsHlac)
      continue;
    HlacMatch M = matchHlac(S, Info.Defines);
    if (!M) {
      Err = "unrecognized higher-level computation: " + S.str();
      return;
    }
    Counts.push_back(flame::countVariants(flame::instanceFromMatch(M)));
  }
  Valid = true;
}

std::optional<GenResult> Generator::generate(
    const std::vector<int> &Choice) const {
  assert(Valid && "generate() on an invalid program");
  GenResult R;
  R.Basic = Src.clone();
  R.Choice = Choice;
  if (!expandProgramHlacs(R.Basic, O.blockSize(), Choice, &DB))
    return std::nullopt;
  R.Func = compileBasicProgram(R.Basic, O);
  R.Cost = staticCost(R.Func);
  return R;
}

std::vector<GenResult> Generator::enumerate(int MaxVariants) const {
  std::vector<GenResult> Out;
  std::vector<int> Choice(Counts.size(), 0);
  for (int Produced = 0; Produced < MaxVariants; ++Produced) {
    if (auto R = generate(Choice))
      Out.push_back(std::move(*R));
    // Advance the mixed-radix counter.
    size_t I = 0;
    for (; I < Choice.size(); ++I) {
      if (++Choice[I] < Counts[I])
        break;
      Choice[I] = 0;
    }
    if (I == Choice.size())
      break;
    if (Choice.empty())
      break; // no HLACs: single variant
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const GenResult &A, const GenResult &B) {
                     return A.Cost < B.Cost;
                   });
  return Out;
}

std::optional<GenResult> Generator::best(int MaxVariants) const {
  std::vector<GenResult> All = enumerate(MaxVariants);
  if (All.empty())
    return std::nullopt;
  return std::move(All.front());
}

std::string slingen::emitC(const GenResult &R) {
  return cir::emitTranslationUnit(R.Func);
}
