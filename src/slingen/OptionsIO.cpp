//===- slingen/OptionsIO.cpp ----------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "slingen/OptionsIO.h"

#include "isa/ISA.h"
#include "support/KeyValue.h"

#include <cctype>
#include <sstream>

using namespace slingen;

namespace {

bool parseInt(const std::string &Value, int &Out) {
  if (Value.empty())
    return false;
  size_t I = Value[0] == '-' ? 1 : 0;
  if (I == Value.size())
    return false;
  for (; I < Value.size(); ++I)
    if (!isdigit(static_cast<unsigned char>(Value[I])))
      return false;
  Out = atoi(Value.c_str());
  return true;
}

bool parseBool(const std::string &Value, bool &Out) {
  if (Value == "0" || Value == "false") {
    Out = false;
    return true;
  }
  if (Value == "1" || Value == "true") {
    Out = true;
    return true;
  }
  return false;
}

/// A legal C identifier, so a hostile request cannot splice code into the
/// emitted translation unit through the function name.
bool validIdentifier(const std::string &S) {
  if (S.empty() || isdigit(static_cast<unsigned char>(S[0])))
    return false;
  for (char C : S)
    if (!isalnum(static_cast<unsigned char>(C)) && C != '_')
      return false;
  return true;
}

} // namespace

std::string slingen::serializeGenOptions(const GenOptions &O) {
  std::stringstream SS;
  SS << "isa=" << O.Isa->Name << "\n";
  SS << "func=" << O.FuncName << "\n";
  SS << "block-size=" << O.BlockSize << "\n";
  SS << "unroll-tiles=" << O.UnrollTiles << "\n";
  SS << "unroll-k=" << O.UnrollK << "\n";
  SS << "unroll-max-trip=" << O.UnrollMaxTrip << "\n";
  SS << "vector-rules=" << (O.ApplyVectorRules ? 1 : 0) << "\n";
  SS << "unroll=" << (O.EnableUnroll ? 1 : 0) << "\n";
  SS << "cse=" << (O.EnableCse ? 1 : 0) << "\n";
  SS << "load-store-opt=" << (O.EnableLoadStoreOpt ? 1 : 0) << "\n";
  SS << "dce=" << (O.EnableDce ? 1 : 0) << "\n";
  return SS.str();
}

bool slingen::applyGenOption(GenOptions &O, const std::string &Key,
                             const std::string &Value, std::string &Err) {
  auto BadValue = [&] {
    Err = "bad value '" + Value + "' for option " + Key;
    return false;
  };
  if (Key == "isa") {
    const VectorISA *Isa = isaByNameOrNull(Value.c_str());
    if (!Isa) {
      Err = "unknown ISA '" + Value + "' (scalar, sse2, avx, avx512)";
      return false;
    }
    O.Isa = Isa;
    return true;
  }
  if (Key == "func") {
    if (!validIdentifier(Value)) {
      Err = "function name '" + Value + "' is not a C identifier";
      return false;
    }
    O.FuncName = Value;
    return true;
  }
  if (Key == "block-size")
    return parseInt(Value, O.BlockSize) || BadValue();
  if (Key == "unroll-tiles")
    return parseInt(Value, O.UnrollTiles) || BadValue();
  if (Key == "unroll-k")
    return parseInt(Value, O.UnrollK) || BadValue();
  if (Key == "unroll-max-trip")
    return parseInt(Value, O.UnrollMaxTrip) || BadValue();
  if (Key == "vector-rules")
    return parseBool(Value, O.ApplyVectorRules) || BadValue();
  if (Key == "unroll")
    return parseBool(Value, O.EnableUnroll) || BadValue();
  if (Key == "cse")
    return parseBool(Value, O.EnableCse) || BadValue();
  if (Key == "load-store-opt")
    return parseBool(Value, O.EnableLoadStoreOpt) || BadValue();
  if (Key == "dce")
    return parseBool(Value, O.EnableDce) || BadValue();
  Err = "unknown option '" + Key + "'";
  return false;
}

bool slingen::deserializeGenOptions(const std::string &Text, GenOptions &O,
                                    std::string &Err) {
  for (auto &KV : parseKeyValueLines(Text))
    if (!applyGenOption(O, KV.first, KV.second, Err))
      return false;
  return true;
}
