//===- slingen/SLinGen.h - the program generator driver --------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SLinGen pipeline of paper Fig. 6. A Generator owns a normalized LA
/// program and produces optimized C-IR kernels:
///
///   Stage 1  HLACs are expanded into basic linear algebra programs via the
///            FLAME engine; each HLAC has several algorithmic variants
///            (loop invariants), selected by a per-HLAC choice vector.
///   Stage 2  Scalar-merging rules (Table 2) run, then every statement is
///            tiled into nu-BLACs and lowered to C-IR.
///   Stage 3  C-IR passes run (unrolling, CSE, the load/store analysis,
///            DCE) and the kernel is unparsed to C with intrinsics.
///
/// Autotuning enumerates variant choices; a static cost model pre-ranks
/// them (used by tests), and the runtime harness re-ranks by measurement
/// (used by the benchmarks).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SLINGEN_SLINGEN_H
#define SLINGEN_SLINGEN_SLINGEN_H

#include "cir/CIR.h"
#include "cir/Verify.h"
#include "expr/Program.h"
#include "flame/Synthesizer.h"
#include "isa/ISA.h"
#include "slingen/BatchStrategy.h"

#include <optional>
#include <string>
#include <vector>

namespace slingen {

struct GenOptions {
  const VectorISA *Isa = &avxIsa();
  /// FLAME panel width; 0 means "use the vector length" (the paper's nu).
  int BlockSize = 0;
  int UnrollTiles = 32; ///< max tiles per statement before loop emission
  int UnrollK = 16;     ///< max unrolled reduction length
  int UnrollMaxTrip = 8;
  /// Stage/pass toggles, primarily for the ablation benchmarks.
  bool ApplyVectorRules = true;
  bool EnableUnroll = true;
  bool EnableCse = true;
  bool EnableLoadStoreOpt = true;
  bool EnableDce = true;
  std::string FuncName = "kernel";

  int nu() const { return Isa->Nu; }
  int blockSize() const { return BlockSize > 0 ? BlockSize : Isa->Nu; }
};

/// One fully generated kernel. Func references operands owned by Basic, so
/// the two must stay together.
struct GenResult {
  Program Basic;            ///< Stage-1 output (basic linear algebra program)
  cir::Function Func;       ///< optimized C-IR
  std::vector<int> Choice;  ///< per-HLAC algorithmic variant indices
  long Cost = 0;            ///< static cycle estimate (see staticCost)
};

/// Expands every HLAC of \p P (in statement order) using the variant index
/// from \p Choice (missing entries default to 0). Returns false if some
/// variant is infeasible for emission.
bool expandProgramHlacs(Program &P, int BlockSize,
                        const std::vector<int> &Choice,
                        flame::Database *DB = nullptr);

/// Compiles a basic (HLAC-free) program to C-IR: Stage 2 tiling plus the
/// Stage 3 pass pipeline.
cir::Function compileBasicProgram(Program &P, const GenOptions &O);

/// Weighted static cycle estimate of a C-IR function (division/sqrt heavy,
/// matching the Sandy-Bridge-like issue costs the paper reports); used to
/// pre-rank variants without measuring.
long staticCost(const cir::Function &F);

/// Stable 64-bit content hash of a program: declarations (names, shapes,
/// structures, IO kinds) and statements. Equal programs hash equal across
/// processes and library versions, so the hash can key a persistent cache.
/// Hash the *normalized* program (Generator::normalized()) so syntactically
/// different but normalization-equivalent sources share cache entries.
uint64_t programFingerprint(const Program &P);

/// Stable hash of everything in \p O that changes the emitted C: the target
/// ISA, blocking, unroll budgets, pass toggles, and the function name.
uint64_t optionsFingerprint(const GenOptions &O);

class Generator {
public:
  /// Takes ownership of \p Source; normalization runs immediately.
  /// isValid()/error() report normalization failures.
  Generator(Program Source, GenOptions Opts);

  bool isValid() const { return Valid; }
  const std::string &error() const { return Err; }

  /// Number of HLAC statements found in the normalized program.
  int hlacCount() const { return static_cast<int>(Counts.size()); }
  /// Number of algorithmic variants per HLAC, in statement order.
  const std::vector<int> &variantCounts() const { return Counts; }

  /// Runs the full pipeline for one variant choice.
  std::optional<GenResult> generate(const std::vector<int> &Choice) const;

  /// Enumerates up to \p MaxVariants choices (cartesian product, clamped),
  /// compiles each, and returns them sorted by static cost.
  std::vector<GenResult> enumerate(int MaxVariants = 16) const;

  /// Cheapest result of enumerate() (cost-model autotuning).
  std::optional<GenResult> best(int MaxVariants = 16) const;

  /// Content key of (normalized program, options); the KernelService cache
  /// key. Only valid on a valid generator.
  uint64_t fingerprint() const;

  /// Algorithm-reuse database accumulated across generate() calls
  /// (paper Stage 1a).
  const flame::Database &database() const { return DB; }

  const Program &normalized() const { return Src; }
  const GenOptions &options() const { return O; }

private:
  Program Src;
  GenOptions O;
  std::vector<int> Counts;
  bool Valid = false;
  std::string Err;
  mutable flame::Database DB;
};

/// Complete C translation unit for a generated kernel.
std::string emitC(const GenResult &R);

//===----------------------------------------------------------------------===//
// Batched emission (the paper's Sec. 5 "batched computations" extension).
//
// Both strategies share one ABI: `<name>_batch(int count, p0, p1, ...)`
// applies the kernel to `count` independent problem instances stored
// contiguously per parameter (instance b of parameter i lives at
// p_i + b * Rows_i * Cols_i).
//===----------------------------------------------------------------------===//

/// ScalarLoop strategy: the kernel's translation unit plus a batch entry
/// that calls it per instance (per-parameter strides hoisted to constants).
/// Like every batched emission, also defines `<name>_batch_span(int start,
/// int count, ...)`, the sub-range entry threaded dispatch uses.
std::string emitBatchedC(const GenResult &R);

/// A scalar (nu = 1) re-compilation of a GenResult's Stage-1 basic program:
/// the input the instance-parallel widening operates on. Func references
/// operands owned by Basic, so the two must stay together.
struct ScalarRecompile {
  Program Basic;
  cir::Function Func;
};

/// Re-runs Stage 2/3 over a clone of \p R.Basic with the scalar ISA (other
/// knobs taken from \p Opts when given, defaults otherwise). Returns
/// std::nullopt when the scalar function's parameters do not line up with
/// R.Func's (never expected; callers then fall back to ScalarLoop).
std::optional<ScalarRecompile> recompileScalar(const GenResult &R,
                                               const GenOptions *Opts = nullptr);

/// InstanceParallel strategy: the kernel's translation unit plus (a) the
/// kernel re-emitted with every scalar operation widened to R.Func.Nu lanes
/// over an interleaved AoSoA block layout (see cir/Widen.h), (b) a
/// pack/unpack layout-transpose helper pair between the contiguous
/// per-instance batch ABI and AoSoA blocks, and (c) a `<name>_batch` driver
/// that processes floor(count/Nu) full blocks vector-parallel and the
/// `count % Nu` remainder through the scalar-loop path. Falls back to
/// emitBatchedC when the target ISA is scalar or widening is infeasible;
/// \p UsedVector, when non-null, reports whether the instance-parallel
/// emission actually happened (callers labeling the output with a
/// BatchStrategy must downgrade to ScalarLoop when it is false).
/// \p Opts, when given, supplies the non-ISA codegen knobs for the scalar
/// re-compilation (pass the options the GenResult was generated under).
/// \p Pre, when given, is a ScalarRecompile the caller already computed
/// for this GenResult (the Stage-2/3 re-lowering dominates emission cost,
/// so callers that need it for other reasons should pass it in).
std::string emitBatchedVectorC(const GenResult &R,
                               const GenOptions *Opts = nullptr,
                               bool *UsedVector = nullptr,
                               const ScalarRecompile *Pre = nullptr);

/// InstanceParallelFused strategy: as emitBatchedVectorC, but the widened
/// kernel reads and writes the batch ABI directly -- parameter accesses
/// gather/scatter lane-strided instance data (stride = the parameter's
/// instance size, see cir::widenAcrossInstancesFused), so the driver passes
/// block base pointers straight through with no pack/unpack transposes and
/// no scratch blocks. Same fallback and \p UsedVector semantics as
/// emitBatchedVectorC.
std::string emitBatchedVectorFusedC(const GenResult &R,
                                    const GenOptions *Opts = nullptr,
                                    bool *UsedVector = nullptr,
                                    const ScalarRecompile *Pre = nullptr);

/// Statically verifies every cir::Function the emission for \p R compiles:
/// the single-instance kernel always, plus -- for the instance-parallel
/// batch strategies -- the widened block variants, re-derived exactly as
/// the emission derives them (scalar recompile, widening, FMA contraction
/// at Nu >= 4). Returns the first violation, or std::nullopt when all
/// functions verify (including when widening is infeasible and the emission
/// degrades to the scalar loop). The KernelService runs this once before
/// every JIT compile of freshly generated IR and maps a violation to
/// Errc::InvalidKernelIR; the cost is a few IR walks, far below the C
/// compiler invocation it gates.
std::optional<cir::VerifyError> verifyEmittedIR(const GenResult &R,
                                                const GenOptions *Opts,
                                                bool Batched,
                                                BatchStrategy Strategy);

} // namespace slingen

#endif // SLINGEN_SLINGEN_SLINGEN_H
