//===- slingen/Batched.cpp - batched entry-point emission -----------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The batched codegen strategies behind `<name>_batch(int count, ...)`
// (paper Sec. 5). ScalarLoop wraps the single-instance kernel in a loop
// over instances; InstanceParallel widens the kernel's scalar C-IR to one
// vector lane per instance over AoSoA blocks (see cir/Widen.h), with a
// layout-transpose pack/unpack pair preserving the contiguous-per-instance
// batch ABI; InstanceParallelFused widens with lane-strided parameter
// accesses so the block kernel reads and writes the batch ABI directly --
// no transposes, no scratch blocks. InstanceParallel falls back to a
// ScalarLoop remainder for count % Nu; InstanceParallelFused instead runs
// the remainder through one runtime-masked widened block (`_fusedtail`,
// see cir/Widen.h) so odd counts never drop out of vector code. Every
// strategy also emits the
// `<name>_batch_span(int start, int count, ...)` sub-range entry the
// runtime batch thread pool dispatches blocks through.
//
//===----------------------------------------------------------------------===//

#include "slingen/SLinGen.h"

#include "cir/CEmitter.h"
#include "cir/Passes.h"
#include "cir/Verify.h"
#include "cir/Widen.h"
#include "support/Format.h"

using namespace slingen;

const char *slingen::batchStrategyName(BatchStrategy S) {
  switch (S) {
  case BatchStrategy::ScalarLoop:
    return "loop";
  case BatchStrategy::InstanceParallel:
    return "vec";
  case BatchStrategy::InstanceParallelFused:
    return "fused";
  case BatchStrategy::Auto:
    return "auto";
  }
  return "loop";
}

std::optional<BatchStrategy>
slingen::batchStrategyByName(const std::string &Name) {
  if (Name == "loop")
    return BatchStrategy::ScalarLoop;
  if (Name == "vec")
    return BatchStrategy::InstanceParallel;
  if (Name == "fused")
    return BatchStrategy::InstanceParallelFused;
  if (Name == "auto")
    return BatchStrategy::Auto;
  return std::nullopt;
}

namespace {

/// `double *__restrict A` / `const double *__restrict B`, matching the
/// kernel's writability convention.
std::string batchParamDecl(const cir::Function &F, size_t I) {
  bool W = F.ParamWritable.empty() || F.ParamWritable[I];
  return std::string(W ? "" : "const ") + "double *__restrict " +
         F.Params[I]->Name;
}

long paramSize(const cir::Function &F, size_t I) {
  return static_cast<long>(F.Params[I]->Rows) * F.Params[I]->Cols;
}

/// The hoisted per-parameter instance strides `const long s_i = Rows_i*Cols_i;`.
std::string strideDecls(const cir::Function &F) {
  std::string C;
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += formatf("  const long s_%zu = %ld;\n", I, paramSize(F, I));
  return C;
}

/// The shared `<name>_batch` signature plus the stride constants.
std::string batchHeader(const cir::Function &F) {
  std::string C = "\nvoid " + F.Name + "_batch(int count";
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += ", " + batchParamDecl(F, I);
  C += ") {\n";
  C += strideDecls(F);
  return C;
}

/// One scalar call over instance b's slices, e.g. `kern(A + b * s_0, ...)`.
std::string scalarCall(const cir::Function &F, const char *Idx) {
  std::string C = F.Name + "(";
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += formatf("%s%s + %s * s_%zu", I ? ", " : "",
                 F.Params[I]->Name.c_str(), Idx, I);
  return C + ")";
}

/// `<name>_batch_span(int start, int count, ...)`: the sub-range entry the
/// batch thread pool calls -- instances [start, start+count) of the batch,
/// forwarded to `<name>_batch` at per-parameter offsets. Every strategy
/// emits it, so a shared object supports threaded dispatch regardless of
/// which emission won.
std::string batchSpan(const cir::Function &F) {
  std::string C = "void " + F.Name + "_batch_span(int start, int count";
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += ", " + batchParamDecl(F, I);
  C += ") {\n";
  C += strideDecls(F);
  C += "  " + F.Name + "_batch(count";
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += formatf(", %s + (long)start * s_%zu", F.Params[I]->Name.c_str(), I);
  C += ");\n}\n";
  return C;
}

} // namespace

std::string slingen::emitBatchedC(const GenResult &R) {
  const cir::Function &F = R.Func;
  std::string C = cir::emitTranslationUnit(F);
  C += batchHeader(F);
  C += "  for (int b = 0; b < count; ++b)\n    " + scalarCall(F, "b") +
       ";\n}\n";
  C += batchSpan(F);
  return C;
}

std::optional<ScalarRecompile>
slingen::recompileScalar(const GenResult &R, const GenOptions *Opts) {
  ScalarRecompile S;
  S.Basic = R.Basic.clone();
  GenOptions O;
  if (Opts)
    O = *Opts;
  O.Isa = &scalarIsa();
  O.FuncName = R.Func.Name;
  S.Func = compileBasicProgram(S.Basic, O);
  // The widened kernel is called positionally from the batch driver, so the
  // scalar signature must line up with R.Func's.
  if (S.Func.Params.size() != R.Func.Params.size())
    return std::nullopt;
  for (size_t I = 0; I < S.Func.Params.size(); ++I)
    if (S.Func.Params[I]->Name != R.Func.Params[I]->Name)
      return std::nullopt;
  return S;
}

namespace {

/// Shared driver for the two instance-parallel emissions; \p Fused selects
/// the lane-strided (transpose-free) layout.
std::string emitInstanceParallel(const GenResult &R, const GenOptions *Opts,
                                 bool *UsedVector, const ScalarRecompile *Pre,
                                 bool Fused) {
  if (UsedVector)
    *UsedVector = false;
  const cir::Function &F = R.Func;
  const int Nu = F.Nu;
  if (Nu < 2)
    return emitBatchedC(R); // scalar target: no lanes to parallelize across
  std::optional<ScalarRecompile> Own;
  if (!Pre) {
    Own = recompileScalar(R, Opts);
    if (!Own)
      return emitBatchedC(R);
    Pre = &*Own;
  }
  std::optional<cir::WidenedFunction> W =
      Fused ? cir::widenAcrossInstancesFused(Pre->Func, Nu,
                                             F.Name + "_fusedblk")
            : cir::widenAcrossInstances(Pre->Func, Nu, F.Name + "_vecblk");
  if (!W)
    return emitBatchedC(R);
  // Fused also gets the runtime-masked tail kernel: one widened block that
  // executes exactly the first `active_` lanes' instances, replacing the
  // old per-instance scalar remainder loop for count % Nu.
  std::optional<cir::WidenedFunction> WTail =
      Fused ? cir::widenAcrossInstancesFusedMasked(Pre->Func, Nu,
                                                   F.Name + "_fusedtail")
            : std::nullopt;
  if (Fused && !WTail)
    return emitBatchedC(R);
  if (UsedVector)
    *UsedVector = true;

  // Contract mul+add chains into hardware FMAs on ISAs that have them
  // (Nu >= 4: AVX/AVX-512). Applied identically to every widened variant so
  // tail lanes stay bit-identical to full-block lanes; never applied inside
  // the wideners themselves, keeping the hermetic widen-vs-scalar
  // interpreter tests exact.
  if (Nu >= 4) {
    cir::contractFma(W->Func);
    if (WTail)
      cir::contractFma(WTail->Func);
  }
  // Last IR-producing step before C emission: check the variants exactly as
  // they will be lowered.
  cir::verifyAssert(W->Func, "batched-widen");
  if (WTail)
    cir::verifyAssert(WTail->Func, "batched-widen-tail");

  std::string C;
  C += "#include <math.h>\n";
  C += "#include <immintrin.h>\n\n";
  // The single-instance kernel: serves plain calls and the remainder loop.
  C += cir::emitFunctionSplit(F, /*MaxInstsPerPart=*/1 << 14);
  C += "\n";
  // The instance-parallel block kernel: lane l of every vector register
  // holds instance b*Nu + l. Packed layout: operands are AoSoA blocks
  // (element e of lane l at offset e*Nu + l). Fused layout: operands are
  // the caller's batch buffers at the block base (element e of lane l at
  // offset l*s_i + e, gathered/scattered by the strided accesses).
  C += cir::emitFunctionSplit(W->Func, /*MaxInstsPerPart=*/1 << 14);
  C += "\n";
  if (WTail) {
    C += cir::emitFunctionSplit(WTail->Func, /*MaxInstsPerPart=*/1 << 14);
    C += "\n";
  }

  if (!Fused) {
    // Layout-transpose helpers between the batch ABI (count contiguous
    // instances per parameter) and one AoSoA block of Nu instances.
    C += formatf("static void %s_aosoa_pack(const double *__restrict src, "
                 "double *__restrict dst, long n) {\n"
                 "  for (long e = 0; e < n; ++e)\n"
                 "    for (int l = 0; l < %d; ++l)\n"
                 "      dst[e * %d + l] = src[l * n + e];\n"
                 "}\n",
                 F.Name.c_str(), Nu, Nu);
    C += formatf("static void %s_aosoa_unpack(const double *__restrict src, "
                 "double *__restrict dst, long n) {\n"
                 "  for (long e = 0; e < n; ++e)\n"
                 "    for (int l = 0; l < %d; ++l)\n"
                 "      dst[l * n + e] = src[e * %d + l];\n"
                 "}\n",
                 F.Name.c_str(), Nu, Nu);
  }

  C += batchHeader(F);
  if (Fused) {
    // No scratch, no transposes: the block kernel is handed the block base
    // pointers of the caller's buffers directly. Block bases are kept in
    // running pointers bumped by the (hoisted, constant) block strides so
    // the loop body carries no per-iteration multiplies, and the count % Nu
    // remainder is one masked block call instead of a scalar loop.
    for (size_t I = 0; I < F.Params.size(); ++I) {
      bool Writable = F.ParamWritable.empty() || F.ParamWritable[I];
      C += formatf("  %sdouble *bp_%zu = %s;\n", Writable ? "" : "const ", I,
                   F.Params[I]->Name.c_str());
    }
    C += "  int b = 0;\n";
    C += formatf("  for (; b + %d <= count; b += %d) {\n", Nu, Nu);
    C += "    " + W->Func.Name + "(";
    for (size_t I = 0; I < F.Params.size(); ++I)
      C += formatf("%sbp_%zu", I ? ", " : "", I);
    C += ");\n";
    for (size_t I = 0; I < F.Params.size(); ++I)
      C += formatf("    bp_%zu += %d * s_%zu;\n", I, Nu, I);
    C += "  }\n";
    C += "  if (b < count)\n";
    C += "    " + WTail->Func.Name + "(";
    for (size_t I = 0; I < F.Params.size(); ++I)
      C += formatf("%sbp_%zu", I ? ", " : "", I);
    C += formatf("%scount - b);\n", F.Params.empty() ? "" : ", ");
    C += "}\n";
    C += batchSpan(F);
    return C;
  }
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += formatf("  double blk_%zu[%ld] __attribute__((aligned(64)));\n", I,
                 paramSize(F, I) * Nu);
  C += "  int b = 0;\n";
  C += formatf("  for (; b + %d <= count; b += %d) {\n", Nu, Nu);
  // Pack every parameter: inputs obviously; outputs too, so elements the
  // kernel leaves untouched round-trip unchanged, exactly as in the
  // scalar-loop strategy. This makes output buffers part of the *read*
  // set under this strategy (documented in README "Batched execution").
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += formatf("    %s_aosoa_pack(%s + b * s_%zu, blk_%zu, s_%zu);\n",
                 F.Name.c_str(), F.Params[I]->Name.c_str(), I, I, I);
  C += "    " + W->Func.Name + "(";
  for (size_t I = 0; I < F.Params.size(); ++I)
    C += formatf("%sblk_%zu", I ? ", " : "", I);
  C += ");\n";
  for (size_t I = 0; I < F.Params.size(); ++I) {
    bool Writable = F.ParamWritable.empty() || F.ParamWritable[I];
    if (Writable)
      C += formatf("    %s_aosoa_unpack(blk_%zu, %s + b * s_%zu, s_%zu);\n",
                   F.Name.c_str(), I, F.Params[I]->Name.c_str(), I, I);
  }
  C += "  }\n";
  C += "  for (; b < count; ++b)\n    " + scalarCall(F, "b") + ";\n}\n";
  C += batchSpan(F);
  return C;
}

} // namespace

std::string slingen::emitBatchedVectorC(const GenResult &R,
                                        const GenOptions *Opts,
                                        bool *UsedVector,
                                        const ScalarRecompile *Pre) {
  return emitInstanceParallel(R, Opts, UsedVector, Pre, /*Fused=*/false);
}

std::string slingen::emitBatchedVectorFusedC(const GenResult &R,
                                             const GenOptions *Opts,
                                             bool *UsedVector,
                                             const ScalarRecompile *Pre) {
  return emitInstanceParallel(R, Opts, UsedVector, Pre, /*Fused=*/true);
}

std::optional<cir::VerifyError>
slingen::verifyEmittedIR(const GenResult &R, const GenOptions *Opts,
                         bool Batched, BatchStrategy Strategy) {
  if (auto E = cir::verifyFirst(R.Func))
    return E;
  if (!Batched || (Strategy != BatchStrategy::InstanceParallel &&
                   Strategy != BatchStrategy::InstanceParallelFused))
    return std::nullopt;
  const int Nu = R.Func.Nu;
  if (Nu < 2)
    return std::nullopt; // emission degrades to the scalar loop
  std::optional<ScalarRecompile> Pre = recompileScalar(R, Opts);
  if (!Pre)
    return std::nullopt; // ditto
  if (auto E = cir::verifyFirst(Pre->Func))
    return E;
  bool Fused = Strategy == BatchStrategy::InstanceParallelFused;
  std::optional<cir::WidenedFunction> W =
      Fused ? cir::widenAcrossInstancesFused(Pre->Func, Nu,
                                             R.Func.Name + "_fusedblk")
            : cir::widenAcrossInstances(Pre->Func, Nu,
                                        R.Func.Name + "_vecblk");
  if (!W)
    return std::nullopt;
  if (Nu >= 4)
    cir::contractFma(W->Func);
  if (auto E = cir::verifyFirst(W->Func))
    return E;
  if (Fused) {
    std::optional<cir::WidenedFunction> WTail =
        cir::widenAcrossInstancesFusedMasked(Pre->Func, Nu,
                                             R.Func.Name + "_fusedtail");
    if (!WTail)
      return std::nullopt;
    if (Nu >= 4)
      cir::contractFma(WTail->Func);
    if (auto E = cir::verifyFirst(WTail->Func))
      return E;
  }
  return std::nullopt;
}
