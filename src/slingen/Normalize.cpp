//===- slingen/Normalize.cpp ----------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "slingen/Normalize.h"

#include "expr/HlacMatch.h"
#include "lgen/Tiler.h"

#include <cassert>

using namespace slingen;

namespace {

/// True if E is a view, a transposed view, or a constant: the only factor
/// forms the tiler's flattener accepts inside a product.
bool isSimpleFactor(const ExprPtr &E) {
  if (isa<ViewExpr>(E) || isa<ConstExpr>(E))
    return true;
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return U->kind() == ExprKind::Trans && isa<ViewExpr>(U->Sub);
  return false;
}

bool allViewsScalar(const ExprPtr &E) {
  if (const auto *V = dyn_cast<ViewExpr>(E))
    return V->rows() == 1 && V->cols() == 1;
  if (isa<ConstExpr>(E))
    return true;
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return allViewsScalar(U->Sub);
  const auto *B = cast<BinaryExpr>(E.get());
  return allViewsScalar(B->L) && allViewsScalar(B->R);
}

class Normalizer {
public:
  Normalizer(Program &P, std::string &Err) : P(P), Err(Err) {}

  bool run() {
    std::vector<EqStmt> Out;
    std::set<const Operand *> Defined = P.initiallyDefined();
    for (EqStmt &S : P.stmts()) {
      StmtInfo Info = classifyStmt(S, Defined);
      if (Info.IsHlac) {
        // HLAC right-hand sides must be plain views: pull anything else
        // into a temporary computed by a preceding sBLAC.
        if (!normalizeHlacRhs(S, Out))
          return false;
        Out.push_back(std::move(S));
        continue;
      }
      // Pure scalar statements may contain division/sqrt and go through
      // the direct scalar path untouched.
      const auto *L = cast<ViewExpr>(S.Lhs.get());
      if (L->rows() == 1 && L->cols() == 1 && allViewsScalar(S.Rhs)) {
        Out.push_back(std::move(S));
        continue;
      }
      ExprPtr R = rewriteLinear(S.Rhs, Out);
      if (!R)
        return false;
      Out.push_back({std::move(S.Lhs), std::move(R)});
    }
    P.stmts() = std::move(Out);
    return true;
  }

private:
  Program &P;
  std::string &Err;

  Operand *freshTemp(const ExprPtr &E) {
    return P.makeTemp(E->rows(), E->cols(), inferStructure(E));
  }

  /// Materializes \p E into a temporary via an auxiliary statement
  /// (recursively normalized) and returns a view of it.
  ExprPtr materialize(ExprPtr E, std::vector<EqStmt> &Pre) {
    if (E->isScalarShaped() && allViewsScalar(E)) {
      // Scalar temporaries keep division/sqrt in the direct scalar path.
      Operand *T = freshTemp(E);
      Pre.push_back({view(T), std::move(E)});
      return view(T);
    }
    ExprPtr R = rewriteLinear(E, Pre);
    if (!R)
      return nullptr;
    Operand *T = freshTemp(R);
    Pre.push_back({view(T), std::move(R)});
    return view(T);
  }

  /// Rewrites an expression in additive (linear) context: Add/Sub/Neg nodes
  /// are kept, products are normalized, everything else is checked.
  ExprPtr rewriteLinear(const ExprPtr &E, std::vector<EqStmt> &Pre) {
    switch (E->kind()) {
    case ExprKind::Add:
    case ExprKind::Sub: {
      const auto *B = cast<BinaryExpr>(E.get());
      ExprPtr L = rewriteLinear(B->L, Pre);
      ExprPtr R = rewriteLinear(B->R, Pre);
      if (!L || !R)
        return nullptr;
      return B->kind() == ExprKind::Add ? add(std::move(L), std::move(R))
                                        : sub(std::move(L), std::move(R));
    }
    case ExprKind::Neg: {
      ExprPtr S = rewriteLinear(cast<UnaryExpr>(E.get())->Sub, Pre);
      return S ? neg(std::move(S)) : nullptr;
    }
    case ExprKind::Mul:
      return rewriteProduct(E, Pre);
    case ExprKind::View:
    case ExprKind::Const:
      return E;
    case ExprKind::Trans: {
      ExprPtr S = rewriteFactor(cast<UnaryExpr>(E.get())->Sub, Pre);
      return S ? trans(std::move(S)) : nullptr;
    }
    case ExprKind::Div: {
      // Division appears with a scalar divisor only; rewrite X / s into
      // (1/s) * X with a scalar temporary (this is the paper's rule R1).
      const auto *B = cast<BinaryExpr>(E.get());
      if (!B->R->isScalarShaped()) {
        Err = "division by a non-scalar expression: " + E->str();
        return nullptr;
      }
      ExprPtr Recip = materialize(divExpr(constant(1.0), B->R), Pre);
      ExprPtr L = rewriteLinear(B->L, Pre);
      if (!Recip || !L)
        return nullptr;
      return mul(std::move(Recip), std::move(L));
    }
    default:
      Err = "unsupported expression in an sBLAC: " + E->str();
      return nullptr;
    }
  }

  /// Rewrites an expression that must become a single factor of a product.
  ExprPtr rewriteFactor(const ExprPtr &E, std::vector<EqStmt> &Pre) {
    if (isSimpleFactor(E))
      return E;
    // Scalar subexpressions without division can stay inline if they are
    // products of simple scalars; everything else becomes a temporary.
    return materialize(E, Pre);
  }

  /// Normalizes a product tree so the final expression is a single term
  /// with at most two matrix factors.
  ExprPtr rewriteProduct(const ExprPtr &E, std::vector<EqStmt> &Pre) {
    // Collect the multiplicative chain.
    std::vector<ExprPtr> Factors;
    if (!collectFactors(E, Factors, Pre))
      return nullptr;
    // Split the matrix chain left to right while more than two remain.
    std::vector<ExprPtr> Mats, Scas;
    for (ExprPtr &F : Factors)
      (F->isScalarShaped() ? Scas : Mats).push_back(std::move(F));
    while (Mats.size() > 2) {
      ExprPtr Prod = mul(std::move(Mats[0]), std::move(Mats[1]));
      Operand *T = freshTemp(Prod);
      Pre.push_back({view(T), std::move(Prod)});
      Mats.erase(Mats.begin());
      Mats[0] = view(T);
    }
    ExprPtr R;
    for (ExprPtr &S : Scas)
      R = R ? mul(std::move(R), std::move(S)) : std::move(S);
    for (ExprPtr &M : Mats)
      R = R ? mul(std::move(R), std::move(M)) : std::move(M);
    assert(R && "empty product");
    return R;
  }

  bool collectFactors(const ExprPtr &E, std::vector<ExprPtr> &Out,
                      std::vector<EqStmt> &Pre) {
    if (E->kind() == ExprKind::Mul) {
      const auto *B = cast<BinaryExpr>(E.get());
      return collectFactors(B->L, Out, Pre) && collectFactors(B->R, Out, Pre);
    }
    ExprPtr F = rewriteFactor(E, Pre);
    if (!F)
      return false;
    Out.push_back(std::move(F));
    return true;
  }

  bool normalizeHlacRhs(EqStmt &S, std::vector<EqStmt> &Pre) {
    // X = inv(L) has no RHS source; equation HLACs have the source on the
    // right. Leave views alone; materialize everything else.
    if (isa<ViewExpr>(S.Rhs) || S.Rhs->kind() == ExprKind::Inv)
      return true;
    ExprPtr V = materialize(S.Rhs, Pre);
    if (!V)
      return false;
    S.Rhs = std::move(V);
    return true;
  }
};

} // namespace

bool slingen::isTilable(const EqStmt &S) {
  const auto *L = dyn_cast<ViewExpr>(S.Lhs.get());
  if (!L)
    return false;
  if (L->rows() == 1 && L->cols() == 1 && allViewsScalar(S.Rhs))
    return true;
  std::vector<lgen::Term> Terms;
  if (!lgen::flattenRhs(S.Rhs, Terms))
    return false;
  for (const lgen::Term &T : Terms) {
    if (T.Mat.size() > 2)
      return false;
    for (const ExprPtr &Sc : T.Sca)
      if (!isa<ViewExpr>(Sc) && !isa<ConstExpr>(Sc) &&
          !(Sc->kind() == ExprKind::Trans &&
            isa<ViewExpr>(cast<UnaryExpr>(Sc.get())->Sub)))
        return false;
  }
  return true;
}

bool slingen::normalizeProgram(Program &P, std::string &Err) {
  Normalizer N(P, Err);
  return N.run();
}
