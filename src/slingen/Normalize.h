//===- slingen/Normalize.h - statement normalization ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pre-Stage-1 statement normalization (paper Sec. 3.1/3.2 preconditions):
/// compound right-hand sides of HLACs are materialized into temporaries so
/// every HLAC solves against a plain view, and sBLAC right-hand sides are
/// rewritten until the tiler accepts them -- products with more than two
/// matrix factors are split (e.g. the Kalman filter's F*P*F^T), compound
/// factors inside products are materialized, and scalar subexpressions with
/// division or square root are hoisted into scalar temporaries.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SLINGEN_NORMALIZE_H
#define SLINGEN_SLINGEN_NORMALIZE_H

#include "expr/Program.h"

namespace slingen {

/// Rewrites the statements of \p P in place. Returns false (with \p Err
/// set) for statements outside the supported language.
bool normalizeProgram(Program &P, std::string &Err);

/// True if the tiler can compile this statement directly (used by
/// normalization as the fixpoint test and by tests as an invariant check).
bool isTilable(const EqStmt &S);

} // namespace slingen

#endif // SLINGEN_SLINGEN_NORMALIZE_H
