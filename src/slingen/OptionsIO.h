//===- slingen/OptionsIO.h - GenOptions (de)serialization -----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One canonical textual round trip for GenOptions: `key=value` lines in a
/// fixed key order. It is the single source of truth for naming the codegen
/// knobs -- the wire protocol ships requests through it, and the slc/sld
/// flag parsers apply user input through applyGenOption() instead of
/// hand-rolled per-flag plumbing.
///
/// Keys: isa, func, block-size, unroll-tiles, unroll-k, unroll-max-trip,
/// vector-rules, unroll, cse, load-store-opt, dce. Booleans serialize as
/// 0/1; the ISA serializes by name. deserializeGenOptions() starts from the
/// caller's \p O (normally defaults), so a partial document is an overlay,
/// and rejects unknown keys -- a sender speaking a newer dialect fails
/// loudly instead of being half-applied.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SLINGEN_OPTIONSIO_H
#define SLINGEN_SLINGEN_OPTIONSIO_H

#include "slingen/SLinGen.h"

#include <string>

namespace slingen {

/// Serializes every GenOptions field to `key=value` lines (fixed order, so
/// equal options produce byte-equal documents).
std::string serializeGenOptions(const GenOptions &O);

/// Applies one `key=value` setting to \p O. Returns false (with \p Err) on
/// an unknown key or a malformed value.
bool applyGenOption(GenOptions &O, const std::string &Key,
                    const std::string &Value, std::string &Err);

/// Applies every line of a serializeGenOptions() document on top of \p O.
bool deserializeGenOptions(const std::string &Text, GenOptions &O,
                           std::string &Err);

} // namespace slingen

#endif // SLINGEN_SLINGEN_OPTIONSIO_H
