//===- slingen/BatchStrategy.h - batched iteration strategies --------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched codegen strategy enum, standalone so the cache/runtime tier
/// (service/KernelCache.h) can name it without depending on the full
/// generator API. The emission functions it selects between live in
/// slingen/SLinGen.h.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SLINGEN_BATCHSTRATEGY_H
#define SLINGEN_SLINGEN_BATCHSTRATEGY_H

#include <optional>
#include <string>

namespace slingen {

/// How a `<name>_batch(int count, ...)` entry point iterates its instances.
enum class BatchStrategy {
  ScalarLoop,       ///< loop over instances, one single-instance call each
  InstanceParallel, ///< one vector lane per instance (packed AoSoA blocks)
  /// One vector lane per instance, reading the batch ABI directly: the
  /// widened kernel's loads gather lane-strided instance data and its
  /// stores scatter results back, so no pack/unpack layout transposes (and
  /// no scratch blocks) bracket the block kernel.
  InstanceParallelFused,
  Auto,             ///< service picks: measured when possible, else modeled
};

/// Stable short names ("loop", "vec", "fused", "auto") for flags and .meta
/// files.
const char *batchStrategyName(BatchStrategy S);
/// Inverse of batchStrategyName; returns std::nullopt on unknown names.
std::optional<BatchStrategy> batchStrategyByName(const std::string &Name);

} // namespace slingen

#endif // SLINGEN_SLINGEN_BATCHSTRATEGY_H
