//===- baselines/Recursive.cpp --------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Recursive.h"

#include "baselines/RefBlas.h"

using namespace slingen;

int recursive::potrfUpper(int N, double *A, int Lda) {
  if (N <= BaseSize)
    return refblas::potrfUpper(N, A, Lda);
  int N1 = N / 2, N2 = N - N1;
  double *A11 = A;
  double *A12 = A + N1;
  double *A21 = A + static_cast<long>(N1) * Lda;
  double *A22 = A21 + N1;
  if (int Info = potrfUpper(N1, A11, Lda))
    return Info;
  // A12 = U11^-T A12.
  refblas::trsmLeft(/*Upper=*/true, /*TransA=*/true, /*UnitDiag=*/false, N1,
                    N2, A11, Lda, A12, Lda);
  // A22 -= A12^T A12 (only the upper triangle matters; the recursion's
  // base case re-zeroes the strictly-lower part).
  refblas::gemm(N2, N2, N1, -1.0, A12, Lda, /*TransA=*/true, A12, Lda,
                /*TransB=*/false, 1.0, A22, Lda);
  if (int Info = potrfUpper(N2, A22, Lda))
    return Info ? Info + N1 : 0;
  // Zero the strictly-lower block (full-storage convention).
  for (int I = 0; I < N2; ++I)
    for (int J = 0; J < N1; ++J)
      A21[static_cast<long>(I) * Lda + J] = 0.0;
  return 0;
}

void recursive::trtriLower(int N, double *A, int Lda) {
  if (N <= BaseSize) {
    refblas::trtriLower(N, A, Lda);
    return;
  }
  int N1 = N / 2, N2 = N - N1;
  double *A11 = A;
  double *A21 = A + static_cast<long>(N1) * Lda;
  double *A22 = A21 + N1;
  // inv([A11 0; A21 A22]) = [X11 0; -X22 A21 X11, X22].
  trtriLower(N1, A11, Lda);
  trtriLower(N2, A22, Lda);
  // A21 := -A22 * A21 * A11 (both factors already inverted).
  refblas::trmmLeft(/*Upper=*/false, /*TransA=*/false, /*UnitDiag=*/false,
                    N2, N1, A22, Lda, A21, Lda);
  refblas::trmmRight(/*Upper=*/false, /*TransA=*/false, /*UnitDiag=*/false,
                     N2, N1, A11, Lda, A21, Lda);
  for (int I = 0; I < N2; ++I)
    for (int J = 0; J < N1; ++J)
      A21[static_cast<long>(I) * Lda + J] = -A21[static_cast<long>(I) * Lda + J];
}

void recursive::trsylLowerUpper(int M, int N, const double *L, int Ldl,
                                const double *U, int Ldu, double *C,
                                int Ldc) {
  if (M <= BaseSize && N <= BaseSize) {
    refblas::trsylLowerUpper(M, N, L, Ldl, U, Ldu, C, Ldc);
    return;
  }
  if (M >= N) {
    // Split the rows: [L11 0; L21 L22].
    int M1 = M / 2, M2 = M - M1;
    const double *L11 = L;
    const double *L21 = L + static_cast<long>(M1) * Ldl;
    const double *L22 = L21 + M1;
    double *C1 = C;
    double *C2 = C + static_cast<long>(M1) * Ldc;
    trsylLowerUpper(M1, N, L11, Ldl, U, Ldu, C1, Ldc);
    // C2 -= L21 X1.
    refblas::gemm(M2, N, M1, -1.0, L21, Ldl, false, C1, Ldc, false, 1.0, C2,
                  Ldc);
    trsylLowerUpper(M2, N, L22, Ldl, U, Ldu, C2, Ldc);
    return;
  }
  // Split the columns: [U11 U12; 0 U22].
  int N1 = N / 2, N2 = N - N1;
  const double *U11 = U;
  const double *U12 = U + N1;
  const double *U22 = U + static_cast<long>(N1) * Ldu + N1;
  double *C1 = C;
  double *C2 = C + N1;
  trsylLowerUpper(M, N1, L, Ldl, U11, Ldu, C1, Ldc);
  // C2 -= X1 U12.
  refblas::gemm(M, N2, N1, -1.0, C1, Ldc, false, U12, Ldu, false, 1.0, C2,
                Ldc);
  trsylLowerUpper(M, N2, L, Ldl, U22, Ldu, C2, Ldc);
}

void recursive::trlyaLower(int N, const double *L, int Ldl, double *S,
                           int Lds) {
  if (N <= BaseSize) {
    refblas::trlyaLower(N, L, Ldl, S, Lds);
    return;
  }
  // [L11 0; L21 L22] X + X [L11^T L21^T; 0 L22^T] = S, X symmetric:
  //   L11 X11 + X11 L11^T = S11                       (Lyapunov)
  //   L22 X21 + X21 L11^T = S21 - L21 X11             (Sylvester)
  //   L22 X22 + X22 L22^T = S22 - L21 X12 - X21 L21^T (Lyapunov)
  int N1 = N / 2, N2 = N - N1;
  const double *L11 = L;
  const double *L21 = L + static_cast<long>(N1) * Ldl;
  const double *L22 = L21 + N1;
  double *S11 = S;
  double *S12 = S + N1;
  double *S21 = S + static_cast<long>(N1) * Lds;
  double *S22 = S21 + N1;

  trlyaLower(N1, L11, Ldl, S11, Lds);
  // S21 -= L21 X11; then solve L22 X21 + X21 L11^T = S21. With row-major
  // storage this is a Sylvester equation with coefficients L22 (lower) and
  // L11^T (upper).
  refblas::gemm(N2, N1, N1, -1.0, L21, Ldl, false, S11, Lds, false, 1.0, S21,
                Lds);
  // Build U = L11^T once (refblas trsyl wants an explicit upper factor).
  {
    // Transposing in a small local buffer keeps refblas interfaces simple.
    thread_local double UBuf[256 * 256];
    for (int I = 0; I < N1; ++I)
      for (int J = 0; J < N1; ++J)
        UBuf[I * N1 + J] = L11[static_cast<long>(J) * Ldl + I];
    refblas::trsylLowerUpper(N2, N1, L22, Ldl, UBuf, N1, S21, Lds);
  }
  // Mirror X21 into S12 (full storage).
  for (int I = 0; I < N2; ++I)
    for (int J = 0; J < N1; ++J)
      S12[static_cast<long>(J) * Lds + I] = S21[static_cast<long>(I) * Lds + J];
  // S22 -= L21 X12 + X21 L21^T.
  refblas::gemm(N2, N2, N1, -1.0, L21, Ldl, false, S12, Lds, false, 1.0, S22,
                Lds);
  refblas::gemm(N2, N2, N1, -1.0, S21, Lds, false, L21, Ldl, true, 1.0, S22,
                Lds);
  trlyaLower(N2, L22, Ldl, S22, Lds);
}
