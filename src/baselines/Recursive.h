//===- baselines/Recursive.h - recursive blocked solvers ------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive blocked implementations of the Table 3 HLACs in the style of
/// ReLAPACK (potrf, trtri) and RECSY (trsyl, trlya): each operation splits
/// its operands in half, recurses on the halves, and glues them with large
/// BLAS-3 updates. These are the paper's ReLAPACK and RECSY comparators
/// (see DESIGN.md substitutions). Row-major with leading dimensions,
/// full-storage convention.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_BASELINES_RECURSIVE_H
#define SLINGEN_BASELINES_RECURSIVE_H

namespace slingen {
namespace recursive {

/// Crossover below which recursion stops and the unblocked kernel runs.
inline constexpr int BaseSize = 8;

/// A = U^T U; U overwrites the upper triangle, strictly-lower zeroed.
/// Returns 0 on success (same contract as refblas::potrfUpper).
int potrfUpper(int N, double *A, int Lda);

/// In-place inverse of a lower-triangular matrix.
void trtriLower(int N, double *A, int Lda);

/// L X + X U = C solved for X in place of C (L lower MxM, U upper NxN).
void trsylLowerUpper(int M, int N, const double *L, int Ldl, const double *U,
                     int Ldu, double *C, int Ldc);

/// L X + X L^T = S solved for symmetric X in place of S (L lower NxN).
void trlyaLower(int N, const double *L, int Ldl, double *S, int Lds);

} // namespace recursive
} // namespace slingen

#endif // SLINGEN_BASELINES_RECURSIVE_H
