//===- baselines/Naive.cpp ------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Naive.h"

#include <cmath>

using namespace slingen;

void naive::matmul(int M, int N, int K, const double *A, const double *B,
                   double *C) {
  for (int I = 0; I < M; ++I)
    for (int J = 0; J < N; ++J) {
      double S = 0.0;
      for (int P = 0; P < K; ++P)
        S += A[I * K + P] * B[P * N + J];
      C[I * N + J] = S;
    }
}

void naive::matmulNT(int M, int N, int K, const double *A, const double *B,
                     double *C) {
  for (int I = 0; I < M; ++I)
    for (int J = 0; J < N; ++J) {
      double S = 0.0;
      for (int P = 0; P < K; ++P)
        S += A[I * K + P] * B[J * K + P];
      C[I * N + J] = S;
    }
}

void naive::matmulTN(int M, int N, int K, const double *A, const double *B,
                     double *C) {
  for (int I = 0; I < M; ++I)
    for (int J = 0; J < N; ++J) {
      double S = 0.0;
      for (int P = 0; P < K; ++P)
        S += A[P * M + I] * B[P * N + J];
      C[I * N + J] = S;
    }
}

int naive::potrfUpper(int N, double *A) {
  for (int K = 0; K < N; ++K) {
    double D = A[K * N + K];
    for (int P = 0; P < K; ++P)
      D -= A[P * N + K] * A[P * N + K];
    if (D <= 0.0)
      return K + 1;
    D = std::sqrt(D);
    A[K * N + K] = D;
    for (int J = K + 1; J < N; ++J) {
      double S = A[K * N + J];
      for (int P = 0; P < K; ++P)
        S -= A[P * N + K] * A[P * N + J];
      A[K * N + J] = S / D;
    }
  }
  for (int I = 1; I < N; ++I)
    for (int J = 0; J < I; ++J)
      A[I * N + J] = 0.0;
  return 0;
}

void naive::trtriLower(int N, double *A) {
  for (int J = 0; J < N; ++J) {
    A[J * N + J] = 1.0 / A[J * N + J];
    for (int I = J + 1; I < N; ++I) {
      double S = 0.0;
      for (int P = J; P < I; ++P)
        S += A[I * N + P] * A[P * N + J];
      A[I * N + J] = -S / A[I * N + I];
    }
  }
}

void naive::trsylLowerUpper(int N, const double *L, const double *U,
                            double *C) {
  // Element-wise forward substitution: X(i,j) depends on rows < i and
  // columns < j.
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      double S = C[I * N + J];
      for (int P = 0; P < I; ++P)
        S -= L[I * N + P] * C[P * N + J];
      for (int P = 0; P < J; ++P)
        S -= C[I * N + P] * U[P * N + J];
      C[I * N + J] = S / (L[I * N + I] + U[J * N + J]);
    }
}

void naive::trlyaLower(int N, const double *L, double *S) {
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J) {
      double V = S[I * N + J];
      for (int P = 0; P < I; ++P)
        V -= L[I * N + P] * S[P * N + J];
      for (int P = 0; P < J; ++P)
        V -= S[I * N + P] * L[J * N + P];
      V /= L[I * N + I] + L[J * N + J];
      S[I * N + J] = V;
      S[J * N + I] = V;
    }
}

namespace {

void trsvLowerT(int N, const double *L, double *X) {
  // Solves L^T x = b in place (backward substitution over L's columns).
  for (int I = N - 1; I >= 0; --I) {
    double S = X[I];
    for (int P = I + 1; P < N; ++P)
      S -= L[P * N + I] * X[P];
    X[I] = S / L[I * N + I];
  }
}

void trsvLower(int N, const double *L, double *X) {
  for (int I = 0; I < N; ++I) {
    double S = X[I];
    for (int P = 0; P < I; ++P)
      S -= L[I * N + P] * X[P];
    X[I] = S / L[I * N + I];
  }
}

int cholLower(int N, double *A) {
  // A = L L^T, L in the lower triangle, strictly-upper zeroed.
  for (int J = 0; J < N; ++J) {
    double D = A[J * N + J];
    for (int P = 0; P < J; ++P)
      D -= A[J * N + P] * A[J * N + P];
    if (D <= 0.0)
      return J + 1;
    D = std::sqrt(D);
    A[J * N + J] = D;
    for (int I = J + 1; I < N; ++I) {
      double S = A[I * N + J];
      for (int P = 0; P < J; ++P)
        S -= A[I * N + P] * A[J * N + P];
      A[I * N + J] = S / D;
    }
  }
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      A[I * N + J] = 0.0;
  return 0;
}

} // namespace

void naive::kalman(int N, int K, const double *F, const double *B,
                   const double *Q, const double *H, const double *R,
                   const double *u, const double *z, double *x, double *P,
                   double *Scratch) {
  double *y = Scratch;          // N
  double *Y = y + N;            // N*N
  double *T = Y + N * N;        // N*N (F*P, later M2*M5)
  double *v = T + N * N;        // K  (v0/v1/v2 in place)
  double *M1 = v + K;           // K*N
  double *M2 = M1 + K * N;      // N*K
  double *M3 = M2 + N * K;      // K*K (U overwrites)
  double *M4 = M3 + K * K;      // K*N (M5 in place)

  // y = F x + B u.
  for (int I = 0; I < N; ++I) {
    double S = 0.0;
    for (int P2 = 0; P2 < N; ++P2)
      S += F[I * N + P2] * x[P2] + B[I * N + P2] * u[P2];
    y[I] = S;
  }
  // Y = F P F^T + Q.
  matmul(N, N, N, F, P, T);
  matmulNT(N, N, N, T, F, Y);
  for (int I = 0; I < N * N; ++I)
    Y[I] += Q[I];
  // v0 = z - H y.
  for (int I = 0; I < K; ++I) {
    double S = z[I];
    for (int P2 = 0; P2 < N; ++P2)
      S -= H[I * N + P2] * y[P2];
    v[I] = S;
  }
  // M1 = H Y; M2 = Y H^T; M3 = M1 H^T + R.
  matmul(K, N, N, H, Y, M1);
  matmulNT(N, K, N, Y, H, M2);
  matmulNT(K, K, N, M1, H, M3);
  for (int I = 0; I < K * K; ++I)
    M3[I] += R[I];
  // U^T U = M3: with row-major storage an upper factorization of M3 viewed
  // as L L^T on the transpose; use the lower Cholesky of M3 (symmetric) and
  // treat U = Lc^T implicitly in the solves below.
  cholLower(K, M3);
  // U^T v1 = v0  ->  Lc v1 = v0 (U^T = Lc).
  trsvLower(K, M3, v);
  // U v2 = v1    ->  Lc^T v2 = v1.
  trsvLowerT(K, M3, v);
  // U^T M4 = M1; U M5 = M4 (column-wise solves).
  for (int I = 0; I < K * N; ++I)
    M4[I] = M1[I];
  for (int C = 0; C < N; ++C) {
    // Forward then backward substitution on column C of M4.
    for (int I = 0; I < K; ++I) {
      double S = M4[I * N + C];
      for (int P2 = 0; P2 < I; ++P2)
        S -= M3[I * K + P2] * M4[P2 * N + C];
      M4[I * N + C] = S / M3[I * K + I];
    }
    for (int I = K - 1; I >= 0; --I) {
      double S = M4[I * N + C];
      for (int P2 = I + 1; P2 < K; ++P2)
        S -= M3[P2 * K + I] * M4[P2 * N + C];
      M4[I * N + C] = S / M3[I * K + I];
    }
  }
  // x = y + M2 v2.
  for (int I = 0; I < N; ++I) {
    double S = y[I];
    for (int P2 = 0; P2 < K; ++P2)
      S += M2[I * K + P2] * v[P2];
    x[I] = S;
  }
  // P = Y - M2 M5.
  matmul(N, N, K, M2, M4, T);
  for (int I = 0; I < N * N; ++I)
    P[I] = Y[I] - T[I];
}

void naive::gpr(int N, const double *K, const double *X, const double *x,
                const double *y, double *Phi, double *Psi, double *Lambda,
                double *Scratch) {
  double *L = Scratch;     // N*N
  double *t = L + N * N;   // N (t0 then t1)
  double *k = t + N;       // N
  double *v = k + N;       // N

  for (int I = 0; I < N * N; ++I)
    L[I] = K[I];
  cholLower(N, L);
  // t0 = L^-1 y; t1 = L^-T t0.
  for (int I = 0; I < N; ++I)
    t[I] = y[I];
  trsvLower(N, L, t);
  trsvLowerT(N, L, t);
  // k = X x.
  for (int I = 0; I < N; ++I) {
    double S = 0.0;
    for (int P = 0; P < N; ++P)
      S += X[I * N + P] * x[P];
    k[I] = S;
  }
  // phi = k^T t1.
  double Ph = 0.0;
  for (int I = 0; I < N; ++I)
    Ph += k[I] * t[I];
  *Phi = Ph;
  // v = L^-1 k.
  for (int I = 0; I < N; ++I)
    v[I] = k[I];
  trsvLower(N, L, v);
  // psi = x^T x - v^T v.
  double Ps = 0.0;
  for (int I = 0; I < N; ++I)
    Ps += x[I] * x[I] - v[I] * v[I];
  *Psi = Ps;
  // lambda = y^T t1.
  double La = 0.0;
  for (int I = 0; I < N; ++I)
    La += y[I] * t[I];
  *Lambda = La;
}

void naive::l1a(int N, const double *W, const double *A, const double *x0,
                const double *y, double Alpha, double Beta, double Tau,
                double *V1, double *Z1, double *V2, double *Z2,
                double *Scratch) {
  double *y1 = Scratch;   // N
  double *y2 = y1 + N;    // N
  double *x1 = y2 + N;    // N
  double *x = x1 + N;     // N

  for (int I = 0; I < N; ++I) {
    y1[I] = Alpha * V1[I] + Tau * Z1[I];
    y2[I] = Alpha * V2[I] + Tau * Z2[I];
  }
  // x1 = W^T y1 - A^T y2; x = x0 + beta x1.
  for (int I = 0; I < N; ++I) {
    double S = 0.0;
    for (int P = 0; P < N; ++P)
      S += W[P * N + I] * y1[P] - A[P * N + I] * y2[P];
    x1[I] = S;
    x[I] = x0[I] + Beta * S;
  }
  // z1 = y1 - W x; z2 = y2 - (y - A x); v = alpha v + tau z (new z).
  for (int I = 0; I < N; ++I) {
    double S1 = y1[I], S2 = y2[I] - y[I];
    for (int P = 0; P < N; ++P) {
      S1 -= W[I * N + P] * x[P];
      S2 += A[I * N + P] * x[P];
    }
    Z1[I] = S1;
    Z2[I] = S2;
    V1[I] = Alpha * V1[I] + Tau * S1;
    V2[I] = Alpha * V2[I] + Tau * S2;
  }
}
