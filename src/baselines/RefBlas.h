//===- baselines/RefBlas.h - portable BLAS/LAPACK subset -----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained, runtime-sized BLAS/LAPACK subset in row-major layout.
/// It plays two roles in this reproduction:
///   1. the "optimized library" baseline (the paper compares against Intel
///      MKL, which is unavailable offline; see DESIGN.md substitutions), and
///   2. the numerical oracle all generated code is validated against.
/// All matrices are row-major with an explicit leading dimension (number of
/// doubles between consecutive rows).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_BASELINES_REFBLAS_H
#define SLINGEN_BASELINES_REFBLAS_H

namespace slingen {
namespace refblas {

/// C = Alpha * op(A) * op(B) + Beta * C, with op(X) = X or X^T.
/// A is M x K after op, B is K x N after op, C is M x N.
void gemm(int M, int N, int K, double Alpha, const double *A, int Lda,
          bool TransA, const double *B, int Ldb, bool TransB, double Beta,
          double *C, int Ldc);

/// y = Alpha * op(A) * x + Beta * y. A is M x N before op.
void gemv(int M, int N, double Alpha, const double *A, int Lda, bool TransA,
          const double *X, double Beta, double *Y);

/// Dot product of two length-N vectors.
double dot(int N, const double *X, const double *Y);

/// Y = Alpha * X + Y.
void axpy(int N, double Alpha, const double *X, double *Y);

/// Solves op(A) * X = B (left) in place of B. A is M x M triangular.
void trsmLeft(bool Upper, bool TransA, bool UnitDiag, int M, int N,
              const double *A, int Lda, double *B, int Ldb);

/// Solves X * op(A) = B (right) in place of B. A is N x N triangular.
void trsmRight(bool Upper, bool TransA, bool UnitDiag, int M, int N,
               const double *A, int Lda, double *B, int Ldb);

/// B = op(A) * B with A triangular (left triangular matrix product).
void trmmLeft(bool Upper, bool TransA, bool UnitDiag, int M, int N,
              const double *A, int Lda, double *B, int Ldb);

/// B = B * op(A) with A triangular (right triangular matrix product).
/// A is N x N.
void trmmRight(bool Upper, bool TransA, bool UnitDiag, int M, int N,
               const double *A, int Lda, double *B, int Ldb);

/// Cholesky factorization, unblocked. Upper: A = U^T U, U written to the
/// upper triangle and the strictly-lower triangle zeroed (full storage
/// convention, see DESIGN.md). Lower: A = L L^T analogously.
/// Returns 0 on success, or 1-based index of the failing pivot.
int potrfUpper(int N, double *A, int Lda);
int potrfLower(int N, double *A, int Lda);

/// In-place inversion of a triangular matrix (full-storage convention: the
/// non-stored triangle is left as-is, callers keep it zero).
void trtriLower(int N, double *A, int Lda);
void trtriUpper(int N, double *A, int Lda);

/// Solves the triangular Sylvester equation L X + X U = C for X (in place of
/// C), with L lower triangular M x M and U upper triangular N x N
/// (paper Table 3, trsyl).
void trsylLowerUpper(int M, int N, const double *L, int Ldl, const double *U,
                     int Ldu, double *C, int Ldc);

/// Solves the triangular continuous-time Lyapunov equation
/// L X + X L^T = S for symmetric X (in place of S), with L lower triangular
/// (paper Table 3, trlya). Both triangles of X are written.
void trlyaLower(int N, const double *L, int Ldl, double *S, int Lds);

} // namespace refblas
} // namespace slingen

#endif // SLINGEN_BASELINES_REFBLAS_H
