//===- baselines/Smallet.h - fixed-size expression-template library -------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "smallet" is the Eigen comparator of the paper (see DESIGN.md
/// substitutions): a C++ expression-template matrix library with
/// compile-time fixed sizes, Map interfaces onto existing arrays, lazy
/// addition/subtraction/scaling (fused into a single evaluation loop),
/// eager products, and in-place solvers (Cholesky, triangular solve,
/// triangular inverse). Like Eigen, it relies on the C++ compiler's
/// auto-vectorizer: the library is compiled with native flags and no
/// intrinsics. All storage is row-major.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_BASELINES_SMALLET_H
#define SLINGEN_BASELINES_SMALLET_H

#include <cassert>
#include <cmath>

namespace slingen {
namespace smallet {

//===----------------------------------------------------------------------===//
// Expression base (CRTP).
//===----------------------------------------------------------------------===//

/// Every expression exposes its compile-time shape and coefficient access;
/// assignment walks the destination once, pulling coefficients through the
/// expression tree (the expression-template "fusion" Eigen performs).
template <typename Derived> struct MatExpr {
  const Derived &self() const { return *static_cast<const Derived *>(this); }
  double coeff(int R, int C) const { return self().coeff(R, C); }
};

template <typename L, typename R> struct SumExpr;
template <typename L, typename R> struct DiffExpr;
template <typename E> struct ScaleExpr;
template <typename E> struct NegExpr;
template <typename E> struct TransExpr;
template <typename L, typename R> struct ProdExpr;

#define SMALLET_DEFINE_EXPR_OPS(SELFTYPE)                                     \
  template <typename O>                                                       \
  SumExpr<SELFTYPE, O> operator+(const MatExpr<O> &Other) const {             \
    return {*this->asExprSelf(), Other.self()};                               \
  }                                                                           \
  template <typename O>                                                       \
  DiffExpr<SELFTYPE, O> operator-(const MatExpr<O> &Other) const {            \
    return {*this->asExprSelf(), Other.self()};                               \
  }                                                                           \
  ScaleExpr<SELFTYPE> operator*(double S) const {                             \
    return {*this->asExprSelf(), S};                                          \
  }                                                                           \
  NegExpr<SELFTYPE> operator-() const {                                      \
    return NegExpr<SELFTYPE>(*this->asExprSelf());                            \
  }                                                                           \
  TransExpr<SELFTYPE> transpose() const {                                     \
    return TransExpr<SELFTYPE>(*this->asExprSelf());                          \
  }                                                                           \
  template <typename O>                                                       \
  ProdExpr<SELFTYPE, O> operator*(const MatExpr<O> &Other) const {            \
    return ProdExpr<SELFTYPE, O>(*this->asExprSelf(), Other.self());          \
  }                                                                           \
  const SELFTYPE *asExprSelf() const {                                        \
    return static_cast<const SELFTYPE *>(this);                               \
  }

template <typename L, typename R> struct SumExpr : MatExpr<SumExpr<L, R>> {
  static constexpr int Rows = L::Rows, Cols = L::Cols;
  static_assert(L::Rows == R::Rows && L::Cols == R::Cols,
                "shape mismatch in +");
  const L &A;
  const R &B;
  SumExpr(const L &A, const R &B) : A(A), B(B) {}
  double coeff(int Ri, int Ci) const { return A.coeff(Ri, Ci) + B.coeff(Ri, Ci); }
  SMALLET_DEFINE_EXPR_OPS(SumExpr)
};

template <typename L, typename R> struct DiffExpr : MatExpr<DiffExpr<L, R>> {
  static constexpr int Rows = L::Rows, Cols = L::Cols;
  static_assert(L::Rows == R::Rows && L::Cols == R::Cols,
                "shape mismatch in -");
  const L &A;
  const R &B;
  DiffExpr(const L &A, const R &B) : A(A), B(B) {}
  double coeff(int Ri, int Ci) const { return A.coeff(Ri, Ci) - B.coeff(Ri, Ci); }
  SMALLET_DEFINE_EXPR_OPS(DiffExpr)
};

template <typename E> struct ScaleExpr : MatExpr<ScaleExpr<E>> {
  static constexpr int Rows = E::Rows, Cols = E::Cols;
  const E &A;
  double S;
  ScaleExpr(const E &A, double S) : A(A), S(S) {}
  double coeff(int Ri, int Ci) const { return S * A.coeff(Ri, Ci); }
  SMALLET_DEFINE_EXPR_OPS(ScaleExpr)
};

template <typename E> struct NegExpr : MatExpr<NegExpr<E>> {
  static constexpr int Rows = E::Rows, Cols = E::Cols;
  const E &A;
  explicit NegExpr(const E &A) : A(A) {}
  double coeff(int Ri, int Ci) const { return -A.coeff(Ri, Ci); }
  SMALLET_DEFINE_EXPR_OPS(NegExpr)
};

template <typename E> struct TransExpr : MatExpr<TransExpr<E>> {
  static constexpr int Rows = E::Cols, Cols = E::Rows;
  const E &A;
  explicit TransExpr(const E &A) : A(A) {}
  double coeff(int Ri, int Ci) const { return A.coeff(Ci, Ri); }
  SMALLET_DEFINE_EXPR_OPS(TransExpr)
};

/// Products evaluate eagerly into an internal buffer at construction (the
/// Eigen strategy for GEMM-shaped nodes: avoids re-evaluating operands per
/// coefficient).
template <typename L, typename R> struct ProdExpr : MatExpr<ProdExpr<L, R>> {
  static constexpr int Rows = L::Rows, Cols = R::Cols;
  static_assert(L::Cols == R::Rows, "shape mismatch in *");
  double D[static_cast<size_t>(Rows) * Cols];
  ProdExpr(const L &A, const R &B) {
    for (int I = 0; I < Rows; ++I)
      for (int J = 0; J < Cols; ++J) {
        double S = 0.0;
        for (int P = 0; P < L::Cols; ++P)
          S += A.coeff(I, P) * B.coeff(P, J);
        D[I * Cols + J] = S;
      }
  }
  double coeff(int Ri, int Ci) const { return D[Ri * Cols + Ci]; }
  SMALLET_DEFINE_EXPR_OPS(ProdExpr)
};

template <typename E>
ScaleExpr<E> operator*(double S, const MatExpr<E> &A) {
  return {A.self(), S};
}

//===----------------------------------------------------------------------===//
// Storage: Matrix owns, Map borrows.
//===----------------------------------------------------------------------===//

template <int R, int C, typename Storage> struct Dense;

/// Owning fixed-size matrix.
template <int R, int C> struct OwnedStorage {
  double Buf[static_cast<size_t>(R) * C] = {0.0};
  double *data() { return Buf; }
  const double *data() const { return Buf; }
};

/// Borrowed storage over a caller-provided array (Eigen's Map).
struct BorrowedStorage {
  double *Ptr;
  double *data() { return Ptr; }
  const double *data() const { return Ptr; }
};

template <int R, int C, typename Storage>
struct Dense : MatExpr<Dense<R, C, Storage>> {
  static constexpr int Rows = R, Cols = C;
  Storage S;

  Dense() = default;
  explicit Dense(Storage S) : S(S) {}

  double *data() { return S.data(); }
  const double *data() const { return S.data(); }
  double &operator()(int Ri, int Ci) { return S.data()[Ri * C + Ci]; }
  double coeff(int Ri, int Ci) const { return S.data()[Ri * C + Ci]; }

  /// Fused assignment: one pass over the destination.
  template <typename E> Dense &operator=(const MatExpr<E> &Expr) {
    static_assert(E::Rows == R && E::Cols == C, "shape mismatch in =");
    const E &Src = Expr.self();
    for (int I = 0; I < R; ++I)
      for (int J = 0; J < C; ++J)
        S.data()[I * C + J] = Src.coeff(I, J);
    return *this;
  }
  template <typename E> Dense &operator+=(const MatExpr<E> &Expr) {
    const E &Src = Expr.self();
    for (int I = 0; I < R; ++I)
      for (int J = 0; J < C; ++J)
        S.data()[I * C + J] += Src.coeff(I, J);
    return *this;
  }
  template <typename E> Dense &operator-=(const MatExpr<E> &Expr) {
    const E &Src = Expr.self();
    for (int I = 0; I < R; ++I)
      for (int J = 0; J < C; ++J)
        S.data()[I * C + J] -= Src.coeff(I, J);
    return *this;
  }
  void setZero() {
    for (int I = 0; I < R * C; ++I)
      S.data()[I] = 0.0;
  }

  SMALLET_DEFINE_EXPR_OPS(Dense)
};

template <int R, int C> using Matrix = Dense<R, C, OwnedStorage<R, C>>;
template <int R, int C> using Map = Dense<R, C, BorrowedStorage>;
template <int N> using Vector = Matrix<N, 1>;
template <int N> using VecMap = Map<N, 1>;

template <int R, int C> Map<R, C> map(double *P) {
  return Map<R, C>(BorrowedStorage{P});
}

/// Dot product of two vector-shaped expressions.
template <typename A, typename B>
double dot(const MatExpr<A> &X, const MatExpr<B> &Y) {
  static_assert(A::Cols == 1 && B::Cols == 1 && A::Rows == B::Rows,
                "dot() wants equal-length column vectors");
  double S = 0.0;
  for (int I = 0; I < A::Rows; ++I)
    S += X.coeff(I, 0) * Y.coeff(I, 0);
  return S;
}

//===----------------------------------------------------------------------===//
// In-place solvers (the Eigen LLT / triangularView analogues).
//===----------------------------------------------------------------------===//

/// A = L L^T; L stored in the lower triangle, strictly-upper zeroed.
/// Returns false if A is not positive definite.
template <int N, typename S> bool lltInPlace(Dense<N, N, S> &A) {
  for (int J = 0; J < N; ++J) {
    double D = A(J, J);
    for (int P = 0; P < J; ++P)
      D -= A(J, P) * A(J, P);
    if (D <= 0.0)
      return false;
    D = std::sqrt(D);
    A(J, J) = D;
    for (int I = J + 1; I < N; ++I) {
      double V = A(I, J);
      for (int P = 0; P < J; ++P)
        V -= A(I, P) * A(J, P);
      A(I, J) = V / D;
    }
  }
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      A(I, J) = 0.0;
  return true;
}

/// Solves L X = B in place of B (L lower triangular).
template <int N, int M, typename SL, typename SB>
void solveLowerInPlace(const Dense<N, N, SL> &L, Dense<N, M, SB> &B) {
  for (int C = 0; C < M; ++C)
    for (int I = 0; I < N; ++I) {
      double V = B(I, C);
      for (int P = 0; P < I; ++P)
        V -= L.coeff(I, P) * B(P, C);
      B(I, C) = V / L.coeff(I, I);
    }
}

/// Solves L^T X = B in place of B (L lower triangular).
template <int N, int M, typename SL, typename SB>
void solveLowerTInPlace(const Dense<N, N, SL> &L, Dense<N, M, SB> &B) {
  for (int C = 0; C < M; ++C)
    for (int I = N - 1; I >= 0; --I) {
      double V = B(I, C);
      for (int P = I + 1; P < N; ++P)
        V -= L.coeff(P, I) * B(P, C);
      B(I, C) = V / L.coeff(I, I);
    }
}

/// Solves U X = B in place of B (U upper triangular).
template <int N, int M, typename SU, typename SB>
void solveUpperInPlace(const Dense<N, N, SU> &U, Dense<N, M, SB> &B) {
  for (int C = 0; C < M; ++C)
    for (int I = N - 1; I >= 0; --I) {
      double V = B(I, C);
      for (int P = I + 1; P < N; ++P)
        V -= U.coeff(I, P) * B(P, C);
      B(I, C) = V / U.coeff(I, I);
    }
}

/// Solves U^T X = B in place of B (U upper triangular).
template <int N, int M, typename SU, typename SB>
void solveUpperTInPlace(const Dense<N, N, SU> &U, Dense<N, M, SB> &B) {
  for (int C = 0; C < M; ++C)
    for (int I = 0; I < N; ++I) {
      double V = B(I, C);
      for (int P = 0; P < I; ++P)
        V -= U.coeff(P, I) * B(P, C);
      B(I, C) = V / U.coeff(I, I);
    }
}

/// In-place inversion of a lower-triangular matrix.
template <int N, typename S> void invertLowerInPlace(Dense<N, N, S> &A) {
  for (int J = 0; J < N; ++J) {
    A(J, J) = 1.0 / A(J, J);
    for (int I = J + 1; I < N; ++I) {
      double V = 0.0;
      for (int P = J; P < I; ++P)
        V += A(I, P) * A(P, J);
      A(I, J) = -V / A(I, I);
    }
  }
}

/// A = U^T U Cholesky (upper factor), matching the paper's potrf. Returns
/// false if not positive definite.
template <int N, typename S> bool upperCholInPlace(Dense<N, N, S> &A) {
  for (int K = 0; K < N; ++K) {
    double D = A(K, K);
    for (int P = 0; P < K; ++P)
      D -= A(P, K) * A(P, K);
    if (D <= 0.0)
      return false;
    D = std::sqrt(D);
    A(K, K) = D;
    for (int J = K + 1; J < N; ++J) {
      double V = A(K, J);
      for (int P = 0; P < K; ++P)
        V -= A(P, K) * A(P, J);
      A(K, J) = V / D;
    }
  }
  for (int I = 1; I < N; ++I)
    for (int J = 0; J < I; ++J)
      A(I, J) = 0.0;
  return true;
}

/// Triangular Sylvester L X + X U = C in place of C.
template <int N, typename SL, typename SU, typename SC>
void trsylInPlace(const Dense<N, N, SL> &L, const Dense<N, N, SU> &U,
                  Dense<N, N, SC> &C) {
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      double V = C(I, J);
      for (int P = 0; P < I; ++P)
        V -= L.coeff(I, P) * C(P, J);
      for (int P = 0; P < J; ++P)
        V -= C(I, P) * U.coeff(P, J);
      C(I, J) = V / (L.coeff(I, I) + U.coeff(J, J));
    }
}

/// Triangular Lyapunov L X + X L^T = S in place of S (X symmetric).
template <int N, typename SL, typename SS>
void trlyaInPlace(const Dense<N, N, SL> &L, Dense<N, N, SS> &S) {
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J) {
      double V = S(I, J);
      for (int P = 0; P < I; ++P)
        V -= L.coeff(I, P) * S(P, J);
      for (int P = 0; P < J; ++P)
        V -= S(I, P) * L.coeff(J, P);
      V /= L.coeff(I, I) + L.coeff(J, J);
      S(I, J) = V;
      S(J, I) = V;
    }
}

} // namespace smallet
} // namespace slingen

#endif // SLINGEN_BASELINES_SMALLET_H
