//===- baselines/Apps.h - library-based application kernels ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-level comparators for paper Fig. 15: the Kalman filter,
/// Gaussian process regression, and the L1-analysis solver implemented (a)
/// with BLAS/LAPACK-style library calls (refblas, the MKL stand-in) and
/// (b) with the smallet expression-template library (the Eigen stand-in,
/// compile-time sizes dispatched over the benchmark sweep). Also smallet
/// versions of the Table 3 HLACs for Fig. 14.
///
/// All smallet entry points return false when the requested size is not in
/// the instantiated set (see SMALLET_FOREACH_SIZE in Apps.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_BASELINES_APPS_H
#define SLINGEN_BASELINES_APPS_H

namespace slingen {
namespace apps {

//===----------------------------------------------------------------------===//
// refblas ("library") implementations; runtime sizes, same contracts as
// the naive versions in Naive.h.
//===----------------------------------------------------------------------===//

void kalmanRefblas(int N, int K, const double *F, const double *B,
                   const double *Q, const double *H, const double *R,
                   const double *u, const double *z, double *x, double *P,
                   double *Scratch);

void gprRefblas(int N, const double *K, const double *X, const double *x,
                const double *y, double *Phi, double *Psi, double *Lambda,
                double *Scratch);

void l1aRefblas(int N, const double *W, const double *A, const double *x0,
                const double *y, double Alpha, double Beta, double Tau,
                double *V1, double *Z1, double *V2, double *Z2,
                double *Scratch);

//===----------------------------------------------------------------------===//
// smallet ("template library") implementations; compile-time sizes.
//===----------------------------------------------------------------------===//

bool potrfSmallet(int N, double *A);
bool trtriSmallet(int N, double *A);
bool trsylSmallet(int N, const double *L, const double *U, double *C);
bool trlyaSmallet(int N, const double *L, double *S);

bool kalmanSmallet(int N, int K, const double *F, const double *B,
                   const double *Q, const double *H, const double *R,
                   const double *u, const double *z, double *x, double *P);

bool gprSmallet(int N, const double *K, const double *X, const double *x,
                const double *y, double *Phi, double *Psi, double *Lambda);

bool l1aSmallet(int N, const double *W, const double *A, const double *x0,
                const double *y, double Alpha, double Beta, double Tau,
                double *V1, double *Z1, double *V2, double *Z2);

} // namespace apps
} // namespace slingen

#endif // SLINGEN_BASELINES_APPS_H
