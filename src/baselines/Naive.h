//===- baselines/Naive.h - straightforward handwritten C ------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "straightforward C" comparator of the paper's Sec. 4.1: scalar,
/// handwritten, loop-based code a domain programmer would write directly
/// from the math, compiled by the optimizing C++ compiler with native
/// flags (the stand-in for icc / clang+Polly; see DESIGN.md). Sizes are
/// runtime parameters; no blocking, no manual vectorization.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_BASELINES_NAIVE_H
#define SLINGEN_BASELINES_NAIVE_H

namespace slingen {
namespace naive {

/// C = A * B (M x K times K x N), row-major contiguous.
void matmul(int M, int N, int K, const double *A, const double *B,
            double *C);
/// C = A * B^T.
void matmulNT(int M, int N, int K, const double *A, const double *B,
              double *C);
/// C = A^T * B.
void matmulTN(int M, int N, int K, const double *A, const double *B,
              double *C);

/// A = U^T U in place (upper, strictly-lower zeroed). Returns 0 on success.
int potrfUpper(int N, double *A);

/// In-place lower-triangular inverse.
void trtriLower(int N, double *A);

/// L X + X U = C in place of C.
void trsylLowerUpper(int N, const double *L, const double *U, double *C);

/// L X + X L^T = S in place of S (X symmetric, both triangles written).
void trlyaLower(int N, const double *L, double *S);

/// One Kalman filter iteration (paper Fig. 13a); all matrices N x N except
/// H (K x N), R (K x K), z (K). x and P are updated in place. Scratch must
/// hold at least 6*N*N + 3*N doubles.
void kalman(int N, int K, const double *F, const double *B, const double *Q,
            const double *H, const double *R, const double *u,
            const double *z, double *x, double *P, double *Scratch);

/// Gaussian process regression (paper Fig. 13b). Outputs phi, psi, lambda.
/// Scratch must hold at least N*N + 4*N doubles.
void gpr(int N, const double *K, const double *X, const double *x,
         const double *y, double *Phi, double *Psi, double *Lambda,
         double *Scratch);

/// One iteration of the L1-analysis solver (paper Fig. 13c); v1, z1, v2,
/// z2 updated in place. Scratch must hold at least 4*N doubles.
void l1a(int N, const double *W, const double *A, const double *x0,
         const double *y, double Alpha, double Beta, double Tau, double *V1,
         double *Z1, double *V2, double *Z2, double *Scratch);

} // namespace naive
} // namespace slingen

#endif // SLINGEN_BASELINES_NAIVE_H
