//===- baselines/Cl1ckBlas.cpp --------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Cl1ckBlas.h"

#include "baselines/RefBlas.h"

#include <algorithm>
#include <vector>

using namespace slingen;

namespace {

inline double *at(double *A, int Lda, int R, int C) {
  return A + static_cast<long>(R) * Lda + C;
}
inline const double *at(const double *A, int Lda, int R, int C) {
  return A + static_cast<long>(R) * Lda + C;
}

} // namespace

int cl1ck::potrfUpper(int N, int Nb, double *A, int Lda) {
  Nb = std::max(1, Nb);
  for (int K = 0; K < N; K += Nb) {
    int B = std::min(Nb, N - K);
    // Diagonal block factorization (LAPACK unblocked kernel).
    if (int Info = refblas::potrfUpper(B, at(A, Lda, K, K), Lda))
      return K + Info;
    int Rest = N - K - B;
    if (Rest == 0)
      break;
    // Panel solve: A(K, K+B:) = U(K,K)^-T A(K, K+B:).
    refblas::trsmLeft(/*Upper=*/true, /*TransA=*/true, /*UnitDiag=*/false, B,
                      Rest, at(A, Lda, K, K), Lda, at(A, Lda, K, K + B), Lda);
    // Trailing update: A22 -= A12^T A12 (syrk-shaped, done with gemm as
    // the library call the Cl1ck output maps to).
    refblas::gemm(Rest, Rest, B, -1.0, at(A, Lda, K, K + B), Lda,
                  /*TransA=*/true, at(A, Lda, K, K + B), Lda,
                  /*TransB=*/false, 1.0, at(A, Lda, K + B, K + B), Lda);
  }
  // Full-storage convention: zero the strictly-lower triangle.
  for (int I = 1; I < N; ++I)
    for (int J = 0; J < I; ++J)
      *at(A, Lda, I, J) = 0.0;
  return 0;
}

void cl1ck::trtriLower(int N, int Nb, double *A, int Lda) {
  Nb = std::max(1, Nb);
  // Right-looking: invert the diagonal block, then propagate to the panel
  // below using the already-inverted leading part.
  for (int K = 0; K < N; K += Nb) {
    int B = std::min(Nb, N - K);
    // Panel below and to the left: A(K:K+B, 0:K) = -inv(A_KK) * A(K:K+B,
    // 0:K) * inv(A(0:K,0:K)) is handled incrementally: at step K all
    // columns < K are already final, so only the new block row needs
    // updating: X21 = -inv(A22) A21 X11.
    refblas::trsmLeft(/*Upper=*/false, /*TransA=*/false, /*UnitDiag=*/false,
                      B, K, at(A, Lda, K, K), Lda, at(A, Lda, K, 0), Lda);
    for (int I = 0; I < B; ++I)
      for (int J = 0; J < K; ++J)
        *at(A, Lda, K + I, J) = -*at(A, Lda, K + I, J);
    refblas::trtriLower(B, at(A, Lda, K, K), Lda);
    // A(K:K+B, 0:K) currently holds -inv(A22) A21 (pre-multiplied); it
    // still needs the right factor X11, which is already in place:
    refblas::trmmRight(/*Upper=*/false, /*TransA=*/false, /*UnitDiag=*/false,
                       B, K, at(A, Lda, 0, 0), Lda, at(A, Lda, K, 0), Lda);
  }
}

void cl1ck::trsylLowerUpper(int M, int N, int Nb, const double *L, int Ldl,
                            const double *U, int Ldu, double *C, int Ldc) {
  Nb = std::max(1, Nb);
  // Block-forward over rows of X (L lower): solve a row panel against the
  // full U with the library kernel, then update the rows below with gemm.
  for (int K = 0; K < M; K += Nb) {
    int B = std::min(Nb, M - K);
    refblas::trsylLowerUpper(B, N, at(L, Ldl, K, K), Ldl, U, Ldu,
                             at(C, Ldc, K, 0), Ldc);
    int Rest = M - K - B;
    if (Rest > 0)
      refblas::gemm(Rest, N, B, -1.0, at(L, Ldl, K + B, K), Ldl, false,
                    at(C, Ldc, K, 0), Ldc, false, 1.0, at(C, Ldc, K + B, 0),
                    Ldc);
  }
}

void cl1ck::trlyaLower(int N, int Nb, const double *L, int Ldl, double *S,
                       int Lds) {
  Nb = std::max(1, Nb);
  std::vector<double> UBuf;
  for (int K = 0; K < N; K += Nb) {
    int B = std::min(Nb, N - K);
    // Diagonal Lyapunov block.
    refblas::trlyaLower(B, at(L, Ldl, K, K), Ldl, at(S, Lds, K, K), Lds);
    int Rest = N - K - B;
    if (Rest == 0)
      break;
    // Subdiagonal panel: L22 X21 + X21 L11^T = S21 - L21 X11.
    refblas::gemm(Rest, B, B, -1.0, at(L, Ldl, K + B, K), Ldl, false,
                  at(S, Lds, K, K), Lds, false, 1.0, at(S, Lds, K + B, K),
                  Lds);
    UBuf.assign(static_cast<size_t>(B) * B, 0.0);
    for (int I = 0; I < B; ++I)
      for (int J = 0; J < B; ++J)
        UBuf[I * B + J] = *at(L, Ldl, K + J, K + I);
    refblas::trsylLowerUpper(Rest, B, at(L, Ldl, K + B, K + B), Ldl,
                             UBuf.data(), B, at(S, Lds, K + B, K), Lds);
    // Mirror the panel (full storage) and update the trailing block.
    for (int I = 0; I < Rest; ++I)
      for (int J = 0; J < B; ++J)
        *at(S, Lds, K + J, K + B + I) = *at(S, Lds, K + B + I, K + J);
    refblas::gemm(Rest, Rest, B, -1.0, at(L, Ldl, K + B, K), Ldl, false,
                  at(S, Lds, K, K + B), Lds, false, 1.0,
                  at(S, Lds, K + B, K + B), Lds);
    refblas::gemm(Rest, Rest, B, -1.0, at(S, Lds, K + B, K), Lds, false,
                  at(L, Ldl, K + B, K), Ldl, true, 1.0,
                  at(S, Lds, K + B, K + B), Lds);
  }
}
