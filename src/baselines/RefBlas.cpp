//===- baselines/RefBlas.cpp ----------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RefBlas.h"

#include <cassert>
#include <cmath>

namespace slingen {
namespace refblas {

namespace {
inline double elem(const double *A, int Lda, int R, int C, bool Trans) {
  return Trans ? A[C * Lda + R] : A[R * Lda + C];
}
} // namespace

void gemm(int M, int N, int K, double Alpha, const double *A, int Lda,
          bool TransA, const double *B, int Ldb, bool TransB, double Beta,
          double *C, int Ldc) {
  for (int I = 0; I < M; ++I) {
    double *CRow = C + I * Ldc;
    if (Beta == 0.0)
      for (int J = 0; J < N; ++J)
        CRow[J] = 0.0;
    else if (Beta != 1.0)
      for (int J = 0; J < N; ++J)
        CRow[J] *= Beta;
  }
  if (Alpha == 0.0)
    return;
  // ikj order so the innermost loop streams rows of B and C (row-major);
  // with -O3 -march=native this auto-vectorizes, which is the level of
  // optimization expected from a decent portable library.
  for (int I = 0; I < M; ++I) {
    double *CRow = C + I * Ldc;
    for (int P = 0; P < K; ++P) {
      double AV = Alpha * elem(A, Lda, I, P, TransA);
      if (AV == 0.0)
        continue;
      if (!TransB) {
        const double *BRow = B + P * Ldb;
        for (int J = 0; J < N; ++J)
          CRow[J] += AV * BRow[J];
      } else {
        for (int J = 0; J < N; ++J)
          CRow[J] += AV * B[J * Ldb + P];
      }
    }
  }
}

void gemv(int M, int N, double Alpha, const double *A, int Lda, bool TransA,
          const double *X, double Beta, double *Y) {
  int Rows = TransA ? N : M;
  int Inner = TransA ? M : N;
  for (int I = 0; I < Rows; ++I) {
    double Acc = 0.0;
    for (int J = 0; J < Inner; ++J)
      Acc += elem(A, Lda, I, J, TransA) * X[J];
    Y[I] = Alpha * Acc + (Beta == 0.0 ? 0.0 : Beta * Y[I]);
  }
}

double dot(int N, const double *X, const double *Y) {
  double Acc = 0.0;
  for (int I = 0; I < N; ++I)
    Acc += X[I] * Y[I];
  return Acc;
}

void axpy(int N, double Alpha, const double *X, double *Y) {
  for (int I = 0; I < N; ++I)
    Y[I] += Alpha * X[I];
}

void trsmLeft(bool Upper, bool TransA, bool UnitDiag, int M, int N,
              const double *A, int Lda, double *B, int Ldb) {
  // Solving op(A) X = B. Effective orientation of op(A):
  // Upper ^ TransA == 0 -> forward substitution from the top when lower.
  bool EffLower = Upper == TransA; // lower triangular after op
  if (EffLower) {
    for (int I = 0; I < M; ++I) {
      for (int P = 0; P < I; ++P) {
        double L = elem(A, Lda, I, P, TransA);
        if (L != 0.0)
          for (int J = 0; J < N; ++J)
            B[I * Ldb + J] -= L * B[P * Ldb + J];
      }
      if (!UnitDiag) {
        double D = elem(A, Lda, I, I, TransA);
        for (int J = 0; J < N; ++J)
          B[I * Ldb + J] /= D;
      }
    }
  } else {
    for (int I = M - 1; I >= 0; --I) {
      for (int P = I + 1; P < M; ++P) {
        double U = elem(A, Lda, I, P, TransA);
        if (U != 0.0)
          for (int J = 0; J < N; ++J)
            B[I * Ldb + J] -= U * B[P * Ldb + J];
      }
      if (!UnitDiag) {
        double D = elem(A, Lda, I, I, TransA);
        for (int J = 0; J < N; ++J)
          B[I * Ldb + J] /= D;
      }
    }
  }
}

void trsmRight(bool Upper, bool TransA, bool UnitDiag, int M, int N,
               const double *A, int Lda, double *B, int Ldb) {
  // Solving X op(A) = B, i.e. for each row x of B: x op(A) = b.
  bool EffUpper = Upper != TransA; // upper triangular after op
  if (EffUpper) {
    for (int J = 0; J < N; ++J) {
      for (int Q = 0; Q < J; ++Q) {
        double U = elem(A, Lda, Q, J, TransA);
        if (U != 0.0)
          for (int I = 0; I < M; ++I)
            B[I * Ldb + J] -= B[I * Ldb + Q] * U;
      }
      if (!UnitDiag) {
        double D = elem(A, Lda, J, J, TransA);
        for (int I = 0; I < M; ++I)
          B[I * Ldb + J] /= D;
      }
    }
  } else {
    for (int J = N - 1; J >= 0; --J) {
      for (int Q = J + 1; Q < N; ++Q) {
        double L = elem(A, Lda, Q, J, TransA);
        if (L != 0.0)
          for (int I = 0; I < M; ++I)
            B[I * Ldb + J] -= B[I * Ldb + Q] * L;
      }
      if (!UnitDiag) {
        double D = elem(A, Lda, J, J, TransA);
        for (int I = 0; I < M; ++I)
          B[I * Ldb + J] /= D;
      }
    }
  }
}

void trmmLeft(bool Upper, bool TransA, bool UnitDiag, int M, int N,
              const double *A, int Lda, double *B, int Ldb) {
  bool EffUpper = Upper != TransA;
  if (EffUpper) {
    // Row I of the result only reads rows >= I of B: go top-down.
    for (int I = 0; I < M; ++I) {
      for (int J = 0; J < N; ++J) {
        double Acc = UnitDiag ? B[I * Ldb + J]
                              : elem(A, Lda, I, I, TransA) * B[I * Ldb + J];
        for (int P = I + 1; P < M; ++P)
          Acc += elem(A, Lda, I, P, TransA) * B[P * Ldb + J];
        B[I * Ldb + J] = Acc;
      }
    }
  } else {
    for (int I = M - 1; I >= 0; --I) {
      for (int J = 0; J < N; ++J) {
        double Acc = UnitDiag ? B[I * Ldb + J]
                              : elem(A, Lda, I, I, TransA) * B[I * Ldb + J];
        for (int P = 0; P < I; ++P)
          Acc += elem(A, Lda, I, P, TransA) * B[P * Ldb + J];
        B[I * Ldb + J] = Acc;
      }
    }
  }
}

void trmmRight(bool Upper, bool TransA, bool UnitDiag, int M, int N,
               const double *A, int Lda, double *B, int Ldb) {
  bool EffUpper = Upper != TransA;
  if (EffUpper) {
    // Column J of the result only reads columns <= J of B: go right-left.
    for (int I = 0; I < M; ++I) {
      for (int J = N - 1; J >= 0; --J) {
        double Acc = UnitDiag ? B[I * Ldb + J]
                              : B[I * Ldb + J] * elem(A, Lda, J, J, TransA);
        for (int P = 0; P < J; ++P)
          Acc += B[I * Ldb + P] * elem(A, Lda, P, J, TransA);
        B[I * Ldb + J] = Acc;
      }
    }
  } else {
    for (int I = 0; I < M; ++I) {
      for (int J = 0; J < N; ++J) {
        double Acc = UnitDiag ? B[I * Ldb + J]
                              : B[I * Ldb + J] * elem(A, Lda, J, J, TransA);
        for (int P = J + 1; P < N; ++P)
          Acc += B[I * Ldb + P] * elem(A, Lda, P, J, TransA);
        B[I * Ldb + J] = Acc;
      }
    }
  }
}

int potrfUpper(int N, double *A, int Lda) {
  for (int I = 0; I < N; ++I) {
    double D = A[I * Lda + I];
    for (int P = 0; P < I; ++P)
      D -= A[P * Lda + I] * A[P * Lda + I];
    if (D <= 0.0)
      return I + 1;
    D = std::sqrt(D);
    A[I * Lda + I] = D;
    for (int J = I + 1; J < N; ++J) {
      double V = A[I * Lda + J];
      for (int P = 0; P < I; ++P)
        V -= A[P * Lda + I] * A[P * Lda + J];
      A[I * Lda + J] = V / D;
    }
    // Full-storage convention: zero the non-stored triangle.
    for (int J = 0; J < I; ++J)
      A[I * Lda + J] = 0.0;
  }
  return 0;
}

int potrfLower(int N, double *A, int Lda) {
  for (int J = 0; J < N; ++J) {
    double D = A[J * Lda + J];
    for (int P = 0; P < J; ++P)
      D -= A[J * Lda + P] * A[J * Lda + P];
    if (D <= 0.0)
      return J + 1;
    D = std::sqrt(D);
    A[J * Lda + J] = D;
    for (int I = J + 1; I < N; ++I) {
      double V = A[I * Lda + J];
      for (int P = 0; P < J; ++P)
        V -= A[I * Lda + P] * A[J * Lda + P];
      A[I * Lda + J] = V / D;
    }
    for (int I = 0; I < J; ++I)
      A[I * Lda + J] = 0.0;
  }
  return 0;
}

void trtriLower(int N, double *A, int Lda) {
  // Column-oriented in-place inversion: X L = I column by column, or
  // equivalently L X = I solved by forward substitution per column.
  for (int J = 0; J < N; ++J) {
    double DJ = 1.0 / A[J * Lda + J];
    A[J * Lda + J] = DJ;
    for (int I = J + 1; I < N; ++I) {
      double Acc = 0.0;
      for (int P = J; P < I; ++P)
        Acc += A[I * Lda + P] * A[P * Lda + J];
      A[I * Lda + J] = -Acc / A[I * Lda + I];
    }
  }
}

void trtriUpper(int N, double *A, int Lda) {
  // Columns right-to-left so the U entries a column reads (columns < J)
  // have not been overwritten with inverse entries yet.
  for (int J = N - 1; J >= 0; --J) {
    double DJ = 1.0 / A[J * Lda + J];
    A[J * Lda + J] = DJ;
    for (int I = J - 1; I >= 0; --I) {
      double Acc = 0.0;
      for (int P = I + 1; P <= J; ++P)
        Acc += A[I * Lda + P] * A[P * Lda + J];
      A[I * Lda + J] = -Acc / A[I * Lda + I];
    }
  }
}

void trsylLowerUpper(int M, int N, const double *L, int Ldl, const double *U,
                     int Ldu, double *C, int Ldc) {
  // Element recurrence: X(i,j) = (C(i,j) - sum_{p<i} L(i,p) X(p,j)
  //                                      - sum_{q<j} X(i,q) U(q,j))
  //                               / (L(i,i) + U(j,j)).
  for (int I = 0; I < M; ++I) {
    for (int J = 0; J < N; ++J) {
      double Acc = C[I * Ldc + J];
      for (int P = 0; P < I; ++P)
        Acc -= L[I * Ldl + P] * C[P * Ldc + J];
      for (int Q = 0; Q < J; ++Q)
        Acc -= C[I * Ldc + Q] * U[Q * Ldu + J];
      C[I * Ldc + J] = Acc / (L[I * Ldl + I] + U[J * Ldu + J]);
    }
  }
}

void trlyaLower(int N, const double *L, int Ldl, double *S, int Lds) {
  // Solve L X + X L^T = S for symmetric X, filling both triangles.
  for (int J = 0; J < N; ++J) {
    for (int I = J; I < N; ++I) {
      double Acc = S[I * Lds + J];
      for (int P = 0; P < I; ++P)
        Acc -= L[I * Ldl + P] * S[P * Lds + J];
      for (int Q = 0; Q < J; ++Q)
        Acc -= S[I * Lds + Q] * L[J * Ldl + Q];
      Acc /= L[I * Ldl + I] + L[J * Ldl + J];
      S[I * Lds + J] = Acc;
      S[J * Lds + I] = Acc;
    }
  }
}

} // namespace refblas
} // namespace slingen
