//===- baselines/Cl1ckBlas.h - blocked FLAME algorithms over BLAS ---------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Cl1ck + MKL" comparator of paper Fig. 14 (right columns): the
/// blocked algorithms Cl1ck synthesizes, implemented directly on top of the
/// BLAS/LAPACK-style library (refblas here), with an explicit block size
/// nb. The paper measures nb in {nu, n/2, n}; the benchmarks sweep the same
/// values. Row-major, full-storage convention, leading dimensions.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_BASELINES_CL1CKBLAS_H
#define SLINGEN_BASELINES_CL1CKBLAS_H

namespace slingen {
namespace cl1ck {

/// Blocked right-looking Cholesky A = U^T U (Cl1ck variant 3).
int potrfUpper(int N, int Nb, double *A, int Lda);

/// Blocked lower-triangular inversion (Cl1ck variant with trailing
/// updates).
void trtriLower(int N, int Nb, double *A, int Lda);

/// Blocked triangular Sylvester solver L X + X U = C.
void trsylLowerUpper(int M, int N, int Nb, const double *L, int Ldl,
                     const double *U, int Ldu, double *C, int Ldc);

/// Blocked triangular Lyapunov solver L X + X L^T = S, X symmetric.
void trlyaLower(int N, int Nb, const double *L, int Ldl, double *S, int Lds);

} // namespace cl1ck
} // namespace slingen

#endif // SLINGEN_BASELINES_CL1CKBLAS_H
