//===- baselines/Apps.cpp -------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Apps.h"

#include "baselines/RefBlas.h"
#include "baselines/Smallet.h"

#include <cstring>

using namespace slingen;

//===----------------------------------------------------------------------===//
// refblas implementations.
//===----------------------------------------------------------------------===//

void apps::kalmanRefblas(int N, int K, const double *F, const double *B,
                         const double *Q, const double *H, const double *R,
                         const double *u, const double *z, double *x,
                         double *P, double *Scratch) {
  double *y = Scratch;
  double *Y = y + N;
  double *T = Y + N * N;
  double *v = T + N * N;
  double *M1 = v + K;
  double *M2 = M1 + K * N;
  double *M3 = M2 + N * K;
  double *M4 = M3 + K * K;

  // y = F x + B u.
  refblas::gemv(N, N, 1.0, F, N, false, x, 0.0, y);
  refblas::gemv(N, N, 1.0, B, N, false, u, 1.0, y);
  // Y = F P F^T + Q.
  refblas::gemm(N, N, N, 1.0, F, N, false, P, N, false, 0.0, T, N);
  std::memcpy(Y, Q, sizeof(double) * N * N);
  refblas::gemm(N, N, N, 1.0, T, N, false, F, N, true, 1.0, Y, N);
  // v0 = z - H y.
  std::memcpy(v, z, sizeof(double) * K);
  refblas::gemv(K, N, -1.0, H, N, false, y, 1.0, v);
  // M1 = H Y; M2 = Y H^T; M3 = M1 H^T + R.
  refblas::gemm(K, N, N, 1.0, H, N, false, Y, N, false, 0.0, M1, N);
  refblas::gemm(N, K, N, 1.0, Y, N, false, H, N, true, 0.0, M2, K);
  std::memcpy(M3, R, sizeof(double) * K * K);
  refblas::gemm(K, K, N, 1.0, M1, N, false, H, N, true, 1.0, M3, K);
  // U^T U = M3 (upper Cholesky); U^T v1 = v0; U v2 = v1.
  refblas::potrfUpper(K, M3, K);
  refblas::trsmLeft(/*Upper=*/true, /*TransA=*/true, false, K, 1, M3, K, v,
                    1);
  refblas::trsmLeft(/*Upper=*/true, /*TransA=*/false, false, K, 1, M3, K, v,
                    1);
  // U^T M4 = M1; U M5 = M4.
  std::memcpy(M4, M1, sizeof(double) * K * N);
  refblas::trsmLeft(/*Upper=*/true, /*TransA=*/true, false, K, N, M3, K, M4,
                    N);
  refblas::trsmLeft(/*Upper=*/true, /*TransA=*/false, false, K, N, M3, K, M4,
                    N);
  // x = y + M2 v2.
  std::memcpy(x, y, sizeof(double) * N);
  refblas::gemv(N, K, 1.0, M2, K, false, v, 1.0, x);
  // P = Y - M2 M5.
  std::memcpy(P, Y, sizeof(double) * N * N);
  refblas::gemm(N, N, K, -1.0, M2, K, false, M4, N, false, 1.0, P, N);
}

void apps::gprRefblas(int N, const double *K, const double *X,
                      const double *x, const double *y, double *Phi,
                      double *Psi, double *Lambda, double *Scratch) {
  double *L = Scratch;
  double *t = L + N * N;
  double *k = t + N;
  double *v = k + N;

  std::memcpy(L, K, sizeof(double) * N * N);
  refblas::potrfLower(N, L, N);
  std::memcpy(t, y, sizeof(double) * N);
  refblas::trsmLeft(/*Upper=*/false, /*TransA=*/false, false, N, 1, L, N, t,
                    1);
  refblas::trsmLeft(/*Upper=*/false, /*TransA=*/true, false, N, 1, L, N, t,
                    1);
  refblas::gemv(N, N, 1.0, X, N, false, x, 0.0, k);
  *Phi = refblas::dot(N, k, t);
  std::memcpy(v, k, sizeof(double) * N);
  refblas::trsmLeft(/*Upper=*/false, /*TransA=*/false, false, N, 1, L, N, v,
                    1);
  *Psi = refblas::dot(N, x, x) - refblas::dot(N, v, v);
  *Lambda = refblas::dot(N, y, t);
}

void apps::l1aRefblas(int N, const double *W, const double *A,
                      const double *x0, const double *y, double Alpha,
                      double Beta, double Tau, double *V1, double *Z1,
                      double *V2, double *Z2, double *Scratch) {
  double *y1 = Scratch;
  double *y2 = y1 + N;
  double *x1 = y2 + N;
  double *x = x1 + N;

  for (int I = 0; I < N; ++I) {
    y1[I] = Alpha * V1[I] + Tau * Z1[I];
    y2[I] = Alpha * V2[I] + Tau * Z2[I];
  }
  refblas::gemv(N, N, 1.0, W, N, true, y1, 0.0, x1);
  refblas::gemv(N, N, -1.0, A, N, true, y2, 1.0, x1);
  std::memcpy(x, x0, sizeof(double) * N);
  refblas::axpy(N, Beta, x1, x);
  std::memcpy(Z1, y1, sizeof(double) * N);
  refblas::gemv(N, N, -1.0, W, N, false, x, 1.0, Z1);
  for (int I = 0; I < N; ++I)
    Z2[I] = y2[I] - y[I];
  refblas::gemv(N, N, 1.0, A, N, false, x, 1.0, Z2);
  for (int I = 0; I < N; ++I) {
    V1[I] = Alpha * V1[I] + Tau * Z1[I];
    V2[I] = Alpha * V2[I] + Tau * Z2[I];
  }
}

//===----------------------------------------------------------------------===//
// smallet implementations. Compile-time size set: the union of the paper's
// benchmark sweeps (Figs. 14/15) and the test sizes.
//===----------------------------------------------------------------------===//

#define SMALLET_FOREACH_SIZE(X)                                               \
  X(2) X(4) X(8) X(11) X(12) X(16) X(20) X(24) X(28) X(36) X(44) X(52)        \
  X(76) X(100) X(124)

#define SMALLET_FOREACH_OBS(X) X(4) X(8) X(12) X(16) X(20) X(24)

namespace {

using namespace slingen::smallet;

template <int R, int C> Dense<R, C, BorrowedStorage> mutm(double *P) {
  return Dense<R, C, BorrowedStorage>(BorrowedStorage{P});
}
// Read-only views: the library templates only call const members on these.
template <int R, int C> Dense<R, C, BorrowedStorage> cm(const double *P) {
  return Dense<R, C, BorrowedStorage>(BorrowedStorage{const_cast<double *>(P)});
}

template <int N> void potrfImpl(double *A) {
  auto M = mutm<N, N>(A);
  upperCholInPlace(M);
}

template <int N> void trtriImpl(double *A) {
  auto M = mutm<N, N>(A);
  invertLowerInPlace(M);
}

template <int N> void trsylImpl(const double *L, const double *U, double *C) {
  auto Lm = cm<N, N>(L);
  auto Um = cm<N, N>(U);
  auto Cm = mutm<N, N>(C);
  trsylInPlace(Lm, Um, Cm);
}

template <int N> void trlyaImpl(const double *L, double *S) {
  auto Lm = cm<N, N>(L);
  auto Sm = mutm<N, N>(S);
  trlyaInPlace(Lm, Sm);
}

template <int N, int K>
void kalmanImpl(const double *F, const double *B, const double *Q,
                const double *H, const double *R, const double *u,
                const double *z, double *x, double *P) {
  auto Fm = cm<N, N>(F);
  auto Bm = cm<N, N>(B);
  auto Qm = cm<N, N>(Q);
  auto Hm = cm<K, N>(H);
  auto Rm = cm<K, K>(R);
  auto um = cm<N, 1>(u);
  auto zm = cm<K, 1>(z);
  auto xm = mutm<N, 1>(x);
  auto Pm = mutm<N, N>(P);

  Vector<N> y;
  y = Fm * xm + Bm * um;
  Matrix<N, N> Y;
  Y = Fm * Pm * Fm.transpose() + Qm;
  Vector<K> v;
  v = zm - Hm * y;
  Matrix<K, N> M1;
  M1 = Hm * Y;
  Matrix<N, K> M2;
  M2 = Y * Hm.transpose();
  Matrix<K, K> M3;
  M3 = M1 * Hm.transpose() + Rm;
  // In-place factorization and solves, as one would write with Eigen's LLT
  // and triangular views.
  lltInPlace(M3);
  solveLowerInPlace(M3, v);
  solveLowerTInPlace(M3, v);
  Matrix<K, N> M5;
  M5 = M1;
  solveLowerInPlace(M3, M5);
  solveLowerTInPlace(M3, M5);
  xm = y + M2 * v;
  Pm = Y - M2 * M5;
}

template <int N>
void gprImpl(const double *K, const double *X, const double *x,
             const double *y, double *Phi, double *Psi, double *Lambda) {
  auto Km = cm<N, N>(K);
  auto Xm = cm<N, N>(X);
  auto xm = cm<N, 1>(x);
  auto ym = cm<N, 1>(y);

  Matrix<N, N> L;
  L = Km;
  lltInPlace(L);
  Vector<N> t;
  t = ym;
  solveLowerInPlace(L, t);
  solveLowerTInPlace(L, t);
  Vector<N> k;
  k = Xm * xm;
  *Phi = dot(k, t);
  Vector<N> v;
  v = k;
  solveLowerInPlace(L, v);
  *Psi = dot(xm, xm) - dot(v, v);
  *Lambda = dot(ym, t);
}

template <int N>
void l1aImpl(const double *W, const double *A, const double *x0,
             const double *y, double Alpha, double Beta, double Tau,
             double *V1, double *Z1, double *V2, double *Z2) {
  auto Wm = cm<N, N>(W);
  auto Am = cm<N, N>(A);
  auto x0m = cm<N, 1>(x0);
  auto ym = cm<N, 1>(y);
  auto v1 = mutm<N, 1>(V1);
  auto z1 = mutm<N, 1>(Z1);
  auto v2 = mutm<N, 1>(V2);
  auto z2 = mutm<N, 1>(Z2);

  Vector<N> y1, y2, x1, x;
  y1 = v1 * Alpha + z1 * Tau;
  y2 = v2 * Alpha + z2 * Tau;
  x1 = Wm.transpose() * y1 - Am.transpose() * y2;
  x = x0m + x1 * Beta;
  z1 = y1 - Wm * x;
  z2 = y2 - (ym - Am * x);
  v1 = v1 * Alpha + z1 * Tau;
  v2 = v2 * Alpha + z2 * Tau;
}

} // namespace

bool apps::potrfSmallet(int N, double *A) {
  switch (N) {
#define X(S)                                                                  \
  case S:                                                                     \
    potrfImpl<S>(A);                                                          \
    return true;
    SMALLET_FOREACH_SIZE(X)
#undef X
  }
  return false;
}

bool apps::trtriSmallet(int N, double *A) {
  switch (N) {
#define X(S)                                                                  \
  case S:                                                                     \
    trtriImpl<S>(A);                                                          \
    return true;
    SMALLET_FOREACH_SIZE(X)
#undef X
  }
  return false;
}

bool apps::trsylSmallet(int N, const double *L, const double *U, double *C) {
  switch (N) {
#define X(S)                                                                  \
  case S:                                                                     \
    trsylImpl<S>(L, U, C);                                                    \
    return true;
    SMALLET_FOREACH_SIZE(X)
#undef X
  }
  return false;
}

bool apps::trlyaSmallet(int N, const double *L, double *S) {
  switch (N) {
#define X(Sz)                                                                 \
  case Sz:                                                                    \
    trlyaImpl<Sz>(L, S);                                                      \
    return true;
    SMALLET_FOREACH_SIZE(X)
#undef X
  }
  return false;
}

bool apps::kalmanSmallet(int N, int K, const double *F, const double *B,
                         const double *Q, const double *H, const double *R,
                         const double *u, const double *z, double *x,
                         double *P) {
  if (N == K) {
    switch (N) {
#define X(S)                                                                  \
  case S:                                                                     \
    kalmanImpl<S, S>(F, B, Q, H, R, u, z, x, P);                              \
    return true;
      SMALLET_FOREACH_SIZE(X)
#undef X
    }
    return false;
  }
  if (N == 28) {
    switch (K) {
#define X(S)                                                                  \
  case S:                                                                     \
    kalmanImpl<28, S>(F, B, Q, H, R, u, z, x, P);                             \
    return true;
      SMALLET_FOREACH_OBS(X)
#undef X
    }
  }
  return false;
}

bool apps::gprSmallet(int N, const double *K, const double *X,
                      const double *x, const double *y, double *Phi,
                      double *Psi, double *Lambda) {
  switch (N) {
#define X2(S)                                                                 \
  case S:                                                                     \
    gprImpl<S>(K, X, x, y, Phi, Psi, Lambda);                                 \
    return true;
    SMALLET_FOREACH_SIZE(X2)
#undef X2
  }
  return false;
}

bool apps::l1aSmallet(int N, const double *W, const double *A,
                      const double *x0, const double *y, double Alpha,
                      double Beta, double Tau, double *V1, double *Z1,
                      double *V2, double *Z2) {
  switch (N) {
#define X(S)                                                                  \
  case S:                                                                     \
    l1aImpl<S>(W, A, x0, y, Alpha, Beta, Tau, V1, Z1, V2, Z2);                \
    return true;
    SMALLET_FOREACH_SIZE(X)
#undef X
  }
  return false;
}
