//===- obs/FlightRecorder.h - crash-surviving request ring ----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on, lock-free black-box ring of the last N request records.
/// The daemon writes one record when a request is admitted ("start") and
/// one when it completes ("done"/"fail"); when the process dies on
/// SIGSEGV/SIGABRT the pre-installed handler dumps the ring to a
/// pre-opened fd with async-signal-safe code only (write(2) plus manual
/// integer formatting -- no malloc, no stdio, no locks), so the chaos
/// harness gets a post-mortem artifact naming the in-flight request even
/// though the process never returned from it.
///
/// Records are fixed-size POD: string fields are truncating char arrays.
/// Each slot stores its record as 64-bit words behind a per-slot
/// sequence number, seqlock style; the words travel through relaxed
/// atomics so a racing reader/writer pair is defined behavior (no torn
/// word, ThreadSanitizer-clean) and the sequence validation discards
/// logically mixed records. A reader that races a writer sees either
/// the old record, the new one, or a slot marked in-progress; the crash
/// dump additionally accepts stale mixes (better a mangled line than no
/// line).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_OBS_FLIGHTRECORDER_H
#define SLINGEN_OBS_FLIGHTRECORDER_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace slingen {
namespace obs {

class FlightRecorder {
public:
  static constexpr size_t Capacity = 256;

  /// One request event. Char arrays are NUL-terminated, truncated copies.
  struct Record {
    uint64_t Seq = 0; ///< 1-based write number; 0 = never written
    uint64_t TraceId = 0;
    int64_t WhenUs = 0;    ///< nowUs() at the event
    int64_t LatencyUs = 0; ///< -1 on "start" events (not yet known)
    char Phase[8] = {};    ///< "start" | "done" | "fail"
    char Verb[8] = {};     ///< wire verb token ("get", "warm", ...)
    char Kernel[32] = {};  ///< kernel fingerprint / function name
    char Peer[24] = {};    ///< connection peer label
    char Tier[12] = {};    ///< serving tier ("mem", "disk", ...) or "-"
    char Errc[24] = {};    ///< errc token on failure, "-" otherwise
  };

  static FlightRecorder &global();

  /// Appends one record. Lock-free and wait-free apart from the char
  /// copies; safe from any thread, NOT from a signal handler.
  void record(uint64_t TraceId, const char *Phase, const char *Verb,
              const char *Kernel, const char *Peer, const char *Tier,
              const char *Errc, int64_t LatencyUs);

  /// Total records ever written.
  uint64_t writes() const { return Next.load(std::memory_order_acquire); }

  /// Records currently held, oldest first. Slots a writer is mid-update
  /// on are skipped. Not signal-safe (allocates).
  std::vector<Record> snapshot() const;

  /// snapshot() as `key=value` lines ("flight <seq> trace=... verb=..."),
  /// for the SIGUSR1 stats dump. Not signal-safe.
  std::string renderText() const;

  /// Async-signal-safe dump of the ring to \p Fd: a banner line, then one
  /// line per record in slot order. Reads slots without synchronization
  /// (a crash handler cannot wait), so lines may rarely be torn.
  void dumpTo(int Fd) const;

  /// Forgets all records (tests only; racy against concurrent writers).
  void reset();

private:
  // One slot holds a Record as relaxed-atomic 64-bit words. Readers and
  // writers copy word-wise (loadSlot/storeSlot) so concurrent access is
  // never a data race; the seqlock word decides whether the copy was
  // consistent.
  static constexpr size_t RecordWords = (sizeof(Record) + 7) / 8;
  struct Slot {
    std::array<std::atomic<uint64_t>, RecordWords> Words{};
  };

  void storeSlot(size_t I, const Record &R);
  Record loadSlot(size_t I) const;

  std::atomic<uint64_t> Next{0};
  std::array<Slot, Capacity> Ring{};
  // Per-slot publication word: 0 while a writer is filling the slot,
  // otherwise the 1-based write number whose record the slot holds.
  std::array<std::atomic<uint64_t>, Capacity> SlotSeq{};
};

} // namespace obs
} // namespace slingen

#endif // SLINGEN_OBS_FLIGHTRECORDER_H
