//===- obs/EventLog.cpp - rate-limited structured event log ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/EventLog.h"

#include "obs/Metrics.h"
#include "support/Format.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace slingen {
namespace obs {

EventLog &EventLog::global() {
  static EventLog E;
  return E;
}

EventLog::~EventLog() { close(); }

bool EventLog::open(const std::string &Path, std::string &Err) {
  int NewFd =
      ::open(Path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (NewFd < 0) {
    Err = "cannot open " + Path + ": " + strerror(errno);
    return false;
  }
  std::lock_guard<std::mutex> L(Mu);
  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
  Tokens = Burst;
  LastRefillUs = nowUs();
  On.store(true, std::memory_order_relaxed);
  return true;
}

void EventLog::close() {
  On.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> L(Mu);
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

static const char *levelName(EventLog::Level L) {
  switch (L) {
  case EventLog::Level::Info:
    return "info";
  case EventLog::Level::Warn:
    return "warn";
  case EventLog::Level::Error:
    return "error";
  }
  return "info";
}

static void appendJsonString(std::string &Out, const std::string &In) {
  Out += '"';
  for (char C : In) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatf("\\u%04x", C);
    } else {
      Out += C;
    }
  }
  Out += '"';
}

void EventLog::log(Level L, uint64_t TraceId, const char *Event,
                   std::initializer_list<Field> Fields) {
  if (!enabled())
    return;
  // Build the line outside the lock; the sink is for rare events, so the
  // allocation cost is irrelevant next to keeping the critical section
  // down to the token check and the write.
  std::string Line = "{\"ts-us\":";
  Line += formatf("%lld", static_cast<long long>(nowUs()));
  Line += ",\"level\":\"";
  Line += levelName(L);
  Line += "\"";
  if (TraceId)
    Line += formatf(",\"trace\":\"%016llx\"",
                    static_cast<unsigned long long>(TraceId));
  Line += ",\"event\":";
  appendJsonString(Line, Event);
  for (const Field &F : Fields) {
    Line += ",";
    appendJsonString(Line, F.first);
    Line += ":";
    appendJsonString(Line, F.second);
  }

  std::lock_guard<std::mutex> Lk(Mu);
  if (Fd < 0)
    return;
  int64_t Now = nowUs();
  Tokens += double(Now - LastRefillUs) * MaxPerSec / 1e6;
  if (Tokens > Burst)
    Tokens = Burst;
  LastRefillUs = Now;
  if (Tokens < 1) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    ++DroppedSinceWrite;
    Registry::global().counter("obs.events_dropped").add();
    return;
  }
  Tokens -= 1;
  if (DroppedSinceWrite > 0) {
    Line += formatf(",\"_dropped\":%lld",
                    static_cast<long long>(DroppedSinceWrite));
    DroppedSinceWrite = 0;
  }
  Line += "}\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t W = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (W <= 0)
      break;
    Off += static_cast<size_t>(W);
  }
}

} // namespace obs
} // namespace slingen
