//===- obs/Trace.cpp - per-request phase tracing --------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/Format.h"

#include <cstdio>
#include <random>

#include <unistd.h>

namespace slingen {
namespace obs {

uint64_t newTraceId() {
  // splitmix64 over a per-thread cursor seeded once from random_device:
  // ids are unique-enough across processes without any locking. The
  // result is never 0 -- 0 means "no trace" everywhere in this subsystem.
  static std::atomic<uint64_t> ProcessSeed{0};
  thread_local uint64_t X = [] {
    uint64_t S = ProcessSeed.load(std::memory_order_relaxed);
    if (S == 0) {
      std::random_device RD;
      S = (static_cast<uint64_t>(RD()) << 32) ^ RD() ^
          (static_cast<uint64_t>(getpid()) << 17);
      ProcessSeed.store(S, std::memory_order_relaxed);
    }
    return S + (Tracer::threadId() * 0x9e3779b97f4a7c15ULL);
  }();
  uint64_t Z;
  do {
    X += 0x9e3779b97f4a7c15ULL;
    Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z = Z ^ (Z >> 31);
  } while (Z == 0);
  return Z;
}

static thread_local uint64_t CurTraceId = 0;
static thread_local SpanCollector *CurCollector = nullptr;

uint64_t currentTraceId() { return CurTraceId; }
void setCurrentTraceId(uint64_t Id) { CurTraceId = Id; }

SpanCollector *currentCollector() { return CurCollector; }

ScopedCollect::ScopedCollect(SpanCollector &C) : Prev(CurCollector) {
  CurCollector = &C;
}
ScopedCollect::~ScopedCollect() { CurCollector = Prev; }

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

uint32_t Tracer::threadId() {
  // Dense per-process numbering beats hashed std::thread::id for humans
  // reading the trace: the first thread seen is 1, the next 2, ...
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed) + 1;
  return Id;
}

void Tracer::record(const Span &S) {
  std::lock_guard<std::mutex> L(Mu);
  if (Spans.size() >= MaxSpans) {
    Spans.pop_front();
    Dropped.fetch_add(1, std::memory_order_relaxed);
    Registry::global().counter("obs.trace_dropped").add();
  }
  Spans.push_back(S);
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Spans.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> L(Mu);
  Spans.clear();
  Dropped.store(0, std::memory_order_relaxed);
}

static void appendJsonString(std::string &Out, const std::string &In) {
  Out += '"';
  for (char C : In) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatf("\\u%04x", C);
    } else {
      Out += C;
    }
  }
  Out += '"';
}

std::string Tracer::exportChromeTrace() const {
  std::lock_guard<std::mutex> L(Mu);
  std::string Out = "{\"traceEvents\": [";
  int Pid = static_cast<int>(getpid());
  bool First = true;
  for (const Span &S : Spans) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"name\": ";
    appendJsonString(Out, S.Name);
    Out += ", \"cat\": ";
    appendJsonString(Out, S.Cat);
    Out += formatf(", \"ph\": \"X\", \"ts\": %lld, \"dur\": %lld, "
                   "\"pid\": %d, \"tid\": %u",
                   static_cast<long long>(S.StartUs),
                   static_cast<long long>(S.DurUs), Pid, S.Tid);
    if (S.TraceId)
      Out += formatf(", \"args\": {\"trace\": \"%016llx\"}",
                     static_cast<unsigned long long>(S.TraceId));
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path,
                              std::string &Err) const {
  std::string Doc = exportChromeTrace();
  FILE *F = fopen(Path.c_str(), "w");
  if (!F) {
    Err = "cannot open " + Path + " for writing";
    return false;
  }
  size_t N = fwrite(Doc.data(), 1, Doc.size(), F);
  bool Ok = N == Doc.size() && fclose(F) == 0;
  if (!Ok) {
    Err = "short write to " + Path;
    if (N != Doc.size())
      fclose(F);
  }
  return Ok;
}

int64_t ScopedSpan::finish() {
  if (Done)
    return Dur;
  Done = true;
  Dur = nowUs() - StartUs;
  if (Hist)
    Hist->record(Dur);
  if (!Traced && !CurCollector)
    return Dur;
  Span S;
  S.Name = Name;
  S.Cat = Cat;
  S.StartUs = StartUs;
  S.DurUs = Dur;
  S.Tid = Tracer::threadId();
  S.TraceId = CurTraceId;
  if (CurCollector)
    CurCollector->add(S);
  if (Traced)
    Tracer::global().record(S);
  return Dur;
}

} // namespace obs
} // namespace slingen
