//===- obs/Metrics.cpp - process-wide metrics registry --------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Format.h"

#include <algorithm>
#include <chrono>

namespace slingen {
namespace obs {

int64_t nowUs() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

int Histogram::bucketOf(int64_t Us) {
  if (Us < 2)
    return 0; // [0, 2): bucket 0 absorbs the degenerate low end
  int I = 0;
  for (uint64_t V = static_cast<uint64_t>(Us); V > 1; V >>= 1)
    ++I;
  return I < NumBuckets ? I : NumBuckets - 1;
}

void Histogram::record(int64_t Us) {
  if (Us < 0)
    Us = 0;
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Us, std::memory_order_relaxed);
  Buckets[bucketOf(Us)].fetch_add(1, std::memory_order_relaxed);
  // Lossy CAS loops for the extremes; contention here is rare (only a new
  // min/max retries) and losing a race to an equal-or-better value is fine.
  int64_t Cur = Min.load(std::memory_order_relaxed);
  while (Us < Cur &&
         !Min.compare_exchange_weak(Cur, Us, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Us > Cur &&
         !Max.compare_exchange_weak(Cur, Us, std::memory_order_relaxed))
    ;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  int64_t M = Min.load(std::memory_order_relaxed);
  S.Min = M == INT64_MAX ? 0 : M;
  S.Max = Max.load(std::memory_order_relaxed);
  for (int I = 0; I < NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

double Histogram::Snapshot::percentile(double P) const {
  if (Count <= 0)
    return 0;
  if (P <= 0)
    return double(Min);
  if (P >= 100)
    return double(Max);
  // Rank of the target sample (1-based), then walk the buckets and
  // interpolate linearly inside the one that contains it. Bucket I spans
  // [2^I, 2^(I+1)) except bucket 0, which starts at 0.
  double Rank = P / 100.0 * double(Count);
  int64_t Seen = 0;
  for (int I = 0; I < NumBuckets; ++I) {
    if (!Buckets[I])
      continue;
    if (double(Seen + Buckets[I]) >= Rank) {
      double Lo = I == 0 ? 0.0 : double(int64_t(1) << I);
      double Hi = I >= 62 ? double(Max) : double(int64_t(1) << (I + 1));
      double Frac = (Rank - double(Seen)) / double(Buckets[I]);
      double V = Lo + Frac * (Hi - Lo);
      // The true extremes are known exactly; never report outside them.
      if (V < double(Min))
        V = double(Min);
      if (V > double(Max))
        V = double(Max);
      return V;
    }
    Seen += Buckets[I];
  }
  return double(Max);
}

//===----------------------------------------------------------------------===//
// LabelTable
//===----------------------------------------------------------------------===//

void LabelTable::add(const std::string &Label, int64_t Us) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Cells.find(Label);
  if (It == Cells.end()) {
    if (Cells.size() >= MaxLabels) {
      // Evict the least-recently-touched label. O(n) over <= MaxLabels
      // cells, and only on insertion of a brand-new label at capacity.
      auto Victim = Cells.begin();
      for (auto C = Cells.begin(); C != Cells.end(); ++C)
        if (C->second.Touch < Victim->second.Touch)
          Victim = C;
      Cells.erase(Victim);
      Evicted.fetch_add(1, std::memory_order_relaxed);
    }
    It = Cells.emplace(Label, Cell{}).first;
  }
  It->second.Count += 1;
  It->second.SumUs += Us;
  It->second.Touch = ++Tick;
}

std::vector<LabelTable::Row> LabelTable::topK(size_t K) const {
  std::vector<Row> Rows;
  {
    std::lock_guard<std::mutex> L(Mu);
    Rows.reserve(Cells.size());
    for (const auto &[Label, C] : Cells)
      Rows.push_back({Label, C.Count, C.SumUs});
  }
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    if (A.Count != B.Count)
      return A.Count > B.Count;
    return A.Label < B.Label;
  });
  if (Rows.size() > K)
    Rows.resize(K);
  return Rows;
}

size_t LabelTable::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Cells.size();
}

std::string LabelTable::renderText(const std::string &Prefix,
                                   size_t K) const {
  std::string Out;
  for (const Row &R : topK(K)) {
    Out += formatf("%s.%s.count=%lld\n", Prefix.c_str(), R.Label.c_str(),
                   static_cast<long long>(R.Count));
    Out += formatf("%s.%s.sum-us=%lld\n", Prefix.c_str(), R.Label.c_str(),
                   static_cast<long long>(R.SumUs));
  }
  Out += formatf("%s.evicted=%lld\n", Prefix.c_str(),
                 static_cast<long long>(evicted()));
  return Out;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

std::string Registry::renderText() const {
  // Merge every metric into one sorted key sequence before emitting, so
  // two dumps from the same process diff cleanly regardless of which
  // kind (counter / gauge / histogram) a key happens to be.
  std::map<std::string, std::string> Lines;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const auto &[Name, C] : Counters)
      Lines[Name] = formatf("%lld", static_cast<long long>(C->value()));
    for (const auto &[Name, G] : Gauges)
      Lines[Name] = formatf("%lld", static_cast<long long>(G->value()));
    for (const auto &[Name, H] : Histograms) {
      auto S = H->snapshot();
      Lines[Name + ".count"] = formatf("%lld", (long long)S.Count);
      Lines[Name + ".sum-us"] = formatf("%lld", (long long)S.Sum);
      Lines[Name + ".min-us"] = formatf("%lld", (long long)S.Min);
      Lines[Name + ".max-us"] = formatf("%lld", (long long)S.Max);
      Lines[Name + ".p50-us"] = formatf("%lld", (long long)(S.p50() + 0.5));
      Lines[Name + ".p90-us"] = formatf("%lld", (long long)(S.p90() + 0.5));
      Lines[Name + ".p99-us"] = formatf("%lld", (long long)(S.p99() + 0.5));
    }
  }
  std::string Out;
  for (const auto &[Key, Val] : Lines)
    Out += Key + "=" + Val + "\n";
  return Out;
}

} // namespace obs
} // namespace slingen
