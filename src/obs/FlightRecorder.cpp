//===- obs/FlightRecorder.cpp - crash-surviving request ring --------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include "obs/Metrics.h"
#include "support/Format.h"

#include <algorithm>
#include <cstring>

#include <unistd.h>

namespace slingen {
namespace obs {

FlightRecorder &FlightRecorder::global() {
  // Call once at process startup (sld does) so the guarded construction
  // never first happens inside a crash handler.
  static FlightRecorder F;
  return F;
}

static void copyField(char *Dst, size_t Cap, const char *Src) {
  if (!Src || !*Src)
    Src = "-";
  size_t N = strnlen(Src, Cap - 1);
  memcpy(Dst, Src, N);
  Dst[N] = '\0';
}

void FlightRecorder::storeSlot(size_t I, const Record &R) {
  uint64_t W[RecordWords] = {};
  memcpy(W, &R, sizeof(Record));
  for (size_t J = 0; J < RecordWords; ++J)
    Ring[I].Words[J].store(W[J], std::memory_order_relaxed);
}

FlightRecorder::Record FlightRecorder::loadSlot(size_t I) const {
  uint64_t W[RecordWords] = {};
  for (size_t J = 0; J < RecordWords; ++J)
    W[J] = Ring[I].Words[J].load(std::memory_order_relaxed);
  Record R;
  memcpy(&R, W, sizeof(Record));
  return R;
}

void FlightRecorder::record(uint64_t TraceId, const char *Phase,
                            const char *Verb, const char *Kernel,
                            const char *Peer, const char *Tier,
                            const char *Errc, int64_t LatencyUs) {
  uint64_t N = Next.fetch_add(1, std::memory_order_relaxed);
  size_t Slot = N % Capacity;
  // Build the record privately, mark the slot in-progress so snapshot()
  // skips it, copy word-wise, then publish. The release on the final
  // store orders every word store before the new sequence becomes
  // visible to an acquire reader.
  Record R;
  R.Seq = N + 1;
  R.TraceId = TraceId;
  R.WhenUs = nowUs();
  R.LatencyUs = LatencyUs;
  copyField(R.Phase, sizeof(R.Phase), Phase);
  copyField(R.Verb, sizeof(R.Verb), Verb);
  copyField(R.Kernel, sizeof(R.Kernel), Kernel);
  copyField(R.Peer, sizeof(R.Peer), Peer);
  copyField(R.Tier, sizeof(R.Tier), Tier);
  copyField(R.Errc, sizeof(R.Errc), Errc);
  SlotSeq[Slot].store(0, std::memory_order_release);
  storeSlot(Slot, R);
  SlotSeq[Slot].store(N + 1, std::memory_order_release);
}

std::vector<FlightRecorder::Record> FlightRecorder::snapshot() const {
  std::vector<Record> Out;
  Out.reserve(Capacity);
  for (size_t I = 0; I < Capacity; ++I) {
    uint64_t Before = SlotSeq[I].load(std::memory_order_acquire);
    if (Before == 0)
      continue; // never written, or a writer is mid-flight
    Record R = loadSlot(I);
    // Seqlock reader validation: the fence keeps the word loads above
    // from sinking past the recheck.
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t After = SlotSeq[I].load(std::memory_order_relaxed);
    if (After != Before || R.Seq != Before)
      continue; // a writer intervened; drop rather than mangle
    Out.push_back(R);
  }
  std::sort(Out.begin(), Out.end(),
            [](const Record &A, const Record &B) { return A.Seq < B.Seq; });
  return Out;
}

static std::string renderRecord(const FlightRecorder::Record &R) {
  return formatf("flight %llu trace=%016llx phase=%s verb=%s kernel=%s "
                 "peer=%s tier=%s errc=%s lat-us=%lld\n",
                 static_cast<unsigned long long>(R.Seq),
                 static_cast<unsigned long long>(R.TraceId), R.Phase, R.Verb,
                 R.Kernel, R.Peer, R.Tier, R.Errc,
                 static_cast<long long>(R.LatencyUs));
}

std::string FlightRecorder::renderText() const {
  std::string Out;
  for (const Record &R : snapshot())
    Out += renderRecord(R);
  return Out;
}

//===----------------------------------------------------------------------===//
// Async-signal-safe dump
//===----------------------------------------------------------------------===//

namespace {

// A tiny stack-buffer line builder using only memcpy-level operations;
// everything below is callable from a signal handler.
struct SafeLine {
  char Buf[256];
  size_t Len = 0;

  void str(const char *S) {
    while (*S && Len < sizeof(Buf) - 1)
      Buf[Len++] = *S++;
  }
  void dec(long long V) {
    char Tmp[24];
    size_t N = 0;
    unsigned long long U;
    if (V < 0) {
      str("-");
      U = static_cast<unsigned long long>(-(V + 1)) + 1;
    } else {
      U = static_cast<unsigned long long>(V);
    }
    do {
      Tmp[N++] = char('0' + U % 10);
      U /= 10;
    } while (U && N < sizeof(Tmp));
    while (N && Len < sizeof(Buf) - 1)
      Buf[Len++] = Tmp[--N];
  }
  void hex16(unsigned long long V) {
    static const char Digits[] = "0123456789abcdef";
    for (int I = 15; I >= 0 && Len < sizeof(Buf) - 1; --I)
      Buf[Len++] = Digits[(V >> (I * 4)) & 0xf];
  }
  void flush(int Fd) {
    size_t Off = 0;
    while (Off < Len) {
      ssize_t W = ::write(Fd, Buf + Off, Len - Off);
      if (W <= 0)
        return;
      Off += static_cast<size_t>(W);
    }
    Len = 0;
  }
};

} // namespace

void FlightRecorder::dumpTo(int Fd) const {
  if (Fd < 0)
    return;
  uint64_t Writes = Next.load(std::memory_order_relaxed);
  {
    SafeLine L;
    L.str("flight-recorder dump: ");
    L.dec(static_cast<long long>(Writes));
    L.str(" records written, ring capacity ");
    L.dec(static_cast<long long>(Capacity));
    L.str("\n");
    L.flush(Fd);
  }
  // Oldest slot first when the ring has wrapped.
  size_t Start = Writes > Capacity ? Writes % Capacity : 0;
  for (size_t I = 0; I < Capacity; ++I) {
    // Relaxed lock-free word loads into a stack copy: still
    // async-signal-safe, and a concurrent writer cannot tear a word.
    Record R = loadSlot((Start + I) % Capacity);
    if (R.Seq == 0)
      continue;
    SafeLine L;
    L.str("flight ");
    L.dec(static_cast<long long>(R.Seq));
    L.str(" trace=");
    L.hex16(R.TraceId);
    L.str(" phase=");
    L.str(R.Phase);
    L.str(" verb=");
    L.str(R.Verb);
    L.str(" kernel=");
    L.str(R.Kernel);
    L.str(" peer=");
    L.str(R.Peer);
    L.str(" tier=");
    L.str(R.Tier);
    L.str(" errc=");
    L.str(R.Errc);
    L.str(" lat-us=");
    L.dec(static_cast<long long>(R.LatencyUs));
    L.str("\n");
    L.flush(Fd);
  }
}

void FlightRecorder::reset() {
  for (size_t I = 0; I < Capacity; ++I) {
    SlotSeq[I].store(0, std::memory_order_relaxed);
    storeSlot(I, Record{});
  }
  Next.store(0, std::memory_order_relaxed);
}

} // namespace obs
} // namespace slingen
