//===- obs/EventLog.h - rate-limited structured event log -----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide JSONL event sink for the notable-but-rare moments a
/// daemon operator greps for after the fact: errors, sheds, quarantines,
/// and slow requests over a threshold. Each event is one JSON object per
/// line -- timestamp, level, trace id, event name, plus free-form string
/// fields -- appended to a file opened via `sld -log-json <path>`.
///
/// The sink is rate-limited by a token bucket (events, not bytes) so a
/// failure storm cannot turn the log into the bottleneck or fill the
/// disk; drops are counted in the `obs.events_dropped` metric and in the
/// periodic `_dropped` summary event the logger emits when the storm
/// subsides. Disabled (the default) the whole thing is one relaxed load.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_OBS_EVENTLOG_H
#define SLINGEN_OBS_EVENTLOG_H

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>

namespace slingen {
namespace obs {

class EventLog {
public:
  enum class Level { Info, Warn, Error };

  static EventLog &global();
  ~EventLog();

  /// Opens (creating/appending) \p Path and enables the sink. False +
  /// \p Err when the file cannot be opened.
  bool open(const std::string &Path, std::string &Err);
  void close();

  bool enabled() const { return On.load(std::memory_order_relaxed); }

  using Field = std::pair<const char *, std::string>;

  /// Appends one event line. No-op when the sink is closed; counted and
  /// dropped when the rate limit is exhausted.
  void log(Level L, uint64_t TraceId, const char *Event,
           std::initializer_list<Field> Fields = {});

  int64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }

  /// Events admitted per second once the burst allowance is spent.
  static constexpr int MaxPerSec = 200;
  static constexpr int Burst = 400;

private:
  std::atomic<bool> On{false};
  std::atomic<int64_t> Dropped{0};
  mutable std::mutex Mu;
  int Fd = -1;
  double Tokens = Burst;
  int64_t LastRefillUs = 0;
  int64_t DroppedSinceWrite = 0;
};

} // namespace obs
} // namespace slingen

#endif // SLINGEN_OBS_EVENTLOG_H
