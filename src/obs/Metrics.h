//===- obs/Metrics.h - process-wide metrics registry ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters, gauges, and log-bucket latency histograms behind one
/// process-wide registry. The serving stack (KernelService, the cache
/// tiers, the JIT, the batch pool, the socket front end) records into
/// metrics resolved once at first use; recording is a handful of relaxed
/// atomic ops, so the instrumentation can stay on in production daemons.
///
///   obs::Histogram &H = obs::Registry::global().histogram("serve.get.us");
///   H.record(ElapsedUs);
///   auto S = H.snapshot();   // count/sum/min/max + p50/p90/p99
///
/// Registry::renderText() dumps everything as sorted `key=value` lines
/// (histograms expand to .count/.p50/.p90/.p99/... keys); sld's SIGUSR1
/// handler and `slc -stats` both print it.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_OBS_METRICS_H
#define SLINGEN_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slingen {
namespace obs {

/// Microseconds on the monotonic clock; the time base for every histogram
/// and trace span in this subsystem.
int64_t nowUs();

/// Monotonically increasing event count.
class Counter {
public:
  void add(int64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Point-in-time level (cache occupancy, bytes on disk, ...).
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t D) { V.fetch_add(D, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Fixed log-bucket latency histogram. Bucket I counts samples in
/// [2^I, 2^(I+1)) microseconds (bucket 0 additionally absorbs 0), so 64
/// buckets cover every representable duration with <= 2x relative error
/// per bucket; percentile() interpolates linearly inside the bucket.
/// record() is wait-free (three relaxed adds + two CAS-free min/max
/// updates); snapshot() is a racy-but-consistent-enough read, fine for
/// periodic reporting.
class Histogram {
public:
  static constexpr int NumBuckets = 64;

  void record(int64_t Us);

  /// record(nowUs() - StartUs), for call sites holding a start stamp.
  void recordSince(int64_t StartUs) { record(nowUs() - StartUs); }

  struct Snapshot {
    int64_t Count = 0;
    int64_t Sum = 0;
    int64_t Min = 0; ///< 0 when Count == 0
    int64_t Max = 0;
    std::array<int64_t, NumBuckets> Buckets{};

    /// Interpolated value at percentile \p P in [0, 100]. 0 when empty.
    double percentile(double P) const;
    double p50() const { return percentile(50); }
    double p90() const { return percentile(90); }
    double p99() const { return percentile(99); }
    double mean() const { return Count ? double(Sum) / double(Count) : 0; }
  };

  Snapshot snapshot() const;

  /// Index of the bucket covering \p Us (exposed for tests).
  static int bucketOf(int64_t Us);

private:
  std::atomic<int64_t> Count{0};
  std::atomic<int64_t> Sum{0};
  std::atomic<int64_t> Min{INT64_MAX};
  std::atomic<int64_t> Max{0};
  std::array<std::atomic<int64_t>, NumBuckets> Buckets{};
};

/// Capacity-bounded label -> {count, sum-us} table for dimensions whose
/// label set is caller-controlled (kernel names, peer addresses): at most
/// MaxLabels live at once, and adding a new label past the cap evicts the
/// least-recently-touched one, so a hostile or merely diverse client
/// population cannot grow daemon memory without bound. Eviction loses
/// that label's counts -- acceptable for a top-K ops surface, and the
/// evicted() total says how much churn the cap caused.
class LabelTable {
public:
  explicit LabelTable(size_t MaxLabels = 64) : MaxLabels(MaxLabels) {}

  void add(const std::string &Label, int64_t Us);

  struct Row {
    std::string Label;
    int64_t Count = 0;
    int64_t SumUs = 0;
  };

  /// The K highest-count rows, count-descending, label-ascending on ties.
  std::vector<Row> topK(size_t K) const;

  size_t size() const;
  int64_t evicted() const { return Evicted.load(std::memory_order_relaxed); }

  /// Top-K rows as `<Prefix>.<label>.count=` / `.sum-us=` lines, in topK()
  /// order, followed by a `<Prefix>.evicted=` line.
  std::string renderText(const std::string &Prefix, size_t K) const;

private:
  struct Cell {
    int64_t Count = 0;
    int64_t SumUs = 0;
    uint64_t Touch = 0;
  };
  mutable std::mutex Mu;
  std::map<std::string, Cell> Cells;
  uint64_t Tick = 0;
  size_t MaxLabels;
  std::atomic<int64_t> Evicted{0};
};

/// Name -> metric map with stable addresses: a returned reference lives as
/// long as the registry, so call sites resolve once (static local) and
/// record lock-free afterwards. Lookup takes a mutex -- do it outside hot
/// loops. One metric name maps to exactly one kind; reusing a counter name
/// for a histogram is a programming error and asserts in debug builds.
class Registry {
public:
  static Registry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Every metric as `key=value` lines in one globally sorted key order
  /// (counters, gauges, and histogram expansions interleaved), so two
  /// dumps diff cleanly line-by-line. Counters and gauges print raw
  /// values; histogram H expands to H.count, H.sum-us, H.min-us,
  /// H.max-us, H.p50-us, H.p90-us, H.p99-us (percentiles rounded to
  /// integers -- this is a human/ops surface, not an archival format).
  std::string renderText() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace obs
} // namespace slingen

#endif // SLINGEN_OBS_METRICS_H
