//===- obs/Trace.h - per-request phase tracing ----------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight span tracer for the serving stack. Instrumented phases
/// (cache lookup, single-flight wait, generation, C compile, tuner
/// measurement, batch dispatch, wire round trips) open a ScopedSpan; when
/// tracing is enabled the completed span lands in a bounded in-process
/// ring, exportable as Chrome trace-event JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev). When tracing is disabled
/// -- the default -- a span costs one steady_clock read on each end plus
/// one relaxed atomic load, so the instrumentation stays compiled in.
///
/// ScopedSpan doubles as the histogram timer: give it a Histogram and the
/// elapsed time is recorded there regardless of whether tracing is on.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_OBS_TRACE_H
#define SLINGEN_OBS_TRACE_H

#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace slingen {
namespace obs {

/// One completed phase: [StartUs, StartUs + DurUs] on thread Tid.
/// Name/Cat are expected to be string literals owned by the call site
/// (every instrumented phase in-tree uses fixed tokens).
struct Span {
  const char *Name = "";
  const char *Cat = "";
  int64_t StartUs = 0;
  int64_t DurUs = 0;
  uint32_t Tid = 0;
};

/// The process-wide span sink. Disabled by default; sl::setTracing() and
/// `slc -trace-out` flip it on. The ring keeps the most recent MaxSpans
/// spans (drop-oldest), so a long-running daemon can stay traced without
/// unbounded growth; dropped() says how many fell off.
class Tracer {
public:
  static Tracer &global();

  void setEnabled(bool On) { On_.store(On, std::memory_order_relaxed); }
  bool enabled() const { return On_.load(std::memory_order_relaxed); }

  void record(const Span &S);
  size_t size() const;
  int64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }
  void clear();

  /// The accumulated spans as a complete Chrome trace-event JSON document:
  /// {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": ...,
  /// "dur": ..., "pid": ..., "tid": ...}, ...]}.
  std::string exportChromeTrace() const;

  /// exportChromeTrace() to \p Path; false + \p Err on I/O failure.
  bool writeChromeTrace(const std::string &Path, std::string &Err) const;

  /// Stable small integer for the calling thread (Chrome traces want
  /// numeric tids; std::thread::id is opaque).
  static uint32_t threadId();

private:
  std::atomic<bool> On_{false};
  std::atomic<int64_t> Dropped{0};
  mutable std::mutex Mu;
  std::deque<Span> Spans;
  static constexpr size_t MaxSpans = 1 << 16;
};

/// RAII phase timer: measures steady-clock microseconds from construction
/// to destruction, records into \p Hist when given one, and appends a Span
/// to the global tracer when tracing was enabled at construction time.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name, const char *Cat = "serve",
                      Histogram *Hist = nullptr)
      : Name(Name), Cat(Cat), Hist(Hist), StartUs(nowUs()),
        Traced(Tracer::global().enabled()) {}
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Microseconds elapsed so far.
  int64_t elapsedUs() const { return nowUs() - StartUs; }

  /// Ends the span early (idempotent); the destructor becomes a no-op.
  /// Returns the measured duration in microseconds.
  int64_t finish();

private:
  const char *Name;
  const char *Cat;
  Histogram *Hist;
  int64_t StartUs;
  bool Traced;
  bool Done = false;
  int64_t Dur = 0;
};

} // namespace obs
} // namespace slingen

#endif // SLINGEN_OBS_TRACE_H
