//===- obs/Trace.h - per-request phase tracing ----------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight span tracer for the serving stack. Instrumented phases
/// (cache lookup, single-flight wait, generation, C compile, tuner
/// measurement, batch dispatch, wire round trips) open a ScopedSpan; when
/// tracing is enabled the completed span lands in a bounded in-process
/// ring, exportable as Chrome trace-event JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev). When tracing is disabled
/// -- the default -- a span costs one steady_clock read on each end plus
/// one relaxed atomic load, so the instrumentation stays compiled in.
///
/// ScopedSpan doubles as the histogram timer: give it a Histogram and the
/// elapsed time is recorded there regardless of whether tracing is on.
///
/// Spans are request-scoped: a thread-local trace id (set by the client
/// session per request, and by the daemon from the request's wire field)
/// stamps every span finished while it is installed, so one logical
/// request's spans correlate across processes. A thread-local
/// SpanCollector additionally captures finished spans for shipping back
/// to the client as part of a timed reply.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_OBS_TRACE_H
#define SLINGEN_OBS_TRACE_H

#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace slingen {
namespace obs {

/// One completed phase: [StartUs, StartUs + DurUs] on thread Tid, tagged
/// with the request trace id that was current when it finished (0 when
/// the phase ran outside any request scope).
struct Span {
  std::string Name;
  std::string Cat;
  int64_t StartUs = 0;
  int64_t DurUs = 0;
  uint32_t Tid = 0;
  uint64_t TraceId = 0;
};

/// A fresh nonzero 64-bit id for stamping a request (trace or span id).
/// Seeded from std::random_device once per process, then a cheap
/// splitmix64 step per call; uniqueness matters, cryptography does not.
uint64_t newTraceId();

/// The trace id attached to spans finished on this thread; 0 when no
/// request scope is active.
uint64_t currentTraceId();
void setCurrentTraceId(uint64_t Id);

/// RAII request scope: installs \p Id as the thread's current trace id
/// and restores the previous one on destruction.
class ScopedTraceId {
public:
  explicit ScopedTraceId(uint64_t Id) : Prev(currentTraceId()) {
    setCurrentTraceId(Id);
  }
  ~ScopedTraceId() { setCurrentTraceId(Prev); }
  ScopedTraceId(const ScopedTraceId &) = delete;
  ScopedTraceId &operator=(const ScopedTraceId &) = delete;

private:
  uint64_t Prev;
};

/// Collects the spans finished on this thread while installed, regardless
/// of whether the global tracer is enabled. The daemon wraps each timed
/// request in one of these to ship its span list back to the client.
/// Bounded: past MaxSpans further spans are counted but not stored.
class SpanCollector {
public:
  static constexpr size_t MaxSpans = 128;

  std::vector<Span> Spans;
  size_t Overflow = 0;

  void add(const Span &S) {
    if (Spans.size() < MaxSpans)
      Spans.push_back(S);
    else
      ++Overflow;
  }
};

/// The collector currently installed on this thread, or nullptr.
SpanCollector *currentCollector();

/// RAII: installs \p C as the thread's span collector, restoring the
/// previous one on destruction.
class ScopedCollect {
public:
  explicit ScopedCollect(SpanCollector &C);
  ~ScopedCollect();
  ScopedCollect(const ScopedCollect &) = delete;
  ScopedCollect &operator=(const ScopedCollect &) = delete;

private:
  SpanCollector *Prev;
};

/// The process-wide span sink. Disabled by default; sl::setTracing() and
/// `slc -trace-out` flip it on. The ring keeps the most recent MaxSpans
/// spans (drop-oldest), so a long-running daemon can stay traced without
/// unbounded growth; dropped() says how many fell off (also exported as
/// the `obs.trace_dropped` counter).
class Tracer {
public:
  static Tracer &global();

  void setEnabled(bool On) { On_.store(On, std::memory_order_relaxed); }
  bool enabled() const { return On_.load(std::memory_order_relaxed); }

  void record(const Span &S);
  size_t size() const;
  int64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }
  void clear();

  /// The accumulated spans as a complete Chrome trace-event JSON document:
  /// {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": ...,
  /// "dur": ..., "pid": ..., "tid": ..., "args": {"trace": "<hex>"}}, ...]}.
  /// The args block is present only on spans with a nonzero trace id.
  std::string exportChromeTrace() const;

  /// exportChromeTrace() to \p Path; false + \p Err on I/O failure.
  bool writeChromeTrace(const std::string &Path, std::string &Err) const;

  /// Stable small integer for the calling thread (Chrome traces want
  /// numeric tids; std::thread::id is opaque).
  static uint32_t threadId();

private:
  std::atomic<bool> On_{false};
  std::atomic<int64_t> Dropped{0};
  mutable std::mutex Mu;
  std::deque<Span> Spans;
  static constexpr size_t MaxSpans = 1 << 16;
};

/// RAII phase timer: measures steady-clock microseconds from construction
/// to destruction, records into \p Hist when given one, appends a Span to
/// the global tracer when tracing was enabled at construction time, and
/// feeds the thread's SpanCollector when one is installed.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name, const char *Cat = "serve",
                      Histogram *Hist = nullptr)
      : Name(Name), Cat(Cat), Hist(Hist), StartUs(nowUs()),
        Traced(Tracer::global().enabled()) {}
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Microseconds elapsed so far.
  int64_t elapsedUs() const { return nowUs() - StartUs; }

  /// Ends the span early (idempotent); the destructor becomes a no-op.
  /// Returns the measured duration in microseconds.
  int64_t finish();

private:
  const char *Name;
  const char *Cat;
  Histogram *Hist;
  int64_t StartUs;
  bool Traced;
  bool Done = false;
  int64_t Dur = 0;
};

} // namespace obs
} // namespace slingen

#endif // SLINGEN_OBS_TRACE_H
