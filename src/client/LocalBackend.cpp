//===- client/LocalBackend.cpp - in-process service backend ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `local:` backend: a private KernelService configured from the
// session's options, with the facade request lowered through the same
// RequestOptions path the daemon uses -- so a request served here and one
// served by a daemon with the same config produce identical artifacts.
//
//===----------------------------------------------------------------------===//

#include "client/ClientImpl.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace slingen;
using namespace slingen::client;
using namespace slingen::client::detail;

namespace {

class LocalBackend : public Backend {
public:
  explicit LocalBackend(service::ServiceConfig SC) : Svc(std::move(SC)) {}

  Result<Kernel> get(const Request &R) override {
    GenOptions Options;
    service::RequestOptions Req;
    toServiceArgs(R, Options, Req);
    // Same per-request stamping as the remote path: every span this get
    // produces (service phases included -- same process, same thread)
    // shares one fresh trace id in the exported trace.
    obs::ScopedTraceId Scope(obs::newTraceId());
    // "Round trip" degenerates to the service call itself here; keeping
    // the field populated means RoundTripUs - TotalUs is comparable
    // across backends (near zero locally, wire cost remotely).
    long Start = obs::nowUs();
    service::GetResult G = Svc.get(R.source(), Options, Req);
    if (!G)
      return Status::failure(mapServiceErrc(G.Code), G.Error);
    return KernelFactory::fromArtifact(G.Kernel, R.wantObject(),
                                       R.wantTiming() ? &G.Timing : nullptr,
                                       obs::nowUs() - Start);
  }

  Status warm(const Request &R) override {
    GenOptions Options;
    service::RequestOptions Req;
    toServiceArgs(R, Options, Req);
    Svc.prefetch(R.source(), Options, Req);
    return Status::success();
  }

  Status drain() override {
    Svc.drainPrefetches();
    return Status::success();
  }

  Status ping() override { return Status::success(); }

  Result<std::string> stats() override {
    return service::serializeServiceStats(Svc.stats());
  }

  Result<std::string> metrics() override {
    // No daemon in the loop: the scrape is this process's own registry.
    return obs::Registry::global().renderText();
  }

  Session::BackendKind kind() const override {
    return Session::BackendKind::Local;
  }

private:
  service::KernelService Svc;
};

} // namespace

std::unique_ptr<Backend>
detail::makeLocalBackend(const std::string &CacheDir,
                         const SessionConfig &Config, Status &Err) {
  service::ServiceConfig SC;
  if (!CacheDir.empty())
    SC.CacheDir = CacheDir;
  std::string OptErr;
  for (const auto &[Key, Value] : Config.ServiceOptions)
    if (!service::applyServiceConfigOption(SC, Key, Value, OptErr)) {
      Err = Status::failure(Code::InvalidRequest, OptErr);
      return nullptr;
    }
  return std::make_unique<LocalBackend>(std::move(SC));
}
