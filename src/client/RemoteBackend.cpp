//===- client/RemoteBackend.cpp - daemon-backed and fallback backends -----===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `unix:`/`tcp:` backend -- a net::Client with per-request connection
// re-establishment -- and the `auto:` wrapper that degrades to a local
// service on transport failures only. Daemon-side verdicts about a request
// (parse errors, compile failures, ...) are final: re-running them locally
// would just repeat the failure while hiding the daemon's state, so the
// fallback never catches those.
//
//===----------------------------------------------------------------------===//

#include "client/ClientImpl.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

using namespace slingen;
using namespace slingen::client;
using namespace slingen::client::detail;

namespace {

/// True when the failure says nothing about the request itself, so
/// re-sending it is sound: the transport died (except a client-side
/// deadline expiry, which retrying cannot outrun), or the daemon shed it
/// under load and asked for a backoff.
bool retryable(const net::ClientError &E) {
  if (E.Code && *E.Code == service::Errc::DeadlineExceeded)
    return false;
  if (E.Category == net::ErrorCategory::Transport)
    return true;
  return E.Category == net::ErrorCategory::Daemon && E.Code &&
         *E.Code == service::Errc::Overloaded;
}

class RemoteBackend : public Backend {
public:
  RemoteBackend(std::string Addr, SessionConfig Config)
      : Addr(std::move(Addr)), Cfg(std::move(Config)) {}

  /// One bounded attempt loop shared by every verb (GET/WARM/PING/STATS
  /// are all idempotent): ensure a connection, run the exchange, and on a
  /// retry-safe failure (see retryable) back off and try again, up to
  /// Cfg.MaxRetries retries. Backoff is exponential with jitter so a
  /// thundering herd of shed clients spreads out instead of re-arriving in
  /// lockstep; \p DeadlineUs (0 = none) caps the whole sequence -- a sleep
  /// that would land past the deadline is not taken. The failure that
  /// survives distinguishes "never reached the daemon" (ConnectFailed)
  /// from "the connection died on us" (TransportError) -- the signal the
  /// fallback backend keys on.
  template <typename Fn>
  Status withConnection(Fn &&Attempt, int64_t DeadlineUs = 0) {
    static obs::Counter &Retries =
        obs::Registry::global().counter("client.retries");
    bool WasConnected = Conn.has_value();
    const int MaxRetries = std::max(0, Cfg.MaxRetries);
    Status Last;
    for (int Try = 0; Try <= MaxRetries; ++Try) {
      if (Try > 0) {
        if (!backoff(Try, DeadlineUs))
          return Last; // no room left in the deadline for another attempt
        Retries.add();
      }
      if (!Conn) {
        std::string ConnErr;
        Conn = net::Client::connect(Addr, ConnErr, Cfg.ConnectTimeoutMs);
        if (!Conn) {
          Last = Status::failure(WasConnected ? Code::TransportError
                                              : Code::ConnectFailed,
                                 ConnErr);
          continue;
        }
      }
      // Clear any deadline a previous request left on the cached
      // connection; the attempt callback re-arms it when this request
      // carries one.
      Conn->setDeadlineUs(0);
      net::ClientError E;
      if (Attempt(*Conn, E))
        return Status::success();
      if (E.Category == net::ErrorCategory::Transport) {
        // The stream died (or desynced): never reuse it.
        Conn.reset();
        WasConnected = true;
      }
      Last = mapClientError(E, /*Connected=*/true);
      if (!retryable(E))
        return Last;
    }
    return Last;
  }

  Result<Kernel> get(const Request &R) override {
    net::ArtifactMsg Msg;
    net::Request W = toWireRequest(R);
    // Every request gets a trace id + root span id: the daemon tags its
    // spans and flight-recorder records with it, and (under WantTiming)
    // ships its span list back so the exported trace merges both sides.
    W.TraceId = obs::newTraceId();
    W.SpanId = obs::newTraceId();
    // ... and the same id tags everything this thread records locally
    // (the client-roundtrip span) while the request runs.
    obs::ScopedTraceId TraceScope(W.TraceId);
    const int64_t DeadlineUs =
        W.DeadlineMs > 0
            ? obs::nowUs() + static_cast<int64_t>(W.DeadlineMs) * 1000
            : 0;
    // Whether the wire request still carries the deadline field; the
    // old-daemon downgrade below strips it while the client-side bound
    // (Client::setDeadlineUs) stays in force.
    bool SendDeadline = W.DeadlineMs > 0;
    auto Attempt = [&](net::Client &C, net::ClientError &E) {
      if (DeadlineUs > 0) {
        C.setDeadlineUs(DeadlineUs);
        if (SendDeadline) {
          // Each attempt ships the time *remaining*, so a retry after
          // backoff asks the daemon for less, not the original budget.
          int64_t RemainMs = (DeadlineUs - obs::nowUs() + 999) / 1000;
          W.DeadlineMs = static_cast<uint32_t>(std::max<int64_t>(1, RemainMs));
        }
      }
      return C.get(W, Msg, E);
    };
    long Start = obs::nowUs();
    Status St = withConnection(Attempt, DeadlineUs);
    if (!St && (W.WantTiming || SendDeadline || W.TraceId != 0) &&
        St.code() == Code::InvalidRequest) {
      // A daemon that predates the trailing want-timing/deadline/trace
      // fields rejects the whole request as malformed. Those fields are
      // optional, the kernel is not: ask again in the old format -- no
      // daemon-side shedding, no breakdown, no cross-process trace, but
      // the kernel gets served and the client-side deadline still bounds
      // the wait.
      W.WantTiming = false;
      W.DeadlineMs = 0;
      W.TraceId = 0;
      W.SpanId = 0;
      SendDeadline = false;
      St = withConnection(Attempt, DeadlineUs);
    }
    if (!St)
      return St;
    return KernelFactory::fromMessage(std::move(Msg), obs::nowUs() - Start);
  }

  Status warm(const Request &R) override {
    // WARM returns a bare OK -- there is no artifact to hang a breakdown
    // on, and the caller is not waiting for the generation -- so never
    // forward the want-timing or deadline fields (which a pre-PR-6 daemon
    // would reject as malformed).
    net::Request W = toWireRequest(R);
    W.WantTiming = false;
    W.DeadlineMs = 0;
    return withConnection([&](net::Client &C, net::ClientError &E) {
      return C.warm(W, E);
    });
  }

  Status drain() override {
    // The daemon owns its prefetch queue; nothing to wait for here.
    return Status::success();
  }

  Status ping() override {
    return withConnection(
        [&](net::Client &C, net::ClientError &E) { return C.ping(E); });
  }

  Result<std::string> stats() override {
    std::string Text;
    Status St = withConnection([&](net::Client &C, net::ClientError &E) {
      return C.stats(Text, E);
    });
    if (!St)
      return St;
    return Text;
  }

  Result<std::string> metrics() override {
    std::string Text;
    Status St = withConnection([&](net::Client &C, net::ClientError &E) {
      return C.metrics(Text, E);
    });
    if (!St)
      return St;
    return Text;
  }

  Session::BackendKind kind() const override {
    return Session::BackendKind::Remote;
  }

  /// Eager initial connect for Session::open's fail-fast contract.
  Status connectNow() {
    return withConnection(
        [&](net::Client &C, net::ClientError &E) { return C.ping(E); });
  }

private:
  /// Jittered exponential backoff before retry number \p Attempt (1-based).
  /// Returns false -- without sleeping -- when the sleep plus one more
  /// attempt cannot fit before \p DeadlineUs.
  bool backoff(int Attempt, int64_t DeadlineUs) {
    int Base = Cfg.RetryBackoffMs > 0 ? Cfg.RetryBackoffMs : 1;
    int64_t DelayMs = static_cast<int64_t>(Base) << (Attempt - 1);
    DelayMs = std::min<int64_t>(DelayMs, 2000);
    // Jitter (0.5x-1.5x) decorrelates clients that were shed together.
    static thread_local std::mt19937 Rng{std::random_device{}()};
    std::uniform_real_distribution<double> Jitter(0.5, 1.5);
    DelayMs = std::max<int64_t>(1, static_cast<int64_t>(
                                       static_cast<double>(DelayMs) *
                                       Jitter(Rng)));
    if (DeadlineUs > 0 && obs::nowUs() + DelayMs * 1000 >= DeadlineUs)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    return true;
  }

  std::string Addr;
  SessionConfig Cfg;
  std::optional<net::Client> Conn;
};

/// Remote first; a lazily built local service catches transport failures.
class FallbackBackend : public Backend {
public:
  FallbackBackend(std::string RemoteAddr, SessionConfig Config)
      : Remote(std::move(RemoteAddr), Config), Config(std::move(Config)) {}

  Result<Kernel> get(const Request &R) override {
    Result<Kernel> K = Remote.get(R);
    if (K || !transportish(K.code()))
      return K;
    Backend *L = local();
    return L ? L->get(R) : K;
  }

  Status warm(const Request &R) override {
    Status St = Remote.warm(R);
    if (St || !transportish(St.code()))
      return St;
    Backend *L = local();
    return L ? L->warm(R) : St;
  }

  Status drain() override {
    // Only the local half queues in-process work.
    return Local ? Local->drain() : Status::success();
  }

  Status ping() override {
    Status St = Remote.ping();
    if (St || !transportish(St.code()))
      return St;
    Backend *L = local();
    return L ? L->ping() : St;
  }

  Result<std::string> stats() override {
    Result<std::string> R = Remote.stats();
    if (R || !transportish(R.code()))
      return R;
    Backend *L = local();
    return L ? L->stats() : R;
  }

  Result<std::string> metrics() override {
    Result<std::string> R = Remote.metrics();
    if (R || !transportish(R.code()))
      return R;
    Backend *L = local();
    return L ? L->metrics() : R;
  }

  Session::BackendKind kind() const override {
    return Session::BackendKind::Fallback;
  }

private:
  /// Only failures to *reach* the daemon degrade to local. Overloaded and
  /// DeadlineExceeded deliberately do not: the daemon is alive and spoke
  /// -- falling back would dodge its load shedding (making the overload
  /// worse) or burn time the deadline no longer has.
  static bool transportish(Code C) {
    return C == Code::ConnectFailed || C == Code::TransportError;
  }

  /// The degraded path, built on first need so sessions whose daemon
  /// never goes away pay nothing for it. The options were validated at
  /// open(), so construction here cannot fail in practice; if it somehow
  /// does, the remote error passes through unmasked.
  Backend *local() {
    if (!Local && !LocalBroken) {
      Status Err;
      Local = makeLocalBackend("", Config, Err);
      if (!Local)
        LocalBroken = true;
    }
    return Local.get();
  }

  RemoteBackend Remote;
  SessionConfig Config;
  std::unique_ptr<Backend> Local;
  bool LocalBroken = false;
};

} // namespace

std::unique_ptr<Backend> detail::makeRemoteBackend(const std::string &Addr,
                                                   const SessionConfig &Config,
                                                   bool Eager, Status &Err) {
  auto B = std::make_unique<RemoteBackend>(Addr, Config);
  if (Eager) {
    if (Status St = B->connectNow(); !St) {
      // Normalize: an eager first connect can never be a mid-request death.
      Err = Status::failure(Code::ConnectFailed, St.message());
      return nullptr;
    }
  }
  return B;
}

std::unique_ptr<Backend>
detail::makeFallbackBackend(const std::string &RemoteAddr,
                            const SessionConfig &Config, Status &Err) {
  // Validate the local half's options eagerly -- a typo in ServiceOptions
  // should fail open(), not the first degraded request.
  service::ServiceConfig Probe;
  std::string OptErr;
  for (const auto &[Key, Value] : Config.ServiceOptions)
    if (!service::applyServiceConfigOption(Probe, Key, Value, OptErr)) {
      Err = Status::failure(Code::InvalidRequest, OptErr);
      return nullptr;
    }
  return std::make_unique<FallbackBackend>(RemoteAddr, Config);
}
