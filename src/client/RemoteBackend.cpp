//===- client/RemoteBackend.cpp - daemon-backed and fallback backends -----===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `unix:`/`tcp:` backend -- a net::Client with per-request connection
// re-establishment -- and the `auto:` wrapper that degrades to a local
// service on transport failures only. Daemon-side verdicts about a request
// (parse errors, compile failures, ...) are final: re-running them locally
// would just repeat the failure while hiding the daemon's state, so the
// fallback never catches those.
//
//===----------------------------------------------------------------------===//

#include "client/ClientImpl.h"

#include "obs/Metrics.h"

using namespace slingen;
using namespace slingen::client;
using namespace slingen::client::detail;

namespace {

class RemoteBackend : public Backend {
public:
  explicit RemoteBackend(std::string Addr) : Addr(std::move(Addr)) {}

  /// One transport-level attempt loop shared by every verb: ensure a
  /// connection, run the exchange, and on a transport failure reconnect
  /// and retry the request exactly once (GET/WARM/PING/STATS are all
  /// idempotent). The failure that survives distinguishes "never reached
  /// the daemon" (ConnectFailed) from "the connection died on us"
  /// (TransportError) -- the signal the fallback backend keys on.
  template <typename Fn> Status withConnection(Fn &&Attempt) {
    bool WasConnected = Conn.has_value();
    for (int Try = 0; Try < 2; ++Try) {
      if (!Conn) {
        std::string ConnErr;
        Conn = net::Client::connect(Addr, ConnErr);
        if (!Conn)
          return Status::failure(WasConnected ? Code::TransportError
                                              : Code::ConnectFailed,
                                 ConnErr);
      }
      net::ClientError E;
      if (Attempt(*Conn, E))
        return Status::success();
      if (E.Category != net::ErrorCategory::Transport || Try == 1)
        return mapClientError(E, /*Connected=*/true);
      // The stream died: drop it and re-establish once.
      Conn.reset();
      WasConnected = true;
    }
    return Status::failure(Code::InternalError, "unreachable");
  }

  Result<Kernel> get(const Request &R) override {
    net::ArtifactMsg Msg;
    net::Request W = toWireRequest(R);
    long Start = obs::nowUs();
    Status St = withConnection([&](net::Client &C, net::ClientError &E) {
      return C.get(W, Msg, E);
    });
    if (!St && W.WantTiming && St.code() == Code::InvalidRequest) {
      // A daemon that predates the trailing want-timing byte rejects the
      // whole request as malformed. The breakdown is optional, the kernel
      // is not: ask again in the old format and serve without timing().
      W.WantTiming = false;
      St = withConnection([&](net::Client &C, net::ClientError &E) {
        return C.get(W, Msg, E);
      });
    }
    if (!St)
      return St;
    return KernelFactory::fromMessage(std::move(Msg), obs::nowUs() - Start);
  }

  Status warm(const Request &R) override {
    // WARM returns a bare OK -- there is no artifact to hang a breakdown
    // on -- so never forward the want-timing field (which a pre-timing
    // daemon would reject).
    net::Request W = toWireRequest(R);
    W.WantTiming = false;
    return withConnection([&](net::Client &C, net::ClientError &E) {
      return C.warm(W, E);
    });
  }

  Status drain() override {
    // The daemon owns its prefetch queue; nothing to wait for here.
    return Status::success();
  }

  Status ping() override {
    return withConnection(
        [&](net::Client &C, net::ClientError &E) { return C.ping(E); });
  }

  Result<std::string> stats() override {
    std::string Text;
    Status St = withConnection([&](net::Client &C, net::ClientError &E) {
      return C.stats(Text, E);
    });
    if (!St)
      return St;
    return Text;
  }

  Session::BackendKind kind() const override {
    return Session::BackendKind::Remote;
  }

  /// Eager initial connect for Session::open's fail-fast contract.
  Status connectNow() {
    return withConnection(
        [&](net::Client &C, net::ClientError &E) { return C.ping(E); });
  }

private:
  std::string Addr;
  std::optional<net::Client> Conn;
};

/// Remote first; a lazily built local service catches transport failures.
class FallbackBackend : public Backend {
public:
  FallbackBackend(std::string RemoteAddr, SessionConfig Config)
      : Remote(std::move(RemoteAddr)), Config(std::move(Config)) {}

  Result<Kernel> get(const Request &R) override {
    Result<Kernel> K = Remote.get(R);
    if (K || !transportish(K.code()))
      return K;
    Backend *L = local();
    return L ? L->get(R) : K;
  }

  Status warm(const Request &R) override {
    Status St = Remote.warm(R);
    if (St || !transportish(St.code()))
      return St;
    Backend *L = local();
    return L ? L->warm(R) : St;
  }

  Status drain() override {
    // Only the local half queues in-process work.
    return Local ? Local->drain() : Status::success();
  }

  Status ping() override {
    Status St = Remote.ping();
    if (St || !transportish(St.code()))
      return St;
    Backend *L = local();
    return L ? L->ping() : St;
  }

  Result<std::string> stats() override {
    Result<std::string> R = Remote.stats();
    if (R || !transportish(R.code()))
      return R;
    Backend *L = local();
    return L ? L->stats() : R;
  }

  Session::BackendKind kind() const override {
    return Session::BackendKind::Fallback;
  }

private:
  static bool transportish(Code C) {
    return C == Code::ConnectFailed || C == Code::TransportError;
  }

  /// The degraded path, built on first need so sessions whose daemon
  /// never goes away pay nothing for it. The options were validated at
  /// open(), so construction here cannot fail in practice; if it somehow
  /// does, the remote error passes through unmasked.
  Backend *local() {
    if (!Local && !LocalBroken) {
      Status Err;
      Local = makeLocalBackend("", Config, Err);
      if (!Local)
        LocalBroken = true;
    }
    return Local.get();
  }

  RemoteBackend Remote;
  SessionConfig Config;
  std::unique_ptr<Backend> Local;
  bool LocalBroken = false;
};

} // namespace

std::unique_ptr<Backend> detail::makeRemoteBackend(const std::string &Addr,
                                                   bool Eager, Status &Err) {
  auto B = std::make_unique<RemoteBackend>(Addr);
  if (Eager) {
    if (Status St = B->connectNow(); !St) {
      // Normalize: an eager first connect can never be a mid-request death.
      Err = Status::failure(Code::ConnectFailed, St.message());
      return nullptr;
    }
  }
  return B;
}

std::unique_ptr<Backend>
detail::makeFallbackBackend(const std::string &RemoteAddr,
                            const SessionConfig &Config, Status &Err) {
  // Validate the local half's options eagerly -- a typo in ServiceOptions
  // should fail open(), not the first degraded request.
  service::ServiceConfig Probe;
  std::string OptErr;
  for (const auto &[Key, Value] : Config.ServiceOptions)
    if (!service::applyServiceConfigOption(Probe, Key, Value, OptErr)) {
      Err = Status::failure(Code::InvalidRequest, OptErr);
      return nullptr;
    }
  return std::make_unique<FallbackBackend>(RemoteAddr, Config);
}
