//===- client/Kernel.cpp - the served-kernel handle -----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// sl::Kernel: one immutable state shape for both origins. The local
// factory wraps a KernelService artifact (sharing its loaded object); the
// remote factory stages the wire message's .so bytes through
// JitKernel::loadFromBytes. After construction the two are
// indistinguishable -- which is the facade's core promise.
//
//===----------------------------------------------------------------------===//

#include "client/ClientImpl.h"

#include "isa/ISA.h"
#include "runtime/BatchPool.h"
#include "runtime/Jit.h"
#include "support/File.h"

using namespace slingen;
using namespace slingen::client;
using namespace slingen::client::detail;

//===----------------------------------------------------------------------===//
// Accessors
//===----------------------------------------------------------------------===//

namespace {
const std::string &emptyString() {
  static const std::string E;
  return E;
}
} // namespace

Kernel::Origin Kernel::origin() const {
  return S ? S->Origin : Origin::Local;
}
const std::string &Kernel::key() const {
  return S ? S->Key : emptyString();
}
const std::string &Kernel::functionName() const {
  return S ? S->FuncName : emptyString();
}
const std::string &Kernel::isa() const {
  return S ? S->IsaName : emptyString();
}
const std::string &Kernel::cSource() const {
  return S ? S->CSource : emptyString();
}
int Kernel::numParams() const { return S ? S->NumParams : 0; }
bool Kernel::batched() const { return S && S->Batched; }
const std::string &Kernel::strategy() const {
  return S ? S->StrategyName : emptyString();
}
int Kernel::batchThreads() const { return S ? S->BatchThreads : 1; }
long Kernel::staticCost() const { return S ? S->StaticCost : 0; }
bool Kernel::measured() const { return S && S->Measured; }
double Kernel::measuredCycles() const { return S ? S->MeasuredCycles : 0.0; }
const std::string &Kernel::objectBytes() const {
  return S ? S->SoBytes : emptyString();
}
const TimingBreakdown *Kernel::timing() const {
  return S && S->Timing ? &*S->Timing : nullptr;
}

bool Kernel::callable() const { return S && S->K != nullptr; }

bool Kernel::hostRunnable() const {
  if (!S)
    return false;
  // IsaName can be wire-supplied (a newer daemon may speak ISAs this build
  // does not know), so the null-returning lookup: unknown means "cannot
  // prove it runs here", never "assume scalar".
  const VectorISA *Isa = isaByNameOrNull(S->IsaName.c_str());
  return Isa && Isa->Nu <= hostIsa().Nu;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

namespace {

/// Shared call/callBatch gate; on success \p Isa holds the (known,
/// host-runnable) target ISA.
Status dispatchPrecheck(const std::shared_ptr<const KernelState> &S,
                        const VectorISA *&Isa) {
  if (!S)
    return Status::failure(Code::InvalidRequest, "empty kernel handle");
  if (!S->K)
    return Status::failure(Code::NoCompiler,
                           "kernel " + S->FuncName +
                               " is source-only (no compiled object)");
  Isa = isaByNameOrNull(S->IsaName.c_str());
  if (!Isa || Isa->Nu > hostIsa().Nu)
    return Status::failure(Code::NotRunnable,
                           "kernel targets " + S->IsaName +
                               ", which this host cannot run");
  return Status::success();
}

} // namespace

Status Kernel::call(double *const *Buffers) const {
  const VectorISA *Isa = nullptr;
  if (Status St = dispatchPrecheck(S, Isa); !St)
    return St;
  S->K->call(Buffers);
  return Status::success();
}

Status Kernel::callBatch(int Count, double *const *Buffers) const {
  const VectorISA *Isa = nullptr;
  if (Status St = dispatchPrecheck(S, Isa); !St)
    return St;
  if (!S->Batched || !S->K->hasBatchEntry())
    return Status::failure(Code::InvalidRequest,
                           "kernel " + S->FuncName +
                               " was not requested batched");
  // Same dispatch ladder as the service: the artifact's tuned width drives
  // the batch thread pool, which degrades to a plain batch call when the
  // width is 1 or the object predates the span entry.
  runtime::callBatchParallel(*S->K, Count, Buffers, Isa->Nu,
                             S->BatchThreads);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

namespace {

/// service::RequestTiming -> the public shape, with the client-measured
/// round trip joined on.
TimingBreakdown toBreakdown(const service::RequestTiming &TM,
                            long RoundTripUs) {
  TimingBreakdown B;
  B.Tier = TM.Tier;
  B.CacheUs = TM.CacheUs;
  B.WaitUs = TM.WaitUs;
  B.DiskUs = TM.DiskUs;
  B.GenUs = TM.GenUs;
  B.TuneUs = TM.TuneUs;
  B.CompileUs = TM.CompileUs;
  B.TotalUs = TM.TotalUs;
  B.RoundTripUs = RoundTripUs;
  return B;
}

} // namespace

Result<Kernel> KernelFactory::fromArtifact(const service::ArtifactPtr &A,
                                           bool WantObject,
                                           const service::RequestTiming *Timing,
                                           long RoundTripUs) {
  auto St = std::make_shared<KernelState>();
  St->Origin = Kernel::Origin::Local;
  St->Key = A->Key;
  St->FuncName = A->FuncName;
  St->IsaName = A->IsaName;
  St->CSource = A->CSource;
  St->NumParams = A->NumParams;
  St->Batched = A->Batched;
  if (A->Batched) {
    St->StrategyName = batchStrategyName(A->Strategy);
    St->BatchThreads = A->BatchThreads >= 1 ? A->BatchThreads : 1;
  }
  St->Choice = A->Choice;
  St->StaticCost = A->StaticCost;
  St->Measured = A->Measured;
  St->MeasuredCycles = A->MeasuredCycles;
  if (Timing)
    St->Timing = toBreakdown(*Timing, RoundTripUs);
  St->K = A->Kernel;
  St->LocalArtifact = A;
  if (WantObject && A->Kernel) {
    // The same bytes a daemon would ship for this artifact (the server
    // reads exactly this path) -- what makes local/remote byte identity
    // checkable at the facade level.
    bool Ok = false;
    std::string Bytes = readFile(A->Kernel->soPath(), &Ok);
    if (!Ok)
      return Status::failure(Code::InternalError,
                             "cannot read compiled object at " +
                                 A->Kernel->soPath() +
                                 " (evicted from the disk tier?); retry "
                                 "with wantObject(false) if only the "
                                 "loaded kernel is needed");
    St->SoBytes = std::move(Bytes);
  }
  Kernel K;
  K.S = std::move(St);
  return K;
}

Result<Kernel> KernelFactory::fromMessage(net::ArtifactMsg Msg,
                                          long RoundTripUs) {
  auto St = std::make_shared<KernelState>();
  St->Origin = Kernel::Origin::Remote;
  if (!Msg.TimingText.empty()) {
    // A breakdown the daemon attached but this build cannot parse is
    // dropped, not fatal: timing() is diagnostics, the kernel is the
    // payload.
    service::RequestTiming TM;
    if (service::deserializeRequestTiming(Msg.TimingText, TM))
      St->Timing = toBreakdown(TM, RoundTripUs);
  }
  St->Key = std::move(Msg.Key);
  St->FuncName = std::move(Msg.FuncName);
  St->IsaName = std::move(Msg.IsaName);
  St->CSource = std::move(Msg.CSource);
  St->NumParams = Msg.NumParams;
  St->Batched = Msg.Batched;
  if (Msg.Batched) {
    St->StrategyName = std::move(Msg.StrategyName);
    St->BatchThreads = Msg.BatchThreads >= 1 ? Msg.BatchThreads : 1;
  }
  St->Choice = std::move(Msg.Choice);
  St->StaticCost = Msg.StaticCost;
  St->Measured = Msg.Measured;
  St->MeasuredCycles = Msg.MeasuredCycles;
  St->SoBytes = std::move(Msg.SoBytes);
  if (!St->SoBytes.empty()) {
    std::string Err;
    auto K = runtime::JitKernel::loadFromBytes(St->SoBytes, St->FuncName,
                                               St->NumParams, Err,
                                               /*WithBatchEntry=*/St->Batched);
    if (!K)
      return Status::failure(Code::ProtocolError,
                             "shipped object failed to load: " + Err);
    St->K = std::make_shared<runtime::JitKernel>(std::move(*K));
  }
  Kernel K;
  K.S = std::move(St);
  return K;
}
