//===- client/Session.cpp - facade core: builder, session, mappings -------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// RequestBuilder validation (one funnel: every option goes through
// applyGenOption, exactly like the slc flag parser and the wire decoder),
// the address-string resolution that picks a backend, and the mappings
// from the internal error vocabularies onto the public code set.
//
//===----------------------------------------------------------------------===//

#include "client/ClientImpl.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "slingen/BatchStrategy.h"
#include "slingen/OptionsIO.h"
#include "support/File.h"

using namespace slingen;
using namespace slingen::client;
using namespace slingen::client::detail;

//===----------------------------------------------------------------------===//
// Codes
//===----------------------------------------------------------------------===//

const char *client::codeName(Code C) {
  switch (C) {
  case Code::Ok:
    return "ok";
  case Code::InvalidRequest:
    return "invalid-request";
  case Code::ParseError:
    return "parse-error";
  case Code::GenerationFailed:
    return "generation-failed";
  case Code::CompileFailed:
    return "compile-failed";
  case Code::NoCompiler:
    return "no-compiler";
  case Code::NotRunnable:
    return "not-runnable";
  case Code::InvalidKernelIR:
    return "invalid-kernel-ir";
  case Code::ConnectFailed:
    return "connect-failed";
  case Code::TransportError:
    return "transport-error";
  case Code::ProtocolError:
    return "protocol-error";
  case Code::RemoteError:
    return "remote-error";
  case Code::Overloaded:
    return "overloaded";
  case Code::DeadlineExceeded:
    return "deadline-exceeded";
  case Code::InternalError:
    return "internal-error";
  }
  return "internal-error";
}

Code detail::mapServiceErrc(service::Errc E) {
  switch (E) {
  case service::Errc::None:
    return Code::Ok;
  case service::Errc::InvalidRequest:
    return Code::InvalidRequest;
  case service::Errc::ParseError:
    return Code::ParseError;
  case service::Errc::InvalidProgram:
    // The program parsed but is not a valid LA program; one public class
    // covers both ("the source is wrong").
    return Code::ParseError;
  case service::Errc::GenerationFailed:
    return Code::GenerationFailed;
  case service::Errc::CompileFailed:
    return Code::CompileFailed;
  case service::Errc::NoCompiler:
    return Code::NoCompiler;
  case service::Errc::NotRunnable:
    return Code::NotRunnable;
  case service::Errc::Overloaded:
    return Code::Overloaded;
  case service::Errc::DeadlineExceeded:
    return Code::DeadlineExceeded;
  case service::Errc::InvalidKernelIR:
    return Code::InvalidKernelIR;
  case service::Errc::Internal:
    return Code::InternalError;
  }
  return Code::InternalError;
}

Status detail::mapClientError(const net::ClientError &E, bool Connected) {
  // A deadline can expire on either side of the wire (the client's
  // poll-bounded read or the daemon's admission shed); both spell the
  // same public verdict, whatever category carried it.
  if (E.Code && *E.Code == service::Errc::DeadlineExceeded)
    return Status::failure(Code::DeadlineExceeded, E.Message);
  switch (E.Category) {
  case net::ErrorCategory::Transport:
    return Status::failure(Connected ? Code::TransportError
                                     : Code::ConnectFailed,
                           E.Message);
  case net::ErrorCategory::Protocol:
    return Status::failure(Code::ProtocolError, E.Message);
  case net::ErrorCategory::Daemon:
    // Errc::None cannot arrive from decodeErrorPayload (it rejects the
    // "ok" token), but the belt-and-braces guard keeps a failed exchange
    // from ever mapping to Code::Ok.
    if (E.Code && *E.Code != service::Errc::None)
      return Status::failure(mapServiceErrc(*E.Code), E.Message);
    // An untagged daemon (pre-code build): the class is unknowable.
    return Status::failure(Code::RemoteError, E.Message);
  }
  return Status::failure(Code::InternalError, E.Message);
}

//===----------------------------------------------------------------------===//
// RequestBuilder
//===----------------------------------------------------------------------===//

RequestBuilder::RequestBuilder() = default;

RequestBuilder &RequestBuilder::source(std::string LaText) {
  Source = std::move(LaText);
  return *this;
}
RequestBuilder &RequestBuilder::sourceFile(std::string Path) {
  SourceFile = std::move(Path);
  return *this;
}
RequestBuilder &RequestBuilder::name(std::string FuncName) {
  return option("func", std::move(FuncName));
}
RequestBuilder &RequestBuilder::isa(std::string IsaName) {
  return option("isa", std::move(IsaName));
}
RequestBuilder &RequestBuilder::option(std::string Key, std::string Value) {
  Options.emplace_back(std::move(Key), std::move(Value));
  return *this;
}
RequestBuilder &RequestBuilder::batched(bool On) {
  Batched = On;
  return *this;
}
RequestBuilder &RequestBuilder::strategy(std::string Name) {
  StrategyName = std::move(Name);
  return *this;
}
RequestBuilder &RequestBuilder::threads(int K) {
  Threads = K;
  return *this;
}
RequestBuilder &RequestBuilder::measure(bool On) {
  Measure = On ? 1 : 0;
  return *this;
}
RequestBuilder &RequestBuilder::wantObject(bool On) {
  WantObject = On;
  return *this;
}
RequestBuilder &RequestBuilder::wantTiming(bool On) {
  WantTiming = On;
  return *this;
}
RequestBuilder &RequestBuilder::deadlineMs(int Ms) {
  DeadlineMs = Ms;
  return *this;
}

Result<Request> RequestBuilder::build() const {
  auto Bad = [](const std::string &Msg) {
    return Status::failure(Code::InvalidRequest, Msg);
  };
  Request R;
  if (!Source.empty() && !SourceFile.empty())
    return Bad("source() and sourceFile() are mutually exclusive");
  if (!SourceFile.empty()) {
    bool Ok = false;
    R.Source = readFile(SourceFile, &Ok);
    if (!Ok)
      return Bad("cannot open source file " + SourceFile);
  } else {
    R.Source = Source;
  }
  if (R.Source.empty())
    return Bad("a request needs LA source (source() or sourceFile())");

  // One validation funnel with slc/the wire: every option key/value runs
  // through applyGenOption, and the request carries the *canonical*
  // serialized document -- so equal requests hash equal server-side no
  // matter how they were spelled.
  GenOptions O;
  std::string Err;
  for (const auto &[Key, Value] : Options)
    if (!applyGenOption(O, Key, Value, Err))
      return Bad(Err);
  R.OptionsText = serializeGenOptions(O);
  R.FuncName = O.FuncName;

  if (!StrategyName.empty()) {
    if (!Batched)
      return Bad("strategy() requires batched()");
    if (!batchStrategyByName(StrategyName))
      return Bad("unknown batch strategy '" + StrategyName +
                 "' (loop, vec, fused, or auto)");
  }
  if (Threads != 0) {
    if (!Batched)
      return Bad("threads() requires batched()");
    if (Threads < 0 || Threads > 1024)
      return Bad("threads() takes 0 (auto) to 1024");
  }
  if (DeadlineMs < 0)
    return Bad("deadlineMs() takes 0 (none) or a positive budget");
  R.Batched = Batched;
  R.StrategyName = StrategyName;
  R.Threads = Threads;
  R.Measure = Measure;
  R.WantObject = WantObject;
  R.WantTiming = WantTiming;
  R.DeadlineMs = DeadlineMs;
  return R;
}

//===----------------------------------------------------------------------===//
// Request lowering (shared by the backends)
//===----------------------------------------------------------------------===//

net::Request detail::toWireRequest(const Request &R) {
  net::Request W;
  W.LaSource = R.source();
  W.OptionsText = R.optionsText();
  W.Batched = R.batched();
  W.StrategyName = R.strategy();
  W.Threads = R.threads();
  W.MeasureOverride = R.measure();
  W.WantSo = R.wantObject();
  W.WantTiming = R.wantTiming();
  W.DeadlineMs =
      R.deadlineMs() > 0 ? static_cast<uint32_t>(R.deadlineMs()) : 0;
  return W;
}

void detail::toServiceArgs(const Request &R, GenOptions &Options,
                           service::RequestOptions &Req) {
  std::string Err;
  // The document is the builder's own canonical output; failure here would
  // be a bug, not an input error.
  (void)deserializeGenOptions(R.optionsText(), Options, Err);
  Req = {};
  Req.Batched = R.batched();
  if (!R.strategy().empty())
    Req.Strategy = batchStrategyByName(R.strategy());
  if (R.threads() > 0)
    Req.Threads = R.threads();
  if (R.measure() >= 0)
    Req.Measure = R.measure() != 0;
  // Absolute from the moment of the call, exactly like the daemon stamps
  // a wire deadline at arrival.
  if (R.deadlineMs() > 0)
    Req.DeadlineUs = obs::nowUs() + static_cast<long>(R.deadlineMs()) * 1000;
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

Session::Session() = default;
Session::Session(Session &&) noexcept = default;
Session &Session::operator=(Session &&) noexcept = default;
Session::~Session() = default;

Result<Session> Session::open(const std::string &Address,
                              SessionConfig Config) {
  Status Err;
  std::unique_ptr<Backend> B;
  if (Address.rfind("local:", 0) == 0) {
    B = makeLocalBackend(/*CacheDir=*/Address.substr(6), Config, Err);
  } else if (Address.rfind("auto:", 0) == 0) {
    std::string Remote = Address.substr(5);
    if (Remote.empty())
      return Status::failure(Code::InvalidRequest,
                             "auto: needs a remote address to try first");
    B = makeFallbackBackend(Remote, Config, Err);
  } else if (!Address.empty()) {
    B = makeRemoteBackend(Address, Config, /*Eager=*/true, Err);
  } else {
    return Status::failure(
        Code::InvalidRequest,
        "empty address (want local:, unix:<path>, tcp:<host>:<port>, or "
        "auto:<remote>)");
  }
  if (!B)
    return Err;
  Session S;
  S.B = std::move(B);
  S.Addr = Address;
  return S;
}

Result<Kernel> Session::get(const Request &R) { return B->get(R); }
Status Session::warm(const Request &R) { return B->warm(R); }
Status Session::drain() { return B->drain(); }
Status Session::ping() { return B->ping(); }
Result<std::string> Session::stats() { return B->stats(); }
Result<std::string> Session::metrics() { return B->metrics(); }
Session::BackendKind Session::backend() const { return B->kind(); }
const std::string &Session::address() const { return Addr; }

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

void client::setTracing(bool On) { obs::Tracer::global().setEnabled(On); }
bool client::tracingEnabled() { return obs::Tracer::global().enabled(); }
std::string client::exportTraceJson() {
  return obs::Tracer::global().exportChromeTrace();
}
bool client::exportTraceJson(const std::string &Path, std::string &Err) {
  return obs::Tracer::global().writeChromeTrace(Path, Err);
}
void client::clearTrace() { obs::Tracer::global().clear(); }
