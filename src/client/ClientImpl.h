//===- client/ClientImpl.h - facade internals (not installed) -------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The implementation layer behind include/slingen/client.h: the backend
/// interface the Session owns, the shared kernel state both origins fold
/// into, and the mappings from the internal error vocabularies
/// (service::Errc, net::ClientError) onto the public sl::Code set. This
/// header may include internal headers freely -- it is the one place the
/// public API touches the service/net/runtime layers.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CLIENT_CLIENTIMPL_H
#define SLINGEN_CLIENT_CLIENTIMPL_H

#include "slingen/client.h"

#include "net/Client.h"
#include "net/Protocol.h"
#include "service/KernelCache.h"
#include "service/KernelService.h"

#include <memory>
#include <string>

namespace slingen {
namespace client {
namespace detail {

/// The immutable state behind a Kernel handle. Both factory paths
/// normalize into this one shape, which is what makes local and remote
/// kernels behave identically.
struct KernelState {
  Kernel::Origin Origin = Kernel::Origin::Local;
  std::string Key, FuncName, IsaName, CSource, StrategyName, SoBytes;
  int NumParams = 0;
  int BatchThreads = 1;
  bool Batched = false;
  bool Measured = false;
  long StaticCost = 0;
  double MeasuredCycles = 0.0;
  std::vector<int> Choice;
  /// The request's phase breakdown; unset when the request did not ask
  /// for one or the serving side could not provide it.
  std::optional<TimingBreakdown> Timing;
  /// The loaded shared object; null for source-only kernels.
  std::shared_ptr<const runtime::JitKernel> K;
  /// Keeps a local artifact (and the JitKernel it owns) alive.
  service::ArtifactPtr LocalArtifact;
};

/// Internal construction of public Kernel handles.
struct KernelFactory {
  /// Wraps a served local artifact; reads the compiled object's bytes
  /// from its cache/temp path when \p WantObject. An unreadable object
  /// under WantObject (e.g. the disk tier's GC evicted the .so while the
  /// loaded kernel kept serving from memory) is an error, not a silent
  /// downgrade to empty bytes. \p Timing (may be null) is the service's
  /// breakdown for the request, \p RoundTripUs the backend-measured wall
  /// time; together they become Kernel::timing().
  static Result<Kernel> fromArtifact(const service::ArtifactPtr &A,
                                     bool WantObject,
                                     const service::RequestTiming *Timing,
                                     long RoundTripUs);
  /// Wraps a wire artifact, staging and loading the shipped object bytes
  /// when present and host-runnable. A shipped object that fails to load
  /// is an error (ProtocolError), not a silent downgrade. The message's
  /// TimingText (when present and well-formed) plus \p RoundTripUs become
  /// Kernel::timing().
  static Result<Kernel> fromMessage(net::ArtifactMsg Msg, long RoundTripUs);
};

/// What a Session delegates to. One backend per session; all methods are
/// serialized by the session's single-caller contract.
class Backend {
public:
  virtual ~Backend() = default;
  virtual Result<Kernel> get(const Request &R) = 0;
  virtual Status warm(const Request &R) = 0;
  virtual Status drain() = 0;
  virtual Status ping() = 0;
  virtual Result<std::string> stats() = 0;
  virtual Result<std::string> metrics() = 0;
  virtual Session::BackendKind kind() const = 0;
};

/// In-process KernelService backend (`local:`).
std::unique_ptr<Backend> makeLocalBackend(const std::string &CacheDir,
                                          const SessionConfig &Config,
                                          Status &Err);
/// sld socket backend (`unix:`/`tcp:`), with per-request connection
/// re-establishment and the Config's bounded retry policy (MaxRetries /
/// RetryBackoffMs / ConnectTimeoutMs). \p Eager connects inside the
/// factory (plain remote addresses fail fast); the fallback wrapper
/// passes false.
std::unique_ptr<Backend> makeRemoteBackend(const std::string &Addr,
                                           const SessionConfig &Config,
                                           bool Eager, Status &Err);
/// Remote-preferring backend that degrades to a lazily created local
/// service on connect/transport failures (`auto:`).
std::unique_ptr<Backend> makeFallbackBackend(const std::string &RemoteAddr,
                                             const SessionConfig &Config,
                                             Status &Err);

/// service::Errc -> public code.
Code mapServiceErrc(service::Errc E);
/// A failed net request -> public Status. \p Connected tells transport
/// failures apart: false means the daemon was never reached
/// (ConnectFailed), true means an established connection died
/// (TransportError).
Status mapClientError(const net::ClientError &E, bool Connected);
/// Builds the wire Request for \p R (shared by the remote backend's
/// get/warm).
net::Request toWireRequest(const Request &R);
/// Builds the service-side views of \p R (shared by the local backend's
/// get/warm). The request was validated at build() time, so this cannot
/// fail.
void toServiceArgs(const Request &R, GenOptions &Options,
                   service::RequestOptions &Req);

} // namespace detail
} // namespace client
} // namespace slingen

#endif // SLINGEN_CLIENT_CLIENTIMPL_H
