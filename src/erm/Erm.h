//===- erm/Erm.h - generalized roofline / bottleneck analysis -------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the analysis the paper performs with ERM [7]
/// (Sec. 4.2, Table 4): the generated kernel's dynamic instruction mix is
/// extracted (from C-IR rather than LLVM IR) and confronted with a
/// microarchitectural port/issue model of the target CPU. Outputs per
/// kernel: the limiting resource (divisions/square roots, L1 load or store
/// bandwidth, flop throughput, shuffle issue), the shuffle/blend issue
/// rate, and the achievable peak performance once data-rearrangement
/// instructions are accounted for -- the exact columns of Table 4.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_ERM_ERM_H
#define SLINGEN_ERM_ERM_H

#include "cir/CIR.h"

#include <string>

namespace slingen {
namespace erm {

/// Issue/throughput parameters of the modeled core. Defaults approximate
/// the paper's Sandy Bridge i7-2600: one division or square root issued
/// every ~44 cycles, two L1 load ports, one store port, one shuffle port
/// (port 5), peak 8 flops/cycle in double precision AVX.
struct MicroArch {
  std::string Name = "Sandy Bridge (i7-2600 model)";
  double DivSqrtIssueCycles = 44.0;
  double LoadsPerCycle = 2.0;
  double StoresPerCycle = 1.0;
  double PeakFlopsPerCycle = 8.0;
  double ShufflesPerCycle = 1.0;
  /// Blends issue on more ports than shuffles; model two per cycle.
  double BlendsPerCycle = 2.0;
  // Latencies (cycles) for the dependency-chain analysis.
  double DivSqrtLatency = 22.0;
  double MulLatency = 5.0;
  double AddLatency = 3.0;
  double LoadLatency = 4.0;
  double ShuffleLatency = 1.0;
};

const MicroArch &sandyBridge();

/// Dynamic instruction mix and derived bottleneck classification.
struct Analysis {
  // Dynamic counts (loops weighted by trip count).
  long Flops = 0;       ///< adds/subs/muls/FMAs in double results
  long DivSqrt = 0;     ///< divisions and square roots (issue-limited)
  long Loads = 0;       ///< L1 load instructions
  long Stores = 0;      ///< L1 store instructions
  long Shuffles = 0;    ///< lane-crossing rearrangements
  long Blends = 0;      ///< per-lane selects
  long OtherIssued = 0; ///< remaining issued ops (excl. loads/stores)

  // Per-resource cycle lower bounds.
  double DivCycles = 0.0, LoadCycles = 0.0, StoreCycles = 0.0,
         FlopCycles = 0.0, ShuffleCycles = 0.0, BlendCycles = 0.0;

  /// Name of the limiting resource ("divs/sqrt", "L1 loads", "L1 stores",
  /// "flops", "shuffles").
  std::string Bottleneck;
  /// Lower bound on execution cycles implied by the throughput model.
  double BoundCycles = 0.0;
  /// Longest register dependency chain in latency cycles (captures the
  /// sequential dependence of the divisions/square roots that dominates
  /// the smallest sizes -- paper Sec. 4.2). Memory dependences through
  /// constant addresses are included.
  double CriticalPathCycles = 0.0;

  /// Table 4 columns: issue-rate of shuffles+blends relative to all issued
  /// instructions excluding loads/stores, and the achievable f/c once the
  /// shuffle (resp. blend) port contention is accounted for.
  double ShuffleBlendIssueRate = 0.0;
  double PerfLimitShuffles = 0.0;
  double PerfLimitBlends = 0.0;
};

/// Statically analyzes \p F against \p M.
Analysis analyze(const cir::Function &F, const MicroArch &M = sandyBridge());

/// Formats one Table 4 row: "bottleneck  issue-rate  limitS  limitB".
std::string formatRow(const Analysis &A);

} // namespace erm
} // namespace slingen

#endif // SLINGEN_ERM_ERM_H
