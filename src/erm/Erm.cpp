//===- erm/Erm.cpp --------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "erm/Erm.h"

#include "support/Format.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace slingen;
using namespace slingen::erm;

const MicroArch &erm::sandyBridge() {
  static const MicroArch M;
  return M;
}

namespace {

/// True if the selector only moves lane L to lane L (from either source):
/// such a VShuffle lowers to a blend, everything else needs a real shuffle
/// or permute.
bool isBlend(const cir::Inst &I, int Nu) {
  for (int L = 0; L < Nu; ++L) {
    int S = I.Sel[L];
    if (S >= 0 && S % Nu != L)
      return false;
  }
  return true;
}

struct Counter {
  const MicroArch &M;
  int Nu;
  Analysis A;

  void count(const std::vector<cir::Node> &Body, double Weight) {
    using cir::Op;
    for (const cir::Node &N : Body) {
      if (const auto *L = std::get_if<cir::Loop>(&N)) {
        double Trip =
            std::max(0, (L->Hi - L->Lo + L->Step - 1) / L->Step);
        if (L->LoVar >= 0)
          Trip = std::max(1.0, Trip / 2.0); // triangular space averages half
        count(L->Body, Weight * Trip);
        continue;
      }
      const cir::Inst &I = std::get<cir::Inst>(N);
      auto Add = [&](long &C, double N2 = 1.0) {
        C += static_cast<long>(Weight * N2);
      };
      switch (I.K) {
      case Op::SAdd:
      case Op::SSub:
      case Op::SMul:
      case Op::SNeg:
        Add(A.Flops);
        Add(A.OtherIssued);
        break;
      case Op::VAdd:
      case Op::VSub:
      case Op::VMul:
        Add(A.Flops, Nu);
        Add(A.OtherIssued);
        break;
      case Op::VFma:
      case Op::VFnma:
        Add(A.Flops, 2 * Nu);
        Add(A.OtherIssued);
        break;
      case Op::SDiv:
      case Op::SSqrt:
        Add(A.DivSqrt);
        Add(A.Flops);
        Add(A.OtherIssued);
        break;
      case Op::VDiv:
        Add(A.DivSqrt);
        Add(A.Flops, Nu);
        Add(A.OtherIssued);
        break;
      case Op::SLoad:
      case Op::VLoad:
        Add(A.Loads);
        break;
      case Op::VLoadStrided:
      case Op::VLoadStridedMasked:
        Add(A.Loads, I.Lanes); // decomposes into scalar accesses
        break;
      case Op::SStore:
      case Op::VStore:
        Add(A.Stores);
        break;
      case Op::VStoreStrided:
      case Op::VStoreStridedMasked:
        Add(A.Stores, I.Lanes);
        break;
      case Op::VShuffle:
        if (isBlend(I, Nu))
          Add(A.Blends);
        else
          Add(A.Shuffles);
        Add(A.OtherIssued);
        break;
      case Op::VExtract:
      case Op::VReduceAdd:
        Add(A.Shuffles); // lane extraction occupies the shuffle port
        Add(A.OtherIssued);
        break;
      case Op::VBroadcast:
        Add(A.Blends);
        Add(A.OtherIssued);
        break;
      case Op::SConst:
      case Op::VConst:
        break; // materialized into registers at function entry
      }
    }
  }
};

/// Latency-weighted longest dependency chain through registers and
/// constant-address memory. Loops contribute their body's chain times the
/// trip count (the generated loops carry accumulators, so iterations are
/// dependent in the worst case -- a conservative upper structure that
/// still tracks the paper's observation about sequential divisions).
struct ChainAnalyzer {
  const MicroArch &M;
  std::vector<double> RegDepth;
  std::map<std::pair<const Operand *, int>, double> MemDepth;
  double Max = 0.0;

  double latOf(const cir::Inst &I) const {
    using cir::Op;
    switch (I.K) {
    case Op::SDiv:
    case Op::VDiv:
    case Op::SSqrt:
      return M.DivSqrtLatency;
    case Op::SMul:
    case Op::VMul:
    case Op::VFma:
    case Op::VFnma:
      return M.MulLatency;
    case Op::SAdd:
    case Op::SSub:
    case Op::VAdd:
    case Op::VSub:
    case Op::VReduceAdd:
      return M.AddLatency;
    case Op::SLoad:
    case Op::VLoad:
    case Op::VLoadStrided:
    case Op::VLoadStridedMasked:
      return M.LoadLatency;
    case Op::VShuffle:
    case Op::VExtract:
    case Op::VBroadcast:
      return M.ShuffleLatency;
    default:
      return 0.0;
    }
  }

  void run(const std::vector<cir::Node> &Body) {
    for (const cir::Node &N : Body) {
      if (const auto *L = std::get_if<cir::Loop>(&N)) {
        double Trip = std::max(0, (L->Hi - L->Lo + L->Step - 1) / L->Step);
        if (L->LoVar >= 0)
          Trip = std::max(1.0, Trip / 2.0);
        // One symbolic iteration measures the per-iteration chain growth;
        // the generated loops carry accumulators, so iterations chain and
        // the growth is extrapolated over the remaining trips. Variable
        // addresses invalidate the constant-address map around the loop.
        MemDepth.clear();
        double Before = Max;
        run(L->Body);
        Max += (Max - Before) * std::max(0.0, Trip - 1.0);
        MemDepth.clear();
        continue;
      }
      const cir::Inst &I = std::get<cir::Inst>(N);
      double In = 0.0;
      for (int R : {I.A, I.B, I.C})
        if (R >= 0 && R < static_cast<int>(RegDepth.size()))
          In = std::max(In, RegDepth[R]);
      if (I.K == cir::Op::SLoad || I.K == cir::Op::VLoad ||
          I.K == cir::Op::VLoadStrided) {
        if (I.Address.isConstant()) {
          auto It = MemDepth.find({I.Address.Buf, I.Address.Const});
          if (It != MemDepth.end())
            In = std::max(In, It->second);
        }
      }
      double OutDepth = In + latOf(I);
      if (cir::isStore(I.K)) {
        if (I.Address.isConstant())
          for (int L2 = 0; L2 < std::max(1, I.Lanes); ++L2)
            MemDepth[{I.Address.Buf, I.Address.Const + L2}] = OutDepth;
        Max = std::max(Max, OutDepth);
      } else if (I.Dst >= 0) {
        if (I.Dst >= static_cast<int>(RegDepth.size()))
          RegDepth.resize(I.Dst + 1, 0.0);
        RegDepth[I.Dst] = OutDepth;
        Max = std::max(Max, OutDepth);
      }
    }
  }
};

} // namespace

Analysis erm::analyze(const cir::Function &F, const MicroArch &M) {
  Counter C{M, F.Nu, {}};
  C.count(F.Body, 1.0);
  Analysis A = C.A;

  ChainAnalyzer Chain{M, {}, {}, 0.0};
  Chain.run(F.Body);
  A.CriticalPathCycles = Chain.Max;

  A.DivCycles = A.DivSqrt * M.DivSqrtIssueCycles;
  A.LoadCycles = A.Loads / M.LoadsPerCycle;
  A.StoreCycles = A.Stores / M.StoresPerCycle;
  A.FlopCycles = A.Flops / M.PeakFlopsPerCycle;
  A.ShuffleCycles = A.Shuffles / M.ShufflesPerCycle;
  A.BlendCycles = A.Blends / M.BlendsPerCycle;

  struct {
    const char *Name;
    double Cycles;
  } Resources[] = {
      {"divs/sqrt", A.DivCycles},   {"L1 loads", A.LoadCycles},
      {"L1 stores", A.StoreCycles}, {"flops", A.FlopCycles},
      {"shuffles", A.ShuffleCycles},
  };
  A.Bottleneck = Resources[0].Name;
  A.BoundCycles = Resources[0].Cycles;
  for (const auto &R : Resources)
    if (R.Cycles > A.BoundCycles) {
      A.BoundCycles = R.Cycles;
      A.Bottleneck = R.Name;
    }

  long Issued = A.OtherIssued;
  A.ShuffleBlendIssueRate =
      Issued > 0 ? static_cast<double>(A.Shuffles + A.Blends) / Issued : 0.0;

  // Achievable f/c when the shuffle (resp. blend) port competes with the
  // floating point work: flops / max(flop-bound, rearrangement-bound).
  double FlopBound = std::max(A.FlopCycles, 1e-9);
  A.PerfLimitShuffles =
      A.Flops / std::max(FlopBound, A.ShuffleCycles);
  A.PerfLimitBlends = A.Flops / std::max(FlopBound, A.BlendCycles);
  A.PerfLimitShuffles = std::min(A.PerfLimitShuffles, M.PeakFlopsPerCycle);
  A.PerfLimitBlends = std::min(A.PerfLimitBlends, M.PeakFlopsPerCycle);
  return A;
}

std::string erm::formatRow(const Analysis &A) {
  return formatf("%-10s %5.0f%% %6.1f %6.1f", A.Bottleneck.c_str(),
                 100.0 * A.ShuffleBlendIssueRate, A.PerfLimitShuffles,
                 A.PerfLimitBlends);
}
