//===- cir/CEmitter.h - unparse C-IR to C with intrinsics ------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unparses a C-IR function into single-source C (paper Stage 3). Vector
/// instructions map to AVX/AVX2 (nu = 4) or SSE2 (nu = 2) intrinsics;
/// leftover lanes use masked loads/stores; VShuffle is lowered to
/// blend/permute sequences (the output of the load/store analysis,
/// paper Fig. 12b).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CIR_CEMITTER_H
#define SLINGEN_CIR_CEMITTER_H

#include "cir/CIR.h"

#include <string>

namespace slingen {
namespace cir {

/// Returns the C definition of \p F (a `void NAME(double*, ...)` function).
/// The translation unit prelude (includes) is NOT included; see
/// emitTranslationUnit.
std::string emitFunction(const Function &F);

/// Like emitFunction, but very large kernels (more than \p MaxInstsPerPart
/// instructions) are split into a chain of static part-functions called in
/// sequence from the named entry point. Splits happen only at top-level
/// points where no virtual register is live across, so semantics are
/// unchanged; compiler temporaries (Locals) are promoted to file-scope
/// static arrays so all parts see them. Splitting keeps the C compiler's
/// per-function analyses (which scale superlinearly) fast on the fully
/// unrolled large-size kernels.
std::string emitFunctionSplit(const Function &F, int MaxInstsPerPart);

/// Returns a complete compilable C translation unit containing \p F.
/// Kernels beyond ~64k instructions are emitted via emitFunctionSplit.
std::string emitTranslationUnit(const Function &F);

/// The C prototype of \p F ("void name(double *A, const double *B)").
std::string emitPrototype(const Function &F);

} // namespace cir
} // namespace slingen

#endif // SLINGEN_CIR_CEMITTER_H
