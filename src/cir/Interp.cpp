//===- cir/Interp.cpp -----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace slingen;
using namespace slingen::cir;

namespace {

class Machine {
public:
  Machine(const Function &F,
          const std::map<const Operand *, double *> &Buffers, int Active)
      : F(F), Buffers(Buffers), Active(Active), Vars(F.NumVars, 0),
        Regs(static_cast<size_t>(F.NumRegs) * F.Nu, 0.0) {}

  void run() { runBlock(F.Body); }

private:
  const Function &F;
  const std::map<const Operand *, double *> &Buffers;
  int Active; ///< lanes the runtime-masked ops touch (HasTailMask kernels)
  std::vector<int> Vars;
  // Register file: scalar regs use lane 0 only.
  std::vector<double> Regs;

  double *reg(int Id) { return &Regs[static_cast<size_t>(Id) * F.Nu]; }

  double *resolve(const Addr &A) {
    auto It = Buffers.find(A.Buf);
    assert(It != Buffers.end() && "missing operand buffer");
    int Off = A.Const;
    for (auto [Var, Coeff] : A.Terms)
      Off += Coeff * Vars[Var];
    return It->second + Off;
  }

  void runBlock(const std::vector<Node> &Body) {
    for (const Node &N : Body) {
      if (const auto *I = std::get_if<Inst>(&N)) {
        exec(*I);
        continue;
      }
      const Loop &L = std::get<Loop>(N);
      int Lo = L.Lo + (L.LoVar >= 0 ? L.LoVarCoeff * Vars[L.LoVar] : 0);
      for (int V = Lo; V < L.Hi; V += L.Step) {
        Vars[L.Var] = V;
        runBlock(L.Body);
      }
    }
  }

  void exec(const Inst &I) {
    int Nu = F.Nu;
    switch (I.K) {
    case Op::SConst:
      reg(I.Dst)[0] = I.Imm;
      break;
    case Op::SLoad:
      reg(I.Dst)[0] = *resolve(I.Address);
      break;
    case Op::SStore:
      *resolve(I.Address) = reg(I.A)[0];
      break;
    case Op::SAdd:
      reg(I.Dst)[0] = reg(I.A)[0] + reg(I.B)[0];
      break;
    case Op::SSub:
      reg(I.Dst)[0] = reg(I.A)[0] - reg(I.B)[0];
      break;
    case Op::SMul:
      reg(I.Dst)[0] = reg(I.A)[0] * reg(I.B)[0];
      break;
    case Op::SDiv:
      reg(I.Dst)[0] = reg(I.A)[0] / reg(I.B)[0];
      break;
    case Op::SSqrt:
      reg(I.Dst)[0] = std::sqrt(reg(I.A)[0]);
      break;
    case Op::SNeg:
      reg(I.Dst)[0] = -reg(I.A)[0];
      break;
    case Op::VConst:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = I.Imm;
      break;
    case Op::VLoad: {
      const double *P = resolve(I.Address);
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = L < I.Lanes ? P[L] : 0.0;
      break;
    }
    case Op::VLoadStrided: {
      const double *P = resolve(I.Address);
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = L < I.Lanes ? P[static_cast<long>(L) * I.Stride] : 0.0;
      break;
    }
    case Op::VLoadStridedMasked: {
      // Runtime mask: lanes >= Active load 0.0, exactly like the masked
      // gather / maskload lowerings (maskz semantics).
      const double *P = resolve(I.Address);
      int Act = std::min(I.Lanes, Active);
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = L < Act ? P[static_cast<long>(L) * I.Stride] : 0.0;
      break;
    }
    case Op::VStore: {
      double *P = resolve(I.Address);
      for (int L = 0; L < I.Lanes; ++L)
        P[L] = reg(I.A)[L];
      break;
    }
    case Op::VStoreStrided: {
      double *P = resolve(I.Address);
      for (int L = 0; L < I.Lanes; ++L)
        P[static_cast<long>(L) * I.Stride] = reg(I.A)[L];
      break;
    }
    case Op::VStoreStridedMasked: {
      // Only the first Active lanes hit memory; dead lanes' garbage stays
      // in the register, matching mask-store semantics.
      double *P = resolve(I.Address);
      int Act = std::min(I.Lanes, Active);
      for (int L = 0; L < Act; ++L)
        P[static_cast<long>(L) * I.Stride] = reg(I.A)[L];
      break;
    }
    case Op::VBroadcast:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = reg(I.A)[0];
      break;
    case Op::VAdd:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = reg(I.A)[L] + reg(I.B)[L];
      break;
    case Op::VSub:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = reg(I.A)[L] - reg(I.B)[L];
      break;
    case Op::VMul:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = reg(I.A)[L] * reg(I.B)[L];
      break;
    case Op::VDiv:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = reg(I.A)[L] / reg(I.B)[L];
      break;
    case Op::VSqrt:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = std::sqrt(reg(I.A)[L]);
      break;
    case Op::VNeg:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = -reg(I.A)[L];
      break;
    case Op::VFma:
      // Mirrors the C emitter's per-width lowering: single-rounded fmadd on
      // AVX/AVX-512 (Nu >= 4), unfused mul+add on SSE2 (Nu == 2).
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = Nu >= 4
                            ? std::fma(reg(I.A)[L], reg(I.B)[L], reg(I.C)[L])
                            : reg(I.A)[L] * reg(I.B)[L] + reg(I.C)[L];
      break;
    case Op::VFnma:
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = Nu >= 4
                            ? std::fma(-reg(I.A)[L], reg(I.B)[L], reg(I.C)[L])
                            : reg(I.C)[L] - reg(I.A)[L] * reg(I.B)[L];
      break;
    case Op::VExtract:
      reg(I.Dst)[0] = reg(I.A)[I.Lanes];
      break;
    case Op::VReduceAdd: {
      double Acc = 0.0;
      for (int L = 0; L < Nu; ++L)
        Acc += reg(I.A)[L];
      reg(I.Dst)[0] = Acc;
      break;
    }
    case Op::VShuffle: {
      assert(static_cast<int>(I.Sel.size()) == Nu && "bad selector");
      double Tmp[8];
      for (int L = 0; L < Nu; ++L) {
        int S = I.Sel[L];
        if (S < 0)
          Tmp[L] = 0.0;
        else if (S < Nu)
          Tmp[L] = reg(I.A)[S];
        else
          Tmp[L] = reg(I.B)[S - Nu];
      }
      for (int L = 0; L < Nu; ++L)
        reg(I.Dst)[L] = Tmp[L];
      break;
    }
    }
  }
};

} // namespace

void cir::interpret(const Function &F,
                    const std::map<const Operand *, double *> &Buffers) {
  interpret(F, Buffers, F.Nu);
}

void cir::interpret(const Function &F,
                    const std::map<const Operand *, double *> &Buffers,
                    int Active) {
  assert(Active >= 1 && Active <= F.Nu && "active lane count out of range");
  // Allocate the function's compiler temporaries, mirroring the
  // zero-initialized stack arrays the C emitter declares.
  std::vector<std::vector<double>> LocalStorage;
  std::map<const Operand *, double *> All = Buffers;
  for (const Operand *L : F.Locals) {
    if (All.count(L))
      continue;
    LocalStorage.emplace_back(
        static_cast<size_t>(L->Rows) * L->Cols * F.LocalVecWidth, 0.0);
    All[L] = LocalStorage.back().data();
  }
  Machine M(F, All, Active);
  M.run();
}
