//===- cir/Verify.h - C-IR static verifier --------------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-layer static analysis over cir::Function, in the spirit of LLVM's
/// module verifier: every pipeline stage that produces or rewrites C-IR is
/// checked in debug builds, and the KernelService runs it once,
/// unconditionally, before handing generated IR to the JIT.
///
/// Layer A (structural):
///  - register ids in range, RegIsVec sized to NumRegs;
///  - def-before-use in program order for every register (loop-carried
///    accumulators are initialized before their loop, so strict program
///    order is the generated-code invariant);
///  - opcode arity: exactly the operands an opcode consumes are present;
///  - width consistency: scalar and Nu-wide registers never mix (VAdd reads
///    two vector registers and defines one, VBroadcast reads a scalar, ...);
///  - masked ops (VLoadStridedMasked/VStoreStridedMasked) appear only in
///    HasTailMask functions -- and in an *instance-widened* HasTailMask
///    function (the `_fusedtail` emission) every parameter access *is*
///    masked, pinning the `active_` guard contract (hand-built tail
///    functions choose their own masking discipline);
///  - no store through a parameter declared read-only;
///  - no VFma/VFnma that duplicates a multiply which still has uses
///    (the contractFma single-use contract);
///  - shuffle selectors sized Nu with lanes in [-1, 2*Nu), extract lanes in
///    [0, Nu), loop structure sane (positive step, in-scope affine bounds),
///    address terms referencing only in-scope loop variables.
///
/// Layer B (symbolic access bounds + alignment): every address is an affine
/// form base + sum(coeff * loopvar); loop variables have known intervals
/// (constant upper bounds, affine-in-outer-var lower bounds), so each
/// access's touched element range is an interval. The verifier proves:
///  - scalar/contiguous accesses land in [0, size) of the named buffer
///    (params sized Rows*Cols per instance, times Nu for instance-widened
///    functions; locals sized Rows*Cols*LocalVecWidth);
///  - fused lane-strided accesses against the batch ABI land in
///    [0, Nu * instanceSize) -- lane l touches offset + l*stride, so the
///    base offset must stay inside instance 0 and the stride must equal the
///    parameter's instance size;
///  - masked tail accesses touch lane l only when l < active_, so they are
///    in bounds iff the base offset is within one instance and the stride
///    equals the instance size (the batch ABI guarantees exactly `active_`
///    trailing instances);
///  - in instance-widened functions every contiguous access to a local is
///    Nu-element aligned (offset and coefficients divisible by Nu): with the
///    64-byte base contract this is what lets the emitter use aligned
///    vector moves, so the invariant is verified, not assumed.
///
/// Violations are reported as structured VerifyError values; the service
/// maps them to Errc::InvalidKernelIR instead of compiling.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CIR_VERIFY_H
#define SLINGEN_CIR_VERIFY_H

#include "cir/CIR.h"

#include <optional>
#include <string>
#include <vector>

namespace slingen {
namespace cir {

/// Violation classes; each seeded-mutation test asserts the exact kind.
enum class VerifyKind {
  BadRegister,    ///< register id out of range / RegIsVec size mismatch
  UseBeforeDef,   ///< register read before any definition in program order
  BadArity,       ///< operand present/absent pattern doesn't match opcode
  WidthMismatch,  ///< scalar register where a vector is required (or v.v.)
  BadLane,        ///< VExtract lane or load/store lane count out of range
  BadShuffle,     ///< selector not Nu-sized or lane index out of range
  BadLoop,        ///< nonpositive step, or affine bound/address term
                  ///< referencing an out-of-scope loop variable
  UnknownBuffer,  ///< address names an operand that is neither a parameter
                  ///< nor a local of the function
  ReadOnlyStore,  ///< store through a parameter declared read-only
  MaskOutsideTail,///< masked op in a function without HasTailMask
  MissingMask,    ///< unmasked parameter access in a HasTailMask function
  FmaMultiUse,    ///< VFma/VFnma duplicating a multiply that still has uses
  OutOfBounds,    ///< access range not provably inside the buffer
  Misaligned,     ///< widened local access not Nu-element aligned
};

const char *verifyKindName(VerifyKind K);

/// One violation, anchored to the linear (pre-order) instruction index so
/// reports and tests can point at the offending instruction.
struct VerifyError {
  std::string Fn;
  int InstrIndex = -1;
  VerifyKind Kind = VerifyKind::BadRegister;
  std::string Detail;

  std::string str() const;
};

/// Runs both layers over \p F. Returns every violation found (bounded to
/// \p MaxErrors so a badly corrupted function cannot balloon the report);
/// empty means the function verified.
std::vector<VerifyError> verify(const Function &F, int MaxErrors = 16);

/// First violation, or nullopt when \p F verifies -- the service-path form.
std::optional<VerifyError> verifyFirst(const Function &F);

/// Human-readable per-function report (the `slc -verify-ir` surface):
/// "<name>: ok (N instructions)" or one line per violation.
std::string verifyReportText(const Function &F);

/// Debug-build pipeline hook: verifies \p F and aborts with the full report
/// when it does not hold, naming \p Stage (the widening or pass that just
/// ran). NDEBUG builds compile this to nothing; the service path instead
/// calls verifyFirst() unconditionally and refuses to compile.
void verifyAssert(const Function &F, const char *Stage);

} // namespace cir
} // namespace slingen

#endif // SLINGEN_CIR_VERIFY_H
