//===- cir/CIR.h - the C-like intermediate representation ------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C-IR is the paper's C-like intermediate representation (Sec. 3, Stage 2):
/// scalar and vector virtual registers, loads/stores through operand-relative
/// affine addresses, For loops with affine bounds, and vector instructions
/// including the Vecload/Vecstore forms with explicit lane information that
/// the domain-specific load/store analysis operates on (paper Fig. 11).
///
/// Programs in C-IR can be (a) executed by the interpreter (hermetic tests),
/// and (b) unparsed to C with intrinsics by the CEmitter.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CIR_CIR_H
#define SLINGEN_CIR_CIR_H

#include "expr/Operand.h"

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace slingen {
namespace cir {

/// Instruction opcodes. The S* family operates on scalar registers, the V*
/// family on vector registers of the function's vector width Nu.
enum class Op {
  // Scalar.
  SConst, ///< Dst = Imm
  SLoad,  ///< Dst = *Address
  SStore, ///< *Address = A
  SAdd,   ///< Dst = A + B
  SSub,
  SMul,
  SDiv,
  SSqrt, ///< Dst = sqrt(A)
  SNeg,
  // Vector.
  VConst,       ///< Dst = splat(Imm)
  VLoad,        ///< Dst = contiguous load of Lanes elements (rest zero)
  VLoadStrided, ///< Dst[i] = Address[i * Stride], Lanes elements
  /// Runtime-masked strided load: Dst[i] = i < active_ ? Address[i*Stride]
  /// : 0.0, where active_ is the function's trailing lane-count parameter
  /// (Function::HasTailMask). This is how one fused block covers the
  /// count % Nu batch tail without a scalar loop.
  VLoadStridedMasked,
  VStore, ///< store first Lanes lanes of A contiguously
  VStoreStrided,
  VStoreStridedMasked, ///< stores only lanes i < active_
  VBroadcast, ///< Dst = splat(scalar A)
  VAdd,
  VSub,
  VMul,
  VDiv,
  VSqrt, ///< Dst = sqrt(A), per lane (instance-parallel batching)
  VNeg,  ///< Dst = -A, per lane
  VFma,       ///< Dst = A * B + C (single rounding when Nu >= 4)
  VFnma,      ///< Dst = C - A * B (fnmadd; single rounding when Nu >= 4)
  VExtract,   ///< scalar Dst = A[Lane]
  VReduceAdd, ///< scalar Dst = sum of lanes of A
  VShuffle,   ///< Dst[i] = select(Sel[i]): 0..Nu-1 from A, Nu..2Nu-1 from B,
              ///< -1 produces 0.0 (covers blends, permutes, zeroing)
};

bool isStore(Op O);
bool hasDst(Op O);
/// True if the instruction has no side effects (candidate for CSE/DCE).
bool isPure(Op O);

/// Operand-relative affine address: Buf + Const + sum coeff_i * loopvar_i
/// (in elements of double). Buf is always a *root* operand: ow(...) chains
/// are resolved at address construction so aliasing is structural.
struct Addr {
  const Operand *Buf = nullptr;
  int Const = 0;
  std::vector<std::pair<int, int>> Terms; ///< (loop var id, coefficient)

  bool isConstant() const { return Terms.empty(); }
  std::string str() const;
  bool operator==(const Addr &O) const {
    return Buf == O.Buf && Const == O.Const && Terms == O.Terms;
  }
};

struct Inst {
  Op K;
  int Dst = -1;
  int A = -1, B = -1, C = -1;
  Addr Address;
  double Imm = 0.0;
  int Lanes = 0;  ///< active lanes for loads/stores; Lane for VExtract
  int Stride = 0; ///< element stride for strided access
  std::vector<int> Sel; ///< VShuffle selector (size Nu)

  std::string str() const;
};

struct Loop;
using Node = std::variant<Inst, Loop>;

/// A counted loop: for (var = Lo [+ LoVarCoeff*LoVar]; var < Hi; var += Step).
/// The optional affine lower bound (LoVar >= 0) expresses triangular
/// iteration spaces like Fig. 8's `for (j = i+nu; ...)`; upper bounds are
/// always constants (fixed-size operands).
struct Loop {
  int Var = -1;
  int Lo = 0, Hi = 0, Step = 1;
  int LoVar = -1;      ///< outer loop variable id, or -1
  int LoVarCoeff = 0;  ///< coefficient of LoVar in the lower bound
  std::vector<Node> Body;
};

/// A generated kernel: named function over the root operands of a program.
struct Function {
  std::string Name;
  std::vector<const Operand *> Params; ///< root operands, in signature order
  /// Per-parameter: true if the kernel writes this buffer (a root is
  /// writable if it, or any operand overwriting it via ow(...), is an
  /// output). Empty means "treat all as writable".
  std::vector<bool> ParamWritable;
  /// Compiler temporaries (root operands not in Params): emitted as
  /// zero-initialized stack arrays in C, allocated by the interpreter.
  std::vector<const Operand *> Locals;
  std::vector<Node> Body;
  int Nu = 1;       ///< vector width the V* instructions assume
  /// True for masked batch-tail kernels: the C prototype gains a trailing
  /// `int active_` lane-count parameter consumed by the *Masked ops, and
  /// the interpreter takes the active lane count as an extra argument.
  bool HasTailMask = false;
  /// Element-count multiplier for Locals storage. 1 for ordinary kernels;
  /// instance-widened kernels (see cir/Widen.h) keep Nu interleaved copies
  /// of every temporary, so their Locals arrays are Rows*Cols*LocalVecWidth
  /// doubles. Honored by the C emitter and the interpreter.
  int LocalVecWidth = 1;
  int NumRegs = 0;  ///< scalar+vector register count (ids are shared)
  int NumVars = 0;  ///< loop variable count
  std::vector<bool> RegIsVec;

  std::string str() const;
};

/// Incremental builder used by the tiling layer and codelet generators.
class FuncBuilder {
public:
  FuncBuilder(std::string Name, int Nu);

  int newSReg();
  int newVReg();

  /// Emits an instruction into the current block and returns its Dst.
  int emit(Inst I);

  /// Opens a loop; emission goes to its body until endLoop. Returns the
  /// loop variable id.
  int beginLoop(int Lo, int Hi, int Step);
  /// Loop with the affine lower bound Lo + LoVarCoeff * LoVar.
  int beginLoopAffine(int Lo, int LoVar, int LoVarCoeff, int Hi, int Step);
  void endLoop();

  Addr addr(const Operand *Op, int Const,
            std::vector<std::pair<int, int>> Terms = {}) const;

  // Convenience wrappers.
  int sconst(double V);
  int sload(Addr A);
  void sstore(Addr A, int Val);
  int sbin(Op K, int A, int B);
  int ssqrt(int A);
  int sneg(int A);
  int vconst(double V);
  int vload(Addr A, int Lanes);
  int vloadStrided(Addr A, int Stride, int Lanes);
  int vloadStridedMasked(Addr A, int Stride, int Lanes);
  void vstore(Addr A, int Val, int Lanes);
  void vstoreStrided(Addr A, int Val, int Stride, int Lanes);
  void vstoreStridedMasked(Addr A, int Val, int Stride, int Lanes);
  int vbroadcast(int SReg);
  int vbin(Op K, int A, int B);
  int vfma(int A, int B, int C);
  int vfnma(int A, int B, int C);
  /// Re-assigning forms for loop-carried accumulators (Dst is an existing
  /// register; the only non-SSA construct in generated code).
  void vfmaInto(int Dst, int A, int B, int C);
  void vbinInto(int Dst, Op K, int A, int B);
  void sbinInto(int Dst, Op K, int A, int B);
  int vextract(int A, int Lane);
  int vreduceAdd(int A);
  int vshuffle(int A, int B, std::vector<int> Sel);

  Function take(std::vector<const Operand *> Params);

  int nu() const { return F.Nu; }

private:
  Function F;
  std::vector<std::vector<Node> *> BlockStack;

  std::vector<Node> &cur() { return *BlockStack.back(); }
};

} // namespace cir
} // namespace slingen

#endif // SLINGEN_CIR_CIR_H
