//===- cir/Interp.h - C-IR interpreter -------------------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a C-IR function in-process against operand buffers, simulating
/// vector registers as Nu-lane double arrays with exact shuffle/blend/mask
/// semantics. This is what makes the whole pipeline testable without
/// shelling out to a C compiler: every generated kernel can be run and
/// compared against the dense evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CIR_INTERP_H
#define SLINGEN_CIR_INTERP_H

#include "cir/CIR.h"

#include <map>

namespace slingen {
namespace cir {

/// Runs \p F against the given operand buffers (keyed by *root* operand,
/// matching Function::Params). Missing buffers assert.
void interpret(const Function &F,
               const std::map<const Operand *, double *> &Buffers);

/// As above with an explicit active lane count for masked batch-tail
/// kernels (Function::HasTailMask): the runtime-masked ops
/// (VLoadStridedMasked/VStoreStridedMasked) touch only lanes < \p Active,
/// mirroring the C emission's `int active_` parameter. \p Active must be
/// in [1, F.Nu]. The plain overload runs with Active = F.Nu.
void interpret(const Function &F,
               const std::map<const Operand *, double *> &Buffers,
               int Active);

} // namespace cir
} // namespace slingen

#endif // SLINGEN_CIR_INTERP_H
