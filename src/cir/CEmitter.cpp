//===- cir/CEmitter.cpp ---------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cir/CEmitter.h"

#include "support/Format.h"

#include <cassert>
#include <map>
#include <set>

using namespace slingen;
using namespace slingen::cir;

namespace {

class Emitter {
public:
  explicit Emitter(const Function &F) : F(F), Nu(F.Nu) {
    for (const Operand *L : F.Locals)
      Locals.insert(L);
  }

  std::string run() {
    Sink.line(prototype(F) + " {");
    Sink.indent();
    emitLocalDecls();
    emitRegDecls();
    emitMaskDecls();
    emitBlock(F.Body);
    Sink.dedent();
    Sink.line("}");
    return Sink.str();
  }

  /// Splits the body into static part-functions of roughly
  /// \p MaxInstsPerPart instructions, cut only where no register is live
  /// across (see the header comment on emitFunctionSplit).
  std::string runSplit(int MaxInstsPerPart) {
    std::vector<std::pair<size_t, size_t>> Parts = partition(MaxInstsPerPart);
    if (Parts.size() <= 1)
      return run();

    // Compiler temporaries become file-scope so every part sees them.
    // (They are always fully written before being read within a call, so
    // static persistence across calls is unobservable.)
    for (const Operand *L : F.Locals)
      Sink.line(formatf(
          "static double %s[%d] __attribute__((aligned(64)));",
          L->Name.c_str(), L->Rows * L->Cols * F.LocalVecWidth));

    for (size_t P = 0; P < Parts.size(); ++P) {
      std::string Name = formatf("%s_part%zu", F.Name.c_str(), P);
      Sink.line("static " + prototype(F, Name.c_str()) + " {");
      Sink.indent();
      emitRegDeclsForRange(Parts[P].first, Parts[P].second);
      emitMaskDeclsForRange(Parts[P].first, Parts[P].second);
      for (size_t I = Parts[P].first; I < Parts[P].second; ++I)
        emitNode(F.Body[I]);
      Sink.dedent();
      Sink.line("}");
      Sink.line("");
    }

    Sink.line(prototype(F) + " {");
    Sink.indent();
    for (size_t P = 0; P < Parts.size(); ++P) {
      std::string Call = formatf("%s_part%zu(", F.Name.c_str(), P);
      for (size_t I = 0; I < F.Params.size(); ++I)
        Call += formatf("%s%s", I ? ", " : "", F.Params[I]->Name.c_str());
      if (F.HasTailMask)
        Call += formatf("%sactive_", F.Params.empty() ? "" : ", ");
      Sink.line(Call + ");");
    }
    Sink.dedent();
    Sink.line("}");
    return Sink.str();
  }

  static std::string prototype(const Function &F,
                               const char *NameOverride = nullptr) {
    std::string S =
        formatf("void %s(", NameOverride ? NameOverride : F.Name.c_str());
    for (size_t I = 0; I < F.Params.size(); ++I) {
      bool Writable = F.ParamWritable.empty() || F.ParamWritable[I];
      S += formatf("%s%sdouble *__restrict %s", I ? ", " : "",
                   Writable ? "" : "const ", F.Params[I]->Name.c_str());
    }
    if (F.HasTailMask)
      S += formatf("%sint active_", F.Params.empty() ? "" : ", ");
    else if (F.Params.empty())
      S += "void";
    S += ")";
    return S;
  }

private:
  const Function &F;
  int Nu;
  CodeSink Sink;
  std::set<const Operand *> Locals;

  /// True when the address provably sits at a full-vector boundary of a
  /// 64-byte-aligned local array: every offset contribution (constant and
  /// per-variable coefficient) is a multiple of Nu doubles. Such accesses
  /// use aligned vector moves. Parameters are never eligible -- their
  /// alignment is the caller's business (the batch ABI asserts it, but
  /// block base pointers advance by instance strides that need not keep
  /// 64-byte alignment).
  bool alignedLocalAddr(const Addr &A) const {
    if (Nu < 2 || !Locals.count(A.Buf) || A.Const % Nu != 0)
      return false;
    for (auto [Var, Coeff] : A.Terms) {
      (void)Var;
      if (Coeff % Nu != 0)
        return false;
    }
    return true;
  }

  std::string reg(int Id) const { return formatf("r%d", Id); }
  std::string var(int Id) const { return formatf("i%d", Id); }

  std::string address(const Addr &A) const {
    std::string S = A.Buf->Name;
    S += formatf(" + %d", A.Const);
    for (auto [Var, Coeff] : A.Terms) {
      if (Coeff == 1)
        S += formatf(" + %s", var(Var).c_str());
      else
        S += formatf(" + %d*%s", Coeff, var(Var).c_str());
    }
    return S;
  }

  void collectMaskLanes(const std::vector<Node> &Body,
                        std::set<int> &Out) const {
    for (const Node &N : Body) {
      if (const auto *L = std::get_if<Loop>(&N)) {
        collectMaskLanes(L->Body, Out);
        continue;
      }
      const Inst &I = std::get<Inst>(N);
      if ((I.K == Op::VLoad || I.K == Op::VStore) && I.Lanes < Nu)
        Out.insert(I.Lanes);
    }
  }

  static bool isMaskedOp(Op K) {
    return K == Op::VLoadStridedMasked || K == Op::VStoreStridedMasked;
  }

  bool hasMaskedOps(const std::vector<Node> &Body) const {
    for (const Node &N : Body) {
      if (const auto *L = std::get_if<Loop>(&N)) {
        if (hasMaskedOps(L->Body))
          return true;
        continue;
      }
      if (isMaskedOp(std::get<Inst>(N).K))
        return true;
    }
    return false;
  }

  void emitLocalDecls() {
    // Locals are 64-byte aligned so full-width accesses at Nu-multiple
    // offsets can use aligned vector moves (see alignedLocalAddr).
    for (const Operand *L : F.Locals)
      Sink.line(formatf(
          "double %s[%d] __attribute__((aligned(64))) = {0.0};",
          L->Name.c_str(), L->Rows * L->Cols * F.LocalVecWidth));
  }

  void emitRegDecls() {
    for (int R = 0; R < F.NumRegs; ++R) {
      if (F.RegIsVec[R])
        Sink.line(formatf("%s r%d;", vecType(), R));
      else
        Sink.line(formatf("double r%d;", R));
    }
  }

  const char *vecType() const {
    return Nu == 8 ? "__m512d" : (Nu == 4 ? "__m256d" : "__m128d");
  }

  void emitMaskDecls() {
    if (Nu == 4) {
      std::set<int> Lanes;
      collectMaskLanes(F.Body, Lanes);
      emitMaskLines(Lanes);
    }
    if (hasMaskedOps(F.Body))
      emitActiveMaskLines();
  }

  /// The runtime tail mask derived from the `int active_` parameter: lanes
  /// [0, active_) on. AVX-512 wants a k-register mask; AVX wants a per-lane
  /// all-ones/all-zeros __m256i for maskload/maskstore (built with an AVX2
  /// compare, which the avx target enables); SSE2 branches on active_
  /// inline and needs no materialized mask.
  void emitActiveMaskLines() {
    if (Nu == 8)
      Sink.line("const __mmask8 kact_ = (__mmask8)((1u << active_) - 1);");
    else if (Nu == 4)
      Sink.line("const __m256i mact_ = "
                "_mm256_cmpgt_epi64(_mm256_set1_epi64x(active_), "
                "_mm256_set_epi64x(3, 2, 1, 0));");
  }

  void emitMaskLines(const std::set<int> &Lanes) {
    for (int L : Lanes) {
      assert(L >= 1 && L <= 3 && "bad AVX mask lane count");
      std::string Args;
      for (int I = 3; I >= 0; --I)
        Args += formatf("%s%s", I == 3 ? "" : ", ", I < L ? "-1ll" : "0ll");
      Sink.line(formatf("const __m256i mk%d = _mm256_set_epi64x(%s);", L,
                        Args.c_str()));
    }
  }

  void emitBlock(const std::vector<Node> &Body) {
    for (const Node &N : Body)
      emitNode(N);
  }

  void emitNode(const Node &N) {
    if (const auto *L = std::get_if<Loop>(&N)) {
      std::string LoStr = formatf("%d", L->Lo);
      if (L->LoVar >= 0)
        LoStr += formatf(" + %d*%s", L->LoVarCoeff, var(L->LoVar).c_str());
      Sink.line(formatf("for (int %s = %s; %s < %d; %s += %d) {",
                        var(L->Var).c_str(), LoStr.c_str(),
                        var(L->Var).c_str(), L->Hi, var(L->Var).c_str(),
                        L->Step));
      Sink.indent();
      emitBlock(L->Body);
      Sink.dedent();
      Sink.line("}");
      return;
    }
    emitInst(std::get<Inst>(N));
  }

  //===--------------------------------------------------------------------===//
  // Splitting machinery.
  //===--------------------------------------------------------------------===//

  /// Applies \p Fn to every register id an instruction touches.
  template <typename FnT>
  static void forEachReg(const Inst &I, FnT Fn) {
    if (hasDst(I.K) && I.Dst >= 0)
      Fn(I.Dst);
    for (int R : {I.A, I.B, I.C})
      if (R >= 0)
        Fn(R);
  }

  template <typename FnT>
  static void forEachInst(const Node &N, FnT Fn) {
    if (const auto *I = std::get_if<Inst>(&N)) {
      Fn(*I);
      return;
    }
    for (const Node &Sub : std::get<Loop>(N).Body)
      forEachInst(Sub, Fn);
  }

  /// Registers holding pure constants (single def, SConst/VConst): CSE
  /// makes them live across the entire function, which would forbid every
  /// split point. They are rematerialized per part instead, so liveness
  /// ignores them. ConstDefs maps such a register to its defining
  /// instruction.
  std::map<int, const Inst *> ConstDefs;

  void collectConstDefs() {
    std::vector<int> Defs(F.NumRegs, 0);
    std::map<int, const Inst *> Single;
    for (const Node &N : F.Body)
      forEachInst(N, [&](const Inst &In) {
        if (!hasDst(In.K) || In.Dst < 0)
          return;
        if (++Defs[In.Dst] == 1 &&
            (In.K == Op::SConst || In.K == Op::VConst))
          Single[In.Dst] = &In;
      });
    for (auto [R, I] : Single)
      if (Defs[R] == 1)
        ConstDefs[R] = I;
  }

  bool isConstReg(int R) const { return ConstDefs.count(R) != 0; }

  /// Greedy partition of the top-level body into [first, last) ranges of
  /// at least MaxInstsPerPart instructions, cut only at nodes after which
  /// no (non-constant) register is live.
  std::vector<std::pair<size_t, size_t>> partition(int MaxInstsPerPart) {
    collectConstDefs();
    size_t NNodes = F.Body.size();
    std::vector<int> InstCount(NNodes, 0);
    std::vector<int> LastTouch(F.NumRegs, -1);
    for (size_t I = 0; I < NNodes; ++I)
      forEachInst(F.Body[I], [&](const Inst &In) {
        ++InstCount[I];
        forEachReg(In, [&](int R) { LastTouch[R] = static_cast<int>(I); });
      });
    long Active = -1;
    std::vector<std::pair<size_t, size_t>> Parts;
    size_t Start = 0;
    long Accum = 0;
    for (size_t I = 0; I < NNodes; ++I) {
      forEachInst(F.Body[I], [&](const Inst &In) {
        forEachReg(In, [&](int R) {
          if (!isConstReg(R))
            Active = std::max(Active, static_cast<long>(LastTouch[R]));
        });
      });
      Accum += InstCount[I];
      bool Clean = Active <= static_cast<long>(I);
      if (Clean && Accum >= MaxInstsPerPart && I + 1 < NNodes) {
        Parts.push_back({Start, I + 1});
        Start = I + 1;
        Accum = 0;
      }
    }
    if (Start < NNodes || Parts.empty())
      Parts.push_back({Start, NNodes});
    return Parts;
  }

  void emitRegDeclsForRange(size_t First, size_t Last) {
    std::set<int> Regs, Defined;
    for (size_t I = First; I < Last; ++I)
      forEachInst(F.Body[I], [&](const Inst &In) {
        forEachReg(In, [&](int R) { Regs.insert(R); });
        if (hasDst(In.K) && In.Dst >= 0)
          Defined.insert(In.Dst);
      });
    for (int R : Regs) {
      if (F.RegIsVec[R])
        Sink.line(formatf("%s r%d;", vecType(), R));
      else
        Sink.line(formatf("double r%d;", R));
    }
    // Rematerialize constants defined in other parts.
    for (int R : Regs)
      if (!Defined.count(R)) {
        auto It = ConstDefs.find(R);
        assert(It != ConstDefs.end() &&
               "non-constant register live across a split point");
        emitInst(*It->second);
      }
  }

  void emitMaskDeclsForRange(size_t First, size_t Last) {
    bool Masked = false;
    std::set<int> Lanes;
    for (size_t I = First; I < Last; ++I)
      forEachInst(F.Body[I], [&](const Inst &In) {
        if ((In.K == Op::VLoad || In.K == Op::VStore) && In.Lanes < Nu)
          Lanes.insert(In.Lanes);
        Masked |= isMaskedOp(In.K);
      });
    if (Nu == 4)
      emitMaskLines(Lanes);
    if (Masked)
      emitActiveMaskLines();
  }

  void emitInst(const Inst &I) {
    switch (I.K) {
    case Op::SConst:
      Sink.line(formatf("r%d = %.17g;", I.Dst, I.Imm));
      break;
    case Op::SLoad:
      Sink.line(formatf("r%d = *(%s);", I.Dst, address(I.Address).c_str()));
      break;
    case Op::SStore:
      Sink.line(formatf("*(%s) = r%d;", address(I.Address).c_str(), I.A));
      break;
    case Op::SAdd:
      Sink.line(formatf("r%d = r%d + r%d;", I.Dst, I.A, I.B));
      break;
    case Op::SSub:
      Sink.line(formatf("r%d = r%d - r%d;", I.Dst, I.A, I.B));
      break;
    case Op::SMul:
      Sink.line(formatf("r%d = r%d * r%d;", I.Dst, I.A, I.B));
      break;
    case Op::SDiv:
      Sink.line(formatf("r%d = r%d / r%d;", I.Dst, I.A, I.B));
      break;
    case Op::SSqrt:
      Sink.line(formatf("r%d = sqrt(r%d);", I.Dst, I.A));
      break;
    case Op::SNeg:
      Sink.line(formatf("r%d = -r%d;", I.Dst, I.A));
      break;
    default:
      emitVector(I);
      break;
    }
  }

  const char *pfx() const {
    return Nu == 8 ? "_mm512" : (Nu == 4 ? "_mm256" : "_mm");
  }

  void emitVector(const Inst &I) {
    assert(Nu > 1 && "vector instruction in a scalar function");
    switch (I.K) {
    case Op::VConst:
      Sink.line(formatf("r%d = %s_set1_pd(%.17g);", I.Dst, pfx(), I.Imm));
      break;
    case Op::VBroadcast:
      Sink.line(formatf("r%d = %s_set1_pd(r%d);", I.Dst, pfx(), I.A));
      break;
    case Op::VLoad:
      if (I.Lanes == Nu) {
        Sink.line(formatf("r%d = %s_load%s_pd(%s);", I.Dst, pfx(),
                          alignedLocalAddr(I.Address) ? "" : "u",
                          address(I.Address).c_str()));
      } else if (Nu == 8) {
        // AVX-512 masked loads take an immediate lane mask; masked-off
        // lanes are zeroed (maskz), matching VLoad semantics.
        Sink.line(formatf(
            "r%d = _mm512_maskz_loadu_pd((__mmask8)0x%x, %s);", I.Dst,
            (1 << I.Lanes) - 1, address(I.Address).c_str()));
      } else if (Nu == 4) {
        Sink.line(formatf("r%d = _mm256_maskload_pd(%s, mk%d);", I.Dst,
                          address(I.Address).c_str(), I.Lanes));
      } else { // SSE2 single lane
        Sink.line(formatf("r%d = _mm_load_sd(%s);", I.Dst,
                          address(I.Address).c_str()));
      }
      break;
    case Op::VStore:
      if (I.Lanes == Nu) {
        Sink.line(formatf("%s_store%s_pd(%s, r%d);", pfx(),
                          alignedLocalAddr(I.Address) ? "" : "u",
                          address(I.Address).c_str(), I.A));
      } else if (Nu == 8) {
        Sink.line(formatf("_mm512_mask_storeu_pd(%s, (__mmask8)0x%x, r%d);",
                          address(I.Address).c_str(), (1 << I.Lanes) - 1,
                          I.A));
      } else if (Nu == 4) {
        Sink.line(formatf("_mm256_maskstore_pd(%s, mk%d, r%d);",
                          address(I.Address).c_str(), I.Lanes, I.A));
      } else {
        Sink.line(formatf("_mm_store_sd(%s, r%d);",
                          address(I.Address).c_str(), I.A));
      }
      break;
    case Op::VLoadStrided: {
      // Gather a strided (column) access with a set; lanes beyond the
      // active count become zero.
      std::string Args;
      for (int L = Nu - 1; L >= 0; --L) {
        if (L < I.Lanes)
          Args += formatf("(%s)[%d]", address(I.Address).c_str(),
                          L * I.Stride);
        else
          Args += "0.0";
        if (L)
          Args += ", ";
      }
      Sink.line(formatf("r%d = %s_set_pd(%s);", I.Dst, pfx(), Args.c_str()));
      break;
    }
    case Op::VStoreStrided: {
      Sink.line("{");
      Sink.indent();
      Sink.line(formatf("double t%d_[%d];", I.A, Nu));
      Sink.line(formatf("%s_storeu_pd(t%d_, r%d);", pfx(), I.A, I.A));
      for (int L = 0; L < I.Lanes; ++L)
        Sink.line(formatf("(%s)[%d] = t%d_[%d];", address(I.Address).c_str(),
                          L * I.Stride, I.A, L));
      Sink.dedent();
      Sink.line("}");
      break;
    }
    case Op::VLoadStridedMasked:
      // Runtime-masked lane-strided load for the batch tail: lanes
      // [0, active_) gather instance data, dead lanes are zeroed so their
      // garbage can never raise FP exceptions into real results.
      if (Nu == 8 && I.Stride == 1) {
        Sink.line(formatf("r%d = _mm512_maskz_loadu_pd(kact_, %s);", I.Dst,
                          address(I.Address).c_str()));
      } else if (Nu == 8) {
        Sink.line(formatf(
            "r%d = _mm512_mask_i64gather_pd(_mm512_setzero_pd(), kact_, "
            "_mm512_set_epi64(%d, %d, %d, %d, %d, %d, %d, 0), %s, 8);",
            I.Dst, 7 * I.Stride, 6 * I.Stride, 5 * I.Stride, 4 * I.Stride,
            3 * I.Stride, 2 * I.Stride, I.Stride,
            address(I.Address).c_str()));
      } else if (Nu == 4 && I.Stride == 1) {
        Sink.line(formatf("r%d = _mm256_maskload_pd(%s, mact_);", I.Dst,
                          address(I.Address).c_str()));
      } else if (Nu == 4) {
        Sink.line(formatf(
            "r%d = _mm256_mask_i64gather_pd(_mm256_setzero_pd(), %s, "
            "_mm256_set_epi64x(%d, %d, %d, 0), _mm256_castsi256_pd(mact_), "
            "8);",
            I.Dst, address(I.Address).c_str(), 3 * I.Stride, 2 * I.Stride,
            I.Stride));
      } else { // SSE2: lane 0 is always active (active_ >= 1)
        Sink.line(formatf(
            "r%d = _mm_set_pd(active_ > 1 ? (%s)[%d] : 0.0, (%s)[0]);",
            I.Dst, address(I.Address).c_str(), I.Stride,
            address(I.Address).c_str()));
      }
      break;
    case Op::VStoreStridedMasked:
      if (Nu == 8 && I.Stride == 1) {
        Sink.line(formatf("_mm512_mask_storeu_pd(%s, kact_, r%d);",
                          address(I.Address).c_str(), I.A));
      } else if (Nu == 8) {
        Sink.line(formatf(
            "_mm512_mask_i64scatter_pd(%s, kact_, "
            "_mm512_set_epi64(%d, %d, %d, %d, %d, %d, %d, 0), r%d, 8);",
            address(I.Address).c_str(), 7 * I.Stride, 6 * I.Stride,
            5 * I.Stride, 4 * I.Stride, 3 * I.Stride, 2 * I.Stride, I.Stride,
            I.A));
      } else if (Nu == 4 && I.Stride == 1) {
        Sink.line(formatf("_mm256_maskstore_pd(%s, mact_, r%d);",
                          address(I.Address).c_str(), I.A));
      } else if (Nu == 4) {
        // No AVX scatter: spill and store the active lanes scalarly.
        Sink.line("{");
        Sink.indent();
        Sink.line(formatf("double t%d_[4];", I.A));
        Sink.line(formatf("_mm256_storeu_pd(t%d_, r%d);", I.A, I.A));
        Sink.line(formatf("for (int l_ = 0; l_ < active_; ++l_)"));
        Sink.indent();
        Sink.line(formatf("(%s)[l_ * %d] = t%d_[l_];",
                          address(I.Address).c_str(), I.Stride, I.A));
        Sink.dedent();
        Sink.dedent();
        Sink.line("}");
      } else {
        Sink.line(formatf("_mm_store_sd(%s, r%d);",
                          address(I.Address).c_str(), I.A));
        Sink.line(formatf("if (active_ > 1) _mm_storeh_pd((%s) + %d, r%d);",
                          address(I.Address).c_str(), I.Stride, I.A));
      }
      break;
    case Op::VAdd:
      Sink.line(formatf("r%d = %s_add_pd(r%d, r%d);", I.Dst, pfx(), I.A,
                        I.B));
      break;
    case Op::VSub:
      Sink.line(formatf("r%d = %s_sub_pd(r%d, r%d);", I.Dst, pfx(), I.A,
                        I.B));
      break;
    case Op::VMul:
      Sink.line(formatf("r%d = %s_mul_pd(r%d, r%d);", I.Dst, pfx(), I.A,
                        I.B));
      break;
    case Op::VDiv:
      Sink.line(formatf("r%d = %s_div_pd(r%d, r%d);", I.Dst, pfx(), I.A,
                        I.B));
      break;
    case Op::VSqrt:
      Sink.line(formatf("r%d = %s_sqrt_pd(r%d);", I.Dst, pfx(), I.A));
      break;
    case Op::VNeg:
      // Sign-bit flip, not 0-x: subtraction would turn -0.0 into +0.0 and
      // diverge from the scalar kernel's `-r` through later divisions.
      // _mm512_xor_pd is AVX-512DQ, which the avx512 target deliberately
      // does not enable (see isaCompileFlags), so Nu == 8 flips the sign
      // through the AVX-512F integer xor instead.
      if (Nu == 8)
        Sink.line(formatf(
            "r%d = _mm512_castsi512_pd(_mm512_xor_epi64(_mm512_castpd_si512("
            "r%d), _mm512_castpd_si512(_mm512_set1_pd(-0.0))));",
            I.Dst, I.A));
      else
        Sink.line(formatf("r%d = %s_xor_pd(%s_set1_pd(-0.0), r%d);", I.Dst,
                          pfx(), pfx(), I.A));
      break;
    case Op::VFma:
      if (Nu == 8)
        Sink.line(formatf("r%d = _mm512_fmadd_pd(r%d, r%d, r%d);", I.Dst,
                          I.A, I.B, I.C));
      else if (Nu == 4)
        Sink.line(formatf("r%d = _mm256_fmadd_pd(r%d, r%d, r%d);", I.Dst,
                          I.A, I.B, I.C));
      else
        Sink.line(formatf("r%d = _mm_add_pd(_mm_mul_pd(r%d, r%d), r%d);",
                          I.Dst, I.A, I.B, I.C));
      break;
    case Op::VFnma:
      if (Nu == 8)
        Sink.line(formatf("r%d = _mm512_fnmadd_pd(r%d, r%d, r%d);", I.Dst,
                          I.A, I.B, I.C));
      else if (Nu == 4)
        Sink.line(formatf("r%d = _mm256_fnmadd_pd(r%d, r%d, r%d);", I.Dst,
                          I.A, I.B, I.C));
      else
        Sink.line(formatf("r%d = _mm_sub_pd(r%d, _mm_mul_pd(r%d, r%d));",
                          I.Dst, I.C, I.A, I.B));
      break;
    case Op::VExtract:
      if (I.Lanes == 0) {
        Sink.line(formatf("r%d = %s_cvtsd_f64(r%d);", I.Dst, pfx(), I.A));
      } else if (Nu == 2) {
        Sink.line(formatf(
            "r%d = _mm_cvtsd_f64(_mm_unpackhi_pd(r%d, r%d));", I.Dst, I.A,
            I.A));
      } else {
        Sink.line("{");
        Sink.indent();
        Sink.line(formatf("double t%d_[%d];", I.Dst, Nu));
        Sink.line(formatf("%s_storeu_pd(t%d_, r%d);", pfx(), I.Dst, I.A));
        Sink.line(formatf("r%d = t%d_[%d];", I.Dst, I.Dst, I.Lanes));
        Sink.dedent();
        Sink.line("}");
      }
      break;
    case Op::VReduceAdd:
      if (Nu == 8) {
        Sink.line(
            formatf("r%d = _mm512_reduce_add_pd(r%d);", I.Dst, I.A));
      } else if (Nu == 2) {
        Sink.line(formatf(
            "r%d = _mm_cvtsd_f64(_mm_add_sd(r%d, _mm_unpackhi_pd(r%d, "
            "r%d)));",
            I.Dst, I.A, I.A, I.A));
      } else {
        Sink.line("{");
        Sink.indent();
        Sink.line(formatf("__m128d t%d_lo = _mm256_castpd256_pd128(r%d);",
                          I.Dst, I.A));
        Sink.line(formatf("__m128d t%d_hi = _mm256_extractf128_pd(r%d, 1);",
                          I.Dst, I.A));
        Sink.line(formatf("t%d_lo = _mm_add_pd(t%d_lo, t%d_hi);", I.Dst,
                          I.Dst, I.Dst));
        Sink.line(formatf("r%d = _mm_cvtsd_f64(_mm_add_sd(t%d_lo, "
                          "_mm_unpackhi_pd(t%d_lo, t%d_lo)));",
                          I.Dst, I.Dst, I.Dst, I.Dst));
        Sink.dedent();
        Sink.line("}");
      }
      break;
    case Op::VShuffle:
      emitShuffle(I);
      break;
    default:
      assert(false && "unhandled opcode");
    }
  }

  void emitShuffle(const Inst &I) {
    if (Nu == 2) {
      // _mm_shuffle_pd(x, y, imm) yields {x[imm&1], y[imm>>1]}; choose x
      // and y independently among rA, rB, and a zero vector.
      std::string Src[2];
      int LaneBit[2];
      for (int L = 0; L < 2; ++L) {
        int S = I.Sel[L];
        if (S < 0) {
          Src[L] = "_mm_setzero_pd()";
          LaneBit[L] = 0;
        } else if (S < 2) {
          Src[L] = reg(I.A);
          LaneBit[L] = S;
        } else {
          Src[L] = reg(I.B);
          LaneBit[L] = S - 2;
        }
      }
      Sink.line(formatf("r%d = _mm_shuffle_pd(%s, %s, %d);", I.Dst,
                        Src[0].c_str(), Src[1].c_str(),
                        LaneBit[0] | (LaneBit[1] << 1)));
      return;
    }
    if (Nu == 8) {
      // One masked two-source lane permutation covers every selector:
      // index bits [2:0] pick the element, bit 3 picks the source, and
      // the zeroing mask clears the -1 lanes (VShuffle semantics).
      int Mask = 0;
      std::string Idx;
      for (int L = 7; L >= 0; --L) {
        int S = I.Sel[L];
        if (S >= 0)
          Mask |= 1 << L;
        Idx += formatf("%s%d", L == 7 ? "" : ", ", S < 0 ? 0 : S);
      }
      Sink.line(formatf("r%d = _mm512_maskz_permutex2var_pd((__mmask8)0x%x, "
                        "r%d, _mm512_set_epi64(%s), r%d);",
                        I.Dst, Mask, I.A, Idx.c_str(),
                        I.B < 0 ? I.A : I.B));
      return;
    }
    assert(Nu == 4 && "unsupported vector width");
    bool UsesA = false, UsesB = false, HasZero = false;
    bool PerLane = true; // every lane L selects L from A or L from B
    for (int L = 0; L < 4; ++L) {
      int S = I.Sel[L];
      if (S < 0)
        HasZero = true;
      else if (S < 4) {
        UsesA = true;
        if (S != L)
          PerLane = false;
      } else {
        UsesB = true;
        if (S - 4 != L)
          PerLane = false;
      }
    }
    int ZeroMask = 0;
    for (int L = 0; L < 4; ++L)
      if (I.Sel[L] < 0)
        ZeroMask |= 1 << L;

    auto BlendZero = [&](const std::string &Expr) {
      if (!HasZero)
        return Expr;
      return formatf("_mm256_blend_pd(%s, _mm256_setzero_pd(), %d)",
                     Expr.c_str(), ZeroMask);
    };

    if (PerLane) {
      // Pure blend (possibly with zeroing).
      if (UsesA && UsesB) {
        int BMask = 0;
        for (int L = 0; L < 4; ++L)
          if (I.Sel[L] >= 4)
            BMask |= 1 << L;
        Sink.line(formatf(
            "r%d = %s;", I.Dst,
            BlendZero(formatf("_mm256_blend_pd(r%d, r%d, %d)", I.A, I.B,
                              BMask))
                .c_str()));
      } else {
        int Src = UsesB ? I.B : I.A;
        Sink.line(
            formatf("r%d = %s;", I.Dst, BlendZero(reg(Src)).c_str()));
      }
      return;
    }

    // General case: permute each source with AVX2 permute4x64, then blend.
    auto PermImm = [&](bool FromB) {
      int Imm = 0;
      for (int L = 0; L < 4; ++L) {
        int S = I.Sel[L];
        int Lane = 0;
        if (S >= 0 && (S >= 4) == FromB)
          Lane = FromB ? S - 4 : S;
        Imm |= Lane << (2 * L);
      }
      return Imm;
    };
    if (UsesA && UsesB) {
      int BMask = 0;
      for (int L = 0; L < 4; ++L)
        if (I.Sel[L] >= 4)
          BMask |= 1 << L;
      std::string PA =
          formatf("_mm256_permute4x64_pd(r%d, %d)", I.A, PermImm(false));
      std::string PB =
          formatf("_mm256_permute4x64_pd(r%d, %d)", I.B, PermImm(true));
      Sink.line(formatf("r%d = %s;", I.Dst,
                        BlendZero(formatf("_mm256_blend_pd(%s, %s, %d)",
                                          PA.c_str(), PB.c_str(), BMask))
                            .c_str()));
    } else {
      int Src = UsesB ? I.B : I.A;
      Sink.line(formatf(
          "r%d = %s;", I.Dst,
          BlendZero(formatf("_mm256_permute4x64_pd(r%d, %d)", Src,
                            PermImm(UsesB)))
              .c_str()));
    }
  }
};

} // namespace

std::string cir::emitFunction(const Function &F) {
  Emitter E(F);
  return E.run();
}

std::string cir::emitFunctionSplit(const Function &F, int MaxInstsPerPart) {
  Emitter E(F);
  return E.runSplit(MaxInstsPerPart);
}

std::string cir::emitPrototype(const Function &F) {
  return Emitter::prototype(F);
}

std::string cir::emitTranslationUnit(const Function &F) {
  std::string S;
  S += "#include <math.h>\n";
  if (F.Nu > 1)
    S += "#include <immintrin.h>\n";
  S += "\n";
  // Very large fully-unrolled kernels are split into part-functions to
  // keep the C compiler's superlinear per-function analyses tractable.
  S += emitFunctionSplit(F, /*MaxInstsPerPart=*/1 << 14);
  return S;
}
