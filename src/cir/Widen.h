//===- cir/Widen.h - instance-parallel lane widening -----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane-widening walk behind the instance-parallel batched codegen
/// strategy (the paper's Sec. 5 "batched computations" sketch): a *scalar*
/// C-IR function (Nu == 1, only S* opcodes) is re-emitted with every
/// operation widened to Lanes vector lanes, where lane l of each register
/// holds problem instance `b*Lanes + l` of the corresponding scalar value.
///
/// The widened function operates on an interleaved AoSoA block layout:
/// element e of instance-lane l of a parameter lives at offset e*Lanes + l,
/// so every scalar load/store widens to one full-width contiguous vector
/// load/store at Lanes times the scalar offset -- no gathers, no masks.
/// Division and square root go through the full-width VDiv/VSqrt
/// instructions, keeping per-instance IEEE semantics.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CIR_WIDEN_H
#define SLINGEN_CIR_WIDEN_H

#include "cir/CIR.h"

#include <memory>
#include <optional>
#include <vector>

namespace slingen {
namespace cir {

/// A widened function plus the renamed local operands it references (the
/// clones keep the original shape; renaming avoids file-scope collisions
/// when both the scalar kernel and the widened kernel are emitted -- and
/// possibly split into part functions -- in one translation unit).
struct WidenedFunction {
  Function Func;
  std::vector<std::unique_ptr<Operand>> OwnedLocals;
};

/// Widens the scalar function \p F across problem instances: every register
/// becomes a Lanes-wide vector register, every operation its vector
/// counterpart, and every affine address is scaled by Lanes (the AoSoA
/// block layout). Loop structure, register ids, and loop variables are
/// preserved one-to-one. Returns std::nullopt when \p F is not purely
/// scalar (Nu != 1 or any V* instruction) or Lanes < 2.
std::optional<WidenedFunction>
widenAcrossInstances(const Function &F, int Lanes, const std::string &Name);

/// The *fused-layout* variant: parameters keep the batch ABI's contiguous
/// per-instance layout, so lane l of a parameter access reads element
/// `affine + l * (Rows*Cols)` relative to the block base pointer -- a
/// lane-strided VLoadStrided/VStoreStrided whose stride is the parameter's
/// instance size. No layout transpose is required around the widened
/// kernel: it gathers instance data straight out of (and scatters results
/// straight into) the caller's batch buffers. Compiler temporaries never
/// cross the ABI boundary, so locals stay in the interleaved AoSoA layout
/// of widenAcrossInstances (contiguous full-width accesses). Same
/// feasibility conditions as widenAcrossInstances.
std::optional<WidenedFunction>
widenAcrossInstancesFused(const Function &F, int Lanes,
                          const std::string &Name);

/// The masked-tail variant of widenAcrossInstancesFused: identical lane
/// layout and arithmetic, but every parameter access is runtime-masked
/// (VLoadStridedMasked/VStoreStridedMasked) against the function's trailing
/// `int active_` parameter (Function::HasTailMask). Calling it with
/// active_ = r executes exactly instances [0, r) of the block -- the
/// `count % Lanes` batch tail -- in the first r lanes; dead lanes load 0.0,
/// compute in parallel, and are never stored. Active lanes run the exact
/// instruction sequence of the unmasked fused block, so tail results are
/// bit-identical to running the same instances through a full block.
std::optional<WidenedFunction>
widenAcrossInstancesFusedMasked(const Function &F, int Lanes,
                                const std::string &Name);

} // namespace cir
} // namespace slingen

#endif // SLINGEN_CIR_WIDEN_H
