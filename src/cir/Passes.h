//===- cir/Passes.h - C-IR optimization passes -----------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code-level optimizations of paper Stage 3: loop unrolling, local common
/// subexpression elimination (with copy propagation), dead code elimination,
/// and the domain-specific load/store analysis that replaces memory
/// round-trips with register shuffles and blends (paper Sec. 3.3 and
/// Figs. 11/12) plus redundant-load and dead-store elimination.
///
/// The pass pipeline relies on a structural property of generated code:
/// every register has a single definition except explicit loop-carried
/// accumulators. Passes treat multi-def registers conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CIR_PASSES_H
#define SLINGEN_CIR_PASSES_H

#include "cir/CIR.h"

namespace slingen {
namespace cir {

/// Fully unrolls (recursively) every loop whose trip count is at most
/// \p MaxTrip. Addresses referencing the induction variable are folded.
void unrollLoops(Function &F, int MaxTrip);

/// Local value numbering: CSE + copy propagation on single-def registers,
/// per straight-line region.
void cse(Function &F);

/// Removes pure instructions (and dead loads) whose results are unused.
void dce(Function &F);

/// The load/store analysis: store-to-load forwarding across constant
/// addresses. Vector reloads of recently stored lanes become VShuffle /
/// blend combinations (Fig. 12b); redundant loads are reused; stores that
/// are provably overwritten before being read are removed. Forwarding is
/// limited to \p WindowInsts instructions of distance so register live
/// ranges stay local in very large unrolled kernels (0 = unbounded).
void loadStoreOpt(Function &F, int WindowInsts = 4096);

/// Contracts mul+add chains into fused multiply-adds: a single-use VMul
/// feeding a VAdd becomes VFma (either operand order), and one feeding the
/// subtrahend of a VSub becomes VFnma (Dst = C - A*B). Only fires when the
/// mul and its consumer sit in the same straight-line region and all
/// involved registers are single-def, so the folded operands provably hold
/// the same values at the consumer. Changes rounding (one rounding instead
/// of two on ISAs with hardware FMA), so callers must apply it -- or not --
/// consistently across every kernel variant they intend to compare
/// bit-exactly. The batched codegen applies it to all widened variants when
/// Nu >= 4, matching the interpreter's width-dependent VFma semantics.
void contractFma(Function &F);

/// Runs the standard post-generation pipeline:
/// unroll(MaxTrip) -> cse -> loadStoreOpt -> cse -> dce.
void optimize(Function &F, int UnrollMaxTrip = 8);

/// Number of instructions (loops counted by body, once).
int countInsts(const Function &F);

} // namespace cir
} // namespace slingen

#endif // SLINGEN_CIR_PASSES_H
