//===- cir/Widen.cpp ------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cir/Widen.h"

#include "cir/Verify.h"

#include <map>

using namespace slingen;
using namespace slingen::cir;

namespace {

class Widener {
public:
  /// \p Fused selects the fused-layout mode: parameter accesses become
  /// lane-strided (stride = the parameter's instance size) against the
  /// batch ABI instead of contiguous accesses against packed AoSoA blocks.
  /// \p Masked additionally makes every parameter access runtime-masked
  /// (VLoadStridedMasked/VStoreStridedMasked) and marks the function
  /// HasTailMask: the result is the `count % Lanes` tail kernel, executing
  /// only the first `active_` lanes' instances. Locals stay full-width
  /// (dead lanes compute garbage that is never stored).
  Widener(const Function &F, int Lanes, bool Fused, bool Masked = false)
      : F(F), Lanes(Lanes), Fused(Fused), Masked(Masked) {
    if (Fused)
      for (const Operand *P : F.Params)
        ParamStride[P] = P->Rows * P->Cols;
  }

  bool run(WidenedFunction &Out, const std::string &Name) {
    if (F.Nu != 1 || Lanes < 2)
      return false;

    // Locals are cloned under a function-qualified name so the widened
    // kernel can share a translation unit (and, after splitting, file
    // scope) with the scalar kernel it was derived from.
    for (const Operand *L : F.Locals) {
      auto C = std::make_unique<Operand>(*L);
      C->Name = Name + "_" + L->Name;
      C->Overwrites = nullptr;
      LocalMap[L] = C.get();
      Out.Func.Locals.push_back(C.get());
      Out.OwnedLocals.push_back(std::move(C));
    }

    Out.Func.Name = Name;
    Out.Func.Params = F.Params;
    Out.Func.ParamWritable = F.ParamWritable;
    Out.Func.HasTailMask = Masked;
    Out.Func.Nu = Lanes;
    Out.Func.LocalVecWidth = Lanes;
    Out.Func.NumRegs = F.NumRegs;
    Out.Func.NumVars = F.NumVars;
    Out.Func.RegIsVec.assign(F.NumRegs, true);
    return widenBlock(F.Body, Out.Func.Body);
  }

private:
  const Function &F;
  int Lanes;
  bool Fused;
  bool Masked;
  std::map<const Operand *, const Operand *> LocalMap;
  std::map<const Operand *, int> ParamStride;

  /// AoSoA address: Lanes consecutive doubles per scalar element, so the
  /// whole affine form scales by Lanes. In fused mode this applies to
  /// locals only; parameter addresses stay in scalar element units (the
  /// lane offset is carried by the strided load/store instead).
  Addr widenAddr(const Addr &A) const {
    Addr W = A;
    auto It = LocalMap.find(A.Buf);
    if (It != LocalMap.end())
      W.Buf = It->second;
    if (Fused && ParamStride.count(A.Buf))
      return W;
    W.Const *= Lanes;
    for (auto &[Var, Coeff] : W.Terms)
      Coeff *= Lanes;
    return W;
  }

  /// Lane stride of a fused parameter access; 0 selects the contiguous
  /// (AoSoA) form.
  int laneStride(const Addr &A) const {
    if (!Fused)
      return 0;
    auto It = ParamStride.find(A.Buf);
    return It == ParamStride.end() ? 0 : It->second;
  }

  bool widenBlock(const std::vector<Node> &In, std::vector<Node> &Out) {
    for (const Node &N : In) {
      if (const auto *L = std::get_if<Loop>(&N)) {
        Loop W;
        W.Var = L->Var;
        W.Lo = L->Lo;
        W.Hi = L->Hi;
        W.Step = L->Step;
        W.LoVar = L->LoVar;
        W.LoVarCoeff = L->LoVarCoeff;
        Out.push_back(std::move(W));
        if (!widenBlock(L->Body, std::get<Loop>(Out.back()).Body))
          return false;
        continue;
      }
      Inst W = std::get<Inst>(N);
      switch (W.K) {
      case Op::SConst:
        W.K = Op::VConst;
        break;
      case Op::SLoad:
        if (int S = laneStride(W.Address)) {
          W.K = Masked ? Op::VLoadStridedMasked : Op::VLoadStrided;
          W.Stride = S;
        } else {
          W.K = Op::VLoad;
        }
        W.Address = widenAddr(W.Address);
        W.Lanes = Lanes;
        break;
      case Op::SStore:
        if (int S = laneStride(W.Address)) {
          W.K = Masked ? Op::VStoreStridedMasked : Op::VStoreStrided;
          W.Stride = S;
        } else {
          W.K = Op::VStore;
        }
        W.Address = widenAddr(W.Address);
        W.Lanes = Lanes;
        break;
      case Op::SAdd:
        W.K = Op::VAdd;
        break;
      case Op::SSub:
        W.K = Op::VSub;
        break;
      case Op::SMul:
        W.K = Op::VMul;
        break;
      case Op::SDiv:
        W.K = Op::VDiv;
        break;
      case Op::SSqrt:
        W.K = Op::VSqrt;
        break;
      case Op::SNeg:
        W.K = Op::VNeg;
        break;
      default:
        return false; // vector instruction: input was not scalar C-IR
      }
      Out.push_back(std::move(W));
    }
    return true;
  }
};

} // namespace

std::optional<WidenedFunction>
cir::widenAcrossInstances(const Function &F, int Lanes,
                          const std::string &Name) {
  WidenedFunction Out;
  Widener W(F, Lanes, /*Fused=*/false);
  if (!W.run(Out, Name))
    return std::nullopt;
  verifyAssert(Out.Func, "widen-across-instances");
  return Out;
}

std::optional<WidenedFunction>
cir::widenAcrossInstancesFused(const Function &F, int Lanes,
                               const std::string &Name) {
  WidenedFunction Out;
  Widener W(F, Lanes, /*Fused=*/true);
  if (!W.run(Out, Name))
    return std::nullopt;
  verifyAssert(Out.Func, "widen-across-instances-fused");
  return Out;
}

std::optional<WidenedFunction>
cir::widenAcrossInstancesFusedMasked(const Function &F, int Lanes,
                                     const std::string &Name) {
  WidenedFunction Out;
  Widener W(F, Lanes, /*Fused=*/true, /*Masked=*/true);
  if (!W.run(Out, Name))
    return std::nullopt;
  verifyAssert(Out.Func, "widen-across-instances-fused-masked");
  return Out;
}
