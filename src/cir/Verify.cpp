//===- cir/Verify.cpp - C-IR static verifier ------------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cir/Verify.h"

#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

using namespace slingen;
using namespace slingen::cir;

namespace {

/// Closed integer interval; the value set of a loop variable or affine
/// address expression. Bounds are exact for the loop shapes the builder can
/// produce (constant Hi, affine-in-outer-var Lo, positive step).
struct Interval {
  long Lo = 0;
  long Hi = 0;
};

Interval operator+(Interval A, Interval B) {
  return {A.Lo + B.Lo, A.Hi + B.Hi};
}

Interval scaled(Interval A, long K) {
  long X = A.Lo * K, Y = A.Hi * K;
  return {std::min(X, Y), std::max(X, Y)};
}

/// Expected operand/destination register class per opcode.
enum class RC { None, Scal, Vec };

struct OpSig {
  RC Dst = RC::None;
  RC A = RC::None;
  RC B = RC::None;
  RC C = RC::None;
};

OpSig opSig(Op K) {
  switch (K) {
  case Op::SConst:
    return {RC::Scal};
  case Op::SLoad:
    return {RC::Scal};
  case Op::SStore:
    return {RC::None, RC::Scal};
  case Op::SAdd:
  case Op::SSub:
  case Op::SMul:
  case Op::SDiv:
    return {RC::Scal, RC::Scal, RC::Scal};
  case Op::SSqrt:
  case Op::SNeg:
    return {RC::Scal, RC::Scal};
  case Op::VConst:
    return {RC::Vec};
  case Op::VLoad:
  case Op::VLoadStrided:
  case Op::VLoadStridedMasked:
    return {RC::Vec};
  case Op::VStore:
  case Op::VStoreStrided:
  case Op::VStoreStridedMasked:
    return {RC::None, RC::Vec};
  case Op::VBroadcast:
    return {RC::Vec, RC::Scal};
  case Op::VAdd:
  case Op::VSub:
  case Op::VMul:
  case Op::VDiv:
    return {RC::Vec, RC::Vec, RC::Vec};
  case Op::VSqrt:
  case Op::VNeg:
    return {RC::Vec, RC::Vec};
  case Op::VFma:
  case Op::VFnma:
    return {RC::Vec, RC::Vec, RC::Vec, RC::Vec};
  case Op::VExtract:
  case Op::VReduceAdd:
    return {RC::Scal, RC::Vec};
  case Op::VShuffle:
    return {RC::Vec, RC::Vec, RC::Vec};
  }
  return {};
}

bool isMemOp(Op K) {
  switch (K) {
  case Op::SLoad:
  case Op::SStore:
  case Op::VLoad:
  case Op::VLoadStrided:
  case Op::VLoadStridedMasked:
  case Op::VStore:
  case Op::VStoreStrided:
  case Op::VStoreStridedMasked:
    return true;
  default:
    return false;
  }
}

bool isMaskedOp(Op K) {
  return K == Op::VLoadStridedMasked || K == Op::VStoreStridedMasked;
}

bool isStridedOp(Op K) {
  return K == Op::VLoadStrided || K == Op::VLoadStridedMasked ||
         K == Op::VStoreStrided || K == Op::VStoreStridedMasked;
}

bool isContigVecMem(Op K) { return K == Op::VLoad || K == Op::VStore; }

class Verifier {
public:
  Verifier(const Function &F, int MaxErrors) : F(F), MaxErrors(MaxErrors) {
    // Instance-widened functions (one vector lane per batch instance) carry
    // LocalVecWidth == Nu: their parameter extent is Nu instances and every
    // FMA in them was produced by contractFma (the pre-widening IR is
    // purely scalar), so the single-use contract is checkable exactly.
    InstancesWide = F.Nu > 1 && F.LocalVecWidth == F.Nu;

    for (size_t I = 0; I < F.Params.size(); ++I) {
      const Operand *P = F.Params[I];
      BufferInfo B;
      B.InstanceSize = static_cast<long>(P->Rows) * P->Cols;
      B.Size = B.InstanceSize * (InstancesWide ? F.Nu : 1);
      B.IsParam = true;
      B.Writable = F.ParamWritable.empty() || F.ParamWritable[I];
      Buffers[P] = B;
    }
    for (const Operand *L : F.Locals) {
      BufferInfo B;
      B.InstanceSize = static_cast<long>(L->Rows) * L->Cols;
      B.Size = B.InstanceSize * F.LocalVecWidth;
      B.IsParam = false;
      B.Writable = true;
      Buffers[L] = B;
    }

    if (static_cast<int>(F.RegIsVec.size()) != F.NumRegs) {
      error(-1, VerifyKind::BadRegister,
            formatf("RegIsVec has %zu entries for %d registers",
                    F.RegIsVec.size(), F.NumRegs));
      return;
    }
    Defined.assign(std::max(F.NumRegs, 0), false);
    Uses.assign(std::max(F.NumRegs, 0), 0);
    countUses(F.Body);
    checkBlock(F.Body);
  }

  std::vector<VerifyError> take() { return std::move(Errors); }

private:
  struct BufferInfo {
    long Size = 0;         ///< total extent this function may touch, doubles
    long InstanceSize = 0; ///< one batch instance (Rows*Cols), doubles
    bool IsParam = false;
    bool Writable = true;
  };

  const Function &F;
  int MaxErrors;
  bool InstancesWide = false;
  std::map<const Operand *, BufferInfo> Buffers;
  std::map<int, Interval> Scope; ///< in-scope loop var -> value interval
  std::vector<bool> Defined;
  std::vector<int> Uses;
  int Idx = -1; ///< linear pre-order index of the instruction under check
  std::vector<VerifyError> Errors;

  void countUses(const std::vector<Node> &Body) {
    for (const Node &N : Body) {
      if (const auto *I = std::get_if<Inst>(&N)) {
        for (int R : {I->A, I->B, I->C})
          if (R >= 0 && R < F.NumRegs)
            ++Uses[R];
      } else {
        countUses(std::get<Loop>(N).Body);
      }
    }
  }

  void error(int At, VerifyKind Kind, std::string Detail) {
    if (static_cast<int>(Errors.size()) >= MaxErrors)
      return;
    VerifyError E;
    E.Fn = F.Name;
    E.InstrIndex = At;
    E.Kind = Kind;
    E.Detail = std::move(Detail);
    Errors.push_back(std::move(E));
  }

  bool regOk(int R, const char *Role) {
    if (R >= 0 && R < F.NumRegs)
      return true;
    error(Idx, VerifyKind::BadRegister,
          formatf("%s operand r%d out of range [0, %d)", Role, R, F.NumRegs));
    return false;
  }

  void useReg(int R, RC Want, const char *Role) {
    if (Want == RC::None) {
      if (R >= 0)
        error(Idx, VerifyKind::BadArity,
              formatf("unexpected %s operand r%d", Role, R));
      return;
    }
    if (R < 0) {
      error(Idx, VerifyKind::BadArity, formatf("missing %s operand", Role));
      return;
    }
    if (!regOk(R, Role))
      return;
    if (!Defined[R]) {
      error(Idx, VerifyKind::UseBeforeDef,
            formatf("r%d read by %s operand before any definition", R, Role));
      return;
    }
    bool WantVec = Want == RC::Vec;
    if (F.RegIsVec[R] != WantVec)
      error(Idx, VerifyKind::WidthMismatch,
            formatf("%s operand r%d is %s, %s required", Role, R,
                    F.RegIsVec[R] ? "vector" : "scalar",
                    WantVec ? "vector" : "scalar"));
  }

  void defReg(int R, RC Want) {
    if (Want == RC::None) {
      if (R >= 0)
        error(Idx, VerifyKind::BadArity,
              formatf("store opcode has destination r%d", R));
      return;
    }
    if (R < 0) {
      error(Idx, VerifyKind::BadArity, "missing destination register");
      return;
    }
    if (!regOk(R, "destination"))
      return;
    bool WantVec = Want == RC::Vec;
    if (F.RegIsVec[R] != WantVec)
      error(Idx, VerifyKind::WidthMismatch,
            formatf("destination r%d is %s, opcode defines a %s", R,
                    F.RegIsVec[R] ? "vector" : "scalar",
                    WantVec ? "vector" : "scalar"));
    Defined[R] = true;
  }

  /// Affine range of Const + sum(coeff * var) under the current loop scope.
  /// False when a term references an out-of-scope variable (reported).
  bool addrRange(const Addr &A, Interval &Out) {
    Interval R{A.Const, A.Const};
    for (auto [Var, Coeff] : A.Terms) {
      auto It = Scope.find(Var);
      if (It == Scope.end()) {
        error(Idx, VerifyKind::BadLoop,
              formatf("address %s references loop variable i%d not in scope",
                      A.str().c_str(), Var));
        return false;
      }
      R = R + scaled(It->second, Coeff);
    }
    Out = R;
    return true;
  }

  void checkMem(const Inst &I) {
    const Addr &A = I.Address;
    if (!A.Buf) {
      error(Idx, VerifyKind::UnknownBuffer, "memory access with null buffer");
      return;
    }
    auto It = Buffers.find(A.Buf);
    if (It == Buffers.end()) {
      error(Idx, VerifyKind::UnknownBuffer,
            "access to '" + A.Buf->Name +
                "', which is neither a parameter nor a local");
      return;
    }
    const BufferInfo &B = It->second;

    if (isStore(I.K) && B.IsParam && !B.Writable)
      error(Idx, VerifyKind::ReadOnlyStore,
            "store to read-only parameter '" + A.Buf->Name + "'");

    if (isMaskedOp(I.K) && !F.HasTailMask)
      error(Idx, VerifyKind::MaskOutsideTail,
            "masked access in a function without a tail mask (no `active_` "
            "guard is emitted)");
    // In an instance-widened tail kernel the parameters hold only `active_`
    // valid instances, so every parameter access must carry the mask.
    // (Hand-built HasTailMask functions outside the widener -- interpreter
    // tests, codelets -- define their own masking discipline.)
    if (InstancesWide && F.HasTailMask && B.IsParam && !isMaskedOp(I.K))
      error(Idx, VerifyKind::MissingMask,
            "unmasked access to parameter '" + A.Buf->Name +
                "' in a tail-masked function");

    bool Vec = I.K != Op::SLoad && I.K != Op::SStore;
    if (Vec && (I.Lanes < 1 || I.Lanes > F.Nu)) {
      error(Idx, VerifyKind::BadLane,
            formatf("lane count %d outside [1, %d]", I.Lanes, F.Nu));
      return;
    }
    if (isStridedOp(I.K) && I.Stride < 1) {
      error(Idx, VerifyKind::BadArity,
            formatf("nonpositive stride %d", I.Stride));
      return;
    }

    // The widening contract behind the emitter's aligned vector moves:
    // instance-widened code scales every local address by Nu, so contiguous
    // local accesses are Nu-element (hence, on the 64B-aligned local
    // arrays, vector-width) aligned.
    if (InstancesWide && !B.IsParam && isContigVecMem(I.K)) {
      bool Aligned = A.Const % F.Nu == 0;
      for (auto [Var, Coeff] : A.Terms)
        Aligned = Aligned && Coeff % F.Nu == 0;
      if (!Aligned)
        error(Idx, VerifyKind::Misaligned,
              formatf("widened local access %s not %d-element aligned",
                      A.str().c_str(), F.Nu));
    }

    Interval R;
    if (!addrRange(A, R))
      return;

    if (InstancesWide && isMaskedOp(I.K) && B.IsParam) {
      // Tail contract: lane l is touched only when l < active_, and the
      // batch ABI guarantees exactly `active_` trailing instances of
      // InstanceSize doubles each. In bounds iff the base offset stays
      // inside instance 0 and the lane stride is the instance size.
      // (Outside instance-widened code, masked ops fall through to the
      // generic all-lanes-active extent check below.)
      if (I.Stride != B.InstanceSize) {
        error(Idx, VerifyKind::OutOfBounds,
              formatf("masked lane stride %d != instance size %ld of '%s'",
                      I.Stride, B.InstanceSize, A.Buf->Name.c_str()));
        return;
      }
      if (R.Lo < 0 || R.Hi >= B.InstanceSize)
        error(Idx, VerifyKind::OutOfBounds,
              formatf("masked access %s spans [%ld, %ld], outside one "
                      "instance [0, %ld) of '%s'",
                      A.str().c_str(), R.Lo, R.Hi, B.InstanceSize,
                      A.Buf->Name.c_str()));
      return;
    }

    long Last = R.Hi;
    if (isStridedOp(I.K))
      Last += static_cast<long>(I.Lanes - 1) * I.Stride;
    else if (Vec)
      Last += I.Lanes - 1;
    if (R.Lo < 0 || Last >= B.Size)
      error(Idx, VerifyKind::OutOfBounds,
            formatf("access %s touches [%ld, %ld], outside [0, %ld) of '%s'",
                    A.str().c_str(), R.Lo, Last, B.Size,
                    A.Buf->Name.c_str()));
  }

  void checkInst(const Inst &I,
                 std::map<std::pair<int, int>, int> &MulPairs) {
    OpSig Sig = opSig(I.K);
    useReg(I.A, Sig.A, "A");
    useReg(I.B, Sig.B, "B");
    useReg(I.C, Sig.C, "C");

    if (isMemOp(I.K))
      checkMem(I);
    else if (I.Address.Buf)
      error(Idx, VerifyKind::BadArity,
            "non-memory opcode carries an address");

    switch (I.K) {
    case Op::VExtract:
      if (I.Lanes < 0 || I.Lanes >= F.Nu)
        error(Idx, VerifyKind::BadLane,
              formatf("extract lane %d outside [0, %d)", I.Lanes, F.Nu));
      break;
    case Op::VShuffle:
      if (static_cast<int>(I.Sel.size()) != F.Nu) {
        error(Idx, VerifyKind::BadShuffle,
              formatf("selector has %zu entries, Nu is %d", I.Sel.size(),
                      F.Nu));
      } else {
        for (int S : I.Sel)
          if (S < -1 || S >= 2 * F.Nu) {
            error(Idx, VerifyKind::BadShuffle,
                  formatf("selector lane %d outside [-1, %d)", S, 2 * F.Nu));
            break;
          }
      }
      break;
    case Op::VMul:
      // Track multiplies with single-def operands: the pool a (buggy)
      // contraction could duplicate.
      if (InstancesWide && I.A >= 0 && I.B >= 0)
        MulPairs[{std::min(I.A, I.B), std::max(I.A, I.B)}] = I.Dst;
      break;
    case Op::VFma:
    case Op::VFnma:
      // contractFma deletes the multiply it folds (it only fires on
      // single-use muls), so in instance-widened code -- where every FMA
      // comes from contraction -- a surviving same-product multiply with
      // remaining uses means a multi-use mul was contracted.
      if (InstancesWide && I.A >= 0 && I.B >= 0) {
        auto It = MulPairs.find({std::min(I.A, I.B), std::max(I.A, I.B)});
        if (It != MulPairs.end() && It->second >= 0 &&
            It->second < F.NumRegs && Uses[It->second] > 0)
          error(Idx, VerifyKind::FmaMultiUse,
                formatf("fma duplicates multiply r%d = r%d * r%d, which "
                        "still has %d use(s)",
                        It->second, I.A, I.B, Uses[It->second]));
      }
      break;
    default:
      break;
    }

    defReg(I.Dst, Sig.Dst);
  }

  void checkBlock(const std::vector<Node> &Body) {
    // Multiply/FMA pairing is per straight-line region, mirroring
    // contractFma: loops are barriers.
    std::map<std::pair<int, int>, int> MulPairs;
    for (const Node &N : Body) {
      if (static_cast<int>(Errors.size()) >= MaxErrors)
        return;
      if (const auto *I = std::get_if<Inst>(&N)) {
        ++Idx;
        checkInst(*I, MulPairs);
        continue;
      }
      MulPairs.clear();
      const Loop &L = std::get<Loop>(N);
      if (L.Var < 0 || L.Var >= F.NumVars) {
        error(Idx, VerifyKind::BadLoop,
              formatf("loop variable i%d outside [0, %d)", L.Var,
                      F.NumVars));
        continue;
      }
      if (Scope.count(L.Var)) {
        error(Idx, VerifyKind::BadLoop,
              formatf("loop variable i%d shadows an enclosing loop", L.Var));
        continue;
      }
      if (L.Step < 1) {
        error(Idx, VerifyKind::BadLoop,
              formatf("nonpositive loop step %d", L.Step));
        continue;
      }
      Interval LoI{L.Lo, L.Lo};
      if (L.LoVar >= 0) {
        auto It = Scope.find(L.LoVar);
        if (It == Scope.end()) {
          error(Idx, VerifyKind::BadLoop,
                formatf("affine lower bound references loop variable i%d "
                        "not in scope",
                        L.LoVar));
          continue;
        }
        LoI = LoI + scaled(It->second, L.LoVarCoeff);
      }
      // Values are LoExpr, LoExpr+Step, ... < Hi; an interval of
      // [min(LoExpr), Hi-1], clamped non-empty for possibly-dead bodies.
      Interval VarI{LoI.Lo, std::max(static_cast<long>(L.Hi) - 1, LoI.Lo)};
      Scope.emplace(L.Var, VarI);
      checkBlock(L.Body);
      Scope.erase(L.Var);
    }
  }
};

} // namespace

const char *cir::verifyKindName(VerifyKind K) {
  switch (K) {
  case VerifyKind::BadRegister:
    return "bad-register";
  case VerifyKind::UseBeforeDef:
    return "use-before-def";
  case VerifyKind::BadArity:
    return "bad-arity";
  case VerifyKind::WidthMismatch:
    return "width-mismatch";
  case VerifyKind::BadLane:
    return "bad-lane";
  case VerifyKind::BadShuffle:
    return "bad-shuffle";
  case VerifyKind::BadLoop:
    return "bad-loop";
  case VerifyKind::UnknownBuffer:
    return "unknown-buffer";
  case VerifyKind::ReadOnlyStore:
    return "read-only-store";
  case VerifyKind::MaskOutsideTail:
    return "mask-outside-tail";
  case VerifyKind::MissingMask:
    return "missing-mask";
  case VerifyKind::FmaMultiUse:
    return "fma-multi-use";
  case VerifyKind::OutOfBounds:
    return "out-of-bounds";
  case VerifyKind::Misaligned:
    return "misaligned";
  }
  return "?";
}

std::string VerifyError::str() const {
  return formatf("%s[%d]: %s: %s", Fn.c_str(), InstrIndex,
                 verifyKindName(Kind), Detail.c_str());
}

std::vector<VerifyError> cir::verify(const Function &F, int MaxErrors) {
  Verifier V(F, MaxErrors);
  return V.take();
}

std::optional<VerifyError> cir::verifyFirst(const Function &F) {
  std::vector<VerifyError> Errors = verify(F, 1);
  if (Errors.empty())
    return std::nullopt;
  return std::move(Errors.front());
}

static int countBlockInsts(const std::vector<Node> &Body) {
  int N = 0;
  for (const Node &Nd : Body) {
    if (std::holds_alternative<Inst>(Nd))
      ++N;
    else
      N += countBlockInsts(std::get<Loop>(Nd).Body);
  }
  return N;
}

void cir::verifyAssert(const Function &F, const char *Stage) {
#ifndef NDEBUG
  std::vector<VerifyError> Errors = verify(F);
  if (Errors.empty())
    return;
  std::fprintf(stderr, "C-IR verification failed after %s:\n", Stage);
  for (const VerifyError &E : Errors)
    std::fprintf(stderr, "  %s\n", E.str().c_str());
  std::abort();
#else
  (void)F;
  (void)Stage;
#endif
}

std::string cir::verifyReportText(const Function &F) {
  std::vector<VerifyError> Errors = verify(F);
  if (Errors.empty())
    return formatf("%s: ok (%d instructions, nu=%d%s)\n", F.Name.c_str(),
                   countBlockInsts(F.Body), F.Nu,
                   F.HasTailMask ? ", tail-masked" : "");
  std::string S;
  for (const VerifyError &E : Errors)
    S += E.str() + "\n";
  return S;
}
