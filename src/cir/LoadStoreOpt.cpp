//===- cir/LoadStoreOpt.cpp - the domain-specific load/store analysis -----==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Implements the paper's Stage-3 load/store analysis (Sec. 3.3, Figs. 11/12):
// memory is tracked at element granularity through constant addresses; a
// vector load whose lanes were all produced by earlier stores (or loads) is
// replaced by a shuffle/blend of the producing registers, a scalar load by a
// lane extract, and stores that are overwritten before any read are deleted.
//
//===----------------------------------------------------------------------===//

#include "cir/Passes.h"

#include "cir/Verify.h"

#include <cassert>
#include <functional>
#include <map>
#include <set>

using namespace slingen;
using namespace slingen::cir;

namespace {

/// Where a memory element currently lives in registers: lane -1 means a
/// scalar register holds it.
struct LaneVal {
  int Reg = -1;
  int Lane = -1;
  long Time = 0; ///< clock value at publication (for the age window)
};

using MemKey = std::pair<const Operand *, int>; // (buffer, element offset)

class LoadStorePass {
public:
  LoadStorePass(Function &F, int WindowInsts)
      : F(F), Window(WindowInsts), Defs(F.NumRegs, 0), NextReg(F.NumRegs) {
    countDefs(F.Body);
    RegIsVec = F.RegIsVec;
    Rename.resize(F.NumRegs);
    for (int I = 0; I < F.NumRegs; ++I)
      Rename[I] = I;
    runBlock(F.Body);
    deadStores(F.Body, /*LiveOutEverything=*/true);
    F.NumRegs = NextReg;
    F.RegIsVec = RegIsVec;
  }

private:
  Function &F;
  int Window;
  long Clock = 0;
  std::vector<int> Defs;
  std::vector<int> Rename;
  std::vector<bool> RegIsVec;
  int NextReg;
  std::map<MemKey, LaneVal> Mem;

  void countDefs(const std::vector<Node> &Body) {
    for (const Node &N : Body) {
      if (const auto *I = std::get_if<Inst>(&N)) {
        if (hasDst(I->K) && I->Dst >= 0)
          ++Defs[I->Dst];
      } else {
        countDefs(std::get<Loop>(N).Body);
      }
    }
  }

  bool singleDef(int R) const { return R >= 0 && Defs[R] == 1; }

  int freshVReg() {
    RegIsVec.push_back(true);
    Defs.push_back(1);
    Rename.push_back(NextReg);
    return NextReg++;
  }

  void invalidateBuffer(const Operand *Buf) {
    for (auto It = Mem.begin(); It != Mem.end();)
      It = It->first.first == Buf ? Mem.erase(It) : std::next(It);
  }

  void recordStore(const Operand *Buf, int Off, int Reg, int Lane) {
    if (singleDef(Reg))
      Mem[{Buf, Off}] = {Reg, Lane, Clock};
    else
      Mem.erase({Buf, Off});
  }

  /// Window-checked lookup: entries older than Window instructions are
  /// treated as absent. Bounding the forwarding distance keeps register
  /// live ranges local in the very large unrolled kernels -- both the C
  /// compiler's register allocator and the function splitter depend on
  /// that locality; the paper's Fig. 11/12 patterns span only a few
  /// statements, far below any reasonable window.
  const LaneVal *lookup(const Operand *Buf, int Off) {
    auto It = Mem.find({Buf, Off});
    if (It == Mem.end())
      return nullptr;
    if (Window > 0 && Clock - It->second.Time > Window) {
      Mem.erase(It);
      return nullptr;
    }
    return &It->second;
  }

  /// Tries to synthesize the value of a vector load (Lanes active lanes at
  /// Base..Base+Lanes-1 of Buf) out of live registers. Appends replacement
  /// instructions to Out and returns the register holding the value, or -1.
  int synthesize(const Operand *Buf, int Base, int Lanes,
                 std::vector<Node> &Out) {
    int Nu = F.Nu;
    LaneVal Vals[8];
    for (int L = 0; L < Lanes; ++L) {
      const LaneVal *V = lookup(Buf, Base + L);
      if (!V)
        return -1;
      Vals[L] = *V;
      if (Vals[L].Lane < 0)
        return -1; // scalar producer: handled only for scalar loads
    }
    // Collect the source registers (at most two for a shuffle).
    int SrcA = -1, SrcB = -1;
    for (int L = 0; L < Lanes; ++L) {
      int R = Vals[L].Reg;
      if (SrcA < 0 || R == SrcA)
        SrcA = R;
      else if (SrcB < 0 || R == SrcB)
        SrcB = R;
      else
        return -1;
    }
    // Build the selector; inactive lanes must be zero (VLoad semantics).
    std::vector<int> Sel(Nu, -1);
    bool Identity = Lanes == Nu;
    for (int L = 0; L < Lanes; ++L) {
      bool FromB = SrcB >= 0 && Vals[L].Reg == SrcB;
      Sel[L] = (FromB ? Nu : 0) + Vals[L].Lane;
      if (FromB || Vals[L].Lane != L)
        Identity = false;
    }
    if (Identity)
      return SrcA; // direct reuse, no instruction needed
    Inst Sh;
    Sh.K = Op::VShuffle;
    Sh.Dst = freshVReg();
    Sh.A = SrcA;
    Sh.B = SrcB < 0 ? SrcA : SrcB;
    Sh.Sel = std::move(Sel);
    Out.push_back(std::move(Sh));
    return Out.empty() ? -1 : std::get<Inst>(Out.back()).Dst;
  }

  void runBlock(std::vector<Node> &Body) {
    std::vector<Node> Out;
    for (Node &N : Body) {
      if (auto *LP = std::get_if<Loop>(&N)) {
        // Conservative barriers: forget everything around loops.
        Mem.clear();
        runBlock(LP->Body);
        Mem.clear();
        Out.push_back(std::move(N));
        continue;
      }
      Inst I = std::move(std::get<Inst>(N));
      ++Clock;
      if (I.A >= 0)
        I.A = Rename[I.A];
      if (I.B >= 0)
        I.B = Rename[I.B];
      if (I.C >= 0)
        I.C = Rename[I.C];

      switch (I.K) {
      case Op::SStore:
        if (I.Address.isConstant()) {
          recordStore(I.Address.Buf, I.Address.Const, I.A, -1);
        } else {
          invalidateBuffer(I.Address.Buf);
        }
        Out.push_back(std::move(I));
        continue;
      case Op::VStore:
        if (I.Address.isConstant()) {
          for (int L = 0; L < I.Lanes; ++L)
            recordStore(I.Address.Buf, I.Address.Const + L, I.A, L);
        } else {
          invalidateBuffer(I.Address.Buf);
        }
        Out.push_back(std::move(I));
        continue;
      case Op::VStoreStrided:
        if (I.Address.isConstant()) {
          for (int L = 0; L < I.Lanes; ++L)
            recordStore(I.Address.Buf, I.Address.Const + L * I.Stride, I.A,
                        L);
        } else {
          invalidateBuffer(I.Address.Buf);
        }
        Out.push_back(std::move(I));
        continue;
      case Op::VStoreStridedMasked:
        // Runtime-masked coverage is unknown at compile time: treat as a
        // may-write of the whole buffer, never a forwarding source.
        invalidateBuffer(I.Address.Buf);
        Out.push_back(std::move(I));
        continue;
      case Op::SLoad: {
        if (I.Address.isConstant()) {
          const LaneVal *V = lookup(I.Address.Buf, I.Address.Const);
          if (V) {
            if (V->Lane < 0 && singleDef(I.Dst)) {
              // Forward the scalar directly.
              Rename[I.Dst] = V->Reg;
              continue;
            }
            if (V->Lane >= 0) {
              // Replace the load with a lane extract.
              Inst Ex;
    Ex.K = Op::VExtract;
              Ex.Dst = I.Dst;
              Ex.A = V->Reg;
              Ex.Lanes = V->Lane;
              Out.push_back(std::move(Ex));
              continue;
            }
          }
          // A kept load publishes its destination for later reuse.
          if (singleDef(I.Dst))
            Mem[{I.Address.Buf, I.Address.Const}] = {I.Dst, -1, Clock};
        }
        Out.push_back(std::move(I));
        continue;
      }
      case Op::VLoad: {
        if (I.Address.isConstant()) {
          int R = synthesize(I.Address.Buf, I.Address.Const, I.Lanes, Out);
          if (R >= 0) {
            if (singleDef(I.Dst)) {
              Rename[I.Dst] = R;
              continue;
            }
          }
          if (singleDef(I.Dst))
            for (int L = 0; L < I.Lanes; ++L)
              Mem[{I.Address.Buf, I.Address.Const + L}] = {I.Dst, L, Clock};
        }
        Out.push_back(std::move(I));
        continue;
      }
      case Op::VLoadStrided: {
        if (I.Address.isConstant() && singleDef(I.Dst))
          for (int L = 0; L < I.Lanes; ++L)
            Mem[{I.Address.Buf, I.Address.Const + L * I.Stride}] = {
                I.Dst, L, Clock};
        Out.push_back(std::move(I));
        continue;
      }
      default:
        Out.push_back(std::move(I));
        continue;
      }
    }
    Body = std::move(Out);
  }

  /// Backward dead-store elimination within straight-line regions: a store
  /// all of whose elements are overwritten before any read (and before any
  /// loop) is removed.
  void deadStores(std::vector<Node> &Body, bool LiveOutEverything) {
    std::set<MemKey> Overwritten;
    std::vector<Node> Out;
    for (auto It = Body.rbegin(); It != Body.rend(); ++It) {
      Node &N = *It;
      if (auto *LP = std::get_if<Loop>(&N)) {
        deadStores(LP->Body, true);
        Overwritten.clear();
        Out.push_back(std::move(N));
        continue;
      }
      Inst &I = std::get<Inst>(N);
      auto Covered = [&](const Operand *Buf, int Off, int Count,
                         int Stride) {
        for (int L = 0; L < Count; ++L)
          if (!Overwritten.count({Buf, Off + L * Stride}))
            return false;
        return true;
      };
      auto MarkStore = [&](const Operand *Buf, int Off, int Count,
                           int Stride) {
        for (int L = 0; L < Count; ++L)
          Overwritten.insert({Buf, Off + L * Stride});
      };
      auto MarkRead = [&](const Operand *Buf, int Off, int Count,
                          int Stride) {
        for (int L = 0; L < Count; ++L)
          Overwritten.erase({Buf, Off + L * Stride});
      };
      switch (I.K) {
      case Op::SStore:
        if (I.Address.isConstant()) {
          if (Covered(I.Address.Buf, I.Address.Const, 1, 1))
            continue; // dead
          MarkStore(I.Address.Buf, I.Address.Const, 1, 1);
        } else {
          Overwritten.clear();
        }
        break;
      case Op::VStore:
        if (I.Address.isConstant()) {
          if (Covered(I.Address.Buf, I.Address.Const, I.Lanes, 1))
            continue;
          MarkStore(I.Address.Buf, I.Address.Const, I.Lanes, 1);
        } else {
          Overwritten.clear();
        }
        break;
      case Op::VStoreStrided:
        if (I.Address.isConstant()) {
          if (Covered(I.Address.Buf, I.Address.Const, I.Lanes, I.Stride))
            continue;
          MarkStore(I.Address.Buf, I.Address.Const, I.Lanes, I.Stride);
        } else {
          Overwritten.clear();
        }
        break;
      case Op::VStoreStridedMasked:
      case Op::VLoadStridedMasked:
        // Unknown runtime coverage: may write less than it claims / may
        // read anything -- never prove an earlier store dead across one.
        Overwritten.clear();
        break;
      case Op::SLoad:
        if (I.Address.isConstant())
          MarkRead(I.Address.Buf, I.Address.Const, 1, 1);
        else
          Overwritten.clear();
        break;
      case Op::VLoad:
        if (I.Address.isConstant())
          MarkRead(I.Address.Buf, I.Address.Const, I.Lanes, 1);
        else
          Overwritten.clear();
        break;
      case Op::VLoadStrided:
        if (I.Address.isConstant())
          MarkRead(I.Address.Buf, I.Address.Const, I.Lanes, I.Stride);
        else
          Overwritten.clear();
        break;
      default:
        break;
      }
      Out.push_back(std::move(N));
    }
    std::reverse(Out.begin(), Out.end());
    Body = std::move(Out);
    (void)LiveOutEverything;
  }
};

} // namespace

void cir::loadStoreOpt(Function &F, int WindowInsts) {
  LoadStorePass Pass(F, WindowInsts);
  verifyAssert(F, "load-store-opt");
}
