//===- cir/Passes.cpp -----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cir/Passes.h"

#include "cir/Verify.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <set>

using namespace slingen;
using namespace slingen::cir;

//===----------------------------------------------------------------------===//
// Shared helpers.
//===----------------------------------------------------------------------===//

namespace {

void forEachInst(std::vector<Node> &Body,
                 const std::function<void(Inst &)> &Fn) {
  for (Node &N : Body) {
    if (auto *I = std::get_if<Inst>(&N))
      Fn(*I);
    else
      forEachInst(std::get<Loop>(N).Body, Fn);
  }
}

void forEachInst(const std::vector<Node> &Body,
                 const std::function<void(const Inst &)> &Fn) {
  for (const Node &N : Body) {
    if (const auto *I = std::get_if<Inst>(&N))
      Fn(*I);
    else
      forEachInst(std::get<Loop>(N).Body, Fn);
  }
}

/// Number of definitions of each register across the whole function.
std::vector<int> defCounts(const Function &F) {
  std::vector<int> Defs(F.NumRegs, 0);
  forEachInst(F.Body, [&](const Inst &I) {
    if (hasDst(I.K) && I.Dst >= 0)
      ++Defs[I.Dst];
  });
  return Defs;
}

void applyRename(Inst &I, const std::vector<int> &Rename) {
  auto Rw = [&](int &R) {
    if (R >= 0)
      R = Rename[R];
  };
  Rw(I.A);
  Rw(I.B);
  Rw(I.C);
}

} // namespace

int cir::countInsts(const Function &F) {
  int N = 0;
  forEachInst(F.Body, [&](const Inst &) { ++N; });
  return N;
}

//===----------------------------------------------------------------------===//
// Loop unrolling.
//===----------------------------------------------------------------------===//

namespace {

void substVar(std::vector<Node> &Body, int Var, int Value) {
  for (Node &N : Body) {
    if (auto *I = std::get_if<Inst>(&N)) {
      auto &Terms = I->Address.Terms;
      for (auto It = Terms.begin(); It != Terms.end();) {
        if (It->first == Var) {
          I->Address.Const += It->second * Value;
          It = Terms.erase(It);
        } else {
          ++It;
        }
      }
    } else {
      Loop &L = std::get<Loop>(N);
      if (L.LoVar == Var) {
        L.Lo += L.LoVarCoeff * Value;
        L.LoVar = -1;
        L.LoVarCoeff = 0;
      }
      substVar(L.Body, Var, Value);
    }
  }
}

void unrollBlock(std::vector<Node> &Body, int MaxTrip) {
  std::vector<Node> Out;
  for (Node &N : Body) {
    if (auto *I = std::get_if<Inst>(&N)) {
      Out.push_back(std::move(*I));
      continue;
    }
    Loop &L = std::get<Loop>(N);
    unrollBlock(L.Body, MaxTrip);
    // Loops whose lower bound depends on an outer (non-unrolled) variable
    // have an unknown trip count and are kept.
    int Trip = L.Step > 0 ? (L.Hi - L.Lo + L.Step - 1) / L.Step : 0;
    if (Trip < 0)
      Trip = 0;
    if (Trip > MaxTrip || L.LoVar >= 0) {
      Out.push_back(std::move(L));
      continue;
    }
    for (int V = L.Lo; V < L.Hi; V += L.Step) {
      std::vector<Node> Copy = L.Body; // deep copy (value semantics)
      substVar(Copy, L.Var, V);
      for (Node &C : Copy)
        Out.push_back(std::move(C));
    }
  }
  Body = std::move(Out);
}

} // namespace

void cir::unrollLoops(Function &F, int MaxTrip) {
  unrollBlock(F.Body, MaxTrip);
}

//===----------------------------------------------------------------------===//
// Local value numbering (CSE + copy propagation).
//===----------------------------------------------------------------------===//

namespace {

struct CseKey {
  Op K;
  int A, B, C;
  double Imm;
  int Lanes, Stride;
  std::vector<int> Sel;

  bool operator<(const CseKey &O) const {
    return std::tie(K, A, B, C, Imm, Lanes, Stride, Sel) <
           std::tie(O.K, O.A, O.B, O.C, O.Imm, O.Lanes, O.Stride, O.Sel);
  }
};

class CsePass {
public:
  CsePass(Function &F) : Defs(defCounts(F)), Rename(F.NumRegs) {
    for (int I = 0; I < F.NumRegs; ++I)
      Rename[I] = I;
    runBlock(F.Body);
  }

private:
  std::vector<int> Defs;
  std::vector<int> Rename;

  bool singleDef(int R) const { return R >= 0 && Defs[R] == 1; }

  void runBlock(std::vector<Node> &Body) {
    // Value table local to this straight-line region.
    std::map<CseKey, int> Table;
    std::vector<Node> Out;
    for (Node &N : Body) {
      if (auto *LP = std::get_if<Loop>(&N)) {
        runBlock(LP->Body);
        Out.push_back(std::move(N));
        // Registers redefined in the loop invalidate nothing here because
        // table entries only involve single-def registers.
        continue;
      }
      Inst I = std::move(std::get<Inst>(N));
      applyRename(I, Rename);
      bool Eligible = isPure(I.K) && hasDst(I.K) && singleDef(I.Dst) &&
                      (I.A < 0 || singleDef(I.A)) &&
                      (I.B < 0 || singleDef(I.B)) &&
                      (I.C < 0 || singleDef(I.C));
      if (Eligible) {
        // Canonicalize commutative operations.
        if ((I.K == Op::SAdd || I.K == Op::SMul || I.K == Op::VAdd ||
             I.K == Op::VMul) &&
            I.A > I.B)
          std::swap(I.A, I.B);
        CseKey Key{I.K, I.A, I.B, I.C, I.Imm, I.Lanes, I.Stride, I.Sel};
        auto It = Table.find(Key);
        if (It != Table.end()) {
          Rename[I.Dst] = It->second;
          continue; // drop the duplicate instruction
        }
        // Identity shuffles are copies.
        if (I.K == Op::VShuffle) {
          bool Identity = true;
          for (size_t L = 0; L < I.Sel.size(); ++L)
            Identity &= I.Sel[L] == static_cast<int>(L);
          if (Identity && singleDef(I.A)) {
            Rename[I.Dst] = I.A;
            continue;
          }
        }
        Table.emplace(std::move(Key), I.Dst);
      }
      Out.push_back(std::move(I));
    }
    Body = std::move(Out);
  }
};

} // namespace

void cir::cse(Function &F) { CsePass Pass(F); }

//===----------------------------------------------------------------------===//
// Dead code elimination.
//===----------------------------------------------------------------------===//

namespace {

bool dceOnce(Function &F) {
  std::vector<bool> Used(F.NumRegs, false);
  forEachInst(F.Body, [&](const Inst &I) {
    if (I.A >= 0)
      Used[I.A] = true;
    if (I.B >= 0)
      Used[I.B] = true;
    if (I.C >= 0)
      Used[I.C] = true;
  });
  bool Changed = false;
  std::function<void(std::vector<Node> &)> Walk =
      [&](std::vector<Node> &Body) {
        std::vector<Node> Out;
        for (Node &N : Body) {
          if (auto *LP = std::get_if<Loop>(&N)) {
            Walk(LP->Body);
            if (!LP->Body.empty())
              Out.push_back(std::move(N));
            else
              Changed = true;
            continue;
          }
          const Inst &I = std::get<Inst>(N);
          bool Removable =
              hasDst(I.K) && !Used[I.Dst] && I.K != Op::SStore;
          // Loads are side-effect free in this IR (no traps on generated
          // addresses), so unused loads die too.
          if (Removable) {
            Changed = true;
            continue;
          }
          Out.push_back(std::move(N));
        }
        Body = std::move(Out);
      };
  Walk(F.Body);
  return Changed;
}

} // namespace

void cir::dce(Function &F) {
  while (dceOnce(F))
    ;
}

//===----------------------------------------------------------------------===//
// FMA contraction.
//===----------------------------------------------------------------------===//

namespace {

class FmaContract {
public:
  FmaContract(Function &F) : Defs(defCounts(F)), Uses(F.NumRegs, 0) {
    forEachInst(F.Body, [&](const Inst &I) {
      if (I.A >= 0)
        ++Uses[I.A];
      if (I.B >= 0)
        ++Uses[I.B];
      if (I.C >= 0)
        ++Uses[I.C];
    });
    runBlock(F.Body);
  }

private:
  std::vector<int> Defs;
  std::vector<int> Uses;

  bool singleDef(int R) const { return R >= 0 && Defs[R] == 1; }

  /// A VMul is foldable when it is the unique definition of a register with
  /// exactly one consumer and its operands are single-def (so re-reading
  /// them at the consumer yields the same values).
  bool foldable(const Inst &I) const {
    return I.K == Op::VMul && singleDef(I.Dst) && Uses[I.Dst] == 1 &&
           singleDef(I.A) && singleDef(I.B);
  }

  void runBlock(std::vector<Node> &Body) {
    // Pending[r] = index in Body of the foldable VMul defining r. Entries
    // die at the register's (unique) first use or at a loop boundary.
    std::map<int, size_t> Pending;
    std::set<size_t> Dead;
    for (size_t Idx = 0; Idx < Body.size(); ++Idx) {
      if (auto *LP = std::get_if<Loop>(&Body[Idx])) {
        runBlock(LP->Body);
        Pending.clear();
        continue;
      }
      Inst &I = std::get<Inst>(Body[Idx]);
      auto Fuse = [&](int MulReg, Op K, int COperand) {
        auto It = Pending.find(MulReg);
        if (It == Pending.end())
          return false;
        const Inst &M = std::get<Inst>(Body[It->second]);
        Dead.insert(It->second);
        Pending.erase(It);
        I.K = K;
        I.A = M.A;
        I.B = M.B;
        I.C = COperand;
        return true;
      };
      bool Fused = false;
      if (I.K == Op::VAdd)
        Fused = Fuse(I.A, Op::VFma, I.B) || Fuse(I.B, Op::VFma, I.A);
      else if (I.K == Op::VSub)
        Fused = Fuse(I.B, Op::VFnma, I.A); // Dst = A - (mul) = C - a*b
      if (!Fused) {
        // The unique consumer was not a fusable add/sub: retire pending
        // entries for any register this instruction reads.
        for (int R : {I.A, I.B, I.C})
          if (R >= 0)
            Pending.erase(R);
      }
      if (foldable(I))
        Pending[I.Dst] = Idx;
    }
    if (Dead.empty())
      return;
    std::vector<Node> Out;
    Out.reserve(Body.size() - Dead.size());
    for (size_t Idx = 0; Idx < Body.size(); ++Idx)
      if (!Dead.count(Idx))
        Out.push_back(std::move(Body[Idx]));
    Body = std::move(Out);
  }
};

} // namespace

void cir::contractFma(Function &F) {
  FmaContract Pass(F);
  verifyAssert(F, "contract-fma");
}

void cir::optimize(Function &F, int UnrollMaxTrip) {
  unrollLoops(F, UnrollMaxTrip);
  verifyAssert(F, "unroll-loops");
  cse(F);
  verifyAssert(F, "cse");
  loadStoreOpt(F); // hooks internally
  cse(F);
  verifyAssert(F, "cse-2");
  dce(F);
  verifyAssert(F, "dce");
}
