//===- cir/CIR.cpp --------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cir/CIR.h"

#include "support/Format.h"

#include <cassert>

using namespace slingen;
using namespace slingen::cir;

bool cir::isStore(Op O) {
  return O == Op::SStore || O == Op::VStore || O == Op::VStoreStrided ||
         O == Op::VStoreStridedMasked;
}

bool cir::hasDst(Op O) { return !isStore(O); }

bool cir::isPure(Op O) {
  switch (O) {
  case Op::SStore:
  case Op::VStore:
  case Op::VStoreStrided:
  case Op::VStoreStridedMasked:
  case Op::SLoad:
  case Op::VLoad:
  case Op::VLoadStrided:
  case Op::VLoadStridedMasked:
    return false;
  default:
    return true;
  }
}

std::string Addr::str() const {
  std::string S = Buf ? Buf->Name : "<null>";
  S += formatf("[%d", Const);
  for (auto [Var, Coeff] : Terms)
    S += formatf(" + %d*i%d", Coeff, Var);
  S += "]";
  return S;
}

static const char *opName(Op K) {
  switch (K) {
  case Op::SConst:
    return "sconst";
  case Op::SLoad:
    return "sload";
  case Op::SStore:
    return "sstore";
  case Op::SAdd:
    return "sadd";
  case Op::SSub:
    return "ssub";
  case Op::SMul:
    return "smul";
  case Op::SDiv:
    return "sdiv";
  case Op::SSqrt:
    return "ssqrt";
  case Op::SNeg:
    return "sneg";
  case Op::VConst:
    return "vconst";
  case Op::VLoad:
    return "vload";
  case Op::VLoadStrided:
    return "vload.s";
  case Op::VLoadStridedMasked:
    return "vload.sm";
  case Op::VStore:
    return "vstore";
  case Op::VStoreStrided:
    return "vstore.s";
  case Op::VStoreStridedMasked:
    return "vstore.sm";
  case Op::VBroadcast:
    return "vbcast";
  case Op::VAdd:
    return "vadd";
  case Op::VSub:
    return "vsub";
  case Op::VMul:
    return "vmul";
  case Op::VDiv:
    return "vdiv";
  case Op::VSqrt:
    return "vsqrt";
  case Op::VNeg:
    return "vneg";
  case Op::VFma:
    return "vfma";
  case Op::VFnma:
    return "vfnma";
  case Op::VExtract:
    return "vextract";
  case Op::VReduceAdd:
    return "vredadd";
  case Op::VShuffle:
    return "vshuf";
  }
  return "?";
}

std::string Inst::str() const {
  std::string S;
  if (hasDst(K))
    S += formatf("r%d = ", Dst);
  S += opName(K);
  switch (K) {
  case Op::SConst:
  case Op::VConst:
    S += formatf(" %g", Imm);
    break;
  case Op::SLoad:
    S += " " + Address.str();
    break;
  case Op::SStore:
    S += formatf(" %s, r%d", Address.str().c_str(), A);
    break;
  case Op::VLoad:
    S += formatf(" %s, lanes=%d", Address.str().c_str(), Lanes);
    break;
  case Op::VLoadStrided:
  case Op::VLoadStridedMasked:
    S += formatf(" %s, stride=%d, lanes=%d", Address.str().c_str(), Stride,
                 Lanes);
    break;
  case Op::VStore:
    S += formatf(" %s, r%d, lanes=%d", Address.str().c_str(), A, Lanes);
    break;
  case Op::VStoreStrided:
  case Op::VStoreStridedMasked:
    S += formatf(" %s, r%d, stride=%d, lanes=%d", Address.str().c_str(), A,
                 Stride, Lanes);
    break;
  case Op::VExtract:
    S += formatf(" r%d, lane=%d", A, Lanes);
    break;
  case Op::VShuffle: {
    S += formatf(" r%d, r%d, [", A, B);
    for (size_t I = 0; I < Sel.size(); ++I)
      S += formatf("%s%d", I ? " " : "", Sel[I]);
    S += "]";
    break;
  }
  case Op::VFma:
  case Op::VFnma:
    S += formatf(" r%d, r%d, r%d", A, B, C);
    break;
  default:
    if (A >= 0)
      S += formatf(" r%d", A);
    if (B >= 0)
      S += formatf(", r%d", B);
    break;
  }
  return S;
}

static void printBlock(const std::vector<Node> &Body, CodeSink &Sink) {
  for (const Node &N : Body) {
    if (const auto *I = std::get_if<Inst>(&N)) {
      Sink.line(I->str());
      continue;
    }
    const Loop &L = std::get<Loop>(N);
    if (L.LoVar >= 0)
      Sink.line(formatf("for i%d = %d+%d*i%d:%d:%d {", L.Var, L.Lo,
                        L.LoVarCoeff, L.LoVar, L.Hi, L.Step));
    else
      Sink.line(formatf("for i%d = %d:%d:%d {", L.Var, L.Lo, L.Hi, L.Step));
    Sink.indent();
    printBlock(L.Body, Sink);
    Sink.dedent();
    Sink.line("}");
  }
}

std::string Function::str() const {
  CodeSink Sink;
  std::string Header = formatf("func %s(nu=%d; ", Name.c_str(), Nu);
  for (size_t I = 0; I < Params.size(); ++I)
    Header += (I ? ", " : "") + Params[I]->Name;
  Header += ") {";
  Sink.line(Header);
  Sink.indent();
  printBlock(Body, Sink);
  Sink.dedent();
  Sink.line("}");
  return Sink.str();
}

FuncBuilder::FuncBuilder(std::string Name, int Nu) {
  F.Name = std::move(Name);
  F.Nu = Nu;
  BlockStack.push_back(&F.Body);
}

int FuncBuilder::newSReg() {
  F.RegIsVec.push_back(false);
  return F.NumRegs++;
}

int FuncBuilder::newVReg() {
  F.RegIsVec.push_back(true);
  return F.NumRegs++;
}

int FuncBuilder::emit(Inst I) {
  int Dst = I.Dst;
  cur().push_back(std::move(I));
  return Dst;
}

int FuncBuilder::beginLoop(int Lo, int Hi, int Step) {
  return beginLoopAffine(Lo, -1, 0, Hi, Step);
}

int FuncBuilder::beginLoopAffine(int Lo, int LoVar, int LoVarCoeff, int Hi,
                                 int Step) {
  Loop L;
  L.Var = F.NumVars++;
  L.Lo = Lo;
  L.Hi = Hi;
  L.Step = Step;
  L.LoVar = LoVar;
  L.LoVarCoeff = LoVarCoeff;
  cur().push_back(std::move(L));
  Loop &Placed = std::get<Loop>(cur().back());
  BlockStack.push_back(&Placed.Body);
  return Placed.Var;
}

void FuncBuilder::endLoop() {
  assert(BlockStack.size() > 1 && "endLoop without beginLoop");
  BlockStack.pop_back();
}

Addr FuncBuilder::addr(const Operand *Op, int Const,
                       std::vector<std::pair<int, int>> Terms) const {
  Addr A;
  A.Buf = Op->root();
  A.Const = Const;
  A.Terms = std::move(Terms);
  return A;
}

int FuncBuilder::sconst(double V) {
  Inst I;
    I.K = Op::SConst;
  I.Dst = newSReg();
  I.Imm = V;
  return emit(std::move(I));
}

int FuncBuilder::sload(Addr A) {
  Inst I;
    I.K = Op::SLoad;
  I.Dst = newSReg();
  I.Address = std::move(A);
  return emit(std::move(I));
}

void FuncBuilder::sstore(Addr A, int Val) {
  Inst I;
    I.K = Op::SStore;
  I.Address = std::move(A);
  I.A = Val;
  emit(std::move(I));
}

int FuncBuilder::sbin(Op K, int A, int B) {
  Inst I;
  I.K = K;
  I.Dst = newSReg();
  I.A = A;
  I.B = B;
  return emit(std::move(I));
}

int FuncBuilder::ssqrt(int A) {
  Inst I;
    I.K = Op::SSqrt;
  I.Dst = newSReg();
  I.A = A;
  return emit(std::move(I));
}

int FuncBuilder::sneg(int A) {
  Inst I;
    I.K = Op::SNeg;
  I.Dst = newSReg();
  I.A = A;
  return emit(std::move(I));
}

int FuncBuilder::vconst(double V) {
  Inst I;
    I.K = Op::VConst;
  I.Dst = newVReg();
  I.Imm = V;
  return emit(std::move(I));
}

int FuncBuilder::vload(Addr A, int Lanes) {
  Inst I;
    I.K = Op::VLoad;
  I.Dst = newVReg();
  I.Address = std::move(A);
  I.Lanes = Lanes;
  return emit(std::move(I));
}

int FuncBuilder::vloadStrided(Addr A, int Stride, int Lanes) {
  Inst I;
    I.K = Op::VLoadStrided;
  I.Dst = newVReg();
  I.Address = std::move(A);
  I.Stride = Stride;
  I.Lanes = Lanes;
  return emit(std::move(I));
}

int FuncBuilder::vloadStridedMasked(Addr A, int Stride, int Lanes) {
  Inst I;
  I.K = Op::VLoadStridedMasked;
  I.Dst = newVReg();
  I.Address = std::move(A);
  I.Stride = Stride;
  I.Lanes = Lanes;
  return emit(std::move(I));
}

void FuncBuilder::vstore(Addr A, int Val, int Lanes) {
  Inst I;
    I.K = Op::VStore;
  I.Address = std::move(A);
  I.A = Val;
  I.Lanes = Lanes;
  emit(std::move(I));
}

void FuncBuilder::vstoreStrided(Addr A, int Val, int Stride, int Lanes) {
  Inst I;
    I.K = Op::VStoreStrided;
  I.Address = std::move(A);
  I.A = Val;
  I.Stride = Stride;
  I.Lanes = Lanes;
  emit(std::move(I));
}

void FuncBuilder::vstoreStridedMasked(Addr A, int Val, int Stride,
                                      int Lanes) {
  Inst I;
  I.K = Op::VStoreStridedMasked;
  I.Address = std::move(A);
  I.A = Val;
  I.Stride = Stride;
  I.Lanes = Lanes;
  emit(std::move(I));
}

int FuncBuilder::vbroadcast(int SReg) {
  Inst I;
    I.K = Op::VBroadcast;
  I.Dst = newVReg();
  I.A = SReg;
  return emit(std::move(I));
}

int FuncBuilder::vbin(Op K, int A, int B) {
  Inst I;
  I.K = K;
  I.Dst = newVReg();
  I.A = A;
  I.B = B;
  return emit(std::move(I));
}

int FuncBuilder::vfma(int A, int B, int C) {
  Inst I;
    I.K = Op::VFma;
  I.Dst = newVReg();
  I.A = A;
  I.B = B;
  I.C = C;
  return emit(std::move(I));
}

int FuncBuilder::vfnma(int A, int B, int C) {
  Inst I;
  I.K = Op::VFnma;
  I.Dst = newVReg();
  I.A = A;
  I.B = B;
  I.C = C;
  return emit(std::move(I));
}

void FuncBuilder::vfmaInto(int Dst, int A, int B, int C) {
  Inst I;
    I.K = Op::VFma;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  I.C = C;
  emit(std::move(I));
}

void FuncBuilder::vbinInto(int Dst, Op K, int A, int B) {
  Inst I;
  I.K = K;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  emit(std::move(I));
}

void FuncBuilder::sbinInto(int Dst, Op K, int A, int B) {
  Inst I;
  I.K = K;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  emit(std::move(I));
}

int FuncBuilder::vextract(int A, int Lane) {
  Inst I;
    I.K = Op::VExtract;
  I.Dst = newSReg();
  I.A = A;
  I.Lanes = Lane;
  return emit(std::move(I));
}

int FuncBuilder::vreduceAdd(int A) {
  Inst I;
    I.K = Op::VReduceAdd;
  I.Dst = newSReg();
  I.A = A;
  return emit(std::move(I));
}

int FuncBuilder::vshuffle(int A, int B, std::vector<int> Sel) {
  assert(static_cast<int>(Sel.size()) == F.Nu && "selector size != nu");
  Inst I;
    I.K = Op::VShuffle;
  I.Dst = newVReg();
  I.A = A;
  I.B = B;
  I.Sel = std::move(Sel);
  return emit(std::move(I));
}

Function FuncBuilder::take(std::vector<const Operand *> Params) {
  assert(BlockStack.size() == 1 && "unclosed loop");
  F.Params = std::move(Params);
  return std::move(F);
}
