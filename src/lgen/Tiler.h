//===- lgen/Tiler.h - sBLAC tiling and vectorization ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LGen compilation layer (paper Sec. 2.1 / Stage 2): a single sBLAC on
/// fixed-size operand views is decomposed into nu-wide register tiles mapped
/// onto the nu-BLAC codelets, with matrix structure propagated to (a) skip
/// zero tiles and terms, (b) restrict reduction ranges over triangular
/// factors, and (c) compute only the stored triangle of symmetric outputs.
/// Tiles are emitted either fully unrolled (small statements; enables the
/// Stage-3 load/store analysis) or as C-IR loops (large statements).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LGEN_TILER_H
#define SLINGEN_LGEN_TILER_H

#include "cir/CIR.h"
#include "expr/Program.h"

namespace slingen {
namespace lgen {

struct TileOptions {
  int Nu = 4; ///< vector width (1 = scalar code)
  /// Statements whose tile count is at most this are emitted fully
  /// unrolled; larger ones become tile loops. Autotuning explores this.
  int UnrollTiles = 32;
  /// Reduction (inner) dimensions longer than this become loops instead of
  /// unrolled FMA chains.
  int UnrollK = 16;
};

/// A multiplicative factor of a term: a (possibly transposed) operand view.
struct Factor {
  const ViewExpr *V = nullptr;
  bool Trans = false;

  /// Structure of op(V).
  StructureKind effStructure() const {
    StructureKind S = V->structure();
    return Trans ? transposedStructure(S) : S;
  }
  int rows() const { return Trans ? V->cols() : V->rows(); }
  int cols() const { return Trans ? V->rows() : V->cols(); }
};

/// One additive term: Sign * (product of scalar factors) * (product of at
/// most two matrix/vector factors).
struct Term {
  int Sign = 1;
  std::vector<Factor> Mat;          ///< matrix/vector factors (size 0..2)
  std::vector<ExprPtr> Sca;         ///< scalar factors (1x1 views / consts)
};

/// Flattens an sBLAC right-hand side into a sum of terms. Returns false for
/// shapes the tiler does not accept (divisions or square roots inside
/// matrix statements, products with more than two matrix factors --
/// SLinGen's Stage 2 splits those with temporaries beforehand).
bool flattenRhs(const ExprPtr &E, std::vector<Term> &Out);

/// Compiles one sBLAC statement into C-IR, appending to \p B.
void compileSBlac(cir::FuncBuilder &B, const EqStmt &S,
                  const TileOptions &Opt);

/// Compiles a statement whose operands are all scalars (1x1), including
/// divisions and square roots.
void compileScalarStmt(cir::FuncBuilder &B, const EqStmt &S);

/// Emits the full-storage normalization for a freshly computed structured
/// view: mirrors the computed triangle of symmetric views, zeroes the
/// non-stored triangle of triangular views (see DESIGN.md).
void emitStructureNormalize(cir::FuncBuilder &B, const ViewExpr &V,
                            const TileOptions &Opt);

} // namespace lgen
} // namespace slingen

#endif // SLINGEN_LGEN_TILER_H
