//===- lgen/NuBlacs.h - vector codelet building blocks --------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Loaders/Storers and nu-BLAC building blocks of LGen (paper Sec. 2.1):
/// span loads/stores through operand views (with transposition, leftover
/// masking, and strided column access), and the register-level kernels the
/// tiler composes (broadcast-FMA matrix tiles, dot reductions, axpy spans).
/// Positions may be affine in loop variables so the same codelets serve both
/// fully unrolled and loop-materialized tilings.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LGEN_NUBLACS_H
#define SLINGEN_LGEN_NUBLACS_H

#include "cir/CIR.h"
#include "expr/Expr.h"

namespace slingen {
namespace lgen {

/// An affine position Const + sum coeff_i * loopvar_i (element units).
struct Pos {
  int Const = 0;
  std::vector<std::pair<int, int>> Terms;

  Pos() = default;
  /*implicit*/ Pos(int C) : Const(C) {}
  static Pos var(int VarId, int Coeff = 1, int C = 0) {
    Pos P(C);
    P.Terms.push_back({VarId, Coeff});
    return P;
  }
  Pos plus(int D) const {
    Pos P = *this;
    P.Const += D;
    return P;
  }
};

/// Address of logical element (R, C) of the (possibly transposed) view \p V.
cir::Addr elemAddr(const ViewExpr &V, bool Trans, Pos R, Pos C);

/// Loads \p Count consecutive logical elements of op(V) starting at (R, C),
/// advancing along columns when \p AlongCols (a row span) or along rows
/// otherwise. Chooses contiguous vs strided loads from the physical layout.
/// Lanes beyond Count are zero.
int loadSpan(cir::FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R, Pos C,
             int Count, bool AlongCols);

/// Stores the first \p Count lanes of \p Reg to the logical span.
void storeSpan(cir::FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R,
               Pos C, int Count, bool AlongCols, int Reg);

/// Loads logical element (R, C) of op(V) into a scalar register.
int loadElem(cir::FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R,
             Pos C);

void storeElem(cir::FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R,
               Pos C, int Reg);

} // namespace lgen
} // namespace slingen

#endif // SLINGEN_LGEN_NUBLACS_H
