//===- lgen/VectorRules.cpp -----------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Run detection: consecutive scalar statements whose expression trees are
// identical up to a uniform (dr, dc) shift of a subset of their element
// views are merged into one span statement. Positions that do not shift
// must be bitwise-identical scalars (the common divisor/multiplier of rules
// R0/R1). A top-level division by a common scalar becomes a reciprocal
// temporary plus a scaling sBLAC (rule R1).
//
//===----------------------------------------------------------------------===//

#include "lgen/VectorRules.h"

#include <cassert>
#include <optional>

using namespace slingen;
using namespace slingen::lgen;

namespace {

/// Collects the 1x1 views of a scalar expression in deterministic tree
/// order, also producing a shape skeleton so trees can be compared.
void skeleton(const ExprPtr &E, std::string &Skel,
              std::vector<const ViewExpr *> &Views) {
  switch (E->kind()) {
  case ExprKind::View:
    Skel += 'v';
    Views.push_back(cast<ViewExpr>(E.get()));
    return;
  case ExprKind::Const:
    Skel += 'c';
    // Constants are compared via the view-position mechanism being absent;
    // encode the value in the skeleton for equality.
    Skel += std::to_string(cast<ConstExpr>(E.get())->Value);
    return;
  case ExprKind::Trans:
  case ExprKind::Neg:
  case ExprKind::Sqrt:
  case ExprKind::Inv: {
    Skel += static_cast<char>('A' + static_cast<int>(E->kind()));
    skeleton(cast<UnaryExpr>(E.get())->Sub, Skel, Views);
    return;
  }
  default: {
    const auto *B = cast<BinaryExpr>(E.get());
    Skel += static_cast<char>('a' + static_cast<int>(E->kind()));
    Skel += '(';
    skeleton(B->L, Skel, Views);
    Skel += ',';
    skeleton(B->R, Skel, Views);
    Skel += ')';
    return;
  }
  }
}

struct StmtSig {
  std::string Skel;
  std::vector<const ViewExpr *> Views; // LHS first, then RHS in tree order
};

bool isElementStmt(const EqStmt &S) {
  if (!isa<ViewExpr>(S.Lhs) || S.Lhs->rows() != 1 || S.Lhs->cols() != 1)
    return false;
  if (!S.Rhs->isScalarShaped())
    return false;
  // All views must be single elements.
  StmtSig Sig;
  skeleton(S.Rhs, Sig.Skel, Sig.Views);
  for (const ViewExpr *V : Sig.Views)
    if (V->rows() != 1 || V->cols() != 1)
      return false;
  return true;
}

StmtSig signatureOf(const EqStmt &S) {
  StmtSig Sig;
  Sig.Views.push_back(cast<ViewExpr>(S.Lhs.get()));
  skeleton(S.Rhs, Sig.Skel, Sig.Views);
  return Sig;
}

/// Rebuilds the RHS of the merged statement: shifted view positions become
/// spans of length Len (orientation given by the delta), common positions
/// stay scalar.
ExprPtr buildSpanExpr(const ExprPtr &E, const std::vector<bool> &Shifted,
                      size_t &Idx, int Dr, int Dc, int Len) {
  switch (E->kind()) {
  case ExprKind::View: {
    const auto *V = cast<ViewExpr>(E.get());
    bool Sh = Shifted[Idx++];
    if (!Sh)
      return E;
    return view(V->Op, V->R0, Dr ? Len : 1, V->C0, Dc ? Len : 1);
  }
  case ExprKind::Const:
    return E;
  case ExprKind::Trans:
  case ExprKind::Neg:
  case ExprKind::Sqrt:
  case ExprKind::Inv: {
    const auto *U = cast<UnaryExpr>(E.get());
    ExprPtr Sub = buildSpanExpr(U->Sub, Shifted, Idx, Dr, Dc, Len);
    switch (U->kind()) {
    case ExprKind::Trans:
      return trans(Sub);
    case ExprKind::Neg:
      return neg(Sub);
    case ExprKind::Sqrt:
      return sqrtExpr(Sub);
    default:
      return invExpr(Sub);
    }
  }
  default: {
    const auto *B = cast<BinaryExpr>(E.get());
    ExprPtr L = buildSpanExpr(B->L, Shifted, Idx, Dr, Dc, Len);
    ExprPtr R = buildSpanExpr(B->R, Shifted, Idx, Dr, Dc, Len);
    switch (B->kind()) {
    case ExprKind::Add:
      return add(L, R);
    case ExprKind::Sub:
      return sub(L, R);
    case ExprKind::Mul:
      return mul(L, R);
    default:
      return divExpr(L, R);
    }
  }
  }
}

/// Walks the tree in skeleton order and rejects runs where a shifted view
/// sits in a position that must stay scalar (a divisor or a sqrt argument):
/// merging those would produce ill-shaped expressions.
bool shiftedInScalarOnlyPos(const ExprPtr &E, const std::vector<bool> &Shifted,
                            size_t &Idx, bool ScalarOnly) {
  switch (E->kind()) {
  case ExprKind::View:
    return Shifted[Idx++] && ScalarOnly;
  case ExprKind::Const:
    return false;
  case ExprKind::Trans:
  case ExprKind::Neg:
  case ExprKind::Inv:
    return shiftedInScalarOnlyPos(cast<UnaryExpr>(E.get())->Sub, Shifted,
                                  Idx, ScalarOnly);
  case ExprKind::Sqrt:
    return shiftedInScalarOnlyPos(cast<UnaryExpr>(E.get())->Sub, Shifted,
                                  Idx, /*ScalarOnly=*/true);
  default: {
    const auto *B = cast<BinaryExpr>(E.get());
    bool L = shiftedInScalarOnlyPos(B->L, Shifted, Idx, ScalarOnly);
    bool R = shiftedInScalarOnlyPos(
        B->R, Shifted, Idx,
        ScalarOnly || B->kind() == ExprKind::Div);
    return L || R;
  }
  }
}

} // namespace

int lgen::applyVectorRules(Program &P, int MinRun) {
  std::vector<EqStmt> &Stmts = P.stmts();
  std::vector<EqStmt> Out;
  int Merged = 0;
  size_t I = 0;
  while (I < Stmts.size()) {
    if (!isElementStmt(Stmts[I])) {
      Out.push_back(Stmts[I]);
      ++I;
      continue;
    }
    StmtSig Base = signatureOf(Stmts[I]);

    // Determine the candidate shift from the next statement.
    int Dr = 0, Dc = 0;
    std::vector<bool> Shifted(Base.Views.size(), false);
    size_t RunLen = 1;
    if (I + 1 < Stmts.size() && isElementStmt(Stmts[I + 1])) {
      StmtSig Next = signatureOf(Stmts[I + 1]);
      if (Next.Skel == Base.Skel && Next.Views.size() == Base.Views.size()) {
        bool Ok = true;
        for (size_t V = 0; V < Base.Views.size() && Ok; ++V) {
          if (Next.Views[V]->Op != Base.Views[V]->Op) {
            Ok = false;
            break;
          }
          int DDr = Next.Views[V]->R0 - Base.Views[V]->R0;
          int DDc = Next.Views[V]->C0 - Base.Views[V]->C0;
          if (DDr == 0 && DDc == 0)
            continue;
          if (Dr == 0 && Dc == 0) {
            Dr = DDr;
            Dc = DDc;
          }
          if (DDr != Dr || DDc != Dc) {
            Ok = false;
            break;
          }
          Shifted[V] = true;
        }
        // Only unit shifts along one axis produce contiguous spans, and
        // the LHS must shift (otherwise it is not a run of outputs).
        bool UnitShift = (Dr == 0 && Dc == 1) || (Dr == 1 && Dc == 0);
        if (Ok && UnitShift && Shifted[0]) {
          // Extend the run as far as the pattern holds.
          while (I + RunLen < Stmts.size() &&
                 isElementStmt(Stmts[I + RunLen])) {
            StmtSig Cand = signatureOf(Stmts[I + RunLen]);
            if (Cand.Skel != Base.Skel ||
                Cand.Views.size() != Base.Views.size())
              break;
            bool Match = true;
            for (size_t V = 0; V < Base.Views.size() && Match; ++V) {
              int WantR =
                  Base.Views[V]->R0 +
                  (Shifted[V] ? Dr * static_cast<int>(RunLen) : 0);
              int WantC =
                  Base.Views[V]->C0 +
                  (Shifted[V] ? Dc * static_cast<int>(RunLen) : 0);
              Match = Cand.Views[V]->Op == Base.Views[V]->Op &&
                      Cand.Views[V]->R0 == WantR &&
                      Cand.Views[V]->C0 == WantC;
            }
            if (!Match)
              break;
            ++RunLen;
          }
        }
      }
    }

    if (RunLen >= static_cast<size_t>(MinRun)) {
      size_t CheckIdx = 1;
      if (shiftedInScalarOnlyPos(Stmts[I].Rhs, Shifted, CheckIdx,
                                 /*ScalarOnly=*/false))
        RunLen = 1; // cannot merge: a scalar-only position shifts
    }
    if (RunLen < static_cast<size_t>(MinRun)) {
      Out.push_back(Stmts[I]);
      ++I;
      continue;
    }

    // Rebuild as a span statement.
    int Len = static_cast<int>(RunLen);
    const ViewExpr *L0 = Base.Views[0];
    ExprPtr NewLhs =
        view(L0->Op, L0->R0, Dr ? Len : 1, L0->C0, Dc ? Len : 1);
    size_t Idx = 1; // views[0] is the LHS
    ExprPtr NewRhs = buildSpanExpr(Stmts[I].Rhs, Shifted, Idx, Dr, Dc, Len);

    // Rule R1: a top-level division by a common scalar becomes a
    // reciprocal temporary plus a scaling.
    if (const auto *DivE = dyn_cast<BinaryExpr>(NewRhs);
        DivE && DivE->kind() == ExprKind::Div &&
        !DivE->L->isScalarShaped()) {
      Operand *T = P.makeTemp(1, 1);
      Out.push_back({view(T), divExpr(constant(1.0), DivE->R)});
      NewRhs = mul(view(T), DivE->L);
    }
    Out.push_back({std::move(NewLhs), std::move(NewRhs)});
    Merged += Len - 1;
    I += RunLen;
  }
  Stmts = std::move(Out);
  return Merged;
}
