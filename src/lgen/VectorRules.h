//===- lgen/VectorRules.h - scalar-to-vector rewriting (rules R0/R1) ------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Stage-2 rewriting rules of paper Table 2: runs of scalar statements
/// of the same shape over contiguous elements are merged into vectorizable
/// sBLACs. R0 combines scalar divisions by a common divisor into an
/// element-wise vector division; R1 then turns that into one reciprocal
/// plus a scalar-times-vector sBLAC (yielding the extra nu-BLACs of paper
/// Fig. 10). An analogous rule merges runs of scalar multiplications.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LGEN_VECTORRULES_H
#define SLINGEN_LGEN_VECTORRULES_H

#include "expr/Program.h"

namespace slingen {
namespace lgen {

/// Applies the R0/R1-style merging rules to the statement list of \p P
/// in place. Returns the number of scalar statements merged away.
/// \p MinRun is the minimum run length worth vectorizing (>= 2).
int applyVectorRules(Program &P, int MinRun = 2);

} // namespace lgen
} // namespace slingen

#endif // SLINGEN_LGEN_VECTORRULES_H
