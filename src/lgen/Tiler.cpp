//===- lgen/Tiler.cpp -----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lgen/Tiler.h"

#include "lgen/NuBlacs.h"

#include <algorithm>
#include <cassert>

using namespace slingen;
using namespace slingen::lgen;
using cir::FuncBuilder;
using cir::Op;

//===----------------------------------------------------------------------===//
// Term flattening.
//===----------------------------------------------------------------------===//

static bool flattenInto(const ExprPtr &E, int Sign, std::vector<Term> &Out) {
  switch (E->kind()) {
  case ExprKind::Add: {
    const auto *B = cast<BinaryExpr>(E.get());
    return flattenInto(B->L, Sign, Out) && flattenInto(B->R, Sign, Out);
  }
  case ExprKind::Sub: {
    const auto *B = cast<BinaryExpr>(E.get());
    return flattenInto(B->L, Sign, Out) && flattenInto(B->R, -Sign, Out);
  }
  case ExprKind::Neg:
    return flattenInto(cast<UnaryExpr>(E.get())->Sub, -Sign, Out);
  case ExprKind::Mul: {
    const auto *B = cast<BinaryExpr>(E.get());
    std::vector<Term> L, R;
    if (!flattenInto(B->L, Sign, L) || !flattenInto(B->R, 1, R))
      return false;
    if (L.size() != 1 || R.size() != 1)
      return false; // no distribution: SLinGen pre-normalizes
    Term T;
    T.Sign = L[0].Sign * R[0].Sign;
    T.Mat = L[0].Mat;
    T.Mat.insert(T.Mat.end(), R[0].Mat.begin(), R[0].Mat.end());
    T.Sca = L[0].Sca;
    T.Sca.insert(T.Sca.end(), R[0].Sca.begin(), R[0].Sca.end());
    if (T.Mat.size() > 2)
      return false;
    Out.push_back(std::move(T));
    return true;
  }
  case ExprKind::View:
  case ExprKind::Trans:
  case ExprKind::Const: {
    Term T;
    T.Sign = Sign;
    if (E->isScalarShaped()) {
      T.Sca.push_back(E);
    } else {
      bool Tr = false;
      const ViewExpr *V = asViewMaybeTrans(E, Tr);
      if (!V)
        return false;
      T.Mat.push_back({V, Tr});
    }
    Out.push_back(std::move(T));
    return true;
  }
  default:
    return false; // Div/Sqrt/Inv do not appear in sBLACs
  }
}

bool lgen::flattenRhs(const ExprPtr &E, std::vector<Term> &Out) {
  Out.clear();
  return flattenInto(E, 1, Out);
}

//===----------------------------------------------------------------------===//
// Scalar statements.
//===----------------------------------------------------------------------===//

static int emitScalarExpr(FuncBuilder &B, const ExprPtr &E) {
  assert(E->isScalarShaped() && "non-scalar in scalar statement");
  if (const auto *V = dyn_cast<ViewExpr>(E))
    return loadElem(B, *V, false, 0, 0);
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return B.sconst(C->Value);
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    switch (U->kind()) {
    case ExprKind::Trans:
      return emitScalarExpr(B, U->Sub);
    case ExprKind::Neg:
      return B.sneg(emitScalarExpr(B, U->Sub));
    case ExprKind::Sqrt:
      return B.ssqrt(emitScalarExpr(B, U->Sub));
    default:
      assert(false && "bad scalar unary");
    }
  }
  const auto *Bin = cast<BinaryExpr>(E.get());
  int L = emitScalarExpr(B, Bin->L);
  int R = emitScalarExpr(B, Bin->R);
  switch (Bin->kind()) {
  case ExprKind::Add:
    return B.sbin(Op::SAdd, L, R);
  case ExprKind::Sub:
    return B.sbin(Op::SSub, L, R);
  case ExprKind::Mul:
    return B.sbin(Op::SMul, L, R);
  case ExprKind::Div:
    return B.sbin(Op::SDiv, L, R);
  default:
    assert(false && "bad scalar binary");
    return -1;
  }
}

void lgen::compileScalarStmt(FuncBuilder &B, const EqStmt &S) {
  const auto *L = cast<ViewExpr>(S.Lhs.get());
  int R = emitScalarExpr(B, S.Rhs);
  storeElem(B, *L, false, 0, 0, R);
}

//===----------------------------------------------------------------------===//
// Tiled emission.
//===----------------------------------------------------------------------===//

namespace {

class SBlacTiler {
public:
  SBlacTiler(FuncBuilder &B, const EqStmt &S, const TileOptions &Opt)
      : B(B), Opt(Opt), Nu(Opt.Nu), Lhs(cast<ViewExpr>(S.Lhs.get())) {
    [[maybe_unused]] bool Ok = flattenRhs(S.Rhs, Terms);
    assert(Ok && "unsupported sBLAC shape reached the tiler");
    checkAliasing();
    hoistScalars();
  }

  void run() {
    int M = Lhs->rows(), N = Lhs->cols();
    if (M == 1 && N == 1) {
      emitReducedRowsUnrolled(0, 1);
      return;
    }
    if (Nu == 1) {
      emitScalarized();
      return;
    }
    if (N == 1) {
      bool HasProduct = false;
      for (const Term &T : Terms)
        HasProduct |= T.Mat.size() == 2;
      if (HasProduct)
        emitReducedRows();
      else
        emitLinearColumn();
      return;
    }
    emitBroadcastTiles();
  }

private:
  FuncBuilder &B;
  const TileOptions &Opt;
  int Nu;
  const ViewExpr *Lhs;
  std::vector<Term> Terms;
  std::vector<int> CoefReg; ///< per-term signed scalar coefficient (or -1)

  /// RHS views must be identical to or disjoint from the LHS region.
  void checkAliasing() const {
    for (const Term &T : Terms)
      for (const Factor &F : T.Mat) {
        if (!F.V->overlaps(*Lhs))
          continue;
        [[maybe_unused]] bool Same =
            F.V->Op->root() == Lhs->Op->root() && F.V->R0 == Lhs->R0 &&
            F.V->C0 == Lhs->C0 && F.V->rows() == Lhs->rows() &&
            F.V->cols() == Lhs->cols() && !F.Trans &&
            T.Mat.size() == 1;
        assert(Same && "partial aliasing between LHS and RHS views");
      }
  }

  /// Evaluates the scalar coefficient of each term once, folding the sign.
  /// CoefReg[t] < 0 means "no coefficient" (sign handled at use sites).
  void hoistScalars() {
    CoefReg.assign(Terms.size(), -1);
    for (size_t T = 0; T < Terms.size(); ++T) {
      if (Terms[T].Sca.empty())
        continue;
      int R = -1;
      for (const ExprPtr &S : Terms[T].Sca) {
        int V = emitScalarExpr(B, S);
        R = R < 0 ? V : B.sbin(Op::SMul, R, V);
      }
      if (Terms[T].Sign < 0) {
        R = B.sneg(R);
        Terms[T].Sign = 1;
      }
      CoefReg[T] = R;
    }
  }

  bool symOutUpper() const {
    return Lhs->structure() == StructureKind::SymmetricUpper;
  }
  bool symOutLower() const {
    return Lhs->structure() == StructureKind::SymmetricLower;
  }

  /// Inner-index range [Lo, Hi) with possible non-zeros for a product term,
  /// given the output tile rows [RLo, RHi) and cols [CLo, CHi). Constant
  /// positions only (unrolled mode).
  static std::pair<int, int> nonzeroPRange(const Factor &A, const Factor &X,
                                           int K, int RLo, int RHi, int CLo,
                                           int CHi) {
    int Lo = 0, Hi = K;
    switch (A.effStructure()) {
    case StructureKind::LowerTriangular:
      Hi = std::min(Hi, RHi);
      break;
    case StructureKind::UpperTriangular:
      Lo = std::max(Lo, RLo);
      break;
    case StructureKind::Diagonal:
    case StructureKind::Identity:
      Lo = std::max(Lo, RLo);
      Hi = std::min(Hi, RHi);
      break;
    case StructureKind::Zero:
      return {0, 0};
    default:
      break;
    }
    switch (X.effStructure()) {
    case StructureKind::LowerTriangular:
      Lo = std::max(Lo, CLo);
      break;
    case StructureKind::UpperTriangular:
      Hi = std::min(Hi, CHi);
      break;
    case StructureKind::Diagonal:
    case StructureKind::Identity:
      Lo = std::max(Lo, CLo);
      Hi = std::min(Hi, CHi);
      break;
    case StructureKind::Zero:
      return {0, 0};
    default:
      break;
    }
    return {Lo, std::max(Lo, Hi)};
  }

  static bool termIsZero(const Term &T) {
    for (const Factor &F : T.Mat)
      if (F.effStructure() == StructureKind::Zero)
        return true;
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Matrix output: broadcast-FMA register tiles.
  //===--------------------------------------------------------------------===//

  void emitBroadcastTiles() {
    int M = Lhs->rows(), N = Lhs->cols();
    int TilesR = (M + Nu - 1) / Nu, TilesC = (N + Nu - 1) / Nu;
    long TileCount = static_cast<long>(TilesR) * TilesC;
    bool Divisible = M % Nu == 0 && N % Nu == 0;
    if (!Divisible || TileCount <= Opt.UnrollTiles) {
      for (int R0 = 0; R0 < M; R0 += Nu)
        for (int C0 = 0; C0 < N; C0 += Nu) {
          int TR = std::min(Nu, M - R0), TC = std::min(Nu, N - C0);
          if (symOutUpper() && R0 >= C0 + TC)
            continue; // strictly below the diagonal: mirrored later
          if (symOutLower() && C0 >= R0 + TR)
            continue;
          emitOneTile(Pos(R0), Pos(C0), TR, TC, /*Constant=*/true);
        }
      return;
    }
    // Loop mode (full tiles only; divisibility checked above). Symmetric
    // outputs get a triangular iteration space via the affine lower bound.
    int RV = B.beginLoop(0, M, Nu);
    int CV;
    if (symOutUpper())
      CV = B.beginLoopAffine(0, RV, 1, N, Nu);
    else
      CV = B.beginLoop(0, N, Nu);
    if (symOutLower()) {
      // Iterate the lower triangle: rows from the column tile downwards.
      // (Equivalent to swapping the roles of RV/CV in the upper case.)
    }
    emitOneTile(Pos::var(RV), Pos::var(CV), Nu, Nu, /*Constant=*/false);
    B.endLoop();
    B.endLoop();
  }

  void emitOneTile(Pos R0, Pos C0, int TR, int TC, bool Constant) {
    std::vector<int> Acc(TR);
    int Zero = B.vconst(0.0);
    for (int R = 0; R < TR; ++R)
      Acc[R] = Zero;
    for (size_t T = 0; T < Terms.size(); ++T) {
      const Term &Tm = Terms[T];
      if (termIsZero(Tm))
        continue;
      if (Tm.Mat.empty()) {
        // Pure scalar term broadcast over the tile (e.g. "view = 0").
        int BC = B.vbroadcast(CoefReg[T]);
        for (int R = 0; R < TR; ++R)
          Acc[R] = B.vbin(Op::VAdd, Acc[R], BC);
      } else if (Tm.Mat.size() == 1)
        emitLinearTermTile(Tm, CoefReg[T], R0, C0, TR, TC, Acc);
      else
        emitProductTermTile(Tm, CoefReg[T], R0, C0, TR, TC, Constant, Acc);
    }
    for (int R = 0; R < TR; ++R)
      storeSpan(B, *Lhs, false, R0.plus(R), C0, TC, /*AlongCols=*/true,
                Acc[R]);
  }

  void emitLinearTermTile(const Term &Tm, int Coef, Pos R0, Pos C0, int TR,
                          int TC, std::vector<int> &Acc) {
    const Factor &F = Tm.Mat[0];
    int BCoef = Coef >= 0 ? B.vbroadcast(Coef) : -1;
    for (int R = 0; R < TR; ++R) {
      int Span = loadSpan(B, *F.V, F.Trans, R0.plus(R), C0, TC,
                          /*AlongCols=*/true);
      if (BCoef >= 0)
        Acc[R] = B.vfma(BCoef, Span, Acc[R]);
      else if (Tm.Sign > 0)
        Acc[R] = B.vbin(Op::VAdd, Acc[R], Span);
      else
        Acc[R] = B.vbin(Op::VSub, Acc[R], Span);
    }
  }

  void emitProductTermTile(const Term &Tm, int Coef, Pos R0, Pos C0, int TR,
                           int TC, bool Constant, std::vector<int> &Acc) {
    const Factor &A = Tm.Mat[0], &X = Tm.Mat[1];
    int K = A.cols();
    assert(K == X.rows() && "inner dimension mismatch in term");
    int PLo = 0, PHi = K;
    if (Constant) {
      auto [Lo, Hi] = nonzeroPRange(A, X, K, R0.Const, R0.Const + TR,
                                    C0.Const, C0.Const + TC);
      PLo = Lo;
      PHi = Hi;
    }
    if (PHi - PLo > Opt.UnrollK) {
      // Materialize the reduction as a loop with stable accumulators.
      std::vector<int> LoopAcc(TR);
      for (int R = 0; R < TR; ++R) {
        LoopAcc[R] = B.vconst(0.0);
      }
      int PV = B.beginLoop(PLo, PHi, 1);
      int BSpan =
          loadSpan(B, *X.V, X.Trans, Pos::var(PV), C0, TC, /*AlongCols=*/true);
      for (int R = 0; R < TR; ++R) {
        int AElem = loadElem(B, *A.V, A.Trans, R0.plus(R), Pos::var(PV));
        AElem = scaleElem(AElem, Tm.Sign, Coef);
        int BC = B.vbroadcast(AElem);
        B.vfmaInto(LoopAcc[R], BC, BSpan, LoopAcc[R]);
      }
      B.endLoop();
      for (int R = 0; R < TR; ++R)
        Acc[R] = B.vbin(Op::VAdd, Acc[R], LoopAcc[R]);
      return;
    }
    for (int P = PLo; P < PHi; ++P) {
      int BSpan =
          loadSpan(B, *X.V, X.Trans, Pos(P), C0, TC, /*AlongCols=*/true);
      for (int R = 0; R < TR; ++R) {
        int AElem = loadElem(B, *A.V, A.Trans, R0.plus(R), Pos(P));
        AElem = scaleElem(AElem, Tm.Sign, Coef);
        int BC = B.vbroadcast(AElem);
        Acc[R] = B.vfma(BC, BSpan, Acc[R]);
      }
    }
  }

  int scaleElem(int Reg, int Sign, int Coef) {
    if (Coef >= 0)
      return B.sbin(Op::SMul, Reg, Coef); // sign already folded into Coef
    return Sign > 0 ? Reg : B.sneg(Reg);
  }

  //===--------------------------------------------------------------------===//
  // Column-vector output without products: 1-D span kernel.
  //===--------------------------------------------------------------------===//

  void emitLinearColumn() {
    int M = Lhs->rows();
    auto EmitChunk = [&](Pos R0, int Count) {
      int Acc = B.vconst(0.0);
      for (size_t T = 0; T < Terms.size(); ++T) {
        const Term &Tm = Terms[T];
        if (termIsZero(Tm))
          continue;
        if (Tm.Mat.empty()) {
          Acc = B.vbin(Op::VAdd, Acc, B.vbroadcast(CoefReg[T]));
          continue;
        }
        assert(Tm.Mat.size() == 1 && "product in linear kernel");
        const Factor &F = Tm.Mat[0];
        int Span = loadSpan(B, *F.V, F.Trans, R0, 0, Count,
                            /*AlongCols=*/false);
        if (CoefReg[T] >= 0)
          Acc = B.vfma(B.vbroadcast(CoefReg[T]), Span, Acc);
        else if (Tm.Sign > 0)
          Acc = B.vbin(Op::VAdd, Acc, Span);
        else
          Acc = B.vbin(Op::VSub, Acc, Span);
      }
      storeSpan(B, *Lhs, false, R0, 0, Count, /*AlongCols=*/false, Acc);
    };
    int Tiles = (M + Nu - 1) / Nu;
    if (M % Nu != 0 || Tiles <= Opt.UnrollTiles) {
      for (int R0 = 0; R0 < M; R0 += Nu)
        EmitChunk(Pos(R0), std::min(Nu, M - R0));
      return;
    }
    int RV = B.beginLoop(0, M, Nu);
    EmitChunk(Pos::var(RV), Nu);
    B.endLoop();
  }

  //===--------------------------------------------------------------------===//
  // Column-vector / scalar output with products: per-row dot reductions.
  //===--------------------------------------------------------------------===//

  void emitReducedRows() {
    int M = Lhs->rows();
    if (M <= Opt.UnrollTiles * Nu) {
      emitReducedRowsUnrolled(0, M);
      return;
    }
    int RV = B.beginLoop(0, M, 1);
    emitReducedRow(Pos::var(RV), /*Constant=*/false);
    B.endLoop();
  }

  void emitReducedRowsUnrolled(int Lo, int Hi) {
    for (int R = Lo; R < Hi; ++R)
      emitReducedRow(Pos(R), /*Constant=*/true);
  }

  void emitReducedRow(Pos R, bool Constant) {
    int Result = -1; // scalar accumulator chain
    auto Combine = [&](int Val, int Sign) {
      if (Result < 0)
        Result = Sign > 0 ? Val : B.sneg(Val);
      else
        Result = B.sbin(Sign > 0 ? Op::SAdd : Op::SSub, Result, Val);
    };
    for (size_t T = 0; T < Terms.size(); ++T) {
      const Term &Tm = Terms[T];
      if (termIsZero(Tm))
        continue;
      if (Tm.Mat.empty()) {
        Combine(CoefReg[T], 1);
        continue;
      }
      if (Tm.Mat.size() == 1) {
        int E = loadElem(B, *Tm.Mat[0].V, Tm.Mat[0].Trans, R, 0);
        if (CoefReg[T] >= 0)
          E = B.sbin(Op::SMul, E, CoefReg[T]);
        Combine(E, CoefReg[T] >= 0 ? 1 : Tm.Sign);
        continue;
      }
      const Factor &A = Tm.Mat[0], &X = Tm.Mat[1];
      int K = A.cols();
      int PLo = 0, PHi = K;
      if (Constant) {
        auto [Lo2, Hi2] =
            nonzeroPRange(A, X, K, R.Const, R.Const + 1, 0, 1);
        PLo = Lo2;
        PHi = Hi2;
      }
      int Dot;
      if (PHi - PLo > Opt.UnrollK * Nu) {
        int Acc = B.vconst(0.0);
        int Full = PLo + (PHi - PLo) / Nu * Nu;
        int PV = B.beginLoop(PLo, Full, Nu);
        int VA = loadSpan(B, *A.V, A.Trans, R, Pos::var(PV), Nu,
                          /*AlongCols=*/true);
        int VX = loadSpan(B, *X.V, X.Trans, Pos::var(PV), 0, Nu,
                          /*AlongCols=*/false);
        B.vfmaInto(Acc, VA, VX, Acc);
        B.endLoop();
        for (int P = Full; P < PHi; P += Nu) {
          int Cnt = std::min(Nu, PHi - P);
          int VA2 = loadSpan(B, *A.V, A.Trans, R, Pos(P), Cnt, true);
          int VX2 = loadSpan(B, *X.V, X.Trans, Pos(P), 0, Cnt, false);
          Acc = B.vfma(VA2, VX2, Acc);
        }
        Dot = B.vreduceAdd(Acc);
      } else if (Nu > 1) {
        int Acc = B.vconst(0.0);
        for (int P = PLo; P < PHi; P += Nu) {
          int Cnt = std::min(Nu, PHi - P);
          int VA = loadSpan(B, *A.V, A.Trans, R, Pos(P), Cnt, true);
          int VX = loadSpan(B, *X.V, X.Trans, Pos(P), 0, Cnt, false);
          Acc = B.vfma(VA, VX, Acc);
        }
        Dot = B.vreduceAdd(Acc);
      } else {
        int Acc = B.sconst(0.0);
        for (int P = PLo; P < PHi; ++P) {
          int EA = loadElem(B, *A.V, A.Trans, R, Pos(P));
          int EX = loadElem(B, *X.V, X.Trans, Pos(P), 0);
          Acc = B.sbin(Op::SAdd, Acc, B.sbin(Op::SMul, EA, EX));
        }
        Dot = Acc;
      }
      if (CoefReg[T] >= 0)
        Dot = B.sbin(Op::SMul, Dot, CoefReg[T]);
      Combine(Dot, CoefReg[T] >= 0 ? 1 : Tm.Sign);
    }
    if (Result < 0)
      Result = B.sconst(0.0);
    storeElem(B, *Lhs, false, R, 0, Result);
  }

  //===--------------------------------------------------------------------===//
  // Scalar (nu = 1) fallback for matrix outputs.
  //===--------------------------------------------------------------------===//

  void emitScalarized() {
    int M = Lhs->rows(), N = Lhs->cols();
    for (int R = 0; R < M; ++R)
      for (int C = 0; C < N; ++C) {
        if (symOutUpper() && R > C)
          continue;
        if (symOutLower() && C > R)
          continue;
        int Result = -1;
        auto Combine = [&](int Val, int Sign) {
          if (Result < 0)
            Result = Sign > 0 ? Val : B.sneg(Val);
          else
            Result = B.sbin(Sign > 0 ? Op::SAdd : Op::SSub, Result, Val);
        };
        for (size_t T = 0; T < Terms.size(); ++T) {
          const Term &Tm = Terms[T];
          if (termIsZero(Tm))
            continue;
          if (Tm.Mat.empty()) {
            Combine(CoefReg[T], 1);
            continue;
          }
          int Val;
          if (Tm.Mat.size() == 1) {
            Val = loadElem(B, *Tm.Mat[0].V, Tm.Mat[0].Trans, R, C);
          } else {
            const Factor &A = Tm.Mat[0], &X = Tm.Mat[1];
            auto [PLo, PHi] = nonzeroPRange(A, X, A.cols(), R, R + 1, C,
                                            C + 1);
            int Acc = B.sconst(0.0);
            for (int P = PLo; P < PHi; ++P) {
              int EA = loadElem(B, *A.V, A.Trans, R, P);
              int EX = loadElem(B, *X.V, X.Trans, P, C);
              Acc = B.sbin(Op::SAdd, Acc, B.sbin(Op::SMul, EA, EX));
            }
            Val = Acc;
          }
          if (CoefReg[T] >= 0)
            Val = B.sbin(Op::SMul, Val, CoefReg[T]);
          Combine(Val, CoefReg[T] >= 0 ? 1 : Tm.Sign);
        }
        if (Result < 0)
          Result = B.sconst(0.0);
        storeElem(B, *Lhs, false, R, C, Result);
      }
  }
};

} // namespace

static bool allViewsScalar(const ExprPtr &E) {
  if (const auto *V = dyn_cast<ViewExpr>(E))
    return V->rows() == 1 && V->cols() == 1;
  if (isa<ConstExpr>(E))
    return true;
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return allViewsScalar(U->Sub);
  const auto *B = cast<BinaryExpr>(E.get());
  return allViewsScalar(B->L) && allViewsScalar(B->R);
}

void lgen::compileSBlac(FuncBuilder &B, const EqStmt &S,
                        const TileOptions &Opt) {
  const auto *L = cast<ViewExpr>(S.Lhs.get());
  if (L->rows() == 1 && L->cols() == 1 && allViewsScalar(S.Rhs)) {
    // Pure scalar statements take the direct path (they may contain
    // division and sqrt, which the tiler rejects).
    compileScalarStmt(B, S);
    return;
  }
  SBlacTiler T(B, S, Opt);
  T.run();
}

void lgen::emitStructureNormalize(cir::FuncBuilder &B, const ViewExpr &V,
                                  const TileOptions &Opt) {
  StructureKind S = V.structure();
  int N = V.rows();
  if (N != V.cols())
    return;
  auto MirrorOrZero = [&](bool Mirror, bool UpperStored) {
    // Iterate the non-stored triangle as (outer, inner) with an affine
    // inner lower bound so both loops have constant upper bounds.
    if (N <= Opt.UnrollTiles) {
      for (int R = 0; R < N; ++R)
        for (int C = R + 1; C < N; ++C) {
          // (R, C) is in the upper triangle.
          Pos Dst[2] = {UpperStored ? Pos(C) : Pos(R),
                        UpperStored ? Pos(R) : Pos(C)};
          Pos Src[2] = {UpperStored ? Pos(R) : Pos(C),
                        UpperStored ? Pos(C) : Pos(R)};
          int Val = Mirror ? loadElem(B, V, false, Src[0], Src[1])
                           : B.sconst(0.0);
          storeElem(B, V, false, Dst[0], Dst[1], Val);
        }
      return;
    }
    int RV = B.beginLoop(0, N, 1);
    int CV = B.beginLoopAffine(1, RV, 1, N, 1);
    Pos RP = Pos::var(RV), CP = Pos::var(CV);
    Pos Dst[2] = {UpperStored ? CP : RP, UpperStored ? RP : CP};
    Pos Src[2] = {UpperStored ? RP : CP, UpperStored ? CP : RP};
    int Val =
        Mirror ? loadElem(B, V, false, Src[0], Src[1]) : B.sconst(0.0);
    storeElem(B, V, false, Dst[0], Dst[1], Val);
    B.endLoop();
    B.endLoop();
  };
  switch (S) {
  case StructureKind::SymmetricUpper:
    MirrorOrZero(/*Mirror=*/true, /*UpperStored=*/true);
    break;
  case StructureKind::SymmetricLower:
    MirrorOrZero(/*Mirror=*/true, /*UpperStored=*/false);
    break;
  case StructureKind::UpperTriangular:
    MirrorOrZero(/*Mirror=*/false, /*UpperStored=*/true);
    break;
  case StructureKind::LowerTriangular:
    MirrorOrZero(/*Mirror=*/false, /*UpperStored=*/false);
    break;
  default:
    break;
  }
}
