//===- lgen/NuBlacs.cpp ---------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lgen/NuBlacs.h"

#include <cassert>

using namespace slingen;
using namespace slingen::lgen;
using cir::Addr;
using cir::FuncBuilder;

/// Builds the physical address of logical element (R, C) of op(V): the
/// transpose swaps the roles of R and C, and the view offset plus the root
/// leading dimension map to the flat buffer.
Addr lgen::elemAddr(const ViewExpr &V, bool Trans, Pos R, Pos C) {
  if (Trans)
    std::swap(R, C);
  int Ld = V.Op->root()->Cols;
  Addr A;
  A.Buf = V.Op->root();
  A.Const = (V.R0 + R.Const) * Ld + V.C0 + C.Const;
  for (auto [Var, Coeff] : R.Terms)
    A.Terms.push_back({Var, Coeff * Ld});
  for (auto [Var, Coeff] : C.Terms)
    A.Terms.push_back({Var, Coeff});
  return A;
}

int lgen::loadSpan(FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R,
                   Pos C, int Count, bool AlongCols) {
  assert(Count >= 1 && Count <= B.nu() && "span wider than a register");
  // Physical direction: advancing along logical columns of a transposed
  // view walks physical rows.
  bool PhysAlongCols = AlongCols != Trans;
  int Ld = V.Op->root()->Cols;
  Addr A = elemAddr(V, Trans, R, C);
  if (PhysAlongCols || Count == 1 || Ld == 1)
    return B.vload(std::move(A), Count);
  return B.vloadStrided(std::move(A), Ld, Count);
}

void lgen::storeSpan(FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R,
                     Pos C, int Count, bool AlongCols, int Reg) {
  assert(Count >= 1 && Count <= B.nu() && "span wider than a register");
  bool PhysAlongCols = AlongCols != Trans;
  int Ld = V.Op->root()->Cols;
  Addr A = elemAddr(V, Trans, R, C);
  if (PhysAlongCols || Count == 1 || Ld == 1) {
    B.vstore(std::move(A), Reg, Count);
    return;
  }
  B.vstoreStrided(std::move(A), Reg, Ld, Count);
}

int lgen::loadElem(FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R,
                   Pos C) {
  return B.sload(elemAddr(V, Trans, R, C));
}

void lgen::storeElem(FuncBuilder &B, const ViewExpr &V, bool Trans, Pos R,
                     Pos C, int Reg) {
  B.sstore(elemAddr(V, Trans, R, C), Reg);
}
