//===- flame/PME.cpp ------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "flame/PME.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace slingen;
using namespace slingen::flame;

std::string Task::str() const {
  if (IsSolve)
    return formatf("solve(%d,%d)", Pi, Pj);
  return formatf("apply(%d,%d;g%d)", Pi, Pj, Group);
}

int TaskGraph::solveIndex(int Pi, int Pj) const {
  for (size_t I = 0; I < Tasks.size(); ++I)
    if (Tasks[I].IsSolve && Tasks[I].Pi == Pi && Tasks[I].Pj == Pj)
      return static_cast<int>(I);
  return -1;
}

int TaskGraph::applyIndex(int Pi, int Pj, int Group) const {
  for (size_t I = 0; I < Tasks.size(); ++I)
    if (!Tasks[I].IsSolve && Tasks[I].Pi == Pi && Tasks[I].Pj == Pj &&
        Tasks[I].Group == Group)
      return static_cast<int>(I);
  return -1;
}

TaskGraph flame::buildTaskGraph(const Spec &S) {
  TaskGraph G;
  G.NRow2 = S.RowsPartitioned ? 2 : 1;
  G.NCol2 = S.ColsPartitioned ? 2 : 1;

  // Solve tasks: one per stored quadrant.
  std::vector<std::pair<int, int>> Positions =
      storedPositions(S, G.NRow2, G.NCol2);
  for (auto [Pi, Pj] : Positions)
    G.Tasks.push_back({/*IsSolve=*/true, Pi, Pj, -1});

  // Apply tasks: one per (position, update group) with dependency terms.
  for (auto [Pi, Pj] : Positions) {
    std::vector<BTerm> Terms = expandAt(S, Pi, Pj, G.NRow2, G.NCol2);
    for (const BTerm &T : Terms) {
      if (termContainsTarget(T, Pi, Pj))
        continue;
      bool HasUnknown = false;
      for (const BBlock &B : T.F)
        HasUnknown |= B.R == Role::X;
      if (!HasUnknown)
        continue; // purely known update: always foldable, no task needed
      if (G.applyIndex(Pi, Pj, T.SpecTermIdx) < 0)
        G.Tasks.push_back({/*IsSolve=*/false, Pi, Pj, T.SpecTermIdx});
    }
  }

  // Dependency edges.
  G.Deps.assign(G.Tasks.size(), {});
  for (size_t TI = 0; TI < G.Tasks.size(); ++TI) {
    const Task &T = G.Tasks[TI];
    std::vector<BTerm> Terms = expandAt(S, T.Pi, T.Pj, G.NRow2, G.NCol2);
    for (const BTerm &BT : Terms) {
      bool IsSolveTerm = termContainsTarget(BT, T.Pi, T.Pj);
      if (T.IsSolve) {
        if (IsSolveTerm) {
          // Coefficient blocks of the solve operator that are themselves
          // unknown quadrants (Cholesky's X(0,0)^T X(0,1) panel solve).
          for (const BBlock &B : BT.F) {
            if (B.R != Role::X || (B.RI == T.Pi && B.CI == T.Pj))
              continue;
            int Dep = G.solveIndex(B.RI, B.CI);
            assert(Dep >= 0 && "missing solve task for coefficient block");
            G.Deps[TI].push_back(Dep);
          }
        } else {
          // The solve requires its update groups to have been applied.
          int Dep = G.applyIndex(T.Pi, T.Pj, BT.SpecTermIdx);
          if (Dep >= 0)
            G.Deps[TI].push_back(Dep);
        }
      } else if (!IsSolveTerm && BT.SpecTermIdx == T.Group) {
        // Applying a group requires the unknown blocks it reads.
        for (const BBlock &B : BT.F) {
          if (B.R != Role::X)
            continue;
          int Dep = G.solveIndex(B.RI, B.CI);
          assert(Dep >= 0 && "missing solve task for update source");
          G.Deps[TI].push_back(Dep);
        }
      }
    }
    std::sort(G.Deps[TI].begin(), G.Deps[TI].end());
    G.Deps[TI].erase(std::unique(G.Deps[TI].begin(), G.Deps[TI].end()),
                     G.Deps[TI].end());
  }
  return G;
}
