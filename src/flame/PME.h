//===- flame/PME.h - partitioned matrix expressions and task graphs -------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PME generation (paper Sec. 2.2, first Cl1ck stage): the operation Spec
/// is expanded over the 2x2 quadrant grid and decomposed into tasks --
/// solve(quadrant) for each stored unknown quadrant and apply(quadrant,
/// group) for each update group feeding it -- together with the dependency
/// edges between them. Loop invariants are the dependency-closed task
/// subsets of this graph (see Invariant.h).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_FLAME_PME_H
#define SLINGEN_FLAME_PME_H

#include "flame/BlockAlg.h"

#include <string>

namespace slingen {
namespace flame {

struct Task {
  bool IsSolve = true;
  int Pi = 0, Pj = 0; ///< quadrant position (underlying X coordinates)
  int Group = -1;     ///< spec-term index for apply tasks

  std::string str() const;
};

struct TaskGraph {
  std::vector<Task> Tasks;
  /// Deps[T] lists task indices that must be in any invariant containing T.
  std::vector<std::vector<int>> Deps;
  int NRow2 = 2, NCol2 = 2; ///< quadrant grid dimensions (1 or 2 each)

  int solveIndex(int Pi, int Pj) const;
  int applyIndex(int Pi, int Pj, int Group) const;
};

/// Builds the quadrant-level PME task graph for \p S.
TaskGraph buildTaskGraph(const Spec &S);

} // namespace flame
} // namespace slingen

#endif // SLINGEN_FLAME_PME_H
