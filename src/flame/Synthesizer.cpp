//===- flame/Synthesizer.cpp ----------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "flame/Synthesizer.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace slingen;
using namespace slingen::flame;

namespace {

const ViewExpr *asView(const ExprPtr &E) {
  return E ? cast<ViewExpr>(E.get()) : nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Instance and spec construction.
//===----------------------------------------------------------------------===//

HlacInstance flame::instanceFromMatch(const HlacMatch &M) {
  HlacInstance I;
  I.Kind = M.Kind;
  auto Share = [](const ViewExpr *V) -> ExprPtr {
    return V ? view(V->Op, V->R0, V->rows(), V->C0, V->cols()) : nullptr;
  };
  I.X = Share(M.X);
  I.A = Share(M.A);
  I.TransA = M.TransA;
  I.LeftA = M.LeftA;
  I.B = Share(M.B);
  I.TransB = M.TransB;
  if (M.Kind == HlacKind::Inv) {
    I.CIsIdentity = true;
    I.LeftA = true;
  } else {
    assert(isa<ViewExpr>(M.Rhs) &&
           "HLAC RHS must be a view (pre-materialized)");
    I.C = Share(cast<ViewExpr>(M.Rhs.get()));
  }
  I.UpperFactor = M.UpperFactor;
  return I;
}

Spec flame::specForInstance(const HlacInstance &Inst) {
  Spec S;
  S.Kind = Inst.Kind;
  S.CIsIdentity = Inst.CIsIdentity;
  const ViewExpr *X = asView(Inst.X);
  int XR = X->rows(), XC = X->cols();
  auto St = [&](Role R) -> StructureKind & {
    return S.Struct[static_cast<int>(R)];
  };
  auto Dim = [&](Role R) -> RoleDims & {
    return S.Dims[static_cast<int>(R)];
  };

  switch (Inst.Kind) {
  case HlacKind::Chol: {
    assert(XR == XC && "Cholesky of a non-square view");
    S.RowsPartitioned = S.ColsPartitioned = XR > 1;
    St(Role::X) = Inst.UpperFactor ? StructureKind::UpperTriangular
                                   : StructureKind::LowerTriangular;
    SpecTerm T;
    T.F0 = {Role::X, Inst.UpperFactor};
    T.F1 = {Role::X, !Inst.UpperFactor};
    T.Contraction = Axis::Row;
    S.Lhs.push_back(T);
    Dim(Role::X) = {true, Axis::Row, Axis::Col, true, true};
    break;
  }
  case HlacKind::Trsm:
  case HlacKind::Inv: {
    bool Square = Inst.Kind == HlacKind::Inv;
    StructureKind AS = asView(Inst.A)->structure();
    bool EffUpper = (AS == StructureKind::UpperTriangular) != Inst.TransA;
    S.AUnitDiag = asView(Inst.A)->Op->UnitDiag;
    if (Inst.LeftA) {
      S.RowsPartitioned = XR > 1;
      S.ColsPartitioned = Square && XC > 1;
      // Effective-upper left coefficients solve bottom-up; the flip turns
      // row-axis structures into their transposes in region space.
      if (EffUpper)
        S.RowDir = DimDir::BottomUp;
      St(Role::A) = EffUpper ? transposedStructure(AS) : AS;
      SpecTerm T;
      T.F0 = {Role::A, Inst.TransA};
      T.F1 = {Role::X, false};
      T.Contraction = Axis::Row;
      S.Lhs.push_back(T);
      Dim(Role::A) = {true, Axis::Row, Axis::Row, true, true};
      Dim(Role::X) = {true, Axis::Row, Axis::Col, S.RowsPartitioned,
                      S.ColsPartitioned};
      if (Square) {
        St(Role::X) = AS;
        if (EffUpper) {
          St(Role::X) = transposedStructure(AS);
          S.ColDir = DimDir::BottomUp;
        }
      }
    } else {
      S.RowsPartitioned = false;
      S.ColsPartitioned = XC > 1;
      bool EffLower = !EffUpper;
      if (EffLower)
        S.ColDir = DimDir::BottomUp;
      St(Role::A) = EffLower ? transposedStructure(AS) : AS;
      SpecTerm T;
      T.F0 = {Role::X, false};
      T.F1 = {Role::A, Inst.TransA};
      T.Contraction = Axis::Col;
      S.Lhs.push_back(T);
      Dim(Role::A) = {true, Axis::Col, Axis::Col, true, true};
      Dim(Role::X) = {true, Axis::Row, Axis::Col, false,
                      S.ColsPartitioned};
    }
    break;
  }
  case HlacKind::Trsyl: {
    // op(A) X + X op(B) = C; op(A) lower, op(B) upper.
    bool Coupled = XR > 1 && XC > 1 && XR == XC;
    if (Coupled) {
      S.RowsPartitioned = S.ColsPartitioned = true;
    } else if (XC > 1) {
      S.ColsPartitioned = true;
      S.RowsPartitioned = false;
    } else {
      S.RowsPartitioned = XR > 1;
      S.ColsPartitioned = false;
    }
    St(Role::A) = asView(Inst.A)->structure();
    St(Role::B) = asView(Inst.B)->structure();
    SpecTerm T0;
    T0.F0 = {Role::A, Inst.TransA};
    T0.F1 = {Role::X, false};
    T0.Contraction = Axis::Row;
    SpecTerm T1;
    T1.F0 = {Role::X, false};
    T1.F1 = {Role::B, Inst.TransB};
    T1.Contraction = Axis::Col;
    S.Lhs.push_back(T0);
    S.Lhs.push_back(T1);
    Dim(Role::A) = {true, Axis::Row, Axis::Row, true, true};
    Dim(Role::B) = {true, Axis::Col, Axis::Col, true, true};
    Dim(Role::X) = {true, Axis::Row, Axis::Col, S.RowsPartitioned,
                    S.ColsPartitioned};
    break;
  }
  case HlacKind::Trlya: {
    assert(XR == XC && "Lyapunov of a non-square view");
    S.RowsPartitioned = S.ColsPartitioned = XR > 1;
    St(Role::A) = asView(Inst.A)->structure();
    StructureKind XS = asView(Inst.X)->structure();
    St(Role::X) = isSymmetric(XS) && XS != StructureKind::Zero
                      ? XS
                      : StructureKind::SymmetricLower;
    SpecTerm T0;
    T0.F0 = {Role::A, Inst.TransA};
    T0.F1 = {Role::X, false};
    T0.Contraction = Axis::Row;
    SpecTerm T1;
    T1.F0 = {Role::X, false};
    T1.F1 = {Role::A, !Inst.TransA};
    T1.Contraction = Axis::Col;
    S.Lhs.push_back(T0);
    S.Lhs.push_back(T1);
    Dim(Role::A) = {true, Axis::Row, Axis::Row, true, true};
    Dim(Role::X) = {true, Axis::Row, Axis::Col, true, true};
    break;
  }
  default:
    assert(false && "unsupported HLAC kind");
  }
  Dim(Role::C) = {true, Axis::Row, Axis::Col, S.RowsPartitioned,
                  S.ColsPartitioned};
  return S;
}

//===----------------------------------------------------------------------===//
// Emission.
//===----------------------------------------------------------------------===//

namespace {

struct Regions {
  int N = 1;
  int Off[3] = {0, 0, 0};
  int Ext[3] = {0, 0, 0};
};

Regions makeRegions(int Size, int K, int Blk, DimDir Dir, bool Partitioned) {
  Regions R;
  if (!Partitioned) {
    R.N = 1;
    R.Ext[0] = Size;
    return R;
  }
  R.N = 3;
  int Rest = Size - K - Blk;
  assert(Rest >= 0 && "block exceeds the matrix");
  if (Dir == DimDir::TopDown) {
    R.Off[0] = 0;
    R.Ext[0] = K;
    R.Off[1] = K;
    R.Ext[1] = Blk;
    R.Off[2] = K + Blk;
    R.Ext[2] = Rest;
  } else {
    R.Off[0] = Size - K;
    R.Ext[0] = K;
    R.Off[1] = Size - K - Blk;
    R.Ext[1] = Blk;
    R.Off[2] = 0;
    R.Ext[2] = Rest;
  }
  return R;
}

class Emitter {
public:
  Emitter(const HlacInstance &Inst, const SynthOptions &Opts,
          std::vector<EqStmt> &Out, Database *DB)
      : Inst(Inst), S(specForInstance(Inst)), Opts(Opts), Out(Out), DB(DB) {}

  bool run();

private:
  const HlacInstance &Inst;
  Spec S;
  const SynthOptions &Opts;
  std::vector<EqStmt> &Out;
  Database *DB;
  TaskGraph Graph;
  uint32_t Inv = 0;
  Regions Rows, Cols;
  /// Identity-RHS elements already initialized, at element granularity:
  /// region boundaries shift between steps, so a later write may cover a
  /// sub-rectangle of an earlier one and must not be mistaken for a first
  /// touch.
  std::set<std::pair<int, int>> IdentityInit;

  /// True if the rectangle of \p V was already written. Writes nest (later
  /// rectangles are subsets of earlier ones), so mixed states are a bug.
  bool identityInitialized(const ViewExpr *V) const {
    int Hit = 0;
    for (int R = 0; R < V->rows(); ++R)
      for (int C = 0; C < V->cols(); ++C)
        Hit += IdentityInit.count({V->R0 + R, V->C0 + C});
    assert((Hit == 0 || Hit == V->rows() * V->cols()) &&
           "partially initialized identity-RHS block");
    return Hit > 0;
  }

  void markIdentityInitialized(const ViewExpr *V) {
    for (int R = 0; R < V->rows(); ++R)
      for (int C = 0; C < V->cols(); ++C)
        IdentityInit.insert({V->R0 + R, V->C0 + C});
  }

  const ViewExpr *roleView(Role R) const {
    switch (R) {
    case Role::X:
      return asView(Inst.X);
    case Role::A:
      return asView(Inst.A);
    case Role::B:
      return asView(Inst.B);
    case Role::C:
      return asView(Inst.C);
    }
    return nullptr;
  }

  const Regions &axisRegions(Axis A) const {
    return A == Axis::Row ? Rows : Cols;
  }

  /// Extents of underlying block (Ri, Ci) of a role.
  std::pair<int, int> blockExt(Role R, int Ri, int Ci) const {
    const RoleDims &D = S.Dims[static_cast<int>(R)];
    const Regions &RR = axisRegions(D.RowAxis);
    const Regions &CR = axisRegions(D.ColAxis);
    return {RR.Ext[D.RowPart ? Ri : 0], CR.Ext[D.ColPart ? Ci : 0]};
  }

  /// Concrete view of underlying block (Ri, Ci) of a role. The work view
  /// of a block is the same region of the unknown's buffer (in-place).
  ExprPtr blockView(Role R, int Ri, int Ci) const {
    const RoleDims &D = S.Dims[static_cast<int>(R)];
    const ViewExpr *Base = roleView(R);
    const Regions &RR = axisRegions(D.RowAxis);
    const Regions &CR = axisRegions(D.ColAxis);
    int Rj = D.RowPart ? Ri : 0;
    int Cj = D.ColPart ? Ci : 0;
    return view(Base->Op, Base->R0 + RR.Off[Rj], RR.Ext[Rj],
                Base->C0 + CR.Off[Cj], CR.Ext[Cj]);
  }

  ExprPtr workView(int Ri, int Ci) const {
    return blockView(Role::X, Ri, Ci);
  }

  bool blockEmpty(Role R, int Ri, int Ci) const {
    auto [ER, EC] = blockExt(R, Ri, Ci);
    return ER == 0 || EC == 0;
  }

  ExprPtr factorExpr(const BBlock &B) const {
    ExprPtr V = blockView(B.R, B.RI, B.CI);
    return B.Trans ? trans(V) : V;
  }

  ExprPtr termExpr(const BTerm &T) const {
    assert(!T.F.empty());
    ExprPtr E = factorExpr(T.F[0]);
    for (size_t I = 1; I < T.F.size(); ++I)
      E = mul(E, factorExpr(T.F[I]));
    return E;
  }

  bool termHasEmptyFactor(const BTerm &T) const {
    for (const BBlock &B : T.F)
      if (blockEmpty(B.R, B.RI, B.CI))
        return true;
    return false;
  }

  static int quadBefore(int Region) { return Region == 0 ? 0 : 1; }
  static int quadAfter(int Region) { return Region <= 1 ? 0 : 1; }

  bool solvedBefore(int Ri, int Ci) const {
    int T = Graph.solveIndex(S.RowsPartitioned ? quadBefore(Ri) : 0,
                             S.ColsPartitioned ? quadBefore(Ci) : 0);
    return invariantHas(Inv, T);
  }
  bool solvedAfter(int Ri, int Ci) const {
    int T = Graph.solveIndex(S.RowsPartitioned ? quadAfter(Ri) : 0,
                             S.ColsPartitioned ? quadAfter(Ci) : 0);
    return invariantHas(Inv, T);
  }
  bool applyHeldAtBefore(int Ri, int Ci, int Group) const {
    int T = Graph.applyIndex(S.RowsPartitioned ? quadBefore(Ri) : 0,
                             S.ColsPartitioned ? quadBefore(Ci) : 0, Group);
    return invariantHas(Inv, T);
  }
  bool applyHeldAtAfter(int Ri, int Ci, int Group) const {
    int T = Graph.applyIndex(S.RowsPartitioned ? quadAfter(Ri) : 0,
                             S.ColsPartitioned ? quadAfter(Ci) : 0, Group);
    return invariantHas(Inv, T);
  }

  bool inDoneRegion(const BBlock &B) const {
    return (!S.RowsPartitioned || B.RI == 0) &&
           (!S.ColsPartitioned || B.CI == 0);
  }

  void emitUpdate(int Ri, int Ci, const BTerm &T);
  bool emitSolve(int Ri, int Ci, const std::vector<BTerm> &Solves);
  void emitSymmetricMirror(int Ri, int Ci);
  void emitTriangleZeroing();
  bool emitStep(int K, int Blk);
  bool emitBase();
};

bool Emitter::run() {
  if (!S.RowsPartitioned && !S.ColsPartitioned)
    return emitBase();

  Graph = buildTaskGraph(S);
  std::vector<uint32_t> Invs = enumerateInvariants(Graph);
  if (Invs.empty())
    return false;
  if (Opts.Variant >= static_cast<int>(Invs.size()))
    return false;
  Inv = Invs[Opts.Variant];

  const ViewExpr *X = asView(Inst.X);
  int N = S.RowsPartitioned ? X->rows() : X->cols();
  int BS = N > Opts.BlockSize ? Opts.BlockSize : 1;

  if (DB)
    DB->record(formatf("%s:n%d:b%d:v%d", hlacKindName(Inst.Kind), N, BS,
                       Opts.Variant));

  if (!Opts.Nested)
    emitTriangleZeroing();

  // When the unknown and the RHS live in different buffers, copy once and
  // work in place afterwards (library in-place semantics).
  if (Inst.C && asView(Inst.C)->Op->root() != X->Op->root()) {
    const ViewExpr *C = asView(Inst.C);
    Out.push_back({view(X->Op, X->R0, X->rows(), X->C0, X->cols()),
                   view(C->Op, C->R0, C->rows(), C->C0, C->cols())});
  }

  for (int K = 0; K < N;) {
    int Blk = std::min(BS, N - K);
    if (!emitStep(K, Blk))
      return false;
    K += Blk;
  }
  return true;
}

bool Emitter::emitStep(int K, int Blk) {
  const ViewExpr *X = asView(Inst.X);
  Rows = makeRegions(X->rows(), K, Blk, S.RowDir, S.RowsPartitioned);
  Cols = makeRegions(X->cols(), K, Blk, S.ColDir, S.ColsPartitioned);

  std::vector<std::pair<int, int>> Positions =
      storedPositions(S, Rows.N, Cols.N);

  std::vector<std::pair<int, int>> Newly;
  for (auto [Gi, Gj] : Positions) {
    auto [Ri, Ci] = targetOf(Gi, Gj);
    if (blockEmpty(Role::X, Ri, Ci))
      continue;
    if (!solvedBefore(Ri, Ci) && solvedAfter(Ri, Ci))
      Newly.push_back({Ri, Ci});
  }

  // Topologically order the newly blocks by their mutual dependencies.
  auto DependsOn = [&](std::pair<int, int> P, std::pair<int, int> Q) {
    std::vector<BTerm> Terms =
        expandAt(S, P.first, P.second, Rows.N, Cols.N);
    for (const BTerm &T : Terms)
      for (const BBlock &B : T.F)
        if (B.R == Role::X && B.RI == Q.first && B.CI == Q.second &&
            !(B.RI == P.first && B.CI == P.second))
          return true;
    return false;
  };
  for (size_t I = 0; I < Newly.size(); ++I) {
    bool Moved = true;
    while (Moved) {
      Moved = false;
      for (size_t J = I + 1; J < Newly.size(); ++J)
        if (DependsOn(Newly[I], Newly[J])) {
          std::rotate(Newly.begin() + I, Newly.begin() + J,
                      Newly.begin() + J + 1);
          Moved = true;
          break;
        }
    }
  }

  for (auto [Ri, Ci] : Newly) {
    std::vector<BTerm> Terms = expandAt(S, Ri, Ci, Rows.N, Cols.N);
    std::vector<BTerm> SolveTerms;
    for (const BTerm &T : Terms) {
      if (termHasEmptyFactor(T))
        continue;
      if (termContainsTarget(T, Ri, Ci)) {
        SolveTerms.push_back(T);
        continue;
      }
      // All unknown sources must be available by the time this runs.
      bool Pre = true;
      for (const BBlock &B : T.F)
        if (B.R == Role::X) {
          if (!solvedAfter(B.RI, B.CI))
            return false; // infeasible variant for emission
          Pre &= inDoneRegion(B);
        }
      if (Pre && applyHeldAtBefore(Ri, Ci, T.SpecTermIdx))
        continue; // already reflected in storage
      emitUpdate(Ri, Ci, T);
    }
    if (!emitSolve(Ri, Ci, SolveTerms))
      return false;
    emitSymmetricMirror(Ri, Ci);
  }

  // Advance the promised updates on not-yet-solved stored blocks.
  for (auto [Gi, Gj] : Positions) {
    auto [Ri, Ci] = targetOf(Gi, Gj);
    if (blockEmpty(Role::X, Ri, Ci) || solvedAfter(Ri, Ci))
      continue;
    std::vector<BTerm> Terms = expandAt(S, Ri, Ci, Rows.N, Cols.N);
    for (const BTerm &T : Terms) {
      if (termContainsTarget(T, Ri, Ci) || termHasEmptyFactor(T))
        continue;
      // The advance establishes the invariant at the *next* boundary, so
      // membership is judged at the block's after-quadrant.
      if (!applyHeldAtAfter(Ri, Ci, T.SpecTermIdx))
        continue;
      bool InFrontier = true, HasPanel = false;
      for (const BBlock &B : T.F) {
        if (B.R != Role::X)
          continue;
        int MaxR = std::max(S.RowsPartitioned ? B.RI : 0,
                            S.ColsPartitioned ? B.CI : 0);
        InFrontier &= MaxR <= 1;
        HasPanel |= MaxR == 1;
      }
      if (InFrontier && HasPanel)
        emitUpdate(Ri, Ci, T);
    }
  }
  return true;
}

/// Full-storage maintenance for symmetric unknowns (the paper's "full
/// storage scheme"): after an off-diagonal stored block is solved, its
/// transpose is copied into the mirrored position, so later reads of
/// square regions spanning both triangles see consistent data. Diagonal
/// sub-blocks are handled by the recursion: their own off-diagonal solves
/// mirror element-wise.
void Emitter::emitSymmetricMirror(int Ri, int Ci) {
  if (Ri == Ci || !isSymmetric(S.Struct[static_cast<int>(Role::X)]))
    return;
  ExprPtr Solved = workView(Ri, Ci);
  ExprPtr Mirror = blockView(Role::X, Ci, Ri);
  Out.push_back({std::move(Mirror), trans(std::move(Solved))});
}

/// ow()-dirty triangular unknowns (e.g. paper Fig. 5, where U overwrites
/// S): the non-stored triangle still holds the previous operand's data, so
/// establish the full-storage zeros up front. Fresh Out operands are
/// zero-initialized by the runtime and skip this.
void Emitter::emitTriangleZeroing() {
  const ViewExpr *X = asView(Inst.X);
  if (X->Op->root() == X->Op || X->rows() < 2)
    return;
  StructureKind XS = X->structure();
  int N = X->rows();
  if (XS == StructureKind::UpperTriangular) {
    for (int I = 1; I < N; ++I)
      Out.push_back({view(X->Op, X->R0 + I, 1, X->C0, I), constant(0.0)});
  } else if (XS == StructureKind::LowerTriangular) {
    for (int I = 0; I < N - 1; ++I)
      Out.push_back({view(X->Op, X->R0 + I, 1, X->C0 + I + 1, N - I - 1),
                     constant(0.0)});
  }
}

void Emitter::emitUpdate(int Ri, int Ci, const BTerm &T) {
  ExprPtr W = workView(Ri, Ci);
  ExprPtr Term = termExpr(T);
  const auto *WV = cast<ViewExpr>(W.get());
  if (S.CIsIdentity && !identityInitialized(WV)) {
    // First touch of an identity-RHS zero block: W = -term.
    markIdentityInitialized(WV);
    Out.push_back({W, neg(std::move(Term))});
    return;
  }
  Out.push_back({W, sub(W, std::move(Term))});
}

bool Emitter::emitSolve(int Ri, int Ci, const std::vector<BTerm> &Solves) {
  HlacInstance Sub;
  Sub.X = workView(Ri, Ci);
  Sub.C = workView(Ri, Ci); // in place
  const auto *XV = cast<ViewExpr>(Sub.X.get());
  if (S.CIsIdentity && !identityInitialized(XV)) {
    markIdentityInitialized(XV);
    Sub.C = nullptr;
    Sub.CIsIdentity = true;
  }
  SynthOptions SubOpts = Opts;
  SubOpts.Variant = 0; // recursive codelets use the default algorithm
  SubOpts.Nested = true;

  if (Solves.size() == 1) {
    const BTerm &T = Solves[0];
    if (T.F.size() == 1) {
      // Identity coefficient: the initial copy already solved this block.
      return true;
    }
    assert(T.F.size() == 2 && "bad solve term");
    bool F0IsTarget =
        T.F[0].R == Role::X && T.F[0].RI == Ri && T.F[0].CI == Ci;
    bool F1IsTarget =
        T.F[1].R == Role::X && T.F[1].RI == Ri && T.F[1].CI == Ci;
    if (F0IsTarget && F1IsTarget) {
      // Diagonal recursive Cholesky.
      Sub.Kind = HlacKind::Chol;
      Sub.UpperFactor = T.F[0].Trans;
      return expandHlac(Sub, SubOpts, Out, DB);
    }
    const BBlock &Coef = F1IsTarget ? T.F[0] : T.F[1];
    assert((F0IsTarget || F1IsTarget) && "solve term without target");
    assert(!(F1IsTarget ? T.F[1] : T.F[0]).Trans &&
           "transposed unknown in solve position");
    Sub.Kind = Sub.CIsIdentity ? HlacKind::Inv : HlacKind::Trsm;
    Sub.A = blockView(Coef.R, Coef.RI, Coef.CI);
    Sub.TransA = Coef.Trans;
    Sub.LeftA = F1IsTarget;
    return expandHlac(Sub, SubOpts, Out, DB);
  }

  if (Solves.size() == 2) {
    const BTerm *LeftT = nullptr, *RightT = nullptr;
    for (const BTerm &T : Solves) {
      if (T.F.size() != 2)
        return false;
      if (T.F[1].R == Role::X && T.F[1].RI == Ri && T.F[1].CI == Ci &&
          !T.F[1].Trans)
        LeftT = &T;
      else
        RightT = &T;
    }
    if (!LeftT || !RightT)
      return false;
    const BBlock &CA = LeftT->F[0];
    const BBlock &CB = RightT->F[1];
    if (S.Kind == HlacKind::Trlya && Ri == Ci && CA.R == CB.R &&
        CA.RI == CB.RI && CA.CI == CB.CI && CA.Trans != CB.Trans) {
      Sub.Kind = HlacKind::Trlya;
      Sub.A = blockView(CA.R, CA.RI, CA.CI);
      Sub.TransA = CA.Trans;
      return expandHlac(Sub, SubOpts, Out, DB);
    }
    Sub.Kind = HlacKind::Trsyl;
    Sub.A = blockView(CA.R, CA.RI, CA.CI);
    Sub.TransA = CA.Trans;
    Sub.B = blockView(CB.R, CB.RI, CB.CI);
    Sub.TransB = CB.Trans;
    return expandHlac(Sub, SubOpts, Out, DB);
  }
  return false;
}

bool Emitter::emitBase() {
  ExprPtr X = Inst.X;
  ExprPtr W = Inst.CIsIdentity ? nullptr : Inst.C;
  switch (Inst.Kind) {
  case HlacKind::Chol:
    assert(asView(X)->rows() == 1 && asView(X)->cols() == 1);
    Out.push_back({X, sqrtExpr(W)});
    return true;
  case HlacKind::Trsm: {
    // The unknown may be a 1 x m or m x 1 slab with a scalar coefficient:
    // per-element divisions, merged later by rules R0/R1 (paper Fig. 10).
    const ViewExpr *XV = asView(Inst.X);
    const ViewExpr *WV = asView(Inst.C);
    assert(asView(Inst.A)->rows() == 1 && asView(Inst.A)->cols() == 1 &&
           "non-scalar trsm coefficient in base case");
    if (asView(Inst.A)->Op->UnitDiag) {
      if (XV->Op->root() != WV->Op->root())
        Out.push_back({Inst.X, Inst.C});
      return true;
    }
    for (int R = 0; R < XV->rows(); ++R)
      for (int C = 0; C < XV->cols(); ++C)
        Out.push_back({view(XV->Op, XV->R0 + R, 1, XV->C0 + C, 1),
                       divExpr(view(WV->Op, WV->R0 + R, 1, WV->C0 + C, 1),
                               Inst.A)});
    return true;
  }
  case HlacKind::Inv:
    assert(asView(X)->rows() == 1 && asView(X)->cols() == 1);
    Out.push_back({X, divExpr(constant(1.0), Inst.A)});
    return true;
  case HlacKind::Trsyl: {
    const ViewExpr *XV = asView(Inst.X);
    const ViewExpr *WV = asView(Inst.C);
    assert(asView(Inst.A)->rows() == 1 && asView(Inst.B)->rows() == 1 &&
           "non-scalar trsyl coefficients in base case");
    for (int R = 0; R < XV->rows(); ++R)
      for (int C = 0; C < XV->cols(); ++C)
        Out.push_back({view(XV->Op, XV->R0 + R, 1, XV->C0 + C, 1),
                       divExpr(view(WV->Op, WV->R0 + R, 1, WV->C0 + C, 1),
                               add(Inst.A, Inst.B))});
    return true;
  }
  case HlacKind::Trlya:
    assert(asView(X)->rows() == 1 && asView(X)->cols() == 1);
    Out.push_back({X, divExpr(W, mul(constant(2.0), Inst.A))});
    return true;
  default:
    return false;
  }
}

} // namespace

int flame::countVariants(const HlacInstance &Inst) {
  const ViewExpr *X = asView(Inst.X);
  if (X->rows() == 1 && X->cols() == 1)
    return 1;
  Spec S = specForInstance(Inst);
  if (!S.RowsPartitioned && !S.ColsPartitioned)
    return 1;
  TaskGraph G = buildTaskGraph(S);
  int N = static_cast<int>(enumerateInvariants(G).size());
  return N > 0 ? N : 1;
}

bool Database::record(const std::string &Key) {
  auto [It, Inserted] = Hits.emplace(Key, 0);
  ++It->second;
  if (!Inserted)
    ++TotalHits;
  return !Inserted;
}

bool flame::expandHlac(const HlacInstance &Inst, const SynthOptions &Opts,
                       std::vector<EqStmt> &Out, Database *DB) {
  Emitter E(Inst, Opts, Out, DB);
  return E.run();
}
