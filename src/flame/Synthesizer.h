//===- flame/Synthesizer.h - blocked algorithm construction ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third Cl1ck stage plus SLinGen's Stage 1 (paper Secs. 2.2, 3.1):
/// given an HLAC instance and a loop invariant, emits the blocked algorithm
/// as a flat sequence of concrete sBLAC / scalar statements (the "basic
/// linear algebra program"). Panels are BlockSize (= nu) wide; the
/// vector-size sub-HLACs are synthesized recursively with block size 1 and
/// unrolled in place (paper Figs. 7-9). An algorithm database records
/// synthesis reuse (Stage 1a).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_FLAME_SYNTHESIZER_H
#define SLINGEN_FLAME_SYNTHESIZER_H

#include "flame/Invariant.h"

#include <map>
#include <string>

namespace slingen {
namespace flame {

/// A concrete occurrence of an HLAC: the unknown view, coefficient views,
/// and the right-hand-side source.
struct HlacInstance {
  HlacKind Kind = HlacKind::None;
  ExprPtr X;            ///< unknown region (ViewExpr)
  ExprPtr A;            ///< triangular coefficient (ViewExpr) or null
  bool TransA = false;
  bool LeftA = true;
  ExprPtr B;            ///< second coefficient for trsyl (ViewExpr) or null
  bool TransB = false;
  ExprPtr C;            ///< RHS source view, or null when CIsIdentity
  bool CIsIdentity = false;
  bool UpperFactor = false; ///< Cholesky X^T X (vs X X^T)
};

/// Builds an instance from a matched user-level HLAC. The match's RHS must
/// be a plain view (SLinGen materializes compound right-hand sides into
/// temporaries beforehand).
HlacInstance instanceFromMatch(const HlacMatch &M);

/// Derives the operation Spec (roles, structures, traversal directions)
/// for an instance of the given partitioning. Rows/Cols partitioning is
/// chosen automatically from the instance shape.
Spec specForInstance(const HlacInstance &Inst);

/// Number of algorithmic variants (feasible loop invariants) available for
/// this instance.
int countVariants(const HlacInstance &Inst);

/// Records which algorithms have been synthesized so repeated requests are
/// recognized (paper Stage 1a "algorithm reuse").
class Database {
public:
  /// Returns true if the key was already present (a reuse hit).
  bool record(const std::string &Key);
  int uniqueAlgorithms() const { return static_cast<int>(Hits.size()); }
  int reuseHits() const { return TotalHits; }

private:
  std::map<std::string, int> Hits;
  int TotalHits = 0;
};

struct SynthOptions {
  int BlockSize = 4; ///< panel width nu
  int Variant = 0;   ///< invariant index for the top-level loop
  /// Internal: set for recursive sub-expansions, which must not repeat
  /// whole-operand maintenance (the ow() triangle zeroing).
  bool Nested = false;
};

/// Expands the HLAC into basic statements appended to \p Out. Returns false
/// if the instance shape is unsupported. \p DB may be null.
bool expandHlac(const HlacInstance &Inst, const SynthOptions &Opts,
                std::vector<EqStmt> &Out, Database *DB);

} // namespace flame
} // namespace slingen

#endif // SLINGEN_FLAME_SYNTHESIZER_H
