//===- flame/Invariant.cpp ------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "flame/Invariant.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace slingen;
using namespace slingen::flame;

std::vector<uint32_t> flame::enumerateInvariants(const TaskGraph &G) {
  int N = static_cast<int>(G.Tasks.size());
  assert(N <= 20 && "task graph unexpectedly large");
  int MustHave = G.solveIndex(0, 0);
  int MustExclude = G.solveIndex(G.NRow2 - 1, G.NCol2 - 1);
  // For 1x1 grids (fully unpartitioned) there is nothing to enumerate.
  if (MustHave < 0)
    return {};
  std::vector<uint32_t> Out;
  for (uint32_t S = 0; S < (1u << N); ++S) {
    if (!invariantHas(S, MustHave))
      continue;
    if (MustExclude >= 0 && MustExclude != MustHave &&
        invariantHas(S, MustExclude))
      continue;
    bool Closed = true;
    for (int T = 0; T < N && Closed; ++T) {
      if (!invariantHas(S, T))
        continue;
      for (int D : G.Deps[T])
        Closed &= invariantHas(S, D);
    }
    if (Closed)
      Out.push_back(S);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](uint32_t A, uint32_t B) {
                     int CA = std::popcount(A), CB = std::popcount(B);
                     if (CA != CB)
                       return CA > CB; // most eager first
                     return A < B;
                   });
  return Out;
}
