//===- flame/BlockAlg.cpp -------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "flame/BlockAlg.h"

#include <cassert>

using namespace slingen;
using namespace slingen::flame;

namespace {

/// Normalizes a logical block access (R, C) of op(role) to an underlying
/// stored block, applying the transpose and the structural rules.
BBlock blockOf(const Spec &S, const SpecFactor &F, int R, int C) {
  BBlock B;
  B.R = F.R;
  B.Trans = F.Trans;
  // Underlying indices: op() swaps.
  B.RI = F.Trans ? C : R;
  B.CI = F.Trans ? R : C;
  StructureKind SK = S.Struct[static_cast<int>(F.R)];
  // Unpartitioned dimensions collapse to one region, so the structural
  // comparisons below only make sense when both dimensions of the role are
  // partitioned (square structured roles); otherwise the role is General.
  switch (SK) {
  case StructureKind::Zero:
    B.IsZero = true;
    break;
  case StructureKind::LowerTriangular:
    if (B.RI < B.CI)
      B.IsZero = true;
    break;
  case StructureKind::UpperTriangular:
    if (B.RI > B.CI)
      B.IsZero = true;
    break;
  case StructureKind::Identity:
    if (B.RI != B.CI)
      B.IsZero = true;
    else
      B.IsIdentity = true;
    break;
  case StructureKind::Diagonal:
    if (B.RI != B.CI)
      B.IsZero = true;
    break;
  case StructureKind::SymmetricUpper:
    if (B.RI > B.CI) { // redirect to the stored transpose
      std::swap(B.RI, B.CI);
      B.Trans = !B.Trans;
    }
    break;
  case StructureKind::SymmetricLower:
    if (B.RI < B.CI) {
      std::swap(B.RI, B.CI);
      B.Trans = !B.Trans;
    }
    break;
  case StructureKind::General:
    break;
  }
  return B;
}

} // namespace

std::vector<BTerm> flame::expandAt(const Spec &S, int Gi, int Gj, int NRow,
                                   int NCol) {
  std::vector<BTerm> Out;
  for (size_t TI = 0; TI < S.Lhs.size(); ++TI) {
    const SpecTerm &T = S.Lhs[TI];
    int NContract = T.Contraction == Axis::Row ? NRow : NCol;
    for (int Q = 0; Q < NContract; ++Q) {
      BBlock F0 = blockOf(S, T.F0, Gi, Q);
      BBlock F1 = blockOf(S, T.F1, Q, Gj);
      if (F0.IsZero || F1.IsZero)
        continue;
      BTerm BT;
      BT.ContractionRegion = Q;
      BT.SpecTermIdx = static_cast<int>(TI);
      if (!F0.IsIdentity)
        BT.F.push_back(F0);
      if (!F1.IsIdentity)
        BT.F.push_back(F1);
      assert(!BT.F.empty() && "identity-only term");
      Out.push_back(std::move(BT));
    }
  }
  return Out;
}

std::vector<std::pair<int, int>> flame::storedPositions(const Spec &S,
                                                        int NRow, int NCol) {
  std::vector<std::pair<int, int>> Out;
  StructureKind XS = S.Struct[static_cast<int>(Role::X)];
  for (int I = 0; I < NRow; ++I)
    for (int J = 0; J < NCol; ++J) {
      bool Stored = true;
      // Only square coupled grids carry structure.
      if (NRow == NCol && NRow > 1) {
        switch (XS) {
        case StructureKind::LowerTriangular:
        case StructureKind::SymmetricLower:
          Stored = I >= J;
          break;
        case StructureKind::UpperTriangular:
        case StructureKind::SymmetricUpper:
          Stored = I <= J;
          break;
        default:
          break;
        }
      }
      if (Stored)
        Out.push_back({I, J});
    }
  return Out;
}

bool flame::termContainsTarget(const BTerm &T, int Ri, int Ci) {
  for (const BBlock &B : T.F)
    if (B.R == Role::X && B.RI == Ri && B.CI == Ci)
      return true;
  return false;
}
