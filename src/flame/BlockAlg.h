//===- flame/BlockAlg.h - block-symbolic algebra for PME generation -------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic layer under Cl1ck-style algorithm synthesis (paper Sec. 2.2):
/// an HLAC equation is abstracted into an operation Spec (roles X/A/B/C with
/// region-space structures and traversal directions), and its left-hand side
/// is expanded blockwise over a region grid (2 regions for quadrant-level
/// task analysis, 3 regions for repartitioned loop-body emission). Structure
/// knowledge prunes zero blocks and redirects symmetric blocks to their
/// stored (possibly transposed) counterparts.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_FLAME_BLOCKALG_H
#define SLINGEN_FLAME_BLOCKALG_H

#include "expr/HlacMatch.h"

#include <vector>

namespace slingen {
namespace flame {

enum class Role { X = 0, A = 1, B = 2, C = 3 };
enum class Axis { Row, Col };
enum class DimDir { TopDown, BottomUp };

/// One multiplicative factor of a defining-equation term.
struct SpecFactor {
  Role R;
  bool Trans = false;
};

/// One term of the equation LHS: a product of two factors, exactly one of
/// which involves the unknown for solvable equations (Cholesky has the
/// unknown in both). The contraction between the factors runs over the
/// given grid axis.
struct SpecTerm {
  SpecFactor F0, F1;
  Axis Contraction = Axis::Row;
};

/// Per-role placement: which grid axis each of the role's two dimensions
/// partitions along (or none for an unpartitioned dimension).
struct RoleDims {
  bool Present = false;
  Axis RowAxis = Axis::Row, ColAxis = Axis::Col;
  bool RowPart = true, ColPart = true;
};

/// The canonicalized operation: LHS(X) = C.
struct Spec {
  HlacKind Kind = HlacKind::None;
  std::vector<SpecTerm> Lhs;
  bool RowsPartitioned = true;
  bool ColsPartitioned = true;
  DimDir RowDir = DimDir::TopDown;
  DimDir ColDir = DimDir::TopDown;
  /// Region-space structure per role (traversal flips applied).
  StructureKind Struct[4] = {StructureKind::General, StructureKind::General,
                             StructureKind::General, StructureKind::General};
  RoleDims Dims[4];
  bool CIsIdentity = false;
  bool AUnitDiag = false;
};

/// A concrete block of a role in region coordinates, after structural
/// normalization (underlying indices; Trans reflects op() plus any
/// symmetric-alias flip).
struct BBlock {
  Role R;
  bool Trans = false;
  int RI = 0, CI = 0; ///< underlying (storage) region indices
  bool IsIdentity = false;
  bool IsZero = false;
};

/// One additive term of a block equation.
struct BTerm {
  std::vector<BBlock> F; ///< 1 or 2 factors (identity factors dropped)
  int ContractionRegion = -1; ///< region index summed over (-1: none)
  int SpecTermIdx = 0; ///< which SpecTerm this came from (the update group)
};

/// Expands the LHS of \p S at grid position (Gi, Gj) over \p NRow x \p NCol
/// region grids (axes with a single region use index 0). Zero terms are
/// pruned; symmetric blocks are alias-normalized.
std::vector<BTerm> expandAt(const Spec &S, int Gi, int Gj, int NRow,
                            int NCol);

/// The stored grid positions of the unknown (the equations to solve), for a
/// grid with NRow x NCol regions, honoring X's region-space structure.
std::vector<std::pair<int, int>> storedPositions(const Spec &S, int NRow,
                                                 int NCol);

/// Returns true if \p T contains the unknown block at underlying position
/// (Ri, Ci) (i.e. it is a solve term of that equation).
bool termContainsTarget(const BTerm &T, int Ri, int Ci);

/// Underlying (storage) position of the unknown solved by the equation at
/// grid position (Gi, Gj) -- identical for all our operations.
inline std::pair<int, int> targetOf(int Gi, int Gj) { return {Gi, Gj}; }

} // namespace flame
} // namespace slingen

#endif // SLINGEN_FLAME_BLOCKALG_H
