//===- flame/Invariant.h - loop-invariant enumeration ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second Cl1ck stage (paper Sec. 2.2): loop invariants are the
/// dependency-closed subsets of the PME task graph that (a) hold vacuously
/// at loop entry -- which excludes the solve task of the all-future
/// quadrant -- and (b) imply the full computation at loop exit -- which
/// requires the solve task of the done-quadrant. Each feasible invariant
/// yields one algorithmic variant.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_FLAME_INVARIANT_H
#define SLINGEN_FLAME_INVARIANT_H

#include "flame/PME.h"

#include <cstdint>

namespace slingen {
namespace flame {

/// Feasible loop invariants as task bitmasks, ordered most-eager first
/// (descending task count), so variant 0 is the right-looking algorithm.
std::vector<uint32_t> enumerateInvariants(const TaskGraph &G);

/// True if task \p T is a member of invariant \p Inv.
inline bool invariantHas(uint32_t Inv, int T) {
  return T >= 0 && (Inv >> T) & 1u;
}

} // namespace flame
} // namespace slingen

#endif // SLINGEN_FLAME_INVARIANT_H
