//===- la/Parser.h - recursive-descent parser for LA ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser implementing the LA grammar of paper Fig. 4.
/// Errors are reported as "line:col: message" strings; the parser stops at
/// the first error (the generator is non-interactive, so error recovery is
/// not needed).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LA_PARSER_H
#define SLINGEN_LA_PARSER_H

#include "la/Ast.h"

#include <optional>
#include <string>

namespace slingen {
namespace la {

/// Parses \p Source into an AST. Returns std::nullopt and fills
/// \p ErrorMsg on failure.
std::optional<AstProgram> parse(const std::string &Source,
                                std::string &ErrorMsg);

} // namespace la
} // namespace slingen

#endif // SLINGEN_LA_PARSER_H
