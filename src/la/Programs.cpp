//===- la/Programs.cpp ----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "la/Programs.h"

#include "support/Format.h"

using namespace slingen;

std::string la::fig5Source(int K, int N) {
  return formatf(R"la(
Mat H(%d, %d) <In>;
Mat P(%d, %d) <In, UpSym, PD>;
Mat R(%d, %d) <In, UpSym, PD>;
Mat S(%d, %d) <Out, UpSym, PD>;
Mat U(%d, %d) <Out, UpTri, NS, ow(S)>;
Mat B(%d, %d) <Out>;

S = H * H' + R;
U' * U = S;
U' * B = P;
)la",
                 K, N, K, K, K, K, K, K, K, K, K, K);
}

std::string la::potrfSource(int N) {
  return formatf(R"la(
Mat A(%d, %d) <In, UpSym, PD>;
Mat X(%d, %d) <Out, UpTri, NS>;

X' * X = A;
)la",
                 N, N, N, N);
}

std::string la::trsylSource(int N) {
  return formatf(R"la(
Mat L(%d, %d) <In, LoTri, NS>;
Mat U(%d, %d) <In, UpTri, NS>;
Mat C(%d, %d) <In>;
Mat X(%d, %d) <Out>;

L * X + X * U = C;
)la",
                 N, N, N, N, N, N, N, N);
}

std::string la::trlyaSource(int N) {
  return formatf(R"la(
Mat L(%d, %d) <In, LoTri, NS>;
Mat S(%d, %d) <In, LoSym>;
Mat X(%d, %d) <Out, LoSym>;

L * X + X * L' = S;
)la",
                 N, N, N, N, N, N);
}

std::string la::trtriSource(int N) {
  return formatf(R"la(
Mat L(%d, %d) <In, LoTri, NS>;
Mat X(%d, %d) <Out, LoTri, NS>;

X = inv(L);
)la",
                 N, N, N, N);
}

std::string la::kalmanSource(int StateN, int ObsK) {
  int N = StateN, K = ObsK;
  std::string S;
  S += formatf("Mat F(%d, %d) <In>;\n", N, N);
  S += formatf("Mat Bm(%d, %d) <In>;\n", N, N);
  S += formatf("Mat Q(%d, %d) <In, UpSym>;\n", N, N);
  S += formatf("Mat H(%d, %d) <In>;\n", K, N);
  S += formatf("Mat R(%d, %d) <In, UpSym, PD>;\n", K, K);
  S += formatf("Mat P(%d, %d) <InOut, UpSym, PD>;\n", N, N);
  S += formatf("Vec u(%d) <In>;\n", N);
  S += formatf("Vec x(%d) <InOut>;\n", N);
  S += formatf("Vec z(%d) <In>;\n", K);
  S += formatf("Vec y(%d) <Out>;\n", N);
  S += formatf("Mat Y(%d, %d) <Out, UpSym>;\n", N, N);
  S += formatf("Vec v0(%d) <Out>;\n", K);
  S += formatf("Mat M1(%d, %d) <Out>;\n", K, N);
  S += formatf("Mat M2(%d, %d) <Out>;\n", N, K);
  S += formatf("Mat M3(%d, %d) <Out, UpSym, PD>;\n", K, K);
  S += formatf("Mat U(%d, %d) <Out, UpTri, NS, ow(M3)>;\n", K, K);
  S += formatf("Vec v1(%d) <Out>;\n", K);
  S += formatf("Vec v2(%d) <Out>;\n", K);
  S += formatf("Mat M4(%d, %d) <Out, ow(M1)>;\n", K, N);
  S += formatf("Mat M5(%d, %d) <Out, ow(M4)>;\n", K, N);
  S += R"la(
y = F * x + Bm * u;
Y = F * P * F' + Q;
v0 = z - H * y;
M1 = H * Y;
M2 = Y * H';
M3 = M1 * H' + R;
U' * U = M3;
U' * v1 = v0;
U * v2 = v1;
U' * M4 = M1;
U * M5 = M4;
x = y + M2 * v2;
P = Y - M2 * M5;
)la";
  return S;
}

std::string la::gprSource(int N) {
  std::string S;
  S += formatf("Mat K(%d, %d) <In, UpSym, PD>;\n", N, N);
  S += formatf("Mat X(%d, %d) <In>;\n", N, N);
  S += formatf("Vec x(%d) <In>;\n", N);
  S += formatf("Vec y(%d) <In>;\n", N);
  S += formatf("Mat L(%d, %d) <Out, LoTri, NS, ow(K)>;\n", N, N);
  S += formatf("Vec t0(%d) <Out>;\n", N);
  S += formatf("Vec t1(%d) <Out>;\n", N);
  S += formatf("Vec k(%d) <Out>;\n", N);
  S += formatf("Vec v(%d) <Out>;\n", N);
  S += "Sca phi <Out>;\nSca psi <Out>;\nSca lambda <Out>;\n";
  S += R"la(
L * L' = K;
L * t0 = y;
L' * t1 = t0;
k = X * x;
phi = k' * t1;
L * v = k;
psi = x' * x - v' * v;
lambda = y' * t1;
)la";
  return S;
}

std::string la::l1aSource(int N) {
  std::string S;
  S += formatf("Mat W(%d, %d) <In>;\n", N, N);
  S += formatf("Mat A(%d, %d) <In>;\n", N, N);
  S += formatf("Vec x0(%d) <In>;\n", N);
  S += formatf("Vec y(%d) <In>;\n", N);
  S += formatf("Vec v1(%d) <InOut>;\n", N);
  S += formatf("Vec z1(%d) <InOut>;\n", N);
  S += formatf("Vec v2(%d) <InOut>;\n", N);
  S += formatf("Vec z2(%d) <InOut>;\n", N);
  S += "Sca alpha <In>;\nSca beta <In>;\nSca tau <In>;\n";
  S += formatf("Vec y1(%d) <Out>;\n", N);
  S += formatf("Vec y2(%d) <Out>;\n", N);
  S += formatf("Vec x1(%d) <Out>;\n", N);
  S += formatf("Vec x(%d) <Out>;\n", N);
  S += R"la(
y1 = alpha * v1 + tau * z1;
y2 = alpha * v2 + tau * z2;
x1 = W' * y1 - A' * y2;
x = x0 + beta * x1;
z1 = y1 - W * x;
z2 = y2 - (y - A * x);
v1 = alpha * v1 + tau * z1;
v2 = alpha * v2 + tau * z2;
)la";
  return S;
}
