//===- la/Programs.h - the paper's LA benchmark programs ------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LA sources for the computations evaluated in the paper: the Fig. 5
/// Cholesky fragment, the Table 3 HLACs (potrf, trsyl, trlya, trtri) and the
/// Fig. 13 applications (Kalman filter, Gaussian process regression,
/// L1-analysis convex solver), parameterized by problem size. Tests,
/// examples, and every benchmark build their inputs from these.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LA_PROGRAMS_H
#define SLINGEN_LA_PROGRAMS_H

#include <string>

namespace slingen {
namespace la {

/// Paper Fig. 5: S = H H^T + R; U^T U = S; U^T B = P.
std::string fig5Source(int K, int N);

/// Table 3 HLAC drivers. X is the output in all cases.
std::string potrfSource(int N);  ///< X^T X = A, X upper triangular
std::string trsylSource(int N);  ///< L X + X U = C
std::string trlyaSource(int N);  ///< L X + X L^T = S, X symmetric
std::string trtriSource(int N);  ///< X = inv(L), X lower triangular

/// Paper Fig. 13a: one Kalman filter iteration with \p StateN states and
/// \p ObsK observations (Fig. 15a uses ObsK == StateN; Fig. 15b fixes
/// StateN = 28).
std::string kalmanSource(int StateN, int ObsK);

/// Paper Fig. 13b: Gaussian process regression (predictive mean/variance).
std::string gprSource(int N);

/// Paper Fig. 13c: one iteration of the L1-analysis convex solver.
std::string l1aSource(int N);

} // namespace la
} // namespace slingen

#endif // SLINGEN_LA_PROGRAMS_H
