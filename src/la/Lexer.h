//===- la/Lexer.h - tokenizer for the LA language --------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the LA input language (paper Fig. 4). The concrete syntax
/// follows the paper closely; transposition is written `trans(X)` or the
/// MATLAB-style postfix `X'`, and `#` starts a line comment.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LA_LEXER_H
#define SLINGEN_LA_LEXER_H

#include <string>
#include <vector>

namespace slingen {
namespace la {

enum class TokKind {
  Eof,
  Ident,
  Number,
  // Keywords.
  KwMat,
  KwVec,
  KwSca,
  KwIn,
  KwOut,
  KwInOut,
  KwLoTri,
  KwUpTri,
  KwUpSym,
  KwLoSym,
  KwPD,
  KwNS,
  KwUnitDiag,
  KwOw,
  KwFor,
  KwTrans,
  KwSqrt,
  KwInv,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Less,
  Greater,
  Comma,
  Semi,
  Colon,
  Equal,
  Plus,
  Minus,
  Star,
  Slash,
  Quote,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  double NumValue = 0.0;
  bool IsInt = false;
  int Line = 0, Col = 0;
};

/// Tokenizes \p Source. On a lexical error, returns false and fills
/// \p ErrorMsg with a "line:col: message" diagnostic.
bool lex(const std::string &Source, std::vector<Token> &Out,
         std::string &ErrorMsg);

} // namespace la
} // namespace slingen

#endif // SLINGEN_LA_LEXER_H
