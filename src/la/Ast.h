//===- la/Ast.h - abstract syntax tree of the LA language ----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parsed form of an LA program, before semantic analysis. Index
/// expressions are affine in the induction variables of enclosing for-loops
/// (the paper's ⟨statement⟩_i notation); lowering substitutes concrete values
/// while unrolling.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LA_AST_H
#define SLINGEN_LA_AST_H

#include "expr/Structure.h"
#include "expr/Operand.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace slingen {
namespace la {

/// An affine form c + sum_i coeff_i * var_i over loop induction variables.
struct Affine {
  int Const = 0;
  std::map<std::string, int> Coeffs;

  bool isConstant() const { return Coeffs.empty(); }

  /// Evaluates under a binding of induction variables; asserts all vars
  /// bound.
  int eval(const std::map<std::string, int> &Bindings) const;

  Affine operator+(const Affine &O) const;
  Affine operator-(const Affine &O) const;
  Affine scaled(int F) const;
};

enum class AstKind { Ref, Number, Unary, Binary };
enum class AstUnOp { Trans, Neg, Sqrt, Inv };
enum class AstBinOp { Add, Sub, Mul, Div };

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

/// One index range Lo:Hi (half-open) or a single index (Hi unset).
struct AstRange {
  Affine Lo;
  Affine Hi;
  bool Single = false;
};

struct AstExpr {
  AstKind Kind;
  int Line = 0, Col = 0;

  // Ref:
  std::string Name;
  std::vector<AstRange> Indices; // 0 (whole), 1 (vector/element), or 2

  // Number:
  double Value = 0.0;

  // Unary / Binary:
  AstUnOp UnOp = AstUnOp::Trans;
  AstBinOp BinOp = AstBinOp::Add;
  AstExprPtr L, R;
};

struct AstStmt;
using AstStmtPtr = std::unique_ptr<AstStmt>;

struct AstStmt {
  bool IsFor = false;
  int Line = 0;

  // Equation.
  AstExprPtr Lhs, Rhs;

  // For loop: for (var = Lo:Hi[:Step]) { body }.
  std::string Var;
  Affine Lo, Hi;
  int Step = 1;
  std::vector<AstStmtPtr> Body;
};

struct AstDecl {
  std::string Name;
  int Line = 0;
  enum class Shape { Mat, Vec, Sca } Shape = Shape::Mat;
  int Rows = 1, Cols = 1;
  IOKind IO = IOKind::In;
  StructureKind Structure = StructureKind::General;
  bool PosDef = false, NonSingular = false, UnitDiag = false;
  std::string Overwrites; // empty when absent
};

struct AstProgram {
  std::vector<AstDecl> Decls;
  std::vector<AstStmtPtr> Stmts;
};

} // namespace la
} // namespace slingen

#endif // SLINGEN_LA_AST_H
