//===- la/Lower.h - semantic analysis and lowering to expr::Program -------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis of a parsed LA program and lowering into the concrete
/// expr::Program form: declarations become Operands, for-loops are unrolled
/// (all bounds are compile-time constants, paper Sec. 5 "fixed input and
/// output sizes"), affine indices are evaluated, and shapes are checked.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_LA_LOWER_H
#define SLINGEN_LA_LOWER_H

#include "expr/Program.h"
#include "la/Ast.h"

#include <optional>
#include <string>

namespace slingen {
namespace la {

/// Lowers \p Ast into an executable program. Returns std::nullopt and fills
/// \p ErrorMsg on a semantic error.
std::optional<Program> lower(const AstProgram &Ast, std::string &ErrorMsg);

/// Convenience: parse + lower in one step.
std::optional<Program> compileLa(const std::string &Source,
                                 std::string &ErrorMsg);

} // namespace la
} // namespace slingen

#endif // SLINGEN_LA_LOWER_H
