//===- la/Parser.cpp ------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "la/Parser.h"

#include "la/Lexer.h"
#include "support/Format.h"

#include <cassert>

using namespace slingen;
using namespace slingen::la;

int Affine::eval(const std::map<std::string, int> &Bindings) const {
  int V = Const;
  for (const auto &[Var, Coeff] : Coeffs) {
    auto It = Bindings.find(Var);
    assert(It != Bindings.end() && "unbound induction variable");
    V += Coeff * It->second;
  }
  return V;
}

Affine Affine::operator+(const Affine &O) const {
  Affine R = *this;
  R.Const += O.Const;
  for (const auto &[Var, Coeff] : O.Coeffs)
    if ((R.Coeffs[Var] += Coeff) == 0)
      R.Coeffs.erase(Var);
  return R;
}

Affine Affine::operator-(const Affine &O) const {
  return *this + O.scaled(-1);
}

Affine Affine::scaled(int F) const {
  Affine R;
  R.Const = Const * F;
  if (F != 0)
    for (const auto &[Var, Coeff] : Coeffs)
      R.Coeffs[Var] = Coeff * F;
  return R;
}

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens) : Toks(std::move(Tokens)) {}

  std::optional<AstProgram> run(std::string &ErrorMsg) {
    AstProgram P;
    while (isDeclStart())
      if (!parseDecl(P)) {
        ErrorMsg = Error;
        return std::nullopt;
      }
    while (cur().Kind != TokKind::Eof) {
      AstStmtPtr S = parseStmt();
      if (!S) {
        ErrorMsg = Error;
        return std::nullopt;
      }
      P.Stmts.push_back(std::move(S));
    }
    return P;
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::string Error;

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(int N = 1) const {
    size_t I = Pos + static_cast<size_t>(N);
    return Toks[I < Toks.size() ? I : Toks.size() - 1];
  }
  void advance() {
    if (cur().Kind != TokKind::Eof)
      ++Pos;
  }

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatf("%d:%d: %s", cur().Line, cur().Col, Msg.c_str());
    return false;
  }

  bool expect(TokKind K, const char *What) {
    if (cur().Kind != K)
      return fail(formatf("expected %s", What));
    advance();
    return true;
  }

  bool isDeclStart() const {
    TokKind K = cur().Kind;
    return K == TokKind::KwMat || K == TokKind::KwVec || K == TokKind::KwSca;
  }

  bool parseInt(int &Out) {
    if (cur().Kind != TokKind::Number || !cur().IsInt)
      return fail("expected an integer literal size");
    Out = static_cast<int>(cur().NumValue);
    advance();
    return true;
  }

  bool parseDecl(AstProgram &P);
  AstStmtPtr parseStmt();
  AstStmtPtr parseFor();
  AstExprPtr parseExpr();
  AstExprPtr parseAddSub();
  AstExprPtr parseMulDiv();
  AstExprPtr parseUnary();
  AstExprPtr parsePrimary();
  bool parseAffine(Affine &Out);
  bool parseAffineTerm(Affine &Out);
};

bool Parser::parseDecl(AstProgram &P) {
  AstDecl D;
  D.Line = cur().Line;
  switch (cur().Kind) {
  case TokKind::KwMat:
    D.Shape = AstDecl::Shape::Mat;
    break;
  case TokKind::KwVec:
    D.Shape = AstDecl::Shape::Vec;
    break;
  case TokKind::KwSca:
    D.Shape = AstDecl::Shape::Sca;
    break;
  default:
    return fail("expected a declaration");
  }
  advance();
  if (cur().Kind != TokKind::Ident)
    return fail("expected an operand name");
  D.Name = cur().Text;
  advance();

  if (D.Shape == AstDecl::Shape::Mat) {
    if (!expect(TokKind::LParen, "'('") || !parseInt(D.Rows) ||
        !expect(TokKind::Comma, "','") || !parseInt(D.Cols) ||
        !expect(TokKind::RParen, "')'"))
      return false;
  } else if (D.Shape == AstDecl::Shape::Vec) {
    if (!expect(TokKind::LParen, "'('") || !parseInt(D.Rows) ||
        !expect(TokKind::RParen, "')'"))
      return false;
    D.Cols = 1;
  }

  if (!expect(TokKind::Less, "'<'"))
    return false;
  // First entry must be the I/O type.
  switch (cur().Kind) {
  case TokKind::KwIn:
    D.IO = IOKind::In;
    break;
  case TokKind::KwOut:
    D.IO = IOKind::Out;
    break;
  case TokKind::KwInOut:
    D.IO = IOKind::InOut;
    break;
  default:
    return fail("expected In, Out, or InOut");
  }
  advance();
  while (cur().Kind == TokKind::Comma) {
    advance();
    switch (cur().Kind) {
    case TokKind::KwLoTri:
      D.Structure = StructureKind::LowerTriangular;
      break;
    case TokKind::KwUpTri:
      D.Structure = StructureKind::UpperTriangular;
      break;
    case TokKind::KwUpSym:
      D.Structure = StructureKind::SymmetricUpper;
      break;
    case TokKind::KwLoSym:
      D.Structure = StructureKind::SymmetricLower;
      break;
    case TokKind::KwPD:
      D.PosDef = true;
      break;
    case TokKind::KwNS:
      D.NonSingular = true;
      break;
    case TokKind::KwUnitDiag:
      D.UnitDiag = true;
      break;
    case TokKind::KwOw: {
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return false;
      if (cur().Kind != TokKind::Ident)
        return fail("expected an operand name in ow(...)");
      D.Overwrites = cur().Text;
      advance();
      if (!expect(TokKind::RParen, "')'"))
        return false;
      continue; // ow token handling consumed its own tokens
    }
    default:
      return fail("unknown property");
    }
    advance();
  }
  if (!expect(TokKind::Greater, "'>'") || !expect(TokKind::Semi, "';'"))
    return false;
  P.Decls.push_back(std::move(D));
  return true;
}

AstStmtPtr Parser::parseStmt() {
  if (cur().Kind == TokKind::KwFor)
    return parseFor();
  auto S = std::make_unique<AstStmt>();
  S->Line = cur().Line;
  S->Lhs = parseExpr();
  if (!S->Lhs)
    return nullptr;
  if (!expect(TokKind::Equal, "'='"))
    return nullptr;
  S->Rhs = parseExpr();
  if (!S->Rhs)
    return nullptr;
  if (!expect(TokKind::Semi, "';'"))
    return nullptr;
  return S;
}

AstStmtPtr Parser::parseFor() {
  auto S = std::make_unique<AstStmt>();
  S->IsFor = true;
  S->Line = cur().Line;
  advance(); // for
  if (!expect(TokKind::LParen, "'('"))
    return nullptr;
  if (cur().Kind != TokKind::Ident) {
    fail("expected an induction variable");
    return nullptr;
  }
  S->Var = cur().Text;
  advance();
  if (!expect(TokKind::Equal, "'='"))
    return nullptr;
  if (!parseAffine(S->Lo))
    return nullptr;
  if (!expect(TokKind::Colon, "':'"))
    return nullptr;
  if (!parseAffine(S->Hi))
    return nullptr;
  if (cur().Kind == TokKind::Colon) {
    advance();
    if (cur().Kind != TokKind::Number || !cur().IsInt) {
      fail("expected an integer step");
      return nullptr;
    }
    S->Step = static_cast<int>(cur().NumValue);
    advance();
  }
  if (!expect(TokKind::RParen, "')'") || !expect(TokKind::LBrace, "'{'"))
    return nullptr;
  while (cur().Kind != TokKind::RBrace) {
    if (cur().Kind == TokKind::Eof) {
      fail("unterminated for body");
      return nullptr;
    }
    AstStmtPtr Inner = parseStmt();
    if (!Inner)
      return nullptr;
    S->Body.push_back(std::move(Inner));
  }
  advance(); // }
  return S;
}

AstExprPtr Parser::parseExpr() { return parseAddSub(); }

AstExprPtr Parser::parseAddSub() {
  AstExprPtr L = parseMulDiv();
  if (!L)
    return nullptr;
  while (cur().Kind == TokKind::Plus || cur().Kind == TokKind::Minus) {
    AstBinOp Op =
        cur().Kind == TokKind::Plus ? AstBinOp::Add : AstBinOp::Sub;
    advance();
    AstExprPtr R = parseMulDiv();
    if (!R)
      return nullptr;
    auto E = std::make_unique<AstExpr>();
    E->Kind = AstKind::Binary;
    E->BinOp = Op;
    E->L = std::move(L);
    E->R = std::move(R);
    L = std::move(E);
  }
  return L;
}

AstExprPtr Parser::parseMulDiv() {
  AstExprPtr L = parseUnary();
  if (!L)
    return nullptr;
  while (cur().Kind == TokKind::Star || cur().Kind == TokKind::Slash) {
    AstBinOp Op =
        cur().Kind == TokKind::Star ? AstBinOp::Mul : AstBinOp::Div;
    advance();
    AstExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    auto E = std::make_unique<AstExpr>();
    E->Kind = AstKind::Binary;
    E->BinOp = Op;
    E->L = std::move(L);
    E->R = std::move(R);
    L = std::move(E);
  }
  return L;
}

AstExprPtr Parser::parseUnary() {
  if (cur().Kind == TokKind::Minus) {
    int Line = cur().Line, Col = cur().Col;
    advance();
    AstExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    auto E = std::make_unique<AstExpr>();
    E->Kind = AstKind::Unary;
    E->UnOp = AstUnOp::Neg;
    E->L = std::move(Sub);
    E->Line = Line;
    E->Col = Col;
    return E;
  }
  return parsePrimary();
}

AstExprPtr Parser::parsePrimary() {
  AstExprPtr E;
  int Line = cur().Line, Col = cur().Col;
  switch (cur().Kind) {
  case TokKind::KwTrans:
  case TokKind::KwSqrt:
  case TokKind::KwInv: {
    AstUnOp Op = cur().Kind == TokKind::KwTrans  ? AstUnOp::Trans
                 : cur().Kind == TokKind::KwSqrt ? AstUnOp::Sqrt
                                                 : AstUnOp::Inv;
    advance();
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    AstExprPtr Sub = parseExpr();
    if (!Sub || !expect(TokKind::RParen, "')'"))
      return nullptr;
    E = std::make_unique<AstExpr>();
    E->Kind = AstKind::Unary;
    E->UnOp = Op;
    E->L = std::move(Sub);
    break;
  }
  case TokKind::LParen: {
    advance();
    E = parseExpr();
    if (!E || !expect(TokKind::RParen, "')'"))
      return nullptr;
    break;
  }
  case TokKind::Number: {
    E = std::make_unique<AstExpr>();
    E->Kind = AstKind::Number;
    E->Value = cur().NumValue;
    advance();
    break;
  }
  case TokKind::Ident: {
    E = std::make_unique<AstExpr>();
    E->Kind = AstKind::Ref;
    E->Name = cur().Text;
    advance();
    if (cur().Kind == TokKind::LParen) {
      advance();
      do {
        AstRange R;
        if (!parseAffine(R.Lo))
          return nullptr;
        if (cur().Kind == TokKind::Colon) {
          advance();
          if (!parseAffine(R.Hi))
            return nullptr;
        } else {
          R.Single = true;
        }
        E->Indices.push_back(std::move(R));
        if (cur().Kind != TokKind::Comma)
          break;
        advance();
      } while (true);
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      if (E->Indices.size() > 2) {
        fail("too many index ranges");
        return nullptr;
      }
    }
    break;
  }
  default:
    fail("expected an expression");
    return nullptr;
  }
  E->Line = Line;
  E->Col = Col;
  // Postfix transpose: X' (possibly repeated).
  while (cur().Kind == TokKind::Quote) {
    advance();
    auto T = std::make_unique<AstExpr>();
    T->Kind = AstKind::Unary;
    T->UnOp = AstUnOp::Trans;
    T->L = std::move(E);
    T->Line = Line;
    T->Col = Col;
    E = std::move(T);
  }
  return E;
}

bool Parser::parseAffine(Affine &Out) {
  Out = Affine();
  bool Negate = false;
  if (cur().Kind == TokKind::Minus) {
    Negate = true;
    advance();
  }
  Affine Term;
  if (!parseAffineTerm(Term))
    return false;
  Out = Negate ? Term.scaled(-1) : Term;
  while (cur().Kind == TokKind::Plus || cur().Kind == TokKind::Minus) {
    bool Minus = cur().Kind == TokKind::Minus;
    advance();
    if (!parseAffineTerm(Term))
      return false;
    Out = Minus ? Out - Term : Out + Term;
  }
  return true;
}

bool Parser::parseAffineTerm(Affine &Out) {
  Out = Affine();
  if (cur().Kind == TokKind::Number && cur().IsInt) {
    int C = static_cast<int>(cur().NumValue);
    advance();
    if (cur().Kind == TokKind::Star) {
      advance();
      if (cur().Kind != TokKind::Ident)
        return fail("expected a variable after '*' in an index");
      Out.Coeffs[cur().Text] = C;
      advance();
      return true;
    }
    Out.Const = C;
    return true;
  }
  if (cur().Kind == TokKind::Ident) {
    Out.Coeffs[cur().Text] = 1;
    advance();
    return true;
  }
  return fail("expected an index expression");
}

} // namespace

std::optional<AstProgram> la::parse(const std::string &Source,
                                    std::string &ErrorMsg) {
  std::vector<Token> Toks;
  if (!lex(Source, Toks, ErrorMsg))
    return std::nullopt;
  Parser P(std::move(Toks));
  return P.run(ErrorMsg);
}
