//===- la/Lexer.cpp -------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "la/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace slingen;
using namespace slingen::la;

static const std::map<std::string, TokKind> &keywords() {
  static const std::map<std::string, TokKind> KW = {
      {"Mat", TokKind::KwMat},           {"Vec", TokKind::KwVec},
      {"Sca", TokKind::KwSca},           {"In", TokKind::KwIn},
      {"Out", TokKind::KwOut},           {"InOut", TokKind::KwInOut},
      {"LoTri", TokKind::KwLoTri},       {"UpTri", TokKind::KwUpTri},
      {"UpSym", TokKind::KwUpSym},       {"LoSym", TokKind::KwLoSym},
      {"PD", TokKind::KwPD},             {"NS", TokKind::KwNS},
      {"UnitDiag", TokKind::KwUnitDiag}, {"ow", TokKind::KwOw},
      {"for", TokKind::KwFor},           {"trans", TokKind::KwTrans},
      {"sqrt", TokKind::KwSqrt},         {"inv", TokKind::KwInv},
  };
  return KW;
}

bool la::lex(const std::string &Source, std::vector<Token> &Out,
             std::string &ErrorMsg) {
  Out.clear();
  int Line = 1, Col = 1;
  size_t I = 0, N = Source.size();
  auto Make = [&](TokKind K, std::string Text) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Col = Col;
    return T;
  };
  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      Col = 1;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Col;
      ++I;
      continue;
    }
    if (C == '#') { // line comment
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string Text = Source.substr(Start, I - Start);
      auto It = keywords().find(Text);
      Token T = Make(It == keywords().end() ? TokKind::Ident : It->second,
                     Text);
      Out.push_back(T);
      Col += static_cast<int>(I - Start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Source[I + 1])))) {
      size_t Start = I;
      bool SawDot = false, SawExp = false;
      while (I < N) {
        char D = Source[I];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          ++I;
        } else if (D == '.' && !SawDot && !SawExp) {
          SawDot = true;
          ++I;
        } else if ((D == 'e' || D == 'E') && !SawExp) {
          SawExp = true;
          ++I;
          if (I < N && (Source[I] == '+' || Source[I] == '-'))
            ++I;
        } else {
          break;
        }
      }
      std::string Text = Source.substr(Start, I - Start);
      Token T = Make(TokKind::Number, Text);
      T.NumValue = std::strtod(Text.c_str(), nullptr);
      T.IsInt = !SawDot && !SawExp;
      Out.push_back(T);
      Col += static_cast<int>(I - Start);
      continue;
    }
    TokKind K;
    switch (C) {
    case '(':
      K = TokKind::LParen;
      break;
    case ')':
      K = TokKind::RParen;
      break;
    case '{':
      K = TokKind::LBrace;
      break;
    case '}':
      K = TokKind::RBrace;
      break;
    case '<':
      K = TokKind::Less;
      break;
    case '>':
      K = TokKind::Greater;
      break;
    case ',':
      K = TokKind::Comma;
      break;
    case ';':
      K = TokKind::Semi;
      break;
    case ':':
      K = TokKind::Colon;
      break;
    case '=':
      K = TokKind::Equal;
      break;
    case '+':
      K = TokKind::Plus;
      break;
    case '-':
      K = TokKind::Minus;
      break;
    case '*':
      K = TokKind::Star;
      break;
    case '/':
      K = TokKind::Slash;
      break;
    case '\'':
      K = TokKind::Quote;
      break;
    default:
      ErrorMsg = formatf("%d:%d: unexpected character '%c'", Line, Col, C);
      return false;
    }
    Out.push_back(Make(K, std::string(1, C)));
    ++Col;
    ++I;
  }
  Out.push_back(Make(TokKind::Eof, ""));
  return true;
}
