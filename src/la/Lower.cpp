//===- la/Lower.cpp -------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "la/Lower.h"

#include "la/Parser.h"
#include "support/Format.h"

#include <cassert>

using namespace slingen;
using namespace slingen::la;

namespace {

class Lowerer {
public:
  explicit Lowerer(const AstProgram &Ast) : Ast(Ast) {}

  std::optional<Program> run(std::string &ErrorMsg) {
    if (!lowerDecls() || !lowerStmts(Ast.Stmts)) {
      ErrorMsg = Error;
      return std::nullopt;
    }
    return std::move(Prog);
  }

private:
  const AstProgram &Ast;
  Program Prog;
  std::map<std::string, int> Bindings; // induction variables in scope
  std::string Error;

  bool fail(int Line, const std::string &Msg) {
    if (Error.empty())
      Error = formatf("line %d: %s", Line, Msg.c_str());
    return false;
  }

  bool lowerDecls();
  bool lowerStmts(const std::vector<AstStmtPtr> &Stmts);
  ExprPtr lowerExpr(const AstExpr &E);
};

bool Lowerer::lowerDecls() {
  for (const AstDecl &D : Ast.Decls) {
    if (Prog.findOperand(D.Name))
      return fail(D.Line, formatf("redeclaration of '%s'", D.Name.c_str()));
    if (D.Rows < 1 || D.Cols < 1)
      return fail(D.Line, "operand dimensions must be positive");
    if (D.Structure != StructureKind::General && D.Rows != D.Cols)
      return fail(D.Line, "structured matrices must be square");
    Operand *Op = Prog.addOperand(D.Name, D.Rows, D.Cols);
    Op->Structure = D.Structure;
    Op->IO = D.IO;
    Op->PosDef = D.PosDef;
    Op->NonSingular = D.NonSingular;
    Op->UnitDiag = D.UnitDiag;
    if (!D.Overwrites.empty()) {
      Operand *Target = Prog.findOperand(D.Overwrites);
      if (!Target)
        return fail(D.Line, formatf("ow(%s): unknown operand",
                                    D.Overwrites.c_str()));
      if (Target->Rows != D.Rows || Target->Cols != D.Cols)
        return fail(D.Line, formatf("ow(%s): dimension mismatch",
                                    D.Overwrites.c_str()));
      if (D.IO == IOKind::In)
        return fail(D.Line, "ow(...) requires an output operand");
      Op->Overwrites = Target;
    }
  }
  return true;
}

bool Lowerer::lowerStmts(const std::vector<AstStmtPtr> &Stmts) {
  for (const AstStmtPtr &S : Stmts) {
    if (S->IsFor) {
      if (Bindings.count(S->Var))
        return fail(S->Line,
                    formatf("shadowed induction variable '%s'",
                            S->Var.c_str()));
      if (S->Step <= 0)
        return fail(S->Line, "loop step must be positive");
      int Lo, Hi;
      // Bounds may reference outer induction variables.
      for (const auto &[Var, Coeff] : S->Lo.Coeffs)
        if (!Bindings.count(Var))
          return fail(S->Line, formatf("unknown variable '%s' in loop bound",
                                       Var.c_str()));
      for (const auto &[Var, Coeff] : S->Hi.Coeffs)
        if (!Bindings.count(Var))
          return fail(S->Line, formatf("unknown variable '%s' in loop bound",
                                       Var.c_str()));
      Lo = S->Lo.eval(Bindings);
      Hi = S->Hi.eval(Bindings);
      for (int I = Lo; I < Hi; I += S->Step) {
        Bindings[S->Var] = I;
        if (!lowerStmts(S->Body))
          return false;
      }
      Bindings.erase(S->Var);
      continue;
    }
    ExprPtr L = lowerExpr(*S->Lhs);
    if (!L)
      return false;
    ExprPtr R = lowerExpr(*S->Rhs);
    if (!R)
      return false;
    if (L->rows() != R->rows() || L->cols() != R->cols())
      return fail(S->Line, formatf("shape mismatch: %dx%d = %dx%d", L->rows(),
                                   L->cols(), R->rows(), R->cols()));
    // If the LHS is a plain view it must be writable (sBLAC destination or
    // the unknown of an inverse HLAC; either way an output).
    if (const auto *V = dyn_cast<ViewExpr>(L))
      if (!V->Op->isWritable())
        return fail(S->Line,
                    formatf("'%s' is an input and cannot be assigned",
                            V->Op->Name.c_str()));
    Prog.append({std::move(L), std::move(R)});
  }
  return true;
}

ExprPtr Lowerer::lowerExpr(const AstExpr &E) {
  switch (E.Kind) {
  case AstKind::Number:
    return constant(E.Value);
  case AstKind::Ref: {
    Operand *Op = Prog.findOperand(E.Name);
    if (!Op) {
      fail(E.Line, formatf("unknown operand '%s'", E.Name.c_str()));
      return nullptr;
    }
    // Resolve index ranges to a concrete view.
    int R0 = 0, NR = Op->Rows, C0 = 0, NC = Op->Cols;
    auto ResolveRange = [&](const AstRange &Rg, int Limit, int &Off,
                            int &Ext) -> bool {
      for (const auto &[Var, Coeff] : Rg.Lo.Coeffs)
        if (!Bindings.count(Var))
          return fail(E.Line,
                      formatf("unknown variable '%s' in index", Var.c_str()));
      Off = Rg.Lo.eval(Bindings);
      if (Rg.Single) {
        Ext = 1;
      } else {
        for (const auto &[Var, Coeff] : Rg.Hi.Coeffs)
          if (!Bindings.count(Var))
            return fail(E.Line, formatf("unknown variable '%s' in index",
                                        Var.c_str()));
        Ext = Rg.Hi.eval(Bindings) - Off;
      }
      if (Off < 0 || Ext < 1 || Off + Ext > Limit)
        return fail(E.Line, formatf("index range [%d, %d) out of bounds "
                                    "(limit %d)",
                                    Off, Off + Ext, Limit));
      return true;
    };
    if (!E.Indices.empty()) {
      if (Op->isScalar())
        return fail(E.Line, "scalars cannot be indexed"), nullptr;
      if (Op->isVector()) {
        if (E.Indices.size() != 1)
          return fail(E.Line, "vectors take a single index range"), nullptr;
        if (Op->Cols == 1) {
          if (!ResolveRange(E.Indices[0], Op->Rows, R0, NR))
            return nullptr;
        } else if (!ResolveRange(E.Indices[0], Op->Cols, C0, NC)) {
          return nullptr;
        }
      } else {
        if (E.Indices.size() != 2)
          return fail(E.Line, "matrices take two index ranges"), nullptr;
        if (!ResolveRange(E.Indices[0], Op->Rows, R0, NR) ||
            !ResolveRange(E.Indices[1], Op->Cols, C0, NC))
          return nullptr;
      }
    }
    return view(Op, R0, NR, C0, NC);
  }
  case AstKind::Unary: {
    ExprPtr Sub = lowerExpr(*E.L);
    if (!Sub)
      return nullptr;
    switch (E.UnOp) {
    case AstUnOp::Trans:
      return trans(Sub);
    case AstUnOp::Neg:
      return neg(Sub);
    case AstUnOp::Sqrt:
      if (!Sub->isScalarShaped())
        return fail(E.Line, "sqrt applies to scalars only"), nullptr;
      return sqrtExpr(Sub);
    case AstUnOp::Inv: {
      if (Sub->rows() != Sub->cols())
        return fail(E.Line, "inv requires a square argument"), nullptr;
      bool T = false;
      const ViewExpr *V = asViewMaybeTrans(Sub, T);
      StructureKind S =
          V ? (T ? transposedStructure(V->structure()) : V->structure())
            : StructureKind::General;
      if (!isTriangular(S) && Sub->rows() > 1)
        return fail(E.Line, "inv is supported for triangular operands only "
                            "(factor first, as in the paper's examples)"),
               nullptr;
      return invExpr(Sub);
    }
    }
    return nullptr;
  }
  case AstKind::Binary: {
    ExprPtr L = lowerExpr(*E.L);
    if (!L)
      return nullptr;
    ExprPtr R = lowerExpr(*E.R);
    if (!R)
      return nullptr;
    switch (E.BinOp) {
    case AstBinOp::Add:
    case AstBinOp::Sub:
      if (L->rows() != R->rows() || L->cols() != R->cols())
        return fail(E.Line, "shape mismatch in addition"), nullptr;
      return E.BinOp == AstBinOp::Add ? add(L, R) : sub(L, R);
    case AstBinOp::Mul:
      if (!L->isScalarShaped() && !R->isScalarShaped() &&
          L->cols() != R->rows())
        return fail(E.Line, formatf("inner dimension mismatch: %dx%d * %dx%d",
                                    L->rows(), L->cols(), R->rows(),
                                    R->cols())),
               nullptr;
      return mul(L, R);
    case AstBinOp::Div:
      if (!R->isScalarShaped())
        return fail(E.Line, "division requires a scalar divisor"), nullptr;
      return divExpr(L, R);
    }
    return nullptr;
  }
  }
  return nullptr;
}

} // namespace

std::optional<Program> la::lower(const AstProgram &Ast,
                                 std::string &ErrorMsg) {
  Lowerer L(Ast);
  return L.run(ErrorMsg);
}

std::optional<Program> la::compileLa(const std::string &Source,
                                     std::string &ErrorMsg) {
  std::optional<AstProgram> Ast = parse(Source, ErrorMsg);
  if (!Ast)
    return std::nullopt;
  return lower(*Ast, ErrorMsg);
}
