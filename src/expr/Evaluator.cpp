//===- expr/Evaluator.cpp -------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/Evaluator.h"

#include "baselines/RefBlas.h"
#include "expr/HlacMatch.h"

#include <cassert>
#include <cmath>

using namespace slingen;

double *Env::buffer(const Operand *Op) {
  const Operand *Root = Op->root();
  auto It = Buffers.find(Root);
  if (It == Buffers.end())
    It = Buffers
             .emplace(Root, std::vector<double>(
                                static_cast<size_t>(Root->Rows) * Root->Cols,
                                0.0))
             .first;
  return It->second.data();
}

const double *Env::buffer(const Operand *Op) const {
  const Operand *Root = Op->root();
  auto It = Buffers.find(Root);
  assert(It != Buffers.end() && "reading an unset operand");
  return It->second.data();
}

void Env::set(const Operand *Op, const std::vector<double> &Data) {
  assert(static_cast<int>(Data.size()) == Op->Rows * Op->Cols &&
         "set() size mismatch");
  double *Buf = buffer(Op);
  // Operands always view their root with identical dimensions (checked by
  // the front end), so this is a straight copy.
  assert(Op->root()->Rows == Op->Rows && Op->root()->Cols == Op->Cols &&
         "ow() with mismatched dimensions");
  std::copy(Data.begin(), Data.end(), Buf);
}

std::vector<double> Env::get(const Operand *Op) const {
  const double *Buf = buffer(Op);
  return std::vector<double>(Buf,
                             Buf + static_cast<size_t>(Op->Rows) * Op->Cols);
}

namespace {

/// Reads the rectangle of a view into a dense row-major result.
std::vector<double> readView(const ViewExpr *V, const Env &E) {
  const double *Buf = E.buffer(V->Op);
  int Ld = Env::ld(V->Op);
  std::vector<double> Out(static_cast<size_t>(V->rows()) * V->cols());
  for (int I = 0; I < V->rows(); ++I)
    for (int J = 0; J < V->cols(); ++J)
      Out[I * V->cols() + J] = Buf[(V->R0 + I) * Ld + (V->C0 + J)];
  return Out;
}

void writeView(const ViewExpr *V, Env &E, const std::vector<double> &Data) {
  double *Buf = E.buffer(V->Op);
  int Ld = Env::ld(V->Op);
  for (int I = 0; I < V->rows(); ++I)
    for (int J = 0; J < V->cols(); ++J)
      Buf[(V->R0 + I) * Ld + (V->C0 + J)] = Data[I * V->cols() + J];
}

/// Enforces the full-storage convention after a structured region has been
/// (re)computed: zero the non-stored triangle of triangular views; mirror
/// the computed triangle of symmetric views.
void normalizeStructuredView(const ViewExpr *V, Env &E) {
  StructureKind S = V->structure();
  if (S == StructureKind::General || V->rows() != V->cols())
    return;
  double *Buf = E.buffer(V->Op);
  int Ld = Env::ld(V->Op);
  int N = V->rows();
  auto At = [&](int I, int J) -> double & {
    return Buf[(V->R0 + I) * Ld + (V->C0 + J)];
  };
  switch (S) {
  case StructureKind::LowerTriangular:
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        At(I, J) = 0.0;
    break;
  case StructureKind::UpperTriangular:
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < I; ++J)
        At(I, J) = 0.0;
    break;
  case StructureKind::SymmetricUpper:
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < I; ++J)
        At(I, J) = At(J, I);
    break;
  case StructureKind::SymmetricLower:
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        At(I, J) = At(J, I);
    break;
  default:
    break;
  }
}

void solveHlac(const HlacMatch &M, Env &E);

} // namespace

std::vector<double> slingen::evalExpr(const ExprPtr &E, const Env &Env_) {
  if (const auto *V = dyn_cast<ViewExpr>(E))
    return readView(V, Env_);
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return {C->Value};
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    std::vector<double> Sub = evalExpr(U->Sub, Env_);
    switch (U->kind()) {
    case ExprKind::Trans: {
      std::vector<double> Out(Sub.size());
      int R = U->Sub->rows(), C = U->Sub->cols();
      for (int I = 0; I < R; ++I)
        for (int J = 0; J < C; ++J)
          Out[J * R + I] = Sub[I * C + J];
      return Out;
    }
    case ExprKind::Neg:
      for (double &X : Sub)
        X = -X;
      return Sub;
    case ExprKind::Sqrt:
      assert(Sub.size() == 1 && Sub[0] >= 0.0 && "sqrt of a negative value");
      return {std::sqrt(Sub[0])};
    case ExprKind::Inv: {
      // Triangular inverse only (the LA language restricts inv to
      // triangular operands; checked by the front end).
      bool T = false;
      const ViewExpr *AV = asViewMaybeTrans(U->Sub, T);
      assert(AV && "inv of a non-view expression");
      // Sub holds the already-evaluated (possibly transposed) argument, so
      // the structure must be adjusted accordingly.
      StructureKind S = AV->structure();
      if (T)
        S = transposedStructure(S);
      assert(isTriangular(S) && "inv of a non-triangular view");
      std::vector<double> Out = Sub;
      int N = U->rows();
      if (S == StructureKind::LowerTriangular)
        refblas::trtriLower(N, Out.data(), N);
      else
        refblas::trtriUpper(N, Out.data(), N);
      return Out;
    }
    default:
      assert(false && "bad unary");
    }
  }
  const auto *B = cast<BinaryExpr>(E);
  std::vector<double> L = evalExpr(B->L, Env_);
  std::vector<double> R = evalExpr(B->R, Env_);
  switch (B->kind()) {
  case ExprKind::Add:
    for (size_t I = 0; I < L.size(); ++I)
      L[I] += R[I];
    return L;
  case ExprKind::Sub:
    for (size_t I = 0; I < L.size(); ++I)
      L[I] -= R[I];
    return L;
  case ExprKind::Div:
    assert(R.size() == 1 && R[0] != 0.0 && "division by zero");
    for (double &X : L)
      X /= R[0];
    return L;
  case ExprKind::Mul: {
    if (B->L->isScalarShaped()) {
      for (double &X : R)
        X *= L[0];
      return R;
    }
    if (B->R->isScalarShaped()) {
      for (double &X : L)
        X *= R[0];
      return L;
    }
    int M = B->L->rows(), K = B->L->cols(), N = B->R->cols();
    std::vector<double> Out(static_cast<size_t>(M) * N, 0.0);
    refblas::gemm(M, N, K, 1.0, L.data(), K, false, R.data(), N, false, 0.0,
                  Out.data(), N);
    return Out;
  }
  default:
    assert(false && "bad binary");
  }
  return {};
}

namespace {

void solveHlac(const HlacMatch &M, Env &E) {
  std::vector<double> Rhs = evalExpr(M.Rhs, E);
  int XR = M.X->rows(), XC = M.X->cols();
  switch (M.Kind) {
  case HlacKind::Chol: {
    assert(XR == XC && "non-square Cholesky");
    int Info = M.UpperFactor ? refblas::potrfUpper(XR, Rhs.data(), XC)
                             : refblas::potrfLower(XR, Rhs.data(), XC);
    assert(Info == 0 && "Cholesky of a non-PD matrix");
    (void)Info;
    break;
  }
  case HlacKind::Trsm: {
    bool Upper = M.A->structure() == StructureKind::UpperTriangular;
    std::vector<double> A = readView(M.A, E);
    if (M.LeftA)
      refblas::trsmLeft(Upper, M.TransA, M.A->Op->UnitDiag, XR, XC, A.data(),
                        M.A->cols(), Rhs.data(), XC);
    else
      refblas::trsmRight(Upper, M.TransA, M.A->Op->UnitDiag, XR, XC, A.data(),
                         M.A->cols(), Rhs.data(), XC);
    break;
  }
  case HlacKind::Inv: {
    // Rhs already evaluated inv(A) via evalExpr.
    break;
  }
  case HlacKind::Trsyl: {
    std::vector<double> A = readView(M.A, E);
    std::vector<double> B = readView(M.B, E);
    // Normalize to L X + X U = C with L lower, U upper.
    assert(!M.TransA && !M.TransB && "transposed trsyl is not yet supported");
    // 1x1 coefficients are trivially both lower and upper.
    assert((M.A->rows() == 1 ||
            M.A->structure() == StructureKind::LowerTriangular) &&
           (M.B->rows() == 1 ||
            M.B->structure() == StructureKind::UpperTriangular) &&
           "trsyl expects L lower / U upper");
    refblas::trsylLowerUpper(XR, XC, A.data(), M.A->cols(), B.data(),
                             M.B->cols(), Rhs.data(), XC);
    break;
  }
  case HlacKind::Trlya: {
    std::vector<double> A = readView(M.A, E);
    assert(!M.TransA && M.TransB && "trlya expects L X + X L^T");
    assert(M.A->structure() == StructureKind::LowerTriangular &&
           "trlya expects a lower-triangular coefficient");
    refblas::trlyaLower(XR, A.data(), M.A->cols(), Rhs.data(), XC);
    break;
  }
  case HlacKind::None:
    assert(false && "unmatched HLAC");
  }
  writeView(M.X, E, Rhs);
  normalizeStructuredView(M.X, E);
}

} // namespace

void slingen::evalProgram(const Program &P, Env &Environment) {
  std::set<const Operand *> Defined = P.initiallyDefined();
  for (const EqStmt &S : P.stmts()) {
    std::set<const Operand *> Before = Defined;
    StmtInfo Info = classifyStmt(S, Defined);
    if (!Info.IsHlac) {
      std::vector<double> R = evalExpr(S.Rhs, Environment);
      const auto *LhsV = cast<ViewExpr>(S.Lhs.get());
      // Constant right-hand sides broadcast over the destination (used by
      // the FLAME layer to zero non-stored triangles).
      size_t LhsN = static_cast<size_t>(LhsV->rows()) * LhsV->cols();
      if (isa<ConstExpr>(S.Rhs) && R.size() == 1 && LhsN > 1)
        R.assign(LhsN, R[0]);
      writeView(LhsV, Environment, R);
      normalizeStructuredView(LhsV, Environment);
      continue;
    }
    const Operand *Unknown = Info.Defines;
    // For InOut HLACs the unknown is the statement's defining operand even
    // if it was already in the defined set.
    HlacMatch M = matchHlac(S, Unknown);
    assert(M && "HLAC did not match any known operation");
    solveHlac(M, Environment);
    (void)Before;
  }
}
