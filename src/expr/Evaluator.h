//===- expr/Evaluator.h - dense reference execution of LA programs --------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, structure-oblivious interpreter for expr::Program. It is the
/// numerical oracle: every transformation in the pipeline (FLAME lowering,
/// LGen tiling, C-IR passes, the final emitted C) is validated against it.
/// HLAC statements are solved with the refblas routines after classification
/// by the HLAC matcher.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_EXPR_EVALUATOR_H
#define SLINGEN_EXPR_EVALUATOR_H

#include "expr/Program.h"

#include <map>
#include <vector>

namespace slingen {

/// Storage environment mapping each root operand (following ow(...) chains)
/// to a dense row-major buffer of Rows*Cols doubles.
class Env {
public:
  /// Returns the buffer for \p Op's root, allocating it zero-filled on
  /// first use.
  double *buffer(const Operand *Op);
  const double *buffer(const Operand *Op) const;

  /// Leading dimension (row stride) of the buffer seen by \p Op.
  static int ld(const Operand *Op) { return Op->root()->Cols; }

  /// Copies \p Data (Rows*Cols doubles, row-major) into the operand buffer.
  void set(const Operand *Op, const std::vector<double> &Data);

  /// Reads the full operand out of its buffer.
  std::vector<double> get(const Operand *Op) const;

private:
  std::map<const Operand *, std::vector<double>> Buffers;
};

/// Evaluates an arbitrary expression to a dense Rows*Cols row-major result.
std::vector<double> evalExpr(const ExprPtr &E, const Env &Environment);

/// Executes all statements of \p P in order against \p Environment.
/// Asserts on malformed programs (unmatched HLACs, singular solves).
void evalProgram(const Program &P, Env &Environment);

} // namespace slingen

#endif // SLINGEN_EXPR_EVALUATOR_H
