//===- expr/HlacMatch.cpp -------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/HlacMatch.h"

#include <cassert>

using namespace slingen;

const char *slingen::hlacKindName(HlacKind K) {
  switch (K) {
  case HlacKind::None:
    return "none";
  case HlacKind::Chol:
    return "chol";
  case HlacKind::Trsm:
    return "trsm";
  case HlacKind::Inv:
    return "trtri";
  case HlacKind::Trsyl:
    return "trsyl";
  case HlacKind::Trlya:
    return "trlya";
  }
  return "?";
}

bool HlacMatch::effUpperA() const {
  assert(A && "no coefficient matched");
  bool Upper = A->structure() == StructureKind::UpperTriangular;
  return Upper != TransA;
}

static bool exprUsesOperand(const ExprPtr &E, const Operand *Op) {
  std::set<const Operand *> Ops;
  E->collectOperands(Ops);
  return Ops.count(Op) != 0;
}

static bool sameView(const ViewExpr *A, const ViewExpr *B) {
  return A->Op == B->Op && A->R0 == B->R0 && A->C0 == B->C0 &&
         A->rows() == B->rows() && A->cols() == B->cols();
}

/// Matches one product term op(A) * op(X) or op(X) * op(A) where X is the
/// unknown. Fills Coef/TransCoef/Left and XView/XTrans on success.
static bool matchCoefTimesUnknown(const ExprPtr &Term, const Operand *Unknown,
                                  const ViewExpr *&Coef, bool &TransCoef,
                                  bool &Left, const ViewExpr *&XView,
                                  bool &XTrans) {
  const auto *M = dyn_cast<BinaryExpr>(Term);
  if (!M || M->kind() != ExprKind::Mul)
    return false;
  bool LT = false, RT = false;
  const ViewExpr *LV = asViewMaybeTrans(M->L, LT);
  const ViewExpr *RV = asViewMaybeTrans(M->R, RT);
  if (!LV || !RV)
    return false;
  bool LIsX = LV->Op == Unknown;
  bool RIsX = RV->Op == Unknown;
  if (LIsX == RIsX)
    return false; // need exactly one side to be the unknown
  if (RIsX) {
    Coef = LV;
    TransCoef = LT;
    Left = true;
    XView = RV;
    XTrans = RT;
  } else {
    Coef = RV;
    TransCoef = RT;
    Left = false;
    XView = LV;
    XTrans = LT;
  }
  return true;
}

HlacMatch slingen::matchHlac(const EqStmt &S, const Operand *Unknown) {
  HlacMatch R;
  if (!Unknown)
    return R;

  // X = inv(A).
  if (const auto *LhsV = dyn_cast<ViewExpr>(S.Lhs)) {
    if (LhsV->Op == Unknown) {
      if (const auto *U = dyn_cast<UnaryExpr>(S.Rhs)) {
        if (U->kind() == ExprKind::Inv) {
          bool T = false;
          const ViewExpr *AV = asViewMaybeTrans(U->Sub, T);
          if (AV && isTriangular(AV->structure())) {
            R.Kind = HlacKind::Inv;
            R.X = LhsV;
            R.A = AV;
            R.TransA = T;
            R.Rhs = S.Rhs;
            return R;
          }
        }
      }
      return R; // plain view LHS but not inv: an sBLAC, not an HLAC
    }
  }

  // Single product on the LHS: Cholesky or triangular solve.
  if (const auto *M = dyn_cast<BinaryExpr>(S.Lhs);
      M && M->kind() == ExprKind::Mul) {
    bool LT = false, RT = false;
    const ViewExpr *LV = asViewMaybeTrans(M->L, LT);
    const ViewExpr *RV = asViewMaybeTrans(M->R, RT);
    if (LV && RV && LV->Op == Unknown && RV->Op == Unknown &&
        sameView(LV, RV) &&
        (LT != RT || (LV->rows() == 1 && LV->cols() == 1))) {
      // X^T X = S or X X^T = S. At 1x1 the transposition is folded away
      // by the expression builders, so X * X matches too.
      R.Kind = HlacKind::Chol;
      R.X = LV;
      R.UpperFactor =
          LT || LV->Op->Structure != StructureKind::LowerTriangular;
      R.Rhs = S.Rhs;
      return R;
    }
    const ViewExpr *Coef = nullptr, *XV = nullptr;
    bool TC = false, Left = true, XT = false;
    if (matchCoefTimesUnknown(S.Lhs, Unknown, Coef, TC, Left, XV, XT) &&
        !XT && isTriangular(viewStructure(Coef->Op->Structure, Coef->Op->Rows,
                                          Coef->Op->Cols, Coef->R0,
                                          Coef->rows(), Coef->C0,
                                          Coef->cols()))) {
      R.Kind = HlacKind::Trsm;
      R.X = XV;
      R.A = Coef;
      R.TransA = TC;
      R.LeftA = Left;
      R.Rhs = S.Rhs;
      return R;
    }
    return R;
  }

  // Sum of two products on the LHS: Sylvester or Lyapunov.
  if (const auto *AddE = dyn_cast<BinaryExpr>(S.Lhs);
      AddE && AddE->kind() == ExprKind::Add) {
    const ViewExpr *C1 = nullptr, *X1 = nullptr, *C2 = nullptr, *X2 = nullptr;
    bool T1 = false, L1 = true, XT1 = false;
    bool T2 = false, L2 = true, XT2 = false;
    if (matchCoefTimesUnknown(AddE->L, Unknown, C1, T1, L1, X1, XT1) &&
        matchCoefTimesUnknown(AddE->R, Unknown, C2, T2, L2, X2, XT2) &&
        !XT1 && !XT2 && sameView(X1, X2)) {
      // Normalize so the left-multiplying coefficient comes first.
      if (!L1 && L2) {
        std::swap(C1, C2);
        std::swap(T1, T2);
        std::swap(L1, L2);
      }
      if (L1 && !L2) {
        if (C1->Op == C2->Op && sameView(C1, C2) && T1 != T2) {
          R.Kind = HlacKind::Trlya;
          R.X = X1;
          R.A = C1;
          R.TransA = T1;
          R.B = C2;
          R.TransB = T2;
          R.Rhs = S.Rhs;
          return R;
        }
        R.Kind = HlacKind::Trsyl;
        R.X = X1;
        R.A = C1;
        R.TransA = T1;
        R.B = C2;
        R.TransB = T2;
        R.Rhs = S.Rhs;
        return R;
      }
    }
  }
  (void)exprUsesOperand;
  return R;
}
