//===- expr/Program.cpp ---------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/Program.h"

#include "support/Format.h"

#include <cassert>
#include <map>

using namespace slingen;

std::string EqStmt::str() const {
  return Lhs->str() + " = " + Rhs->str() + ";";
}

static bool containsInv(const ExprPtr &E) {
  if (E->kind() == ExprKind::Inv)
    return true;
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return containsInv(U->Sub);
  if (const auto *B = dyn_cast<BinaryExpr>(E))
    return containsInv(B->L) || containsInv(B->R);
  return false;
}

StmtInfo slingen::classifyStmt(const EqStmt &S,
                               std::set<const Operand *> &Defined) {
  StmtInfo Info;
  std::set<const Operand *> LhsOps;
  S.Lhs->collectOperands(LhsOps);

  // Unknowns: writable LHS operands not yet defined.
  std::vector<const Operand *> Unknowns;
  for (const Operand *Op : LhsOps)
    if (Op->isWritable() && !Defined.count(Op))
      Unknowns.push_back(Op);

  const bool LhsIsPlainView =
      isa<ViewExpr>(S.Lhs) &&
      cast<ViewExpr>(S.Lhs.get())->Op->isWritable();
  Info.IsHlac = !LhsIsPlainView || containsInv(S.Rhs);

  if (!Info.IsHlac) {
    Info.Defines = cast<ViewExpr>(S.Lhs.get())->Op;
  } else {
    assert(Unknowns.size() <= 1 && "HLAC with multiple unknowns");
    if (!Unknowns.empty())
      Info.Defines = Unknowns.front();
    else if (LhsIsPlainView) // e.g. InOut solved in place: X = inv(L)
      Info.Defines = cast<ViewExpr>(S.Lhs.get())->Op;
  }
  if (Info.Defines)
    Defined.insert(Info.Defines);
  return Info;
}

static long exprFlops(const ExprPtr &E) {
  if (isa<ViewExpr>(E) || isa<ConstExpr>(E))
    return 0;
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    long Sub = exprFlops(U->Sub);
    switch (U->kind()) {
    case ExprKind::Sqrt:
      return Sub + 1;
    case ExprKind::Neg:
      return Sub + static_cast<long>(U->rows()) * U->cols();
    default:
      return Sub;
    }
  }
  const auto *B = cast<BinaryExpr>(E);
  long Sub = exprFlops(B->L) + exprFlops(B->R);
  long M = B->rows(), N = B->cols();
  switch (B->kind()) {
  case ExprKind::Add:
  case ExprKind::Sub:
    return Sub + M * N;
  case ExprKind::Mul:
    if (B->L->isScalarShaped() || B->R->isScalarShaped())
      return Sub + M * N;
    return Sub + 2L * M * N * B->L->cols();
  case ExprKind::Div:
    return Sub + M * N;
  default:
    return Sub;
  }
}

long slingen::stmtFlops(const EqStmt &S) { return exprFlops(S.Rhs); }

Operand *Program::addOperand(const std::string &Name, int Rows, int Cols) {
  assert(!findOperand(Name) && "duplicate operand name");
  Pool.push_back(std::make_unique<Operand>(Name, Rows, Cols));
  Decls.push_back(Pool.back().get());
  return Pool.back().get();
}

Operand *Program::findOperand(const std::string &Name) {
  for (Operand *Op : Decls)
    if (Op->Name == Name)
      return Op;
  return nullptr;
}

const Operand *Program::findOperand(const std::string &Name) const {
  return const_cast<Program *>(this)->findOperand(Name);
}

Operand *Program::makeTemp(int Rows, int Cols, StructureKind S) {
  Operand *T = addOperand(formatf("tmp%d", NextTemp++), Rows, Cols);
  T->Structure = S;
  T->IO = IOKind::Out;
  T->IsTemp = true;
  return T;
}

std::set<const Operand *> Program::initiallyDefined() const {
  std::set<const Operand *> D;
  for (const Operand *Op : Decls)
    if (Op->IO != IOKind::Out)
      D.insert(Op);
  return D;
}

static ExprPtr remapExpr(const ExprPtr &E,
                         const std::map<const Operand *, Operand *> &M) {
  if (const auto *V = dyn_cast<ViewExpr>(E)) {
    auto It = M.find(V->Op);
    assert(It != M.end() && "view of an undeclared operand");
    return view(It->second, V->R0, V->rows(), V->C0, V->cols());
  }
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return constant(C->Value);
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    ExprPtr S = remapExpr(U->Sub, M);
    switch (U->kind()) {
    case ExprKind::Trans:
      return trans(std::move(S));
    case ExprKind::Neg:
      return neg(std::move(S));
    case ExprKind::Sqrt:
      return sqrtExpr(std::move(S));
    case ExprKind::Inv:
      return invExpr(std::move(S));
    default:
      assert(false && "bad unary");
    }
  }
  const auto *B = cast<BinaryExpr>(E.get());
  ExprPtr L = remapExpr(B->L, M), R = remapExpr(B->R, M);
  switch (B->kind()) {
  case ExprKind::Add:
    return add(std::move(L), std::move(R));
  case ExprKind::Sub:
    return sub(std::move(L), std::move(R));
  case ExprKind::Mul:
    return mul(std::move(L), std::move(R));
  case ExprKind::Div:
    return divExpr(std::move(L), std::move(R));
  default:
    assert(false && "bad binary");
    return nullptr;
  }
}

Program Program::clone() const {
  Program C;
  std::map<const Operand *, Operand *> M;
  for (const Operand *Op : Decls) {
    Operand *N = C.addOperand(Op->Name, Op->Rows, Op->Cols);
    N->Structure = Op->Structure;
    N->IO = Op->IO;
    N->PosDef = Op->PosDef;
    N->NonSingular = Op->NonSingular;
    N->UnitDiag = Op->UnitDiag;
    N->IsTemp = Op->IsTemp;
    M[Op] = N;
  }
  for (const Operand *Op : Decls)
    if (Op->Overwrites)
      M[Op]->Overwrites = M.at(Op->Overwrites);
  C.NextTemp = NextTemp;
  for (const EqStmt &S : Stmts)
    C.append({remapExpr(S.Lhs, M), remapExpr(S.Rhs, M)});
  return C;
}

std::string Program::str() const {
  std::string Out;
  for (const Operand *Op : Decls)
    Out += Op->str() + ";\n";
  Out += "\n";
  for (const EqStmt &S : Stmts)
    Out += S.str() + "\n";
  return Out;
}
