//===- expr/Structure.cpp -------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/Structure.h"

#include <cassert>

using namespace slingen;

const char *slingen::structureName(StructureKind K) {
  switch (K) {
  case StructureKind::General:
    return "General";
  case StructureKind::LowerTriangular:
    return "LoTri";
  case StructureKind::UpperTriangular:
    return "UpTri";
  case StructureKind::SymmetricUpper:
    return "UpSym";
  case StructureKind::SymmetricLower:
    return "LoSym";
  case StructureKind::Diagonal:
    return "Diag";
  case StructureKind::Zero:
    return "Zero";
  case StructureKind::Identity:
    return "Identity";
  }
  return "?";
}

bool slingen::isTriangular(StructureKind K) {
  return K == StructureKind::LowerTriangular ||
         K == StructureKind::UpperTriangular;
}

bool slingen::isSymmetric(StructureKind K) {
  return K == StructureKind::SymmetricUpper ||
         K == StructureKind::SymmetricLower ||
         K == StructureKind::Diagonal || K == StructureKind::Identity ||
         K == StructureKind::Zero;
}

StructureKind slingen::transposedStructure(StructureKind K) {
  switch (K) {
  case StructureKind::LowerTriangular:
    return StructureKind::UpperTriangular;
  case StructureKind::UpperTriangular:
    return StructureKind::LowerTriangular;
  case StructureKind::SymmetricUpper:
    return StructureKind::SymmetricLower;
  case StructureKind::SymmetricLower:
    return StructureKind::SymmetricUpper;
  default:
    return K;
  }
}

StructureKind slingen::addStructure(StructureKind A, StructureKind B) {
  if (A == StructureKind::Zero)
    return B;
  if (B == StructureKind::Zero)
    return A;
  if (A == B)
    return A == StructureKind::Identity ? StructureKind::Diagonal : A;
  // Identity behaves like Diagonal under addition with anything else.
  auto Norm = [](StructureKind K) {
    return K == StructureKind::Identity ? StructureKind::Diagonal : K;
  };
  StructureKind NA = Norm(A), NB = Norm(B);
  if (NA == NB)
    return NA;
  if (NA == StructureKind::Diagonal)
    return NB == StructureKind::General ? StructureKind::General : NB;
  if (NB == StructureKind::Diagonal)
    return NA == StructureKind::General ? StructureKind::General : NA;
  // Symmetric + symmetric stays symmetric even with mixed storage.
  if (isSymmetric(NA) && isSymmetric(NB))
    return NA;
  return StructureKind::General;
}

StructureKind slingen::mulStructure(StructureKind A, StructureKind B) {
  if (A == StructureKind::Zero || B == StructureKind::Zero)
    return StructureKind::Zero;
  if (A == StructureKind::Identity)
    return B;
  if (B == StructureKind::Identity)
    return A;
  if (A == StructureKind::Diagonal && B == StructureKind::Diagonal)
    return StructureKind::Diagonal;
  if (A == StructureKind::Diagonal)
    return isTriangular(B) ? B : StructureKind::General;
  if (B == StructureKind::Diagonal)
    return isTriangular(A) ? A : StructureKind::General;
  if (A == B && isTriangular(A))
    return A;
  return StructureKind::General;
}

StructureKind slingen::viewStructure(StructureKind K, int Rows, int Cols,
                                     int R0, int NR, int C0, int NC) {
  assert(R0 >= 0 && C0 >= 0 && NR >= 1 && NC >= 1 && R0 + NR <= Rows &&
         C0 + NC <= Cols && "view out of range");
  if (NR == Rows && NC == Cols)
    return K;
  int RHi = R0 + NR - 1, CHi = C0 + NC - 1;
  switch (K) {
  case StructureKind::General:
    return StructureKind::General;
  case StructureKind::Zero:
    return StructureKind::Zero;
  case StructureKind::LowerTriangular:
    if (RHi < C0)
      return StructureKind::Zero; // strictly above the diagonal
    if (R0 == C0 && NR == NC)
      return StructureKind::LowerTriangular;
    if (R0 > CHi)
      return StructureKind::General; // strictly below the diagonal
    return StructureKind::General;   // crosses the diagonal asymmetrically
  case StructureKind::UpperTriangular:
    if (CHi < R0)
      return StructureKind::Zero;
    if (R0 == C0 && NR == NC)
      return StructureKind::UpperTriangular;
    return StructureKind::General;
  case StructureKind::SymmetricUpper:
  case StructureKind::SymmetricLower:
    if (R0 == C0 && NR == NC)
      return K;
    return StructureKind::General;
  case StructureKind::Diagonal:
    if (R0 == C0 && NR == NC)
      return StructureKind::Diagonal;
    if (RHi < C0 || CHi < R0)
      return StructureKind::Zero;
    return StructureKind::General;
  case StructureKind::Identity:
    if (R0 == C0 && NR == NC)
      return StructureKind::Identity;
    if (RHi < C0 || CHi < R0)
      return StructureKind::Zero;
    return StructureKind::General;
  }
  return StructureKind::General;
}

bool slingen::elementInStructure(StructureKind K, int R, int C) {
  switch (K) {
  case StructureKind::LowerTriangular:
    return R >= C;
  case StructureKind::UpperTriangular:
    return R <= C;
  case StructureKind::Diagonal:
  case StructureKind::Identity:
    return R == C;
  case StructureKind::Zero:
    return false;
  default:
    return true;
  }
}

bool slingen::elementInComputedRegion(StructureKind K, int R, int C) {
  switch (K) {
  case StructureKind::SymmetricUpper:
    return R <= C;
  case StructureKind::SymmetricLower:
    return R >= C;
  default:
    return elementInStructure(K, R, C);
  }
}
