//===- expr/Operand.h - declared operands of an LA program ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operands are the Mat/Vec/Sca declarations of the LA language (paper
/// Fig. 4): a name, fixed dimensions, a structure, an I/O kind, and optional
/// PD / NS / UnitDiag properties plus the ow(...) overwrite annotation.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_EXPR_OPERAND_H
#define SLINGEN_EXPR_OPERAND_H

#include "expr/Structure.h"

#include <string>

namespace slingen {

enum class IOKind { In, Out, InOut };

const char *ioKindName(IOKind K);

/// A declared scalar, vector, or matrix operand with fixed dimensions.
/// Vectors are column vectors (Cols == 1) or row vectors (Rows == 1);
/// scalars are 1x1. Instances live in and are owned by an expr::Program so
/// pointers to them are stable identities throughout the pipeline.
class Operand {
public:
  Operand(std::string Name, int Rows, int Cols)
      : Name(std::move(Name)), Rows(Rows), Cols(Cols) {}

  std::string Name;
  int Rows, Cols;
  StructureKind Structure = StructureKind::General;
  IOKind IO = IOKind::In;
  bool PosDef = false;
  bool NonSingular = false;
  bool UnitDiag = false;
  /// If non-null, this output shares storage with (overwrites) the given
  /// operand, like `Mat U(k,k) <Out, UpTri, NS, ow(S)>` in paper Fig. 5.
  const Operand *Overwrites = nullptr;
  /// True for compiler-generated temporaries (from breaking up 3+-factor
  /// products and from the FLAME lowering).
  bool IsTemp = false;

  bool isScalar() const { return Rows == 1 && Cols == 1; }
  bool isVector() const { return !isScalar() && (Rows == 1 || Cols == 1); }
  bool isMatrix() const { return Rows > 1 && Cols > 1; }
  bool isWritable() const { return IO != IOKind::In; }

  /// Follows the ow(...) chain to the operand that owns the storage.
  const Operand *root() const {
    const Operand *O = this;
    while (O->Overwrites)
      O = O->Overwrites;
    return O;
  }

  /// Declaration in LA concrete syntax, used by printers and tests.
  std::string str() const;
};

} // namespace slingen

#endif // SLINGEN_EXPR_OPERAND_H
