//===- expr/HlacMatch.h - classify higher-level computations --------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pattern matcher that classifies an HLAC equation (paper Fig. 1 / Table 3)
/// against the operation knowledge base: Cholesky factorization, triangular
/// solve (all sides/transposes), triangular inverse, and the triangular
/// Sylvester and Lyapunov equations. This mirrors Cl1ck's pattern-matching
/// step: the same matcher classifies both user-level HLACs and the quadrant
/// equations produced by PME generation (which is how "algorithm reuse",
/// Sec. 3.1, falls out naturally).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_EXPR_HLACMATCH_H
#define SLINGEN_EXPR_HLACMATCH_H

#include "expr/Program.h"

namespace slingen {

enum class HlacKind {
  None,
  Chol,  ///< X^T X = S (X upper) or X X^T = S (X lower)
  Trsm,  ///< op(A) X = B or X op(A) = B, A triangular
  Inv,   ///< X = inv(A), A triangular
  Trsyl, ///< A X + X B = C, A lower and B upper triangular
  Trlya, ///< A X + X A^T = S, A lower triangular, X symmetric
};

const char *hlacKindName(HlacKind K);

/// Result of matching one equation; views are borrowed from the statement's
/// expressions (valid as long as the statement lives).
struct HlacMatch {
  HlacKind Kind = HlacKind::None;

  const ViewExpr *X = nullptr; ///< the unknown (solved-for) view

  /// Cholesky: true for X^T X = S (upper factor), false for X X^T = S.
  bool UpperFactor = false;

  /// Trsm / Inv / Trsyl / Trlya left coefficient (op(A)).
  const ViewExpr *A = nullptr;
  bool TransA = false;
  /// Trsm only: true when A multiplies X from the left.
  bool LeftA = true;

  /// Trsyl right coefficient (op(B)); for Trlya this aliases A.
  const ViewExpr *B = nullptr;
  bool TransB = false;

  /// The equation right-hand side (may be a compound expression).
  ExprPtr Rhs;

  explicit operator bool() const { return Kind != HlacKind::None; }

  /// Effective triangle of op(A) (true = upper) taking TransA into account.
  bool effUpperA() const;
};

/// Tries to classify \p S as an HLAC whose unknown is \p Unknown. Returns a
/// result with Kind == None if no pattern from the knowledge base applies.
HlacMatch matchHlac(const EqStmt &S, const Operand *Unknown);

} // namespace slingen

#endif // SLINGEN_EXPR_HLACMATCH_H
