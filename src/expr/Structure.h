//===- expr/Structure.h - matrix structure lattice ------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structure lattice for fixed-size operands (paper Fig. 4 properties:
/// LoTri, UpTri, UpSym, LoSym; plus the derived structures Zero, Identity and
/// Diagonal that appear during structure propagation). Utilities compute the
/// structure of sub-blocks (views) and the structure resulting from the basic
/// operators, which is what LGen's "structure propagation" stage needs.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_EXPR_STRUCTURE_H
#define SLINGEN_EXPR_STRUCTURE_H

#include <string>

namespace slingen {

/// Structural shape of a matrix operand or matrix expression.
enum class StructureKind {
  General,
  LowerTriangular,
  UpperTriangular,
  SymmetricUpper, ///< symmetric; generator computes/stores the upper part
  SymmetricLower, ///< symmetric; generator computes/stores the lower part
  Diagonal,
  Zero,
  Identity,
};

const char *structureName(StructureKind K);

bool isTriangular(StructureKind K);
bool isSymmetric(StructureKind K);

/// Structure of the transpose of a matrix with structure \p K.
StructureKind transposedStructure(StructureKind K);

/// Structure of the sum of two conforming matrices.
StructureKind addStructure(StructureKind A, StructureKind B);

/// Structure of the product of two conforming matrices.
StructureKind mulStructure(StructureKind A, StructureKind B);

/// Structure of the sub-block [R0, R0+NR) x [C0, C0+NC) of an N x N matrix
/// (rows x cols for the owner are \p Rows x \p Cols) whose overall structure
/// is \p K. Non-square owners are only ever General. This powers both tile
/// classification in LGen and zero-block elimination in the FLAME engine.
StructureKind viewStructure(StructureKind K, int Rows, int Cols, int R0,
                            int NR, int C0, int NC);

/// Returns true if element (R, C) of a Rows x Cols matrix with structure
/// \p K is stored/meaningful (e.g. false for the strictly-upper part of a
/// lower-triangular matrix). Symmetric matrices use full storage (paper
/// Sec. 5) so every element is meaningful for them.
bool elementInStructure(StructureKind K, int R, int C);

/// Returns true if element (R, C) is part of the region the generator is
/// responsible for *computing* (for SymmetricUpper only the upper triangle is
/// computed; the mirror pass fills the rest).
bool elementInComputedRegion(StructureKind K, int R, int C);

} // namespace slingen

#endif // SLINGEN_EXPR_STRUCTURE_H
