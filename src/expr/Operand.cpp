//===- expr/Operand.cpp ---------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/Operand.h"

#include "support/Format.h"

using namespace slingen;

const char *slingen::ioKindName(IOKind K) {
  switch (K) {
  case IOKind::In:
    return "In";
  case IOKind::Out:
    return "Out";
  case IOKind::InOut:
    return "InOut";
  }
  return "?";
}

std::string Operand::str() const {
  std::string S;
  if (isScalar())
    S = formatf("Sca %s", Name.c_str());
  else if (isVector())
    S = formatf("Vec %s(%d)", Name.c_str(), Rows == 1 ? Cols : Rows);
  else
    S = formatf("Mat %s(%d, %d)", Name.c_str(), Rows, Cols);
  S += formatf(" <%s", ioKindName(IO));
  if (Structure != StructureKind::General)
    S += formatf(", %s", structureName(Structure));
  if (PosDef)
    S += ", PD";
  if (NonSingular)
    S += ", NS";
  if (UnitDiag)
    S += ", UnitDiag";
  if (Overwrites)
    S += formatf(", ow(%s)", Overwrites->Name.c_str());
  S += ">";
  return S;
}
