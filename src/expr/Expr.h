//===- expr/Expr.h - linear algebra expression trees ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable expression trees over fixed-size operand views. This is the
/// representation of sBLAC right-hand sides and of HLAC equations throughout
/// the pipeline (paper Sec. 3): after lowering, every index is a concrete
/// integer, so sizes and structures can be checked eagerly.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_EXPR_EXPR_H
#define SLINGEN_EXPR_EXPR_H

#include "expr/Operand.h"
#include "support/Casting.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace slingen {

enum class ExprKind { View, Const, Trans, Neg, Sqrt, Inv, Add, Sub, Mul, Div };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Base class of all expression nodes. Nodes are immutable and shared; the
/// shape (Rows x Cols) is computed at construction time.
class Expr {
public:
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  int rows() const { return Rows; }
  int cols() const { return Cols; }
  bool isScalarShaped() const { return Rows == 1 && Cols == 1; }

  /// Human-readable rendering in LA-like syntax.
  virtual std::string str() const = 0;

  /// Collects the distinct operands referenced by this tree.
  void collectOperands(std::set<const Operand *> &Out) const;

protected:
  Expr(ExprKind Kind, int Rows, int Cols)
      : Kind(Kind), Rows(Rows), Cols(Cols) {}

private:
  ExprKind Kind;
  int Rows, Cols;
};

/// A rectangular view [R0, R0+rows) x [C0, C0+cols) of an operand. A view of
/// the full operand has R0 == C0 == 0 and the operand's dimensions.
class ViewExpr : public Expr {
public:
  ViewExpr(const Operand *Op, int R0, int NR, int C0, int NC)
      : Expr(ExprKind::View, NR, NC), Op(Op), R0(R0), C0(C0) {}

  const Operand *Op;
  int R0, C0;

  bool isFull() const {
    return R0 == 0 && C0 == 0 && rows() == Op->Rows && cols() == Op->Cols;
  }

  /// Structure of this view derived from the operand's structure.
  StructureKind structure() const {
    return viewStructure(Op->Structure, Op->Rows, Op->Cols, R0, rows(), C0,
                         cols());
  }

  /// True if the two views address overlapping storage.
  bool overlaps(const ViewExpr &Other) const;

  std::string str() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::View; }
};

/// A literal scalar constant.
class ConstExpr : public Expr {
public:
  explicit ConstExpr(double Value) : Expr(ExprKind::Const, 1, 1), Value(Value) {}

  double Value;

  std::string str() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Const; }
};

/// Trans / Neg / Sqrt / Inv.
class UnaryExpr : public Expr {
public:
  UnaryExpr(ExprKind Kind, ExprPtr Sub);

  ExprPtr Sub;

  std::string str() const override;
  static bool classof(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Trans:
    case ExprKind::Neg:
    case ExprKind::Sqrt:
    case ExprKind::Inv:
      return true;
    default:
      return false;
    }
  }
};

/// Add / Sub / Mul / Div. Mul covers matrix-matrix, matrix-vector and
/// scalar-anything products; Div is scalar-only (paper Fig. 4).
class BinaryExpr : public Expr {
public:
  BinaryExpr(ExprKind Kind, ExprPtr L, ExprPtr R);

  ExprPtr L, R;

  std::string str() const override;
  static bool classof(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
    case ExprKind::Div:
      return true;
    default:
      return false;
    }
  }
};

//===----------------------------------------------------------------------===//
// Builders (with shape checking).
//===----------------------------------------------------------------------===//

ExprPtr view(const Operand *Op);
ExprPtr view(const Operand *Op, int R0, int NR, int C0, int NC);
ExprPtr constant(double V);
ExprPtr trans(ExprPtr E);
ExprPtr neg(ExprPtr E);
ExprPtr sqrtExpr(ExprPtr E);
ExprPtr invExpr(ExprPtr E);
ExprPtr add(ExprPtr L, ExprPtr R);
ExprPtr sub(ExprPtr L, ExprPtr R);
ExprPtr mul(ExprPtr L, ExprPtr R);
ExprPtr divExpr(ExprPtr L, ExprPtr R);

/// Infers the structure of an arbitrary expression from the structures of
/// its views (LGen's structure propagation at expression granularity).
StructureKind inferStructure(const ExprPtr &E);

/// Returns the single ViewExpr if the expression is exactly a view (possibly
/// wrapped in transposes), together with the accumulated transposition flag.
const ViewExpr *asViewMaybeTrans(const ExprPtr &E, bool &Transposed);

} // namespace slingen

#endif // SLINGEN_EXPR_EXPR_H
