//===- expr/Program.h - basic linear algebra programs ---------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is a sequence of equation statements over a pool of declared
/// operands. The LA front end lowers into this form (loops unrolled, indices
/// concrete); FLAME synthesis rewrites HLAC statements into sequences of
/// sBLACs and scalar operations, again in this form (the paper's "basic
/// linear algebra program", Sec. 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_EXPR_PROGRAM_H
#define SLINGEN_EXPR_PROGRAM_H

#include "expr/Expr.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace slingen {

/// One computational statement: Lhs = Rhs, where for an sBLAC the left-hand
/// side is a plain view and for an HLAC it is a compound expression (or the
/// right-hand side contains inv(...)), exactly as in the LA grammar.
struct EqStmt {
  ExprPtr Lhs;
  ExprPtr Rhs;

  std::string str() const;
};

/// Classification of a statement relative to the set of already-defined
/// operands (outputs become defined by the statement that computes them).
struct StmtInfo {
  bool IsHlac = false;
  /// The operand this statement defines (the "unknown" of an HLAC or the
  /// destination of an sBLAC).
  const Operand *Defines = nullptr;
};

/// Classifies \p S given \p Defined and appends newly defined operands to it.
StmtInfo classifyStmt(const EqStmt &S, std::set<const Operand *> &Defined);

/// Number of floating point operations (adds, muls, divs, sqrts) a direct
/// evaluation of the statement performs, counting 2mnk for an m x k times
/// k x n product. Structure-related savings are not modeled here; this is
/// the nominal cost used for sanity checks.
long stmtFlops(const EqStmt &S);

/// An LA program after lowering: declarations plus a flat statement list.
class Program {
public:
  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  Operand *addOperand(const std::string &Name, int Rows, int Cols);
  Operand *findOperand(const std::string &Name);
  const Operand *findOperand(const std::string &Name) const;

  /// Creates a compiler temporary with a unique name.
  Operand *makeTemp(int Rows, int Cols,
                    StructureKind S = StructureKind::General);

  const std::vector<Operand *> &operands() const { return Decls; }
  std::vector<EqStmt> &stmts() { return Stmts; }
  const std::vector<EqStmt> &stmts() const { return Stmts; }

  void append(EqStmt S) { Stmts.push_back(std::move(S)); }

  /// The set of operands defined before any statement runs (In and InOut).
  std::set<const Operand *> initiallyDefined() const;

  /// Deep copy: fresh operands (ow() chains remapped) and rebuilt
  /// expressions. Used by the driver to expand several algorithmic variants
  /// of the same source program.
  Program clone() const;

  std::string str() const;

private:
  std::vector<std::unique_ptr<Operand>> Pool;
  std::vector<Operand *> Decls;
  std::vector<EqStmt> Stmts;
  int NextTemp = 0;
};

} // namespace slingen

#endif // SLINGEN_EXPR_PROGRAM_H
