//===- expr/Expr.cpp ------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/Expr.h"

#include "support/Format.h"

#include <cassert>

using namespace slingen;

void Expr::collectOperands(std::set<const Operand *> &Out) const {
  if (const auto *V = dyn_cast<ViewExpr>(this)) {
    Out.insert(V->Op);
    return;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(this)) {
    U->Sub->collectOperands(Out);
    return;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(this)) {
    B->L->collectOperands(Out);
    B->R->collectOperands(Out);
  }
}

bool ViewExpr::overlaps(const ViewExpr &Other) const {
  if (Op->root() != Other.Op->root())
    return false;
  bool RowsDisjoint = R0 + rows() <= Other.R0 || Other.R0 + Other.rows() <= R0;
  bool ColsDisjoint = C0 + cols() <= Other.C0 || Other.C0 + Other.cols() <= C0;
  return !(RowsDisjoint || ColsDisjoint);
}

std::string ViewExpr::str() const {
  if (isFull())
    return Op->Name;
  if (Op->Cols == 1) // column vector: single index range
    return formatf("%s(%d:%d)", Op->Name.c_str(), R0, R0 + rows());
  return formatf("%s(%d:%d, %d:%d)", Op->Name.c_str(), R0, R0 + rows(), C0,
                 C0 + cols());
}

std::string ConstExpr::str() const { return formatf("%g", Value); }

UnaryExpr::UnaryExpr(ExprKind Kind, ExprPtr SubIn)
    : Expr(Kind,
           Kind == ExprKind::Trans ? SubIn->cols() : SubIn->rows(),
           Kind == ExprKind::Trans ? SubIn->rows() : SubIn->cols()),
      Sub(std::move(SubIn)) {
  assert((Kind == ExprKind::Trans || Kind == ExprKind::Neg ||
          Kind == ExprKind::Sqrt || Kind == ExprKind::Inv) &&
         "invalid unary kind");
  assert((Kind != ExprKind::Sqrt || Sub->isScalarShaped()) &&
         "sqrt is scalar-only");
  assert((Kind != ExprKind::Inv || Sub->rows() == Sub->cols()) &&
         "inverse requires a square argument");
}

std::string UnaryExpr::str() const {
  switch (kind()) {
  case ExprKind::Trans:
    return formatf("trans(%s)", Sub->str().c_str());
  case ExprKind::Neg:
    return formatf("(-%s)", Sub->str().c_str());
  case ExprKind::Sqrt:
    return formatf("sqrt(%s)", Sub->str().c_str());
  case ExprKind::Inv:
    return formatf("inv(%s)", Sub->str().c_str());
  default:
    return "?";
  }
}

static int binRows(ExprKind K, const ExprPtr &L, const ExprPtr &R) {
  if (K == ExprKind::Mul) {
    if (L->isScalarShaped())
      return R->rows();
    return L->rows();
  }
  return L->rows();
}

static int binCols(ExprKind K, const ExprPtr &L, const ExprPtr &R) {
  if (K == ExprKind::Mul) {
    if (L->isScalarShaped())
      return R->cols();
    if (R->isScalarShaped())
      return L->cols();
    return R->cols();
  }
  return L->cols();
}

BinaryExpr::BinaryExpr(ExprKind Kind, ExprPtr LIn, ExprPtr RIn)
    : Expr(Kind, binRows(Kind, LIn, RIn), binCols(Kind, LIn, RIn)),
      L(std::move(LIn)), R(std::move(RIn)) {
  switch (Kind) {
  case ExprKind::Add:
  case ExprKind::Sub:
    assert(L->rows() == R->rows() && L->cols() == R->cols() &&
           "add/sub shape mismatch");
    break;
  case ExprKind::Mul:
    assert((L->isScalarShaped() || R->isScalarShaped() ||
            L->cols() == R->rows()) &&
           "mul inner dimension mismatch");
    break;
  case ExprKind::Div:
    assert(R->isScalarShaped() && "division by a non-scalar");
    break;
  default:
    assert(false && "invalid binary kind");
  }
}

std::string BinaryExpr::str() const {
  const char *OpStr = "?";
  switch (kind()) {
  case ExprKind::Add:
    OpStr = " + ";
    break;
  case ExprKind::Sub:
    OpStr = " - ";
    break;
  case ExprKind::Mul:
    OpStr = " * ";
    break;
  case ExprKind::Div:
    OpStr = " / ";
    break;
  default:
    break;
  }
  return formatf("(%s%s%s)", L->str().c_str(), OpStr, R->str().c_str());
}

ExprPtr slingen::view(const Operand *Op) {
  return std::make_shared<ViewExpr>(Op, 0, Op->Rows, 0, Op->Cols);
}

ExprPtr slingen::view(const Operand *Op, int R0, int NR, int C0, int NC) {
  assert(R0 >= 0 && C0 >= 0 && R0 + NR <= Op->Rows && C0 + NC <= Op->Cols &&
         "view out of operand bounds");
  return std::make_shared<ViewExpr>(Op, R0, NR, C0, NC);
}

ExprPtr slingen::constant(double V) { return std::make_shared<ConstExpr>(V); }

ExprPtr slingen::trans(ExprPtr E) {
  // trans(trans(X)) == X.
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    if (U->kind() == ExprKind::Trans)
      return U->Sub;
  if (E->isScalarShaped())
    return E;
  return std::make_shared<UnaryExpr>(ExprKind::Trans, std::move(E));
}

ExprPtr slingen::neg(ExprPtr E) {
  return std::make_shared<UnaryExpr>(ExprKind::Neg, std::move(E));
}

ExprPtr slingen::sqrtExpr(ExprPtr E) {
  return std::make_shared<UnaryExpr>(ExprKind::Sqrt, std::move(E));
}

ExprPtr slingen::invExpr(ExprPtr E) {
  return std::make_shared<UnaryExpr>(ExprKind::Inv, std::move(E));
}

ExprPtr slingen::add(ExprPtr L, ExprPtr R) {
  return std::make_shared<BinaryExpr>(ExprKind::Add, std::move(L),
                                      std::move(R));
}

ExprPtr slingen::sub(ExprPtr L, ExprPtr R) {
  return std::make_shared<BinaryExpr>(ExprKind::Sub, std::move(L),
                                      std::move(R));
}

ExprPtr slingen::mul(ExprPtr L, ExprPtr R) {
  return std::make_shared<BinaryExpr>(ExprKind::Mul, std::move(L),
                                      std::move(R));
}

ExprPtr slingen::divExpr(ExprPtr L, ExprPtr R) {
  return std::make_shared<BinaryExpr>(ExprKind::Div, std::move(L),
                                      std::move(R));
}

StructureKind slingen::inferStructure(const ExprPtr &E) {
  if (const auto *V = dyn_cast<ViewExpr>(E))
    return V->structure();
  if (isa<ConstExpr>(E))
    return StructureKind::General;
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    StructureKind S = inferStructure(U->Sub);
    switch (U->kind()) {
    case ExprKind::Trans:
      return transposedStructure(S);
    case ExprKind::Neg:
      return S;
    default:
      return StructureKind::General;
    }
  }
  const auto *B = cast<BinaryExpr>(E);
  StructureKind SL = inferStructure(B->L);
  StructureKind SR = inferStructure(B->R);
  switch (B->kind()) {
  case ExprKind::Add:
  case ExprKind::Sub:
    return addStructure(SL, SR);
  case ExprKind::Mul:
    if (B->L->isScalarShaped())
      return SR;
    if (B->R->isScalarShaped())
      return SL;
    return mulStructure(SL, SR);
  default:
    return StructureKind::General;
  }
}

const ViewExpr *slingen::asViewMaybeTrans(const ExprPtr &E, bool &Transposed) {
  Transposed = false;
  const Expr *Cur = E.get();
  while (const auto *U = dyn_cast<UnaryExpr>(Cur)) {
    if (U->kind() != ExprKind::Trans)
      return nullptr;
    Transposed = !Transposed;
    Cur = U->Sub.get();
  }
  return dyn_cast<ViewExpr>(Cur);
}
