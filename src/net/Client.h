//===- net/Client.h - blocking sld protocol client ------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the sld protocol: connect to a daemon (Unix path or
/// loopback TCP), issue GET/WARM/PING/STATS requests, decode the replies.
/// One Client is one connection; requests on it are strictly sequential
/// (send, then block for the reply). It is movable, not copyable, and not
/// thread-safe -- concurrent callers open their own connections, which is
/// exactly what the single-flight test does to hammer one key.
///
/// The received ArtifactMsg carries the compiled kernel as .so bytes;
/// ArtifactMsg-consuming callers hand them to JitKernel::loadFromBytes()
/// to get a callable kernel with no local generator or C compiler.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_NET_CLIENT_H
#define SLINGEN_NET_CLIENT_H

#include "net/Protocol.h"
#include "net/Wire.h"

#include <optional>
#include <string>

namespace slingen {
namespace net {

/// Which layer a failed request died in. The distinction matters to
/// callers with a fallback: a Transport failure says nothing about the
/// request (reconnect/retry/degrade is sound), a Daemon failure is the
/// daemon's verdict on *this* request (retrying elsewhere just repeats
/// it), and a Protocol failure means the peer speaks something else
/// entirely.
enum class ErrorCategory {
  Transport, ///< connect/read/write failed or the daemon hung up
  Protocol,  ///< the reply did not decode or carried an unexpected verb
  Daemon,    ///< the daemon answered ERR; Code carries its error class
};

/// A structured request failure: the category, the daemon's error class
/// when it reported one (decoded from the ERR payload's errc token; unset
/// for transport/protocol failures and for untagged pre-code daemons),
/// and the human-readable message.
struct ClientError {
  ErrorCategory Category = ErrorCategory::Transport;
  std::optional<service::Errc> Code;
  std::string Message;
};

class Client {
public:
  /// Connects to \p Addr (see parseAddr for accepted forms). Returns
  /// std::nullopt with \p Err on parse or connect failure. The connect is
  /// nonblocking-with-poll: an unreachable or blackholed address fails
  /// within \p TimeoutMs instead of hanging for the kernel's SYN-retry
  /// budget (minutes).
  static std::optional<Client> connect(const std::string &Addr,
                                       std::string &Err,
                                       int TimeoutMs = 10000);

  Client(Client &&O) noexcept;
  Client &operator=(Client &&O) noexcept;
  ~Client();

  /// GET: serve (generating if needed) the kernel for \p R.
  bool get(const Request &R, ArtifactMsg &Out, ClientError &Err);

  /// WARM: queue a background prefetch on the daemon; returns once the
  /// daemon acknowledged the queueing, not the generation.
  bool warm(const Request &R, ClientError &Err);

  /// PING: liveness probe.
  bool ping(ClientError &Err);

  /// STATS: the daemon's ServiceStats as `key=value` lines.
  bool stats(std::string &Out, ClientError &Err);

  /// METRICS: the daemon's full metrics scrape (sorted registry text plus
  /// top-K dimension tables). Old daemons answer ERR invalid-request.
  bool metrics(std::string &Out, ClientError &Err);

  /// Flattened-string conveniences (the message only; callers that branch
  /// on the failure class use the ClientError forms above).
  bool get(const Request &R, ArtifactMsg &Out, std::string &Err);
  bool warm(const Request &R, std::string &Err);
  bool ping(std::string &Err);
  bool stats(std::string &Out, std::string &Err);
  bool metrics(std::string &Out, std::string &Err);

  /// Payload cap applied to incoming response frames. Artifact responses
  /// carry C source and .so bytes, so the default is deliberately roomy.
  void setMaxPayload(size_t Max) { MaxPayload = Max; }

  /// Absolute reply deadline (an obs::nowUs() stamp; 0 = wait forever)
  /// applied to every later round trip. When it expires mid-reply the
  /// stream is desynchronized, so the client closes its connection and
  /// fails with Errc::DeadlineExceeded -- callers reconnect to continue.
  void setDeadlineUs(int64_t D) { DeadlineUs = D; }

private:
  Client() = default;

  /// One request/response exchange; fails on transport errors, ERR
  /// responses, and unexpected verbs, classifying each into \p Err.
  bool roundTrip(Verb V, const std::string &Payload, Verb ExpectReply,
                 std::string &ReplyPayload, ClientError &Err);

  int Fd = -1;
  size_t MaxPayload = DefaultMaxPayload;
  int64_t DeadlineUs = 0;
};

} // namespace net
} // namespace slingen

#endif // SLINGEN_NET_CLIENT_H
