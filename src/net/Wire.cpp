//===- net/Wire.cpp -------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include "obs/Metrics.h"
#include "support/FaultInject.h"
#include "support/Format.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace slingen;
using namespace slingen::net;

namespace {

constexpr char Magic[4] = {'s', 'l', 'd', '2'};
constexpr size_t HeaderSize = 4 + 1 + 4; // magic, verb, payload length

/// Writes all of \p Len bytes; EINTR-safe, short-write-safe. MSG_NOSIGNAL
/// turns a dead peer into an EPIPE return instead of killing the process.
bool fullSend(int Fd, const void *Data, size_t Len, std::string &Err) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    ssize_t N = send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = formatf("send failed: %s", strerror(errno));
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Len bytes. Returns 1 on success, 0 on EOF before the
/// first byte, -1 on EOF mid-read or a socket error, -2 when \p DeadlineUs
/// (absolute, 0 = none) expires before the bytes arrive. Each blocking
/// read is gated by a poll() bounded by the time remaining.
int fullRecv(int Fd, void *Data, size_t Len, std::string &Err,
             int64_t DeadlineUs) {
  char *P = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got < Len) {
    if (DeadlineUs > 0) {
      int64_t RemainUs = DeadlineUs - obs::nowUs();
      if (RemainUs <= 0) {
        Err = "deadline expired waiting for the peer";
        return -2;
      }
      pollfd PFd{};
      PFd.fd = Fd;
      PFd.events = POLLIN;
      int Rc = poll(&PFd, 1, static_cast<int>((RemainUs + 999) / 1000));
      if (Rc < 0) {
        if (errno == EINTR)
          continue;
        Err = formatf("poll failed: %s", strerror(errno));
        return -1;
      }
      if (Rc == 0) {
        Err = "deadline expired waiting for the peer";
        return -2;
      }
    }
    ssize_t N = read(Fd, P + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = formatf("read failed: %s", strerror(errno));
      return -1;
    }
    if (N == 0) {
      if (Got == 0)
        return 0;
      Err = formatf("torn frame: peer closed after %zu of %zu bytes", Got,
                    Len);
      return -1;
    }
    Got += static_cast<size_t>(N);
  }
  return 1;
}

} // namespace

bool net::verbKnown(uint8_t V) {
  switch (static_cast<Verb>(V)) {
  case Verb::Get:
  case Verb::Warm:
  case Verb::Ping:
  case Verb::Stats:
  case Verb::Metrics:
  case Verb::Artifact:
  case Verb::Ok:
  case Verb::Error:
    return true;
  }
  return false;
}

bool net::writeFrame(int Fd, Verb V, const std::string &Payload,
                     std::string &Err) {
  if (fault::anyArmed() && fault::shouldFire("drop-connection")) {
    // Simulate the peer (or the network) dying mid-exchange: kill the
    // stream under ourselves so the write and every later read fail.
    shutdown(Fd, SHUT_RDWR);
    Err = "injected fault: connection dropped";
    return false;
  }
  char Header[HeaderSize];
  std::memcpy(Header, Magic, 4);
  Header[4] = static_cast<char>(V);
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Header[5 + I] = static_cast<char>((Len >> (8 * I)) & 0xff);
  if (!fullSend(Fd, Header, HeaderSize, Err))
    return false;
  return Payload.empty() || fullSend(Fd, Payload.data(), Payload.size(), Err);
}

ReadStatus net::readFrame(int Fd, Frame &F, std::string &Err,
                          size_t MaxPayload, int64_t DeadlineUs) {
  if (fault::anyArmed()) {
    int StallMs = fault::paramMs("stall-read");
    if (fault::shouldFire("stall-read"))
      std::this_thread::sleep_for(
          std::chrono::milliseconds(StallMs > 0 ? StallMs : 100));
  }
  char Header[HeaderSize];
  int Rc = fullRecv(Fd, Header, HeaderSize, Err, DeadlineUs);
  if (Rc == 0)
    return ReadStatus::Eof;
  if (Rc == -2)
    return ReadStatus::Timeout;
  if (Rc < 0)
    return ReadStatus::Error;
  if (std::memcmp(Header, Magic, 4) != 0) {
    Err = "bad frame magic (not an sld peer?)";
    return ReadStatus::Error;
  }
  F.VerbByte = static_cast<uint8_t>(Header[4]);
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<uint8_t>(Header[5 + I]))
           << (8 * I);
  // Reject before allocating or reading: the declared length is attacker-
  // controlled input.
  if (Len > MaxPayload) {
    Err = formatf("frame payload of %u bytes exceeds the %zu-byte cap",
                  Len, MaxPayload);
    return ReadStatus::Error;
  }
  F.Payload.resize(Len);
  if (Len > 0) {
    int PRc = fullRecv(Fd, F.Payload.data(), Len, Err, DeadlineUs);
    if (PRc == -2)
      return ReadStatus::Timeout;
    if (PRc != 1)
      return ReadStatus::Error;
  }
  return ReadStatus::Ok;
}
