//===- net/Server.cpp -----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "la/Lower.h"
#include "net/Protocol.h"
#include "obs/EventLog.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/File.h"
#include "support/Format.h"

#include <optional>

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slingen;
using namespace slingen::net;

namespace {

/// True when a peer answers on the Unix socket at \p Path -- distinguishes
/// a live daemon from a stale socket file left by a crash.
bool unixSocketAlive(const std::string &Path) {
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  bool Alive = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr)) == 0;
  close(Fd);
  return Alive;
}

int listenUnix(const std::string &Path, std::string &Err) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Err = "unix socket path too long: " + Path;
    return -1;
  }
  if (unixSocketAlive(Path)) {
    Err = "socket " + Path + " is already served by a live daemon";
    return -1;
  }
  unlink(Path.c_str()); // stale file from a previous run
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = formatf("socket failed: %s", strerror(errno));
    return -1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      listen(Fd, 64) != 0) {
    Err = formatf("cannot listen on %s: %s", Path.c_str(), strerror(errno));
    close(Fd);
    return -1;
  }
  return Fd;
}

int listenTcp(int Port, int &BoundPort, std::string &Err) {
  int Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = formatf("socket failed: %s", strerror(errno));
    return -1;
  }
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // never a public interface
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      listen(Fd, 64) != 0) {
    Err = formatf("cannot listen on 127.0.0.1:%d: %s", Port,
                  strerror(errno));
    close(Fd);
    return -1;
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  return Fd;
}

} // namespace

bool net::parseAddr(const std::string &Addr, ParsedAddr &Out,
                    std::string &Err) {
  Out = {};
  std::string Rest = Addr;
  if (Rest.rfind("unix:", 0) == 0) {
    Out.IsUnix = true;
    Out.UnixPath = Rest.substr(5);
    return !Out.UnixPath.empty() ||
           (Err = "empty unix socket path", false);
  }
  if (Rest.rfind("tcp:", 0) == 0)
    Rest = Rest.substr(4);
  else if (Rest.find('/') != std::string::npos) {
    Out.IsUnix = true;
    Out.UnixPath = Rest;
    return true;
  }
  size_t Colon = Rest.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == Rest.size()) {
    Err = "address '" + Addr +
          "' is neither a socket path nor host:port";
    return false;
  }
  Out.Host = Rest.substr(0, Colon);
  if (Out.Host.empty())
    Out.Host = "127.0.0.1";
  for (size_t I = Colon + 1; I < Rest.size(); ++I)
    if (!isdigit(static_cast<unsigned char>(Rest[I]))) {
      Err = "bad port in address '" + Addr + "'";
      return false;
    }
  Out.Port = atoi(Rest.c_str() + Colon + 1);
  if (Out.Port <= 0 || Out.Port > 65535) {
    Err = "bad port in address '" + Addr + "'";
    return false;
  }
  return true;
}

Server::Server(service::KernelService &Svc, ServerConfig Config)
    : Svc(Svc), Cfg(std::move(Config)) {}

Server::~Server() { stop(); }

bool Server::start(std::string &Err) {
  if (Started) {
    Err = "server already started";
    return false;
  }
  if (Cfg.UnixPath.empty() && Cfg.TcpPort < 0) {
    Err = "no listener configured (need a unix path or a TCP port)";
    return false;
  }
  if (!Cfg.UnixPath.empty()) {
    UnixFd = listenUnix(Cfg.UnixPath, Err);
    if (UnixFd < 0)
      return false;
  }
  if (Cfg.TcpPort >= 0) {
    TcpFd = listenTcp(Cfg.TcpPort, BoundTcpPort, Err);
    if (TcpFd < 0) {
      if (UnixFd >= 0) {
        close(UnixFd);
        UnixFd = -1;
        unlink(Cfg.UnixPath.c_str());
      }
      return false;
    }
  }
  Started = true;
  if (UnixFd >= 0)
    AcceptThreads.emplace_back([this] { acceptLoop(UnixFd); });
  if (TcpFd >= 0)
    AcceptThreads.emplace_back([this] { acceptLoop(TcpFd); });
  return true;
}

void Server::stop() {
  if (!Started || Stopping.exchange(true))
    return;
  // Closing the listeners makes the blocked accept() calls fail and the
  // accept loops exit.
  if (UnixFd >= 0)
    shutdown(UnixFd, SHUT_RDWR);
  if (TcpFd >= 0)
    shutdown(TcpFd, SHUT_RDWR);
  if (UnixFd >= 0)
    close(UnixFd);
  if (TcpFd >= 0)
    close(TcpFd);
  for (auto &T : AcceptThreads)
    T.join();
  AcceptThreads.clear();
  // Graceful drain: unblock only the threads idling in read() -- a
  // connection mid-request keeps its stream, finishes, sends its reply,
  // and exits on the post-frame Stopping check (Stopping was set above,
  // so even a request that completes between this pass and the join
  // below sees it).
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (auto &C : Connections)
      if (C->Fd >= 0 && !C->InRequest.load())
        shutdown(C->Fd, SHUT_RDWR);
  }
  for (;;) {
    std::unique_ptr<Connection> Conn;
    {
      std::lock_guard<std::mutex> L(ConnMu);
      if (Connections.empty())
        break;
      Conn = std::move(Connections.front());
      Connections.pop_front();
    }
    Conn->Thread.join();
  }
  if (UnixFd >= 0)
    unlink(Cfg.UnixPath.c_str());
  UnixFd = TcpFd = -1;
}

void Server::reapFinishedConnections() {
  std::lock_guard<std::mutex> L(ConnMu);
  for (auto It = Connections.begin(); It != Connections.end();) {
    if ((*It)->Done.load()) {
      (*It)->Thread.join();
      It = Connections.erase(It);
    } else {
      ++It;
    }
  }
}

void Server::acceptLoop(int ListenFd) {
  while (!Stopping.load()) {
    sockaddr_storage Ss{};
    socklen_t SsLen = sizeof(Ss);
    int Fd = accept(ListenFd, reinterpret_cast<sockaddr *>(&Ss), &SsLen);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener closed (stop()) or broken beyond repair
    }
    std::string Peer = "unix";
    if (Ss.ss_family == AF_INET) {
      auto *In = reinterpret_cast<sockaddr_in *>(&Ss);
      char Ip[INET_ADDRSTRLEN] = {};
      inet_ntop(AF_INET, &In->sin_addr, Ip, sizeof(Ip));
      Peer = formatf("%s:%d", Ip, ntohs(In->sin_port));
    }
    if (Stopping.load()) {
      close(Fd);
      return;
    }
    reapFinishedConnections();
    if (Cfg.MaxConns > 0) {
      bool Shed;
      {
        std::lock_guard<std::mutex> L(ConnMu);
        Shed = static_cast<int>(Connections.size()) >= Cfg.MaxConns;
      }
      if (Shed) {
        // Reject at the edge, loudly: an immediate Overloaded ERR tells
        // the client to back off and retry, where a silent close or an
        // unserved queue slot would just hang it.
        static obs::Counter &ShedCount =
            obs::Registry::global().counter("net.shed");
        ShedCount.add();
        obs::EventLog::global().log(obs::EventLog::Level::Warn, 0, "shed",
                                    {{"peer", Peer},
                                     {"reason", "connection capacity"}});
        std::string Ignored;
        writeFrame(Fd, Verb::Error,
                   encodeErrorPayload(service::Errc::Overloaded,
                                      "server at connection capacity"),
                   Ignored);
        close(Fd);
        continue;
      }
    }
    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Conn->Peer = std::move(Peer);
    Connection *Raw = Conn.get();
    {
      // The thread member is assigned under the same lock the reaper and
      // stop() take, so a connection that finishes instantly can never be
      // join()ed mid-assignment by the other accept thread.
      std::lock_guard<std::mutex> L(ConnMu);
      Connections.push_back(std::move(Conn));
      Raw->Thread = std::thread([this, Raw] { serveConnection(*Raw); });
    }
  }
}

void Server::serveConnection(Connection &Conn) {
  for (;;) {
    Frame F;
    std::string Err;
    int64_t IdleDeadline =
        Cfg.IdleTimeoutMs > 0
            ? obs::nowUs() + static_cast<int64_t>(Cfg.IdleTimeoutMs) * 1000
            : 0;
    ReadStatus RS = readFrame(Conn.Fd, F, Err, Cfg.MaxPayload, IdleDeadline);
    if (RS == ReadStatus::Eof)
      break;
    if (RS == ReadStatus::Timeout)
      break; // idle too long (or stalled mid-frame): reclaim the slot
    if (RS == ReadStatus::Error) {
      // Oversized/bad-magic/torn input: tell the peer why (best effort;
      // for a torn frame it is likely gone) and drop the connection --
      // the stream can no longer be trusted to be frame-aligned.
      std::string Ignored;
      writeFrame(Conn.Fd, Verb::Error, Err, Ignored);
      break;
    }
    Conn.InRequest = true;
    bool Keep = handleFrame(Conn, F);
    Conn.InRequest = false;
    // Checked after the reply: a drain that began mid-request still gets
    // its answer out before the connection goes away.
    if (!Keep || Stopping.load())
      break;
  }
  // Closed under ConnMu so stop()'s shutdown pass never touches a
  // recycled descriptor number.
  {
    std::lock_guard<std::mutex> L(ConnMu);
    close(Conn.Fd);
    Conn.Fd = -1;
  }
  Conn.Done = true;
}

namespace {

/// Per-verb request-latency histograms plus the server's frame counter,
/// resolved once. The per-verb split is the ops-facing view: GET carries
/// the whole serving pipeline, PING isolates pure wire + scheduling cost.
struct ServerMetrics {
  obs::Counter &Frames = obs::Registry::global().counter("server.frames");
  obs::Histogram &PingUs =
      obs::Registry::global().histogram("server.ping.us");
  obs::Histogram &StatsUs =
      obs::Registry::global().histogram("server.stats.us");
  obs::Histogram &GetUs = obs::Registry::global().histogram("server.get.us");
  obs::Histogram &WarmUs =
      obs::Registry::global().histogram("server.warm.us");
  obs::Histogram &MetricsUs =
      obs::Registry::global().histogram("server.metrics.us");
  obs::Histogram &OtherUs =
      obs::Registry::global().histogram("server.other.us");
  /// Per-dimension top-K accounting (bounded: see LabelTable); scraped by
  /// the METRICS verb.
  obs::LabelTable PerKernel{64};
  obs::LabelTable PerPeer{64};

  obs::Histogram &forVerb(Verb V) {
    switch (V) {
    case Verb::Ping:
      return PingUs;
    case Verb::Stats:
      return StatsUs;
    case Verb::Get:
      return GetUs;
    case Verb::Warm:
      return WarmUs;
    case Verb::Metrics:
      return MetricsUs;
    default:
      return OtherUs;
    }
  }

  static ServerMetrics &get() {
    static ServerMetrics M;
    return M;
  }
};

const char *spanNameForVerb(Verb V) {
  switch (V) {
  case Verb::Ping:
    return "serve-ping";
  case Verb::Stats:
    return "serve-stats";
  case Verb::Get:
    return "serve-get";
  case Verb::Warm:
    return "serve-warm";
  case Verb::Metrics:
    return "serve-metrics";
  default:
    return "serve-other";
  }
}

const char *verbToken(Verb V) {
  switch (V) {
  case Verb::Ping:
    return "ping";
  case Verb::Stats:
    return "stats";
  case Verb::Get:
    return "get";
  case Verb::Warm:
    return "warm";
  case Verb::Metrics:
    return "metrics";
  default:
    return "other";
  }
}

/// A short greppable fingerprint of a request before its cache key is
/// known: the head of the LA program with everything outside
/// [A-Za-z0-9_-] squashed to '.', so the flight recorder names what was
/// being generated even when the request never completed.
std::string kernelLabelFor(const std::string &LaSource) {
  std::string Out;
  for (char C : LaSource) {
    if (Out.size() >= 28)
      break;
    if (isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '-')
      Out += C;
    else if (!Out.empty() && Out.back() != '.')
      Out += '.';
  }
  return Out.empty() ? "-" : Out;
}

} // namespace

bool Server::handleFrame(Connection &Conn, const Frame &F) {
  ++Served;
  ServerMetrics &M = ServerMetrics::get();
  M.Frames.add();
  // Connection threads serve many requests: the previous frame's trace id
  // must not bleed into this one's spans. The Get/Warm path re-stamps it
  // after decoding; the stamp stays live through Handle's destructor so
  // the serve-* span is tagged too.
  obs::setCurrentTraceId(0);
  obs::ScopedSpan Handle(spanNameForVerb(F.verb()), "server",
                         &M.forVerb(F.verb()));
  std::string Err;
  auto Respond = [&](Verb V, const std::string &Payload) {
    std::string WriteErr;
    return writeFrame(Conn.Fd, V, Payload, WriteErr);
  };
  auto RespondError = [&](service::Errc Code, const std::string &Msg,
                          uint64_t TraceId) {
    obs::EventLog::global().log(obs::EventLog::Level::Error, TraceId,
                                "error",
                                {{"verb", verbToken(F.verb())},
                                 {"errc", service::errcName(Code)},
                                 {"peer", Conn.Peer},
                                 {"msg", Msg}});
    return Respond(Verb::Error, encodeErrorPayload(Code, Msg));
  };

  switch (F.verb()) {
  case Verb::Ping:
    return Respond(Verb::Ok, "pong");

  case Verb::Stats:
    return Respond(Verb::Ok, serializeServiceStats(Svc.stats()));

  case Verb::Metrics:
    // The whole registry (globally sorted keys) plus the bounded
    // top-K dimension tables -- the scrape surface for slc -metrics.
    return Respond(Verb::Ok, obs::Registry::global().renderText() +
                                 M.PerKernel.renderText("top.kernel", 10) +
                                 M.PerPeer.renderText("top.peer", 10));

  case Verb::Get:
  case Verb::Warm: {
    Request R;
    if (!decodeRequest(F.Payload, R, Err))
      return RespondError(service::Errc::InvalidRequest, Err, 0);
    obs::setCurrentTraceId(R.TraceId);
    GenOptions Options;
    service::RequestOptions Req;
    if (!requestToServiceArgs(R, Options, Req, Err))
      return RespondError(service::Errc::InvalidRequest, Err, R.TraceId);

    std::string Label = kernelLabelFor(R.LaSource);
    const char *Tok = verbToken(F.verb());
    obs::FlightRecorder &FR = obs::FlightRecorder::global();
    // "start" is written before any service work: if the process dies
    // mid-request, the crash dump still names what was in flight.
    FR.record(R.TraceId, "start", Tok, Label.c_str(), Conn.Peer.c_str(),
              "-", "-", -1);

    if (F.verb() == Verb::Warm) {
      // Parse the program before queueing (options were validated above),
      // so a malformed warm list fails loudly at the client instead of
      // silently warming nothing; only the generate+compile is async.
      if (!la::compileLa(R.LaSource, Err)) {
        FR.record(R.TraceId, "fail", Tok, Label.c_str(), Conn.Peer.c_str(),
                  "-", service::errcName(service::Errc::ParseError),
                  Handle.elapsedUs());
        return RespondError(service::Errc::ParseError,
                            "parse error: " + Err, R.TraceId);
      }
      Svc.prefetch(R.LaSource, Options, Req);
      FR.record(R.TraceId, "done", Tok, Label.c_str(), Conn.Peer.c_str(),
                "queued", "-", Handle.elapsedUs());
      return Respond(Verb::Ok, "queued");
    }

    // Collect this request's spans for the reply only when the client can
    // decode them: a trace id is precisely the marker of a client new
    // enough for the span field (old clients send WantTiming alone).
    obs::SpanCollector Spans;
    std::optional<obs::ScopedCollect> Collect;
    if (R.WantTiming && R.TraceId)
      Collect.emplace(Spans);
    service::GetResult G = Svc.get(R.LaSource, Options, Req);
    Collect.reset();
    int64_t LatUs = Handle.elapsedUs();
    M.PerPeer.add(Conn.Peer, LatUs);
    if (!G) {
      M.PerKernel.add(Label, LatUs);
      FR.record(R.TraceId, "fail", Tok, Label.c_str(), Conn.Peer.c_str(),
                G.Timing.Tier.c_str(), service::errcName(G.Code), LatUs);
      return RespondError(G.Code, G.Error, R.TraceId);
    }
    M.PerKernel.add(G->FuncName, LatUs);
    FR.record(R.TraceId, "done", Tok, G->FuncName.c_str(),
              Conn.Peer.c_str(), G.Timing.Tier.c_str(), "-", LatUs);
    if (Cfg.SlowMs > 0 && LatUs > static_cast<int64_t>(Cfg.SlowMs) * 1000)
      obs::EventLog::global().log(
          obs::EventLog::Level::Warn, R.TraceId, "slow",
          {{"kernel", G->FuncName},
           {"tier", G.Timing.Tier},
           {"peer", Conn.Peer},
           {"lat-us", formatf("%lld", static_cast<long long>(LatUs))}});
    std::string SoBytes;
    if (R.WantSo && G->isCallable()) {
      bool Ok = false;
      SoBytes = readFile(G->Kernel->soPath(), &Ok);
      if (!Ok)
        SoBytes.clear(); // degrade to source-only over the wire
    }
    ArtifactMsg Msg = artifactToMsg(*G.Kernel, std::move(SoBytes));
    if (R.WantTiming) {
      Msg.TimingText = service::serializeRequestTiming(G.Timing);
      if (R.TraceId)
        Msg.ServerSpans = std::move(Spans.Spans);
    }
    return Respond(Verb::Artifact, encodeArtifact(Msg));
  }

  case Verb::Artifact:
  case Verb::Ok:
  case Verb::Error:
    break; // response verbs from a client are a protocol violation
  }
  // Unknown or misplaced verb: answer (the frame boundary is intact) but
  // keep serving -- a newer client probing an older daemon deserves a
  // diagnosable error, not a hangup.
  return RespondError(service::Errc::InvalidRequest,
                      formatf("unsupported verb 0x%02x", F.VerbByte), 0);
}
