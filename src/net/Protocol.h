//===- net/Protocol.h - sld request/response messages ---------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message layer of the sld protocol: what rides inside the Wire.h
/// frames. Two payload shapes exist:
///
///   Request      (verbs GET and WARM) an LA program as source text, the
///                GenOptions document (see slingen/OptionsIO.h), the
///                batched bit, and optional per-request overrides of the
///                daemon's batch strategy and measured-tuning default.
///   ArtifactMsg  (verb ARTIFACT) everything a client needs to use a
///                kernel without a local generator or compiler: the
///                emitted C, full provenance (key, choice vector, tuning
///                data), and the compiled shared object as raw bytes --
///                dlopen-able on the client via JitKernel::loadFromBytes.
///
/// Decoders validate strictly (no trailing bytes, no unknown strategy
/// names) and fail with a message rather than guessing: a frame that
/// decodes is a frame whose every field is meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_NET_PROTOCOL_H
#define SLINGEN_NET_PROTOCOL_H

#include "obs/Trace.h"
#include "service/KernelService.h"

#include <optional>
#include <string>
#include <vector>

namespace slingen {
namespace net {

/// A GET/WARM payload.
struct Request {
  std::string LaSource;    ///< the LA program text
  std::string OptionsText; ///< serializeGenOptions() document (may be empty)
  bool Batched = false;
  /// Batch-strategy override ("loop"/"vec"/"fused"/"auto"); empty defers
  /// to the daemon's configured strategy.
  std::string StrategyName;
  /// Batched dispatch-width override (the `threads=k` knob): 0 defers to
  /// the daemon's batch-threads policy, k >= 1 pins the width the daemon
  /// records on a produced artifact. Dispatch metadata only -- it never
  /// changes the served bytes or the cache key.
  int Threads = 0;
  /// Measured-tuning override: -1 defers to the daemon, 0/1 force. A
  /// produce-time policy: it governs how a cache miss is generated, and
  /// an already-cached artifact is served as-is (ArtifactMsg::Measured
  /// reports what this kernel actually got).
  int MeasureOverride = -1;
  /// When false the response omits the .so bytes (clients that only want
  /// the C source skip the biggest field).
  bool WantSo = true;
  /// Ask the daemon to attach its per-request phase breakdown to the
  /// response (ArtifactMsg::TimingText). Encoded as a trailing field only
  /// when set, so requests from clients that never ask are byte-identical
  /// to the pre-timing wire format and old daemons keep decoding them;
  /// old daemons receiving a want-timing request reject it, which the
  /// facade treats as "no breakdown available", not a failure.
  bool WantTiming = false;
  /// Milliseconds the client is willing to wait, 0 = no deadline. The
  /// daemon sheds work whose deadline already passed (Errc::
  /// DeadlineExceeded) instead of generating a kernel nobody is waiting
  /// for. Rides the same trailing-field scheme as WantTiming: when set,
  /// the want-timing byte is always written (0 or 1) followed by the u32
  /// deadline, so the decoder distinguishes the tails by length --
  /// deadline-free requests stay byte-identical to the older formats, and
  /// an old daemon rejecting the tail makes the client retry without it.
  uint32_t DeadlineMs = 0;
  /// Request trace id for cross-process span correlation; 0 = untraced.
  /// Extends the trailing-field scheme a third step: when nonzero, the
  /// full tail is always written -- want-timing byte, u32 deadline (0
  /// allowed in this form only), u64 trace id (nonzero), u64 span id --
  /// so the decoder again tells the three tails apart by length (1, 5,
  /// or 21 bytes). Old daemons reject the long tail; the client strips
  /// the ids and retries once, exactly the DeadlineMs downgrade dance.
  uint64_t TraceId = 0;
  /// The client's root span id under TraceId (informational; the daemon
  /// currently echoes it into nothing but future parenting may use it).
  uint64_t SpanId = 0;
};

std::string encodeRequest(const Request &R);
bool decodeRequest(const std::string &Payload, Request &R, std::string &Err);

/// Builds the service-side view of a request: GenOptions from the options
/// document and RequestOptions from the override fields. Fails (with
/// \p Err) on malformed options, unknown strategy names, or out-of-range
/// overrides.
bool requestToServiceArgs(const Request &R, GenOptions &Options,
                          service::RequestOptions &Req, std::string &Err);

/// An ARTIFACT payload: KernelArtifact, flattened for the wire.
struct ArtifactMsg {
  std::string Key;
  std::string FuncName;
  std::string IsaName;
  int NumParams = 0;
  bool Batched = false;
  std::string StrategyName; ///< "loop"/"vec"/"fused" (batched artifacts only)
  /// Tuned batched dispatch width (>= 1; batched artifacts only): remote
  /// clients loading the shipped .so dispatch with this many threads by
  /// default.
  int BatchThreads = 1;
  std::vector<int> Choice;
  long StaticCost = 0;
  bool Measured = false;
  double MeasuredCycles = 0.0;
  std::string CSource;
  std::string SoBytes; ///< compiled shared object; empty when source-only
  /// Server-timing breakdown (a serializeRequestTiming document), present
  /// only when the request set WantTiming and the daemon understands it.
  /// Encoded as a trailing field only when non-empty: responses without it
  /// are byte-identical to the pre-timing format, so old clients decode
  /// new daemons and new clients decode old daemons (absence simply means
  /// "no breakdown").
  std::string TimingText;
  /// The daemon's span list for this request (server clock timestamps),
  /// shipped so the client can merge one cross-process Chrome trace.
  /// Encoded after TimingText and only when TimingText is also present --
  /// the daemon attaches spans only for requests that sent both
  /// WantTiming and a trace id, and a trace id is precisely what old
  /// clients never send, so they never see this field.
  std::vector<obs::Span> ServerSpans;
};

std::string encodeArtifact(const ArtifactMsg &A);
bool decodeArtifact(const std::string &Payload, ArtifactMsg &A,
                    std::string &Err);

/// Flattens a served artifact (plus the .so bytes the server read for it,
/// empty when source-only or not requested) into the wire shape.
ArtifactMsg artifactToMsg(const service::KernelArtifact &A,
                          std::string SoBytes);

//===----------------------------------------------------------------------===//
// Structured ERR payloads. A daemon-side failure rides the wire as
// "<errc-token>: <message>" (tokens from service::errcName), so clients
// can branch on the error class -- retry only transport failures, map
// parse errors to their own error model -- without parsing prose. The
// payload stays human-readable, and messages from pre-code daemons (no
// recognized token prefix) decode with Code unset.
//===----------------------------------------------------------------------===//

std::string encodeErrorPayload(service::Errc Code, const std::string &Msg);
void decodeErrorPayload(const std::string &Payload,
                        std::optional<service::Errc> &Code, std::string &Msg);

} // namespace net
} // namespace slingen

#endif // SLINGEN_NET_PROTOCOL_H
