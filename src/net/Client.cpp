//===- net/Client.cpp -----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "net/Server.h" // parseAddr
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Format.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slingen;
using namespace slingen::net;

namespace {

/// Nonblocking connect bounded by \p TimeoutMs: a blackholed TCP address
/// (or a daemon whose accept queue stopped draining) fails here in bounded
/// time instead of hanging for the kernel's minutes-long SYN-retry budget.
/// On success the socket is restored to blocking mode.
bool connectWithTimeout(int Fd, const sockaddr *SA, socklen_t Len,
                        int TimeoutMs, std::string &Err) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0) {
    Err = formatf("fcntl failed: %s", strerror(errno));
    return false;
  }
  int Rc = ::connect(Fd, SA, Len);
  if (Rc != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      Err = strerror(errno);
      return false;
    }
    int64_t Deadline = obs::nowUs() + static_cast<int64_t>(TimeoutMs) * 1000;
    for (;;) {
      int64_t RemainUs = Deadline - obs::nowUs();
      if (RemainUs <= 0) {
        Err = formatf("timed out after %d ms", TimeoutMs);
        return false;
      }
      pollfd PFd{};
      PFd.fd = Fd;
      PFd.events = POLLOUT;
      int PRc = poll(&PFd, 1, static_cast<int>((RemainUs + 999) / 1000));
      if (PRc < 0) {
        if (errno == EINTR)
          continue;
        Err = formatf("poll failed: %s", strerror(errno));
        return false;
      }
      if (PRc == 0) {
        Err = formatf("timed out after %d ms", TimeoutMs);
        return false;
      }
      break;
    }
    int SoErr = 0;
    socklen_t SoLen = sizeof(SoErr);
    if (getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &SoLen) != 0 ||
        SoErr != 0) {
      Err = strerror(SoErr != 0 ? SoErr : errno);
      return false;
    }
  }
  if (fcntl(Fd, F_SETFL, Flags) < 0) {
    Err = formatf("fcntl failed: %s", strerror(errno));
    return false;
  }
  return true;
}

} // namespace

std::optional<Client> Client::connect(const std::string &Addr,
                                      std::string &Err, int TimeoutMs) {
  ParsedAddr P;
  if (!parseAddr(Addr, P, Err))
    return std::nullopt;
  if (TimeoutMs <= 0)
    TimeoutMs = 10000;

  int Fd = -1;
  std::string ConnErr;
  if (P.IsUnix) {
    if (P.UnixPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
      Err = "unix socket path too long: " + P.UnixPath;
      return std::nullopt;
    }
    Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = formatf("socket failed: %s", strerror(errno));
      return std::nullopt;
    }
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    strncpy(SA.sun_path, P.UnixPath.c_str(), sizeof(SA.sun_path) - 1);
    if (!connectWithTimeout(Fd, reinterpret_cast<sockaddr *>(&SA),
                            sizeof(SA), TimeoutMs, ConnErr)) {
      Err = "cannot connect to " + P.UnixPath + ": " + ConnErr;
      close(Fd);
      return std::nullopt;
    }
  } else {
    addrinfo Hints{}, *Res = nullptr;
    Hints.ai_family = AF_INET;
    Hints.ai_socktype = SOCK_STREAM;
    int Rc = getaddrinfo(P.Host.c_str(), std::to_string(P.Port).c_str(),
                         &Hints, &Res);
    if (Rc != 0 || !Res) {
      Err = formatf("cannot resolve %s: %s", P.Host.c_str(),
                    gai_strerror(Rc));
      return std::nullopt;
    }
    Fd = socket(Res->ai_family, Res->ai_socktype, Res->ai_protocol);
    if (Fd < 0 || !connectWithTimeout(Fd, Res->ai_addr, Res->ai_addrlen,
                                      TimeoutMs, ConnErr)) {
      Err = formatf("cannot connect to %s:%d: %s", P.Host.c_str(), P.Port,
                    ConnErr.empty() ? strerror(errno) : ConnErr.c_str());
      if (Fd >= 0)
        close(Fd);
      freeaddrinfo(Res);
      return std::nullopt;
    }
    freeaddrinfo(Res);
  }

  Client C;
  C.Fd = Fd;
  return C;
}

Client::Client(Client &&O) noexcept
    : Fd(O.Fd), MaxPayload(O.MaxPayload), DeadlineUs(O.DeadlineUs) {
  O.Fd = -1;
}

Client &Client::operator=(Client &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      close(Fd);
    Fd = O.Fd;
    MaxPayload = O.MaxPayload;
    DeadlineUs = O.DeadlineUs;
    O.Fd = -1;
  }
  return *this;
}

Client::~Client() {
  if (Fd >= 0)
    close(Fd);
}

bool Client::roundTrip(Verb V, const std::string &Payload, Verb ExpectReply,
                       std::string &ReplyPayload, ClientError &Err) {
  // One span + one histogram sample per wire exchange: the client-side
  // round-trip view that pairs with the daemon's server.<verb>.us numbers
  // (the difference is wire + queueing cost).
  static obs::Histogram &RoundTripUs =
      obs::Registry::global().histogram("client.roundtrip.us");
  obs::ScopedSpan Span("client-roundtrip", "client", &RoundTripUs);
  Err = {};
  if (Fd < 0) {
    Err.Message = "not connected";
    return false;
  }
  if (DeadlineUs > 0 && obs::nowUs() >= DeadlineUs) {
    // Nothing was sent yet, so the connection stays usable; the request
    // just never had time to run.
    Err.Code = service::Errc::DeadlineExceeded;
    Err.Message = "deadline expired before the request was sent";
    return false;
  }
  if (!writeFrame(Fd, V, Payload, Err.Message))
    return false; // Category defaults to Transport
  Frame F;
  ReadStatus RS = readFrame(Fd, F, Err.Message, MaxPayload, DeadlineUs);
  if (RS == ReadStatus::Eof) {
    Err.Message = "daemon closed the connection";
    return false;
  }
  if (RS == ReadStatus::Timeout) {
    // The reply may be mid-frame; the stream is desynchronized. Close so
    // the next request reconnects instead of decoding garbage.
    close(Fd);
    Fd = -1;
    Err.Code = service::Errc::DeadlineExceeded;
    Err.Message = "deadline expired waiting for the daemon's reply";
    return false;
  }
  if (RS == ReadStatus::Error)
    return false; // torn frame / bad magic / socket error: the stream died
  if (F.verb() == Verb::Error) {
    Err.Category = ErrorCategory::Daemon;
    decodeErrorPayload(F.Payload, Err.Code, Err.Message);
    if (Err.Message.empty())
      Err.Message = "daemon reported an error";
    return false;
  }
  if (F.verb() != ExpectReply) {
    Err.Category = ErrorCategory::Protocol;
    Err.Message = formatf("unexpected reply verb 0x%02x", F.VerbByte);
    return false;
  }
  ReplyPayload = std::move(F.Payload);
  return true;
}

bool Client::get(const Request &R, ArtifactMsg &Out, ClientError &Err) {
  int64_t Start = obs::nowUs();
  std::string Reply;
  if (!roundTrip(Verb::Get, encodeRequest(R), Verb::Artifact, Reply, Err))
    return false;
  if (!decodeArtifact(Reply, Out, Err.Message)) {
    Err.Category = ErrorCategory::Protocol;
    Err.Code = std::nullopt;
    return false;
  }
  // Merge the daemon's spans into the local trace: its steady clock is
  // not ours, so rebase the server window to sit centered inside this
  // round trip (left-aligned when clock skew makes it look wider). Tids
  // are offset so server threads get their own rows next to ours.
  if (!Out.ServerSpans.empty() && R.TraceId &&
      obs::Tracer::global().enabled()) {
    int64_t ClientDur = obs::nowUs() - Start;
    int64_t SrvMin = INT64_MAX, SrvMax = INT64_MIN;
    for (const obs::Span &S : Out.ServerSpans) {
      SrvMin = std::min(SrvMin, S.StartUs);
      SrvMax = std::max(SrvMax, S.StartUs + S.DurUs);
    }
    int64_t Window = SrvMax - SrvMin;
    int64_t Offset =
        Start + (Window < ClientDur ? (ClientDur - Window) / 2 : 0) - SrvMin;
    for (const obs::Span &S : Out.ServerSpans) {
      obs::Span Local = S;
      Local.StartUs += Offset;
      Local.Tid += 1000;
      Local.TraceId = R.TraceId;
      obs::Tracer::global().record(Local);
    }
  }
  return true;
}

bool Client::warm(const Request &R, ClientError &Err) {
  std::string Reply;
  return roundTrip(Verb::Warm, encodeRequest(R), Verb::Ok, Reply, Err);
}

bool Client::ping(ClientError &Err) {
  std::string Reply;
  return roundTrip(Verb::Ping, "", Verb::Ok, Reply, Err);
}

bool Client::stats(std::string &Out, ClientError &Err) {
  return roundTrip(Verb::Stats, "", Verb::Ok, Out, Err);
}

bool Client::metrics(std::string &Out, ClientError &Err) {
  return roundTrip(Verb::Metrics, "", Verb::Ok, Out, Err);
}

bool Client::get(const Request &R, ArtifactMsg &Out, std::string &Err) {
  ClientError E;
  if (get(R, Out, E))
    return true;
  Err = std::move(E.Message);
  return false;
}

bool Client::warm(const Request &R, std::string &Err) {
  ClientError E;
  if (warm(R, E))
    return true;
  Err = std::move(E.Message);
  return false;
}

bool Client::ping(std::string &Err) {
  ClientError E;
  if (ping(E))
    return true;
  Err = std::move(E.Message);
  return false;
}

bool Client::stats(std::string &Out, std::string &Err) {
  ClientError E;
  if (stats(Out, E))
    return true;
  Err = std::move(E.Message);
  return false;
}

bool Client::metrics(std::string &Out, std::string &Err) {
  ClientError E;
  if (metrics(Out, E))
    return true;
  Err = std::move(E.Message);
  return false;
}
