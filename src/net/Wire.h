//===- net/Wire.h - frame and payload primitives of the sld protocol ------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bottom layer of the sld socket protocol: length-prefixed binary
/// frames over a stream socket, plus the little-endian payload reader/
/// writer the protocol layer encodes messages with.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic "sld2"
///   4       1     verb (see Verb; unknown values are delivered raw so the
///                 server can answer ERR instead of hanging up blind)
///   5       4     payload length N
///   9       N     payload bytes
///
/// readFrame() distinguishes a clean EOF at a frame boundary (peer closed,
/// ReadStatus::Eof) from a torn frame (EOF or error mid-header/payload,
/// ReadStatus::Error) and rejects payloads over the caller's cap before
/// reading them, so a hostile 4 GiB length prefix cannot balloon memory.
/// All I/O retries EINTR and handles short reads/writes.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_NET_WIRE_H
#define SLINGEN_NET_WIRE_H

#include <cstdint>
#include <cstring>
#include <string>

namespace slingen {
namespace net {

/// Frame verbs. Requests are low values, responses have the high bit set.
enum class Verb : uint8_t {
  Get = 0x01,     ///< request: generate/serve one kernel (payload: Request)
  Warm = 0x02,    ///< request: queue a prefetch for one kernel (same payload)
  Ping = 0x03,    ///< request: liveness probe (empty payload)
  Stats = 0x04,   ///< request: service counters (empty payload)
  Metrics = 0x05, ///< request: metrics scrape text (empty payload)

  Artifact = 0x81, ///< response to Get (payload: ArtifactMsg)
  Ok = 0x82,       ///< response to Warm/Ping/Stats (payload: text)
  Error = 0x83,    ///< response: request failed (payload: message)
};

/// True for verbs this build of the protocol understands.
bool verbKnown(uint8_t V);

/// Frames over 64 MiB are rejected by default -- comfortably above any
/// emitted kernel + .so, far below a memory-exhaustion vector.
constexpr size_t DefaultMaxPayload = 64u << 20;

/// One decoded frame. VerbByte is raw so unknown verbs survive decoding.
struct Frame {
  uint8_t VerbByte = 0;
  std::string Payload;

  Verb verb() const { return static_cast<Verb>(VerbByte); }
};

/// Writes one frame; loops over short writes, suppresses SIGPIPE. Returns
/// false (with \p Err) on any socket error.
bool writeFrame(int Fd, Verb V, const std::string &Payload, std::string &Err);

enum class ReadStatus {
  Ok,      ///< a complete frame was read
  Eof,     ///< peer closed cleanly between frames
  Error,   ///< torn frame, bad magic, oversized payload, or socket error
  Timeout, ///< the deadline expired before a complete frame arrived
};

/// Reads one complete frame. Blocks indefinitely when \p DeadlineUs is 0;
/// otherwise \p DeadlineUs is an absolute obs::nowUs() stamp and every
/// read is preceded by a poll() bounded by the time remaining, so a
/// stalled peer costs at most the deadline (ReadStatus::Timeout -- the
/// stream may be mid-frame afterwards, so the caller must treat the
/// connection as desynchronized and close it).
ReadStatus readFrame(int Fd, Frame &F, std::string &Err,
                     size_t MaxPayload = DefaultMaxPayload,
                     int64_t DeadlineUs = 0);

//===----------------------------------------------------------------------===//
// Payload encoding: a flat little-endian byte stream of u8/u32/u64/f64 and
// length-prefixed strings. ByteReader never reads past the end -- every
// accessor returns false on truncation, so a short frame fails decoding
// instead of faulting.
//===----------------------------------------------------------------------===//

class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.append(S);
  }

  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

class ByteReader {
public:
  explicit ByteReader(const std::string &Data) : Data(Data) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Data.size())
      return false;
    V = static_cast<uint8_t>(Data[Pos++]);
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > Data.size())
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos++])) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > Data.size())
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos++])) << (8 * I);
    return true;
  }
  bool f64(double &V) {
    uint64_t Bits;
    if (!u64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }
  bool str(std::string &S) {
    uint32_t Len;
    if (!u32(Len) || Pos + Len > Data.size())
      return false;
    S.assign(Data, Pos, Len);
    Pos += Len;
    return true;
  }

  bool atEnd() const { return Pos == Data.size(); }

private:
  const std::string &Data;
  size_t Pos = 0;
};

} // namespace net
} // namespace slingen

#endif // SLINGEN_NET_WIRE_H
