//===- net/Protocol.cpp ---------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

#include "net/Wire.h"
#include "obs/Metrics.h"
#include "slingen/OptionsIO.h"

using namespace slingen;
using namespace slingen::net;

std::string net::encodeRequest(const Request &R) {
  ByteWriter W;
  W.str(R.LaSource);
  W.str(R.OptionsText);
  W.u8(R.Batched ? 1 : 0);
  W.str(R.StrategyName);
  W.u32(static_cast<uint32_t>(R.Threads < 0 ? 0 : R.Threads));
  W.u8(R.MeasureOverride < 0 ? 0xff
                             : static_cast<uint8_t>(R.MeasureOverride));
  W.u8(R.WantSo ? 1 : 0);
  // Trailing optional fields, written only when set: a default request is
  // byte-identical to the pre-timing format (old daemons keep decoding
  // every client that asks for nothing extra). A deadline always writes
  // the want-timing byte first, even when 0, and a trace id always writes
  // both earlier fields -- the decoder tells the three tails apart by
  // what follows the byte (nothing / u32 / u32+u64+u64).
  if (R.TraceId != 0) {
    W.u8(R.WantTiming ? 1 : 0);
    W.u32(R.DeadlineMs);
    W.u64(R.TraceId);
    W.u64(R.SpanId);
  } else if (R.DeadlineMs > 0) {
    W.u8(R.WantTiming ? 1 : 0);
    W.u32(R.DeadlineMs);
  } else if (R.WantTiming) {
    W.u8(1);
  }
  return W.take();
}

bool net::decodeRequest(const std::string &Payload, Request &R,
                        std::string &Err) {
  ByteReader B(Payload);
  uint8_t Batched, Measure, WantSo;
  uint32_t Threads;
  if (!B.str(R.LaSource) || !B.str(R.OptionsText) || !B.u8(Batched) ||
      !B.str(R.StrategyName) || !B.u32(Threads) || !B.u8(Measure) ||
      !B.u8(WantSo)) {
    Err = "malformed request payload";
    return false;
  }
  // Optional trailing fields: nothing (pre-timing client or no extras), a
  // lone want-timing byte (must be 1 -- that form is only encoded when
  // set), a want-timing byte (0 or 1) followed by a nonzero u32 deadline,
  // or the full tail -- want-timing byte, u32 deadline (0 allowed only
  // here), u64 trace id (nonzero), u64 span id. Anything else is garbage,
  // not a field.
  uint8_t WantTiming = 0;
  uint32_t DeadlineMs = 0;
  uint64_t TraceId = 0, SpanId = 0;
  if (!B.atEnd()) {
    if (!B.u8(WantTiming) || WantTiming > 1) {
      Err = "malformed request payload";
      return false;
    }
    if (B.atEnd()) {
      if (WantTiming != 1) {
        Err = "malformed request payload";
        return false;
      }
    } else if (!B.u32(DeadlineMs)) {
      Err = "malformed request payload";
      return false;
    } else if (B.atEnd()) {
      if (DeadlineMs == 0) {
        Err = "malformed request payload";
        return false;
      }
    } else if (!B.u64(TraceId) || TraceId == 0 || !B.u64(SpanId) ||
               !B.atEnd()) {
      Err = "malformed request payload";
      return false;
    }
  }
  // 1024 is far above any real dispatch width; beyond it the field is
  // garbage, not a knob.
  if (Batched > 1 || WantSo > 1 || (Measure > 1 && Measure != 0xff) ||
      Threads > 1024) {
    Err = "malformed request payload";
    return false;
  }
  R.Batched = Batched == 1;
  R.Threads = static_cast<int>(Threads);
  R.MeasureOverride = Measure == 0xff ? -1 : Measure;
  R.WantSo = WantSo == 1;
  R.WantTiming = WantTiming == 1;
  R.DeadlineMs = DeadlineMs;
  R.TraceId = TraceId;
  R.SpanId = SpanId;
  return true;
}

bool net::requestToServiceArgs(const Request &R, GenOptions &Options,
                               service::RequestOptions &Req,
                               std::string &Err) {
  if (!deserializeGenOptions(R.OptionsText, Options, Err))
    return false;
  Req = {};
  Req.Batched = R.Batched;
  if (!R.StrategyName.empty()) {
    auto S = batchStrategyByName(R.StrategyName);
    if (!S) {
      Err = "unknown batch strategy '" + R.StrategyName + "'";
      return false;
    }
    Req.Strategy = *S;
  }
  if (R.Threads > 0)
    Req.Threads = R.Threads;
  if (R.MeasureOverride >= 0)
    Req.Measure = R.MeasureOverride != 0;
  // The wire carries a relative budget (clocks differ across hosts); it
  // becomes absolute on arrival, so time queued inside the daemon counts
  // against it.
  if (R.DeadlineMs > 0)
    Req.DeadlineUs = obs::nowUs() + static_cast<long>(R.DeadlineMs) * 1000;
  return true;
}

std::string net::encodeArtifact(const ArtifactMsg &A) {
  ByteWriter W;
  W.str(A.Key);
  W.str(A.FuncName);
  W.str(A.IsaName);
  W.u32(static_cast<uint32_t>(A.NumParams));
  W.u8(A.Batched ? 1 : 0);
  W.str(A.StrategyName);
  W.u32(static_cast<uint32_t>(A.BatchThreads < 1 ? 1 : A.BatchThreads));
  W.u32(static_cast<uint32_t>(A.Choice.size()));
  for (int C : A.Choice)
    W.u32(static_cast<uint32_t>(C));
  W.u64(static_cast<uint64_t>(A.StaticCost));
  W.u8(A.Measured ? 1 : 0);
  W.f64(A.MeasuredCycles);
  W.str(A.CSource);
  W.str(A.SoBytes);
  // Trailing optional fields, written only when the daemon has something
  // to ship: a response without them is byte-identical to the pre-timing
  // format, so old clients never see bytes they cannot decode. The span
  // list can only follow a timing document (it is gated on the request
  // carrying a trace id, which implies a client new enough for both).
  if (!A.TimingText.empty()) {
    W.str(A.TimingText);
    if (!A.ServerSpans.empty()) {
      W.u32(static_cast<uint32_t>(A.ServerSpans.size()));
      for (const obs::Span &S : A.ServerSpans) {
        W.str(S.Name);
        W.str(S.Cat);
        W.u64(static_cast<uint64_t>(S.StartUs));
        W.u64(static_cast<uint64_t>(S.DurUs));
        W.u32(S.Tid);
      }
    }
  }
  return W.take();
}

bool net::decodeArtifact(const std::string &Payload, ArtifactMsg &A,
                         std::string &Err) {
  ByteReader B(Payload);
  uint32_t NumParams, ChoiceLen, BatchThreads;
  uint64_t Cost;
  uint8_t Batched, Measured;
  if (!B.str(A.Key) || !B.str(A.FuncName) || !B.str(A.IsaName) ||
      !B.u32(NumParams) || !B.u8(Batched) || !B.str(A.StrategyName) ||
      !B.u32(BatchThreads) || !B.u32(ChoiceLen)) {
    Err = "malformed artifact payload";
    return false;
  }
  if (BatchThreads < 1 || BatchThreads > 1024) {
    Err = "malformed artifact payload";
    return false;
  }
  A.BatchThreads = static_cast<int>(BatchThreads);
  // Each choice entry costs 4 payload bytes, so a hostile length prefix
  // cannot reserve more than the frame itself carried.
  A.Choice.clear();
  for (uint32_t I = 0; I < ChoiceLen; ++I) {
    uint32_t C;
    if (!B.u32(C)) {
      Err = "malformed artifact payload";
      return false;
    }
    A.Choice.push_back(static_cast<int>(C));
  }
  if (!B.u64(Cost) || !B.u8(Measured) || !B.f64(A.MeasuredCycles) ||
      !B.str(A.CSource) || !B.str(A.SoBytes)) {
    Err = "malformed artifact payload";
    return false;
  }
  // Optional trailing server-timing document, optionally followed by the
  // daemon's span list: absent on old-format responses (atEnd right
  // here); present, the spans (when any) must run exactly to the end.
  A.TimingText.clear();
  A.ServerSpans.clear();
  if (!B.atEnd()) {
    if (!B.str(A.TimingText)) {
      Err = "malformed artifact payload";
      return false;
    }
    if (!B.atEnd()) {
      uint32_t NumSpans;
      // Each span costs >= 28 payload bytes, so 4096 comfortably exceeds
      // anything a real daemon ships (SpanCollector caps at 128) while a
      // hostile count still cannot reserve past the frame.
      if (!B.u32(NumSpans) || NumSpans == 0 || NumSpans > 4096) {
        Err = "malformed artifact payload";
        return false;
      }
      for (uint32_t I = 0; I < NumSpans; ++I) {
        obs::Span S;
        uint64_t Start, Dur;
        if (!B.str(S.Name) || !B.str(S.Cat) || !B.u64(Start) ||
            !B.u64(Dur) || !B.u32(S.Tid)) {
          Err = "malformed artifact payload";
          return false;
        }
        S.StartUs = static_cast<int64_t>(Start);
        S.DurUs = static_cast<int64_t>(Dur);
        A.ServerSpans.push_back(std::move(S));
      }
      if (!B.atEnd()) {
        Err = "malformed artifact payload";
        return false;
      }
    }
  }
  if (Batched > 1 || Measured > 1) {
    Err = "malformed artifact payload";
    return false;
  }
  A.NumParams = static_cast<int>(NumParams);
  A.Batched = Batched == 1;
  A.StaticCost = static_cast<long>(Cost);
  A.Measured = Measured == 1;
  return true;
}

std::string net::encodeErrorPayload(service::Errc Code,
                                    const std::string &Msg) {
  return std::string(service::errcName(Code)) + ": " + Msg;
}

void net::decodeErrorPayload(const std::string &Payload,
                             std::optional<service::Errc> &Code,
                             std::string &Msg) {
  Code = std::nullopt;
  Msg = Payload;
  size_t Colon = Payload.find(": ");
  if (Colon == std::string::npos)
    return;
  // Only a known token counts -- "parse error: ..." (a message that merely
  // looks prefixed) must not decode as a code. "ok" is likewise rejected:
  // an ERR frame claiming success is nonsense, and letting Errc::None
  // through would read as a successful Status upstream.
  auto E = service::errcByName(Payload.substr(0, Colon));
  if (E && *E != service::Errc::None) {
    Code = *E;
    Msg = Payload.substr(Colon + 2);
  }
}

ArtifactMsg net::artifactToMsg(const service::KernelArtifact &A,
                               std::string SoBytes) {
  ArtifactMsg M;
  M.Key = A.Key;
  M.FuncName = A.FuncName;
  M.IsaName = A.IsaName;
  M.NumParams = A.NumParams;
  M.Batched = A.Batched;
  if (A.Batched) {
    M.StrategyName = batchStrategyName(A.Strategy);
    M.BatchThreads = A.BatchThreads >= 1 ? A.BatchThreads : 1;
  }
  M.Choice = A.Choice;
  M.StaticCost = A.StaticCost;
  M.Measured = A.Measured;
  M.MeasuredCycles = A.MeasuredCycles;
  M.CSource = A.CSource;
  M.SoBytes = std::move(SoBytes);
  return M;
}
