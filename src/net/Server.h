//===- net/Server.h - the sld multi-client serving loop -------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front end of KernelService: listens on a Unix-domain socket
/// (and optionally a loopback TCP port), speaks the Wire.h/Protocol.h
/// protocol, and funnels every request into one shared KernelService -- so
/// N clients missing on the same key still trigger exactly one
/// generate+compile (the service's single-flight), and WARM verbs land in
/// the service's background prefetch pool.
///
/// Threading model: one accept thread per listener and one thread per live
/// connection (kernel generation is seconds-scale and compute-bound, so
/// connection counts stay far below where thread-per-connection hurts;
/// finished connection threads are reaped on the next accept). stop() --
/// also run by the destructor -- closes the listeners, shuts down every
/// live connection, and joins all threads; it is idempotent.
///
/// A malformed frame ends its connection; a well-framed but malformed
/// request gets an ERR response and the connection lives on. Either way
/// the daemon itself never dies on client input.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_NET_SERVER_H
#define SLINGEN_NET_SERVER_H

#include "net/Wire.h"
#include "service/KernelService.h"

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace slingen {
namespace net {

struct ServerConfig {
  /// Unix-domain socket path; empty disables the Unix listener. A stale
  /// socket file (no live daemon behind it) is replaced; a live one makes
  /// start() fail instead of hijacking the address.
  std::string UnixPath;
  /// TCP port on 127.0.0.1; -1 disables, 0 picks an ephemeral port (see
  /// Server::tcpPort()). Loopback only: the protocol is unauthenticated
  /// and ships executable code, so it must never face a network boundary
  /// wider than the host.
  int TcpPort = -1;
  /// Per-frame payload cap for incoming requests.
  size_t MaxPayload = DefaultMaxPayload;
  /// Hard cap on simultaneous connections; 0 = unlimited. An arrival past
  /// the cap gets an immediate Overloaded ERR frame and a close -- the
  /// client's retry policy backs off -- so the thread-per-connection model
  /// stays bounded under a connection flood.
  int MaxConns = 0;
  /// Per-connection read/idle timeout in ms; 0 = wait forever. A peer that
  /// completes no frame for this long is disconnected silently, so leaked
  /// or wedged clients cannot pin connection slots (and their threads)
  /// forever.
  int IdleTimeoutMs = 0;
  /// GET requests slower than this (ms) are logged to the structured
  /// event log (when one is open); 0 disables the slow-request events.
  int SlowMs = 0;
};

class Server {
public:
  /// \p Svc must outlive the server.
  Server(service::KernelService &Svc, ServerConfig Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the configured listeners and starts accepting. Fails (with
  /// \p Err) when no listener is configured or a bind/listen fails.
  bool start(std::string &Err);

  /// Stops accepting and drains: connections mid-request finish and send
  /// their reply before closing, idle connections are disconnected
  /// immediately, and every thread is joined before returning.
  void stop();

  /// The bound TCP port (resolves ephemeral requests), -1 when disabled.
  int tcpPort() const { return BoundTcpPort; }
  const std::string &unixPath() const { return Cfg.UnixPath; }

  /// Frames answered so far (tests and the daemon's shutdown log line).
  long framesServed() const { return Served.load(); }

  service::KernelService &service() { return Svc; }

private:
  struct Connection {
    int Fd = -1;
    /// Peer label for accounting and the flight recorder: "unix" on the
    /// Unix listener, "ip:port" on TCP.
    std::string Peer;
    std::thread Thread;
    std::atomic<bool> Done{false};
    /// True while handleFrame runs; stop() leaves such connections alone
    /// (graceful drain) and relies on the post-frame Stopping check.
    std::atomic<bool> InRequest{false};
  };

  void acceptLoop(int ListenFd);
  void serveConnection(Connection &Conn);
  /// Handles one decoded frame; returns false when the connection must
  /// close (protocol desync or peer gone).
  bool handleFrame(Connection &Conn, const Frame &F);
  void reapFinishedConnections();

  service::KernelService &Svc;
  ServerConfig Cfg;
  std::atomic<bool> Stopping{false};
  bool Started = false;
  int UnixFd = -1, TcpFd = -1;
  int BoundTcpPort = -1;
  std::vector<std::thread> AcceptThreads;
  std::mutex ConnMu;
  std::list<std::unique_ptr<Connection>> Connections;
  std::atomic<long> Served{0};
};

/// Splits \p Addr into a Unix path or a loopback TCP endpoint, shared by
/// Client::connect and the tools' flag parsing. Accepted forms:
/// "unix:<path>", any string containing '/' (a path), "tcp:<host>:<port>",
/// and "<host>:<port>". Returns false on anything else.
struct ParsedAddr {
  bool IsUnix = false;
  std::string UnixPath;
  std::string Host;
  int Port = 0;
};
bool parseAddr(const std::string &Addr, ParsedAddr &Out, std::string &Err);

} // namespace net
} // namespace slingen

#endif // SLINGEN_NET_SERVER_H
