//===- isa/ISA.h - vector ISA descriptors ----------------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptors of the vector ISAs the generator can target. The paper's
/// experiments use double-precision AVX (nu = 4); we additionally support
/// SSE2 (nu = 2), AVX-512 (nu = 8), and a scalar target (nu = 1), selected
/// per-generation, with runtime detection for executing generated code on
/// the host.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_ISA_ISA_H
#define SLINGEN_ISA_ISA_H

namespace slingen {

struct VectorISA {
  const char *Name;
  int Nu;        ///< doubles per vector register
  bool HasFma;   ///< fused multiply-add available
  bool NeedAvx2; ///< generated shuffles require AVX2 permutes
};

const VectorISA &scalarIsa();
const VectorISA &sse2Isa();
const VectorISA &avxIsa();
const VectorISA &avx512Isa();

/// Best ISA supported by the host CPU (for running generated code here).
const VectorISA &hostIsa();

/// ISA by name ("scalar", "sse2", "avx", "avx512"); asserts on unknown
/// names.
const VectorISA &isaByName(const char *Name);

/// As isaByName but returns nullptr on unknown names -- for validating
/// untrusted input (command-line flags, wire requests).
const VectorISA *isaByNameOrNull(const char *Name);

} // namespace slingen

#endif // SLINGEN_ISA_ISA_H
