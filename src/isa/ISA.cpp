//===- isa/ISA.cpp --------------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "isa/ISA.h"

#include <cassert>
#include <cstring>

using namespace slingen;

static const VectorISA Scalar{"scalar", 1, false, false};
static const VectorISA Sse2{"sse2", 2, false, false};
static const VectorISA Avx{"avx", 4, true, true};
static const VectorISA Avx512{"avx512", 8, true, true};

const VectorISA &slingen::scalarIsa() { return Scalar; }
const VectorISA &slingen::sse2Isa() { return Sse2; }
const VectorISA &slingen::avxIsa() { return Avx; }
const VectorISA &slingen::avx512Isa() { return Avx512; }

const VectorISA &slingen::hostIsa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f"))
    return Avx512;
  if (__builtin_cpu_supports("avx2"))
    return Avx;
  if (__builtin_cpu_supports("sse2"))
    return Sse2;
#endif
  return Scalar;
}

const VectorISA *slingen::isaByNameOrNull(const char *Name) {
  if (std::strcmp(Name, "scalar") == 0)
    return &Scalar;
  if (std::strcmp(Name, "sse2") == 0)
    return &Sse2;
  if (std::strcmp(Name, "avx") == 0)
    return &Avx;
  if (std::strcmp(Name, "avx512") == 0)
    return &Avx512;
  return nullptr;
}

const VectorISA &slingen::isaByName(const char *Name) {
  const VectorISA *Isa = isaByNameOrNull(Name);
  assert(Isa && "unknown ISA name");
  return Isa ? *Isa : Scalar;
}
