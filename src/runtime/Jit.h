//===- runtime/Jit.h - compile and load generated C kernels ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Takes the single-source C emitted by the generator, compiles it with the
/// system C compiler into a shared object, and loads the kernel for in-
/// process benchmarking -- the paper's "measure the generated function"
/// step. A uniform `double **` trampoline is appended to the translation
/// unit so kernels with any parameter count share one call interface; an
/// optional `(int count, double **)` trampoline serves the batched entry
/// point of the Sec. 5 extension.
///
/// Shared objects normally live in a temporary file that is removed when the
/// kernel unloads; the KernelService disk tier instead compiles to (and
/// reloads from) a persistent path it owns.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_RUNTIME_JIT_H
#define SLINGEN_RUNTIME_JIT_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace slingen {

struct VectorISA;

namespace runtime {

/// Compilation controls for JitKernel::compile.
struct CompileOptions {
  /// Appended to the compiler command line (e.g. isaCompileFlags()).
  std::string ExtraFlags;
  /// When non-empty, the shared object is produced at this path and kept on
  /// disk after the kernel unloads (the caller owns the file). When empty a
  /// unique temporary is used and removed on destruction.
  std::string KeepSoPath;
  /// Also emit and bind the `<func>_batch_entry(int, double *const *)`
  /// trampoline; requires the source to define `<func>_batch(int, ...)`.
  bool WithBatchEntry = false;
};

/// A loaded kernel. Movable; unloads the shared object and (when it owns the
/// file) removes it on destruction.
class JitKernel {
public:
  JitKernel(JitKernel &&) noexcept;
  JitKernel &operator=(JitKernel &&) noexcept;
  ~JitKernel();

  /// Compiles \p CSource (which must define `void FuncName(double*, ...)`
  /// with \p NumParams pointer parameters). Returns std::nullopt and fills
  /// \p Err with the full compiler diagnostics (command, exit status, and
  /// captured stderr) on failure. \p ExtraFlags are appended to the compiler
  /// command.
  static std::optional<JitKernel> compile(const std::string &CSource,
                                          const std::string &FuncName,
                                          int NumParams, std::string &Err,
                                          const std::string &ExtraFlags = "");

  /// As above with full control over flags, output path, and the batched
  /// trampoline.
  static std::optional<JitKernel> compile(const std::string &CSource,
                                          const std::string &FuncName,
                                          int NumParams,
                                          const CompileOptions &Opts,
                                          std::string &Err);

  /// Loads a previously compiled shared object (see CompileOptions::
  /// KeepSoPath). The file stays on disk when the kernel unloads. Set
  /// \p WithBatchEntry if the object was compiled with a batched trampoline.
  static std::optional<JitKernel> load(const std::string &SoPath,
                                       const std::string &FuncName,
                                       int NumParams, std::string &Err,
                                       bool WithBatchEntry = false);

  /// Loads a shared object delivered as raw bytes (the sld wire protocol
  /// ships compiled kernels this way, so clients dlopen without a local C
  /// compiler). The bytes are staged to a private temporary file, which is
  /// removed when the kernel unloads.
  static std::optional<JitKernel> loadFromBytes(const std::string &SoBytes,
                                                const std::string &FuncName,
                                                int NumParams,
                                                std::string &Err,
                                                bool WithBatchEntry = false);

  /// Path of the loaded shared object (the cache-owned or temporary file
  /// this kernel was dlopen'd from); the sld server reads these bytes to
  /// ship the object to remote clients.
  const std::string &soPath() const { return SoPath; }

  /// Invokes the kernel with the given parameter buffers (size NumParams).
  void call(double *const *Buffers) const { Entry(Buffers); }

  /// True when the batched entry point was compiled in.
  bool hasBatchEntry() const { return BatchEntry != nullptr; }

  /// Invokes `<func>_batch(Count, ...)` over per-parameter instance arrays
  /// (instance b of parameter i lives at Buffers[i] + b * Rows_i * Cols_i).
  /// Batch base pointers must be 64-byte aligned (support/AlignedBuffer.h
  /// allocates conformant storage): the emitted block kernels assume
  /// cache-line-aligned bases, and debug builds assert it here at the ABI
  /// boundary.
  void callBatch(int Count, double *const *Buffers) const {
    assertBatchAlignment(Buffers);
    BatchEntry(Count, Buffers);
  }

  /// True when the `_batch_span` sub-range entry was compiled in (absent
  /// on shared objects persisted before span emission existed); required
  /// for threaded dispatch (see runtime/BatchPool.h).
  bool hasBatchSpan() const { return BatchSpanEntry != nullptr; }

  /// Invokes `<func>_batch_span(Start, Count, ...)`: instances
  /// [Start, Start+Count) of the batch, with Buffers still naming the full
  /// per-parameter instance arrays.
  void callBatchSpan(int Start, int Count, double *const *Buffers) const {
    assertBatchAlignment(Buffers);
    BatchSpanEntry(Start, Count, Buffers);
  }

  int numParams() const { return NumParams; }

  /// The checked form of the 64-byte base-pointer contract: index of the
  /// first batch base pointer that is not 64-byte aligned, or -1 when all
  /// conform. The service path runs this on caller-supplied buffers and
  /// refuses misaligned ones as InvalidRequest instead of letting the
  /// aligned-move kernels fault (the debug assert below only guards
  /// in-process callers of callBatch/callBatchSpan).
  int misalignedBatchParam(double *const *Buffers) const {
    for (int I = 0; I < NumParams; ++I)
      if (reinterpret_cast<uintptr_t>(Buffers[I]) % 64 != 0)
        return I;
    return -1;
  }

private:
  /// Debug-only 64-byte alignment check on every batch base pointer
  /// (NDEBUG builds compile this away entirely).
  void assertBatchAlignment(double *const *Buffers) const {
#ifndef NDEBUG
    for (int I = 0; I < NumParams; ++I)
      assert(reinterpret_cast<uintptr_t>(Buffers[I]) % 64 == 0 &&
             "batch base pointer not 64-byte aligned (use AlignedBuffer)");
#else
    (void)Buffers;
#endif
  }

  JitKernel() = default;

  using EntryFn = void (*)(double *const *);
  using BatchEntryFn = void (*)(int, double *const *);
  using BatchSpanEntryFn = void (*)(int, int, double *const *);
  void *Handle = nullptr;
  EntryFn Entry = nullptr;
  BatchEntryFn BatchEntry = nullptr;
  BatchSpanEntryFn BatchSpanEntry = nullptr;
  int NumParams = 0;
  bool OwnsSo = true;
  std::string SoPath;
};

/// Compiler flags enabling the instruction set the emitted C for \p Isa
/// uses. Targeting is independent of the host: an avx512 kernel generated on
/// a non-AVX-512 machine still compiles (it just cannot run here).
std::string isaCompileFlags(const VectorISA &Isa);

/// True if a working system C compiler is available (used to skip the JIT
/// integration tests in constrained environments).
bool haveSystemCompiler();

} // namespace runtime
} // namespace slingen

#endif // SLINGEN_RUNTIME_JIT_H
