//===- runtime/Jit.h - compile and load generated C kernels ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Takes the single-source C emitted by the generator, compiles it with the
/// system C compiler into a shared object, and loads the kernel for in-
/// process benchmarking -- the paper's "measure the generated function"
/// step. A uniform `double **` trampoline is appended to the translation
/// unit so kernels with any parameter count share one call interface.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_RUNTIME_JIT_H
#define SLINGEN_RUNTIME_JIT_H

#include <memory>
#include <optional>
#include <string>

namespace slingen {
namespace runtime {

/// A loaded kernel. Movable; unloads the shared object and removes the
/// temporary files on destruction.
class JitKernel {
public:
  JitKernel(JitKernel &&) noexcept;
  JitKernel &operator=(JitKernel &&) noexcept;
  ~JitKernel();

  /// Compiles \p CSource (which must define `void FuncName(double*, ...)`
  /// with \p NumParams pointer parameters). Returns std::nullopt and fills
  /// \p Err on failure. \p ExtraFlags are appended to the compiler command.
  static std::optional<JitKernel> compile(const std::string &CSource,
                                          const std::string &FuncName,
                                          int NumParams, std::string &Err,
                                          const std::string &ExtraFlags = "");

  /// Invokes the kernel with the given parameter buffers (size NumParams).
  void call(double *const *Buffers) const { Entry(Buffers); }

  int numParams() const { return NumParams; }

private:
  JitKernel() = default;

  using EntryFn = void (*)(double *const *);
  void *Handle = nullptr;
  EntryFn Entry = nullptr;
  int NumParams = 0;
  std::string SoPath;
};

/// True if a working system C compiler is available (used to skip the JIT
/// integration tests in constrained environments).
bool haveSystemCompiler();

} // namespace runtime
} // namespace slingen

#endif // SLINGEN_RUNTIME_JIT_H
