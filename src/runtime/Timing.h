//===- runtime/Timing.h - cycle-accurate measurement harness --------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement methodology of the paper's Sec. 4.1: kernels run with a
/// warm cache, every measurement is repeated (median reported, quartiles as
/// whiskers), and performance is expressed in flops per cycle using the
/// time-stamp counter. The TSC on modern machines ticks at a constant
/// reference rate, which is exactly the denominator the paper uses.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_RUNTIME_TIMING_H
#define SLINGEN_RUNTIME_TIMING_H

#include <cstdint>
#include <functional>

namespace slingen {
namespace runtime {

/// Serialized read of the time-stamp counter.
uint64_t readCycles();

struct Measurement {
  double Median = 0.0; ///< cycles
  double Q1 = 0.0, Q3 = 0.0;

  double flopsPerCycle(double Flops) const {
    return Median > 0.0 ? Flops / Median : 0.0;
  }
};

/// Measures \p Fn: \p Warmup unmeasured runs (warm cache), then \p Repeats
/// timed runs; short kernels are batched until each timing window exceeds
/// \p MinCycles so TSC overhead is negligible.
Measurement measureCycles(const std::function<void()> &Fn, int Repeats = 30,
                          int Warmup = 3, uint64_t MinCycles = 10000);

/// Measurement policy knob bundle; the autotuner uses fewer repeats than the
/// paper-figure benchmarks since it only needs a stable ranking.
struct MeasureOptions {
  int Repeats = 30;
  int Warmup = 3;
  uint64_t MinCycles = 10000;
};

inline Measurement measureCycles(const std::function<void()> &Fn,
                                 const MeasureOptions &O) {
  return measureCycles(Fn, O.Repeats, O.Warmup, O.MinCycles);
}

/// True when readCycles() is backed by a real counter on this build target
/// (measured autotuning degrades to static ranking when it is not).
inline bool haveCycleCounter() {
#if defined(__x86_64__) || defined(__i386__)
  return true;
#else
  return false;
#endif
}

} // namespace runtime
} // namespace slingen

#endif // SLINGEN_RUNTIME_TIMING_H
