//===- runtime/BatchPool.h - batch-level multithreading --------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread pool behind threaded batched dispatch: a batch of independent
/// problem instances is split into AoSoA blocks (one vector-width group of
/// instances each) and the block indices are distributed across cores.
///
/// Scheduling is *sticky*: participant s of a run owns the contiguous block
/// range [s*Total/P, (s+1)*Total/P) -- slot 0 is the calling thread, slot
/// s > 0 is pool worker s-1 -- and worker identities are stable across
/// runs, so repeated dispatch of the same batch lands each block on the
/// thread (and core, see pinning below) whose caches already hold it.
/// Work stealing kicks in only on imbalance: a thread that drains its own
/// range scans the other slots and claims their remaining chunks through
/// the same per-slot atomic cursor, so an uneven machine still never idles
/// a core. The `count % Nu` instance remainder always runs on the calling
/// thread (see callBatchParallel).
///
/// Workers pin themselves to core (worker + 1) % ncpus on first dispatch
/// (Linux; sticky, one syscall per worker), keeping the slot->thread->core
/// map stable so NUMA-local pages stay local. The caller is never pinned.
/// `SLINGEN_POOL_PIN=0` or BatchPool::setPinning(false) disables pinning;
/// BatchPool::setStealing(false) disables stealing (tests and benchmarks
/// use it to observe the pure sticky assignment).
///
/// Workers are spawned lazily on the first parallel run and parked on a
/// condition variable between batches, so single-threaded configurations
/// pay nothing and per-batch dispatch costs one wakeup, not thread
/// creation.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_RUNTIME_BATCHPOOL_H
#define SLINGEN_RUNTIME_BATCHPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slingen {
namespace runtime {

class JitKernel;

class BatchPool {
public:
  /// Hard cap on pool workers: a threads=k request beyond this is clamped.
  /// Far above any sane core count for small-kernel batches; exists so a
  /// hostile `threads=` knob cannot spawn unbounded threads.
  static constexpr int MaxPoolWorkers = 63;

  /// The process-wide pool (sized to the hardware). Never destroyed --
  /// workers are detached daemons parked between batches, so shutdown
  /// ordering with static destructors is a non-issue.
  static BatchPool &shared();

  /// Runs \p Fn over a partition of [0, NumItems): every call receives a
  /// disjoint [Lo, Hi) chunk, and the union of all chunks is exactly
  /// [0, NumItems). Up to \p Threads threads participate (the caller is
  /// one of them); Threads <= 1, a single item, or a pool with no workers
  /// degrades to an inline call. Blocks until every item is processed.
  /// One batch runs at a time; concurrent callers serialize.
  void run(long NumItems, int Threads,
           const std::function<void(long Lo, long Hi)> &Fn);

  /// Hard cap on workers the pool will add to a run. Workers are spawned
  /// on demand up to min(Threads - 1, this), so a host is never
  /// oversubscribed unless a caller explicitly pins threads beyond its
  /// core count (allowed: the OS time-slices, and tests use it to exercise
  /// the pool on small machines).
  int workerCap() const { return MaxWorkers; }

  /// Toggles cross-slot work stealing (default on). With stealing off,
  /// every item runs on the thread its slot is assigned to -- the pure
  /// sticky schedule; a straggler then gates the run, so this is a test
  /// and measurement hook, not a production mode.
  static void setStealing(bool On);

  /// Toggles worker core pinning (default on unless SLINGEN_POOL_PIN=0 in
  /// the environment). Takes effect for workers not yet pinned; already
  /// pinned workers keep their affinity.
  static void setPinning(bool On);

private:
  BatchPool();

  void workerLoop(int Id);
  /// Drains the per-slot cursor \p MySlot, then (if stealing is enabled)
  /// scans the other participants' slots for leftover chunks.
  void drain(int MySlot);

  struct Job {
    /// One claim cursor per participant, cache-line padded: the owner and
    /// any thieves claim [Next, min(Next+Chunk, End)) ranges with a
    /// fetch_add, so disjointness is unconditional.
    struct alignas(64) Slot {
      std::atomic<long> Next{0};
      long End = 0;
    };
    Slot Slots[MaxPoolWorkers + 1];
    long Total = 0;
    long Chunk = 1;
    int Participants = 1;
    const std::function<void(long, long)> *Fn = nullptr;
    std::atomic<long> Remaining{0}; ///< items not yet processed
    std::atomic<int> Active{0};     ///< workers currently inside Fn
  };

  const int MaxWorkers;
  std::mutex RunMu; ///< serializes run() callers

  std::mutex Mu; ///< guards Current/JobSeq/Spawned
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  Job *Current = nullptr;
  uint64_t JobSeq = 0;
  int Spawned = 0;
};

/// Default thread count for threaded batched dispatch on this host
/// (hardware concurrency, at least 1).
int defaultBatchThreads();

/// Dispatches `<func>_batch` over \p Count instances with up to \p Threads
/// threads: full blocks of \p BlockInstances (the kernel's vector width)
/// are distributed across the pool through the kernel's `_batch_span`
/// entry, and the instance remainder runs on the calling thread. Degrades
/// to a plain callBatch when Threads <= 1, the kernel has no span entry
/// (pre-span cached objects), or the batch is too small to amortize a
/// wakeup.
void callBatchParallel(const JitKernel &K, int Count, double *const *Buffers,
                       int BlockInstances, int Threads);

} // namespace runtime
} // namespace slingen

#endif // SLINGEN_RUNTIME_BATCHPOOL_H
