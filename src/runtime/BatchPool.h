//===- runtime/BatchPool.h - batch-level multithreading --------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread pool behind threaded batched dispatch: a batch of independent
/// problem instances is split into AoSoA blocks (one vector-width group of
/// instances each) and the block indices are distributed across cores.
/// Scheduling is dynamic -- every participating thread, the caller
/// included, steals the next chunk of block indices from a shared cursor,
/// so an uneven machine never idles a core on a static partition. The
/// `count % Nu` instance remainder always runs on the calling thread (see
/// callBatchParallel).
///
/// Workers are spawned lazily on the first parallel run and parked on a
/// condition variable between batches, so single-threaded configurations
/// pay nothing and per-batch dispatch costs one wakeup, not thread
/// creation.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_RUNTIME_BATCHPOOL_H
#define SLINGEN_RUNTIME_BATCHPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slingen {
namespace runtime {

class JitKernel;

class BatchPool {
public:
  /// The process-wide pool (sized to the hardware). Never destroyed --
  /// workers are detached daemons parked between batches, so shutdown
  /// ordering with static destructors is a non-issue.
  static BatchPool &shared();

  /// Runs \p Fn over a partition of [0, NumItems): every call receives a
  /// disjoint [Lo, Hi) chunk, and the union of all chunks is exactly
  /// [0, NumItems). Up to \p Threads threads participate (the caller is
  /// one of them); Threads <= 1, a single chunk, or a pool with no workers
  /// degrades to an inline call. Blocks until every item is processed.
  /// One batch runs at a time; concurrent callers serialize.
  void run(long NumItems, int Threads,
           const std::function<void(long Lo, long Hi)> &Fn);

  /// Hard cap on workers the pool will add to a run. Workers are spawned
  /// on demand up to min(Threads - 1, this), so a host is never
  /// oversubscribed unless a caller explicitly pins threads beyond its
  /// core count (allowed: the OS time-slices, and tests use it to exercise
  /// the pool on small machines).
  int workerCap() const { return MaxWorkers; }

private:
  BatchPool();

  void workerLoop();
  /// Steals and runs chunks until the cursor is exhausted. \p Worker marks
  /// pool-thread participation (vs. the calling thread) for the
  /// steal-accounting metrics.
  void drain(bool Worker);

  struct Job {
    std::atomic<long> Cursor{0};
    long Total = 0;
    long Chunk = 1;
    const std::function<void(long, long)> *Fn = nullptr;
    std::atomic<int> Seats{0};  ///< worker participation budget
    std::atomic<int> Active{0}; ///< workers currently inside Fn
  };

  const int MaxWorkers;
  std::mutex RunMu; ///< serializes run() callers

  std::mutex Mu; ///< guards Current/JobSeq/Spawned
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  Job *Current = nullptr;
  uint64_t JobSeq = 0;
  int Spawned = 0;
};

/// Default thread count for threaded batched dispatch on this host
/// (hardware concurrency, at least 1).
int defaultBatchThreads();

/// Dispatches `<func>_batch` over \p Count instances with up to \p Threads
/// threads: full blocks of \p BlockInstances (the kernel's vector width)
/// are distributed across the pool through the kernel's `_batch_span`
/// entry, and the instance remainder runs on the calling thread. Degrades
/// to a plain callBatch when Threads <= 1, the kernel has no span entry
/// (pre-span cached objects), or the batch is too small to amortize a
/// wakeup.
void callBatchParallel(const JitKernel &K, int Count, double *const *Buffers,
                       int BlockInstances, int Threads);

} // namespace runtime
} // namespace slingen

#endif // SLINGEN_RUNTIME_BATCHPOOL_H
