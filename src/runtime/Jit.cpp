//===- runtime/Jit.cpp ----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Jit.h"

#include "isa/ISA.h"
#include "obs/Trace.h"
#include "support/File.h"
#include "support/Format.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace slingen;
using namespace slingen::runtime;

namespace {

std::string uniqueBase() {
  static std::atomic<int> Counter{0};
  const char *Dir = getenv("TMPDIR");
  return formatf("%s/slingen_%d_%d", Dir ? Dir : "/tmp", getpid(),
                 Counter.fetch_add(1));
}

/// A private temporary directory for one compile's .c and log. The source
/// always gets the same basename inside it (slingen_tu.c): the compiler
/// embeds the input basename in the object's symbol table (STT_FILE), so a
/// per-process name would make byte-identical translation units compile to
/// byte-different shared objects. With a fixed basename, equal TU + equal
/// flags => equal .so bytes across processes and machines sharing a
/// toolchain -- the identity the client facade's local/daemon smoke diffs.
std::string makeCompileDir() {
  const char *Dir = getenv("TMPDIR");
  std::string Tmpl = std::string(Dir ? Dir : "/tmp") + "/slingen_ccXXXXXX";
  if (!mkdtemp(Tmpl.data()))
    return {};
  return Tmpl;
}

const char *compilerPath() {
  const char *Env = getenv("SLINGEN_CC");
  return Env ? Env : "cc";
}

/// Appends the uniform trampolines to \p Out: `<func>_entry(double **)` for
/// single-instance calls and, when requested, `<func>_batch_entry(int,
/// double **)` forwarding to the batched kernel plus -- when the source
/// defines the `_batch_span` sub-range entry -- `<func>_batch_span_entry`
/// for threaded dispatch. The span trampoline is gated on \p WithSpan so
/// cached sources persisted before span emission existed still compile and
/// dlopen (RTLD_NOW would otherwise fail on the undefined symbol).
void appendTrampolines(std::ostream &Out, const std::string &FuncName,
                       int NumParams, bool WithBatchEntry, bool WithSpan) {
  Out << "\nvoid " << FuncName << "_entry(double *const *bufs) {\n  "
      << FuncName << "(";
  for (int I = 0; I < NumParams; ++I)
    Out << (I ? ", " : "") << "bufs[" << I << "]";
  Out << ");\n}\n";
  if (!WithBatchEntry)
    return;
  Out << "void " << FuncName
      << "_batch_entry(int count, double *const *bufs) {\n  " << FuncName
      << "_batch(count";
  for (int I = 0; I < NumParams; ++I)
    Out << ", bufs[" << I << "]";
  Out << ");\n}\n";
  if (!WithSpan)
    return;
  Out << "void " << FuncName
      << "_batch_span_entry(int start, int count, double *const *bufs) {\n  "
      << FuncName << "_batch_span(start, count";
  for (int I = 0; I < NumParams; ++I)
    Out << ", bufs[" << I << "]";
  Out << ");\n}\n";
}

} // namespace

JitKernel::JitKernel(JitKernel &&O) noexcept
    : Handle(O.Handle), Entry(O.Entry), BatchEntry(O.BatchEntry),
      BatchSpanEntry(O.BatchSpanEntry), NumParams(O.NumParams),
      OwnsSo(O.OwnsSo), SoPath(std::move(O.SoPath)) {
  O.Handle = nullptr;
  O.Entry = nullptr;
  O.BatchEntry = nullptr;
  O.BatchSpanEntry = nullptr;
}

JitKernel &JitKernel::operator=(JitKernel &&O) noexcept {
  if (this != &O) {
    this->~JitKernel();
    new (this) JitKernel(std::move(O));
  }
  return *this;
}

JitKernel::~JitKernel() {
  if (Handle)
    dlclose(Handle);
  if (OwnsSo && !SoPath.empty())
    unlink(SoPath.c_str());
}

std::optional<JitKernel> JitKernel::compile(const std::string &CSource,
                                            const std::string &FuncName,
                                            int NumParams, std::string &Err,
                                            const std::string &ExtraFlags) {
  CompileOptions Opts;
  Opts.ExtraFlags = ExtraFlags;
  return compile(CSource, FuncName, NumParams, Opts, Err);
}

std::optional<JitKernel> JitKernel::compile(const std::string &CSource,
                                            const std::string &FuncName,
                                            int NumParams,
                                            const CompileOptions &Opts,
                                            std::string &Err) {
  // Every JIT compile in the process funnels through this overload:
  // service misses, tuner candidates, client-side loads all land in one
  // compile-latency histogram.
  static obs::Histogram &CompileUs =
      obs::Registry::global().histogram("runtime.jit-compile.us");
  static obs::Counter &Compiles =
      obs::Registry::global().counter("runtime.jit-compiles");
  Compiles.add();
  obs::ScopedSpan Span("jit-compile", "runtime", &CompileUs);
  std::string CDir = makeCompileDir();
  if (CDir.empty()) {
    Err = "cannot create compile directory in TMPDIR";
    return std::nullopt;
  }
  std::string CPath = CDir + "/slingen_tu.c", LogPath = CDir + "/cc.log";
  bool KeepSo = !Opts.KeepSoPath.empty();
  // Persistent objects are compiled to a temporary and renamed into place,
  // so concurrent processes sharing a cache directory never dlopen a
  // half-written file.
  std::string FinalSoPath = KeepSo ? Opts.KeepSoPath : uniqueBase() + ".so";
  std::string SoPath = KeepSo ? Opts.KeepSoPath + formatf(".tmp%d", getpid())
                              : FinalSoPath;
  auto RemoveCompileDir = [&] { rmdir(CDir.c_str()); };

  {
    std::ofstream Out(CPath);
    if (!Out) {
      Err = "cannot write " + CPath;
      RemoveCompileDir();
      return std::nullopt;
    }
    Out << CSource;
    bool WithSpan =
        Opts.WithBatchEntry &&
        CSource.find(FuncName + "_batch_span(") != std::string::npos;
    appendTrampolines(Out, FuncName, NumParams, Opts.WithBatchEntry,
                      WithSpan);
  }

  // Process-local objects target the host (-march=native first, so per-ISA
  // flags appended afterwards can widen the target, e.g. avx512 kernels on
  // an AVX-2 build machine). Persistent objects may be served to other
  // machines from a shared cache directory, so they get only the keyed
  // ISA's instruction sets (-mtune=native schedules for the builder
  // without enabling anything the cache key does not promise).
  std::string Cmd = formatf(
      "%s -O2 %s -fno-math-errno -shared -fPIC -o %s %s -lm %s > %s 2>&1",
      compilerPath(), KeepSo ? "-mtune=native" : "-march=native",
      SoPath.c_str(), CPath.c_str(), Opts.ExtraFlags.c_str(),
      LogPath.c_str());
  int Rc = system(Cmd.c_str());
  if (Rc != 0) {
    int Status = WIFEXITED(Rc) ? WEXITSTATUS(Rc) : Rc;
    Err = formatf("C compiler failed (exit %d): %s", Status, Cmd.c_str());
    std::string Log = readFile(LogPath);
    if (!Log.empty())
      Err += "\n--- compiler output ---\n" + Log;
    // The full diagnostics are already in Err; keep the offending .c only
    // on request so a long-lived service cannot fill TMPDIR with failures.
    if (getenv("SLINGEN_KEEP_TU")) {
      Err += "\n(translation unit kept at " + CPath + ")";
    } else {
      unlink(CPath.c_str());
    }
    unlink(LogPath.c_str());
    unlink(SoPath.c_str());
    RemoveCompileDir(); // no-op while the kept TU still lives inside
    return std::nullopt;
  }
  unlink(CPath.c_str());
  unlink(LogPath.c_str());
  RemoveCompileDir();

  if (KeepSo && rename(SoPath.c_str(), FinalSoPath.c_str()) != 0) {
    Err = "cannot publish " + FinalSoPath;
    unlink(SoPath.c_str());
    return std::nullopt;
  }

  auto K = load(FinalSoPath, FuncName, NumParams, Err, Opts.WithBatchEntry);
  if (!K) {
    unlink(FinalSoPath.c_str());
    return std::nullopt;
  }
  K->OwnsSo = !KeepSo;
  return K;
}

std::optional<JitKernel> JitKernel::loadFromBytes(const std::string &SoBytes,
                                                  const std::string &FuncName,
                                                  int NumParams,
                                                  std::string &Err,
                                                  bool WithBatchEntry) {
  std::string SoPath = uniqueBase() + ".so";
  {
    std::ofstream Out(SoPath, std::ios::binary);
    if (!Out) {
      Err = "cannot write " + SoPath;
      return std::nullopt;
    }
    Out.write(SoBytes.data(),
              static_cast<std::streamsize>(SoBytes.size()));
    Out.close();
    if (!Out) {
      Err = "cannot write " + SoPath;
      unlink(SoPath.c_str());
      return std::nullopt;
    }
  }
  auto K = load(SoPath, FuncName, NumParams, Err, WithBatchEntry);
  if (!K) {
    unlink(SoPath.c_str());
    return std::nullopt;
  }
  K->OwnsSo = true; // the staged temporary dies with the kernel
  return K;
}

std::optional<JitKernel> JitKernel::load(const std::string &SoPath,
                                         const std::string &FuncName,
                                         int NumParams, std::string &Err,
                                         bool WithBatchEntry) {
  JitKernel K;
  K.Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!K.Handle) {
    Err = formatf("dlopen failed: %s", dlerror());
    return std::nullopt;
  }
  K.OwnsSo = false; // until a caller hands over ownership
  K.SoPath = SoPath;
  K.Entry = reinterpret_cast<EntryFn>(
      dlsym(K.Handle, (FuncName + "_entry").c_str()));
  if (!K.Entry) {
    Err = "entry symbol " + FuncName + "_entry not found in " + SoPath;
    return std::nullopt;
  }
  if (WithBatchEntry) {
    K.BatchEntry = reinterpret_cast<BatchEntryFn>(
        dlsym(K.Handle, (FuncName + "_batch_entry").c_str()));
    if (!K.BatchEntry) {
      Err = "batch entry symbol " + FuncName + "_batch_entry not found in " +
            SoPath;
      return std::nullopt;
    }
    // Optional: objects compiled before the span entry existed simply
    // cannot be dispatched threaded (callers check hasBatchSpan()).
    K.BatchSpanEntry = reinterpret_cast<BatchSpanEntryFn>(
        dlsym(K.Handle, (FuncName + "_batch_span_entry").c_str()));
  }
  K.NumParams = NumParams;
  return K;
}

std::string runtime::isaCompileFlags(const VectorISA &Isa) {
  if (std::strcmp(Isa.Name, "sse2") == 0)
    return "-msse2";
  if (std::strcmp(Isa.Name, "avx") == 0)
    return Isa.NeedAvx2 ? "-mavx -mavx2 -mfma" : "-mavx -mfma";
  // The emitter only generates AVX-512F intrinsics, and hostIsa() gates
  // execution on avx512f alone -- do not request DQ/VL here or kernels
  // could carry instructions the runnability checks never verified.
  if (std::strcmp(Isa.Name, "avx512") == 0)
    return "-mavx512f -mfma";
  return ""; // scalar: no vector extensions required
}

bool runtime::haveSystemCompiler() {
  static int Cached = -1;
  if (Cached < 0) {
    std::string Cmd =
        formatf("%s --version > /dev/null 2>&1", compilerPath());
    Cached = system(Cmd.c_str()) == 0 ? 1 : 0;
  }
  return Cached == 1;
}
