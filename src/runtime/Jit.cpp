//===- runtime/Jit.cpp ----------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Jit.h"

#include "support/Format.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <dlfcn.h>
#include <unistd.h>

using namespace slingen;
using namespace slingen::runtime;

namespace {

std::string uniqueBase() {
  static std::atomic<int> Counter{0};
  const char *Dir = getenv("TMPDIR");
  return formatf("%s/slingen_%d_%d", Dir ? Dir : "/tmp", getpid(),
                 Counter.fetch_add(1));
}

const char *compilerPath() {
  const char *Env = getenv("SLINGEN_CC");
  return Env ? Env : "cc";
}

} // namespace

JitKernel::JitKernel(JitKernel &&O) noexcept
    : Handle(O.Handle), Entry(O.Entry), NumParams(O.NumParams),
      SoPath(std::move(O.SoPath)) {
  O.Handle = nullptr;
  O.Entry = nullptr;
}

JitKernel &JitKernel::operator=(JitKernel &&O) noexcept {
  if (this != &O) {
    this->~JitKernel();
    new (this) JitKernel(std::move(O));
  }
  return *this;
}

JitKernel::~JitKernel() {
  if (Handle)
    dlclose(Handle);
  if (!SoPath.empty())
    unlink(SoPath.c_str());
}

std::optional<JitKernel> JitKernel::compile(const std::string &CSource,
                                            const std::string &FuncName,
                                            int NumParams, std::string &Err,
                                            const std::string &ExtraFlags) {
  std::string Base = uniqueBase();
  std::string CPath = Base + ".c", SoPath = Base + ".so",
              LogPath = Base + ".log";

  {
    std::ofstream Out(CPath);
    if (!Out) {
      Err = "cannot write " + CPath;
      return std::nullopt;
    }
    Out << CSource;
    // Uniform entry point: the benchmark harness passes an array of
    // buffer pointers regardless of the kernel arity.
    Out << "\nvoid " << FuncName << "_entry(double *const *bufs) {\n  "
        << FuncName << "(";
    for (int I = 0; I < NumParams; ++I)
      Out << (I ? ", " : "") << "bufs[" << I << "]";
    Out << ");\n}\n";
  }

  std::string Cmd =
      formatf("%s -O2 -march=native -fno-math-errno -shared -fPIC -o %s %s "
              "-lm %s > %s 2>&1",
              compilerPath(), SoPath.c_str(), CPath.c_str(),
              ExtraFlags.c_str(), LogPath.c_str());
  int Rc = system(Cmd.c_str());
  if (Rc != 0) {
    Err = "compiler failed (" + Cmd + ")";
    std::ifstream Log(LogPath);
    std::string Line;
    while (std::getline(Log, Line))
      Err += "\n" + Line;
    unlink(CPath.c_str());
    unlink(LogPath.c_str());
    return std::nullopt;
  }
  unlink(CPath.c_str());
  unlink(LogPath.c_str());

  JitKernel K;
  K.Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!K.Handle) {
    Err = formatf("dlopen failed: %s", dlerror());
    unlink(SoPath.c_str());
    return std::nullopt;
  }
  K.SoPath = SoPath;
  K.Entry = reinterpret_cast<EntryFn>(
      dlsym(K.Handle, (FuncName + "_entry").c_str()));
  if (!K.Entry) {
    Err = "entry symbol not found";
    return std::nullopt;
  }
  K.NumParams = NumParams;
  return K;
}

bool runtime::haveSystemCompiler() {
  static int Cached = -1;
  if (Cached < 0) {
    std::string Cmd =
        formatf("%s --version > /dev/null 2>&1", compilerPath());
    Cached = system(Cmd.c_str()) == 0 ? 1 : 0;
  }
  return Cached == 1;
}
