//===- runtime/Timing.cpp -------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Timing.h"

#include <algorithm>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

using namespace slingen;
using namespace slingen::runtime;

uint64_t runtime::readCycles() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned Aux;
  // rdtscp serializes against preceding loads/stores, which is enough for
  // timing windows that are forced to span thousands of cycles.
  return __rdtscp(&Aux);
#else
  return 0;
#endif
}

Measurement runtime::measureCycles(const std::function<void()> &Fn,
                                   int Repeats, int Warmup,
                                   uint64_t MinCycles) {
  for (int I = 0; I < Warmup; ++I)
    Fn();

  // Choose a batch size so one timing window is long enough for the TSC
  // read overhead to vanish.
  int Batch = 1;
  for (;;) {
    uint64_t T0 = readCycles();
    for (int I = 0; I < Batch; ++I)
      Fn();
    uint64_t Dt = readCycles() - T0;
    if (Dt >= MinCycles || Batch >= (1 << 20))
      break;
    Batch *= 2;
  }

  std::vector<double> Samples;
  Samples.reserve(Repeats);
  for (int R = 0; R < Repeats; ++R) {
    uint64_t T0 = readCycles();
    for (int I = 0; I < Batch; ++I)
      Fn();
    uint64_t Dt = readCycles() - T0;
    Samples.push_back(static_cast<double>(Dt) / Batch);
  }
  std::sort(Samples.begin(), Samples.end());
  Measurement M;
  size_t N = Samples.size();
  M.Median = Samples[N / 2];
  M.Q1 = Samples[N / 4];
  M.Q3 = Samples[(3 * N) / 4];
  return M;
}
