//===- runtime/BatchPool.cpp ----------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchPool.h"

#include "obs/Trace.h"
#include "runtime/Jit.h"

#include <algorithm>

using namespace slingen;
using namespace slingen::runtime;

namespace {

/// Hard cap on pool workers: a threads=k request beyond this is clamped.
/// Far above any sane core count for small-kernel batches; exists so a
/// hostile `threads=` knob cannot spawn unbounded threads.
constexpr int MaxPoolWorkers = 63;

/// Pool metrics: how many parallel runs happened, how the chunks were
/// claimed (caller vs. stolen by pool workers), and how long dispatch
/// takes end to end. Chunk counters tick once per claimed chunk -- cheap
/// next to the kernel work a chunk carries.
struct PoolMetrics {
  obs::Counter &Runs = obs::Registry::global().counter("batchpool.runs");
  obs::Counter &Items = obs::Registry::global().counter("batchpool.items");
  obs::Counter &Chunks = obs::Registry::global().counter("batchpool.chunks");
  obs::Counter &Steals = obs::Registry::global().counter("batchpool.steals");
  obs::Histogram &RunUs =
      obs::Registry::global().histogram("batchpool.run.us");

  static PoolMetrics &get() {
    static PoolMetrics M;
    return M;
  }
};

} // namespace

int runtime::defaultBatchThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<int>(std::min<unsigned>(N, MaxPoolWorkers + 1));
}

BatchPool &BatchPool::shared() {
  // Leaked deliberately: workers are detached daemons parked between
  // batches, and run() never returns with a job outstanding, so process
  // exit finds them idle on members that are never destroyed.
  static BatchPool *P = new BatchPool();
  return *P;
}

BatchPool::BatchPool() : MaxWorkers(MaxPoolWorkers) {}

void BatchPool::drain(bool Worker) {
  PoolMetrics &M = PoolMetrics::get();
  Job &J = *Current; // stable for the drain duration: run() holds RunMu
  for (;;) {
    long Lo = J.Cursor.fetch_add(J.Chunk, std::memory_order_relaxed);
    if (Lo >= J.Total)
      return;
    M.Chunks.add();
    if (Worker)
      M.Steals.add();
    (*J.Fn)(Lo, std::min(Lo + J.Chunk, J.Total));
  }
}

void BatchPool::workerLoop() {
  std::unique_lock<std::mutex> L(Mu);
  uint64_t Seen = 0;
  for (;;) {
    WakeCv.wait(L, [&] { return Current != nullptr && JobSeq != Seen; });
    Seen = JobSeq;
    Job *J = Current;
    // One participation seat per requested thread; extra pool workers sit
    // this batch out. Seat and Active bookkeeping happen under Mu so the
    // caller cannot observe completion while a worker is still enrolling
    // (the job lives on the caller's stack).
    if (J->Seats.load(std::memory_order_relaxed) <= 0)
      continue;
    J->Seats.fetch_sub(1, std::memory_order_relaxed);
    J->Active.fetch_add(1, std::memory_order_relaxed);
    L.unlock();
    drain(/*Worker=*/true);
    L.lock();
    if (J->Active.fetch_sub(1, std::memory_order_relaxed) == 1)
      DoneCv.notify_all();
  }
}

void BatchPool::run(long NumItems, int Threads,
                    const std::function<void(long, long)> &Fn) {
  if (NumItems <= 0)
    return;
  Threads = std::min(Threads, MaxWorkers + 1);
  if (Threads <= 1 || NumItems < 2) {
    Fn(0, NumItems);
    return;
  }

  std::lock_guard<std::mutex> RunL(RunMu);
  PoolMetrics &M = PoolMetrics::get();
  M.Runs.add();
  M.Items.add(NumItems);
  obs::ScopedSpan Run("pool-run", "batchpool", &M.RunUs);
  Job J;
  J.Total = NumItems;
  // Chunks several times smaller than a static partition: late threads and
  // uneven blocks rebalance, while the per-chunk atomic stays amortized.
  J.Chunk = std::max<long>(1, NumItems / (static_cast<long>(Threads) * 8));
  J.Fn = &Fn;
  J.Seats.store(Threads - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(Mu);
    while (Spawned < Threads - 1) {
      std::thread(&BatchPool::workerLoop, this).detach();
      ++Spawned;
    }
    Current = &J;
    ++JobSeq;
  }
  WakeCv.notify_all();
  drain(/*Worker=*/false); // the caller participates, not just coordinates
  {
    std::unique_lock<std::mutex> L(Mu);
    DoneCv.wait(L, [&] { return J.Active.load() == 0; });
    Current = nullptr;
  }
}

void runtime::callBatchParallel(const JitKernel &K, int Count,
                                double *const *Buffers, int BlockInstances,
                                int Threads) {
  const int Block = std::max(BlockInstances, 1);
  const long Blocks = Count / Block;
  if (Threads <= 1 || !K.hasBatchSpan() || Blocks < 2) {
    K.callBatch(Count, Buffers);
    return;
  }
  BatchPool::shared().run(Blocks, Threads, [&](long Lo, long Hi) {
    K.callBatchSpan(static_cast<int>(Lo) * Block,
                    static_cast<int>(Hi - Lo) * Block, Buffers);
  });
  // The count % Nu instance remainder stays on the calling thread (it is
  // the scalar tail inside <func>_batch; no block to steal).
  const int Rem = Count - static_cast<int>(Blocks) * Block;
  if (Rem > 0)
    K.callBatchSpan(static_cast<int>(Blocks) * Block, Rem, Buffers);
}
