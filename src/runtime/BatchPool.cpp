//===- runtime/BatchPool.cpp ----------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchPool.h"

#include "obs/Trace.h"
#include "runtime/Jit.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

using namespace slingen;
using namespace slingen::runtime;

namespace {

constexpr int MaxPoolWorkers = BatchPool::MaxPoolWorkers;

/// Pool metrics: how many parallel runs happened, how the chunks were
/// claimed (from a thread's own sticky slot vs. stolen from another slot),
/// and how long dispatch takes end to end. Chunk counters tick once per
/// claimed chunk -- cheap next to the kernel work a chunk carries.
struct PoolMetrics {
  obs::Counter &Runs = obs::Registry::global().counter("batchpool.runs");
  obs::Counter &Items = obs::Registry::global().counter("batchpool.items");
  obs::Counter &Chunks = obs::Registry::global().counter("batchpool.chunks");
  obs::Counter &Steals = obs::Registry::global().counter("batchpool.steals");
  obs::Histogram &RunUs =
      obs::Registry::global().histogram("batchpool.run.us");

  static PoolMetrics &get() {
    static PoolMetrics M;
    return M;
  }
};

std::atomic<bool> StealingEnabled{true};
std::atomic<bool> PinningEnabled{true};

/// Applies the current pinning policy to the calling pool worker: pins it
/// to a fixed core derived from its stable pool id (keeping the sticky
/// slot->thread->core map physical), or -- after a setPinning(false) --
/// releases a previously pinned worker back to the full CPU set so
/// pinned-vs-unpinned comparisons (bench `-nopin` rows) measure what they
/// claim. Sticky: one affinity syscall per policy change, not per run.
void applyPinning(int Id) {
#ifdef __linux__
  thread_local int PinnedCpu = -1;
  unsigned NCpus = std::thread::hardware_concurrency();
  if (NCpus == 0)
    return;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  if (PinningEnabled.load(std::memory_order_relaxed)) {
    if (PinnedCpu >= 0)
      return;
    // Core 0 is left to the (never pinned) calling thread; workers fill
    // the remaining cores round-robin.
    int Cpu = static_cast<int>((Id + 1) % NCpus);
    CPU_SET(Cpu, &Set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set) == 0)
      PinnedCpu = Cpu;
  } else if (PinnedCpu >= 0) {
    for (unsigned C = 0; C < NCpus; ++C)
      CPU_SET(static_cast<int>(C), &Set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set) == 0)
      PinnedCpu = -1;
  }
#else
  (void)Id;
#endif
}

} // namespace

void BatchPool::setStealing(bool On) {
  StealingEnabled.store(On, std::memory_order_relaxed);
}

void BatchPool::setPinning(bool On) {
  PinningEnabled.store(On, std::memory_order_relaxed);
}

int runtime::defaultBatchThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<int>(std::min<unsigned>(N, MaxPoolWorkers + 1));
}

BatchPool &BatchPool::shared() {
  // Leaked deliberately: workers are detached daemons parked between
  // batches, and run() never returns with a job outstanding, so process
  // exit finds them idle on members that are never destroyed.
  static BatchPool *P = new BatchPool();
  return *P;
}

BatchPool::BatchPool() : MaxWorkers(MaxPoolWorkers) {
  const char *Pin = std::getenv("SLINGEN_POOL_PIN");
  if (Pin && std::strcmp(Pin, "0") == 0)
    PinningEnabled.store(false, std::memory_order_relaxed);
}

void BatchPool::drain(int MySlot) {
  PoolMetrics &M = PoolMetrics::get();
  Job &J = *Current; // stable for the drain duration: run() holds RunMu
  auto DrainSlot = [&](int S) {
    Job::Slot &Sl = J.Slots[S];
    for (;;) {
      long Lo = Sl.Next.fetch_add(J.Chunk, std::memory_order_relaxed);
      if (Lo >= Sl.End)
        return;
      long Hi = std::min(Lo + J.Chunk, Sl.End);
      M.Chunks.add();
      if (S != MySlot)
        M.Steals.add();
      (*J.Fn)(Lo, Hi);
      J.Remaining.fetch_sub(Hi - Lo, std::memory_order_release);
    }
  };
  // Own sticky range first; only an idle thread (range drained) rebalances
  // by scanning the other participants' slots.
  DrainSlot(MySlot);
  if (!StealingEnabled.load(std::memory_order_relaxed))
    return;
  for (int O = 1; O < J.Participants; ++O)
    DrainSlot((MySlot + O) % J.Participants);
}

void BatchPool::workerLoop(int Id) {
  std::unique_lock<std::mutex> L(Mu);
  uint64_t Seen = 0;
  for (;;) {
    WakeCv.wait(L, [&] { return Current != nullptr && JobSeq != Seen; });
    Seen = JobSeq;
    Job *J = Current;
    // Participation is by stable pool id: worker Id owns slot Id + 1 of
    // every run it joins, so repeated runs assign each block range to the
    // same thread. Workers beyond the run's thread budget sit it out.
    // Active bookkeeping happens under Mu so the caller cannot observe
    // completion while a worker is still enrolling (the job lives on the
    // caller's stack).
    if (Id + 1 >= J->Participants)
      continue;
    J->Active.fetch_add(1, std::memory_order_relaxed);
    L.unlock();
    applyPinning(Id);
    drain(/*MySlot=*/Id + 1);
    L.lock();
    J->Active.fetch_sub(1, std::memory_order_relaxed);
    DoneCv.notify_all();
  }
}

void BatchPool::run(long NumItems, int Threads,
                    const std::function<void(long, long)> &Fn) {
  if (NumItems <= 0)
    return;
  Threads = std::min(Threads, MaxWorkers + 1);
  if (Threads <= 1 || NumItems < 2) {
    Fn(0, NumItems);
    return;
  }

  std::lock_guard<std::mutex> RunL(RunMu);
  PoolMetrics &M = PoolMetrics::get();
  M.Runs.add();
  M.Items.add(NumItems);
  obs::ScopedSpan Run("pool-run", "batchpool", &M.RunUs);
  Job J;
  J.Total = NumItems;
  J.Participants = Threads;
  // Chunks several times smaller than a slot's range: late threads and
  // uneven blocks rebalance through stealing, while the per-chunk atomic
  // stays amortized.
  J.Chunk = std::max<long>(1, NumItems / (static_cast<long>(Threads) * 8));
  J.Fn = &Fn;
  J.Remaining.store(NumItems, std::memory_order_relaxed);
  // Deterministic sticky partition: slot s owns [s*N/P, (s+1)*N/P).
  for (int S = 0; S < Threads; ++S) {
    J.Slots[S].Next.store(NumItems * S / Threads,
                          std::memory_order_relaxed);
    J.Slots[S].End = NumItems * (S + 1) / Threads;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    while (Spawned < Threads - 1) {
      std::thread(&BatchPool::workerLoop, this, Spawned).detach();
      ++Spawned;
    }
    Current = &J;
    ++JobSeq;
  }
  WakeCv.notify_all();
  drain(/*MySlot=*/0); // the caller participates, not just coordinates
  {
    std::unique_lock<std::mutex> L(Mu);
    // Remaining covers slots whose worker has not even started (relevant
    // with stealing disabled); Active covers workers still inside Fn.
    DoneCv.wait(L, [&] {
      return J.Remaining.load(std::memory_order_acquire) == 0 &&
             J.Active.load(std::memory_order_relaxed) == 0;
    });
    Current = nullptr;
  }
}

void runtime::callBatchParallel(const JitKernel &K, int Count,
                                double *const *Buffers, int BlockInstances,
                                int Threads) {
  const int Block = std::max(BlockInstances, 1);
  const long Blocks = Count / Block;
  if (Threads <= 1 || !K.hasBatchSpan() || Blocks < 2) {
    K.callBatch(Count, Buffers);
    return;
  }
  BatchPool::shared().run(Blocks, Threads, [&](long Lo, long Hi) {
    K.callBatchSpan(static_cast<int>(Lo) * Block,
                    static_cast<int>(Hi - Lo) * Block, Buffers);
  });
  // The count % Nu instance remainder stays on the calling thread (one
  // masked tail block inside <func>_batch under the fused strategy; no
  // full block to steal).
  const int Rem = Count - static_cast<int>(Blocks) * Block;
  if (Rem > 0)
    K.callBatchSpan(static_cast<int>(Blocks) * Block, Rem, Buffers);
}
