//===- service/KernelCache.cpp --------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/KernelCache.h"

#include "isa/ISA.h"
#include "obs/EventLog.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FaultInject.h"
#include "support/File.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/KeyValue.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include <unistd.h>

using namespace slingen;
using namespace slingen::service;

namespace fs = std::filesystem;

bool KernelArtifact::hostRunnable() const {
  return isaByName(IsaName.c_str()).Nu <= hostIsa().Nu;
}

KernelCache::KernelCache(size_t Capacity, std::string DiskDir)
    : Cap(Capacity == 0 ? 1 : Capacity), Dir(std::move(DiskDir)) {
  if (!Dir.empty()) {
    std::error_code Ec;
    fs::create_directories(Dir, Ec); // failure surfaces on first store
  }
}

ArtifactPtr KernelCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(Key);
  if (It == Map.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Artifact;
}

size_t KernelCache::insert(const ArtifactPtr &A) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(A->Key);
  if (It != Map.end()) {
    It->second.Artifact = A;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return 0;
  }
  Lru.push_front(A->Key);
  Map[A->Key] = Slot{A, Lru.begin()};
  size_t Evicted = 0;
  while (Map.size() > Cap) {
    Map.erase(Lru.back());
    Lru.pop_back();
    ++Evicted;
  }
  return Evicted;
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

namespace {

/// Content hash of one cached file's bytes, as stored in the meta's
/// `c-hash`/`so-hash` keys and re-checked on load.
std::string contentHash(const std::string &Bytes) {
  Fnv1a64 H;
  H.bytes(Bytes.data(), Bytes.size());
  return hexDigest(H.digest());
}

/// `ab/cdef...` -- 256-way fan-out by the leading two hex digits. Keys are
/// fixed-width hexDigest() output; anything shorter (never produced by the
/// service) stays unsharded rather than fabricating a one-char shard.
std::string shardedStem(const std::string &Key) {
  if (Key.size() < 3)
    return Key;
  return Key.substr(0, 2) + "/" + Key.substr(2);
}

} // namespace

KernelCache::EntryPaths KernelCache::pathsFor(const std::string &Key) const {
  std::string Stem = Dir + "/" + shardedStem(Key);
  return {Stem + ".c", Stem + ".so", Stem + ".meta"};
}

KernelCache::EntryPaths
KernelCache::flatPathsFor(const std::string &Key) const {
  std::string Stem = Dir + "/" + Key;
  return {Stem + ".c", Stem + ".so", Stem + ".meta"};
}

std::string KernelCache::cPathFor(const std::string &Key) const {
  return pathsFor(Key).C;
}
std::string KernelCache::soPathFor(const std::string &Key) const {
  return pathsFor(Key).So;
}
std::string KernelCache::metaPathFor(const std::string &Key) const {
  return pathsFor(Key).Meta;
}

void KernelCache::ensureEntryDir(const std::string &Key) const {
  if (Dir.empty() || Key.size() < 3)
    return;
  std::error_code Ec;
  fs::create_directories(Dir + "/" + Key.substr(0, 2), Ec);
}

bool KernelCache::resolveOnDisk(const std::string &Key,
                                EntryPaths &Out) const {
  if (Dir.empty())
    return false;
  std::error_code Ec;
  EntryPaths Sharded = pathsFor(Key);
  if (fs::exists(Sharded.Meta, Ec) && fs::exists(Sharded.C, Ec)) {
    Out = Sharded;
    return true;
  }
  // Pre-shard flat entry: a cache directory written before sharding (or
  // rsync'd from one) keeps serving without migration.
  EntryPaths Flat = flatPathsFor(Key);
  if (fs::exists(Flat.Meta, Ec) && fs::exists(Flat.C, Ec)) {
    Out = Flat;
    return true;
  }
  return false;
}

bool KernelCache::onDisk(const std::string &Key) const {
  EntryPaths P;
  return resolveOnDisk(Key, P);
}

ArtifactPtr KernelCache::loadFromDisk(const std::string &Key,
                                      std::string &Err) {
  if (Dir.empty()) {
    Err = "no disk tier configured";
    return nullptr;
  }
  EntryPaths Paths;
  if (!resolveOnDisk(Key, Paths)) {
    Err = "no disk entry for " + Key;
    return nullptr;
  }
  bool Ok = false;
  std::string MetaText = readFile(Paths.Meta, &Ok);
  if (!Ok) {
    Err = "no disk entry for " + Key;
    return nullptr;
  }
  auto KV = parseKeyValueMap(MetaText);
  auto A = std::make_shared<KernelArtifact>();
  A->Key = Key;
  A->FuncName = KV["func"];
  A->IsaName = KV["isa"];
  A->NumParams = atoi(KV["params"].c_str());
  A->Batched = KV["batched"] == "1";
  // Absent on pre-strategy entries and non-batched artifacts: ScalarLoop,
  // the only batched emission those could contain.
  if (auto S = batchStrategyByName(KV["strategy"]))
    A->Strategy = *S;
  // Absent on pre-threading entries: single-threaded dispatch.
  if (int T = atoi(KV["threads"].c_str()); T >= 1)
    A->BatchThreads = T;
  A->StaticCost = atol(KV["cost"].c_str());
  A->Measured = KV["measured"] == "1";
  A->MeasuredCycles = atof(KV["cycles"].c_str());
  {
    std::stringstream CS(KV["choice"]);
    std::string Tok;
    while (std::getline(CS, Tok, ','))
      if (!Tok.empty())
        A->Choice.push_back(atoi(Tok.c_str()));
  }
  if (A->FuncName.empty() || A->NumParams <= 0 ||
      (A->IsaName != "scalar" && A->IsaName != "sse2" &&
       A->IsaName != "avx" && A->IsaName != "avx512")) {
    Err = "corrupt meta for " + Key;
    return nullptr;
  }
  A->CSource = readFile(Paths.C, &Ok);
  if (!Ok || A->CSource.empty()) {
    Err = "missing cached source for " + Key;
    return nullptr;
  }
  // Verify what the store recorded. Mismatch means a torn or corrupted
  // entry sitting under a valid content key -- quarantine it (miss) rather
  // than compile garbage or dlopen an object that was never fully written.
  // Entries from before hashing carry no hash keys and load unverified.
  if (!KV["c-hash"].empty() && KV["c-hash"] != contentHash(A->CSource)) {
    quarantineEntry(Key);
    Err = "corrupt cached source for " + Key + " (quarantined)";
    return nullptr;
  }

  // The object may live beside the meta, or -- for a flat entry whose .so
  // was later recompiled by the service -- at the canonical sharded path.
  std::error_code Ec;
  std::string SoPath = Paths.So;
  if (!fs::exists(SoPath, Ec) && SoPath != soPathFor(Key) &&
      fs::exists(soPathFor(Key), Ec))
    SoPath = soPathFor(Key);
  if (fs::exists(SoPath, Ec)) {
    if (!KV["so-hash"].empty()) {
      bool SoOk = false;
      std::string SoBytes = readFile(SoPath, &SoOk);
      if (!SoOk || KV["so-hash"] != contentHash(SoBytes)) {
        quarantineEntry(Key);
        Err = "corrupt cached object for " + Key + " (quarantined)";
        return nullptr;
      }
    }
    std::string LoadErr;
    auto K = runtime::JitKernel::load(SoPath, A->FuncName, A->NumParams,
                                      LoadErr, A->Batched);
    // A stale/foreign .so is not fatal: the service recompiles from the
    // cached source instead of failing the request.
    if (K)
      A->Kernel = std::make_shared<runtime::JitKernel>(std::move(*K));
  }
  return A;
}

void KernelCache::quarantineEntry(const std::string &Key) {
  std::error_code Ec;
  for (const EntryPaths &P : {pathsFor(Key), flatPathsFor(Key)})
    for (const std::string &F : {P.C, P.So, P.Meta})
      if (fs::exists(F, Ec))
        // The .bad extension hides the file from resolveOnDisk and the GC
        // scan (which only index .c/.so/.meta) while keeping the bytes
        // around for a postmortem.
        rename(F.c_str(), (F + ".bad").c_str());
  NumQuarantined.fetch_add(1);
  obs::Registry::global().counter("cache.quarantined").add();
  obs::EventLog::global().log(obs::EventLog::Level::Error,
                              obs::currentTraceId(), "quarantine",
                              {{"key", Key}});
  std::lock_guard<std::mutex> L(DiskMu);
  if (DiskIndexed)
    dropFromIndexLocked(Key);
}

bool KernelCache::storeToDisk(const KernelArtifact &A, std::string &Err) {
  if (Dir.empty()) {
    Err = "no disk tier configured";
    return false;
  }
  if (fault::anyArmed() && fault::shouldFire("eio-on-store")) {
    Err = "injected fault: I/O error writing the cache entry";
    return false;
  }
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  ensureEntryDir(A.Key);
  // Hash what will be published *before* any fault below can mangle the
  // bytes on disk: the meta must always describe the intended content, so
  // a later load can tell intact from torn.
  std::string CHash = contentHash(A.CSource);
  std::string SoHash;
  if (fs::exists(soPathFor(A.Key), Ec)) {
    bool SoOk = false;
    std::string SoBytes = readFile(soPathFor(A.Key), &SoOk);
    if (SoOk)
      SoHash = contentHash(SoBytes);
  }
  // Both files are published via rename: concurrent readers (other threads
  // or other processes sharing the directory) never see torn content.
  std::string CTmp = cPathFor(A.Key) + formatf(".tmp%d", getpid());
  {
    std::ofstream Out(CTmp);
    Out << A.CSource;
    Out.close();
    // An ENOSPC/EIO-truncated temp must not be renamed under the content
    // key -- that would publish a permanently corrupt entry.
    if (!Out) {
      Err = "cannot write " + CTmp;
      unlink(CTmp.c_str());
      return false;
    }
  }
  if (rename(CTmp.c_str(), cPathFor(A.Key).c_str()) != 0) {
    Err = "cannot publish " + cPathFor(A.Key);
    unlink(CTmp.c_str());
    return false;
  }
  if (fault::anyArmed() && fault::shouldFire("torn-write")) {
    // Simulate a torn publication (crash mid-write on a filesystem whose
    // rename is not durable): the entry exists under its content key but
    // half the source bytes are gone. Only the hash check can catch this.
    if (truncate(cPathFor(A.Key).c_str(), A.CSource.size() / 2) != 0)
      unlink(cPathFor(A.Key).c_str());
  }
  std::string Tmp = metaPathFor(A.Key) + formatf(".tmp%d", getpid());
  {
    std::ofstream Out(Tmp);
    Out << "func=" << A.FuncName << "\n";
    Out << "isa=" << A.IsaName << "\n";
    Out << "params=" << A.NumParams << "\n";
    Out << "batched=" << (A.Batched ? 1 : 0) << "\n";
    if (A.Batched) {
      Out << "strategy=" << batchStrategyName(A.Strategy) << "\n";
      Out << "threads=" << (A.BatchThreads >= 1 ? A.BatchThreads : 1)
          << "\n";
    }
    Out << "c-hash=" << CHash << "\n";
    if (!SoHash.empty())
      Out << "so-hash=" << SoHash << "\n";
    Out << "cost=" << A.StaticCost << "\n";
    Out << "measured=" << (A.Measured ? 1 : 0) << "\n";
    Out << "cycles=" << formatf("%.17g", A.MeasuredCycles) << "\n";
    Out << "choice=";
    for (size_t I = 0; I < A.Choice.size(); ++I)
      Out << (I ? "," : "") << A.Choice[I];
    Out << "\n";
    Out.close();
    if (!Out) {
      Err = "cannot write " + Tmp;
      unlink(Tmp.c_str());
      return false;
    }
  }
  if (rename(Tmp.c_str(), metaPathFor(A.Key).c_str()) != 0) {
    Err = "cannot publish " + metaPathFor(A.Key);
    unlink(Tmp.c_str());
    return false;
  }
  // Fold the freshly published files (plus the .so the service may already
  // have compiled to soPathFor) into the size accounting -- stats only this
  // entry's own files, keeping budget enforcement O(evicted) per store.
  {
    std::lock_guard<std::mutex> L(DiskMu);
    if (DiskIndexed)
      indexDiskEntryLocked(A.Key);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Disk-tier size accounting. One full scan builds the per-entry index and
// the mtime-ordered eviction queue; afterwards stores fold their own files
// in (indexDiskEntryLocked) and enforceDiskBudget only touches what it
// evicts -- O(evicted) file operations per store instead of re-statting
// every entry.
//===----------------------------------------------------------------------===//

void KernelCache::dropFromIndexLocked(const std::string &Key) {
  auto It = DiskIndex.find(Key);
  if (It == DiskIndex.end())
    return;
  DiskTotal -= std::min(DiskTotal, It->second.Bytes);
  DiskByAge.erase(std::make_pair(It->second.Mtime, Key));
  DiskIndex.erase(It);
}

void KernelCache::indexDiskEntryLocked(const std::string &Key) {
  dropFromIndexLocked(Key);
  DiskEntry E;
  std::error_code Ec;
  // Both layouts can carry files for one key (a flat entry whose .so was
  // recompiled to the sharded path); the entry owns them all, exactly as
  // the full scan would account them.
  for (const EntryPaths &P : {pathsFor(Key), flatPathsFor(Key)}) {
    for (const std::string &F : {P.C, P.So, P.Meta}) {
      uintmax_t Sz = fs::file_size(F, Ec);
      if (Ec)
        continue;
      E.Files.emplace_back(F, Sz);
      E.Bytes += Sz;
      fs::file_time_type M = fs::last_write_time(F, Ec);
      if (!Ec && M > E.Mtime)
        E.Mtime = M;
    }
  }
  if (E.Files.empty())
    return;
  DiskTotal += E.Bytes;
  DiskByAge.emplace(std::make_pair(E.Mtime, Key), Key);
  DiskIndex.emplace(Key, std::move(E));
}

namespace {

/// Folds one regular file into the per-key scan state. \p Key is the
/// reconstructed cache key (shard prefix + stem); files that are not
/// `.c/.so/.meta` (in-flight `.tmp<pid>` publications, foreign files) are
/// skipped.
template <typename EntryMap>
void gcAccumulate(EntryMap &Entries, const std::string &Key,
                  const fs::directory_entry &File) {
  std::string Ext = File.path().extension().string();
  if (Ext != ".c" && Ext != ".so" && Ext != ".meta")
    return;
  std::error_code Ec;
  uintmax_t Sz = File.file_size(Ec);
  if (Ec)
    return;
  auto &E = Entries[Key];
  E.Files.emplace_back(File.path().string(), Sz);
  E.Bytes += Sz;
  fs::file_time_type M = fs::last_write_time(File.path(), Ec);
  if (!Ec && M > E.Mtime)
    E.Mtime = M;
}

} // namespace

void KernelCache::scanDiskTierLocked() const {
  DiskIndex.clear();
  DiskByAge.clear();
  DiskTotal = 0;
  ++NumDiskScans;
  // Scan the two layouts: flat `<key>.{c,so,meta}` at the top level and
  // sharded `ab/<rest>.{c,so,meta}` one level down.
  std::error_code Ec;
  for (const fs::directory_entry &Top : fs::directory_iterator(Dir, Ec)) {
    if (Top.is_regular_file(Ec)) {
      gcAccumulate(DiskIndex, Top.path().stem().string(), Top);
      continue;
    }
    if (!Top.is_directory(Ec))
      continue;
    std::string Shard = Top.path().filename().string();
    for (const fs::directory_entry &File :
         fs::directory_iterator(Top.path(), Ec))
      if (File.is_regular_file(Ec))
        gcAccumulate(DiskIndex, Shard + File.path().stem().string(), File);
  }
  for (const auto &[Key, E] : DiskIndex) {
    DiskTotal += E.Bytes;
    DiskByAge.emplace(std::make_pair(E.Mtime, Key), Key);
  }
  DiskIndexed = true;
}

size_t KernelCache::diskScans() const {
  std::lock_guard<std::mutex> L(DiskMu);
  return NumDiskScans;
}

long KernelCache::diskEvictions() const {
  std::lock_guard<std::mutex> L(DiskMu);
  return NumDiskEvictions;
}

size_t KernelCache::diskEntries() const {
  std::lock_guard<std::mutex> L(DiskMu);
  if (!DiskIndexed && !Dir.empty())
    scanDiskTierLocked();
  return DiskIndex.size();
}

long KernelCache::diskBytes() const {
  std::lock_guard<std::mutex> L(DiskMu);
  if (!DiskIndexed && !Dir.empty())
    scanDiskTierLocked();
  return static_cast<long>(DiskTotal);
}

void KernelCache::refreshDiskEntry(const std::string &Key) {
  if (Dir.empty())
    return;
  std::lock_guard<std::mutex> L(DiskMu);
  if (DiskIndexed)
    indexDiskEntryLocked(Key);
}

size_t KernelCache::enforceDiskBudget(long MaxBytes,
                                      const std::string &KeepKey) {
  if (Dir.empty() || MaxBytes <= 0)
    return 0;
  std::lock_guard<std::mutex> L(DiskMu);
  if (!DiskIndexed)
    scanDiskTierLocked();
  size_t Evicted = 0;
  auto It = DiskByAge.begin();
  while (DiskTotal > static_cast<uintmax_t>(MaxBytes) &&
         It != DiskByAge.end()) {
    const std::string Key = It->second;
    if (Key == KeepKey) {
      ++It;
      continue;
    }
    auto MapIt = DiskIndex.find(Key);
    if (MapIt == DiskIndex.end()) {
      It = DiskByAge.erase(It);
      continue;
    }
    DiskEntry E = std::move(MapIt->second);
    It = DiskByAge.erase(It);
    DiskIndex.erase(MapIt);
    // Only count what actually left the disk: an unremovable file (EACCES
    // in a shared directory, say) must not fool the budget into thinking
    // space was freed, or the tier would quietly grow past the cap.
    std::vector<std::pair<std::string, uintmax_t>> Stuck;
    uintmax_t StuckBytes = 0;
    for (const auto &[F, Sz] : E.Files) {
      std::error_code RmEc;
      if (fs::remove(F, RmEc) || !fs::exists(F, RmEc))
        DiskTotal -= std::min(DiskTotal, Sz);
      else {
        Stuck.emplace_back(F, Sz);
        StuckBytes += Sz;
      }
    }
    if (Stuck.empty()) {
      ++Evicted;
      ++NumDiskEvictions;
    } else {
      // Keep the survivors indexed (bytes stay in the total) so a later
      // pass retries them; re-inserting under the same age slots them
      // before the iterator, ending this pass's interest in them.
      DiskEntry R;
      R.Files = std::move(Stuck);
      R.Bytes = StuckBytes;
      R.Mtime = E.Mtime;
      DiskByAge.emplace(std::make_pair(R.Mtime, Key), Key);
      DiskIndex.emplace(Key, std::move(R));
    }
  }
  return Evicted;
}
