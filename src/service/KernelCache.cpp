//===- service/KernelCache.cpp --------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/KernelCache.h"

#include "isa/ISA.h"
#include "support/File.h"
#include "support/Format.h"
#include "support/KeyValue.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include <unistd.h>

using namespace slingen;
using namespace slingen::service;

namespace fs = std::filesystem;

bool KernelArtifact::hostRunnable() const {
  return isaByName(IsaName.c_str()).Nu <= hostIsa().Nu;
}

KernelCache::KernelCache(size_t Capacity, std::string DiskDir)
    : Cap(Capacity == 0 ? 1 : Capacity), Dir(std::move(DiskDir)) {
  if (!Dir.empty()) {
    std::error_code Ec;
    fs::create_directories(Dir, Ec); // failure surfaces on first store
  }
}

ArtifactPtr KernelCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(Key);
  if (It == Map.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Artifact;
}

size_t KernelCache::insert(const ArtifactPtr &A) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(A->Key);
  if (It != Map.end()) {
    It->second.Artifact = A;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return 0;
  }
  Lru.push_front(A->Key);
  Map[A->Key] = Slot{A, Lru.begin()};
  size_t Evicted = 0;
  while (Map.size() > Cap) {
    Map.erase(Lru.back());
    Lru.pop_back();
    ++Evicted;
  }
  return Evicted;
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

namespace {

/// `ab/cdef...` -- 256-way fan-out by the leading two hex digits. Keys are
/// fixed-width hexDigest() output; anything shorter (never produced by the
/// service) stays unsharded rather than fabricating a one-char shard.
std::string shardedStem(const std::string &Key) {
  if (Key.size() < 3)
    return Key;
  return Key.substr(0, 2) + "/" + Key.substr(2);
}

} // namespace

KernelCache::EntryPaths KernelCache::pathsFor(const std::string &Key) const {
  std::string Stem = Dir + "/" + shardedStem(Key);
  return {Stem + ".c", Stem + ".so", Stem + ".meta"};
}

KernelCache::EntryPaths
KernelCache::flatPathsFor(const std::string &Key) const {
  std::string Stem = Dir + "/" + Key;
  return {Stem + ".c", Stem + ".so", Stem + ".meta"};
}

std::string KernelCache::cPathFor(const std::string &Key) const {
  return pathsFor(Key).C;
}
std::string KernelCache::soPathFor(const std::string &Key) const {
  return pathsFor(Key).So;
}
std::string KernelCache::metaPathFor(const std::string &Key) const {
  return pathsFor(Key).Meta;
}

void KernelCache::ensureEntryDir(const std::string &Key) const {
  if (Dir.empty() || Key.size() < 3)
    return;
  std::error_code Ec;
  fs::create_directories(Dir + "/" + Key.substr(0, 2), Ec);
}

bool KernelCache::resolveOnDisk(const std::string &Key,
                                EntryPaths &Out) const {
  if (Dir.empty())
    return false;
  std::error_code Ec;
  EntryPaths Sharded = pathsFor(Key);
  if (fs::exists(Sharded.Meta, Ec) && fs::exists(Sharded.C, Ec)) {
    Out = Sharded;
    return true;
  }
  // Pre-shard flat entry: a cache directory written before sharding (or
  // rsync'd from one) keeps serving without migration.
  EntryPaths Flat = flatPathsFor(Key);
  if (fs::exists(Flat.Meta, Ec) && fs::exists(Flat.C, Ec)) {
    Out = Flat;
    return true;
  }
  return false;
}

bool KernelCache::onDisk(const std::string &Key) const {
  EntryPaths P;
  return resolveOnDisk(Key, P);
}

ArtifactPtr KernelCache::loadFromDisk(const std::string &Key,
                                      std::string &Err) {
  if (Dir.empty()) {
    Err = "no disk tier configured";
    return nullptr;
  }
  EntryPaths Paths;
  if (!resolveOnDisk(Key, Paths)) {
    Err = "no disk entry for " + Key;
    return nullptr;
  }
  bool Ok = false;
  std::string MetaText = readFile(Paths.Meta, &Ok);
  if (!Ok) {
    Err = "no disk entry for " + Key;
    return nullptr;
  }
  auto KV = parseKeyValueMap(MetaText);
  auto A = std::make_shared<KernelArtifact>();
  A->Key = Key;
  A->FuncName = KV["func"];
  A->IsaName = KV["isa"];
  A->NumParams = atoi(KV["params"].c_str());
  A->Batched = KV["batched"] == "1";
  // Absent on pre-strategy entries and non-batched artifacts: ScalarLoop,
  // the only batched emission those could contain.
  if (auto S = batchStrategyByName(KV["strategy"]))
    A->Strategy = *S;
  // Absent on pre-threading entries: single-threaded dispatch.
  if (int T = atoi(KV["threads"].c_str()); T >= 1)
    A->BatchThreads = T;
  A->StaticCost = atol(KV["cost"].c_str());
  A->Measured = KV["measured"] == "1";
  A->MeasuredCycles = atof(KV["cycles"].c_str());
  {
    std::stringstream CS(KV["choice"]);
    std::string Tok;
    while (std::getline(CS, Tok, ','))
      if (!Tok.empty())
        A->Choice.push_back(atoi(Tok.c_str()));
  }
  if (A->FuncName.empty() || A->NumParams <= 0 ||
      (A->IsaName != "scalar" && A->IsaName != "sse2" &&
       A->IsaName != "avx" && A->IsaName != "avx512")) {
    Err = "corrupt meta for " + Key;
    return nullptr;
  }
  A->CSource = readFile(Paths.C, &Ok);
  if (!Ok || A->CSource.empty()) {
    Err = "missing cached source for " + Key;
    return nullptr;
  }

  // The object may live beside the meta, or -- for a flat entry whose .so
  // was later recompiled by the service -- at the canonical sharded path.
  std::error_code Ec;
  std::string SoPath = Paths.So;
  if (!fs::exists(SoPath, Ec) && SoPath != soPathFor(Key) &&
      fs::exists(soPathFor(Key), Ec))
    SoPath = soPathFor(Key);
  if (fs::exists(SoPath, Ec)) {
    std::string LoadErr;
    auto K = runtime::JitKernel::load(SoPath, A->FuncName, A->NumParams,
                                      LoadErr, A->Batched);
    // A stale/foreign .so is not fatal: the service recompiles from the
    // cached source instead of failing the request.
    if (K)
      A->Kernel = std::make_shared<runtime::JitKernel>(std::move(*K));
  }
  return A;
}

bool KernelCache::storeToDisk(const KernelArtifact &A, std::string &Err) {
  if (Dir.empty()) {
    Err = "no disk tier configured";
    return false;
  }
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  ensureEntryDir(A.Key);
  // Both files are published via rename: concurrent readers (other threads
  // or other processes sharing the directory) never see torn content.
  std::string CTmp = cPathFor(A.Key) + formatf(".tmp%d", getpid());
  {
    std::ofstream Out(CTmp);
    Out << A.CSource;
    Out.close();
    // An ENOSPC/EIO-truncated temp must not be renamed under the content
    // key -- that would publish a permanently corrupt entry.
    if (!Out) {
      Err = "cannot write " + CTmp;
      unlink(CTmp.c_str());
      return false;
    }
  }
  if (rename(CTmp.c_str(), cPathFor(A.Key).c_str()) != 0) {
    Err = "cannot publish " + cPathFor(A.Key);
    unlink(CTmp.c_str());
    return false;
  }
  std::string Tmp = metaPathFor(A.Key) + formatf(".tmp%d", getpid());
  {
    std::ofstream Out(Tmp);
    Out << "func=" << A.FuncName << "\n";
    Out << "isa=" << A.IsaName << "\n";
    Out << "params=" << A.NumParams << "\n";
    Out << "batched=" << (A.Batched ? 1 : 0) << "\n";
    if (A.Batched) {
      Out << "strategy=" << batchStrategyName(A.Strategy) << "\n";
      Out << "threads=" << (A.BatchThreads >= 1 ? A.BatchThreads : 1)
          << "\n";
    }
    Out << "cost=" << A.StaticCost << "\n";
    Out << "measured=" << (A.Measured ? 1 : 0) << "\n";
    Out << "cycles=" << formatf("%.17g", A.MeasuredCycles) << "\n";
    Out << "choice=";
    for (size_t I = 0; I < A.Choice.size(); ++I)
      Out << (I ? "," : "") << A.Choice[I];
    Out << "\n";
    Out.close();
    if (!Out) {
      Err = "cannot write " + Tmp;
      unlink(Tmp.c_str());
      return false;
    }
  }
  if (rename(Tmp.c_str(), metaPathFor(A.Key).c_str()) != 0) {
    Err = "cannot publish " + metaPathFor(A.Key);
    unlink(Tmp.c_str());
    return false;
  }
  return true;
}

namespace {

/// One on-disk entry during a GC scan: every file sharing a key stem.
struct GcEntry {
  std::string Key; ///< cache key (shard prefix folded back in)
  std::vector<std::pair<fs::path, uintmax_t>> Files; ///< path, byte size
  uintmax_t Bytes = 0;
  fs::file_time_type Mtime = fs::file_time_type::min(); ///< newest file
};

/// Folds one regular file into the per-key scan state. \p Key is the
/// reconstructed cache key (shard prefix + stem); files that are not
/// `.c/.so/.meta` (in-flight `.tmp<pid>` publications, foreign files) are
/// skipped.
void gcAccumulate(std::map<std::string, GcEntry> &Entries,
                  const std::string &Key, const fs::directory_entry &File) {
  std::string Ext = File.path().extension().string();
  if (Ext != ".c" && Ext != ".so" && Ext != ".meta")
    return;
  std::error_code Ec;
  uintmax_t Sz = File.file_size(Ec);
  if (Ec)
    return;
  GcEntry &E = Entries[Key];
  E.Key = Key;
  E.Files.emplace_back(File.path(), Sz);
  E.Bytes += Sz;
  fs::file_time_type M = fs::last_write_time(File.path(), Ec);
  if (!Ec && M > E.Mtime)
    E.Mtime = M;
}

} // namespace

size_t KernelCache::enforceDiskBudget(long MaxBytes,
                                      const std::string &KeepKey) {
  if (Dir.empty() || MaxBytes <= 0)
    return 0;
  // Scan the two layouts: flat `<key>.{c,so,meta}` at the top level and
  // sharded `ab/<rest>.{c,so,meta}` one level down.
  std::map<std::string, GcEntry> Entries;
  std::error_code Ec;
  for (const fs::directory_entry &Top : fs::directory_iterator(Dir, Ec)) {
    if (Top.is_regular_file(Ec)) {
      gcAccumulate(Entries, Top.path().stem().string(), Top);
      continue;
    }
    if (!Top.is_directory(Ec))
      continue;
    std::string Shard = Top.path().filename().string();
    for (const fs::directory_entry &File :
         fs::directory_iterator(Top.path(), Ec))
      if (File.is_regular_file(Ec))
        gcAccumulate(Entries, Shard + File.path().stem().string(), File);
  }

  uintmax_t Total = 0;
  std::vector<const GcEntry *> ByAge;
  for (const auto &[Key, E] : Entries) {
    Total += E.Bytes;
    ByAge.push_back(&E);
  }
  if (Total <= static_cast<uintmax_t>(MaxBytes))
    return 0;
  std::sort(ByAge.begin(), ByAge.end(),
            [](const GcEntry *A, const GcEntry *B) {
              return A->Mtime != B->Mtime ? A->Mtime < B->Mtime
                                          : A->Key < B->Key;
            });
  size_t Evicted = 0;
  for (const GcEntry *E : ByAge) {
    if (Total <= static_cast<uintmax_t>(MaxBytes))
      break;
    if (E->Key == KeepKey)
      continue;
    // Only count what actually left the disk: an unremovable file (EACCES
    // in a shared directory, say) must not fool the budget into thinking
    // space was freed, or the tier would quietly grow past the cap.
    bool AllGone = true;
    for (const auto &[F, Sz] : E->Files) {
      std::error_code RmEc;
      if (fs::remove(F, RmEc) || !fs::exists(F, RmEc))
        Total -= std::min(Total, Sz);
      else
        AllGone = false;
    }
    if (AllGone)
      ++Evicted;
  }
  return Evicted;
}
