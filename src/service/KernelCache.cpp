//===- service/KernelCache.cpp --------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/KernelCache.h"

#include "isa/ISA.h"
#include "support/File.h"
#include "support/Format.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace slingen;
using namespace slingen::service;

namespace fs = std::filesystem;

bool KernelArtifact::hostRunnable() const {
  return isaByName(IsaName.c_str()).Nu <= hostIsa().Nu;
}

KernelCache::KernelCache(size_t Capacity, std::string DiskDir)
    : Cap(Capacity == 0 ? 1 : Capacity), Dir(std::move(DiskDir)) {
  if (!Dir.empty()) {
    std::error_code Ec;
    fs::create_directories(Dir, Ec); // failure surfaces on first store
  }
}

ArtifactPtr KernelCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(Key);
  if (It == Map.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Artifact;
}

size_t KernelCache::insert(const ArtifactPtr &A) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(A->Key);
  if (It != Map.end()) {
    It->second.Artifact = A;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return 0;
  }
  Lru.push_front(A->Key);
  Map[A->Key] = Slot{A, Lru.begin()};
  size_t Evicted = 0;
  while (Map.size() > Cap) {
    Map.erase(Lru.back());
    Lru.pop_back();
    ++Evicted;
  }
  return Evicted;
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

std::string KernelCache::cPathFor(const std::string &Key) const {
  return Dir + "/" + Key + ".c";
}
std::string KernelCache::soPathFor(const std::string &Key) const {
  return Dir + "/" + Key + ".so";
}
std::string KernelCache::metaPathFor(const std::string &Key) const {
  return Dir + "/" + Key + ".meta";
}

bool KernelCache::onDisk(const std::string &Key) const {
  if (Dir.empty())
    return false;
  std::error_code Ec;
  return fs::exists(metaPathFor(Key), Ec) && fs::exists(cPathFor(Key), Ec);
}

namespace {

/// Parses the `key=value` lines of a .meta file.
std::unordered_map<std::string, std::string>
parseMeta(const std::string &Text) {
  std::unordered_map<std::string, std::string> KV;
  std::stringstream SS(Text);
  std::string Line;
  while (std::getline(SS, Line)) {
    size_t Eq = Line.find('=');
    if (Eq != std::string::npos)
      KV[Line.substr(0, Eq)] = Line.substr(Eq + 1);
  }
  return KV;
}

} // namespace

ArtifactPtr KernelCache::loadFromDisk(const std::string &Key,
                                      std::string &Err) {
  if (Dir.empty()) {
    Err = "no disk tier configured";
    return nullptr;
  }
  bool Ok = false;
  std::string MetaText = readFile(metaPathFor(Key), &Ok);
  if (!Ok) {
    Err = "no disk entry for " + Key;
    return nullptr;
  }
  auto KV = parseMeta(MetaText);
  auto A = std::make_shared<KernelArtifact>();
  A->Key = Key;
  A->FuncName = KV["func"];
  A->IsaName = KV["isa"];
  A->NumParams = atoi(KV["params"].c_str());
  A->Batched = KV["batched"] == "1";
  // Absent on pre-strategy entries and non-batched artifacts: ScalarLoop,
  // the only batched emission those could contain.
  if (auto S = batchStrategyByName(KV["strategy"]))
    A->Strategy = *S;
  A->StaticCost = atol(KV["cost"].c_str());
  A->Measured = KV["measured"] == "1";
  A->MeasuredCycles = atof(KV["cycles"].c_str());
  {
    std::stringstream CS(KV["choice"]);
    std::string Tok;
    while (std::getline(CS, Tok, ','))
      if (!Tok.empty())
        A->Choice.push_back(atoi(Tok.c_str()));
  }
  if (A->FuncName.empty() || A->NumParams <= 0 ||
      (A->IsaName != "scalar" && A->IsaName != "sse2" &&
       A->IsaName != "avx" && A->IsaName != "avx512")) {
    Err = "corrupt meta for " + Key;
    return nullptr;
  }
  A->CSource = readFile(cPathFor(Key), &Ok);
  if (!Ok || A->CSource.empty()) {
    Err = "missing cached source for " + Key;
    return nullptr;
  }

  std::error_code Ec;
  if (fs::exists(soPathFor(Key), Ec)) {
    std::string LoadErr;
    auto K = runtime::JitKernel::load(soPathFor(Key), A->FuncName,
                                      A->NumParams, LoadErr, A->Batched);
    // A stale/foreign .so is not fatal: the service recompiles from the
    // cached source instead of failing the request.
    if (K)
      A->Kernel = std::make_shared<runtime::JitKernel>(std::move(*K));
  }
  return A;
}

bool KernelCache::storeToDisk(const KernelArtifact &A, std::string &Err) {
  if (Dir.empty()) {
    Err = "no disk tier configured";
    return false;
  }
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  // Both files are published via rename: concurrent readers (other threads
  // or other processes sharing the directory) never see torn content.
  std::string CTmp = cPathFor(A.Key) + formatf(".tmp%d", getpid());
  {
    std::ofstream Out(CTmp);
    Out << A.CSource;
    Out.close();
    // An ENOSPC/EIO-truncated temp must not be renamed under the content
    // key -- that would publish a permanently corrupt entry.
    if (!Out) {
      Err = "cannot write " + CTmp;
      unlink(CTmp.c_str());
      return false;
    }
  }
  if (rename(CTmp.c_str(), cPathFor(A.Key).c_str()) != 0) {
    Err = "cannot publish " + cPathFor(A.Key);
    unlink(CTmp.c_str());
    return false;
  }
  std::string Tmp = metaPathFor(A.Key) + formatf(".tmp%d", getpid());
  {
    std::ofstream Out(Tmp);
    Out << "func=" << A.FuncName << "\n";
    Out << "isa=" << A.IsaName << "\n";
    Out << "params=" << A.NumParams << "\n";
    Out << "batched=" << (A.Batched ? 1 : 0) << "\n";
    if (A.Batched)
      Out << "strategy=" << batchStrategyName(A.Strategy) << "\n";
    Out << "cost=" << A.StaticCost << "\n";
    Out << "measured=" << (A.Measured ? 1 : 0) << "\n";
    Out << "cycles=" << formatf("%.17g", A.MeasuredCycles) << "\n";
    Out << "choice=";
    for (size_t I = 0; I < A.Choice.size(); ++I)
      Out << (I ? "," : "") << A.Choice[I];
    Out << "\n";
    Out.close();
    if (!Out) {
      Err = "cannot write " + Tmp;
      unlink(Tmp.c_str());
      return false;
    }
  }
  if (rename(Tmp.c_str(), metaPathFor(A.Key).c_str()) != 0) {
    Err = "cannot publish " + metaPathFor(A.Key);
    unlink(Tmp.c_str());
    return false;
  }
  return true;
}
