//===- service/Tuner.h - measured variant autotuning ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "measure the generated function" autotuning step, fully
/// wired: the static cost model pre-ranks Generator::enumerate() output,
/// the top-K candidates are JIT-compiled and timed with median-of-k runs on
/// deterministic inputs, and the fastest measured variant wins. When the
/// environment cannot measure (no system C compiler, no cycle counter, or
/// no candidate compiles), tuning degrades to the static ranking -- the
/// same policy Generator::best() implements -- and says so in the result.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SERVICE_TUNER_H
#define SLINGEN_SERVICE_TUNER_H

#include "runtime/Timing.h"
#include "slingen/SLinGen.h"

#include <optional>
#include <string>

namespace slingen {
namespace service {

struct TuneOptions {
  int TopK = 4;         ///< candidates measured (by static-cost rank)
  int MaxVariants = 16; ///< Generator::enumerate() budget
  runtime::MeasureOptions Measure{/*Repeats=*/9, /*Warmup=*/2,
                                  /*MinCycles=*/10000};
  std::string ExtraFlags; ///< compiler flags (e.g. isaCompileFlags)
};

struct TuneResult {
  GenResult Result;
  bool Measured = false;      ///< ranking came from real timings
  double MedianCycles = 0.0;  ///< winner's median (when Measured)
  int CandidatesMeasured = 0; ///< JIT compiles the tuner performed
};

/// Picks the best variant of \p G. Returns std::nullopt (with \p Err) only
/// when no variant can be generated at all.
std::optional<TuneResult> tuneKernel(const Generator &G, const TuneOptions &T,
                                     std::string &Err);

/// Outcome of resolving BatchStrategy::Auto for one batched kernel.
struct BatchChoice {
  BatchStrategy Strategy = BatchStrategy::ScalarLoop; ///< never Auto
  /// Resolved dispatch width (>= 1): how many threads the batch thread
  /// pool should spread AoSoA blocks across for this kernel. 1 means
  /// single-threaded dispatch.
  int Threads = 1;
  bool Measured = false; ///< strategy choice came from real timings
  /// Sum of the median cycles over the two probe batches (one Nu-divisible,
  /// one remainder-heavy; when Measured). Lower is better.
  double LoopCycles = 0.0;
  double VecCycles = 0.0;
  double FusedCycles = 0.0;
  /// True when the thread count was resolved by measurement (an auto
  /// policy on a multicore host with a runnable kernel).
  bool ThreadsMeasured = false;
  double SingleCycles = 0.0;   ///< winner at the large batch, one thread
  double ThreadedCycles = 0.0; ///< winner at the large batch, Threads wide
  /// The winning translation unit when Strategy is not ScalarLoop and the
  /// chooser already produced the emission (to measure it), so the service
  /// does not regenerate it. Empty otherwise.
  std::string ChosenSource;
};

/// Resolves BatchStrategy::Auto for the tuned kernel \p R generated under
/// \p O: when a compiler, a cycle counter, and a host that can execute the
/// target ISA are all available (and \p AllowCompile), all three batched
/// emissions -- the scalar loop, the packed instance-parallel form, and
/// the fused-layout form -- are JIT-compiled and timed over two
/// deterministic instance batches (one divisible by every supported Nu,
/// one remainder-heavy to exercise the masked tail) and the lowest summed
/// median wins; otherwise the static
/// cost model compares the scalar-loop estimate against the widened
/// estimates (scalar kernel cost over Nu lanes, plus the AoSoA pack/unpack
/// traffic for the packed form or the strided-access overhead for the
/// fused form). Scalar targets always resolve to ScalarLoop.
///
/// \p ThreadsPolicy pins the dispatch width when >= 1; 0 asks the chooser
/// to resolve it: the winning strategy is re-timed over a larger batch
/// single-threaded versus spread across defaultBatchThreads() cores, and
/// Threads records whichever won. Unmeasurable environments resolve an
/// auto policy to 1.
BatchChoice chooseBatchStrategy(const GenResult &R, const GenOptions &O,
                                const TuneOptions &T, bool AllowCompile,
                                int ThreadsPolicy = 0);

} // namespace service
} // namespace slingen

#endif // SLINGEN_SERVICE_TUNER_H
