//===- service/Tuner.h - measured variant autotuning ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "measure the generated function" autotuning step, fully
/// wired: the static cost model pre-ranks Generator::enumerate() output,
/// the top-K candidates are JIT-compiled and timed with median-of-k runs on
/// deterministic inputs, and the fastest measured variant wins. When the
/// environment cannot measure (no system C compiler, no cycle counter, or
/// no candidate compiles), tuning degrades to the static ranking -- the
/// same policy Generator::best() implements -- and says so in the result.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SERVICE_TUNER_H
#define SLINGEN_SERVICE_TUNER_H

#include "runtime/Timing.h"
#include "slingen/SLinGen.h"

#include <optional>
#include <string>

namespace slingen {
namespace service {

struct TuneOptions {
  int TopK = 4;         ///< candidates measured (by static-cost rank)
  int MaxVariants = 16; ///< Generator::enumerate() budget
  runtime::MeasureOptions Measure{/*Repeats=*/9, /*Warmup=*/2,
                                  /*MinCycles=*/10000};
  std::string ExtraFlags; ///< compiler flags (e.g. isaCompileFlags)
};

struct TuneResult {
  GenResult Result;
  bool Measured = false;      ///< ranking came from real timings
  double MedianCycles = 0.0;  ///< winner's median (when Measured)
  int CandidatesMeasured = 0; ///< JIT compiles the tuner performed
};

/// Picks the best variant of \p G. Returns std::nullopt (with \p Err) only
/// when no variant can be generated at all.
std::optional<TuneResult> tuneKernel(const Generator &G, const TuneOptions &T,
                                     std::string &Err);

/// Outcome of resolving BatchStrategy::Auto for one batched kernel.
struct BatchChoice {
  BatchStrategy Strategy = BatchStrategy::ScalarLoop; ///< never Auto
  bool Measured = false;     ///< choice came from real batched timings
  double LoopCycles = 0.0;   ///< median cycles per batch (when Measured)
  double VecCycles = 0.0;
  /// When Strategy is InstanceParallel and the chooser already produced
  /// the emission (to measure it), the winning translation unit, so the
  /// service does not regenerate it. Empty otherwise.
  std::string VecSource;
};

/// Resolves BatchStrategy::Auto for the tuned kernel \p R generated under
/// \p O: when a compiler, a cycle counter, and a host that can execute the
/// target ISA are all available (and \p AllowCompile), both batched
/// emissions are JIT-compiled and timed over a deterministic instance
/// batch and the faster wins; otherwise the static cost model compares the
/// scalar-loop estimate against the widened estimate (scalar kernel cost
/// over Nu lanes plus the AoSoA pack/unpack traffic). Scalar targets
/// always resolve to ScalarLoop.
BatchChoice chooseBatchStrategy(const GenResult &R, const GenOptions &O,
                                const TuneOptions &T, bool AllowCompile);

} // namespace service
} // namespace slingen

#endif // SLINGEN_SERVICE_TUNER_H
