//===- service/KernelService.h - cached, measured kernel serving ----------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelService turns the one-shot SLinGen generator into a serving
/// runtime. A request names an LA program (source text or a lowered
/// Program) plus GenOptions; the service answers with an immutable
/// KernelArtifact -- emitted C, provenance, and a loaded, callable kernel
/// when a compiler is available. Three mechanisms make repeated and
/// concurrent traffic cheap:
///
///   caching        artifacts are content-addressed by a stable hash of the
///                  *normalized* program + options + ISA and served from a
///                  thread-safe in-memory LRU, backed by an optional disk
///                  tier that survives the process (see KernelCache).
///   single-flight  N threads missing on the same key trigger exactly one
///                  generate+compile; the rest block on a shared future and
///                  receive the same artifact.
///   measured tuning  with Config.Measure the top-K enumerated variants are
///                  JIT-compiled and timed (median of k), and the winning
///                  choice vector is persisted with the cache entry; where
///                  measurement is impossible the static cost model ranks
///                  (see Tuner).
///
/// Batched requests (Batched=true, the paper's Sec. 5 extension) are cached
/// under their own key and dispatch `count` independent problem instances
/// through the `<func>_batch` entry point in one call.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SERVICE_KERNELSERVICE_H
#define SLINGEN_SERVICE_KERNELSERVICE_H

#include "service/KernelCache.h"
#include "slingen/SLinGen.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace slingen {
namespace service {

struct ServiceConfig {
  /// Memory-tier LRU capacity (loaded kernels kept hot).
  size_t MemCapacity = 64;
  /// Disk-tier directory; empty disables persistence.
  std::string CacheDir;
  /// Rank variants by measurement instead of the static model alone.
  bool Measure = false;
  int TuneTopK = 4;       ///< candidates measured when Measure is set
  int MaxVariants = 16;   ///< variant enumeration budget
  int MeasureRepeats = 9; ///< timed runs per candidate (median taken)
  /// Batched-request codegen strategy (see slingen::BatchStrategy). Auto
  /// resolves per kernel -- measured (both strategies JIT-compiled and
  /// timed) whenever a compiler, cycle counter, and host-runnable ISA are
  /// available, by the static cost model otherwise -- and the resolution
  /// is persisted in the disk tier's .meta, so a warmed shared cache
  /// serves the tuned variant without re-measuring. InstanceParallel
  /// degrades to ScalarLoop on scalar targets. Note that Auto measures
  /// independently of Measure (which governs per-variant tuning): a
  /// batched cache miss costs two extra JIT compiles plus a short timing
  /// loop; pin ScalarLoop or InstanceParallel to avoid that on miss-heavy
  /// workloads.
  BatchStrategy Strategy = BatchStrategy::Auto;
  /// Batched dispatch width policy. 0 (auto): a batched Auto-strategy miss
  /// also measures single-threaded versus multicore dispatch (see
  /// chooseBatchStrategy) and every dispatchBatch uses the artifact's
  /// persisted winner. >= 1: pinned -- produce records it, dispatch uses
  /// it. Threading is dispatch metadata: it never changes the emitted C or
  /// the cache key.
  int BatchThreads = 0;
  /// Size budget for the disk tier in bytes; 0 disables GC. After every
  /// store the tier is scanned and whole entries (.c/.so/.meta groups) are
  /// evicted oldest-mtime-first until the total fits (the entry just
  /// stored is never evicted). The scan is O(entries) per store: size the
  /// budget for caches where that is acceptable, or leave GC to an
  /// external janitor for 10^6-entry tiers.
  long CacheMaxBytes = 0;
  /// Master switch for the C compiler. Off: the service serves source-only
  /// artifacts and tuning falls back to the static model (also what
  /// happens when no system compiler exists).
  bool UseCompiler = true;
  /// Background threads servicing prefetch() (started lazily on the first
  /// prefetch, so non-warming services pay nothing).
  int PrefetchWorkers = 2;
  /// Generation-admission cap: at most this many cache misses generate
  /// concurrently; excess misses are shed immediately with
  /// Errc::Overloaded (cache hits and single-flight joins are always
  /// served, and the shed is retry-safe -- the client backs off and the
  /// winner's entry turns the retry into a hit or a join). 0 = unlimited.
  int MaxConcurrentGen = 0;
};

/// Serializes every ServiceConfig field to `key=value` lines (fixed order).
/// Keys: mem-capacity, cache-dir, measure, tune-topk, max-variants,
/// measure-repeats, strategy, batch-threads, cache-max-bytes,
/// use-compiler, prefetch-workers, max-concurrent-gen.
std::string serializeServiceConfig(const ServiceConfig &C);

/// Applies one `key=value` setting to \p C. Returns false (with \p Err) on
/// an unknown key or a malformed value. The slc/sld flag parsers and
/// deserializeServiceConfig() both funnel through here.
bool applyServiceConfigOption(ServiceConfig &C, const std::string &Key,
                              const std::string &Value, std::string &Err);

/// Applies every line of a serializeServiceConfig() document on top of \p C.
bool deserializeServiceConfig(const std::string &Text, ServiceConfig &C,
                              std::string &Err);

/// Per-request knobs riding alongside GenOptions: the batched bit plus
/// optional overrides of the service-wide defaults. Unset optionals fall
/// back to ServiceConfig -- this is how one daemon serves clients that pin
/// different batch strategies or ask for measured tuning.
struct RequestOptions {
  bool Batched = false;
  /// Overrides Config.Strategy. Part of the cache key (for batched
  /// requests), exactly as the config value is.
  std::optional<BatchStrategy> Strategy;
  /// Overrides Config.Measure -- a *produce-time* policy, deliberately
  /// not part of the cache key (matching service-wide Measure: services
  /// with different Measure settings sharing a disk tier also share
  /// entries, first producer wins). An already-cached key is served as-is;
  /// the override only governs how a miss is generated. Check
  /// KernelArtifact::Measured to see what a served artifact actually got.
  std::optional<bool> Measure;
  /// Overrides Config.BatchThreads (same 0 = auto / >= 1 = pinned
  /// semantics). Like Measure a produce-time policy outside the cache key
  /// -- an already-cached artifact keeps its persisted width -- but it
  /// also pins the dispatch width of this request's dispatchBatch call.
  std::optional<int> Threads;
  /// Absolute deadline as an obs::nowUs() stamp; 0 = none. A request whose
  /// deadline has already expired when it would start (or resume) work is
  /// shed with Errc::DeadlineExceeded instead of burning generation time
  /// nobody is waiting for. Cache hits are always served -- the lookup is
  /// cheaper than the check would be worth.
  long DeadlineUs = 0;
};

/// Counter snapshot for observability and test instrumentation.
struct ServiceStats {
  long MemHits = 0;      ///< served from the in-memory LRU
  long DiskHits = 0;     ///< served from the disk tier
  long Misses = 0;       ///< neither tier had the key
  long FlightJoins = 0;  ///< requests that piggybacked on an in-flight miss
  long Generations = 0;  ///< times the generator pipeline actually ran
  long Compilations = 0; ///< C compiler invocations for served artifacts
  long TunerRuns = 0;    ///< measured-tuning sessions
  long Evictions = 0;    ///< memory-tier LRU evictions
  long Errors = 0;       ///< failed requests
  long Prefetches = 0;   ///< prefetch() jobs accepted
  // Cache-tier gauges + disk GC counters (see KernelCache): sampled at
  // stats() time rather than counted here.
  long DiskScans = 0;     ///< full disk-tier scans (stays 1 under GC)
  long DiskEvictions = 0; ///< disk-tier entries evicted by the byte budget
  long MemEntries = 0;    ///< memory-tier occupancy now
  long DiskEntries = 0;   ///< disk-tier entries now (0 without a tier)
  long DiskBytes = 0;     ///< disk-tier total bytes now
  // Resilience counters (PR 7): also counted into Errors.
  long Shed = 0;            ///< misses rejected by the generation cap
  long DeadlineExpired = 0; ///< requests shed because their deadline passed
  long Quarantined = 0;     ///< corrupt disk entries quarantined (.bad)
};

/// stats() as `key=value` lines (the wire protocol's STATS payload).
std::string serializeServiceStats(const ServiceStats &S);

/// Per-request phase breakdown, recorded by every get(): where the answer
/// came from and how long each serving phase took, in wall microseconds.
/// Phases that did not run stay 0 (a memory hit has only CacheUs; only
/// joiners have WaitUs). This is what the wire protocol ships to clients
/// as the optional server-timing field (see serializeRequestTiming) and
/// what sl::Kernel::timing() surfaces.
struct RequestTiming {
  /// Which tier answered: "mem", "disk", "generated", or "joined"
  /// (piggybacked on another request's in-flight generation). Empty on
  /// requests that failed before tier resolution.
  std::string Tier;
  long CacheUs = 0;   ///< memory-tier lookup (under the flight lock)
  long WaitUs = 0;    ///< single-flight wait for the leader's result
  long DiskUs = 0;    ///< disk-tier probe + load (+ recompile if stale .so)
  long GenUs = 0;     ///< generator pipeline incl. measured variant tuning
  long TuneUs = 0;    ///< batch-strategy resolution (Auto measurement)
  long CompileUs = 0; ///< C compiler invocations
  long TotalUs = 0;   ///< whole get(), end to end
};

/// \p T as `key=value` lines (tier=..., cache-us=..., ...): the wire form
/// of the server-timing field. Forward-compatible: deserialize ignores
/// unknown keys, so either side can grow the breakdown first.
std::string serializeRequestTiming(const RequestTiming &T);
bool deserializeRequestTiming(const std::string &Text, RequestTiming &T);

/// What failed, when a request fails. One stable code per failure class,
/// so callers (the client facade, the wire protocol) can branch without
/// parsing message strings; the codes round-trip over the sld protocol as
/// errcName() tokens prefixed to ERR payloads.
enum class Errc {
  None = 0,         ///< no error
  InvalidRequest,   ///< malformed options/overrides (pre-generation)
  ParseError,       ///< the LA source did not parse
  InvalidProgram,   ///< parsed but failed normalization
  GenerationFailed, ///< no variant could be generated
  CompileFailed,    ///< the generated C did not compile
  NoCompiler,       ///< a callable kernel was required, none available
  NotRunnable,      ///< kernel ISA wider than this host
  Internal,         ///< unexpected failure inside the service
  Overloaded,       ///< shed under load; safe to retry after backoff
  DeadlineExceeded, ///< the request's deadline expired; retrying is futile
  InvalidKernelIR,  ///< generated C-IR failed static verification; the
                    ///< service refuses to JIT-compile it (cir/Verify.h)
};

/// Stable kebab-case token for \p E ("parse-error", ...); the wire
/// protocol's error-code vocabulary.
const char *errcName(Errc E);
/// Inverse of errcName; std::nullopt on unknown tokens.
std::optional<Errc> errcByName(const std::string &Name);

/// get() outcome: an artifact or an error code + message.
struct GetResult {
  ArtifactPtr Kernel;
  std::string Error;
  Errc Code = Errc::None;
  /// Phase breakdown of this request (joiners see their own wait, not the
  /// leader's phases; see getImpl).
  RequestTiming Timing;

  explicit operator bool() const { return Kernel != nullptr; }
  const KernelArtifact *operator->() const { return Kernel.get(); }
  const KernelArtifact &operator*() const { return *Kernel; }
};

class KernelService {
public:
  explicit KernelService(ServiceConfig Config = {});
  ~KernelService();

  KernelService(const KernelService &) = delete;
  KernelService &operator=(const KernelService &) = delete;

  /// Serves the kernel for LA source text \p LaSource under \p Options.
  /// Parsing + normalization always run (they define the cache key); HLAC
  /// expansion, tiling, the pass pipeline, and the C compiler only run on a
  /// miss. Safe to call from many threads.
  GetResult get(const std::string &LaSource, const GenOptions &Options,
                bool Batched = false);

  /// As above for an already-lowered program.
  GetResult get(Program P, const GenOptions &Options, bool Batched = false);

  /// get() with per-request overrides (see RequestOptions). A request
  /// pinning a batch strategy addresses the same cache entry a service
  /// configured with that strategy would.
  GetResult get(const std::string &LaSource, const GenOptions &Options,
                const RequestOptions &Req);
  GetResult get(Program P, const GenOptions &Options,
                const RequestOptions &Req);

  /// Asynchronous warming: queues a generate+compile for the request on the
  /// background worker pool and returns immediately. A later get() for the
  /// same key is a cache hit (or joins the in-flight generation -- the pool
  /// funnels into the same single-flight path, so a prefetch racing a live
  /// request never duplicates work). Failures are absorbed into the Errors
  /// counter; warming is best-effort by design.
  void prefetch(const std::string &LaSource, const GenOptions &Options,
                RequestOptions Req = {});

  /// Blocks until every queued prefetch has finished (daemon shutdown and
  /// deterministic tests).
  void drainPrefetches();

  /// Queued-but-unfinished prefetch jobs.
  size_t pendingPrefetches() const;

  /// Batch dispatch (paper Sec. 5): obtains the batched kernel for
  /// \p LaSource and applies it to \p Count contiguous instances per
  /// parameter (instance b of parameter i at Buffers[i] + b*Rows_i*Cols_i).
  /// Blocks are spread across the batch thread pool when the effective
  /// dispatch width -- Req.Threads, else Config.BatchThreads, else the
  /// artifact's tuned BatchThreads -- exceeds 1 (the instance remainder
  /// runs on the calling thread; see runtime/BatchPool.h). Fails when no
  /// compiler is available or the kernel's ISA cannot run on this host.
  GetResult dispatchBatch(const std::string &LaSource,
                          const GenOptions &Options, int Count,
                          double *const *Buffers,
                          const RequestOptions &Req = {});

  ServiceStats stats() const;
  const ServiceConfig &config() const { return Cfg; }

  /// Memory-tier occupancy (for tests and monitoring).
  size_t cachedKernels() const { return Cache.size(); }

private:
  struct Flight {
    std::promise<GetResult> Promise;
    std::shared_future<GetResult> Future;
  };

  GetResult getImpl(Generator G, const RequestOptions &Req);
  ArtifactPtr produce(const std::string &Key, const Generator &G,
                      const RequestOptions &Req, std::string &Err,
                      Errc &Code, RequestTiming &TM);
  bool compilerUsable() const;
  void prefetchWorker();

  ServiceConfig Cfg;
  KernelCache Cache;

  std::mutex FlightMu;
  std::unordered_map<std::string, std::shared_ptr<Flight>> Inflight;

  // Prefetch worker pool: lazily started, torn down by the destructor.
  mutable std::mutex PoolMu;
  std::condition_variable PoolCv;   ///< wakes workers on enqueue/stop
  std::condition_variable IdleCv;   ///< wakes drainPrefetches on completion
  std::deque<std::function<void()>> PrefetchQueue;
  std::vector<std::thread> Workers;
  size_t ActivePrefetches = 0;
  bool PoolStopping = false;

  // Generation-admission gate (Cfg.MaxConcurrentGen): counts leaders
  // inside produce()'s generate phase; excess misses shed immediately.
  std::mutex GenMu;
  int ActiveGens = 0;

  mutable std::atomic<long> MemHits{0}, DiskHits{0}, Misses{0},
      FlightJoins{0}, Generations{0}, Compilations{0}, TunerRuns{0},
      Evictions{0}, Errors{0}, Prefetches{0}, Shed{0}, DeadlineExpired{0};
};

} // namespace service
} // namespace slingen

#endif // SLINGEN_SERVICE_KERNELSERVICE_H
