//===- service/KernelService.cpp ------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/KernelService.h"

#include "isa/ISA.h"
#include "la/Lower.h"
#include "obs/EventLog.h"
#include "obs/Trace.h"
#include "runtime/BatchPool.h"
#include "service/Tuner.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/KeyValue.h"

#include <chrono>
#include <sstream>
#include <thread>

using namespace slingen;
using namespace slingen::service;

KernelService::KernelService(ServiceConfig Config)
    : Cfg(std::move(Config)), Cache(Cfg.MemCapacity, Cfg.CacheDir) {}

KernelService::~KernelService() {
  {
    std::lock_guard<std::mutex> L(PoolMu);
    PoolStopping = true;
    PrefetchQueue.clear(); // queued-but-unstarted warming dies with us
  }
  PoolCv.notify_all();
  for (auto &W : Workers)
    W.join();
}

bool KernelService::compilerUsable() const {
  return Cfg.UseCompiler && runtime::haveSystemCompiler();
}

namespace {

/// Content key of one request: (normalized program, options) fingerprint
/// with the batched bit -- and, for batched requests, the configured batch
/// strategy -- mixed in, as fixed-width hex. Pinned loop/vec requests and
/// Auto requests address distinct entries: an Auto entry's emission is the
/// per-kernel winner, not a fixed strategy.
std::string requestKey(const Generator &G, bool Batched,
                       BatchStrategy Strategy) {
  Fnv1a64 H;
  H.num(G.fingerprint());
  H.boolean(Batched);
  if (Batched)
    H.str(batchStrategyName(Strategy));
  return hexDigest(H.digest());
}

/// The service's registry metrics, resolved once (references are stable
/// for the process lifetime, so recording afterwards is lock-free).
struct ServiceMetrics {
  obs::Histogram &GetUs = obs::Registry::global().histogram("service.get.us");
  obs::Histogram &WaitUs =
      obs::Registry::global().histogram("service.flight-wait.us");
  obs::Histogram &DiskUs =
      obs::Registry::global().histogram("service.disk-load.us");
  obs::Histogram &GenUs =
      obs::Registry::global().histogram("service.generate.us");
  obs::Histogram &TuneUs =
      obs::Registry::global().histogram("service.tune.us");
  obs::Counter &TierMem = obs::Registry::global().counter("service.tier.mem");
  obs::Counter &TierDisk =
      obs::Registry::global().counter("service.tier.disk");
  obs::Counter &TierGenerated =
      obs::Registry::global().counter("service.tier.generated");
  obs::Counter &TierJoined =
      obs::Registry::global().counter("service.tier.joined");
  obs::Counter &Shed = obs::Registry::global().counter("service.shed");
  obs::Counter &DeadlineExpired =
      obs::Registry::global().counter("service.deadline_expired");
  obs::Counter &VerifyRejected =
      obs::Registry::global().counter("cir.verify_rejected");

  static ServiceMetrics &get() {
    static ServiceMetrics M;
    return M;
  }
};

} // namespace

GetResult KernelService::get(const std::string &LaSource,
                             const GenOptions &Options, bool Batched) {
  RequestOptions Req;
  Req.Batched = Batched;
  return get(LaSource, Options, Req);
}

GetResult KernelService::get(Program P, const GenOptions &Options,
                             bool Batched) {
  RequestOptions Req;
  Req.Batched = Batched;
  return get(std::move(P), Options, Req);
}

GetResult KernelService::get(const std::string &LaSource,
                             const GenOptions &Options,
                             const RequestOptions &Req) {
  std::string Err;
  auto P = la::compileLa(LaSource, Err);
  if (!P) {
    ++Errors;
    return {nullptr, "parse error: " + Err, Errc::ParseError};
  }
  return get(std::move(*P), Options, Req);
}

GetResult KernelService::get(Program P, const GenOptions &Options,
                             const RequestOptions &Req) {
  return getImpl(Generator(std::move(P), Options), Req);
}

void KernelService::prefetch(const std::string &LaSource,
                             const GenOptions &Options, RequestOptions Req) {
  std::lock_guard<std::mutex> L(PoolMu);
  if (PoolStopping)
    return;
  ++Prefetches;
  // The job re-enters get(): cache hits are cheap no-ops and misses run
  // under the same single-flight discipline as foreground requests.
  PrefetchQueue.push_back(
      [this, LaSource, Options, Req] { (void)get(LaSource, Options, Req); });
  if (Workers.size() < static_cast<size_t>(std::max(1, Cfg.PrefetchWorkers)))
    Workers.emplace_back([this] { prefetchWorker(); });
  PoolCv.notify_one();
}

void KernelService::prefetchWorker() {
  std::unique_lock<std::mutex> L(PoolMu);
  for (;;) {
    PoolCv.wait(L, [this] { return PoolStopping || !PrefetchQueue.empty(); });
    if (PoolStopping)
      return;
    auto Job = std::move(PrefetchQueue.front());
    PrefetchQueue.pop_front();
    ++ActivePrefetches;
    L.unlock();
    Job();
    L.lock();
    --ActivePrefetches;
    if (PrefetchQueue.empty() && ActivePrefetches == 0)
      IdleCv.notify_all();
  }
}

void KernelService::drainPrefetches() {
  std::unique_lock<std::mutex> L(PoolMu);
  IdleCv.wait(L, [this] {
    return PrefetchQueue.empty() && ActivePrefetches == 0;
  });
}

size_t KernelService::pendingPrefetches() const {
  std::lock_guard<std::mutex> L(PoolMu);
  return PrefetchQueue.size() + ActivePrefetches;
}

GetResult KernelService::getImpl(Generator G, const RequestOptions &Req) {
  if (!G.isValid()) {
    ++Errors;
    return {nullptr, "normalization failed: " + G.error(),
            Errc::InvalidProgram};
  }
  ServiceMetrics &M = ServiceMetrics::get();
  const int64_t StartUs = obs::nowUs();
  RequestTiming TM;
  std::string Key = requestKey(G, Req.Batched,
                               Req.Strategy.value_or(Cfg.Strategy));

  std::shared_ptr<Flight> F;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> L(FlightMu);
    obs::ScopedSpan Lookup("cache-lookup", "service");
    if (ArtifactPtr A = Cache.lookup(Key)) {
      ++MemHits;
      M.TierMem.add();
      TM.Tier = "mem";
      TM.CacheUs = Lookup.finish();
      TM.TotalUs = obs::nowUs() - StartUs;
      M.GetUs.record(TM.TotalUs);
      return {A, {}, Errc::None, std::move(TM)};
    }
    TM.CacheUs = Lookup.finish();
    // Memory tier missed: anything from here on costs real time, so a
    // request whose deadline has already passed is shed now -- nobody is
    // waiting for the answer. (A deadline expiring *mid*-wait or
    // mid-generation still runs to completion and warms the cache; only
    // work that is already pointless at admission is refused.)
    if (Req.DeadlineUs > 0 && obs::nowUs() >= Req.DeadlineUs) {
      ++DeadlineExpired;
      ++Errors;
      M.DeadlineExpired.add();
      TM.TotalUs = obs::nowUs() - StartUs;
      return {nullptr, "deadline expired before the request was admitted",
              Errc::DeadlineExceeded, std::move(TM)};
    }
    auto It = Inflight.find(Key);
    if (It != Inflight.end()) {
      F = It->second;
      ++FlightJoins;
    } else {
      F = std::make_shared<Flight>();
      F->Future = F->Promise.get_future().share();
      Inflight.emplace(Key, F);
      Leader = true;
      ++Misses;
    }
  }
  if (!Leader) {
    // Blocks until the leader publishes. The joiner's timing is its own
    // story -- the wait, not the leader's phases -- so the copied result's
    // breakdown is replaced wholesale.
    obs::ScopedSpan Wait("flight-wait", "service", &M.WaitUs);
    GetResult R = F->Future.get();
    M.TierJoined.add();
    R.Timing = std::move(TM);
    R.Timing.Tier = "joined";
    R.Timing.WaitUs = Wait.finish();
    R.Timing.TotalUs = obs::nowUs() - StartUs;
    M.GetUs.record(R.Timing.TotalUs);
    return R;
  }

  // The flight MUST be resolved on every path: an unfulfilled promise
  // would block current joiners forever and a stale Inflight entry would
  // wedge the key for all future requests.
  std::string Err;
  Errc Code = Errc::Internal;
  ArtifactPtr A;
  try {
    A = produce(Key, G, Req, Err, Code, TM);
  } catch (const std::exception &E) {
    Err = std::string("internal error: ") + E.what();
    Code = Errc::Internal;
  } catch (...) {
    Err = "internal error";
    Code = Errc::Internal;
  }
  if (TM.Tier == "disk")
    M.TierDisk.add();
  else if (A)
    M.TierGenerated.add();
  TM.TotalUs = obs::nowUs() - StartUs;
  M.GetUs.record(TM.TotalUs);
  GetResult R{A, A ? std::string() : Err, A ? Errc::None : Code, TM};
  try {
    std::lock_guard<std::mutex> L(FlightMu);
    if (A)
      Evictions += static_cast<long>(Cache.insert(A));
    else
      ++Errors;
    Inflight.erase(Key);
  } catch (...) {
    // Cache publication failed (allocation); the flight still resolves --
    // joiners get the artifact, only the memory tier misses out.
    std::lock_guard<std::mutex> L(FlightMu);
    Inflight.erase(Key);
  }
  F->Promise.set_value(R);
  return R;
}

ArtifactPtr KernelService::produce(const std::string &Key, const Generator &G,
                                   const RequestOptions &Req,
                                   std::string &Err, Errc &Code,
                                   RequestTiming &TM) {
  ServiceMetrics &M = ServiceMetrics::get();
  const GenOptions &O = G.options();
  const std::string IsaFlags = runtime::isaCompileFlags(*O.Isa);
  const bool Batched = Req.Batched;
  const bool Measure = Req.Measure.value_or(Cfg.Measure);
  bool Compile = compilerUsable();

  // Disk tier first: a complete entry skips generation entirely, and an
  // entry whose .so is missing or stale still skips generation (recompile
  // from the persisted source).
  if (Cache.hasDiskTier() && Cache.onDisk(Key)) {
    obs::ScopedSpan Disk("disk-load", "service", &M.DiskUs);
    std::string DiskErr;
    if (ArtifactPtr A = Cache.loadFromDisk(Key, DiskErr)) {
      ++DiskHits;
      TM.Tier = "disk";
      if (A->Kernel || !Compile) {
        TM.DiskUs = Disk.finish();
        return A;
      }
      auto Fresh = std::make_shared<KernelArtifact>(*A);
      runtime::CompileOptions CO;
      CO.ExtraFlags = IsaFlags;
      Cache.ensureEntryDir(Key);
      CO.KeepSoPath = Cache.soPathFor(Key);
      CO.WithBatchEntry = Batched;
      std::string CompileErr;
      ++Compilations;
      obs::ScopedSpan Cc("compile", "service");
      auto K = runtime::JitKernel::compile(Fresh->CSource, Fresh->FuncName,
                                           Fresh->NumParams, CO, CompileErr);
      TM.CompileUs += Cc.finish();
      TM.DiskUs = Disk.finish() - TM.CompileUs;
      if (!K) {
        Err = "recompile of cached entry failed: " + CompileErr;
        Code = Errc::CompileFailed;
        return nullptr;
      }
      Cache.refreshDiskEntry(Key); // the recompile grew the disk tier
      Fresh->Kernel = std::make_shared<runtime::JitKernel>(std::move(*K));
      return Fresh;
    }
  }

  // Both tiers missed: generation is the expensive phase, so this is where
  // overload and expired deadlines are shed. The admission gate caps how
  // many leaders generate concurrently (Cfg.MaxConcurrentGen); excess
  // misses fail fast with Overloaded -- the client's retry policy backs
  // off, and by then the winner's entry makes the retry a hit or a join.
  if (Req.DeadlineUs > 0 && obs::nowUs() >= Req.DeadlineUs) {
    ++DeadlineExpired;
    M.DeadlineExpired.add();
    Err = "deadline expired before generation started";
    Code = Errc::DeadlineExceeded;
    return nullptr;
  }
  struct GenGate {
    KernelService *S = nullptr;
    ~GenGate() {
      if (S) {
        std::lock_guard<std::mutex> L(S->GenMu);
        --S->ActiveGens;
      }
    }
  } Gate;
  if (Cfg.MaxConcurrentGen > 0) {
    std::lock_guard<std::mutex> L(GenMu);
    if (ActiveGens >= Cfg.MaxConcurrentGen) {
      ++Shed;
      M.Shed.add();
      Err = "service overloaded: generation capacity exhausted, retry";
      Code = Errc::Overloaded;
      return nullptr;
    }
    ++ActiveGens;
    Gate.S = this;
  }
  if (fault::anyArmed()) {
    int SlowMs = fault::paramMs("slow-generate");
    if (fault::shouldFire("slow-generate"))
      std::this_thread::sleep_for(
          std::chrono::milliseconds(SlowMs > 0 ? SlowMs : 200));
  }

  // Generate. Measured tuning needs a compiler; otherwise (and on explicit
  // request) the static cost model ranks the variants. GenUs covers the
  // whole block, including measured variant tuning when Measure is on.
  ++Generations;
  TM.Tier = "generated";
  obs::ScopedSpan Gen("generate", "service", &M.GenUs);
  TuneOptions TO;
  TO.TopK = Cfg.TuneTopK;
  TO.MaxVariants = Cfg.MaxVariants;
  TO.Measure.Repeats = Cfg.MeasureRepeats;
  TO.ExtraFlags = IsaFlags;
  std::optional<TuneResult> Tuned;
  if (Measure && Compile) {
    ++TunerRuns;
    Tuned = tuneKernel(G, TO, Err);
  } else {
    TuneResult Static;
    if (auto R = G.best(Cfg.MaxVariants))
      Static.Result = std::move(*R);
    else {
      Err = "generation failed (infeasible variant?)";
      Code = Errc::GenerationFailed;
      TM.GenUs = Gen.finish();
      return nullptr;
    }
    Tuned = std::move(Static);
  }
  TM.GenUs = Gen.finish();
  if (!Tuned) {
    Code = Errc::GenerationFailed;
    return nullptr;
  }

  // Batched requests resolve the configured strategy to a concrete one:
  // the instance-parallel forms need vector lanes, and Auto picks per
  // kernel -- measured where the environment allows, by the static model
  // otherwise -- along with the dispatch width (threads) when the policy
  // is auto. The artifact records the strategy actually emitted: when the
  // instance-parallel emissions cannot widen, they degrade to the scalar
  // loop and so does the label.
  BatchStrategy Strat = BatchStrategy::ScalarLoop;
  int BatchThreads = 1;
  std::string BatchedSource;
  if (Batched) {
    const int ThreadsPolicy = Req.Threads.value_or(Cfg.BatchThreads);
    Strat = Req.Strategy.value_or(Cfg.Strategy);
    if ((Strat == BatchStrategy::InstanceParallel ||
         Strat == BatchStrategy::InstanceParallelFused) &&
        O.Isa->Nu < 2)
      Strat = BatchStrategy::ScalarLoop;
    if (Strat == BatchStrategy::Auto) {
      obs::ScopedSpan Tune("tune-batch", "service", &M.TuneUs);
      BatchChoice BC = chooseBatchStrategy(Tuned->Result, O, TO, Compile,
                                           ThreadsPolicy);
      TM.TuneUs = Tune.finish();
      if (BC.Measured)
        ++TunerRuns;
      Strat = BC.Strategy;
      BatchThreads = BC.Threads;
      BatchedSource = std::move(BC.ChosenSource); // winning TU, when emitted
    } else {
      // Pinned strategies keep the pinned (or single-threaded) width; only
      // Auto measures threading.
      BatchThreads = ThreadsPolicy >= 1 ? ThreadsPolicy : 1;
    }
    if (Strat == BatchStrategy::InstanceParallelFused &&
        BatchedSource.empty()) {
      bool UsedVector = false;
      BatchedSource = emitBatchedVectorFusedC(Tuned->Result, &O, &UsedVector);
      if (!UsedVector)
        Strat = BatchStrategy::ScalarLoop;
    }
    if (Strat == BatchStrategy::InstanceParallel && BatchedSource.empty()) {
      bool UsedVector = false;
      BatchedSource = emitBatchedVectorC(Tuned->Result, &O, &UsedVector);
      if (!UsedVector)
        Strat = BatchStrategy::ScalarLoop;
    }
    if (Strat == BatchStrategy::ScalarLoop)
      BatchedSource = emitBatchedC(Tuned->Result);
  }

  // The verifier gate: no freshly generated C-IR reaches the JIT without
  // passing cir::verify -- the single-instance kernel and every widened
  // batch variant the emission lowers. A violation is a generator or pass
  // bug; it is refused as a structured error, never shipped as a kernel
  // that could fault inside a dlopen'd object. (The disk-recompile path
  // above re-compiles persisted C source that was generated from verified
  // IR; there is no IR left to check there.) The "corrupt-ir" fault point
  // deliberately breaks the IR so tests can drive this path end to end.
  if (fault::shouldFire("corrupt-ir"))
    Tuned->Result.Func.RegIsVec.push_back(false);
  if (auto VE = verifyEmittedIR(Tuned->Result, &O, Batched, Strat)) {
    M.VerifyRejected.add();
    obs::EventLog::global().log(
        obs::EventLog::Level::Error, obs::currentTraceId(), "verify_rejected",
        {{"fn", VE->Fn},
         {"kind", cir::verifyKindName(VE->Kind)},
         {"detail", VE->Detail},
         {"instr", std::to_string(VE->InstrIndex)}});
    Err = "C-IR verification failed: " + VE->str();
    Code = Errc::InvalidKernelIR;
    return nullptr;
  }

  auto A = std::make_shared<KernelArtifact>();
  A->Key = Key;
  A->FuncName = Tuned->Result.Func.Name;
  A->IsaName = O.Isa->Name;
  A->NumParams = static_cast<int>(Tuned->Result.Func.Params.size());
  A->Batched = Batched;
  A->Strategy = Strat;
  A->BatchThreads = BatchThreads;
  A->Choice = Tuned->Result.Choice;
  A->StaticCost = Tuned->Result.Cost;
  A->Measured = Tuned->Measured;
  A->MeasuredCycles = Tuned->MedianCycles;
  A->CSource = Batched ? std::move(BatchedSource) : emitC(Tuned->Result);

  if (Compile) {
    runtime::CompileOptions CO;
    CO.ExtraFlags = IsaFlags;
    CO.WithBatchEntry = Batched;
    if (Cache.hasDiskTier()) {
      Cache.ensureEntryDir(Key);
      CO.KeepSoPath = Cache.soPathFor(Key);
    }
    std::string CompileErr;
    ++Compilations;
    obs::ScopedSpan Cc("compile", "service");
    auto K = runtime::JitKernel::compile(A->CSource, A->FuncName,
                                         A->NumParams, CO, CompileErr);
    TM.CompileUs += Cc.finish();
    if (!K) {
      Err = "generated C failed to compile: " + CompileErr;
      Code = Errc::CompileFailed;
      return nullptr;
    }
    A->Kernel = std::make_shared<runtime::JitKernel>(std::move(*K));
  }

  if (Cache.hasDiskTier()) {
    std::string StoreErr;
    // Persistence failure degrades to memory-only serving; the request
    // itself still succeeds.
    if (Cache.storeToDisk(*A, StoreErr) && Cfg.CacheMaxBytes > 0)
      Cache.enforceDiskBudget(Cfg.CacheMaxBytes, A->Key);
  }
  return A;
}

GetResult KernelService::dispatchBatch(const std::string &LaSource,
                                       const GenOptions &Options, int Count,
                                       double *const *Buffers,
                                       const RequestOptions &ReqIn) {
  RequestOptions Req = ReqIn;
  Req.Batched = true;
  GetResult R = get(LaSource, Options, Req);
  if (!R)
    return R;
  if (!R->isCallable()) {
    ++Errors;
    return {nullptr, "batched kernel is source-only (no compiler available)",
            Errc::NoCompiler};
  }
  if (!R->hostRunnable()) {
    ++Errors;
    return {nullptr,
            "kernel targets " + R->IsaName + ", which this host cannot run",
            Errc::NotRunnable};
  }
  // The 64-byte base-pointer contract the verifier's alignment analysis
  // assumes is checked, not asserted, at this boundary: these buffers come
  // from the caller, and a misaligned one would be UB inside the
  // aligned-move kernels.
  if (int P = R->Kernel->misalignedBatchParam(Buffers); P >= 0) {
    ++Errors;
    return {nullptr,
            formatf("batch base pointer %d is not 64-byte aligned (use "
                    "support/AlignedBuffer.h for batch storage)",
                    P),
            Errc::InvalidRequest};
  }
  // Dispatch width: per-request pin, else service pin, else the artifact's
  // tuned winner (1 when tuning found threading unprofitable).
  int Threads = Req.Threads.value_or(Cfg.BatchThreads);
  if (Threads <= 0)
    Threads = R->BatchThreads;
  obs::ScopedSpan Dispatch(
      "batch-dispatch", "service",
      &obs::Registry::global().histogram("service.batch-dispatch.us"));
  runtime::callBatchParallel(*R->Kernel, Count, Buffers,
                             isaByName(R->IsaName.c_str()).Nu, Threads);
  return R;
}

const char *service::errcName(Errc E) {
  switch (E) {
  case Errc::None:
    return "ok";
  case Errc::InvalidRequest:
    return "invalid-request";
  case Errc::ParseError:
    return "parse-error";
  case Errc::InvalidProgram:
    return "invalid-program";
  case Errc::GenerationFailed:
    return "generation-failed";
  case Errc::CompileFailed:
    return "compile-failed";
  case Errc::NoCompiler:
    return "no-compiler";
  case Errc::NotRunnable:
    return "not-runnable";
  case Errc::Overloaded:
    return "overloaded";
  case Errc::DeadlineExceeded:
    return "deadline-exceeded";
  case Errc::InvalidKernelIR:
    return "invalid-kernel-ir";
  case Errc::Internal:
    return "internal";
  }
  return "internal";
}

std::optional<Errc> service::errcByName(const std::string &Name) {
  for (Errc E : {Errc::None, Errc::InvalidRequest, Errc::ParseError,
                 Errc::InvalidProgram, Errc::GenerationFailed,
                 Errc::CompileFailed, Errc::NoCompiler, Errc::NotRunnable,
                 Errc::Overloaded, Errc::DeadlineExceeded,
                 Errc::InvalidKernelIR, Errc::Internal})
    if (Name == errcName(E))
      return E;
  return std::nullopt;
}

ServiceStats KernelService::stats() const {
  ServiceStats S;
  S.MemHits = MemHits.load();
  S.DiskHits = DiskHits.load();
  S.Misses = Misses.load();
  S.FlightJoins = FlightJoins.load();
  S.Generations = Generations.load();
  S.Compilations = Compilations.load();
  S.TunerRuns = TunerRuns.load();
  S.Evictions = Evictions.load();
  S.Errors = Errors.load();
  S.Prefetches = Prefetches.load();
  S.DiskScans = static_cast<long>(Cache.diskScans());
  S.DiskEvictions = Cache.diskEvictions();
  S.MemEntries = static_cast<long>(Cache.size());
  S.DiskEntries = static_cast<long>(Cache.diskEntries());
  S.DiskBytes = Cache.diskBytes();
  S.Shed = Shed.load();
  S.DeadlineExpired = DeadlineExpired.load();
  S.Quarantined = Cache.quarantined();
  return S;
}

std::string service::serializeServiceStats(const ServiceStats &S) {
  std::stringstream SS;
  SS << "mem-hits=" << S.MemHits << "\n";
  SS << "disk-hits=" << S.DiskHits << "\n";
  SS << "misses=" << S.Misses << "\n";
  SS << "flight-joins=" << S.FlightJoins << "\n";
  SS << "generations=" << S.Generations << "\n";
  SS << "compilations=" << S.Compilations << "\n";
  SS << "tuner-runs=" << S.TunerRuns << "\n";
  SS << "evictions=" << S.Evictions << "\n";
  SS << "errors=" << S.Errors << "\n";
  SS << "prefetches=" << S.Prefetches << "\n";
  SS << "disk-scans=" << S.DiskScans << "\n";
  SS << "disk-evictions=" << S.DiskEvictions << "\n";
  SS << "mem-entries=" << S.MemEntries << "\n";
  SS << "disk-entries=" << S.DiskEntries << "\n";
  SS << "disk-bytes=" << S.DiskBytes << "\n";
  SS << "shed=" << S.Shed << "\n";
  SS << "deadline-expired=" << S.DeadlineExpired << "\n";
  SS << "quarantined=" << S.Quarantined << "\n";
  return SS.str();
}

std::string service::serializeRequestTiming(const RequestTiming &T) {
  std::stringstream SS;
  SS << "tier=" << T.Tier << "\n";
  SS << "cache-us=" << T.CacheUs << "\n";
  SS << "wait-us=" << T.WaitUs << "\n";
  SS << "disk-us=" << T.DiskUs << "\n";
  SS << "gen-us=" << T.GenUs << "\n";
  SS << "tune-us=" << T.TuneUs << "\n";
  SS << "compile-us=" << T.CompileUs << "\n";
  SS << "total-us=" << T.TotalUs << "\n";
  return SS.str();
}

bool service::deserializeRequestTiming(const std::string &Text,
                                       RequestTiming &T) {
  bool SawAny = false;
  for (auto &KV : parseKeyValueLines(Text)) {
    SawAny = true;
    if (KV.first == "tier")
      T.Tier = KV.second;
    else if (KV.first == "cache-us")
      T.CacheUs = atol(KV.second.c_str());
    else if (KV.first == "wait-us")
      T.WaitUs = atol(KV.second.c_str());
    else if (KV.first == "disk-us")
      T.DiskUs = atol(KV.second.c_str());
    else if (KV.first == "gen-us")
      T.GenUs = atol(KV.second.c_str());
    else if (KV.first == "tune-us")
      T.TuneUs = atol(KV.second.c_str());
    else if (KV.first == "compile-us")
      T.CompileUs = atol(KV.second.c_str());
    else if (KV.first == "total-us")
      T.TotalUs = atol(KV.second.c_str());
    // Unknown keys are skipped: a newer server may ship a richer
    // breakdown than this client knows.
  }
  return SawAny;
}

//===----------------------------------------------------------------------===//
// ServiceConfig (de)serialization -- the sld/slc flag parsers and the wire
// protocol all speak this one key set.
//===----------------------------------------------------------------------===//

namespace {

bool parseLong(const std::string &Value, long &Out) {
  if (Value.empty())
    return false;
  for (char C : Value)
    if (!isdigit(static_cast<unsigned char>(C)))
      return false;
  Out = atol(Value.c_str());
  return true;
}

bool parseConfigInt(const std::string &Value, int &Out) {
  long L;
  if (!parseLong(Value, L))
    return false;
  Out = static_cast<int>(L);
  return true;
}

bool parseConfigBool(const std::string &Value, bool &Out) {
  if (Value == "0" || Value == "false") {
    Out = false;
    return true;
  }
  if (Value == "1" || Value == "true") {
    Out = true;
    return true;
  }
  return false;
}

} // namespace

std::string service::serializeServiceConfig(const ServiceConfig &C) {
  std::stringstream SS;
  SS << "mem-capacity=" << C.MemCapacity << "\n";
  SS << "cache-dir=" << C.CacheDir << "\n";
  SS << "measure=" << (C.Measure ? 1 : 0) << "\n";
  SS << "tune-topk=" << C.TuneTopK << "\n";
  SS << "max-variants=" << C.MaxVariants << "\n";
  SS << "measure-repeats=" << C.MeasureRepeats << "\n";
  SS << "strategy=" << batchStrategyName(C.Strategy) << "\n";
  SS << "batch-threads=" << C.BatchThreads << "\n";
  SS << "cache-max-bytes=" << C.CacheMaxBytes << "\n";
  SS << "use-compiler=" << (C.UseCompiler ? 1 : 0) << "\n";
  SS << "prefetch-workers=" << C.PrefetchWorkers << "\n";
  SS << "max-concurrent-gen=" << C.MaxConcurrentGen << "\n";
  return SS.str();
}

bool service::applyServiceConfigOption(ServiceConfig &C,
                                       const std::string &Key,
                                       const std::string &Value,
                                       std::string &Err) {
  auto BadValue = [&] {
    Err = "bad value '" + Value + "' for option " + Key;
    return false;
  };
  if (Key == "mem-capacity") {
    long L;
    if (!parseLong(Value, L) || L <= 0)
      return BadValue();
    C.MemCapacity = static_cast<size_t>(L);
    return true;
  }
  if (Key == "cache-dir") {
    C.CacheDir = Value;
    return true;
  }
  if (Key == "measure")
    return parseConfigBool(Value, C.Measure) || BadValue();
  if (Key == "tune-topk")
    return parseConfigInt(Value, C.TuneTopK) || BadValue();
  if (Key == "max-variants")
    return parseConfigInt(Value, C.MaxVariants) || BadValue();
  if (Key == "measure-repeats")
    return parseConfigInt(Value, C.MeasureRepeats) || BadValue();
  if (Key == "strategy") {
    auto S = batchStrategyByName(Value);
    if (!S) {
      Err = "bad value '" + Value + "' for option strategy "
            "(loop, vec, fused, or auto)";
      return false;
    }
    C.Strategy = *S;
    return true;
  }
  if (Key == "batch-threads") {
    // 0 = auto (measure and use the per-kernel winner); k >= 1 pins the
    // dispatch width. The 1024 ceiling matches the wire protocol's
    // validation bound -- a wider value would persist fine locally and
    // then make the entry undecodable for remote clients.
    long L;
    if (!parseLong(Value, L) || L < 0 || L > 1024)
      return BadValue();
    C.BatchThreads = static_cast<int>(L);
    return true;
  }
  if (Key == "cache-max-bytes") {
    long L;
    if (!parseLong(Value, L) || L < 0)
      return BadValue();
    C.CacheMaxBytes = L;
    return true;
  }
  if (Key == "use-compiler")
    return parseConfigBool(Value, C.UseCompiler) || BadValue();
  if (Key == "prefetch-workers")
    return parseConfigInt(Value, C.PrefetchWorkers) || BadValue();
  if (Key == "max-concurrent-gen") {
    long L;
    if (!parseLong(Value, L) || L < 0)
      return BadValue();
    C.MaxConcurrentGen = static_cast<int>(L);
    return true;
  }
  Err = "unknown option '" + Key + "'";
  return false;
}

bool service::deserializeServiceConfig(const std::string &Text,
                                       ServiceConfig &C, std::string &Err) {
  for (auto &KV : parseKeyValueLines(Text))
    if (!applyServiceConfigOption(C, KV.first, KV.second, Err))
      return false;
  return true;
}
