//===- service/KernelCache.h - content-addressed kernel cache -------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-tier cache behind KernelService. Entries are immutable
/// KernelArtifacts addressed by a stable content key (see
/// Generator::fingerprint()):
///
///   memory tier  a thread-safe LRU of shared_ptr<const KernelArtifact>;
///                eviction only drops the cache reference, in-flight users
///                keep the kernel loaded.
///   disk tier    optional directory persisting, per key, the emitted C
///                (`ab/cdef...c`), the compiled shared object
///                (`ab/cdef...so`) and a metadata file (`ab/cdef...meta`)
///                with the function name, arity, winning choice vector, and
///                tuning provenance -- enough for a fresh process to
///                re-serve the kernel without generating or compiling
///                anything. Entries are sharded into 256 subdirectories by
///                the first two hex digits of the key, so a production
///                cache of 10^5+ kernels never puts every file in one flat
///                directory; flat pre-shard entries (`<key>.meta` at the
///                top level) are still read transparently.
///
/// The cache never invokes the generator or the compiler itself; the
/// service compiles straight to soPathFor(key) when persisting.
///
/// Crash safety: storeToDisk records an FNV-1a content hash of the C
/// source (`c-hash=`) and of the published .so bytes (`so-hash=`) in the
/// .meta. loadFromDisk re-hashes what it reads and, on mismatch (torn
/// write that slipped past rename -- e.g. a crashed writer on a filesystem
/// without atomic rename durability, or plain disk corruption),
/// quarantines the whole entry: every file is renamed to `<file>.bad`
/// (invisible to lookups and GC), the load reports a miss, and the
/// service regenerates and re-stores a clean entry. Entries written
/// before hashing load unverified, exactly as before.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_SERVICE_KERNELCACHE_H
#define SLINGEN_SERVICE_KERNELCACHE_H

#include "runtime/Jit.h"
#include "slingen/BatchStrategy.h"

#include <atomic>
#include <cassert>
#include <filesystem>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace slingen {
namespace service {

/// One served kernel: the emitted C, its provenance, and (when a compiler
/// was available) the loaded shared object. Immutable once published.
struct KernelArtifact {
  std::string Key;      ///< 16-hex content key
  std::string CSource;  ///< full translation unit (batched TU when Batched)
  std::string FuncName; ///< base kernel symbol
  std::string IsaName;  ///< target ISA name ("avx", ...)
  int NumParams = 0;
  bool Batched = false;          ///< has the `<func>_batch` entry point
  /// How the `<func>_batch` entry iterates instances (meaningful only when
  /// Batched). Never Auto on a published artifact: the service resolves
  /// Auto to the winning concrete strategy before publication, and the
  /// resolution round-trips through the disk tier's .meta so a warmed
  /// cache serves the tuned variant without re-measuring.
  BatchStrategy Strategy = BatchStrategy::ScalarLoop;
  /// Resolved batched dispatch width (>= 1, meaningful only when Batched):
  /// how many threads dispatchBatch spreads AoSoA blocks across by
  /// default. Chosen by chooseBatchStrategy (measured on multicore hosts,
  /// 1 otherwise), persisted as `threads=` in the disk tier's .meta, and
  /// overridable per request/config at dispatch time -- it is dispatch
  /// metadata, not part of the emitted C or the cache key.
  int BatchThreads = 1;
  std::vector<int> Choice;       ///< winning per-HLAC variant indices
  long StaticCost = 0;           ///< static model estimate (cycles)
  bool Measured = false;         ///< Choice was picked by measurement
  double MeasuredCycles = 0.0;   ///< median cycles of the winner (if Measured)
  std::shared_ptr<const runtime::JitKernel> Kernel; ///< null: source-only

  bool isCallable() const { return Kernel != nullptr; }

  /// True when this host can execute the target ISA. A callable artifact
  /// for a wider ISA is still served (shared caches are built on machines
  /// wider than the fleet) but invoking it here would fault -- check this
  /// before call()/callBatch() whenever the request ISA is not hostIsa().
  bool hostRunnable() const;

  /// Single-instance dispatch (requires isCallable() && hostRunnable()).
  void call(double *const *Buffers) const {
    assert(Kernel && "call() on a source-only artifact");
    Kernel->call(Buffers);
  }

  /// Batched dispatch over \p Count contiguous instances per parameter
  /// (requires a Batched, callable artifact).
  void callBatch(int Count, double *const *Buffers) const {
    assert(Kernel && Kernel->hasBatchEntry() &&
           "callBatch() needs a batched artifact");
    Kernel->callBatch(Count, Buffers);
  }
};

using ArtifactPtr = std::shared_ptr<const KernelArtifact>;

class KernelCache {
public:
  /// \p Capacity bounds the memory tier (>= 1); \p DiskDir enables the disk
  /// tier when non-empty (created on demand).
  explicit KernelCache(size_t Capacity, std::string DiskDir = "");

  /// Memory-tier lookup; refreshes LRU position on hit.
  ArtifactPtr lookup(const std::string &Key);

  /// Publishes \p A in the memory tier. Returns the number of entries
  /// evicted to make room.
  size_t insert(const ArtifactPtr &A);

  size_t size() const;
  size_t capacity() const { return Cap; }

  bool hasDiskTier() const { return !Dir.empty(); }
  const std::string &diskDir() const { return Dir; }

  /// Canonical (sharded) entry paths: `<dir>/<key[0:2]>/<key[2:]>.{c,so,
  /// meta}`. These name where new entries go; reads fall back to the flat
  /// pre-shard layout when no sharded entry exists.
  std::string cPathFor(const std::string &Key) const;
  std::string soPathFor(const std::string &Key) const;
  std::string metaPathFor(const std::string &Key) const;

  /// Creates the shard subdirectory for \p Key so callers can compile
  /// straight to soPathFor(Key) before the entry itself is stored.
  void ensureEntryDir(const std::string &Key) const;

  /// True when the disk tier has a complete source+meta entry for \p Key
  /// (sharded or flat).
  bool onDisk(const std::string &Key) const;

  /// Reconstructs an artifact from the disk tier: reads meta + C and, when
  /// `<key>.so` is present and loadable, attaches the kernel (the file
  /// stays owned by the cache directory). Returns null and fills \p Err
  /// when no usable entry exists. Entries whose `c-hash`/`so-hash` meta
  /// keys disagree with the bytes on disk are quarantined (renamed to
  /// `.bad`, counted in quarantined()) and reported as a miss, so corrupt
  /// content is never parsed or dlopen'd.
  ArtifactPtr loadFromDisk(const std::string &Key, std::string &Err);

  /// Disk entries quarantined over this cache's lifetime (corruption
  /// detected at load; each regenerates on the next miss).
  long quarantined() const { return NumQuarantined.load(); }

  /// Persists source + metadata for \p A (the .so, if any, was already
  /// published at soPathFor(key) by JitKernel::compile). Both files are
  /// written via rename so concurrent readers never see a torn entry.
  bool storeToDisk(const KernelArtifact &A, std::string &Err);

  /// Size-bounded GC for the disk tier: while the tier's total byte size
  /// (sharded and flat entries alike) exceeds \p MaxBytes, whole entries
  /// -- the .c/.so/.meta file group of one key -- are evicted
  /// oldest-mtime-first. \p KeepKey (normally the entry just stored) is
  /// never evicted, so the triggering store survives even under a budget
  /// smaller than one entry. Memory-tier references are untouched:
  /// already-loaded kernels keep serving, the key just regenerates on the
  /// next cold miss. Returns the number of entries evicted. MaxBytes <= 0
  /// or no disk tier is a no-op.
  ///
  /// Cost: the first call scans the tier once to build an incremental size
  /// index (per-entry bytes + an mtime-ordered eviction queue); every later
  /// call is O(evicted log entries) -- stores fold their own files into the
  /// index (see storeToDisk/refreshDiskEntry) and nothing is re-statted.
  /// The index is an in-process view: entries written by *other* processes
  /// after the scan are invisible until a fresh process scans again, so
  /// multi-writer tiers should leave GC to one owning daemon.
  size_t enforceDiskBudget(long MaxBytes, const std::string &KeepKey);

  /// Full disk-tier scans performed so far for budget accounting -- test
  /// instrumentation proving GC is incremental: after the first
  /// enforceDiskBudget this stays at 1 no matter how many stores follow.
  size_t diskScans() const;

  /// Cumulative disk-tier entries evicted by enforceDiskBudget over the
  /// cache's lifetime (the per-call return value, summed).
  long diskEvictions() const;

  /// Disk-tier occupancy gauges from the incremental size index. The first
  /// call on a tier that was never scanned performs the one-time scan
  /// (folded into the same diskScans() count GC would pay anyway); without
  /// a disk tier both report 0.
  size_t diskEntries() const;
  long diskBytes() const;

  /// Re-stats one entry's on-disk files (both layouts) and folds the result
  /// into the incremental accounting. For writes that bypass storeToDisk,
  /// e.g. recompiling a cached entry's missing .so in place. No-op before
  /// the first scan or without a disk tier.
  void refreshDiskEntry(const std::string &Key);

private:
  struct Slot {
    ArtifactPtr Artifact;
    std::list<std::string>::iterator LruIt;
  };

  /// On-disk file set of one entry, resolved to whichever layout (sharded
  /// first, then flat) actually holds it.
  struct EntryPaths {
    std::string C, So, Meta;
  };
  EntryPaths pathsFor(const std::string &Key) const; ///< canonical (sharded)
  EntryPaths flatPathsFor(const std::string &Key) const;
  /// Moves every on-disk file of \p Key (both layouts) aside to
  /// `<file>.bad` and drops the entry from the size index. The .bad
  /// extension keeps the evidence for postmortems while making the entry
  /// invisible to resolveOnDisk and GC alike.
  void quarantineEntry(const std::string &Key);
  /// Layout holding \p Key's meta+C, preferring sharded; false when neither
  /// layout has a complete entry.
  bool resolveOnDisk(const std::string &Key, EntryPaths &Out) const;

  /// One indexed disk entry: the files carrying its bytes (across both
  /// layouts), their total, and the newest file mtime (the eviction age).
  struct DiskEntry {
    std::vector<std::pair<std::string, uintmax_t>> Files;
    uintmax_t Bytes = 0;
    std::filesystem::file_time_type Mtime =
        std::filesystem::file_time_type::min();
  };

  void scanDiskTierLocked() const; ///< const: the index is lazy cache state
  /// Drops \p Key from the index, re-stats its files, re-inserts what
  /// exists (requires DiskMu, DiskIndexed).
  void indexDiskEntryLocked(const std::string &Key);
  void dropFromIndexLocked(const std::string &Key);

  mutable std::mutex Mu;
  size_t Cap;
  std::string Dir;
  std::list<std::string> Lru; ///< front = most recent
  std::unordered_map<std::string, Slot> Map;

  // Incremental disk-tier size accounting (all guarded by DiskMu; see
  // enforceDiskBudget).
  // The index doubles as lazily-built gauge state (diskEntries/diskBytes
  // may trigger the first scan from const context), hence mutable.
  std::atomic<long> NumQuarantined{0};

  mutable std::mutex DiskMu;
  mutable bool DiskIndexed = false;
  mutable uintmax_t DiskTotal = 0;
  mutable size_t NumDiskScans = 0;
  long NumDiskEvictions = 0;
  mutable std::unordered_map<std::string, DiskEntry> DiskIndex;
  /// (mtime, key) -> key: the eviction queue, oldest first.
  mutable std::map<std::pair<std::filesystem::file_time_type, std::string>,
                   std::string>
      DiskByAge;
};

} // namespace service
} // namespace slingen

#endif // SLINGEN_SERVICE_KERNELCACHE_H
