//===- service/Tuner.cpp --------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Tuner.h"

#include "expr/Operand.h"
#include "isa/ISA.h"
#include "runtime/Jit.h"
#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace slingen;
using namespace slingen::service;

namespace {

/// Deterministic, structure-respecting data for one instance of \p P:
/// SPD for positive-definite operands, well-conditioned triangular for
/// triangular ones, uniform [1, 2) (positive, denormal-free) otherwise --
/// so the div/sqrt chains the cost comparison hinges on run on numerically
/// realistic values instead of NaNs from e.g. sqrt of a negative.
void fillInstance(const Operand *P, Rng &Rand, double *Out) {
  const int Rows = P->Rows, Cols = P->Cols;
  if (P->PosDef && Rows == Cols && Rows > 1) {
    std::vector<double> G(static_cast<size_t>(Rows) * Rows);
    for (double &V : G)
      V = Rand.uniform(-1.0, 1.0);
    for (int I = 0; I < Rows; ++I)
      for (int J = 0; J < Rows; ++J) {
        double Acc = I == J ? Rows : 0.0;
        for (int K = 0; K < Rows; ++K)
          Acc += G[K * Rows + I] * G[K * Rows + J];
        Out[I * Rows + J] = Acc;
      }
    return;
  }
  if (Rows == Cols && Rows > 1 &&
      (P->Structure == StructureKind::LowerTriangular ||
       P->Structure == StructureKind::UpperTriangular)) {
    bool Lower = P->Structure == StructureKind::LowerTriangular;
    for (int I = 0; I < Rows; ++I)
      for (int J = 0; J < Rows; ++J) {
        bool Stored = I == J || (Lower ? J < I : J > I);
        Out[I * Rows + J] =
            I == J ? Rand.uniform(1.0, 2.0) + 2.0
                   : (Stored ? Rand.uniform(-1.0, 1.0) : 0.0);
      }
    return;
  }
  for (long I = 0; I < static_cast<long>(Rows) * Cols; ++I)
    Out[I] = Rand.uniform(1.0, 2.0);
}

/// Deterministic parameter buffers (see fillInstance) refilled identically
/// before each candidate so in-place kernels (which overwrite their
/// operands between repeats) are ranked on equal inputs.
void fillBuffers(const GenResult &R, std::vector<std::vector<double>> &Store,
                 std::vector<double *> &Bufs) {
  Store.clear();
  Bufs.clear();
  uint64_t Seed = 0x5eedULL;
  for (const Operand *P : R.Func.Params) {
    Rng Rand(Seed += 0x9e3779b97f4a7c15ULL);
    auto &Buf = Store.emplace_back(static_cast<size_t>(P->Rows) * P->Cols);
    fillInstance(P, Rand, Buf.data());
  }
  for (auto &S : Store)
    Bufs.push_back(S.data());
}

} // namespace

BatchChoice service::chooseBatchStrategy(const GenResult &R,
                                         const GenOptions &O,
                                         const TuneOptions &T,
                                         bool AllowCompile) {
  BatchChoice C;
  const int Nu = O.Isa->Nu;
  if (Nu < 2)
    return C; // no lanes to parallelize across

  // Static cost model: one AoSoA block amortizes the widened kernel (same
  // instruction count as the scalar kernel, vector-width issue) over Nu
  // instances, plus two layout transposes per element. Compare per
  // instance against the scalar-loop estimate.
  long SumElems = 0;
  for (const Operand *P : R.Func.Params)
    SumElems += static_cast<long>(P->Rows) * P->Cols;
  std::optional<ScalarRecompile> Scalar = recompileScalar(R, &O);
  if (!Scalar)
    return C; // widening infeasible: the loop is the only strategy
  long LoopPerInst = staticCost(R.Func);
  long VecPerInst = staticCost(Scalar->Func) / Nu + 2 * SumElems;
  C.Strategy = VecPerInst < LoopPerInst ? BatchStrategy::InstanceParallel
                                        : BatchStrategy::ScalarLoop;

  // The instance-parallel emission is needed for measurement anyway (and,
  // if it wins, for publication); if it cannot actually widen -- it falls
  // back to the scalar loop -- there is only one strategy to serve. The
  // ScalarRecompile above is reused so Stage 2/3 runs once, not twice.
  bool UsedVector = false;
  std::string VecSource = emitBatchedVectorC(R, &O, &UsedVector, &*Scalar);
  if (!UsedVector) {
    C.Strategy = BatchStrategy::ScalarLoop;
    return C;
  }

  // Measure when possible; running a wider ISA than the host executes
  // would fault, not measure.
  if (!AllowCompile || !runtime::haveSystemCompiler() ||
      !runtime::haveCycleCounter() || Nu > hostIsa().Nu) {
    if (C.Strategy == BatchStrategy::InstanceParallel)
      C.VecSource = std::move(VecSource);
    return C;
  }

  // Not divisible by any supported Nu (2, 4, 8), so the timed batch
  // includes the scalar remainder path the production ABI pays too.
  const int Count = 67;
  const std::string FuncName = R.Func.Name;
  const int NumParams = static_cast<int>(R.Func.Params.size());
  runtime::CompileOptions CO;
  CO.ExtraFlags = T.ExtraFlags;
  CO.WithBatchEntry = true;

  auto MeasureStrategy = [&](const std::string &Src,
                             double &CyclesOut) -> bool {
    std::string Err;
    auto K = runtime::JitKernel::compile(Src, FuncName, NumParams, CO, Err);
    if (!K)
      return false;
    // Deterministic structure-respecting per-instance data (see
    // fillInstance), identical for both strategies; inputs are refilled
    // every run so in-place kernels are timed on unfactored data.
    std::vector<std::vector<double>> Store;
    std::vector<double *> Bufs;
    uint64_t Seed = 0x5eedULL;
    for (const Operand *P : R.Func.Params) {
      Rng Rand(Seed += 0x9e3779b97f4a7c15ULL);
      size_t Sz = static_cast<size_t>(P->Rows) * P->Cols;
      auto &Buf = Store.emplace_back(Sz * Count);
      for (int Inst = 0; Inst < Count; ++Inst)
        fillInstance(P, Rand, Buf.data() + Inst * Sz);
    }
    std::vector<std::vector<double>> Fresh = Store;
    for (auto &S : Store)
      Bufs.push_back(S.data());
    runtime::Measurement M = runtime::measureCycles(
        [&] {
          for (size_t I = 0; I < Store.size(); ++I)
            std::copy(Fresh[I].begin(), Fresh[I].end(), Store[I].begin());
          K->callBatch(Count, Bufs.data());
        },
        T.Measure);
    CyclesOut = M.Median;
    return true;
  };

  double LoopCycles = 0.0, VecCycles = 0.0;
  bool LoopOk = MeasureStrategy(emitBatchedC(R), LoopCycles);
  bool VecOk = MeasureStrategy(VecSource, VecCycles);
  if (!LoopOk && !VecOk) {
    if (C.Strategy == BatchStrategy::InstanceParallel)
      C.VecSource = std::move(VecSource);
    return C; // keep the static choice
  }
  C.Measured = true;
  C.LoopCycles = LoopCycles;
  C.VecCycles = VecCycles;
  if (LoopOk && VecOk)
    C.Strategy = VecCycles < LoopCycles ? BatchStrategy::InstanceParallel
                                        : BatchStrategy::ScalarLoop;
  else
    C.Strategy = VecOk ? BatchStrategy::InstanceParallel
                       : BatchStrategy::ScalarLoop;
  if (C.Strategy == BatchStrategy::InstanceParallel)
    C.VecSource = std::move(VecSource);
  return C;
}

std::optional<TuneResult> service::tuneKernel(const Generator &G,
                                              const TuneOptions &T,
                                              std::string &Err) {
  std::vector<GenResult> All = G.enumerate(T.MaxVariants);
  if (All.empty()) {
    Err = "no feasible variant";
    return std::nullopt;
  }

  TuneResult Best;
  // Static fallback (enumerate() already sorted by the cost model) when we
  // cannot compile, cannot time, or the target ISA is wider than the host
  // can execute -- running such a candidate would fault, not measure.
  if (!runtime::haveSystemCompiler() || !runtime::haveCycleCounter() ||
      G.options().Isa->Nu > hostIsa().Nu) {
    Best.Result = std::move(All.front());
    return Best;
  }

  int TopK = std::min<int>(std::max(T.TopK, 1), static_cast<int>(All.size()));
  int BestIdx = -1;
  double BestCycles = 0.0;
  std::string LastCompileErr;
  for (int I = 0; I < TopK; ++I) {
    std::string C = emitC(All[I]);
    std::string CompileErr;
    auto K = runtime::JitKernel::compile(
        C, All[I].Func.Name, static_cast<int>(All[I].Func.Params.size()),
        CompileErr, T.ExtraFlags);
    if (!K) {
      LastCompileErr = CompileErr;
      continue;
    }
    ++Best.CandidatesMeasured;
    std::vector<std::vector<double>> Store;
    std::vector<double *> Bufs;
    fillBuffers(All[I], Store, Bufs);
    runtime::Measurement M = runtime::measureCycles(
        [&] { K->call(Bufs.data()); }, T.Measure);
    if (BestIdx < 0 || M.Median < BestCycles) {
      BestIdx = I;
      BestCycles = M.Median;
    }
  }

  if (BestIdx < 0) {
    // Every candidate failed to compile (e.g. cross-ISA flags the local
    // compiler rejects): fall back to the static ranking rather than fail.
    Err = LastCompileErr;
    Best.Result = std::move(All.front());
    return Best;
  }
  Best.Result = std::move(All[BestIdx]);
  Best.Measured = true;
  Best.MedianCycles = BestCycles;
  return Best;
}
