//===- service/Tuner.cpp --------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Tuner.h"

#include "expr/Operand.h"
#include "isa/ISA.h"
#include "obs/Trace.h"
#include "runtime/BatchPool.h"
#include "runtime/Jit.h"
#include "support/AlignedBuffer.h"
#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace slingen;
using namespace slingen::service;

namespace {

/// Deterministic, structure-respecting data for one instance of \p P:
/// SPD for positive-definite operands, well-conditioned triangular for
/// triangular ones, uniform [1, 2) (positive, denormal-free) otherwise --
/// so the div/sqrt chains the cost comparison hinges on run on numerically
/// realistic values instead of NaNs from e.g. sqrt of a negative.
void fillInstance(const Operand *P, Rng &Rand, double *Out) {
  const int Rows = P->Rows, Cols = P->Cols;
  if (P->PosDef && Rows == Cols && Rows > 1) {
    std::vector<double> G(static_cast<size_t>(Rows) * Rows);
    for (double &V : G)
      V = Rand.uniform(-1.0, 1.0);
    for (int I = 0; I < Rows; ++I)
      for (int J = 0; J < Rows; ++J) {
        double Acc = I == J ? Rows : 0.0;
        for (int K = 0; K < Rows; ++K)
          Acc += G[K * Rows + I] * G[K * Rows + J];
        Out[I * Rows + J] = Acc;
      }
    return;
  }
  if (Rows == Cols && Rows > 1 &&
      (P->Structure == StructureKind::LowerTriangular ||
       P->Structure == StructureKind::UpperTriangular)) {
    bool Lower = P->Structure == StructureKind::LowerTriangular;
    for (int I = 0; I < Rows; ++I)
      for (int J = 0; J < Rows; ++J) {
        bool Stored = I == J || (Lower ? J < I : J > I);
        Out[I * Rows + J] =
            I == J ? Rand.uniform(1.0, 2.0) + 2.0
                   : (Stored ? Rand.uniform(-1.0, 1.0) : 0.0);
      }
    return;
  }
  for (long I = 0; I < static_cast<long>(Rows) * Cols; ++I)
    Out[I] = Rand.uniform(1.0, 2.0);
}

/// Deterministic parameter buffers (see fillInstance) refilled identically
/// before each candidate so in-place kernels (which overwrite their
/// operands between repeats) are ranked on equal inputs.
void fillBuffers(const GenResult &R, std::vector<AlignedBuffer> &Store,
                 std::vector<double *> &Bufs) {
  Store.clear();
  Bufs.clear();
  uint64_t Seed = 0x5eedULL;
  for (const Operand *P : R.Func.Params) {
    Rng Rand(Seed += 0x9e3779b97f4a7c15ULL);
    auto &Buf = Store.emplace_back(static_cast<size_t>(P->Rows) * P->Cols);
    fillInstance(P, Rand, Buf.data());
  }
  for (auto &S : Store)
    Bufs.push_back(S.data());
}

} // namespace

namespace {

/// Deterministic per-parameter instance arrays for a Count-instance batch
/// (see fillInstance), 64-byte aligned like production batch buffers.
/// Fresh keeps an untouched copy so in-place kernels can be re-run on
/// unfactored data.
struct BatchBuffers {
  std::vector<AlignedBuffer> Store, Fresh;
  std::vector<double *> Bufs;

  BatchBuffers(const GenResult &R, int Count) {
    uint64_t Seed = 0x5eedULL;
    for (const Operand *P : R.Func.Params) {
      Rng Rand(Seed += 0x9e3779b97f4a7c15ULL);
      size_t Sz = static_cast<size_t>(P->Rows) * P->Cols;
      auto &Buf = Store.emplace_back(Sz * Count);
      for (int Inst = 0; Inst < Count; ++Inst)
        fillInstance(P, Rand, Buf.data() + Inst * Sz);
    }
    for (auto &S : Store) {
      Fresh.emplace_back(S);
      Bufs.push_back(S.data());
    }
  }

  void refill() {
    for (size_t I = 0; I < Store.size(); ++I)
      std::copy(Fresh[I].data(), Fresh[I].data() + Fresh[I].size(),
                Store[I].data());
  }
};

} // namespace

BatchChoice service::chooseBatchStrategy(const GenResult &R,
                                         const GenOptions &O,
                                         const TuneOptions &T,
                                         bool AllowCompile,
                                         int ThreadsPolicy) {
  BatchChoice C;
  C.Threads = ThreadsPolicy >= 1 ? ThreadsPolicy : 1;
  const int Nu = O.Isa->Nu;
  if (Nu < 2)
    return C; // no lanes to parallelize across

  // Static cost model: one AoSoA block amortizes the widened kernel (same
  // instruction count as the scalar kernel, vector-width issue) over Nu
  // instances. The packed form pays two layout transposes per element; the
  // fused form pays no transposes but its gathers/scatters touch elements
  // one lane at a time, modeled as a fraction of a cycle per element.
  // Compare per instance against the scalar-loop estimate.
  long SumElems = 0;
  for (const Operand *P : R.Func.Params)
    SumElems += static_cast<long>(P->Rows) * P->Cols;
  std::optional<ScalarRecompile> Scalar = recompileScalar(R, &O);
  if (!Scalar)
    return C; // widening infeasible: the loop is the only strategy
  long LoopPerInst = staticCost(R.Func);
  long WidePerInst = staticCost(Scalar->Func) / Nu;
  long VecPerInst = WidePerInst + 2 * SumElems;
  long FusedPerInst = WidePerInst + SumElems / 2;
  C.Strategy = BatchStrategy::ScalarLoop;
  if (FusedPerInst < LoopPerInst || VecPerInst < LoopPerInst)
    C.Strategy = FusedPerInst <= VecPerInst
                     ? BatchStrategy::InstanceParallelFused
                     : BatchStrategy::InstanceParallel;

  // The fused emission doubles as the widening-feasibility probe (both
  // instance-parallel forms share the Widener's constraints): if it falls
  // back to the scalar loop there is only one strategy to serve. The
  // ScalarRecompile above is reused so Stage 2/3 runs once, not three
  // times. The packed emission is deferred until measurement actually
  // needs it -- the static model never prefers it over fused (same widened
  // cost, strictly more layout traffic), so unmeasurable paths skip that
  // emission entirely.
  bool UsedVector = false;
  std::string FusedSource =
      emitBatchedVectorFusedC(R, &O, &UsedVector, &*Scalar);
  if (!UsedVector) {
    C.Strategy = BatchStrategy::ScalarLoop;
    return C;
  }
  std::string VecSource;

  auto TakeWinner = [&]() {
    if (C.Strategy == BatchStrategy::InstanceParallel)
      C.ChosenSource = std::move(VecSource);
    else if (C.Strategy == BatchStrategy::InstanceParallelFused)
      C.ChosenSource = std::move(FusedSource);
  };

  // Measure when possible; running a wider ISA than the host executes
  // would fault, not measure.
  if (!AllowCompile || !runtime::haveSystemCompiler() ||
      !runtime::haveCycleCounter() || Nu > hostIsa().Nu) {
    TakeWinner();
    return C;
  }

  VecSource = emitBatchedVectorC(R, &O, &UsedVector, &*Scalar);

  // Two probe batches: one divisible by every supported Nu (pure
  // full-block path) and one remainder-heavy (count % Nu == Nu/2, the
  // masked-tail path production batches pay on ragged counts). Ranking by
  // the sum of the two medians keeps a strategy with a fast block loop but
  // a slow tail from winning on divisible counts alone.
  const int ProbeCounts[2] = {64, 64 + Nu / 2};
  const std::string FuncName = R.Func.Name;
  const int NumParams = static_cast<int>(R.Func.Params.size());
  runtime::CompileOptions CO;
  CO.ExtraFlags = T.ExtraFlags;
  CO.WithBatchEntry = true;

  struct Candidate {
    BatchStrategy Strategy;
    const std::string *Source;
    double *CyclesOut;
    std::optional<runtime::JitKernel> Kernel;
    double Cycles = 0.0;
  };
  std::string LoopSource = emitBatchedC(R);
  Candidate Cands[] = {
      {BatchStrategy::ScalarLoop, &LoopSource, &C.LoopCycles, {}, 0.0},
      {BatchStrategy::InstanceParallel, &VecSource, &C.VecCycles, {}, 0.0},
      {BatchStrategy::InstanceParallelFused, &FusedSource, &C.FusedCycles,
       {},
       0.0},
  };
  Candidate *Best = nullptr;
  for (Candidate &Cand : Cands) {
    std::string Err;
    Cand.Kernel = runtime::JitKernel::compile(*Cand.Source, FuncName,
                                              NumParams, CO, Err);
    if (!Cand.Kernel)
      continue;
    obs::ScopedSpan Meas(
        "tuner-measure", "tuner",
        &obs::Registry::global().histogram("tuner.measure.us"));
    double Sum = 0.0;
    for (int Count : ProbeCounts) {
      BatchBuffers B(R, Count);
      runtime::Measurement M = runtime::measureCycles(
          [&] {
            B.refill();
            Cand.Kernel->callBatch(Count, B.Bufs.data());
          },
          T.Measure);
      Sum += M.Median;
    }
    Cand.Cycles = *Cand.CyclesOut = Sum;
    if (!Best || Cand.Cycles < Best->Cycles)
      Best = &Cand;
  }
  if (!Best) {
    TakeWinner();
    return C; // nothing compiled: keep the static choice
  }
  C.Measured = true;
  C.Strategy = Best->Strategy;

  // Thread resolution (auto policy only): re-time the winner over a batch
  // large enough to amortize a pool wakeup, single-threaded versus spread
  // across the host's cores, and keep whichever is faster. Pinned
  // policies skip this -- the caller already decided.
  if (ThreadsPolicy == 0) {
    const int N = runtime::defaultBatchThreads();
    if (N > 1 && Best->Kernel->hasBatchSpan()) {
      // Large enough to amortize the pool wakeup, plus a ragged tail so
      // the threaded timing includes the masked remainder block.
      const int CountMT = 64 * Nu + Nu / 2;
      BatchBuffers B(R, CountMT);
      obs::ScopedSpan Meas(
          "tuner-measure", "tuner",
          &obs::Registry::global().histogram("tuner.measure.us"));
      runtime::Measurement Single = runtime::measureCycles(
          [&] {
            B.refill();
            Best->Kernel->callBatch(CountMT, B.Bufs.data());
          },
          T.Measure);
      runtime::Measurement Threaded = runtime::measureCycles(
          [&] {
            B.refill();
            runtime::callBatchParallel(*Best->Kernel, CountMT,
                                       B.Bufs.data(), Nu, N);
          },
          T.Measure);
      C.ThreadsMeasured = true;
      C.SingleCycles = Single.Median;
      C.ThreadedCycles = Threaded.Median;
      C.Threads = Threaded.Median < Single.Median ? N : 1;
    }
  }
  TakeWinner();
  return C;
}

std::optional<TuneResult> service::tuneKernel(const Generator &G,
                                              const TuneOptions &T,
                                              std::string &Err) {
  std::vector<GenResult> All = G.enumerate(T.MaxVariants);
  if (All.empty()) {
    Err = "no feasible variant";
    return std::nullopt;
  }

  TuneResult Best;
  // Static fallback (enumerate() already sorted by the cost model) when we
  // cannot compile, cannot time, or the target ISA is wider than the host
  // can execute -- running such a candidate would fault, not measure.
  if (!runtime::haveSystemCompiler() || !runtime::haveCycleCounter() ||
      G.options().Isa->Nu > hostIsa().Nu) {
    Best.Result = std::move(All.front());
    return Best;
  }

  int TopK = std::min<int>(std::max(T.TopK, 1), static_cast<int>(All.size()));
  int BestIdx = -1;
  double BestCycles = 0.0;
  std::string LastCompileErr;
  for (int I = 0; I < TopK; ++I) {
    std::string C = emitC(All[I]);
    std::string CompileErr;
    auto K = runtime::JitKernel::compile(
        C, All[I].Func.Name, static_cast<int>(All[I].Func.Params.size()),
        CompileErr, T.ExtraFlags);
    if (!K) {
      LastCompileErr = CompileErr;
      continue;
    }
    ++Best.CandidatesMeasured;
    std::vector<AlignedBuffer> Store;
    std::vector<double *> Bufs;
    fillBuffers(All[I], Store, Bufs);
    obs::ScopedSpan Meas(
        "tuner-measure", "tuner",
        &obs::Registry::global().histogram("tuner.measure.us"));
    runtime::Measurement M = runtime::measureCycles(
        [&] { K->call(Bufs.data()); }, T.Measure);
    if (BestIdx < 0 || M.Median < BestCycles) {
      BestIdx = I;
      BestCycles = M.Median;
    }
  }

  if (BestIdx < 0) {
    // Every candidate failed to compile (e.g. cross-ISA flags the local
    // compiler rejects): fall back to the static ranking rather than fail.
    Err = LastCompileErr;
    Best.Result = std::move(All.front());
    return Best;
  }
  Best.Result = std::move(All[BestIdx]);
  Best.Measured = true;
  Best.MedianCycles = BestCycles;
  return Best;
}
