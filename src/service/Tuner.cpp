//===- service/Tuner.cpp --------------------------------------------------==//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Tuner.h"

#include "expr/Operand.h"
#include "isa/ISA.h"
#include "runtime/Jit.h"
#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace slingen;
using namespace slingen::service;

namespace {

/// Deterministic parameter buffers in [1, 2): positive, denormal-free data
/// so divisions and square roots inside the candidates time realistically.
/// Refilled identically before each candidate so in-place kernels (which
/// overwrite their operands between repeats) are ranked on equal inputs.
void fillBuffers(const GenResult &R, std::vector<std::vector<double>> &Store,
                 std::vector<double *> &Bufs) {
  Store.clear();
  Bufs.clear();
  uint64_t Seed = 0x5eedULL;
  for (const Operand *P : R.Func.Params) {
    Rng Rand(Seed += 0x9e3779b97f4a7c15ULL);
    auto &Buf = Store.emplace_back(static_cast<size_t>(P->Rows) * P->Cols);
    for (double &V : Buf)
      V = Rand.uniform(1.0, 2.0);
  }
  for (auto &S : Store)
    Bufs.push_back(S.data());
}

} // namespace

std::optional<TuneResult> service::tuneKernel(const Generator &G,
                                              const TuneOptions &T,
                                              std::string &Err) {
  std::vector<GenResult> All = G.enumerate(T.MaxVariants);
  if (All.empty()) {
    Err = "no feasible variant";
    return std::nullopt;
  }

  TuneResult Best;
  // Static fallback (enumerate() already sorted by the cost model) when we
  // cannot compile, cannot time, or the target ISA is wider than the host
  // can execute -- running such a candidate would fault, not measure.
  if (!runtime::haveSystemCompiler() || !runtime::haveCycleCounter() ||
      G.options().Isa->Nu > hostIsa().Nu) {
    Best.Result = std::move(All.front());
    return Best;
  }

  int TopK = std::min<int>(std::max(T.TopK, 1), static_cast<int>(All.size()));
  int BestIdx = -1;
  double BestCycles = 0.0;
  std::string LastCompileErr;
  for (int I = 0; I < TopK; ++I) {
    std::string C = emitC(All[I]);
    std::string CompileErr;
    auto K = runtime::JitKernel::compile(
        C, All[I].Func.Name, static_cast<int>(All[I].Func.Params.size()),
        CompileErr, T.ExtraFlags);
    if (!K) {
      LastCompileErr = CompileErr;
      continue;
    }
    ++Best.CandidatesMeasured;
    std::vector<std::vector<double>> Store;
    std::vector<double *> Bufs;
    fillBuffers(All[I], Store, Bufs);
    runtime::Measurement M = runtime::measureCycles(
        [&] { K->call(Bufs.data()); }, T.Measure);
    if (BestIdx < 0 || M.Median < BestCycles) {
      BestIdx = I;
      BestCycles = M.Median;
    }
  }

  if (BestIdx < 0) {
    // Every candidate failed to compile (e.g. cross-ISA flags the local
    // compiler rejects): fall back to the static ranking rather than fail.
    Err = LastCompileErr;
    Best.Result = std::move(All.front());
    return Best;
  }
  Best.Result = std::move(All[BestIdx]);
  Best.Measured = true;
  Best.MedianCycles = BestCycles;
  return Best;
}
