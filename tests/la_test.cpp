//===- tests/la_test.cpp - LA front end tests ------------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RefBlas.h"
#include "expr/Evaluator.h"
#include "la/Lexer.h"
#include "la/Lower.h"
#include "la/Parser.h"
#include "la/Programs.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

std::optional<Program> compileOk(const std::string &Src) {
  std::string Err;
  auto P = la::compileLa(Src, Err);
  EXPECT_TRUE(P) << Err;
  return P;
}

void expectError(const std::string &Src, const std::string &Fragment) {
  std::string Err;
  auto P = la::compileLa(Src, Err);
  EXPECT_FALSE(P) << "expected failure, got:\n" << (P ? P->str() : "");
  EXPECT_NE(Err.find(Fragment), std::string::npos)
      << "error was: " << Err << "\nexpected to contain: " << Fragment;
}

TEST(Lexer, TokensAndComments) {
  std::vector<la::Token> Toks;
  std::string Err;
  ASSERT_TRUE(la::lex("Mat A(4, 4) <In>; # comment\nA' 1.5e-3", Toks, Err))
      << Err;
  ASSERT_GE(Toks.size(), 12u);
  EXPECT_EQ(Toks[0].Kind, la::TokKind::KwMat);
  EXPECT_EQ(Toks[1].Text, "A");
  EXPECT_TRUE(Toks[3].IsInt);
  la::Token &Num = Toks[Toks.size() - 2];
  EXPECT_EQ(Num.Kind, la::TokKind::Number);
  EXPECT_FALSE(Num.IsInt);
  EXPECT_DOUBLE_EQ(Num.NumValue, 1.5e-3);
}

TEST(Lexer, RejectsStrayCharacters) {
  std::vector<la::Token> Toks;
  std::string Err;
  EXPECT_FALSE(la::lex("A @ B", Toks, Err));
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

TEST(Parser, Fig5Structure) {
  auto P = compileOk(la::fig5Source(8, 12));
  ASSERT_TRUE(P);
  EXPECT_EQ(P->operands().size(), 6u);
  EXPECT_EQ(P->stmts().size(), 3u);
  const Operand *U = P->findOperand("U");
  ASSERT_TRUE(U);
  EXPECT_EQ(U->Structure, StructureKind::UpperTriangular);
  EXPECT_TRUE(U->NonSingular);
  EXPECT_EQ(U->Overwrites, P->findOperand("S"));
  // Statement 2 is the Cholesky HLAC.
  std::set<const Operand *> Defined = P->initiallyDefined();
  StmtInfo I0 = classifyStmt(P->stmts()[0], Defined);
  EXPECT_FALSE(I0.IsHlac);
  StmtInfo I1 = classifyStmt(P->stmts()[1], Defined);
  EXPECT_TRUE(I1.IsHlac);
  EXPECT_EQ(I1.Defines, U);
}

TEST(Parser, ForLoopUnrolling) {
  auto P = compileOk(R"la(
Vec x(6) <InOut>;
Vec y(6) <In>;
Sca a <In>;

for (i = 0:6:2) {
  x(i:i+2) = a * y(i:i+2);
}
)la");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->stmts().size(), 3u);
  // Each unrolled statement addresses a distinct 2-element slice.
  const auto *V = cast<ViewExpr>(P->stmts()[1].Lhs.get());
  EXPECT_EQ(V->R0, 2);
  EXPECT_EQ(V->rows(), 2);
}

TEST(Parser, NestedLoopsWithAffineBounds) {
  auto P = compileOk(R"la(
Mat A(4, 4) <InOut>;
Sca s <In>;

for (i = 0:4) {
  for (j = i:4) {
    A(i, j) = s * A(j, i);
  }
}
)la");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->stmts().size(), 10u); // 4+3+2+1 upper-triangle updates
}

TEST(Parser, PostfixAndFunctionTranspose) {
  auto P = compileOk(R"la(
Mat A(3, 5) <In>;
Mat B(5, 3) <Out>;
Mat C(5, 3) <Out>;

B = A';
C = trans(A);
)la");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->stmts()[0].Rhs->str(), P->stmts()[1].Rhs->str());
}

TEST(Sema, Errors) {
  expectError("Mat A(4, 4) <In>;\nMat A(4, 4) <In>;\n", "redeclaration");
  expectError("Mat A(4, 3) <In, LoTri>;\n", "square");
  expectError("Mat U(4, 4) <Out, UpTri, ow(S)>;\n", "unknown operand");
  expectError("Mat S(4, 4) <In>;\nMat U(3, 3) <Out, ow(S)>;\n",
              "dimension mismatch");
  expectError("Vec x(4) <Out>;\nVec y(3) <In>;\nx = y;\n", "shape mismatch");
  expectError("Mat A(4, 4) <In>;\nMat B(4, 4) <Out>;\nB = A * A(0:2, 0:2);\n",
              "inner dimension mismatch");
  expectError("Vec x(4) <Out>;\nx(2:9) = x(0:7);\n", "out of bounds");
  expectError("Mat A(4, 4) <In>;\nMat B(4, 4) <Out>;\nB = inv(A);\n",
              "triangular");
  expectError("Vec x(4) <In>;\nx = x;\n", "cannot be assigned");
  expectError("Vec x(4) <Out>;\nVec y(4) <In>;\nx = y / y;\n",
              "scalar divisor");
}

TEST(Sema, ScalarElementAccess) {
  auto P = compileOk(R"la(
Mat A(4, 4) <In>;
Sca d <Out>;

d = A(2, 2) + A(1, 3) * A(3, 1);
)la");
  ASSERT_TRUE(P);
  Env E;
  Rng R(3);
  E.set(P->findOperand("A"), general(4, 4, R));
  evalProgram(*P, E);
  auto AD = E.get(P->findOperand("A"));
  EXPECT_NEAR(E.get(P->findOperand("d"))[0],
              AD[2 * 4 + 2] + AD[1 * 4 + 3] * AD[3 * 4 + 1], 1e-14);
}

//===----------------------------------------------------------------------===//
// End-to-end: the paper's application programs evaluate correctly against
// hand-written reference math.
//===----------------------------------------------------------------------===//

TEST(Programs, KalmanAgainstDirectMath) {
  int N = 6, K = 4;
  auto P = compileOk(la::kalmanSource(N, K));
  ASSERT_TRUE(P);

  Rng R(101);
  Env E;
  auto F = general(N, N, R), B = general(N, N, R), Q = spd(N, R),
       H = general(K, N, R), Rm = spd(K, R), P0 = spd(N, R);
  auto U = general(N, 1, R), X0 = general(N, 1, R), Z = general(K, 1, R);
  E.set(P->findOperand("F"), F);
  E.set(P->findOperand("Bm"), B);
  E.set(P->findOperand("Q"), Q);
  E.set(P->findOperand("H"), H);
  E.set(P->findOperand("R"), Rm);
  E.set(P->findOperand("P"), P0);
  E.set(P->findOperand("u"), U);
  E.set(P->findOperand("x"), X0);
  E.set(P->findOperand("z"), Z);
  evalProgram(*P, E);

  // Direct dense Kalman math (Table 1), using refblas-free loops.
  auto MatVec = [&](const std::vector<double> &A, int Rr, int Cc,
                    const std::vector<double> &V) {
    std::vector<double> Out(Rr, 0.0);
    for (int I = 0; I < Rr; ++I)
      for (int J = 0; J < Cc; ++J)
        Out[I] += A[I * Cc + J] * V[J];
    return Out;
  };
  auto MatMul = [&](const std::vector<double> &A, int M, int Kk,
                    const std::vector<double> &Bb, int Nn) {
    std::vector<double> Out(M * Nn, 0.0);
    for (int I = 0; I < M; ++I)
      for (int Pp = 0; Pp < Kk; ++Pp)
        for (int J = 0; J < Nn; ++J)
          Out[I * Nn + J] += A[I * Kk + Pp] * Bb[Pp * Nn + J];
    return Out;
  };
  auto Transpose = [&](const std::vector<double> &A, int M, int Nn) {
    std::vector<double> Out(Nn * M);
    for (int I = 0; I < M; ++I)
      for (int J = 0; J < Nn; ++J)
        Out[J * M + I] = A[I * Nn + J];
    return Out;
  };

  // Predict.
  std::vector<double> Y = MatVec(F, N, N, X0);
  auto BU = MatVec(B, N, N, U);
  for (int I = 0; I < N; ++I)
    Y[I] += BU[I];
  auto FP = MatMul(F, N, N, P0, N);
  auto Yp = MatMul(FP, N, N, Transpose(F, N, N), N);
  for (int I = 0; I < N * N; ++I)
    Yp[I] += Q[I];
  // Innovation covariance M3 = H Yp H^T + R and gain terms.
  auto HY = MatMul(H, K, N, Yp, N);
  auto M3 = MatMul(HY, K, N, Transpose(H, K, N), K);
  for (int I = 0; I < K * K; ++I)
    M3[I] += Rm[I];
  // Solve M3 w = (z - H y) via refblas-grade Gaussian elimination: use
  // Cholesky from the oracle library.
  std::vector<double> M3f = M3;
  ASSERT_EQ(refblas::potrfUpper(K, M3f.data(), K), 0);
  auto V0 = MatVec(H, K, N, Y);
  for (int I = 0; I < K; ++I)
    V0[I] = Z[I] - V0[I];
  std::vector<double> W = V0;
  refblas::trsmLeft(true, true, false, K, 1, M3f.data(), K, W.data(), 1);
  refblas::trsmLeft(true, false, false, K, 1, M3f.data(), K, W.data(), 1);
  // x_new = y + Yp H^T w.
  auto M2 = MatMul(Yp, N, N, Transpose(H, K, N), K);
  auto XNew = MatVec(M2, N, K, W);
  for (int I = 0; I < N; ++I)
    XNew[I] += Y[I];

  auto XGot = E.get(P->findOperand("x"));
  for (int I = 0; I < N; ++I)
    EXPECT_NEAR(XGot[I], XNew[I], 1e-8) << "x[" << I << "]";

  // P_new = Yp - M2 * M3^{-1} * M2^T (via triangular solves).
  std::vector<double> M5 = MatMul(H, K, N, Yp, N); // M1 = H Yp
  refblas::trsmLeft(true, true, false, K, N, M3f.data(), K, M5.data(), N);
  refblas::trsmLeft(true, false, false, K, N, M3f.data(), K, M5.data(), N);
  auto Corr = MatMul(M2, N, K, M5, N);
  auto PGot = E.get(P->findOperand("P"));
  for (int I = 0; I < N * N; ++I)
    EXPECT_NEAR(PGot[I], Yp[I] - Corr[I], 1e-8);
}

TEST(Programs, GprInvariants) {
  int N = 8;
  auto P = compileOk(la::gprSource(N));
  ASSERT_TRUE(P);
  Rng R(55);
  Env E;
  auto Km = spd(N, R);
  E.set(P->findOperand("K"), Km);
  E.set(P->findOperand("X"), general(N, N, R));
  E.set(P->findOperand("x"), general(N, 1, R));
  E.set(P->findOperand("y"), general(N, 1, R));
  evalProgram(*P, E);

  // lambda = y^T K^{-1} y must match a direct solve.
  auto Y = E.get(P->findOperand("y"));
  std::vector<double> Kf = Km;
  ASSERT_EQ(refblas::potrfLower(N, Kf.data(), N), 0);
  std::vector<double> T = Y;
  refblas::trsmLeft(false, false, false, N, 1, Kf.data(), N, T.data(), 1);
  refblas::trsmLeft(false, true, false, N, 1, Kf.data(), N, T.data(), 1);
  double Lambda = refblas::dot(N, Y.data(), T.data());
  EXPECT_NEAR(E.get(P->findOperand("lambda"))[0], Lambda, 1e-8);

  // psi = x^T x - v^T v with v = L^{-1} X x.
  auto Xm = E.get(P->findOperand("X"));
  auto Xv = E.get(P->findOperand("x"));
  std::vector<double> Kvec(N, 0.0);
  refblas::gemv(N, N, 1.0, Xm.data(), N, false, Xv.data(), 0.0, Kvec.data());
  std::vector<double> V = Kvec;
  refblas::trsmLeft(false, false, false, N, 1, Kf.data(), N, V.data(), 1);
  double Psi =
      refblas::dot(N, Xv.data(), Xv.data()) - refblas::dot(N, V.data(),
                                                           V.data());
  EXPECT_NEAR(E.get(P->findOperand("psi"))[0], Psi, 1e-8);
}

TEST(Programs, L1aMatchesDirectVectorMath) {
  int N = 12;
  auto P = compileOk(la::l1aSource(N));
  ASSERT_TRUE(P);
  Rng R(77);
  Env E;
  auto W = general(N, N, R), A = general(N, N, R);
  auto X0 = general(N, 1, R), Y = general(N, 1, R);
  auto V1 = general(N, 1, R), Z1 = general(N, 1, R), V2 = general(N, 1, R),
       Z2 = general(N, 1, R);
  double Alpha = 0.7, Beta = 0.3, Tau = 1.1;
  E.set(P->findOperand("W"), W);
  E.set(P->findOperand("A"), A);
  E.set(P->findOperand("x0"), X0);
  E.set(P->findOperand("y"), Y);
  E.set(P->findOperand("v1"), V1);
  E.set(P->findOperand("z1"), Z1);
  E.set(P->findOperand("v2"), V2);
  E.set(P->findOperand("z2"), Z2);
  E.set(P->findOperand("alpha"), {Alpha});
  E.set(P->findOperand("beta"), {Beta});
  E.set(P->findOperand("tau"), {Tau});
  evalProgram(*P, E);

  std::vector<double> Y1(N), Y2(N), X1(N, 0.0), X(N);
  for (int I = 0; I < N; ++I) {
    Y1[I] = Alpha * V1[I] + Tau * Z1[I];
    Y2[I] = Alpha * V2[I] + Tau * Z2[I];
  }
  refblas::gemv(N, N, 1.0, W.data(), N, true, Y1.data(), 0.0, X1.data());
  std::vector<double> T2(N, 0.0);
  refblas::gemv(N, N, 1.0, A.data(), N, true, Y2.data(), 0.0, T2.data());
  for (int I = 0; I < N; ++I) {
    X1[I] -= T2[I];
    X[I] = X0[I] + Beta * X1[I];
  }
  std::vector<double> Z1New = Y1, Z2New = Y2;
  std::vector<double> WX(N, 0.0), AX(N, 0.0);
  refblas::gemv(N, N, 1.0, W.data(), N, false, X.data(), 0.0, WX.data());
  refblas::gemv(N, N, 1.0, A.data(), N, false, X.data(), 0.0, AX.data());
  for (int I = 0; I < N; ++I) {
    Z1New[I] -= WX[I];
    Z2New[I] -= Y[I] - AX[I];
  }
  auto Z1Got = E.get(P->findOperand("z1"));
  auto V1Got = E.get(P->findOperand("v1"));
  for (int I = 0; I < N; ++I) {
    EXPECT_NEAR(Z1Got[I], Z1New[I], 1e-10);
    EXPECT_NEAR(V1Got[I], Alpha * V1[I] + Tau * Z1New[I], 1e-10);
  }
}

TEST(Programs, HlacSourcesCompile) {
  for (int N : {4, 7, 16}) {
    EXPECT_TRUE(compileOk(la::potrfSource(N)));
    EXPECT_TRUE(compileOk(la::trsylSource(N)));
    EXPECT_TRUE(compileOk(la::trlyaSource(N)));
    EXPECT_TRUE(compileOk(la::trtriSource(N)));
  }
}

} // namespace
