//===- tests/refblas_test.cpp - oracle library validation -----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The refblas routines are the numerical oracle for the whole pipeline, so
// they are validated independently here by residual checks: a solver output
// X is plugged back into its defining equation and the residual must vanish
// to roundoff.
//===----------------------------------------------------------------------===//

#include "baselines/RefBlas.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

#include <vector>

using namespace slingen;
using namespace slingen::refblas;
using namespace slingen::testdata;

namespace {

const int Sizes[] = {1, 2, 3, 4, 5, 7, 8, 12, 16, 23, 32};

class RefBlasSizes : public ::testing::TestWithParam<int> {};

TEST_P(RefBlasSizes, GemmMatchesNaive) {
  int N = GetParam();
  Rng R(11 + N);
  int M = N, K = N + 1;
  auto A = general(M, K, R), B = general(K, N, R), C = general(M, N, R);
  auto Ref = C;
  for (int I = 0; I < M; ++I)
    for (int J = 0; J < N; ++J) {
      double Acc = 0.0;
      for (int P = 0; P < K; ++P)
        Acc += A[I * K + P] * B[P * N + J];
      Ref[I * N + J] = 2.0 * Acc + 0.5 * Ref[I * N + J];
    }
  gemm(M, N, K, 2.0, A.data(), K, false, B.data(), N, false, 0.5, C.data(),
       N);
  EXPECT_LT(maxAbsDiff(C, Ref), 1e-12);
}

TEST_P(RefBlasSizes, GemmTransposedOperands) {
  int N = GetParam();
  Rng R(13 + N);
  auto A = general(N, N, R), B = general(N, N, R);
  std::vector<double> C1(N * N, 0.0), C2(N * N, 0.0);
  // C1 = A^T B via the transA path; C2 computed from an explicit transpose.
  gemm(N, N, N, 1.0, A.data(), N, true, B.data(), N, false, 0.0, C1.data(),
       N);
  std::vector<double> AT(N * N);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      AT[J * N + I] = A[I * N + J];
  gemm(N, N, N, 1.0, AT.data(), N, false, B.data(), N, false, 0.0, C2.data(),
       N);
  EXPECT_LT(maxAbsDiff(C1, C2), 1e-13);

  // B^T path.
  std::fill(C1.begin(), C1.end(), 0.0);
  gemm(N, N, N, 1.0, A.data(), N, false, B.data(), N, true, 0.0, C1.data(),
       N);
  std::vector<double> BT(N * N);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      BT[J * N + I] = B[I * N + J];
  std::fill(C2.begin(), C2.end(), 0.0);
  gemm(N, N, N, 1.0, A.data(), N, false, BT.data(), N, false, 0.0, C2.data(),
       N);
  EXPECT_LT(maxAbsDiff(C1, C2), 1e-13);
}

TEST_P(RefBlasSizes, TrsmLeftResidual) {
  int N = GetParam();
  Rng R(17 + N);
  for (bool Upper : {false, true})
    for (bool Trans : {false, true}) {
      auto A = Upper ? upperTri(N, R) : lowerTri(N, R);
      auto B = general(N, N, R);
      auto X = B;
      trsmLeft(Upper, Trans, /*UnitDiag=*/false, N, N, A.data(), N, X.data(),
               N);
      // Residual op(A) X - B.
      std::vector<double> Res(N * N, 0.0);
      gemm(N, N, N, 1.0, A.data(), N, Trans, X.data(), N, false, 0.0,
           Res.data(), N);
      EXPECT_LT(maxAbsDiff(Res, B), 1e-10)
          << "upper=" << Upper << " trans=" << Trans;
    }
}

TEST_P(RefBlasSizes, TrsmRightResidual) {
  int N = GetParam();
  Rng R(19 + N);
  for (bool Upper : {false, true})
    for (bool Trans : {false, true}) {
      auto A = Upper ? upperTri(N, R) : lowerTri(N, R);
      auto B = general(N, N, R);
      auto X = B;
      trsmRight(Upper, Trans, /*UnitDiag=*/false, N, N, A.data(), N, X.data(),
                N);
      std::vector<double> Res(N * N, 0.0);
      gemm(N, N, N, 1.0, X.data(), N, false, A.data(), N, Trans, 0.0,
           Res.data(), N);
      EXPECT_LT(maxAbsDiff(Res, B), 1e-10)
          << "upper=" << Upper << " trans=" << Trans;
    }
}

TEST_P(RefBlasSizes, PotrfUpperResidual) {
  int N = GetParam();
  Rng R(23 + N);
  auto S = spd(N, R);
  auto U = S;
  ASSERT_EQ(potrfUpper(N, U.data(), N), 0);
  // Strictly lower part must be zeroed (full-storage convention).
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < I; ++J)
      EXPECT_EQ(U[I * N + J], 0.0);
  std::vector<double> Res(N * N, 0.0);
  gemm(N, N, N, 1.0, U.data(), N, true, U.data(), N, false, 0.0, Res.data(),
       N);
  EXPECT_LT(maxAbsDiff(Res, S), 1e-9 * N);
}

TEST_P(RefBlasSizes, PotrfLowerResidual) {
  int N = GetParam();
  Rng R(29 + N);
  auto S = spd(N, R);
  auto L = S;
  ASSERT_EQ(potrfLower(N, L.data(), N), 0);
  std::vector<double> Res(N * N, 0.0);
  gemm(N, N, N, 1.0, L.data(), N, false, L.data(), N, true, 0.0, Res.data(),
       N);
  EXPECT_LT(maxAbsDiff(Res, S), 1e-9 * N);
}

TEST_P(RefBlasSizes, TrtriResidual) {
  int N = GetParam();
  Rng R(31 + N);
  auto L = lowerTri(N, R);
  auto X = L;
  trtriLower(N, X.data(), N);
  std::vector<double> Res(N * N, 0.0);
  gemm(N, N, N, 1.0, L.data(), N, false, X.data(), N, false, 0.0, Res.data(),
       N);
  for (int I = 0; I < N; ++I)
    Res[I * N + I] -= 1.0;
  double MaxR = 0.0;
  for (double V : Res)
    MaxR = std::max(MaxR, std::fabs(V));
  EXPECT_LT(MaxR, 1e-10 * N);

  auto U = upperTri(N, R);
  auto Y = U;
  trtriUpper(N, Y.data(), N);
  std::fill(Res.begin(), Res.end(), 0.0);
  gemm(N, N, N, 1.0, U.data(), N, false, Y.data(), N, false, 0.0, Res.data(),
       N);
  for (int I = 0; I < N; ++I)
    Res[I * N + I] -= 1.0;
  MaxR = 0.0;
  for (double V : Res)
    MaxR = std::max(MaxR, std::fabs(V));
  EXPECT_LT(MaxR, 1e-10 * N);
}

TEST_P(RefBlasSizes, TrsylResidual) {
  int N = GetParam();
  Rng R(37 + N);
  auto L = lowerTri(N, R);
  auto U = upperTri(N, R);
  auto C = general(N, N, R);
  auto X = C;
  trsylLowerUpper(N, N, L.data(), N, U.data(), N, X.data(), N);
  // Residual L X + X U - C.
  std::vector<double> Res(N * N, 0.0);
  gemm(N, N, N, 1.0, L.data(), N, false, X.data(), N, false, 0.0, Res.data(),
       N);
  gemm(N, N, N, 1.0, X.data(), N, false, U.data(), N, false, 1.0, Res.data(),
       N);
  EXPECT_LT(maxAbsDiff(Res, C), 1e-10 * N);
}

TEST_P(RefBlasSizes, TrlyaResidualAndSymmetry) {
  int N = GetParam();
  Rng R(41 + N);
  auto L = lowerTri(N, R);
  auto S = symmetric(N, R);
  auto X = S;
  trlyaLower(N, L.data(), N, X.data(), N);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      EXPECT_DOUBLE_EQ(X[I * N + J], X[J * N + I]);
  std::vector<double> Res(N * N, 0.0);
  gemm(N, N, N, 1.0, L.data(), N, false, X.data(), N, false, 0.0, Res.data(),
       N);
  gemm(N, N, N, 1.0, X.data(), N, false, L.data(), N, true, 1.0, Res.data(),
       N);
  EXPECT_LT(maxAbsDiff(Res, S), 1e-10 * N);
}

TEST_P(RefBlasSizes, TrmmMatchesGemm) {
  int N = GetParam();
  Rng R(43 + N);
  for (bool Upper : {false, true})
    for (bool Trans : {false, true}) {
      auto A = Upper ? upperTri(N, R) : lowerTri(N, R);
      auto B = general(N, N, R);
      auto B1 = B;
      trmmLeft(Upper, Trans, /*UnitDiag=*/false, N, N, A.data(), N, B1.data(),
               N);
      std::vector<double> B2(N * N, 0.0);
      gemm(N, N, N, 1.0, A.data(), N, Trans, B.data(), N, false, 0.0,
           B2.data(), N);
      EXPECT_LT(maxAbsDiff(B1, B2), 1e-12)
          << "upper=" << Upper << " trans=" << Trans;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, RefBlasSizes, ::testing::ValuesIn(Sizes));

TEST(RefBlas, PotrfRejectsIndefinite) {
  double A[4] = {1.0, 2.0, 2.0, 1.0}; // eigenvalues 3 and -1
  EXPECT_NE(potrfUpper(2, A, 2), 0);
}

TEST(RefBlas, GemvAndDotAndAxpy) {
  Rng R(47);
  int M = 5, N = 7;
  auto A = general(M, N, R);
  auto X = general(N, 1, R);
  std::vector<double> Y(M, 1.0);
  gemv(M, N, 1.0, A.data(), N, false, X.data(), 0.0, Y.data());
  for (int I = 0; I < M; ++I) {
    double Acc = 0.0;
    for (int J = 0; J < N; ++J)
      Acc += A[I * N + J] * X[J];
    EXPECT_NEAR(Y[I], Acc, 1e-13);
  }
  EXPECT_NEAR(dot(3, (const double[]){1, 2, 3}, (const double[]){4, 5, 6}),
              32.0, 1e-15);
  double V[3] = {1, 1, 1};
  axpy(3, 2.0, (const double[]){1, 2, 3}, V);
  EXPECT_DOUBLE_EQ(V[2], 7.0);
}

} // namespace
