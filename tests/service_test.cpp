//===- tests/service_test.cpp - KernelService subsystem tests --------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The serving runtime: content-addressed caching (memory LRU + disk tier),
// single-flight concurrent generation, the measured autotuner and its
// static fallback, and batched dispatch. Tests that need the C compiler or
// vector execution on the host are gated; the cache/single-flight/fallback
// logic is exercised everywhere.
//===----------------------------------------------------------------------===//

#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/Timing.h"
#include "service/KernelService.h"
#include "support/AlignedBuffer.h"
#include "slingen/SLinGen.h"
#include "support/Hash.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include <stdlib.h>

using namespace slingen;
using namespace slingen::service;
using namespace slingen::testdata;

namespace {

GenOptions hostOpts(const std::string &Name) {
  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = Name;
  return O;
}

/// RAII temporary directory for disk-tier tests.
struct TempDir {
  TempDir() {
    char Tmpl[] = "/tmp/slingen_service_XXXXXX";
    Path = mkdtemp(Tmpl);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string Path;
};

/// Canonical sharded entry path: `<dir>/ab/cdef...<ext>`.
std::string shardedPath(const std::string &Dir, const std::string &Key,
                        const char *Ext) {
  return Dir + "/" + Key.substr(0, 2) + "/" + Key.substr(2) + Ext;
}

TEST(ServiceCache, RepeatedGetHitsMemoryTier) {
  KernelService S;
  std::string Src = la::potrfSource(8);
  GenOptions O = hostOpts("potrf8");

  GetResult First = S.get(Src, O);
  ASSERT_TRUE(First) << First.Error;
  ASSERT_EQ(S.stats().Misses, 1);
  ASSERT_EQ(S.stats().Generations, 1);
  long CompilesAfterFirst = S.stats().Compilations;

  GetResult Second = S.get(Src, O);
  ASSERT_TRUE(Second);
  // The acceptance bar: a repeated get() returns the cached kernel without
  // re-invoking the generator or the C compiler.
  EXPECT_EQ(Second.Kernel.get(), First.Kernel.get());
  EXPECT_EQ(S.stats().MemHits, 1);
  EXPECT_EQ(S.stats().Generations, 1);
  EXPECT_EQ(S.stats().Compilations, CompilesAfterFirst);
  EXPECT_FALSE(First->CSource.empty());
  EXPECT_EQ(First->Key.size(), 16u);
}

TEST(ServiceCache, DistinctProgramsAndOptionsGetDistinctEntries) {
  KernelService S;
  GetResult A = S.get(la::potrfSource(8), hostOpts("k8"));
  GetResult B = S.get(la::potrfSource(12), hostOpts("k12"));
  ASSERT_TRUE(A && B);
  EXPECT_NE(A->Key, B->Key);
  EXPECT_EQ(S.cachedKernels(), 2u);
  // Same program, different ISA: also distinct.
  GenOptions Scalar;
  Scalar.Isa = &scalarIsa();
  Scalar.FuncName = "k8";
  GetResult C = S.get(la::potrfSource(8), Scalar);
  ASSERT_TRUE(C);
  EXPECT_NE(C->Key, A->Key);
  EXPECT_EQ(S.stats().Generations, 3);
}

TEST(ServiceCache, LruEvictionBoundsMemoryTier) {
  ServiceConfig C;
  C.MemCapacity = 2;
  C.UseCompiler = false; // eviction logic is compiler-independent
  KernelService S(C);
  GenOptions O;
  O.Isa = &scalarIsa();

  O.FuncName = "p6";
  ASSERT_TRUE(S.get(la::potrfSource(6), O));
  O.FuncName = "p8";
  ASSERT_TRUE(S.get(la::potrfSource(8), O));
  O.FuncName = "p10";
  ASSERT_TRUE(S.get(la::potrfSource(10), O));

  EXPECT_EQ(S.cachedKernels(), 2u);
  EXPECT_EQ(S.stats().Evictions, 1);
  EXPECT_EQ(S.stats().Generations, 3);

  // p6 was least recently used and must have been evicted: a fresh get
  // re-generates it.
  O.FuncName = "p6";
  ASSERT_TRUE(S.get(la::potrfSource(6), O));
  EXPECT_EQ(S.stats().Generations, 4);

  // p10 survived: served from memory.
  O.FuncName = "p10";
  ASSERT_TRUE(S.get(la::potrfSource(10), O));
  EXPECT_EQ(S.stats().Generations, 4);
  EXPECT_EQ(S.stats().MemHits, 1);
}

TEST(ServiceCache, DiskTierServesFreshServiceInstance) {
  TempDir Dir;
  std::string Src = la::potrfSource(8);
  GenOptions O = hostOpts("potrf_disk");

  ArtifactPtr FirstArtifact;
  {
    ServiceConfig C;
    C.CacheDir = Dir.Path;
    KernelService S1(C);
    GetResult R = S1.get(Src, O);
    ASSERT_TRUE(R) << R.Error;
    FirstArtifact = R.Kernel;
    EXPECT_EQ(S1.stats().Generations, 1);
    EXPECT_TRUE(std::filesystem::exists(shardedPath(Dir.Path, R->Key,
                                                    ".meta")));
    EXPECT_TRUE(std::filesystem::exists(shardedPath(Dir.Path, R->Key,
                                                    ".c")));
  }

  // A second service instance pointed at the same directory serves the
  // kernel without generating or compiling anything.
  ServiceConfig C2;
  C2.CacheDir = Dir.Path;
  KernelService S2(C2);
  GetResult R2 = S2.get(Src, O);
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_EQ(S2.stats().DiskHits, 1);
  EXPECT_EQ(S2.stats().Generations, 0);
  EXPECT_EQ(S2.stats().Compilations, 0);
  EXPECT_EQ(R2->Key, FirstArtifact->Key);
  EXPECT_EQ(R2->CSource, FirstArtifact->CSource);
  EXPECT_EQ(R2->Choice, FirstArtifact->Choice);
  EXPECT_EQ(R2->StaticCost, FirstArtifact->StaticCost);

  if (!runtime::haveSystemCompiler())
    return;
  // The reloaded kernel is callable and agrees with the original.
  ASSERT_TRUE(FirstArtifact->isCallable());
  ASSERT_TRUE(R2->isCallable());
  const int N = 8;
  Rng Rand(3);
  std::vector<double> A = spd(N, Rand);
  std::vector<double> X1(N * N, 0.0), X2(N * N, 0.0), ACopy = A;
  double *Bufs1[2] = {A.data(), X1.data()};
  FirstArtifact->call(Bufs1);
  double *Bufs2[2] = {ACopy.data(), X2.data()};
  R2->call(Bufs2);
  EXPECT_LT(maxAbsDiff(X1, X2), 1e-14);
  double Nonzero = 0.0;
  for (double V : X1)
    Nonzero += std::fabs(V);
  EXPECT_GT(Nonzero, 0.0);
}

TEST(ServiceCache, DiskEntryWithoutSoIsRecompiledNotRegenerated) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  TempDir Dir;
  std::string Src = la::potrfSource(8);
  GenOptions O = hostOpts("potrf_resurrect");
  std::string Key;
  {
    ServiceConfig C;
    C.CacheDir = Dir.Path;
    KernelService S1(C);
    GetResult R = S1.get(Src, O);
    ASSERT_TRUE(R) << R.Error;
    Key = R->Key;
  }
  // Simulate a cache rsync'd without binaries (or a stale .so wiped by an
  // operator): source + meta survive, the object does not.
  std::filesystem::remove(shardedPath(Dir.Path, Key, ".so"));

  ServiceConfig C2;
  C2.CacheDir = Dir.Path;
  KernelService S2(C2);
  GetResult R2 = S2.get(Src, O);
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_EQ(S2.stats().Generations, 0); // no re-generation...
  EXPECT_EQ(S2.stats().Compilations, 1); // ...just a recompile
  EXPECT_TRUE(R2->isCallable());
  EXPECT_TRUE(std::filesystem::exists(shardedPath(Dir.Path, Key, ".so")));
}

TEST(ServiceCache, FlatPreShardEntriesStillServe) {
  TempDir Dir;
  std::string Src = la::potrfSource(8);
  GenOptions O;
  O.Isa = &scalarIsa();
  O.FuncName = "potrf_flat";
  std::string Key;
  {
    ServiceConfig C;
    C.CacheDir = Dir.Path;
    C.UseCompiler = false; // layout logic is compiler-independent
    KernelService S1(C);
    GetResult R = S1.get(Src, O);
    ASSERT_TRUE(R) << R.Error;
    Key = R->Key;
  }
  // Rewrite the entry in the pre-shard flat layout (what a cache directory
  // written before sharding looks like).
  ASSERT_TRUE(std::filesystem::exists(shardedPath(Dir.Path, Key, ".meta")));
  for (const char *Ext : {".meta", ".c"})
    std::filesystem::rename(shardedPath(Dir.Path, Key, Ext),
                            Dir.Path + "/" + Key + Ext);
  std::filesystem::remove_all(Dir.Path + "/" + Key.substr(0, 2));

  ServiceConfig C2;
  C2.CacheDir = Dir.Path;
  C2.UseCompiler = false;
  KernelService S2(C2);
  GetResult R2 = S2.get(Src, O);
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_EQ(S2.stats().DiskHits, 1);
  EXPECT_EQ(S2.stats().Generations, 0);
  EXPECT_EQ(R2->Key, Key);
  EXPECT_FALSE(R2->CSource.empty());
}

// Unit-level GC: fabricated entries with controlled mtimes are evicted
// oldest-first until the tier fits the budget; the protected key survives
// even under a budget smaller than one entry.
TEST(ServiceCache, DiskBudgetEvictsOldestEntriesFirst) {
  TempDir Dir;
  KernelCache Cache(4, Dir.Path);
  auto MakeEntry = [&](const std::string &Key, int AgeSeconds) {
    KernelArtifact A;
    A.Key = Key;
    A.FuncName = "f";
    A.IsaName = "avx";
    A.NumParams = 1;
    A.CSource = std::string(1024, 'x');
    std::string Err;
    ASSERT_TRUE(Cache.storeToDisk(A, Err)) << Err;
    // Pin mtimes explicitly: sub-second store times are not ordered.
    for (const char *Ext : {".c", ".meta"}) {
      std::string P = shardedPath(Dir.Path, Key, Ext);
      std::filesystem::last_write_time(
          P, std::filesystem::file_time_type::clock::now() -
                 std::chrono::seconds(AgeSeconds));
    }
  };
  MakeEntry("00aaaaaaaaaaaaaa", 300); // oldest
  MakeEntry("11bbbbbbbbbbbbbb", 200);
  MakeEntry("22cccccccccccccc", 100); // newest
  ASSERT_TRUE(Cache.onDisk("00aaaaaaaaaaaaaa"));

  // Entries are ~1 KiB of source plus a small meta: a 2.5 KiB budget keeps
  // two of them.
  size_t Evicted =
      Cache.enforceDiskBudget(2560, /*KeepKey=*/"22cccccccccccccc");
  EXPECT_EQ(Evicted, 1u);
  EXPECT_FALSE(Cache.onDisk("00aaaaaaaaaaaaaa")) << "oldest must go first";
  EXPECT_TRUE(Cache.onDisk("11bbbbbbbbbbbbbb"));
  EXPECT_TRUE(Cache.onDisk("22cccccccccccccc"));

  // A budget below a single entry still never evicts the protected key.
  Evicted = Cache.enforceDiskBudget(1, "22cccccccccccccc");
  EXPECT_EQ(Evicted, 1u);
  EXPECT_FALSE(Cache.onDisk("11bbbbbbbbbbbbbb"));
  EXPECT_TRUE(Cache.onDisk("22cccccccccccccc"));

  // Under budget: no-op.
  EXPECT_EQ(Cache.enforceDiskBudget(1 << 20, "22cccccccccccccc"), 0u);
  EXPECT_TRUE(Cache.onDisk("22cccccccccccccc"));
}

// Incremental accounting: the tier is scanned exactly once -- the first
// budget enforcement -- and every later store/evict updates the running
// byte total in place, so GC on a warm cache touches only the entry being
// stored and the files it evicts (the ROADMAP's O(evicted)-per-store
// item), while eviction order and the KeepKey guarantee are unchanged.
TEST(ServiceCache, DiskBudgetAccountingIsIncremental) {
  TempDir Dir;
  KernelCache Cache(4, Dir.Path);
  auto MakeEntry = [&](const std::string &Key) {
    KernelArtifact A;
    A.Key = Key;
    A.FuncName = "f";
    A.IsaName = "avx";
    A.NumParams = 1;
    A.CSource = std::string(1024, 'x');
    std::string Err;
    ASSERT_TRUE(Cache.storeToDisk(A, Err)) << Err;
  };

  MakeEntry("00aaaaaaaaaaaaaa");
  EXPECT_EQ(Cache.diskScans(), 0u) << "no budget enforced yet";

  // First enforcement: the one and only full scan. Budget of 1 byte, but
  // the just-stored key is protected -- nothing else exists to evict.
  EXPECT_EQ(Cache.enforceDiskBudget(1, "00aaaaaaaaaaaaaa"), 0u);
  EXPECT_EQ(Cache.diskScans(), 1u);
  EXPECT_TRUE(Cache.onDisk("00aaaaaaaaaaaaaa"));

  // Stores on the warm cache: each enforcement evicts the older entry
  // without ever rescanning the tier.
  MakeEntry("11bbbbbbbbbbbbbb");
  EXPECT_EQ(Cache.enforceDiskBudget(1, "11bbbbbbbbbbbbbb"), 1u);
  EXPECT_EQ(Cache.diskScans(), 1u) << "a store must not rescan the tier";
  EXPECT_FALSE(Cache.onDisk("00aaaaaaaaaaaaaa"));
  EXPECT_TRUE(Cache.onDisk("11bbbbbbbbbbbbbb"));

  MakeEntry("22cccccccccccccc");
  EXPECT_EQ(Cache.enforceDiskBudget(1, "22cccccccccccccc"), 1u);
  EXPECT_EQ(Cache.diskScans(), 1u);
  EXPECT_FALSE(Cache.onDisk("11bbbbbbbbbbbbbb"));
  EXPECT_TRUE(Cache.onDisk("22cccccccccccccc"));

  // Under budget: no-op, and still no rescan. A re-store of an existing
  // key replaces its accounting instead of double-counting.
  MakeEntry("22cccccccccccccc");
  EXPECT_EQ(Cache.enforceDiskBudget(1 << 20, "22cccccccccccccc"), 0u);
  EXPECT_EQ(Cache.diskScans(), 1u);
  EXPECT_TRUE(Cache.onDisk("22cccccccccccccc"));
}

// Config-level GC: a service with cache-max-bytes evicts older entries as
// new ones are stored, never the entry a store just produced, and the
// memory tier keeps serving what it already loaded.
TEST(ServiceCache, CacheMaxBytesBoundsDiskTierAcrossStores) {
  TempDir Dir;
  ServiceConfig C;
  C.CacheDir = Dir.Path;
  C.UseCompiler = false; // GC logic is compiler-independent
  C.CacheMaxBytes = 1;   // every store triggers eviction of everything else
  KernelService S(C);

  GetResult A = S.get(la::potrfSource(6), hostOpts("gc6"));
  ASSERT_TRUE(A) << A.Error;
  EXPECT_TRUE(std::filesystem::exists(
      shardedPath(Dir.Path, A->Key, ".meta")))
      << "the triggering store itself must survive GC";

  GetResult B = S.get(la::potrfSource(8), hostOpts("gc8"));
  ASSERT_TRUE(B) << B.Error;
  EXPECT_TRUE(
      std::filesystem::exists(shardedPath(Dir.Path, B->Key, ".meta")));
  EXPECT_FALSE(std::filesystem::exists(
      shardedPath(Dir.Path, A->Key, ".meta")))
      << "the older entry must have been evicted";

  // The evicted key still serves from the memory tier...
  GetResult A2 = S.get(la::potrfSource(6), hostOpts("gc6"));
  ASSERT_TRUE(A2);
  EXPECT_EQ(S.stats().MemHits, 1);
  // ...and a cold service regenerates it (the disk entry is gone).
  ServiceConfig C2;
  C2.CacheDir = Dir.Path;
  C2.UseCompiler = false;
  KernelService S2(C2);
  GetResult A3 = S2.get(la::potrfSource(6), hostOpts("gc6"));
  ASSERT_TRUE(A3);
  EXPECT_EQ(S2.stats().DiskHits, 0);
  EXPECT_EQ(S2.stats().Generations, 1);
  EXPECT_EQ(A3->Key, A->Key);
}

TEST(ServicePrefetch, WarmedKeyIsServedWithoutGenerating) {
  ServiceConfig C;
  C.UseCompiler = false;
  KernelService S(C);
  std::string Src = la::potrfSource(8);
  GenOptions O;
  O.Isa = &scalarIsa();
  O.FuncName = "potrf_warm";

  S.prefetch(Src, O);
  S.drainPrefetches();
  EXPECT_EQ(S.stats().Prefetches, 1);
  EXPECT_EQ(S.stats().Generations, 1);
  EXPECT_EQ(S.pendingPrefetches(), 0u);

  // The foreground request finds the warmed artifact in the memory tier.
  GetResult R = S.get(Src, O);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(S.stats().Generations, 1);
  EXPECT_EQ(S.stats().MemHits, 1);

  // Re-warming a cached key is a cheap no-op.
  S.prefetch(Src, O);
  S.drainPrefetches();
  EXPECT_EQ(S.stats().Generations, 1);
}

TEST(ServicePrefetch, ManyWarmsAcrossWorkersAllLand) {
  ServiceConfig C;
  C.UseCompiler = false;
  C.PrefetchWorkers = 4;
  KernelService S(C);
  GenOptions O;
  O.Isa = &scalarIsa();
  const int Sizes[] = {4, 6, 8, 10, 12};
  for (int N : Sizes) {
    O.FuncName = "pw" + std::to_string(N);
    S.prefetch(la::potrfSource(N), O);
  }
  S.drainPrefetches();
  EXPECT_EQ(S.stats().Prefetches, 5);
  EXPECT_EQ(S.stats().Generations, 5);
  EXPECT_EQ(S.cachedKernels(), 5u);
}

TEST(ServiceFlight, ConcurrentMissesTriggerOneGeneration) {
  ServiceConfig C;
  C.UseCompiler = false; // keep the hammer portable and deterministic
  KernelService S(C);
  std::string Src = la::kalmanSource(8, 8); // multi-HLAC: generation is slow
  GenOptions O;
  O.Isa = &scalarIsa();
  O.FuncName = "kf_flight";

  const int NumThreads = 8;
  std::atomic<int> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<ArtifactPtr> Results(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      GetResult R = S.get(Src, O);
      Results[T] = R.Kernel;
    });
  while (Ready.load() < NumThreads)
    std::this_thread::yield();
  Go = true;
  for (auto &T : Threads)
    T.join();

  ServiceStats St = S.stats();
  EXPECT_EQ(St.Generations, 1) << "single-flight must dedup generation";
  EXPECT_EQ(St.Misses, 1);
  EXPECT_EQ(St.MemHits + St.FlightJoins, NumThreads - 1);
  for (int T = 0; T < NumThreads; ++T) {
    ASSERT_TRUE(Results[T] != nullptr);
    EXPECT_EQ(Results[T].get(), Results[0].get())
        << "all requesters share one artifact";
  }
}

TEST(ServiceTuner, FallsBackToStaticCostWithoutCompiler) {
  ServiceConfig C;
  C.Measure = true;
  C.UseCompiler = false; // same path haveSystemCompiler()==false takes
  KernelService S(C);
  std::string Src = la::potrfSource(8);
  GenOptions O = hostOpts("potrf_fb");

  GetResult R = S.get(Src, O);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_FALSE(R->Measured);
  EXPECT_EQ(R->MeasuredCycles, 0.0);
  EXPECT_FALSE(R->isCallable());
  EXPECT_FALSE(R->CSource.empty());
  EXPECT_EQ(S.stats().TunerRuns, 0);
  EXPECT_EQ(S.stats().Compilations, 0);

  // The fallback ranking matches the cost-model policy of Generator::best.
  std::string Err;
  auto P = la::compileLa(Src, Err);
  ASSERT_TRUE(P) << Err;
  Generator G(std::move(*P), O);
  ASSERT_TRUE(G.isValid());
  auto Best = G.best(C.MaxVariants);
  ASSERT_TRUE(Best);
  EXPECT_EQ(R->StaticCost, Best->Cost);
  EXPECT_EQ(R->Choice, Best->Choice);
}

TEST(ServiceTuner, MeasuresAndPersistsWinningChoice) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  if (!runtime::haveCycleCounter())
    GTEST_SKIP() << "no cycle counter on this target";
  TempDir Dir;
  ServiceConfig C;
  C.Measure = true;
  C.CacheDir = Dir.Path;
  C.MeasureRepeats = 5; // tuning only needs a stable ranking
  KernelService S(C);
  std::string Src = la::potrfSource(8); // 3 algorithmic variants
  GenOptions O = hostOpts("potrf_tuned");

  GetResult R = S.get(Src, O);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_TRUE(R->Measured);
  EXPECT_GT(R->MeasuredCycles, 0.0);
  EXPECT_EQ(S.stats().TunerRuns, 1);

  // The winning choice vector and tuning provenance survive in the disk
  // tier and come back in a fresh service.
  ServiceConfig C2;
  C2.CacheDir = Dir.Path;
  KernelService S2(C2);
  GetResult R2 = S2.get(Src, O);
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_EQ(S2.stats().DiskHits, 1);
  EXPECT_EQ(S2.stats().Generations, 0);
  EXPECT_TRUE(R2->Measured);
  EXPECT_EQ(R2->Choice, R->Choice);
  EXPECT_NEAR(R2->MeasuredCycles, R->MeasuredCycles, 1e-6);
}

TEST(ServiceBatch, DispatchMatchesIndividualCalls) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  KernelService S;
  const int N = 8, Count = 4;
  std::string Src = la::potrfSource(N);
  GenOptions O = hostOpts("potrf_srv");

  // Reference: the plain (non-batched) artifact, one call per instance.
  GetResult Single = S.get(Src, O);
  ASSERT_TRUE(Single) << Single.Error;
  ASSERT_TRUE(Single->isCallable());
  ASSERT_EQ(Single->NumParams, 2); // A (in), X (out)

  std::vector<double> ARef(Count * N * N), XRef(Count * N * N, 0.0);
  // Batch buffers are cache-line aligned per the `_batch` ABI contract.
  AlignedBuffer ABatch(Count * N * N), XBatch(Count * N * N);
  for (int B = 0; B < Count; ++B) {
    Rng Rand(500 + B);
    auto A = spd(N, Rand);
    std::copy(A.begin(), A.end(), ARef.begin() + B * N * N);
  }
  std::copy(ARef.begin(), ARef.end(), ABatch.begin());
  for (int B = 0; B < Count; ++B) {
    double *Bufs[2] = {ARef.data() + B * N * N, XRef.data() + B * N * N};
    Single->call(Bufs);
  }

  // Batched: one dispatch over contiguous instance arrays.
  double *Bufs[2] = {ABatch.data(), XBatch.data()};
  GetResult Batched = S.dispatchBatch(Src, O, Count, Bufs);
  ASSERT_TRUE(Batched) << Batched.Error;
  EXPECT_TRUE(Batched->Batched);
  EXPECT_NE(Batched->Key, Single->Key)
      << "batched kernels get their own cache entry";
  EXPECT_LT(maxAbsDiff(XBatch, XRef), 1e-12);

  // Second dispatch reuses the cached batched kernel.
  long Gens = S.stats().Generations;
  std::fill(XBatch.begin(), XBatch.end(), 0.0);
  std::copy(ARef.begin(), ARef.end(), ABatch.begin());
  GetResult Again = S.dispatchBatch(Src, O, Count, Bufs);
  ASSERT_TRUE(Again) << Again.Error;
  EXPECT_EQ(S.stats().Generations, Gens);
  EXPECT_LT(maxAbsDiff(XBatch, XRef), 1e-12);
}

TEST(ServiceKey, FingerprintIsStableAndContentSensitive) {
  // Equal sources (modulo whitespace) hash equal; different content or
  // options hash differently.
  std::string A = "Mat A(8, 8) <In, UpSym, PD>;\n"
                  "Mat X(8, 8) <Out, UpTri, NS>;\n"
                  "X' * X = A;\n";
  std::string B = "Mat A(8, 8)   <In, UpSym, PD>;\n\n"
                  "Mat X(8, 8) <Out, UpTri, NS>;\n"
                  "X' * X   =   A;\n";
  std::string Err;
  auto PA = la::compileLa(A, Err);
  auto PB = la::compileLa(B, Err);
  ASSERT_TRUE(PA && PB);
  EXPECT_EQ(programFingerprint(*PA), programFingerprint(*PB));

  auto PC = la::compileLa(la::potrfSource(12), Err);
  ASSERT_TRUE(PC);
  EXPECT_NE(programFingerprint(*PA), programFingerprint(*PC));

  GenOptions O1, O2;
  O2.Isa = &scalarIsa();
  EXPECT_NE(optionsFingerprint(O1), optionsFingerprint(O2));
  GenOptions O3;
  EXPECT_EQ(optionsFingerprint(O1), optionsFingerprint(O3));

  EXPECT_EQ(hexDigest(0), "0000000000000000");
  EXPECT_EQ(hexDigest(0xdeadbeefULL), "00000000deadbeef");
}

} // namespace
