//===- tests/TestData.h - deterministic well-conditioned test matrices ---===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the random-but-reproducible inputs used across the test
/// suites and the benchmarks: general matrices, SPD matrices, and
/// well-conditioned triangular matrices (diagonally dominated so the direct
/// solvers stay numerically tame at every benchmark size).
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_TESTS_TESTDATA_H
#define SLINGEN_TESTS_TESTDATA_H

#include "support/Random.h"

#include <cmath>
#include <vector>

namespace slingen {
namespace testdata {

inline std::vector<double> general(int Rows, int Cols, Rng &R) {
  std::vector<double> A(static_cast<size_t>(Rows) * Cols);
  for (double &X : A)
    X = R.uniform(-1.0, 1.0);
  return A;
}

/// Symmetric positive definite: B^T B + N * I.
inline std::vector<double> spd(int N, Rng &R) {
  std::vector<double> B = general(N, N, R);
  std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      double Acc = 0.0;
      for (int P = 0; P < N; ++P)
        Acc += B[P * N + I] * B[P * N + J];
      A[I * N + J] = Acc + (I == J ? N : 0.0);
    }
  return A;
}

/// Lower triangular with dominant positive diagonal; zeros stored above.
inline std::vector<double> lowerTri(int N, Rng &R) {
  std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I) {
    for (int J = 0; J < I; ++J)
      A[I * N + J] = R.uniform(-1.0, 1.0);
    A[I * N + I] = R.uniform(1.0, 2.0) + 2.0;
  }
  return A;
}

/// Upper triangular with dominant positive diagonal; zeros stored below.
inline std::vector<double> upperTri(int N, Rng &R) {
  std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I) {
    A[I * N + I] = R.uniform(1.0, 2.0) + 2.0;
    for (int J = I + 1; J < N; ++J)
      A[I * N + J] = R.uniform(-1.0, 1.0);
  }
  return A;
}

/// Symmetric (not necessarily definite).
inline std::vector<double> symmetric(int N, Rng &R) {
  std::vector<double> A(static_cast<size_t>(N) * N);
  for (int I = 0; I < N; ++I)
    for (int J = I; J < N; ++J) {
      double V = R.uniform(-1.0, 1.0);
      A[I * N + J] = V;
      A[J * N + I] = V;
    }
  return A;
}

/// Element-wise max |A[i] - B[i]| over any pair of double containers with
/// size()/operator[] (std::vector, AlignedBuffer, ...).
template <typename ContainerA, typename ContainerB>
inline double maxAbsDiff(const ContainerA &A, const ContainerB &B) {
  double M = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    M = std::max(M, std::fabs(A[I] - B[I]));
  return M;
}

} // namespace testdata
} // namespace slingen

#endif // SLINGEN_TESTS_TESTDATA_H
