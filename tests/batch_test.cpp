//===- tests/batch_test.cpp - batched kernel extension ---------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The batched entry point (paper Sec. 5 future work, implemented here as
// an extension) must compute exactly count independent instances. JIT
// required; skipped without a system compiler.
//===----------------------------------------------------------------------===//

#include "cir/CEmitter.h"
#include "cir/Interp.h"
#include "cir/Verify.h"
#include "cir/Passes.h"
#include "cir/Widen.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/BatchPool.h"
#include "runtime/Jit.h"
#include "runtime/Timing.h"
#include "service/KernelService.h"
#include "slingen/SLinGen.h"
#include "support/AlignedBuffer.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include <stdlib.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

/// Fixture oracle: widened emissions must pass the static verifier before
/// the suite interprets or compiles them (cir/Verify.h).
void expectVerifies(const cir::Function &F) {
  for (const cir::VerifyError &E : cir::verify(F))
    ADD_FAILURE() << "verifier rejected " << F.Name << ": " << E.str();
}

std::optional<GenResult> mustGenerate(const std::string &Source,
                                      const VectorISA &Isa,
                                      const std::string &Name) {
  std::string Err;
  auto P = la::compileLa(Source, Err);
  if (!P) {
    ADD_FAILURE() << "LA error: " << Err;
    return std::nullopt;
  }
  GenOptions O;
  O.Isa = &Isa;
  O.FuncName = Name;
  Generator G(std::move(*P), O);
  if (!G.isValid()) {
    ADD_FAILURE() << "generator error: " << G.error();
    return std::nullopt;
  }
  auto R = G.best(3);
  if (!R)
    ADD_FAILURE() << "generation failed for " << Name;
  return R;
}

/// Per-parameter deterministic instance data for a potrf/trsyl-style
/// program: SPD for <PD> inputs, well-conditioned triangular for <LoTri>/
/// <UpTri> inputs, general data otherwise, zeros for outputs. Cache-line
/// aligned: batch base pointers cross the `_batch` ABI, which debug-asserts
/// 64-byte alignment (see runtime/Jit.h).
std::vector<AlignedBuffer> makeInstances(const cir::Function &F, int Count,
                                         int SeedBase) {
  std::vector<AlignedBuffer> Store;
  for (size_t I = 0; I < F.Params.size(); ++I) {
    const Operand *P = F.Params[I];
    size_t Sz = static_cast<size_t>(P->Rows) * P->Cols;
    AlignedBuffer Buf(static_cast<size_t>(Count) * Sz);
    bool NeedsData = P->IO != IOKind::Out; // In/InOut roots carry inputs
    for (int B = 0; B < Count && NeedsData; ++B) {
      Rng Rand(SeedBase + 131 * B + static_cast<int>(I));
      std::vector<double> Inst;
      if (P->PosDef)
        Inst = spd(P->Rows, Rand);
      else if (P->Structure == StructureKind::LowerTriangular)
        Inst = lowerTri(P->Rows, Rand);
      else if (P->Structure == StructureKind::UpperTriangular)
        Inst = upperTri(P->Rows, Rand);
      else
        Inst = general(P->Rows, P->Cols, Rand);
      std::copy(Inst.begin(), Inst.end(), Buf.begin() + B * Sz);
    }
    Store.push_back(std::move(Buf));
  }
  return Store;
}

TEST(Batched, EmittedTextHasBatchEntry) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(8), Err);
  ASSERT_TRUE(P) << Err;
  GenOptions O;
  O.Isa = &avxIsa();
  O.FuncName = "potrf8";
  Generator G(std::move(*P), O);
  ASSERT_TRUE(G.isValid());
  auto R = G.best(3);
  ASSERT_TRUE(R);
  std::string C = emitBatchedC(*R);
  EXPECT_NE(C.find("void potrf8_batch(int count"), std::string::npos);
  EXPECT_NE(C.find("for (int b = 0; b < count; ++b)"), std::string::npos);
}

TEST(Batched, MatchesIndividualRuns) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const int N = 8, Count = 5;
  std::string Err;
  auto P = la::compileLa(la::potrfSource(N), Err);
  ASSERT_TRUE(P) << Err;
  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = "potrf_b";
  Generator G(std::move(*P), O);
  ASSERT_TRUE(G.isValid());
  auto R = G.best(3);
  ASSERT_TRUE(R);
  const auto &Params = R->Func.Params;
  ASSERT_EQ(Params.size(), 2u); // A (in), X (out)

  // One TU with both the plain kernel and a fixed-count wrapper around the
  // batch loop; the wrapper keeps the kernel's parameter order, so both
  // entries share the same buffer-array call convention.
  std::string C = emitBatchedC(*R);
  C += "\nvoid potrf_batch_fixed(";
  for (size_t I = 0; I < Params.size(); ++I)
    C += std::string(I ? ", " : "") + "double *restrict " +
         Params[I]->Name;
  C += ") {\n  potrf_b_batch(" + std::to_string(Count);
  for (const Operand *Param : Params)
    C += ", " + Param->Name;
  C += ");\n}\n";

  auto KSingle = runtime::JitKernel::compile(C, "potrf_b", 2, Err);
  ASSERT_TRUE(KSingle) << Err;
  auto KBatch = runtime::JitKernel::compile(C, "potrf_batch_fixed", 2, Err);
  ASSERT_TRUE(KBatch) << Err;

  // Contiguous per-parameter instance arrays.
  std::vector<std::vector<double>> RefStore(2), BatchStore(2);
  for (size_t I = 0; I < 2; ++I) {
    size_t Sz = static_cast<size_t>(Params[I]->Rows) * Params[I]->Cols;
    RefStore[I].assign(Count * Sz, 0.0);
    BatchStore[I].assign(Count * Sz, 0.0);
  }
  for (int B = 0; B < Count; ++B) {
    Rng Rand(1000 + B);
    auto A = spd(N, Rand);
    for (size_t I = 0; I < 2; ++I)
      if (Params[I]->Name == "A") {
        std::copy(A.begin(), A.end(), RefStore[I].begin() + B * N * N);
        std::copy(A.begin(), A.end(), BatchStore[I].begin() + B * N * N);
      }
  }

  // Reference: individual calls.
  for (int B = 0; B < Count; ++B) {
    double *Bufs[2] = {RefStore[0].data() + B * N * N,
                       RefStore[1].data() + B * N * N};
    KSingle->call(Bufs);
  }
  // Batched: one call.
  double *Bufs[2] = {BatchStore[0].data(), BatchStore[1].data()};
  KBatch->call(Bufs);

  for (size_t I = 0; I < 2; ++I)
    EXPECT_LT(maxAbsDiff(BatchStore[I], RefStore[I]), 1e-12)
        << Params[I]->Name;
}

// The lane-widening walk is exact: interpreting the widened function over an
// AoSoA block must reproduce the scalar interpreter's results bit for bit
// (same IEEE operations in the same order, one instance per lane). This is
// the hermetic (compiler-free) anchor for the instance-parallel strategy.
TEST(Widen, InterpreterMatchesScalarPerInstance) {
  const int N = 6, Nu = 4;
  auto Gen = mustGenerate(la::potrfSource(N), scalarIsa(), "p6s");
  ASSERT_TRUE(Gen);
  GenResult &R = *Gen;
  auto W = cir::widenAcrossInstances(R.Func, Nu, "p6s_blk");
  ASSERT_TRUE(W);
  expectVerifies(W->Func);
  EXPECT_EQ(W->Func.Nu, Nu);
  EXPECT_EQ(W->Func.LocalVecWidth, Nu);

  const auto &Params = R.Func.Params;
  std::vector<AlignedBuffer> Inst = makeInstances(R.Func, Nu, 7000);
  std::vector<AlignedBuffer> Ref = Inst;

  // Reference: scalar interpretation, one instance at a time.
  for (int B = 0; B < Nu; ++B) {
    std::map<const Operand *, double *> Bufs;
    for (size_t I = 0; I < Params.size(); ++I) {
      size_t Sz = static_cast<size_t>(Params[I]->Rows) * Params[I]->Cols;
      Bufs[Params[I]] = Ref[I].data() + B * Sz;
    }
    cir::interpret(R.Func, Bufs);
  }

  // Widened: pack each parameter into one AoSoA block, interpret once,
  // unpack.
  std::vector<std::vector<double>> Blk;
  std::map<const Operand *, double *> Bufs;
  for (size_t I = 0; I < Params.size(); ++I) {
    size_t Sz = static_cast<size_t>(Params[I]->Rows) * Params[I]->Cols;
    auto &B = Blk.emplace_back(Sz * Nu, 0.0);
    for (size_t E = 0; E < Sz; ++E)
      for (int L = 0; L < Nu; ++L)
        B[E * Nu + L] = Inst[I][L * Sz + E];
  }
  for (size_t I = 0; I < Params.size(); ++I)
    Bufs[Params[I]] = Blk[I].data();
  cir::interpret(W->Func, Bufs);
  for (size_t I = 0; I < Params.size(); ++I) {
    size_t Sz = static_cast<size_t>(Params[I]->Rows) * Params[I]->Cols;
    for (size_t E = 0; E < Sz; ++E)
      for (int L = 0; L < Nu; ++L)
        Inst[I][L * Sz + E] = Blk[I][E * Nu + L];
  }

  for (size_t I = 0; I < Params.size(); ++I)
    EXPECT_EQ(maxAbsDiff(Inst[I], Ref[I]), 0.0) << Params[I]->Name;
}

// The fused widening is exact too -- and needs no packing at all: the
// widened function is interpreted straight over the batch ABI's contiguous
// per-instance arrays, must reproduce the scalar interpreter bit for bit,
// and must consist of lane-strided parameter accesses (that is the whole
// point: no transposes anywhere).
TEST(Widen, FusedInterpreterMatchesScalarOnBatchLayout) {
  const int N = 6, Nu = 4;
  auto Gen = mustGenerate(la::potrfSource(N), scalarIsa(), "p6f");
  ASSERT_TRUE(Gen);
  GenResult &R = *Gen;
  auto W = cir::widenAcrossInstancesFused(R.Func, Nu, "p6f_blk");
  ASSERT_TRUE(W);
  expectVerifies(W->Func);
  EXPECT_EQ(W->Func.Nu, Nu);
  EXPECT_EQ(W->Func.LocalVecWidth, Nu);

  const auto &Params = R.Func.Params;
  std::vector<AlignedBuffer> Inst = makeInstances(R.Func, Nu, 7700);
  std::vector<AlignedBuffer> Ref = Inst;

  // Reference: scalar interpretation, one instance at a time.
  for (int B = 0; B < Nu; ++B) {
    std::map<const Operand *, double *> Bufs;
    for (size_t I = 0; I < Params.size(); ++I) {
      size_t Sz = static_cast<size_t>(Params[I]->Rows) * Params[I]->Cols;
      Bufs[Params[I]] = Ref[I].data() + B * Sz;
    }
    cir::interpret(R.Func, Bufs);
  }

  // Fused: one interpretation over the untransposed batch buffers.
  std::map<const Operand *, double *> Bufs;
  for (size_t I = 0; I < Params.size(); ++I)
    Bufs[Params[I]] = Inst[I].data();
  cir::interpret(W->Func, Bufs);

  for (size_t I = 0; I < Params.size(); ++I)
    EXPECT_EQ(maxAbsDiff(Inst[I], Ref[I]), 0.0) << Params[I]->Name;
}

// The masked fused widening is the hermetic anchor for the batch tail:
// interpreting it with active_ = r must reproduce the scalar interpreter
// bit for bit on the first r instances and leave instances >= r untouched
// (dead lanes load zeros, compute in parallel, and are never stored).
TEST(Widen, MaskedFusedInterpreterMatchesScalarOnActivePrefix) {
  const int N = 6, Nu = 4;
  auto Gen = mustGenerate(la::potrfSource(N), scalarIsa(), "p6m");
  ASSERT_TRUE(Gen);
  GenResult &R = *Gen;
  auto W = cir::widenAcrossInstancesFusedMasked(R.Func, Nu, "p6m_tail");
  ASSERT_TRUE(W);
  expectVerifies(W->Func);
  EXPECT_TRUE(W->Func.HasTailMask);

  const auto &Params = R.Func.Params;
  for (int Active = 1; Active < Nu; ++Active) {
    std::vector<AlignedBuffer> Inst = makeInstances(R.Func, Nu, 8200);
    std::vector<AlignedBuffer> Ref = Inst;

    // Scalar reference touches exactly the first Active instances, so the
    // bit-exact whole-buffer comparison below also proves the masked run
    // left instances >= Active untouched.
    for (int B = 0; B < Active; ++B) {
      std::map<const Operand *, double *> Bufs;
      for (size_t I = 0; I < Params.size(); ++I) {
        size_t Sz = static_cast<size_t>(Params[I]->Rows) * Params[I]->Cols;
        Bufs[Params[I]] = Ref[I].data() + B * Sz;
      }
      cir::interpret(R.Func, Bufs);
    }

    std::map<const Operand *, double *> Bufs;
    for (size_t I = 0; I < Params.size(); ++I)
      Bufs[Params[I]] = Inst[I].data();
    cir::interpret(W->Func, Bufs, Active);

    for (size_t I = 0; I < Params.size(); ++I)
      EXPECT_EQ(maxAbsDiff(Inst[I], Ref[I]), 0.0)
          << "active=" << Active << ", param " << Params[I]->Name;
  }
}

TEST(Widen, RejectsVectorInput) {
  auto R = mustGenerate(la::potrfSource(8), avxIsa(), "p8v");
  ASSERT_TRUE(R);
  EXPECT_FALSE(cir::widenAcrossInstances(R->Func, 4, "p8v_blk"));
  EXPECT_FALSE(cir::widenAcrossInstancesFused(R->Func, 4, "p8v_fblk"));
  auto S = mustGenerate(la::potrfSource(8), scalarIsa(), "p8s");
  ASSERT_TRUE(S);
  EXPECT_FALSE(cir::widenAcrossInstances(S->Func, 1, "p8s_blk"));
}

/// JIT-compiles all three batched strategies for \p Source under \p Isa
/// and verifies the two instance-parallel forms (packed and fused) agree
/// with the scalar loop for every count in \p Counts (covering count < Nu,
/// count % Nu != 0, and multi-block batches).
void expectStrategiesAgree(const std::string &Source, const VectorISA &Isa,
                           const std::string &Name,
                           const std::vector<int> &Counts, double Tol) {
  auto Gen = mustGenerate(Source, Isa, Name);
  ASSERT_TRUE(Gen);
  GenResult &R = *Gen;
  GenOptions O;
  O.Isa = &Isa;
  O.FuncName = Name;
  std::string LoopC = emitBatchedC(R);
  std::string VecC = emitBatchedVectorC(R, &O);
  ASSERT_NE(VecC.find(Name + "_vecblk"), std::string::npos)
      << "instance-parallel emission fell back on " << Isa.Name;
  std::string FusedC = emitBatchedVectorFusedC(R, &O);
  ASSERT_NE(FusedC.find(Name + "_fusedblk"), std::string::npos)
      << "fused emission fell back on " << Isa.Name;
  EXPECT_EQ(FusedC.find("_aosoa_pack"), std::string::npos)
      << "fused emission must not transpose";

  runtime::CompileOptions CO;
  CO.ExtraFlags = runtime::isaCompileFlags(Isa);
  CO.WithBatchEntry = true;
  std::string Err;
  int NumParams = static_cast<int>(R.Func.Params.size());
  auto KLoop = runtime::JitKernel::compile(LoopC, Name, NumParams, CO, Err);
  ASSERT_TRUE(KLoop) << Err;
  auto KVec = runtime::JitKernel::compile(VecC, Name, NumParams, CO, Err);
  ASSERT_TRUE(KVec) << Err;
  auto KFused = runtime::JitKernel::compile(FusedC, Name, NumParams, CO,
                                            Err);
  ASSERT_TRUE(KFused) << Err;

  struct Alt {
    const char *Label;
    runtime::JitKernel *Kernel;
  } Alts[] = {{"vec", &*KVec}, {"fused", &*KFused}};
  for (int Count : Counts) {
    std::vector<AlignedBuffer> LoopStore =
        makeInstances(R.Func, Count, 9000 + Count);
    std::vector<AlignedBuffer> Init = LoopStore;
    std::vector<double *> LoopBufs;
    for (auto &S : LoopStore)
      LoopBufs.push_back(S.data());
    KLoop->callBatch(Count, LoopBufs.data());
    for (const Alt &A : Alts) {
      std::vector<AlignedBuffer> Store = Init;
      std::vector<double *> Bufs;
      for (auto &S : Store)
        Bufs.push_back(S.data());
      A.Kernel->callBatch(Count, Bufs.data());
      double Nonzero = 0.0;
      for (size_t I = 0; I < LoopStore.size(); ++I) {
        EXPECT_LT(maxAbsDiff(Store[I], LoopStore[I]), Tol)
            << Name << "/" << A.Label << " on " << Isa.Name
            << ", count=" << Count << ", param "
            << R.Func.Params[I]->Name;
        for (double V : Store[I])
          Nonzero += std::fabs(V);
      }
      EXPECT_GT(Nonzero, 0.0) << A.Label << " wrote nothing";
    }
  }
}

// Instance-parallel results must match the scalar loop for every ISA this
// host can execute. The tolerance is tight but not bit-exact: the two
// strategies expose different mul+add sequences to the C compiler's FMA
// contraction, which is the only permitted divergence (div/sqrt chains
// amplify it slightly).
TEST(Batched, InstanceParallelMatchesScalarLoopAcrossIsas) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const int HostNu = hostIsa().Nu;
  if (HostNu < 2)
    GTEST_SKIP() << "host has no vector ISA";
  for (const VectorISA *Isa : {&sse2Isa(), &avxIsa(), &avx512Isa()}) {
    if (Isa->Nu > HostNu)
      continue;
    int Nu = Isa->Nu;
    std::vector<int> Counts = {1, Nu - 1, Nu, 2 * Nu + 1, 4 * Nu};
    expectStrategiesAgree(la::potrfSource(8), *Isa,
                          std::string("potrf8_") + Isa->Name, Counts, 1e-10);
  }
}

TEST(Batched, TrsylInstanceParallelMatchesScalarLoop) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const VectorISA &Isa = hostIsa();
  if (Isa.Nu < 2)
    GTEST_SKIP() << "host has no vector ISA";
  std::vector<int> Counts = {Isa.Nu - 1, 3 * Isa.Nu + 2};
  expectStrategiesAgree(la::trsylSource(6), Isa, "trsyl6", Counts, 1e-9);
}

// The fused emission must run the count % Nu remainder through the masked
// widened tail block, not a scalar fallback loop.
TEST(Batched, FusedEmissionHasMaskedTailNotScalarRemainder) {
  auto Gen = mustGenerate(la::potrfSource(8), avxIsa(), "p8tl");
  ASSERT_TRUE(Gen);
  GenOptions O;
  O.Isa = &avxIsa();
  O.FuncName = "p8tl";
  std::string C = emitBatchedVectorFusedC(*Gen, &O);
  ASSERT_NE(C.find("p8tl_fusedblk"), std::string::npos);
  EXPECT_NE(C.find("p8tl_fusedtail"), std::string::npos)
      << "fused batch must emit a masked tail block";
  EXPECT_NE(C.find("int active_"), std::string::npos);
  EXPECT_EQ(C.find("for (; b < count; ++b)"), std::string::npos)
      << "fused batch must not fall back to a scalar remainder loop";
}

// The masked tail's active lanes run the exact instruction sequence of a
// full fused block, so a ragged batch must be bit-identical to running the
// same instances inside a padded Nu-divisible batch -- for every residue
// on every ISA this host can execute.
TEST(Batched, MaskedTailBitIdenticalToPaddedFullBlocks) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const int HostNu = hostIsa().Nu;
  if (HostNu < 2)
    GTEST_SKIP() << "host has no vector ISA";
  for (const VectorISA *Isa : {&sse2Isa(), &avxIsa(), &avx512Isa()}) {
    if (Isa->Nu > HostNu)
      continue;
    const int Nu = Isa->Nu;
    std::string Name = std::string("p6pad_") + Isa->Name;
    auto Gen = mustGenerate(la::potrfSource(6), *Isa, Name);
    ASSERT_TRUE(Gen);
    GenResult &R = *Gen;
    GenOptions O;
    O.Isa = Isa;
    O.FuncName = Name;
    std::string C = emitBatchedVectorFusedC(R, &O);
    ASSERT_NE(C.find(Name + "_fusedtail"), std::string::npos)
        << "fused emission fell back on " << Isa->Name;
    runtime::CompileOptions CO;
    CO.ExtraFlags = runtime::isaCompileFlags(*Isa);
    CO.WithBatchEntry = true;
    std::string Err;
    auto K = runtime::JitKernel::compile(
        C, Name, static_cast<int>(R.Func.Params.size()), CO, Err);
    ASSERT_TRUE(K) << Err;

    for (int Residue = 1; Residue < Nu; ++Residue) {
      const int Count = 2 * Nu + Residue, Padded = 3 * Nu;
      // makeInstances seeds per instance, so the padded batch extends the
      // ragged one with identical leading instances.
      std::vector<AlignedBuffer> Ragged =
          makeInstances(R.Func, Count, 8800 + Nu);
      std::vector<AlignedBuffer> Full =
          makeInstances(R.Func, Padded, 8800 + Nu);
      std::vector<double *> RBufs, FBufs;
      for (auto &S : Ragged)
        RBufs.push_back(S.data());
      for (auto &S : Full)
        FBufs.push_back(S.data());
      K->callBatch(Count, RBufs.data());
      K->callBatch(Padded, FBufs.data());
      for (size_t I = 0; I < Ragged.size(); ++I) {
        size_t Sz = static_cast<size_t>(R.Func.Params[I]->Rows) *
                    R.Func.Params[I]->Cols;
        double M = 0.0;
        for (size_t E = 0; E < Sz * Count; ++E)
          M = std::max(M, std::fabs(Ragged[I][E] - Full[I][E]));
        EXPECT_EQ(M, 0.0) << Isa->Name << " residue=" << Residue
                          << ", param " << R.Func.Params[I]->Name;
      }
    }
  }
}

// Interpreter-vs-JIT oracle for the masked tail function itself: the
// emitted C (compiled with FMA contraction pinned off, so the only fused
// multiply-adds are the ones the IR-level contraction placed) must agree
// bit for bit with the interpreter at every active lane count.
TEST(Batched, MaskedTailJitMatchesInterpreterBitExactly) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const int HostNu = hostIsa().Nu;
  if (HostNu < 2)
    GTEST_SKIP() << "host has no vector ISA";
  for (const VectorISA *Isa : {&sse2Isa(), &avxIsa(), &avx512Isa()}) {
    if (Isa->Nu > HostNu)
      continue;
    const int Nu = Isa->Nu;
    std::string Name = std::string("p6orc_") + Isa->Name;
    auto Gen = mustGenerate(la::potrfSource(6), scalarIsa(), Name);
    ASSERT_TRUE(Gen);
    GenResult &R = *Gen;
    auto W = cir::widenAcrossInstancesFusedMasked(R.Func, Nu,
                                                  Name + "_tail");
    ASSERT_TRUE(W);
    // Same pipeline as the production fused emission: explicit IR-level
    // contraction on FMA-capable widths (the interpreter mirrors it).
    if (Nu >= 4)
      cir::contractFma(W->Func);
    expectVerifies(W->Func);

    const auto &Params = R.Func.Params;
    // The uniform trampoline only passes double pointers, so the oracle
    // wrapper smuggles active_ through a pointed-to double.
    std::string C = cir::emitTranslationUnit(W->Func);
    C += "\nvoid " + Name + "_w(";
    for (const Operand *P : Params)
      C += "double *" + P->Name + ", ";
    C += "double *activep) {\n  " + Name + "_tail(";
    for (const Operand *P : Params)
      C += P->Name + ", ";
    C += "(int)*activep);\n}\n";
    std::string Err;
    auto K = runtime::JitKernel::compile(
        C, Name + "_w", static_cast<int>(Params.size()) + 1, Err,
        runtime::isaCompileFlags(*Isa) + " -ffp-contract=off");
    ASSERT_TRUE(K) << Err;

    for (int Active = 1; Active < Nu; ++Active) {
      std::vector<AlignedBuffer> Jit = makeInstances(R.Func, Nu, 8400);
      std::vector<AlignedBuffer> Itp = Jit;
      double ActiveD = Active;
      std::vector<double *> JBufs;
      for (auto &S : Jit)
        JBufs.push_back(S.data());
      JBufs.push_back(&ActiveD);
      K->call(JBufs.data());

      std::map<const Operand *, double *> Bufs;
      for (size_t I = 0; I < Params.size(); ++I)
        Bufs[Params[I]] = Itp[I].data();
      cir::interpret(W->Func, Bufs, Active);

      for (size_t I = 0; I < Params.size(); ++I)
        EXPECT_EQ(maxAbsDiff(Jit[I], Itp[I]), 0.0)
            << Isa->Name << " active=" << Active << ", param "
            << Params[I]->Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Batch thread pool and threaded dispatch.
//===----------------------------------------------------------------------===//

// Every block index is handed out exactly once, whatever the ratio of
// items to threads (more threads than items, odd chunking, single item).
TEST(BatchPool, CoversEveryIndexExactlyOnce) {
  // 63/65/1025 straddle block boundaries: off-by-one partitions show up
  // as a dropped or double-claimed edge index.
  for (long Items : {1L, 7L, 63L, 64L, 65L, 1000L, 1025L}) {
    for (int Threads : {1, 2, 4, 9}) {
      std::vector<std::atomic<int>> Hits(Items);
      for (auto &H : Hits)
        H.store(0);
      runtime::BatchPool::shared().run(Items, Threads,
                                       [&](long Lo, long Hi) {
                                         for (long I = Lo; I < Hi; ++I)
                                           Hits[I].fetch_add(1);
                                       });
      for (long I = 0; I < Items; ++I)
        EXPECT_EQ(Hits[I].load(), 1)
            << "item " << I << " items=" << Items
            << " threads=" << Threads;
    }
  }
}

// Sticky scheduling: repeated runs of the same (items, threads) shape must
// hand every block index to the same thread, keeping per-thread cache and
// (pinned) per-core memory locality across repeated callBatchParallel
// calls. Stealing is disabled so rebalancing noise cannot mask a broken
// slot->thread map; each slot then drains only under its owner.
TEST(BatchPool, StickyBlockAssignmentAcrossRuns) {
  runtime::BatchPool::setStealing(false);
  const long Items = 64;
  const int Threads = 4;
  auto Record = [&] {
    std::vector<std::thread::id> Owner(Items);
    runtime::BatchPool::shared().run(Items, Threads, [&](long Lo, long Hi) {
      for (long I = Lo; I < Hi; ++I)
        Owner[I] = std::this_thread::get_id();
    });
    return Owner;
  };
  std::vector<std::thread::id> First = Record();
  std::vector<std::thread::id> Second = Record();
  runtime::BatchPool::setStealing(true);
  ASSERT_EQ(First.size(), Second.size());
  for (long I = 0; I < Items; ++I)
    EXPECT_EQ(First[I], Second[I]) << "block " << I << " moved threads";
  // The caller participates: its slot stays on the calling thread.
  EXPECT_EQ(First[0], std::this_thread::get_id());
}

// Threaded dispatch must be a pure scheduling change: instances land in
// disjoint buffer ranges, every instance runs the same code, so the result
// is bit-identical to a single-threaded callBatch -- including the
// count % Nu remainder, which runs on the calling thread.
TEST(Batched, ThreadedDispatchIsBitIdenticalToSingleThread) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const VectorISA &Isa = hostIsa();
  if (Isa.Nu < 2)
    GTEST_SKIP() << "host has no vector ISA";
  auto Gen = mustGenerate(la::potrfSource(8), Isa, "p8mt");
  ASSERT_TRUE(Gen);
  GenResult &R = *Gen;
  GenOptions O;
  O.Isa = &Isa;
  O.FuncName = "p8mt";
  std::string C = emitBatchedVectorFusedC(R, &O);
  runtime::CompileOptions CO;
  CO.ExtraFlags = runtime::isaCompileFlags(Isa);
  CO.WithBatchEntry = true;
  std::string Err;
  auto K = runtime::JitKernel::compile(
      C, "p8mt", static_cast<int>(R.Func.Params.size()), CO, Err);
  ASSERT_TRUE(K) << Err;
  ASSERT_TRUE(K->hasBatchSpan()) << "span entry missing from emission";

  const int Count = 9 * Isa.Nu + 3; // several blocks plus a remainder
  std::vector<AlignedBuffer> Init = makeInstances(R.Func, Count, 6100);
  auto RunWith = [&](int Threads) {
    std::vector<AlignedBuffer> Store = Init;
    std::vector<double *> Bufs;
    for (auto &S : Store)
      Bufs.push_back(S.data());
    if (Threads <= 1)
      K->callBatch(Count, Bufs.data());
    else
      runtime::callBatchParallel(*K, Count, Bufs.data(), Isa.Nu, Threads);
    return Store;
  };
  std::vector<AlignedBuffer> Single = RunWith(1);
  // 4 threads even on narrower hosts: the pool oversubscribes so the
  // stealing path is exercised everywhere.
  for (int Threads : {2, 4}) {
    std::vector<AlignedBuffer> Threaded = RunWith(Threads);
    for (size_t I = 0; I < Single.size(); ++I)
      EXPECT_EQ(maxAbsDiff(Threaded[I], Single[I]), 0.0)
          << "threads=" << Threads << ", param "
          << R.Func.Params[I]->Name;
  }
  // A direct span sanity check: running [0, Count) in two manual halves
  // equals one call.
  std::vector<AlignedBuffer> Store = Init;
  std::vector<double *> Bufs;
  for (auto &S : Store)
    Bufs.push_back(S.data());
  int Half = (Count / 2 / Isa.Nu) * Isa.Nu; // block-aligned split
  K->callBatchSpan(0, Half, Bufs.data());
  K->callBatchSpan(Half, Count - Half, Bufs.data());
  for (size_t I = 0; I < Single.size(); ++I)
    EXPECT_EQ(maxAbsDiff(Store[I], Single[I]), 0.0)
        << "span halves, param " << R.Func.Params[I]->Name;
}

//===----------------------------------------------------------------------===//
// Service-level strategy selection and persistence.
//===----------------------------------------------------------------------===//

struct TempDir {
  TempDir() {
    char Tmpl[] = "/tmp/slingen_batch_XXXXXX";
    Path = mkdtemp(Tmpl);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string Path;
};

TEST(ServiceBatchStrategy, PinnedFusedServesTransposeFreeEmission) {
  service::ServiceConfig C;
  C.UseCompiler = false;
  C.Strategy = BatchStrategy::InstanceParallelFused;
  C.BatchThreads = 3; // pinned width rides the artifact
  service::KernelService S(C);
  GenOptions O;
  O.Isa = &avxIsa();
  O.FuncName = "p8_fused";
  service::GetResult R = S.get(la::potrfSource(8), O, /*Batched=*/true);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R->Strategy, BatchStrategy::InstanceParallelFused);
  EXPECT_EQ(R->BatchThreads, 3);
  EXPECT_NE(R->CSource.find("p8_fused_fusedblk"), std::string::npos);
  EXPECT_NE(R->CSource.find("p8_fused_batch_span(int start"),
            std::string::npos);
  EXPECT_EQ(R->CSource.find("_aosoa_pack"), std::string::npos)
      << "fused emission must not transpose";

  // Distinct cache entry from the packed strategy.
  service::ServiceConfig C2 = C;
  C2.Strategy = BatchStrategy::InstanceParallel;
  service::KernelService S2(C2);
  service::GetResult R2 = S2.get(la::potrfSource(8), O, /*Batched=*/true);
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_NE(R2->Key, R->Key);
}

TEST(ServiceBatchStrategy, PinnedInstanceParallelFallsBackOnScalarIsa) {
  service::ServiceConfig C;
  C.UseCompiler = false;
  C.Strategy = BatchStrategy::InstanceParallel;
  service::KernelService S(C);
  GenOptions O;
  O.Isa = &scalarIsa();
  O.FuncName = "p8_scalar";
  service::GetResult R = S.get(la::potrfSource(8), O, /*Batched=*/true);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R->Strategy, BatchStrategy::ScalarLoop);
  EXPECT_NE(R->CSource.find("p8_scalar_batch(int count"), std::string::npos);
  EXPECT_EQ(R->CSource.find("_vecblk"), std::string::npos);
}

TEST(ServiceBatchStrategy, PinnedStrategiesGetDistinctEntries) {
  service::ServiceConfig C;
  C.UseCompiler = false;
  C.Strategy = BatchStrategy::ScalarLoop;
  GenOptions O;
  O.Isa = &avxIsa();
  O.FuncName = "p8_pin";
  std::string Src = la::potrfSource(8);

  service::KernelService SLoop(C);
  service::GetResult RLoop = SLoop.get(Src, O, /*Batched=*/true);
  ASSERT_TRUE(RLoop) << RLoop.Error;
  EXPECT_EQ(RLoop->Strategy, BatchStrategy::ScalarLoop);
  EXPECT_EQ(RLoop->CSource.find("_vecblk"), std::string::npos);

  C.Strategy = BatchStrategy::InstanceParallel;
  service::KernelService SVec(C);
  service::GetResult RVec = SVec.get(Src, O, /*Batched=*/true);
  ASSERT_TRUE(RVec) << RVec.Error;
  EXPECT_EQ(RVec->Strategy, BatchStrategy::InstanceParallel);
  EXPECT_NE(RVec->CSource.find("p8_pin_vecblk"), std::string::npos);
  EXPECT_NE(RVec->CSource.find("p8_pin_aosoa_pack"), std::string::npos);
  EXPECT_NE(RVec->Key, RLoop->Key)
      << "pinned strategies must be cached independently";
}

TEST(ServiceBatchStrategy, AutoResolvesPersistsAndRoundTrips) {
  TempDir Dir;
  std::string Src = la::potrfSource(8);
  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = "p8_auto";

  BatchStrategy Chosen;
  int ChosenThreads;
  bool Measured;
  std::string Key;
  {
    service::ServiceConfig C;
    C.CacheDir = Dir.Path;
    ASSERT_EQ(C.Strategy, BatchStrategy::Auto) << "Auto is the default";
    ASSERT_EQ(C.BatchThreads, 0) << "auto thread resolution is the default";
    service::KernelService S(C);
    service::GetResult R = S.get(Src, O, /*Batched=*/true);
    ASSERT_TRUE(R) << R.Error;
    Chosen = R->Strategy;
    ChosenThreads = R->BatchThreads;
    Key = R->Key;
    EXPECT_NE(Chosen, BatchStrategy::Auto)
        << "published artifacts carry a concrete strategy";
    EXPECT_GE(ChosenThreads, 1);
    // With a compiler and cycle counter the choice is measured; otherwise
    // the static model ran. Either way the disk tier records it.
    Measured = runtime::haveSystemCompiler() && runtime::haveCycleCounter();
    if (Measured && hostIsa().Nu >= 2)
      EXPECT_EQ(S.stats().TunerRuns, 1);
    std::string Meta =
        Dir.Path + "/" + Key.substr(0, 2) + "/" + Key.substr(2) + ".meta";
    ASSERT_TRUE(std::filesystem::exists(Meta));
    std::ifstream In(Meta);
    std::string MetaText((std::istreambuf_iterator<char>(In)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(MetaText.find(std::string("strategy=") +
                            batchStrategyName(Chosen)),
              std::string::npos);
    EXPECT_NE(MetaText.find("threads=" + std::to_string(ChosenThreads)),
              std::string::npos)
        << "the resolved dispatch width must ride the .meta";
  }

  // A fresh service honors the persisted choice without re-measuring.
  service::ServiceConfig C2;
  C2.CacheDir = Dir.Path;
  service::KernelService S2(C2);
  service::GetResult R2 = S2.get(Src, O, /*Batched=*/true);
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_EQ(S2.stats().DiskHits, 1);
  EXPECT_EQ(S2.stats().Generations, 0);
  EXPECT_EQ(S2.stats().TunerRuns, 0);
  EXPECT_EQ(R2->Strategy, Chosen);
  EXPECT_EQ(R2->BatchThreads, ChosenThreads);
  EXPECT_EQ(R2->Key, Key);
}

TEST(ServiceBatchStrategy, AutoDispatchMatchesIndividualCalls) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  service::KernelService S;
  const int N = 8;
  const int Count = 2 * hostIsa().Nu + 3; // blocks plus remainder
  std::string Src = la::potrfSource(N);
  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = "p8_adsp";

  service::GetResult Single = S.get(Src, O);
  ASSERT_TRUE(Single) << Single.Error;
  ASSERT_TRUE(Single->isCallable());

  std::vector<double> ARef(Count * N * N), XRef(Count * N * N, 0.0);
  for (int B = 0; B < Count; ++B) {
    Rng Rand(4200 + B);
    auto A = spd(N, Rand);
    std::copy(A.begin(), A.end(), ARef.begin() + B * N * N);
  }
  AlignedBuffer ABatch(Count * N * N), XBatch(Count * N * N);
  std::copy(ARef.begin(), ARef.end(), ABatch.begin());
  for (int B = 0; B < Count; ++B) {
    double *Bufs[2] = {ARef.data() + B * N * N, XRef.data() + B * N * N};
    Single->call(Bufs);
  }
  double *Bufs[2] = {ABatch.data(), XBatch.data()};
  service::GetResult Batched = S.dispatchBatch(Src, O, Count, Bufs);
  ASSERT_TRUE(Batched) << Batched.Error;
  EXPECT_NE(Batched->Strategy, BatchStrategy::Auto);
  EXPECT_LT(maxAbsDiff(XBatch, XRef), 1e-10);

  // A per-request pinned dispatch width routes through the thread pool and
  // must agree bit for bit with the single-threaded dispatch above.
  AlignedBuffer AMt(Count * N * N), XMt(Count * N * N);
  std::copy(ARef.begin(), ARef.end(), AMt.begin());
  double *MtBufs[2] = {AMt.data(), XMt.data()};
  service::RequestOptions MtReq;
  MtReq.Threads = 4;
  service::GetResult Mt = S.dispatchBatch(Src, O, Count, MtBufs, MtReq);
  ASSERT_TRUE(Mt) << Mt.Error;
  EXPECT_EQ(maxAbsDiff(XMt, XBatch), 0.0)
      << "threaded dispatch must be a pure scheduling change";
}

} // namespace
