//===- tests/batch_test.cpp - batched kernel extension ---------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The batched entry point (paper Sec. 5 future work, implemented here as
// an extension) must compute exactly count independent instances. JIT
// required; skipped without a system compiler.
//===----------------------------------------------------------------------===//

#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/Jit.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

TEST(Batched, EmittedTextHasBatchEntry) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(8), Err);
  ASSERT_TRUE(P) << Err;
  GenOptions O;
  O.Isa = &avxIsa();
  O.FuncName = "potrf8";
  Generator G(std::move(*P), O);
  ASSERT_TRUE(G.isValid());
  auto R = G.best(3);
  ASSERT_TRUE(R);
  std::string C = emitBatchedC(*R);
  EXPECT_NE(C.find("void potrf8_batch(int count"), std::string::npos);
  EXPECT_NE(C.find("for (int b = 0; b < count; ++b)"), std::string::npos);
}

TEST(Batched, MatchesIndividualRuns) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const int N = 8, Count = 5;
  std::string Err;
  auto P = la::compileLa(la::potrfSource(N), Err);
  ASSERT_TRUE(P) << Err;
  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = "potrf_b";
  Generator G(std::move(*P), O);
  ASSERT_TRUE(G.isValid());
  auto R = G.best(3);
  ASSERT_TRUE(R);
  const auto &Params = R->Func.Params;
  ASSERT_EQ(Params.size(), 2u); // A (in), X (out)

  // One TU with both the plain kernel and a fixed-count wrapper around the
  // batch loop; the wrapper keeps the kernel's parameter order, so both
  // entries share the same buffer-array call convention.
  std::string C = emitBatchedC(*R);
  C += "\nvoid potrf_batch_fixed(";
  for (size_t I = 0; I < Params.size(); ++I)
    C += std::string(I ? ", " : "") + "double *restrict " +
         Params[I]->Name;
  C += ") {\n  potrf_b_batch(" + std::to_string(Count);
  for (const Operand *Param : Params)
    C += ", " + Param->Name;
  C += ");\n}\n";

  auto KSingle = runtime::JitKernel::compile(C, "potrf_b", 2, Err);
  ASSERT_TRUE(KSingle) << Err;
  auto KBatch = runtime::JitKernel::compile(C, "potrf_batch_fixed", 2, Err);
  ASSERT_TRUE(KBatch) << Err;

  // Contiguous per-parameter instance arrays.
  std::vector<std::vector<double>> RefStore(2), BatchStore(2);
  for (size_t I = 0; I < 2; ++I) {
    size_t Sz = static_cast<size_t>(Params[I]->Rows) * Params[I]->Cols;
    RefStore[I].assign(Count * Sz, 0.0);
    BatchStore[I].assign(Count * Sz, 0.0);
  }
  for (int B = 0; B < Count; ++B) {
    Rng Rand(1000 + B);
    auto A = spd(N, Rand);
    for (size_t I = 0; I < 2; ++I)
      if (Params[I]->Name == "A") {
        std::copy(A.begin(), A.end(), RefStore[I].begin() + B * N * N);
        std::copy(A.begin(), A.end(), BatchStore[I].begin() + B * N * N);
      }
  }

  // Reference: individual calls.
  for (int B = 0; B < Count; ++B) {
    double *Bufs[2] = {RefStore[0].data() + B * N * N,
                       RefStore[1].data() + B * N * N};
    KSingle->call(Bufs);
  }
  // Batched: one call.
  double *Bufs[2] = {BatchStore[0].data(), BatchStore[1].data()};
  KBatch->call(Bufs);

  for (size_t I = 0; I < 2; ++I)
    EXPECT_LT(maxAbsDiff(BatchStore[I], RefStore[I]), 1e-12)
        << Params[I]->Name;
}

} // namespace
