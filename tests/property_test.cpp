//===- tests/property_test.cpp - randomized invariant checks ---------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Properties that must hold for *every* program the generator accepts:
//   - the Stage 3 passes preserve semantics (pass-on == pass-off),
//   - all ISA targets compute the same function,
//   - Program::clone is a faithful deep copy,
//   - synthesized HLAC expansions have the expected asymptotic flop cost.
// Programs are drawn from a randomized family of shaped sBLAC statements
// plus the paper's HLACs.
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "expr/Evaluator.h"
#include "isa/ISA.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

#include <map>

using namespace slingen;
using namespace slingen::testdata;

namespace {

//===----------------------------------------------------------------------===//
// Randomized sBLAC programs.
//===----------------------------------------------------------------------===//

/// Builds a random but well-formed program with 2-5 statements over
/// operands of dimensions in [1, 9], mixing products, transposes, scalar
/// coefficients and structured square operands.
Program randomProgram(Rng &R) {
  Program P;
  auto Dim = [&] { return 1 + static_cast<int>(R.next() % 9); };
  int M = Dim(), K = Dim(), N = Dim();

  Operand *A = P.addOperand("A", M, K);
  Operand *B = P.addOperand("B", K, N);
  Operand *D = P.addOperand("D", M, N);
  Operand *T = P.addOperand("T", K, K);
  switch (R.next() % 4) {
  case 0:
    T->Structure = StructureKind::LowerTriangular;
    break;
  case 1:
    T->Structure = StructureKind::UpperTriangular;
    break;
  case 2:
    T->Structure = StructureKind::SymmetricLower;
    break;
  default:
    break;
  }
  Operand *Alpha = P.addOperand("alpha", 1, 1);
  Operand *C = P.addOperand("C", M, N);
  C->IO = IOKind::Out;
  Operand *E = P.addOperand("E", M, K);
  E->IO = IOKind::Out;
  Operand *F = P.addOperand("F", N, N);
  F->IO = IOKind::Out;

  // Statement 1: E = A * T (structured factor) or E = alpha * A.
  if (R.next() % 2)
    P.append({view(E), mul(view(A), view(T))});
  else
    P.append({view(E), mul(view(Alpha), view(A))});
  // Statement 2: C = E * B + D or C = D - E * B.
  if (R.next() % 2)
    P.append({view(C), add(mul(view(E), view(B)), view(D))});
  else
    P.append({view(C), sub(view(D), mul(view(E), view(B)))});
  // Statement 3: F = B' * E' ... dimensions: B' (N x K), E' (K x M) -> N x M;
  // only valid when M == N. Use C' * C (N x M * M x N) instead: requires
  // C read after write -- allowed (C defined by stmt 2).
  P.append({view(F), mul(trans(view(C)), view(C))});
  // Optional statement 4: C = C - alpha * D (self-update).
  if (R.next() % 2)
    P.append({view(C), sub(view(C), mul(view(Alpha), view(D)))});
  return P;
}

/// Fills inputs of \p P deterministically, runs the dense evaluator, and
/// returns the named outputs.
std::map<std::string, std::vector<double>>
referenceRun(const Program &P, uint64_t Seed) {
  Rng R(Seed);
  Env E;
  for (const Operand *Op : P.operands())
    if (Op->IO != IOKind::Out) {
      std::vector<double> Data =
          general(Op->Rows, Op->Cols, R); // structure-agnostic fill
      if (Op->Structure == StructureKind::LowerTriangular)
        Data = lowerTri(Op->Rows, R);
      else if (Op->Structure == StructureKind::UpperTriangular)
        Data = upperTri(Op->Rows, R);
      else if (isSymmetric(Op->Structure))
        Data = symmetric(Op->Rows, R);
      E.set(Op, Data);
    }
  evalProgram(P, E);
  std::map<std::string, std::vector<double>> Out;
  for (const Operand *Op : P.operands())
    Out[Op->Name] = E.get(Op);
  return Out;
}

/// Runs the generated pipeline (with \p O) on \p P and compares all
/// user-visible outputs with \p Want.
void checkGenerated(Program P, const GenOptions &O, uint64_t Seed,
                    const std::map<std::string, std::vector<double>> &Want,
                    const char *What) {
  Generator G(std::move(P), O);
  ASSERT_TRUE(G.isValid()) << What << ": " << G.error();
  auto R = G.best(4);
  ASSERT_TRUE(R) << What;

  std::map<const Operand *, double *> Bufs;
  std::map<std::string, std::vector<double>> Storage;
  for (const Operand *Param : R->Func.Params) {
    auto &Buf = Storage[Param->Name];
    Buf.assign(static_cast<size_t>(Param->Rows) * Param->Cols, 0.0);
    Bufs[Param] = Buf.data();
  }
  // Inputs are regenerated with the same seed, assignment order, and RNG
  // stream consumption as referenceRun (declaration order is preserved by
  // clone/normalize, temps are appended after the user declarations).
  {
    Rng R3(Seed);
    for (const Operand *Op : R->Basic.operands()) {
      if (Op->IsTemp || Op->IO == IOKind::Out)
        continue;
      std::vector<double> Data = general(Op->Rows, Op->Cols, R3);
      if (Op->Structure == StructureKind::LowerTriangular)
        Data = lowerTri(Op->Rows, R3);
      else if (Op->Structure == StructureKind::UpperTriangular)
        Data = upperTri(Op->Rows, R3);
      else if (isSymmetric(Op->Structure))
        Data = symmetric(Op->Rows, R3);
      auto It = Storage.find(Op->root()->Name);
      ASSERT_NE(It, Storage.end());
      It->second = Data;
    }
  }
  cir::interpret(R->Func, Bufs);

  for (const Operand *Op : R->Basic.operands()) {
    if (Op->IsTemp || !Op->isWritable())
      continue;
    auto ItWant = Want.find(Op->Name);
    ASSERT_NE(ItWant, Want.end()) << Op->Name;
    const std::vector<double> &Got = Storage[Op->root()->Name];
    ASSERT_EQ(Got.size(), ItWant->second.size());
    double MaxDiff = 0.0;
    for (size_t I = 0; I < Got.size(); ++I)
      MaxDiff = std::max(MaxDiff,
                         std::fabs(Got[I] - ItWant->second[I]));
    EXPECT_LT(MaxDiff, 1e-9) << What << " output " << Op->Name;
  }
}

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, PassesPreserveSemantics) {
  uint64_t Seed = 1000 + GetParam();
  Rng R(Seed);
  Program P = randomProgram(R);
  auto Want = referenceRun(P, Seed);

  GenOptions Full;
  Full.Isa = &avxIsa();
  checkGenerated(P.clone(), Full, Seed, Want, "full pipeline");

  GenOptions NoOpt = Full;
  NoOpt.EnableUnroll = false;
  NoOpt.EnableCse = false;
  NoOpt.EnableLoadStoreOpt = false;
  NoOpt.EnableDce = false;
  NoOpt.ApplyVectorRules = false;
  checkGenerated(P.clone(), NoOpt, Seed, Want, "passes disabled");
}

TEST_P(RandomPrograms, AllIsasAgree) {
  uint64_t Seed = 2000 + GetParam();
  Rng R(Seed);
  Program P = randomProgram(R);
  auto Want = referenceRun(P, Seed);
  for (const char *Isa : {"scalar", "sse2", "avx", "avx512"}) {
    GenOptions O;
    O.Isa = &isaByName(Isa);
    checkGenerated(P.clone(), O, Seed, Want, Isa);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0, 24));

//===----------------------------------------------------------------------===//
// Clone fidelity.
//===----------------------------------------------------------------------===//

TEST(ProgramClone, DeepCopyPreservesEverything) {
  std::string Err;
  auto P = la::compileLa(la::fig5Source(8, 8), Err);
  ASSERT_TRUE(P) << Err;
  Program C = P->clone();
  EXPECT_EQ(C.str(), P->str());
  // Fresh operand identities.
  for (const Operand *Op : C.operands())
    EXPECT_EQ(P->findOperand(Op->Name)->Name, Op->Name);
  EXPECT_NE(C.findOperand("U"), P->findOperand("U"));
  // ow() chain remapped into the clone, not the original.
  EXPECT_EQ(C.findOperand("U")->root(), C.findOperand("S"));
}

TEST(ProgramClone, MutatingCloneLeavesOriginal) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(8), Err);
  ASSERT_TRUE(P) << Err;
  std::string Before = P->str();
  Program C = P->clone();
  ASSERT_TRUE(expandProgramHlacs(C, 4, {0}));
  EXPECT_GT(C.stmts().size(), P->stmts().size());
  EXPECT_EQ(P->str(), Before);
}

//===----------------------------------------------------------------------===//
// Flop-count asymptotics of the synthesized algorithms.
//===----------------------------------------------------------------------===//

double expansionFlops(const std::string &Src) {
  std::string Err;
  auto P = la::compileLa(Src, Err);
  EXPECT_TRUE(P) << Err;
  EXPECT_TRUE(expandProgramHlacs(*P, 4, {0}));
  double Flops = 0.0;
  for (const EqStmt &S : P->stmts())
    Flops += static_cast<double>(stmtFlops(S));
  return Flops;
}

TEST(ExpansionCost, PotrfIsCubicOverThree) {
  // Statement-level flops approach n^3/3 (structure savings are partially
  // modeled at this level; allow a factor-of-2 band).
  for (int N : {16, 32, 64}) {
    double F = expansionFlops(la::potrfSource(N));
    double Ideal = N * static_cast<double>(N) * N / 3.0;
    EXPECT_GT(F, 0.5 * Ideal) << N;
    EXPECT_LT(F, 2.5 * Ideal) << N;
  }
}

TEST(ExpansionCost, TrsylIsTwoCubic) {
  for (int N : {16, 32}) {
    double F = expansionFlops(la::trsylSource(N));
    double Ideal = 2.0 * N * static_cast<double>(N) * N;
    EXPECT_GT(F, 0.4 * Ideal) << N;
    EXPECT_LT(F, 2.5 * Ideal) << N;
  }
}

TEST(ExpansionCost, TrtriIsCubicOverThree) {
  for (int N : {16, 32}) {
    double F = expansionFlops(la::trtriSource(N));
    double Ideal = N * static_cast<double>(N) * N / 3.0;
    EXPECT_GT(F, 0.4 * Ideal) << N;
    EXPECT_LT(F, 3.0 * Ideal) << N;
  }
}

//===----------------------------------------------------------------------===//
// ISA layer.
//===----------------------------------------------------------------------===//

TEST(Isa, DescriptorsAreConsistent) {
  EXPECT_EQ(scalarIsa().Nu, 1);
  EXPECT_EQ(sse2Isa().Nu, 2);
  EXPECT_EQ(avxIsa().Nu, 4);
  EXPECT_EQ(avx512Isa().Nu, 8);
  EXPECT_STREQ(isaByName("avx512").Name, avx512Isa().Name);
  EXPECT_STREQ(isaByName("avx").Name, avxIsa().Name);
  EXPECT_STREQ(isaByName("sse2").Name, sse2Isa().Name);
  EXPECT_STREQ(isaByName("scalar").Name, scalarIsa().Name);
}

TEST(Isa, HostIsaIsOneOfTheKnown) {
  const VectorISA &H = hostIsa();
  EXPECT_TRUE(H.Nu == 1 || H.Nu == 2 || H.Nu == 4 || H.Nu == 8);
}

} // namespace
