//===- tests/verify_test.cpp - C-IR verifier: mutations + emission oracle -===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Two halves. The seeded-mutation matrix takes known-good IR (hand-built
// and real widened emissions), applies one deliberate corruption at a time,
// and asserts the verifier rejects it with the *expected* kind -- so every
// check in cir/Verify.cpp is pinned by a test that would fail if it were
// deleted. The oracle half asserts the verifier runs clean over the real
// generation pipeline (scalar result, scalar recompile, every widened batch
// variant, post-FMA-contraction) and that verifyEmittedIR -- the service
// gate -- accepts the same emissions it compiles and rejects corrupted IR.
//===----------------------------------------------------------------------===//

#include "cir/CIR.h"
#include "cir/Passes.h"
#include "cir/Verify.h"
#include "cir/Widen.h"
#include "expr/Program.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/SLinGen.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::cir;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

void collectInsts(std::vector<Node> &Body, std::vector<Inst *> &Out) {
  for (Node &N : Body) {
    if (auto *I = std::get_if<Inst>(&N))
      Out.push_back(I);
    else
      collectInsts(std::get<Loop>(N).Body, Out);
  }
}

/// Pre-order pointers to every instruction: the mutation surface.
std::vector<Inst *> insts(Function &F) {
  std::vector<Inst *> V;
  collectInsts(F.Body, V);
  return V;
}

void collectLoops(std::vector<Node> &Body, std::vector<Loop *> &Out) {
  for (Node &N : Body)
    if (auto *L = std::get_if<Loop>(&N)) {
      Out.push_back(L);
      collectLoops(L->Body, Out);
    }
}

std::vector<Loop *> loops(Function &F) {
  std::vector<Loop *> V;
  collectLoops(F.Body, V);
  return V;
}

testing::AssertionResult verifiesClean(const Function &F) {
  std::vector<VerifyError> Errors = verify(F);
  if (Errors.empty())
    return testing::AssertionSuccess();
  auto R = testing::AssertionFailure() << F.Name << " failed verification:";
  for (const VerifyError &E : Errors)
    R << "\n  " << E.str();
  return R;
}

/// The mutation-matrix assertion: the corrupted function must report the
/// expected kind (other collateral kinds may ride along -- one corruption
/// can trip several checks -- but the targeted one must be present).
testing::AssertionResult rejectsWith(const Function &F, VerifyKind Want) {
  std::vector<VerifyError> Errors = verify(F);
  if (Errors.empty())
    return testing::AssertionFailure()
           << F.Name << ": mutation not caught (verified clean)";
  for (const VerifyError &E : Errors)
    if (E.Kind == Want)
      return testing::AssertionSuccess();
  auto R = testing::AssertionFailure()
           << F.Name << ": expected kind '" << verifyKindName(Want)
           << "', got:";
  for (const VerifyError &E : Errors)
    R << "\n  " << E.str();
  return R;
}

/// A tiny known-good scalar kernel: C[i] = A[i] * A[i] over a 4x4 pair.
struct ScalarKernel {
  Program P;
  Operand *A, *C;
  Function F;

  ScalarKernel() {
    A = P.addOperand("A", 4, 4);
    C = P.addOperand("C", 4, 4);
    C->IO = IOKind::Out;
    FuncBuilder B("sk", 1);
    int IV = B.beginLoop(0, 16, 1);
    int V = B.sload(B.addr(A, 0, {{IV, 1}}));
    int M = B.sbin(Op::SMul, V, V);
    B.sstore(B.addr(C, 0, {{IV, 1}}), M);
    B.endLoop();
    F = B.take({A, C});
  }
};

/// A tiny known-good instance-widened kernel (the shape cir/Widen.h
/// produces: Nu lanes of independent instances, LocalVecWidth == Nu, local
/// addresses scaled by Nu). Params are sized Rows*Cols per instance; the
/// widened extent is Nu instances.
struct WideKernel {
  static constexpr int Nu = 4;
  Program P;
  Operand *A, *C, *T;
  Function F;

  WideKernel() {
    A = P.addOperand("A", 2, 2);
    C = P.addOperand("C", 2, 2);
    C->IO = IOKind::Out;
    T = P.addOperand("T", 2, 2);
    FuncBuilder B("wk", Nu);
    // Contiguous AoSoA layout: element e of lane l at offset e*Nu + l.
    int V0 = B.vload(B.addr(A, 0), Nu);
    int V1 = B.vload(B.addr(A, Nu), Nu);
    int M = B.vbin(Op::VMul, V0, V1);
    B.vstore(B.addr(T, 0), M, Nu);
    int V2 = B.vload(B.addr(T, 0), Nu);
    int S = B.vbin(Op::VAdd, V2, V0);
    int Sh = B.vshuffle(S, V0, {0, 1, 2, 3});
    int E = B.vextract(Sh, 0);
    int W = B.vbroadcast(E);
    B.vstore(B.addr(C, 0), W, Nu);
    B.vstore(B.addr(C, Nu), S, Nu);
    F = B.take({A, C});
    F.Locals = {T};
    F.LocalVecWidth = Nu; // instance-widened contract
  }
};

//===----------------------------------------------------------------------===//
// The real pipeline: scalar generation + every widened batch variant.
//===----------------------------------------------------------------------===//

/// Keeps the owners alive alongside the functions: GenResult/
/// ScalarRecompile own the programs the Operand pointers reference, and
/// WidenedFunction owns its renamed local clones.
struct Emissions {
  GenOptions O;
  GenResult R;
  ScalarRecompile Pre;      ///< the scalar recompile the wideners consume
  WidenedFunction VecBlk;   ///< widenAcrossInstances (AoSoA block)
  WidenedFunction FusedBlk; ///< widenAcrossInstancesFused (lane-strided)
  WidenedFunction FusedTail; ///< ...FusedMasked (runtime tail)
};

std::optional<Emissions> emitAll(const std::string &Source,
                                 const std::string &Name) {
  std::string Err;
  auto P = la::compileLa(Source, Err);
  if (!P) {
    ADD_FAILURE() << "LA error: " << Err;
    return std::nullopt;
  }
  Emissions E;
  E.O.Isa = &avxIsa();
  E.O.FuncName = Name;
  Generator G(std::move(*P), E.O);
  if (!G.isValid()) {
    ADD_FAILURE() << "generator error: " << G.error();
    return std::nullopt;
  }
  auto R = G.best(3);
  if (!R) {
    ADD_FAILURE() << "generation failed for " << Name;
    return std::nullopt;
  }
  E.R = std::move(*R);
  const int Nu = E.R.Func.Nu;
  auto Pre = recompileScalar(E.R, &E.O);
  if (!Pre) {
    ADD_FAILURE() << "scalar recompile failed for " << Name;
    return std::nullopt;
  }
  E.Pre = std::move(*Pre);
  auto W = widenAcrossInstances(E.Pre.Func, Nu, Name + "_vecblk");
  auto WF = widenAcrossInstancesFused(E.Pre.Func, Nu, Name + "_fusedblk");
  auto WT =
      widenAcrossInstancesFusedMasked(E.Pre.Func, Nu, Name + "_fusedtail");
  if (!W || !WF || !WT) {
    ADD_FAILURE() << "widening failed for " << Name;
    return std::nullopt;
  }
  // Mirror emission: FMA contraction on FMA-capable widths, applied to
  // every variant (see slingen/Batched.cpp).
  if (Nu >= 4) {
    contractFma(W->Func);
    contractFma(WF->Func);
    contractFma(WT->Func);
  }
  E.VecBlk = std::move(*W);
  E.FusedBlk = std::move(*WF);
  E.FusedTail = std::move(*WT);
  return E;
}

std::optional<Emissions> potrfEmissions() {
  return emitAll(la::potrfSource(8), "vp");
}

//===----------------------------------------------------------------------===//
// Oracle: real emissions verify clean
//===----------------------------------------------------------------------===//

TEST(VerifyOracle, PipelineEmissionsVerify) {
  for (auto &[Source, Name] :
       {std::pair<std::string, std::string>{la::potrfSource(8), "op"},
        {la::trsylSource(4), "ot"},
        {la::fig5Source(4, 4), "of"}}) {
    auto E = emitAll(Source, Name);
    ASSERT_TRUE(E);
    EXPECT_TRUE(verifiesClean(E->R.Func));
    EXPECT_TRUE(verifiesClean(E->Pre.Func));
    EXPECT_TRUE(verifiesClean(E->VecBlk.Func));
    EXPECT_TRUE(verifiesClean(E->FusedBlk.Func));
    EXPECT_TRUE(verifiesClean(E->FusedTail.Func));
    EXPECT_TRUE(E->FusedTail.Func.HasTailMask);
  }
}

TEST(VerifyOracle, VerifyEmittedIRAcceptsEveryStrategy) {
  auto E = potrfEmissions();
  ASSERT_TRUE(E);
  for (BatchStrategy S :
       {BatchStrategy::ScalarLoop, BatchStrategy::InstanceParallel,
        BatchStrategy::InstanceParallelFused}) {
    auto VE = verifyEmittedIR(E->R, &E->O, /*Batched=*/true, S);
    EXPECT_FALSE(VE) << "strategy " << batchStrategyName(S) << ": "
                     << (VE ? VE->str() : "");
  }
  EXPECT_FALSE(verifyEmittedIR(E->R, &E->O, /*Batched=*/false,
                               BatchStrategy::Auto));
}

TEST(VerifyOracle, VerifyEmittedIRRejectsCorruptedResult) {
  // The shape the service's corrupt-ir fault point injects: a RegIsVec
  // that no longer matches NumRegs.
  auto E = potrfEmissions();
  ASSERT_TRUE(E);
  E->R.Func.RegIsVec.push_back(false);
  auto VE = verifyEmittedIR(E->R, &E->O, /*Batched=*/true,
                            BatchStrategy::InstanceParallelFused);
  ASSERT_TRUE(VE);
  EXPECT_EQ(VE->Kind, VerifyKind::BadRegister) << VE->str();
  EXPECT_EQ(VE->Fn, E->R.Func.Name);
}

TEST(VerifyOracle, ReportTextAndNames) {
  ScalarKernel K;
  std::string Ok = verifyReportText(K.F);
  EXPECT_NE(Ok.find("sk: ok ("), std::string::npos) << Ok;
  K.F.RegIsVec.push_back(true);
  std::string Bad = verifyReportText(K.F);
  EXPECT_NE(Bad.find("bad-register"), std::string::npos) << Bad;
  auto First = verifyFirst(K.F);
  ASSERT_TRUE(First);
  EXPECT_EQ(First->Kind, VerifyKind::BadRegister);
  EXPECT_NE(First->str().find("sk[-1]: bad-register"), std::string::npos)
      << First->str();
  // Every kind has a stable kebab name (the event-log vocabulary).
  for (VerifyKind N :
       {VerifyKind::BadRegister, VerifyKind::UseBeforeDef, VerifyKind::BadArity,
        VerifyKind::WidthMismatch, VerifyKind::BadLane, VerifyKind::BadShuffle,
        VerifyKind::BadLoop, VerifyKind::UnknownBuffer,
        VerifyKind::ReadOnlyStore, VerifyKind::MaskOutsideTail,
        VerifyKind::MissingMask, VerifyKind::FmaMultiUse,
        VerifyKind::OutOfBounds, VerifyKind::Misaligned})
    EXPECT_STRNE(verifyKindName(N), "?");
}

//===----------------------------------------------------------------------===//
// Mutation matrix: hand-built kernels
//===----------------------------------------------------------------------===//

TEST(VerifyMutation, BaselinesAreClean) {
  ScalarKernel S;
  EXPECT_TRUE(verifiesClean(S.F));
  WideKernel W;
  EXPECT_TRUE(verifiesClean(W.F));
}

TEST(VerifyMutation, DroppedDefinition) {
  ScalarKernel K;
  // Remove the load that defines the multiply's operand.
  auto *L = std::get_if<Loop>(&K.F.Body.front());
  ASSERT_TRUE(L);
  ASSERT_TRUE(std::holds_alternative<Inst>(L->Body.front()));
  L->Body.erase(L->Body.begin());
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::UseBeforeDef));
}

TEST(VerifyMutation, RegIsVecSizeMismatch) {
  ScalarKernel K;
  K.F.RegIsVec.push_back(false);
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadRegister));
}

TEST(VerifyMutation, OperandRegisterOutOfRange) {
  ScalarKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::SMul) {
      I->B = K.F.NumRegs + 3;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadRegister));
}

TEST(VerifyMutation, MissingOperand) {
  ScalarKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::SMul) {
      I->B = -1;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadArity));
}

TEST(VerifyMutation, FlippedRegisterWidth) {
  WideKernel K;
  // Declare the multiply's destination scalar: its def and every use now
  // disagree with the opcode signatures.
  for (Inst *I : insts(K.F))
    if (I->K == Op::VMul) {
      ASSERT_LT(I->Dst, static_cast<int>(K.F.RegIsVec.size()));
      K.F.RegIsVec[I->Dst] = false;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::WidthMismatch));
}

TEST(VerifyMutation, WidenedOffsetEscapesBuffer) {
  ScalarKernel K;
  // Bump the store base past the 4x4 output: [16, 31] is outside [0, 16).
  for (Inst *I : insts(K.F))
    if (I->K == Op::SStore) {
      I->Address.Const += 16;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::OutOfBounds));
}

TEST(VerifyMutation, WidenedLoopBoundEscapesBuffer) {
  ScalarKernel K;
  // Same access, widened iteration space: i in [0, 32) overruns via the
  // affine term rather than the constant.
  ASSERT_FALSE(loops(K.F).empty());
  loops(K.F).front()->Hi = 32;
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::OutOfBounds));
}

TEST(VerifyMutation, NonpositiveLoopStep) {
  ScalarKernel K;
  ASSERT_FALSE(loops(K.F).empty());
  loops(K.F).front()->Step = 0;
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadLoop));
}

TEST(VerifyMutation, AddressReferencesOutOfScopeVariable) {
  ScalarKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::SLoad) {
      I->Address.Terms.push_back({K.F.NumVars + 1, 1});
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadLoop));
}

TEST(VerifyMutation, AccessToForeignBuffer) {
  ScalarKernel K;
  // D exists in the program but is neither a parameter nor a local.
  Operand *D = K.P.addOperand("D", 4, 4);
  for (Inst *I : insts(K.F))
    if (I->K == Op::SStore) {
      I->Address.Buf = D;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::UnknownBuffer));
}

TEST(VerifyMutation, StoreToReadOnlyParameter) {
  ScalarKernel K;
  // Declare the output read-only without touching the body: the store
  // through it becomes the violation.
  K.F.ParamWritable = {true, false};
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::ReadOnlyStore));
}

TEST(VerifyMutation, MisalignedLocalAccess) {
  WideKernel K;
  // Instance-widened local accesses must be Nu-element aligned (the
  // emitter's aligned-move contract). Offset 1 stays in bounds but breaks
  // the alignment invariant.
  for (Inst *I : insts(K.F))
    if (I->K == Op::VStore && I->Address.Buf == K.T) {
      I->Address.Const = 1;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::Misaligned));
}

TEST(VerifyMutation, ExtractLaneOutOfRange) {
  WideKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::VExtract) {
      I->Lanes = WideKernel::Nu;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadLane));
}

TEST(VerifyMutation, LoadLaneCountOutOfRange) {
  WideKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::VLoad) {
      I->Lanes = WideKernel::Nu + 1;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadLane));
}

TEST(VerifyMutation, ShuffleSelectorWrongSize) {
  WideKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::VShuffle) {
      I->Sel.push_back(0);
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadShuffle));
}

TEST(VerifyMutation, ShuffleLaneOutOfRange) {
  WideKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::VShuffle) {
      I->Sel[0] = 2 * WideKernel::Nu;
      break;
    }
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::BadShuffle));
}

TEST(VerifyMutation, MaskedOpOutsideTailFunction) {
  WideKernel K;
  for (Inst *I : insts(K.F))
    if (I->K == Op::VLoad && I->Address.Buf == K.A) {
      I->K = Op::VLoadStridedMasked;
      I->Stride = 4; // instance size of the 2x2 parameter
      break;
    }
  ASSERT_FALSE(K.F.HasTailMask);
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::MaskOutsideTail));
}

TEST(VerifyMutation, DuplicatedMultiplyInFma) {
  WideKernel K;
  // The contractFma contract: a folded multiply is deleted, so a same-pair
  // VFma coexisting with a still-used VMul means a multi-use mul was
  // contracted (a rounding change). Rebuild the tail of the block with the
  // forbidden shape: M = V0*V1 (still stored) and FMA(V0, V1, S).
  std::vector<Inst *> Is = insts(K.F);
  int V0 = -1, V1 = -1, M = -1, S = -1;
  for (Inst *I : Is)
    if (I->K == Op::VMul) {
      V0 = I->A;
      V1 = I->B;
      M = I->Dst;
    } else if (I->K == Op::VAdd) {
      S = I->Dst;
    }
  ASSERT_GE(M, 0);
  ASSERT_GE(S, 0);
  Inst Fma;
  Fma.K = Op::VFma;
  Fma.Dst = M; // reuse a vector register; M still has its store use
  Fma.A = V0;
  Fma.B = V1;
  Fma.C = S;
  K.F.Body.push_back(Fma);
  EXPECT_TRUE(rejectsWith(K.F, VerifyKind::FmaMultiUse));
}

//===----------------------------------------------------------------------===//
// Mutation matrix: real widened emissions
//===----------------------------------------------------------------------===//

TEST(VerifyMutation, FusedTailStripMaskGuard) {
  auto E = potrfEmissions();
  ASSERT_TRUE(E);
  // The widener set HasTailMask; stripping it leaves masked ops with no
  // `active_` guard to consume.
  E->FusedTail.Func.HasTailMask = false;
  EXPECT_TRUE(rejectsWith(E->FusedTail.Func, VerifyKind::MaskOutsideTail));
}

TEST(VerifyMutation, FusedTailUnmaskedParameterAccess) {
  auto E = potrfEmissions();
  ASSERT_TRUE(E);
  // Demote one masked load: an unmasked parameter access in the tail
  // kernel reads instances past `active_`.
  bool Mutated = false;
  for (Inst *I : insts(E->FusedTail.Func))
    if (I->K == Op::VLoadStridedMasked) {
      I->K = Op::VLoadStrided;
      Mutated = true;
      break;
    }
  ASSERT_TRUE(Mutated);
  EXPECT_TRUE(rejectsWith(E->FusedTail.Func, VerifyKind::MissingMask));
}

TEST(VerifyMutation, FusedTailWidenedLaneStride) {
  auto E = potrfEmissions();
  ASSERT_TRUE(E);
  // A lane stride that is not the instance size walks lanes out of the
  // `active_`-instance region the batch ABI guarantees.
  bool Mutated = false;
  for (Inst *I : insts(E->FusedTail.Func))
    if (I->K == Op::VLoadStridedMasked) {
      I->Stride += 1;
      Mutated = true;
      break;
    }
  ASSERT_TRUE(Mutated);
  EXPECT_TRUE(rejectsWith(E->FusedTail.Func, VerifyKind::OutOfBounds));
}

TEST(VerifyMutation, FusedBlockStrideEscapesBlock) {
  auto E = potrfEmissions();
  ASSERT_TRUE(E);
  // Unmasked fused block: widening the lane stride pushes the last lane
  // past the Nu-instance block extent.
  bool Mutated = false;
  for (Inst *I : insts(E->FusedBlk.Func))
    if (I->K == Op::VLoadStrided &&
        I->Address.Buf == E->FusedBlk.Func.Params.front()) {
      I->Stride *= 2;
      Mutated = true;
      break;
    }
  ASSERT_TRUE(Mutated);
  EXPECT_TRUE(rejectsWith(E->FusedBlk.Func, VerifyKind::OutOfBounds));
}

TEST(VerifyMutation, VecBlockMisalignedLocal) {
  auto E = emitAll(la::trsylSource(4), "vt");
  ASSERT_TRUE(E);
  // trsyl carries compiler temporaries; knock one contiguous local access
  // off the Nu-element grid the widener guarantees.
  bool Mutated = false;
  for (Inst *I : insts(E->VecBlk.Func)) {
    if (!(I->K == Op::VLoad || I->K == Op::VStore) || !I->Address.Buf)
      continue;
    for (const Operand *L : E->VecBlk.Func.Locals)
      if (I->Address.Buf == L) {
        I->Address.Const += 1;
        Mutated = true;
        break;
      }
    if (Mutated)
      break;
  }
  if (!Mutated)
    GTEST_SKIP() << "emission has no contiguous local access to mutate";
  EXPECT_TRUE(rejectsWith(E->VecBlk.Func, VerifyKind::Misaligned));
}

} // namespace
