//===- tests/jit_test.cpp - generated-C integration tests ------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Compiles the emitted C with the system compiler, loads it, and checks it
// against the dense evaluator -- the path every benchmark uses. Skipped
// when no C compiler is available.
//===----------------------------------------------------------------------===//

#include "expr/Evaluator.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "runtime/Jit.h"
#include "runtime/Timing.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

#define SKIP_WITHOUT_CC()                                                     \
  if (!runtime::haveSystemCompiler())                                         \
  GTEST_SKIP() << "no system C compiler"

/// Generates, JIT-compiles and runs \p Source; compares all outputs against
/// the dense evaluator.
void checkJit(const std::string &Source,
              const std::vector<std::pair<std::string, std::vector<double>>>
                  &Inputs,
              const GenOptions &O, double Tol) {
  std::string Err;
  auto Ref = la::compileLa(Source, Err);
  ASSERT_TRUE(Ref) << Err;
  Env E;
  for (const auto &[Name, Data] : Inputs)
    E.set(Ref->findOperand(Name), Data);
  evalProgram(*Ref, E);

  auto Gen = la::compileLa(Source, Err);
  ASSERT_TRUE(Gen) << Err;
  Generator G(std::move(*Gen), O);
  ASSERT_TRUE(G.isValid()) << G.error();
  auto R = G.best(4);
  ASSERT_TRUE(R);

  std::string C = emitC(*R);
  auto K = runtime::JitKernel::compile(
      C, R->Func.Name, static_cast<int>(R->Func.Params.size()), Err);
  ASSERT_TRUE(K) << Err << "\n--- source ---\n" << C;

  std::vector<std::vector<double>> Storage;
  std::vector<double *> Bufs;
  for (const Operand *P : R->Func.Params) {
    Storage.emplace_back(static_cast<size_t>(P->Rows) * P->Cols, 0.0);
    for (const auto &[Name, Data] : Inputs)
      if (Name == P->Name)
        Storage.back() = Data;
  }
  for (auto &S : Storage)
    Bufs.push_back(S.data());
  K->call(Bufs.data());

  for (const Operand *Op : R->Basic.operands()) {
    if (Op->IsTemp || !Op->isWritable())
      continue;
    std::vector<double> Want = E.get(Ref->findOperand(Op->Name));
    const Operand *Root = Op->root();
    size_t Idx = 0;
    for (; Idx < R->Func.Params.size(); ++Idx)
      if (R->Func.Params[Idx] == Root)
        break;
    ASSERT_LT(Idx, R->Func.Params.size());
    double MaxDiff = 0.0;
    for (size_t I = 0; I < Want.size(); ++I)
      MaxDiff = std::max(MaxDiff, std::fabs(Want[I] - Storage[Idx][I]));
    EXPECT_LT(MaxDiff, Tol) << "output " << Op->Name;
  }
}

GenOptions hostOpts() {
  GenOptions O;
  O.Isa = &hostIsa();
  return O;
}

TEST(Jit, CompilerProbe) { SUCCEED() << runtime::haveSystemCompiler(); }

TEST(Jit, PotrfCompiledMatchesOracle) {
  SKIP_WITHOUT_CC();
  for (int N : {4, 11, 16, 24}) {
    Rng R(N);
    checkJit(la::potrfSource(N), {{"A", spd(N, R)}}, hostOpts(), 1e-8 * N);
  }
}

TEST(Jit, TrsylCompiledMatchesOracle) {
  SKIP_WITHOUT_CC();
  for (int N : {4, 12}) {
    Rng R(N + 1);
    checkJit(la::trsylSource(N),
             {{"L", lowerTri(N, R)},
              {"U", upperTri(N, R)},
              {"C", general(N, N, R)}},
             hostOpts(), 1e-7 * N);
  }
}

TEST(Jit, TrlyaCompiledMatchesOracle) {
  SKIP_WITHOUT_CC();
  for (int N : {4, 12}) {
    Rng R(N + 2);
    checkJit(la::trlyaSource(N),
             {{"L", lowerTri(N, R)}, {"S", symmetric(N, R)}}, hostOpts(),
             1e-7 * N);
  }
}

TEST(Jit, TrtriCompiledMatchesOracle) {
  SKIP_WITHOUT_CC();
  for (int N : {4, 12}) {
    Rng R(N + 3);
    checkJit(la::trtriSource(N), {{"L", lowerTri(N, R)}}, hostOpts(),
             1e-7 * N);
  }
}

TEST(Jit, KalmanCompiledMatchesOracle) {
  SKIP_WITHOUT_CC();
  int N = 8;
  Rng R(99);
  checkJit(la::kalmanSource(N, N),
           {{"F", general(N, N, R)},
            {"Bm", general(N, N, R)},
            {"Q", spd(N, R)},
            {"H", general(N, N, R)},
            {"R", spd(N, R)},
            {"P", spd(N, R)},
            {"u", general(N, 1, R)},
            {"x", general(N, 1, R)},
            {"z", general(N, 1, R)}},
           hostOpts(), 1e-6);
}

TEST(Jit, GprCompiledMatchesOracle) {
  SKIP_WITHOUT_CC();
  int N = 12;
  Rng R(77);
  checkJit(la::gprSource(N),
           {{"K", spd(N, R)},
            {"X", general(N, N, R)},
            {"x", general(N, 1, R)},
            {"y", general(N, 1, R)}},
           hostOpts(), 1e-6);
}

TEST(Jit, Avx512CompilesAndRunsWhenHosted) {
  SKIP_WITHOUT_CC();
  if (hostIsa().Nu < 8)
    GTEST_SKIP() << "host has no AVX-512";
  GenOptions O;
  O.Isa = &avx512Isa();
  Rng R(6);
  checkJit(la::potrfSource(16), {{"A", spd(16, R)}}, O, 1e-8);
  Rng R2(7);
  checkJit(la::trsylSource(12),
           {{"L", lowerTri(12, R2)},
            {"U", upperTri(12, R2)},
            {"C", general(12, 12, R2)}},
           O, 1e-7);
}

TEST(Jit, ScalarIsaAlsoCompiles) {
  SKIP_WITHOUT_CC();
  GenOptions O;
  O.Isa = &scalarIsa();
  Rng R(5);
  checkJit(la::potrfSource(8), {{"A", spd(8, R)}}, O, 1e-8);
}

TEST(Jit, MeasurementHarnessProducesStableCycles) {
  SKIP_WITHOUT_CC();
  // Measure a trivial known workload and check the harness invariants:
  // positive median, quartiles bracket it.
  volatile double Sink = 0.0;
  auto M = runtime::measureCycles(
      [&] {
        double S = 0.0;
        for (int I = 0; I < 256; ++I)
          S += I * 1.5;
        Sink = S;
      },
      15, 2);
  EXPECT_GT(M.Median, 0.0);
  EXPECT_LE(M.Q1, M.Median);
  EXPECT_LE(M.Median, M.Q3);
}

TEST(Jit, CompileErrorIsReported) {
  SKIP_WITHOUT_CC();
  std::string Err;
  auto K = runtime::JitKernel::compile("void broken(double *a) { this is "
                                       "not C; }",
                                       "broken", 1, Err);
  EXPECT_FALSE(K);
  EXPECT_FALSE(Err.empty());
}

} // namespace
