//===- tests/unitdiag_test.cpp - unit-diagonal triangular support ----------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The LA grammar (paper Fig. 4) includes the UnitDiag property; unit
// triangular solves skip the division entirely (the FLAME base case emits
// a copy). Validates the property end to end: parser -> synthesis ->
// pipeline -> interpreter, against a manual forward substitution.
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "expr/Evaluator.h"
#include "la/Lower.h"
#include "slingen/SLinGen.h"
#include "support/Format.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

std::string unitTrsmSource(int N) {
  std::string S;
  S += formatf("Mat L(%d, %d) <In, LoTri, NS, UnitDiag>;\n", N, N);
  S += formatf("Mat X(%d, %d) <Out>;\n", N, N);
  S += formatf("Mat C(%d, %d) <In>;\n", N, N);
  S += "L * X = C;\n";
  return S;
}

TEST(UnitDiag, ParserSetsProperty) {
  std::string Err;
  auto P = la::compileLa(unitTrsmSource(8), Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_TRUE(P->findOperand("L")->UnitDiag);
  EXPECT_FALSE(P->findOperand("C")->UnitDiag);
}

TEST(UnitDiag, ExpansionHasNoDivisions) {
  std::string Err;
  auto P = la::compileLa(unitTrsmSource(8), Err);
  ASSERT_TRUE(P) << Err;
  ASSERT_TRUE(expandProgramHlacs(*P, 4, {0}));
  for (const EqStmt &S : P->stmts())
    EXPECT_EQ(S.Rhs->str().find('/'), std::string::npos) << S.str();
}

TEST(UnitDiag, PipelineMatchesForwardSubstitution) {
  for (int N : {4, 8, 11}) {
    std::string Err;
    auto P = la::compileLa(unitTrsmSource(N), Err);
    ASSERT_TRUE(P) << Err;

    Rng R(N);
    // Unit lower triangular: ones on the diagonal.
    std::vector<double> L = lowerTri(N, R);
    for (int I = 0; I < N; ++I)
      L[I * N + I] = 1.0;
    std::vector<double> C = general(N, N, R);

    GenOptions O;
    O.Isa = &avxIsa();
    Generator G(std::move(*P), O);
    ASSERT_TRUE(G.isValid()) << G.error();
    auto Res = G.best(4);
    ASSERT_TRUE(Res);

    std::map<const Operand *, double *> Bufs;
    std::map<std::string, std::vector<double>> Storage;
    for (const Operand *Param : Res->Func.Params) {
      auto &B = Storage[Param->Name];
      B.assign(static_cast<size_t>(Param->Rows) * Param->Cols, 0.0);
      if (Param->Name == "L")
        B = L;
      if (Param->Name == "C")
        B = C;
      Bufs[Param] = B.data();
    }
    cir::interpret(Res->Func, Bufs);

    // Manual unit-lower forward substitution.
    std::vector<double> Want = C;
    for (int Col = 0; Col < N; ++Col)
      for (int I = 0; I < N; ++I)
        for (int P2 = 0; P2 < I; ++P2)
          Want[I * N + Col] -= L[I * N + P2] * Want[P2 * N + Col];
    EXPECT_LT(maxAbsDiff(Storage["X"], Want), 1e-10 * N) << "n=" << N;
  }
}

} // namespace
